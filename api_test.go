package slj

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/thinning"
)

// smallDataset keeps end-to-end tests fast: 4 train clips, 2 test clips.
func smallDataset(t *testing.T, seed int64) *Dataset {
	t.Helper()
	ds, err := GenerateDataset(dataset.GenOptions{
		TrainClips: 4, TestClips: 2, Seed: seed, FaultEvery: 0, VaryBody: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Classifier().Config().Partitions != 8 {
		t.Error("default partitions != 8")
	}
}

func TestNewSystemBadOptions(t *testing.T) {
	if _, err := NewSystem(WithPartitions(7)); err == nil {
		t.Error("odd partitions accepted")
	}
}

func TestTrainRequiresClips(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(nil); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestAnalyzeFrameRequiresBackground(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	ds := smallDataset(t, 51)
	if _, err := sys.AnalyzeFrame(ds.Test[0].Clip.Frames[0].Image); err == nil {
		t.Error("analysis without background accepted")
	}
}

func TestAnalyzeFrameProducesKeyPoints(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	ds := smallDataset(t, 52)
	lc := ds.Test[0]
	sys.SetBackground(lc.Clip.Background)
	okFrames := 0
	for _, fr := range lc.Clip.Frames {
		fa, err := sys.AnalyzeFrame(fr.Image)
		if err != nil {
			t.Fatal(err)
		}
		if fa.Silhouette == nil || fa.Skeleton == nil {
			t.Fatal("missing analysis products")
		}
		if fa.KeyPointsOK {
			okFrames++
			if fa.Encoding.Partitions != 8 {
				t.Fatal("wrong encoding partitions")
			}
		}
	}
	if frac := float64(okFrames) / float64(len(lc.Clip.Frames)); frac < 0.9 {
		t.Errorf("key points extracted on only %.0f%% of frames, want >= 90%%", 100*frac)
	}
}

func TestEndToEndAccuracy(t *testing.T) {
	// The SEC5 shape check in miniature: train on 4 clips, test on 2,
	// full noisy pipeline. The paper reports 81-87%; with a quarter of
	// the training data we accept a lower floor but still demand the
	// system is clearly working.
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	ds := smallDataset(t, 53)
	if err := sys.Train(ds.Train); err != nil {
		t.Fatal(err)
	}
	sum, conf, err := sys.Evaluate(ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.TotalFrames(); got == 0 {
		t.Fatal("no frames evaluated")
	}
	acc := sum.OverallAccuracy()
	t.Logf("end-to-end accuracy: %.1f%% (unknown rate %.1f%%)\n%s",
		100*acc, 100*conf.UnknownRate(), sum.Table())
	if acc < 0.5 {
		t.Errorf("end-to-end accuracy = %.1f%%, want >= 50%%", 100*acc)
	}
}

func TestGroundTruthSilhouetteAblationIsNoWorse(t *testing.T) {
	ds := smallDataset(t, 54)

	run := func(gt bool) float64 {
		sys, err := NewSystem(WithGroundTruthSilhouettes(gt))
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Train(ds.Train); err != nil {
			t.Fatal(err)
		}
		sum, _, err := sys.Evaluate(ds.Test)
		if err != nil {
			t.Fatal(err)
		}
		return sum.OverallAccuracy()
	}
	gtAcc := run(true)
	exAcc := run(false)
	t.Logf("ground-truth silhouettes: %.1f%%, extracted: %.1f%%", 100*gtAcc, 100*exAcc)
	// Extraction noise can help or hurt marginally, but ground truth
	// should never be dramatically worse.
	if gtAcc < exAcc-0.15 {
		t.Errorf("ground-truth ablation much worse (%.2f) than extraction (%.2f)", gtAcc, exAcc)
	}
}

func TestCoachOnStandardJump(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	ds := smallDataset(t, 55)
	if err := sys.Train(ds.Train); err != nil {
		t.Fatal(err)
	}
	rep, seq, err := sys.Coach(ds.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(ds.Test[0].Clip.Frames) {
		t.Fatal("sequence length mismatch")
	}
	t.Logf("coach report:\n%s", rep.String())
	// A standard jump decoded by a working classifier should score
	// reasonably; allow a couple of rule misses from residual
	// classification errors.
	if rep.Score < 50 {
		t.Errorf("standard jump scored %d, want >= 50:\n%s", rep.Score, rep.String())
	}
}

func TestGuoHallVariantRuns(t *testing.T) {
	sys, err := NewSystem(WithThinning(thinning.GuoHall))
	if err != nil {
		t.Fatal(err)
	}
	ds := smallDataset(t, 56)
	if err := sys.TrainClip(ds.Train[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ClassifyClip(ds.Test[0]); err != nil {
		t.Fatal(err)
	}
}

func TestPosesHelper(t *testing.T) {
	if got := Poses(nil); len(got) != 0 {
		t.Error("Poses(nil) should be empty")
	}
}

func TestPartitionsOptionPropagates(t *testing.T) {
	sys, err := NewSystem(WithPartitions(16))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Classifier().Config().Partitions != 16 {
		t.Error("partitions option not propagated to classifier")
	}
	ds := smallDataset(t, 57)
	sys.SetBackground(ds.Test[0].Clip.Background)
	fa, err := sys.AnalyzeFrame(ds.Test[0].Clip.Frames[0].Image)
	if err != nil {
		t.Fatal(err)
	}
	if fa.Encoding.Partitions != 16 {
		t.Errorf("encoding partitions = %d, want 16", fa.Encoding.Partitions)
	}
}

func TestFaultClipGetsFlagged(t *testing.T) {
	// Train including fault poses, then coach a fall-back clip: the
	// report should detect it (allowing for classifier noise, we only
	// require the score to drop or the fault to fire).
	dsTrain, err := GenerateDataset(dataset.GenOptions{
		TrainClips: 6, TestClips: 1, Seed: 58, FaultEvery: 2, VaryBody: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(dsTrain.Train); err != nil {
		t.Fatal(err)
	}
	// Build a fault test clip directly.
	faultDS, err := GenerateDataset(dataset.GenOptions{
		TrainClips: 1, TestClips: 1, Seed: 59, FaultEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := sys.Coach(faultDS.Train[0]) // train-00 with FaultEvery=1 carries a fault
	if err != nil {
		t.Fatal(err)
	}
	hasFaultLabel := false
	for _, fr := range faultDS.Train[0].Clip.Frames {
		if fr.Label.IsFault() {
			hasFaultLabel = true
		}
	}
	if !hasFaultLabel {
		t.Skip("generated clip carries no fault; seed choice")
	}
	t.Logf("fault clip report:\n%s", rep.String())
	if rep.Score == 100 {
		t.Error("fault clip scored a perfect 100; scoring insensitive")
	}
}

func TestViterbiOnClip(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	ds := smallDataset(t, 61)
	if err := sys.Train(ds.Train); err != nil {
		t.Fatal(err)
	}
	lc := ds.Test[0]
	seq, err := sys.ClassifyClipViterbi(lc)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(lc.Clip.Frames) {
		t.Fatalf("viterbi decoded %d frames, want %d", len(seq), len(lc.Clip.Frames))
	}
	correct := 0
	for i, p := range seq {
		if p == lc.Clip.Frames[i].Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(seq)); acc < 0.5 {
		t.Errorf("viterbi accuracy = %.2f, want >= 0.5", acc)
	}
}

func TestMeasureJumpOnClip(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	ds := smallDataset(t, 62)
	lc := ds.Test[0]
	m, err := sys.MeasureJump(lc)
	if err != nil {
		t.Fatal(err)
	}
	span := lc.Clip.Spec.JumpSpan
	if m.DistancePx < span*0.5 || m.DistancePx > span*1.6 {
		t.Errorf("measured %v px, spec span %v", m.DistancePx, span)
	}
	if m.BodyHeights <= 0 {
		t.Error("missing body-height normalisation")
	}
}

func TestModelSaveLoadThroughFacade(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	ds := smallDataset(t, 63)
	if err := sys.Train(ds.Train); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	sys2, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys2.LoadModel(&buf); err != nil {
		t.Fatal(err)
	}
	// Both systems must classify the test clip identically.
	a, err := sys.ClassifyClip(ds.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys2.ClassifyClip(ds.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Pose != b[i].Pose {
			t.Fatalf("frame %d diverged after model reload: %v vs %v", i, a[i].Pose, b[i].Pose)
		}
	}
}

func TestLoadModelGarbage(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadModel(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage model accepted")
	}
}

func TestRemainingOptions(t *testing.T) {
	// Exercise the option plumbing end to end.
	cfg := DefaultClassifierConfig()
	cfg.ThPose = 0.4
	sys, err := NewSystem(
		WithPruneLen(12),
		WithClassifierConfig(cfg),
		WithExtractorOptions(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Classifier().Config().ThPose != 0.4 {
		t.Error("classifier config option not applied")
	}
	if DatasetOptions(5).Seed != 5 {
		t.Error("DatasetOptions seed not propagated")
	}
}

func TestRingsOptionEndToEnd(t *testing.T) {
	sys, err := NewSystem(WithRings(3))
	if err != nil {
		t.Fatal(err)
	}
	ds := smallDataset(t, 64)
	if err := sys.Train(ds.Train[:2]); err != nil {
		t.Fatal(err)
	}
	res, err := sys.ClassifyClip(ds.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(ds.Test[0].Clip.Frames) {
		t.Fatal("length mismatch")
	}
	sys.SetBackground(ds.Test[0].Clip.Background)
	fa, err := sys.AnalyzeFrame(ds.Test[0].Clip.Frames[10].Image)
	if err != nil {
		t.Fatal(err)
	}
	if fa.Encoding.Rings != 3 {
		t.Errorf("encoding rings = %d, want 3", fa.Encoding.Rings)
	}
}

func TestGAFrontEnd(t *testing.T) {
	// The previous-work pipeline end to end, with a tiny GA budget.
	sys, err := NewSystem(
		WithFrontEnd(FrontEndGA),
		WithGAConfig(GAConfig{Population: 10, Generations: 4, Seed: 3}),
	)
	if err != nil {
		t.Fatal(err)
	}
	ds := smallDataset(t, 65)
	lc := ds.Test[0]
	sys.SetBackground(lc.Clip.Background)
	fa, err := sys.AnalyzeFrame(lc.Clip.Frames[5].Image)
	if err != nil {
		t.Fatal(err)
	}
	if !fa.KeyPointsOK {
		t.Fatal("GA front end produced no key points")
	}
	if fa.Skeleton.Count() == 0 {
		t.Error("GA front end produced an empty stick-model rendering")
	}
}

func TestAutoOrientMirroredClip(t *testing.T) {
	// Train on standard left-to-right jumps, then test a mirrored clip:
	// with AutoOrient the accuracy should be near the unmirrored level;
	// without it the encodings are backwards and accuracy collapses.
	ds := smallDataset(t, 66)
	mkMirrored := func() LabeledClip {
		spec := ds.Test[0].Clip.Spec
		spec.Mirror = true
		clip, err := GenerateClipFromSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		return LabeledClip{Name: "mirrored", Clip: clip}
	}

	run := func(auto bool) float64 {
		sys, err := NewSystem(WithAutoOrient(auto))
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Train(ds.Train); err != nil {
			t.Fatal(err)
		}
		lc := mkMirrored()
		res, err := sys.ClassifyClip(lc)
		if err != nil {
			t.Fatal(err)
		}
		correct := 0
		for i, r := range res {
			if r.Pose == lc.Clip.Frames[i].Label {
				correct++
			}
		}
		return float64(correct) / float64(len(res))
	}
	with := run(true)
	without := run(false)
	t.Logf("mirrored clip accuracy: auto-orient %.2f vs off %.2f", with, without)
	if with < 0.5 {
		t.Errorf("auto-orient accuracy = %.2f, want >= 0.5", with)
	}
	if with <= without {
		t.Errorf("auto-orient (%.2f) should beat raw mirrored decoding (%.2f)", with, without)
	}
}

func TestDistractorRejected(t *testing.T) {
	// A rolling ball in the scene must not break extraction (largest
	// component isolation) or classification.
	spec := DefaultSpec(67)
	spec.Distractor = true
	clip, err := GenerateClipFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	ds := smallDataset(t, 68)
	if err := sys.Train(ds.Train); err != nil {
		t.Fatal(err)
	}
	lc := LabeledClip{Name: "distractor", Clip: clip}
	res, err := sys.ClassifyClip(lc)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, r := range res {
		if r.Pose == clip.Frames[i].Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(res)); acc < 0.5 {
		t.Errorf("accuracy with distractor = %.2f, want >= 0.5", acc)
	}
}

func TestROITrackingMatchesFullExtraction(t *testing.T) {
	ds := smallDataset(t, 69)
	run := func(roi bool) float64 {
		sys, err := NewSystem(WithROITracking(roi))
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Train(ds.Train[:2]); err != nil {
			t.Fatal(err)
		}
		sum, _, err := sys.Evaluate(ds.Test)
		if err != nil {
			t.Fatal(err)
		}
		return sum.OverallAccuracy()
	}
	full := run(false)
	roi := run(true)
	t.Logf("accuracy: full %.2f, ROI %.2f", full, roi)
	if roi < full-0.10 {
		t.Errorf("ROI tracking hurt accuracy: %.2f vs %.2f", roi, full)
	}
}

func TestRenderAnalysis(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	ds := smallDataset(t, 70)
	lc := ds.Test[0]
	sys.SetBackground(lc.Clip.Background)
	fr := lc.Clip.Frames[10]
	fa, err := sys.AnalyzeFrame(fr.Image)
	if err != nil {
		t.Fatal(err)
	}
	overlay := RenderAnalysis(fr.Image, fa)
	if overlay.W != fr.Image.W || overlay.H != fr.Image.H {
		t.Fatal("overlay size mismatch")
	}
	// The original frame must be untouched and the overlay must differ
	// (skeleton/boundary pixels painted).
	same := true
	for i := range overlay.Pix {
		if overlay.Pix[i] != fr.Image.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("overlay identical to the input frame")
	}
	// The waist cross must be visible in blue.
	if fa.KeyPointsOK {
		w := fa.KeyPoints.Waist
		_, _, b := overlay.At(w.X, w.Y)
		if b < 200 {
			t.Errorf("waist cross not painted: blue=%d", b)
		}
	}
}
