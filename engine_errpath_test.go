package slj

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/imaging"
	"repro/internal/synth"
)

// TestPipelinedErrorReleasesPooledSilhouettes injects a mid-clip decode
// failure into the Engine's pipelined classify path and asserts the
// imaging pool stays get/put balanced: silhouettes extracted for the
// frames before the corrupt one must go back to the pool even though
// the clip as a whole failed. A long-lived server classifying corrupt
// uploads would otherwise bleed the pool one clip at a time.
//
// The first (warm-up) run lets every lazily-acquired escaping buffer
// settle; the second run must then be perfectly balanced.
func TestPipelinedErrorReleasesPooledSilhouettes(t *testing.T) {
	ds, err := GenerateDataset(dataset.GenOptions{
		TrainClips: 1, TestClips: 1, Seed: 73, FaultEvery: 0, VaryBody: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	root := saveCorpus(t, ds)

	// Garble a frame in the middle of the clip: frames 0 and 1 extract
	// fine (their silhouettes come out of the pool), frame 2 fails.
	victim := filepath.Join(root, "test", "test-00", "frame-002.ppm")
	if err := os.WriteFile(victim, []byte("not a ppm"), 0o644); err != nil {
		t.Fatal(err)
	}

	src := openSplit(t, root, "test")
	defer src.Close()
	lc, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}

	// workers > 1 routes ClassifyClip through classifyClipPipelined.
	eng, err := NewEngine(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ClassifyClip(lc); err == nil {
		t.Fatal("corrupt clip classified without error")
	}

	before := imaging.PoolBalance()
	if _, err := eng.ClassifyClip(lc); err == nil {
		t.Fatal("corrupt clip classified without error")
	}
	if leaked := imaging.PoolBalance() - before; leaked != 0 {
		t.Fatalf("pipelined error path leaked %d pooled buffers (pool gets != puts across the failed clip)", leaked)
	}
}

// TestBatchErrorReleasesPooledSilhouettes is the sequential-path twin:
// clipSilhouettes must release already-extracted silhouettes when a
// later frame fails to decode.
func TestBatchErrorReleasesPooledSilhouettes(t *testing.T) {
	ds, err := GenerateDataset(dataset.GenOptions{
		TrainClips: 1, TestClips: 1, Seed: 74, FaultEvery: 0, VaryBody: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	root := saveCorpus(t, ds)
	victim := filepath.Join(root, "test", "test-00", "frame-002.ppm")
	if err := os.WriteFile(victim, []byte("not a ppm"), 0o644); err != nil {
		t.Fatal(err)
	}

	src := openSplit(t, root, "test")
	defer src.Close()
	lc, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}

	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ClassifyClip(lc); err == nil {
		t.Fatal("corrupt clip classified without error")
	}

	before := imaging.PoolBalance()
	if _, err := sys.ClassifyClip(lc); err == nil {
		t.Fatal("corrupt clip classified without error")
	}
	if leaked := imaging.PoolBalance() - before; leaked != 0 {
		t.Fatalf("batch error path leaked %d pooled buffers", leaked)
	}
}

// noBackgroundClip builds a clip that fails classification immediately:
// with extraction enabled and no background frame, silhouetteSource
// errors before any frame is read.
func noBackgroundClip(t *testing.T, seed int64) dataset.LabeledClip {
	t.Helper()
	clip, err := synth.Generate(synth.DefaultSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	return dataset.LabeledClip{
		Name: "no-background",
		Clip: &synth.Clip{Frames: clip.Frames},
	}
}

// TestSequentialAbortChecksClipBackIn pins the seqTracked fix: when the
// consumer aborts early on a classify error — or closes the source
// before io.EOF — the last pulled clip must be checked back in, leaving
// the engine's inflight accounting at zero. A long-lived server reads
// that count for admission decisions, so a stuck checkout is a slow
// capacity leak.
func TestSequentialAbortChecksClipBackIn(t *testing.T) {
	eng, err := NewEngine(1)
	if err != nil {
		t.Fatal(err)
	}
	bad := noBackgroundClip(t, 75)

	t.Run("evaluate-error", func(t *testing.T) {
		_, _, err := eng.EvaluateSource(dataset.Materialized([]dataset.LabeledClip{bad}))
		if err == nil {
			t.Fatal("clip without background evaluated without error")
		}
		if got := eng.CheckedOut(); got != 0 {
			t.Fatalf("after aborted EvaluateSource: %d clips still checked out, want 0", got)
		}
	})

	t.Run("classify-all-error", func(t *testing.T) {
		_, err := eng.ClassifyAllSource(dataset.Materialized([]dataset.LabeledClip{bad}))
		if err == nil {
			t.Fatal("clip without background classified without error")
		}
		if got := eng.CheckedOut(); got != 0 {
			t.Fatalf("after aborted ClassifyAllSource: %d clips still checked out, want 0", got)
		}
	})

	t.Run("close-before-eof", func(t *testing.T) {
		ts := eng.seqSource(dataset.Materialized([]dataset.LabeledClip{bad, bad}))
		if _, err := ts.Next(); err != nil {
			t.Fatal(err)
		}
		if got := eng.CheckedOut(); got != 1 {
			t.Fatalf("after Next: %d clips checked out, want 1", got)
		}
		if err := ts.Close(); err != nil {
			t.Fatal(err)
		}
		if got := eng.CheckedOut(); got != 0 {
			t.Fatalf("after Close: %d clips still checked out, want 0", got)
		}
	})

	t.Run("train-error", func(t *testing.T) {
		err := eng.TrainSource(dataset.Materialized([]dataset.LabeledClip{bad}))
		if err == nil {
			t.Fatal("clip without background trained without error")
		}
		if got := eng.CheckedOut(); got != 0 {
			t.Fatalf("after aborted TrainSource: %d clips still checked out, want 0", got)
		}
	})

	// EOF without error must stay balanced too (the pre-existing path).
	t.Run("clean-eof", func(t *testing.T) {
		ts := eng.seqSource(dataset.Materialized(nil))
		if _, err := ts.Next(); err != io.EOF {
			t.Fatalf("Next = %v, want io.EOF", err)
		}
		if got := eng.CheckedOut(); got != 0 {
			t.Fatalf("after EOF: %d clips checked out, want 0", got)
		}
	})
}
