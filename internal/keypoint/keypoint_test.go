package keypoint

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/imaging"
	"repro/internal/pose"
	"repro/internal/skelgraph"
	"repro/internal/thinning"
)

func TestPartString(t *testing.T) {
	want := map[Part]string{
		PartHead: "Head", PartChest: "Chest", PartHand: "Hand",
		PartKnee: "Knee", PartFoot: "Foot",
	}
	for p, w := range want {
		if p.String() != w {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), w)
		}
	}
	if len(Parts()) != NumParts {
		t.Errorf("Parts() = %d, want %d", len(Parts()), NumParts)
	}
}

func TestAreaOf(t *testing.T) {
	o := imaging.Point{X: 50, Y: 50}
	tests := []struct {
		name string
		p    imaging.Point
		want int
	}{
		// With half-sector rotation and 8 partitions, sector centres are
		// at 0°, 45°, 90°, ... counter-clockwise from +X (up = -Y image).
		{"east", imaging.Point{X: 60, Y: 50}, 1},
		{"north-east", imaging.Point{X: 60, Y: 40}, 2},
		{"north (above)", imaging.Point{X: 50, Y: 40}, 3},
		{"north-west", imaging.Point{X: 40, Y: 40}, 4},
		{"west", imaging.Point{X: 40, Y: 50}, 5},
		{"south-west", imaging.Point{X: 40, Y: 60}, 6},
		{"south (below)", imaging.Point{X: 50, Y: 60}, 7},
		{"south-east", imaging.Point{X: 60, Y: 60}, 8},
		{"origin", o, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := AreaOf(tt.p, o, 8); got != tt.want {
				t.Errorf("AreaOf(%v) = %d, want %d", tt.p, got, tt.want)
			}
		})
	}
}

func TestAreaOfMorePartitions(t *testing.T) {
	o := imaging.Point{X: 0, Y: 0}
	// With 16 partitions, east is still area 1 and the count of distinct
	// areas doubles.
	if got := AreaOf(imaging.Point{X: 10, Y: 0}, o, 16); got != 1 {
		t.Errorf("east with 16 partitions = %d, want 1", got)
	}
	if got := AreaOf(imaging.Point{X: 0, Y: -10}, o, 16); got != 5 {
		t.Errorf("north with 16 partitions = %d, want 5", got)
	}
}

func TestAreaOfAllDistinct(t *testing.T) {
	// Walking a circle must visit every area exactly once per sector.
	o := imaging.Point{X: 0, Y: 0}
	seen := make(map[int]bool)
	pts := []imaging.Point{
		{X: 10, Y: 0}, {X: 7, Y: -7}, {X: 0, Y: -10}, {X: -7, Y: -7},
		{X: -10, Y: 0}, {X: -7, Y: 7}, {X: 0, Y: 10}, {X: 7, Y: 7},
	}
	for _, p := range pts {
		a := AreaOf(p, o, 8)
		if a < 1 || a > 8 {
			t.Fatalf("area out of range: %d", a)
		}
		if seen[a] {
			t.Fatalf("area %d repeated", a)
		}
		seen[a] = true
	}
}

func TestEncodeValidation(t *testing.T) {
	kp := KeyPoints{Waist: imaging.Point{X: 0, Y: 0}}
	for _, bad := range []int{0, 2, 3, 7, 9} {
		if _, err := Encode(kp, bad); err == nil {
			t.Errorf("Encode with partitions=%d should fail", bad)
		}
	}
	if _, err := Encode(kp, 8); err != nil {
		t.Errorf("Encode with partitions=8 failed: %v", err)
	}
}

func TestEncodeMissingPartIsZero(t *testing.T) {
	kp := KeyPoints{Waist: imaging.Point{X: 50, Y: 50}}
	kp.Set(PartHead, imaging.Point{X: 50, Y: 10})
	kp.Set(PartFoot, imaging.Point{X: 50, Y: 90})
	enc, err := Encode(kp, 8)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Area[int(PartHand)-1] != 0 {
		t.Error("absent hand should encode as 0")
	}
	if enc.Area[int(PartHead)-1] != 3 {
		t.Errorf("head above waist = area %d, want 3", enc.Area[int(PartHead)-1])
	}
	if enc.Area[int(PartFoot)-1] != 7 {
		t.Errorf("foot below waist = area %d, want 7", enc.Area[int(PartFoot)-1])
	}
}

func TestEncodingKeyAndOccupied(t *testing.T) {
	kp := KeyPoints{Waist: imaging.Point{X: 0, Y: 0}}
	kp.Set(PartHead, imaging.Point{X: 0, Y: -10})
	kp.Set(PartHand, imaging.Point{X: 10, Y: 0})
	kp.Set(PartFoot, imaging.Point{X: 0, Y: 10})
	enc, err := Encode(kp, 8)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Key() == "" {
		t.Error("empty Key()")
	}
	occ := enc.OccupiedAreas()
	if len(occ) != 8 {
		t.Fatalf("OccupiedAreas length = %d", len(occ))
	}
	if !occ[0] || !occ[2] || !occ[6] {
		t.Errorf("areas 1,3,7 should be occupied: %v", occ)
	}
	if occ[1] || occ[3] {
		t.Errorf("unoccupied areas marked: %v", occ)
	}
}

func TestFromSkeleton2DStanding(t *testing.T) {
	s := pose.Compute(imaging.Pointf{X: 100, Y: 100}, 100, pose.Angles(pose.StandHandsAtSides), pose.DefaultProportions())
	kp := FromSkeleton2D(s)
	if kp.Count() != NumParts {
		t.Fatalf("parts = %d, want %d", kp.Count(), NumParts)
	}
	if kp.Loc(PartHead).Y >= kp.Waist.Y {
		t.Error("head should be above waist")
	}
	if kp.Loc(PartFoot).Y <= kp.Waist.Y {
		t.Error("foot should be below waist")
	}
	// Foot must be the lowest of all parts — the paper's anchor rule.
	for _, part := range Parts() {
		if p := kp.Loc(part); p.Y > kp.Loc(PartFoot).Y {
			t.Errorf("%v at %v is lower than foot %v", part, p, kp.Loc(PartFoot))
		}
	}
}

func TestFromSkeleton2DHandsForwardEncoding(t *testing.T) {
	s := pose.Compute(imaging.Pointf{X: 100, Y: 100}, 100, pose.Angles(pose.StandHandsForward), pose.DefaultProportions())
	enc, err := Encode(FromSkeleton2D(s), 8)
	if err != nil {
		t.Fatal(err)
	}
	// Hands forward at shoulder height: the hand is forward-up of the
	// waist, i.e. area 1..3.
	hand := enc.Area[int(PartHand)-1]
	if hand < 1 || hand > 3 {
		t.Errorf("forward hand encoded in area %d, want 1-3", hand)
	}
}

// buildFigure constructs a synthetic silhouette for a given pose, thins it
// and builds the pruned skeleton graph — the full Section 3 front end.
func buildFigure(t *testing.T, p pose.Pose) (*skelgraph.Graph, pose.Skeleton2D) {
	t.Helper()
	root := imaging.Pointf{X: 120, Y: 110}
	const height = 110
	s := pose.Compute(root, height, pose.Angles(p), pose.DefaultProportions())
	prop := pose.DefaultProportions()
	img := imaging.NewBinary(240, 200)
	imaging.FillDisc(img, s.Head, prop.HeadRadius*height)
	imaging.FillCapsule(img, s.Hip, s.Shoulder, 0.055*height)
	imaging.FillCapsule(img, s.Shoulder, s.Elbow, 0.03*height)
	imaging.FillCapsule(img, s.Elbow, s.Hand, 0.025*height)
	imaging.FillCapsule(img, s.Hip, s.Knee, 0.045*height)
	imaging.FillCapsule(img, s.Knee, s.Ankle, 0.035*height)
	imaging.FillCapsule(img, s.Ankle, s.Toe, 0.025*height)
	skel := thinning.Thin(img, thinning.ZhangSuen)
	g, err := skelgraph.Build(skel)
	if err != nil {
		t.Fatal(err)
	}
	g.Prune(skelgraph.DefaultPruneLen)
	return g, s
}

func TestFromGraphStandingFigure(t *testing.T) {
	g, s := buildFigure(t, pose.StandHandsForward)
	kp, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	// Head near the model head, foot near the model toe/ankle (within a
	// generous tolerance: thinning erodes extremities).
	if d := dist(kp.Loc(PartHead), s.Head.Round()); d > 18 {
		t.Errorf("extracted head %v too far from model %v (%.1f px)", kp.Loc(PartHead), s.Head.Round(), d)
	}
	foot := kp.Loc(PartFoot)
	if foot.Y < kp.Waist.Y {
		t.Error("extracted foot above waist")
	}
	// The hand must be found for an arms-forward pose and lie forward of
	// the waist.
	hand, ok := kp.At(PartHand)
	if !ok {
		t.Fatal("hand not found in arms-forward figure")
	}
	if hand.X <= kp.Waist.X {
		t.Errorf("hand %v should be forward (+X) of waist %v", hand, kp.Waist)
	}
}

func TestFromGraphHandsAtSidesHasNoHand(t *testing.T) {
	g, _ := buildFigure(t, pose.StandHandsAtSides)
	kp, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	// Arms overlap the body: any detected "hand" endpoint must be very
	// close to the torso, so either no hand or a tiny protrusion.
	if hand, ok := kp.At(PartHand); ok {
		// Permit a small spur but it must not protrude far forward.
		if dx := hand.X - kp.Waist.X; dx > 25 {
			t.Errorf("phantom hand at %v for arms-at-sides pose", hand)
		}
	}
}

func TestFromGraphDegenerate(t *testing.T) {
	// A single short line: 2 endpoints, still works (head top, foot
	// bottom). A dot graph: degenerate.
	img := imaging.NewBinary(10, 10)
	img.Set(5, 5, 1)
	g, err := skelgraph.Build(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromGraph(g); !errors.Is(err, ErrDegenerate) {
		t.Errorf("err = %v, want ErrDegenerate", err)
	}
}

func TestFromGraphVerticalLine(t *testing.T) {
	img := imaging.NewBinary(11, 60)
	for y := 5; y < 55; y++ {
		img.Set(5, y, 1)
	}
	g, err := skelgraph.Build(img)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if kp.Loc(PartHead) != (imaging.Point{X: 5, Y: 5}) {
		t.Errorf("head = %v", kp.Loc(PartHead))
	}
	if kp.Loc(PartFoot) != (imaging.Point{X: 5, Y: 54}) {
		t.Errorf("foot = %v", kp.Loc(PartFoot))
	}
	// Waist at the middle of the path.
	if kp.Waist.Y < 27 || kp.Waist.Y > 32 {
		t.Errorf("waist = %v, want mid-line", kp.Waist)
	}
	// Chest between head and waist; knee between waist and foot.
	if c := kp.Loc(PartChest); c.Y <= kp.Loc(PartHead).Y || c.Y >= kp.Waist.Y {
		t.Errorf("chest = %v not between head and waist", c)
	}
	if k := kp.Loc(PartKnee); k.Y <= kp.Waist.Y || k.Y >= kp.Loc(PartFoot).Y {
		t.Errorf("knee = %v not between waist and foot", k)
	}
}

func TestPosesEncodeDifferently(t *testing.T) {
	// Ground-truth encodings of representative poses from different
	// stages must differ — otherwise the DBN could never separate them.
	posesToCheck := []pose.Pose{
		pose.StandHandsForward,
		pose.CrouchHandsBackward,
		pose.TakeoffToeOff,
		pose.AirTuck,
		pose.LandCrouch,
	}
	keys := make(map[string]pose.Pose)
	for _, p := range posesToCheck {
		s := pose.Compute(imaging.Pointf{X: 100, Y: 100}, 100, pose.Angles(p), pose.DefaultProportions())
		enc, err := Encode(FromSkeleton2D(s), 8)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := keys[enc.Key()]; dup {
			t.Errorf("poses %v and %v share encoding %s", prev, p, enc.Key())
		}
		keys[enc.Key()] = p
	}
}

func dist(a, b imaging.Point) float64 {
	dx, dy := float64(a.X-b.X), float64(a.Y-b.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

func TestEncodeRadialValidation(t *testing.T) {
	kp := KeyPoints{Waist: imaging.Point{X: 0, Y: 0}}
	if _, err := EncodeRadial(kp, 8, -1); err == nil {
		t.Error("negative rings accepted")
	}
	if _, err := EncodeRadial(kp, 8, 0); err != nil {
		t.Errorf("rings=0 rejected: %v", err)
	}
}

func TestEncodeRadialRingOrdering(t *testing.T) {
	kp := KeyPoints{
		Waist:    imaging.Point{X: 100, Y: 100},
		TorsoLen: 100,
	}
	kp.Set(PartChest, imaging.Point{X: 100, Y: 90})  // near: d = 0.1 torso
	kp.Set(PartHead, imaging.Point{X: 100, Y: 40})   // mid: d = 0.6
	kp.Set(PartHand, imaging.Point{X: 250, Y: 100})  // far beyond span: clamps
	enc, err := EncodeRadial(kp, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	chest := enc.Ring[int(PartChest)-1]
	head := enc.Ring[int(PartHead)-1]
	hand := enc.Ring[int(PartHand)-1]
	if !(chest < head && head <= hand) {
		t.Errorf("ring ordering violated: chest=%d head=%d hand=%d", chest, head, hand)
	}
	if hand != 4 {
		t.Errorf("far hand should clamp to outermost ring, got %d", hand)
	}
	// Missing parts stay ring 0.
	if enc.Ring[int(PartFoot)-1] != 0 {
		t.Error("missing foot should have ring 0")
	}
}

func TestEncodeRadialKeyIncludesRings(t *testing.T) {
	kp := KeyPoints{Waist: imaging.Point{X: 0, Y: 0}, TorsoLen: 50}
	kp.Set(PartHead, imaging.Point{X: 0, Y: -30})
	plain, err := Encode(kp, 8)
	if err != nil {
		t.Fatal(err)
	}
	radial, err := EncodeRadial(kp, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Key() == radial.Key() {
		t.Error("radial encoding key should differ from plain key")
	}
}

func TestEncodeBackCompat(t *testing.T) {
	// Encode must equal EncodeRadial with rings 0.
	s := pose.Compute(imaging.Pointf{X: 100, Y: 100}, 100, pose.Angles(pose.AirTuck), pose.DefaultProportions())
	kp := FromSkeleton2D(s)
	a, err := Encode(kp, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeRadial(kp, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("Encode != EncodeRadial(rings=0): %+v vs %+v", a, b)
	}
}

func TestEncodingTranslationInvariance(t *testing.T) {
	// Property: translating all key points and the waist together leaves
	// the encoding unchanged.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		kp := KeyPoints{
			Waist:    imaging.Point{X: 100, Y: 100},
			TorsoLen: 80,
		}
		for _, part := range Parts() {
			kp.Set(part, imaging.Point{X: 100 + r.Intn(81) - 40, Y: 100 + r.Intn(81) - 40})
		}
		base, err := EncodeRadial(kp, 8, 3)
		if err != nil {
			return false
		}
		dx, dy := r.Intn(201)-100, r.Intn(201)-100
		moved := KeyPoints{
			Waist:    kp.Waist.Add(imaging.Point{X: dx, Y: dy}),
			TorsoLen: kp.TorsoLen,
		}
		for _, part := range Parts() {
			moved.Set(part, kp.Loc(part).Add(imaging.Point{X: dx, Y: dy}))
		}
		got, err := EncodeRadial(moved, 8, 3)
		if err != nil {
			return false
		}
		return got == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
