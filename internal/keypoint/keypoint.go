// Package keypoint extracts the paper's five key points (Head, Chest,
// Hand, Knee, Foot) from a pruned skeleton graph and encodes them as the
// Figure 6 feature vector: the index of the area (of eight around the
// waist) each key point falls in.
//
// The assignment rules come from Section 4:
//
//   - "we set the lowest point to be Foot because no matter what pose it
//     is Foot is always the lowest point";
//   - the highest end vertex is the Head;
//   - "the path from Head to Foot is used as the torso, and the waist
//     location can be estimated. The waist location is set to be in the
//     middle of the torso";
//   - Chest sits midway between Head and waist on that path, Knee midway
//     between waist and Foot;
//   - the Hand is the most protruding remaining end vertex; when the arms
//     overlap the body no such vertex exists and the Hand collapses onto
//     the waist (area 0), which is itself the signature of the "hands
//     overlap with body" poses.
//
// The number of partitions defaults to the paper's 8 but is configurable,
// implementing the conclusion's "more partitions instead of just eight
// ... can be used for feature encoding" extension.
package keypoint

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/imaging"
	"repro/internal/pose"
	"repro/internal/skelgraph"
)

// DefaultPartitions is the paper's eight areas.
const DefaultPartitions = 8

// minHandProtrusion is the minimum distance (pixels) an end vertex must
// stand off the torso path to be accepted as the Hand.
const minHandProtrusion = 4.0

// Errors returned by extraction.
var (
	// ErrDegenerate reports a skeleton with fewer than two end vertices,
	// from which no head-to-foot torso can be formed.
	ErrDegenerate = errors.New("keypoint: degenerate skeleton (fewer than two endpoints)")
	// ErrNoTorso reports that no path connects the chosen head and foot.
	ErrNoTorso = errors.New("keypoint: no head-to-foot path")
)

// Part names one of the five key points.
type Part int

// The five body parts of the BN's hidden nodes.
const (
	PartHead Part = iota + 1
	PartChest
	PartHand
	PartKnee
	PartFoot

	// NumParts is the number of body parts.
	NumParts = int(PartFoot)
)

// String implements fmt.Stringer.
func (p Part) String() string {
	switch p {
	case PartHead:
		return "Head"
	case PartChest:
		return "Chest"
	case PartHand:
		return "Hand"
	case PartKnee:
		return "Knee"
	case PartFoot:
		return "Foot"
	default:
		return fmt.Sprintf("part(%d)", int(p))
	}
}

// partsOrder is the canonical part order as a package-level array so hot
// paths can range over it without the allocation Parts() pays for its
// fresh slice.
var partsOrder = [NumParts]Part{PartHead, PartChest, PartHand, PartKnee, PartFoot}

// Parts lists the five parts in canonical order. The slice is freshly
// allocated; callers may modify it.
func Parts() []Part { return []Part{PartHead, PartChest, PartHand, PartKnee, PartFoot} }

// KeyPoints holds the located key points plus the waist origin. Part
// locations are stored in fixed arrays indexed by Part (it replaced a
// per-frame map allocation); read them with At/Loc/Has and write them
// with Set.
type KeyPoints struct {
	// Waist is the encoding origin (middle of the torso path).
	Waist imaging.Point
	// TorsoLen is the pixel length of the head-to-foot path, a scale
	// reference for protrusion thresholds and tests.
	TorsoLen int

	pos [NumParts]imaging.Point
	has [NumParts]bool
}

// Set records part's pixel location.
func (kp *KeyPoints) Set(part Part, p imaging.Point) {
	kp.pos[part-1] = p
	kp.has[part-1] = true
}

// At returns part's pixel location and whether the part was located. A
// part may be absent (e.g. Hand when the arms overlap the body); absent
// parts encode as area 0.
func (kp KeyPoints) At(part Part) (imaging.Point, bool) {
	return kp.pos[part-1], kp.has[part-1]
}

// Loc returns part's pixel location, or the zero point when absent.
func (kp KeyPoints) Loc(part Part) imaging.Point { return kp.pos[part-1] }

// Has reports whether part was located.
func (kp KeyPoints) Has(part Part) bool { return kp.has[part-1] }

// Count returns the number of located parts.
func (kp KeyPoints) Count() int {
	n := 0
	for _, ok := range kp.has {
		if ok {
			n++
		}
	}
	return n
}

// HandAbsent reports whether the Hand key point is missing — the arms
// overlapped the body and no end vertex protruded past the torso, so
// the Hand collapsed onto the waist (area 0). For the "hands overlap
// with body" poses this is expected; a high rate on other poses is the
// implausible-keypoint signal the pipeline.hand_absent counter tracks.
func (kp KeyPoints) HandAbsent() bool {
	return !kp.Has(PartHand)
}

// Scratch is a per-worker arena for FromGraphScratch: the component
// membership mask and endpoint list reused between frames. The zero
// value is ready to use; not safe for concurrent use.
type Scratch struct {
	inComp []bool
	ends   []int
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch returns a key-point arena from the pool; pair with
// PutScratch under the usual pool discipline.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns an arena to the pool. The caller must not touch it
// afterwards. nil is ignored.
func PutScratch(sc *Scratch) {
	if sc == nil {
		return
	}
	scratchPool.Put(sc)
}

// FromGraph locates the key points on a built (and ideally pruned)
// skeleton graph, using only its largest connected component.
func FromGraph(g *skelgraph.Graph) (KeyPoints, error) {
	return FromGraphScratch(g, nil)
}

// FromGraphScratch is FromGraph with its working buffers drawn from a
// per-worker arena; nil behaves exactly like FromGraph. The returned
// KeyPoints value is self-contained either way.
//slj:hotpath
func FromGraphScratch(g *skelgraph.Graph, sc *Scratch) (KeyPoints, error) {
	// Membership of the largest component as a node-indexed []bool — it
	// replaced the map[int]bool this step used to allocate per frame.
	var inComp []bool
	if sc != nil {
		inComp = sc.inComp
	}
	inComp = g.MarkLargestComponent(inComp)
	if sc != nil {
		sc.inComp = inComp
	}
	var ends []int
	if sc != nil {
		ends = sc.ends[:0]
	}
	for e := range g.Nodes {
		if inComp[e] && g.Degree(e) == 1 {
			ends = append(ends, e)
		}
	}
	if sc != nil {
		sc.ends = ends
	}
	if len(ends) < 2 {
		return KeyPoints{}, ErrDegenerate
	}
	// Foot: lowest endpoint; Head: highest endpoint.
	foot, head := ends[0], ends[0]
	for _, e := range ends[1:] {
		if p, f := g.Nodes[e].P, g.Nodes[foot].P; p.Y > f.Y || (p.Y == f.Y && p.X > f.X) {
			foot = e
		}
		if p, h := g.Nodes[e].P, g.Nodes[head].P; p.Y < h.Y || (p.Y == h.Y && p.X < h.X) {
			head = e
		}
	}
	if foot == head {
		return KeyPoints{}, ErrDegenerate
	}
	torso, ok := g.PixelPath(head, foot)
	if !ok || len(torso) < 4 {
		return KeyPoints{}, ErrNoTorso
	}
	kp := KeyPoints{
		Waist:    torso[len(torso)/2],
		TorsoLen: len(torso),
	}
	kp.Set(PartHead, g.Nodes[head].P)
	kp.Set(PartFoot, g.Nodes[foot].P)
	kp.Set(PartChest, torso[len(torso)/4])
	kp.Set(PartKnee, torso[3*len(torso)/4])

	// Hand: the remaining endpoint most distant from the torso path,
	// if it protrudes enough.
	bestDist := minHandProtrusion
	var hand imaging.Point
	found := false
	for _, e := range ends {
		if e == head || e == foot {
			continue
		}
		d := distToPath(g.Nodes[e].P, torso)
		if d > bestDist {
			bestDist, hand, found = d, g.Nodes[e].P, true
		}
	}
	if found {
		kp.Set(PartHand, hand)
	}
	return kp, nil
}

// FromSkeleton2D derives ground-truth key points directly from the
// synthetic body model — the paper's training phase, where "we input the
// locations of Head, Hand and Foot". The waist is the hip root, matching
// the mid-torso convention.
func FromSkeleton2D(s pose.Skeleton2D) KeyPoints {
	foot := s.Ankle
	if s.Toe.Y > foot.Y {
		foot = s.Toe
	}
	kp := KeyPoints{
		Waist:    s.Hip.Round(),
		TorsoLen: int(s.Head.Dist(foot)),
	}
	kp.Set(PartHead, s.Head.Round())
	kp.Set(PartChest, s.Chest.Round())
	kp.Set(PartHand, s.Hand.Round())
	kp.Set(PartKnee, s.Knee.Round())
	kp.Set(PartFoot, foot.Round())
	return kp
}

func distToPath(p imaging.Point, path []imaging.Point) float64 {
	best := math.MaxFloat64
	for _, q := range path {
		dx, dy := float64(p.X-q.X), float64(p.Y-q.Y)
		if d := dx*dx + dy*dy; d < best {
			best = d
		}
	}
	return math.Sqrt(best)
}

// Encoding is the Figure 6 feature vector: for each of the five parts the
// index (1..Partitions) of the area around the waist it falls in, or 0
// when the part is absent or coincides with the waist.
//
// When Rings > 0 the encoding additionally carries radial information —
// the conclusion's "more information would further improve the
// classification results": each part's distance from the waist,
// normalised by the torso length and quantised into Rings bands.
type Encoding struct {
	// Partitions is the number of angular areas (paper: 8).
	Partitions int
	// Area is indexed by Part-1.
	Area [NumParts]int
	// Rings is the number of radial bands (0 disables radial features,
	// the paper's configuration).
	Rings int
	// Ring is indexed by Part-1; 0 = absent/at origin, 1..Rings by
	// growing distance.
	Ring [NumParts]int
}

// Encode computes the area of every key point around the waist origin.
// partitions must be >= 4 and even; the paper's value is 8. Sector
// boundaries are rotated by half a sector so that the cardinal directions
// (straight up, straight down, ...) fall mid-sector, making the encoding
// stable for upright poses.
func Encode(kp KeyPoints, partitions int) (Encoding, error) {
	return EncodeRadial(kp, partitions, 0)
}

// maxRadialSpan is the normalised distance (in torso lengths, i.e.
// head-to-foot path lengths) mapped onto the ring range; parts farther
// out clamp to the outermost ring.
const maxRadialSpan = 0.8

// EncodeRadial computes the Figure 6 area codes plus, when rings > 0,
// a quantised waist distance per part — the "more information" extension
// of the paper's conclusion. rings < 0 is rejected.
//slj:hotpath
func EncodeRadial(kp KeyPoints, partitions, rings int) (Encoding, error) {
	if partitions < 4 || partitions%2 != 0 {
		return Encoding{}, fmt.Errorf("keypoint: partitions = %d, want even and >= 4", partitions) //slj:alloc-ok cold validation path, rejected before any frame work
	}
	if rings < 0 {
		return Encoding{}, fmt.Errorf("keypoint: rings = %d, want >= 0", rings) //slj:alloc-ok cold validation path, rejected before any frame work
	}
	enc := Encoding{Partitions: partitions, Rings: rings}
	for _, part := range partsOrder {
		p, ok := kp.At(part)
		if !ok {
			continue // area and ring stay 0
		}
		enc.Area[int(part)-1] = AreaOf(p, kp.Waist, partitions)
		if rings > 0 && kp.TorsoLen > 0 {
			dx, dy := float64(p.X-kp.Waist.X), float64(p.Y-kp.Waist.Y)
			d := math.Sqrt(dx*dx+dy*dy) / float64(kp.TorsoLen)
			ring := int(d/(maxRadialSpan/float64(rings))) + 1
			if ring > rings {
				ring = rings
			}
			if d == 0 {
				ring = 0
			}
			enc.Ring[int(part)-1] = ring
		}
	}
	return enc, nil
}

// AreaOf returns the 1-based area index of point p around origin o, or 0
// when p == o. Area 1 is centred on the forward (+X) direction and
// indices increase counter-clockwise (in standard orientation; note image
// Y grows downward).
func AreaOf(p, o imaging.Point, partitions int) int {
	dx := float64(p.X - o.X)
	dy := float64(o.Y - p.Y) // flip to mathematical orientation
	if dx == 0 && dy == 0 {
		return 0
	}
	theta := math.Atan2(dy, dx) // (-pi, pi]
	if theta < 0 {
		theta += 2 * math.Pi
	}
	sector := 2 * math.Pi / float64(partitions)
	// Rotate by half a sector so direction 0 is a sector centre.
	theta += sector / 2
	if theta >= 2*math.Pi {
		theta -= 2 * math.Pi
	}
	idx := int(theta / sector)
	if idx >= partitions { // guard against FP edge
		idx = partitions - 1
	}
	return idx + 1
}

// Key returns a compact string form of the encoding, usable as a map key
// for counting feature-vector occurrences.
func (e Encoding) Key() string {
	k := fmt.Sprintf("%d:%d,%d,%d,%d,%d", e.Partitions,
		e.Area[0], e.Area[1], e.Area[2], e.Area[3], e.Area[4])
	if e.Rings > 0 {
		k += fmt.Sprintf("|%d:%d,%d,%d,%d,%d", e.Rings,
			e.Ring[0], e.Ring[1], e.Ring[2], e.Ring[3], e.Ring[4])
	}
	return k
}

// OccupiedAreas returns, for the 8 (or Partitions) observed BN nodes, a
// bitmask-like slice: out[j] is true when some part lies in area j+1.
func (e Encoding) OccupiedAreas() []bool {
	out := make([]bool, e.Partitions)
	for _, a := range e.Area {
		if a >= 1 && a <= e.Partitions {
			out[a-1] = true
		}
	}
	return out
}
