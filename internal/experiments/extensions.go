package experiments

import (
	"fmt"
	"strings"

	slj "repro"
	"repro/internal/dataset"
	"repro/internal/dbn"
	"repro/internal/stats"
)

// ---------------------------------------------------------------------------
// EXT3 — joint (Viterbi) decoding versus the paper's greedy decoder.
// The paper observes that "a misclassified frame will still affect the
// classification of its subsequent frames" and asks for refinement on
// the DBN; this experiment quantifies how much joint decoding buys.

// Ext3Result compares the decoders on identical inputs.
type Ext3Result struct {
	GreedyAccuracy, ViterbiAccuracy float64
	// MeanErrorRunGreedy and MeanErrorRunViterbi measure error
	// clustering under each decoder.
	MeanErrorRunGreedy, MeanErrorRunViterbi float64
	// UnknownRateGreedy is the greedy decoder's reject rate (Viterbi
	// never rejects).
	UnknownRateGreedy float64
}

// Ext3 trains once and decodes the test clips both ways.
func Ext3(cfg Config) (Ext3Result, error) {
	ds, err := dataset.Generate(genOpts(cfg))
	if err != nil {
		return Ext3Result{}, err
	}
	sys, err := slj.NewSystem()
	if err != nil {
		return Ext3Result{}, err
	}
	if err := sys.Train(ds.Train); err != nil {
		return Ext3Result{}, err
	}
	var res Ext3Result
	var greedySum, viterbiSum stats.Summary
	unknown, frames := 0, 0
	for _, lc := range ds.Test {
		truth := lc.Clip.Labels()
		results, err := sys.ClassifyClip(lc)
		if err != nil {
			return Ext3Result{}, err
		}
		greedy := slj.Poses(results)
		for _, p := range greedy {
			if p == 0 {
				unknown++
			}
		}
		frames += len(greedy)
		gr, err := stats.EvaluateClip(lc.Name, truth, greedy)
		if err != nil {
			return Ext3Result{}, err
		}
		greedySum.Add(gr)

		viterbi, err := sys.ClassifyClipViterbi(lc)
		if err != nil {
			return Ext3Result{}, err
		}
		vr, err := stats.EvaluateClip(lc.Name, truth, viterbi)
		if err != nil {
			return Ext3Result{}, err
		}
		viterbiSum.Add(vr)
	}
	res.GreedyAccuracy = greedySum.OverallAccuracy()
	res.ViterbiAccuracy = viterbiSum.OverallAccuracy()
	res.MeanErrorRunGreedy = meanRun(greedySum)
	res.MeanErrorRunViterbi = meanRun(viterbiSum)
	if frames > 0 {
		res.UnknownRateGreedy = float64(unknown) / float64(frames)
	}
	return res, nil
}

func meanRun(s stats.Summary) float64 {
	runs, total := 0, 0
	for _, c := range s.Clips {
		for l, n := range c.ErrorRuns {
			runs += n
			total += l * n
		}
	}
	if runs == 0 {
		return 0
	}
	return float64(total) / float64(runs)
}

// String implements fmt.Stringer.
func (r Ext3Result) String() string {
	return fmt.Sprintf(`EXT3 greedy (paper) vs Viterbi joint decoding
accuracy: greedy %.1f%% (unknown rate %.1f%%) vs Viterbi %.1f%%
mean consecutive-error run: greedy %.2f vs Viterbi %.2f
(joint decoding is the natural "refinement on the DBN" the conclusion anticipates)
`, 100*r.GreedyAccuracy, 100*r.UnknownRateGreedy, 100*r.ViterbiAccuracy,
		r.MeanErrorRunGreedy, r.MeanErrorRunViterbi)
}

// ---------------------------------------------------------------------------
// EXT4 — evidence-channel ablation: the five hidden part nodes versus
// the eight observed area nodes versus both (the paper's full Figure 7
// structure).

// Ext4Result sweeps the evidence channels.
type Ext4Result struct {
	Channels []string
	Accuracy []float64
}

// Ext4 evaluates part-only, area-only and combined evidence.
func Ext4(cfg Config) (Ext4Result, error) {
	ds, err := dataset.Generate(genOpts(cfg))
	if err != nil {
		return Ext4Result{}, err
	}
	variants := []struct {
		name         string
		parts, areas bool
	}{
		{"parts-only (5 hidden nodes)", true, false},
		{"areas-only (8 observed nodes)", false, true},
		{"both (paper structure)", true, true},
	}
	var res Ext4Result
	for _, v := range variants {
		c := dbn.DefaultConfig()
		c.UsePartEvidence, c.UseAreaEvidence = v.parts, v.areas
		sys, err := slj.NewSystem(slj.WithClassifierConfig(c))
		if err != nil {
			return Ext4Result{}, err
		}
		if err := sys.Train(ds.Train); err != nil {
			return Ext4Result{}, err
		}
		sum, _, err := sys.Evaluate(ds.Test)
		if err != nil {
			return Ext4Result{}, err
		}
		res.Channels = append(res.Channels, v.name)
		res.Accuracy = append(res.Accuracy, sum.OverallAccuracy())
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r Ext4Result) String() string {
	var b strings.Builder
	b.WriteString("EXT4 evidence-channel ablation (Figure 7's hidden parts vs observed areas)\n")
	for i, c := range r.Channels {
		fmt.Fprintf(&b, "  %-32s %.1f%%\n", c, 100*r.Accuracy[i])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// JUMP — jump-distance measurement from the tracked foot positions, the
// quantity a PE teacher actually records. Validates the track substrate
// against the generator's known flight span.

// JumpResult compares measured jump distances against the generator's
// ground truth.
type JumpResult struct {
	Clips []string
	// MeasuredPx and TruthPx are parallel to Clips.
	MeasuredPx, TruthPx []float64
	BodyHeights         []float64
}

// Jump measures every test clip.
func Jump(cfg Config) (JumpResult, error) {
	ds, err := dataset.Generate(genOpts(cfg))
	if err != nil {
		return JumpResult{}, err
	}
	sys, err := slj.NewSystem()
	if err != nil {
		return JumpResult{}, err
	}
	var res JumpResult
	for _, lc := range ds.Test {
		m, err := sys.MeasureJump(lc)
		if err != nil {
			return JumpResult{}, fmt.Errorf("measuring %s: %w", lc.Name, err)
		}
		res.Clips = append(res.Clips, lc.Name)
		res.MeasuredPx = append(res.MeasuredPx, m.DistancePx)
		res.TruthPx = append(res.TruthPx, lc.Clip.Spec.JumpSpan)
		res.BodyHeights = append(res.BodyHeights, m.BodyHeights)
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r JumpResult) String() string {
	var b strings.Builder
	b.WriteString("JUMP distance measurement from tracked foot positions\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %14s\n", "clip", "measured px", "spec span", "body heights")
	for i, c := range r.Clips {
		fmt.Fprintf(&b, "%-10s %12.1f %12.1f %14.2f\n", c, r.MeasuredPx[i], r.TruthPx[i], r.BodyHeights[i])
	}
	return b.String()
}
