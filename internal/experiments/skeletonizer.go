package experiments

import (
	"fmt"
	"strings"
	"time"

	slj "repro"
	"repro/internal/dataset"
	"repro/internal/ga"
	"repro/internal/thinning"
)

// EXT5 — end-to-end skeletonizer ablation: Zhang–Suen (the paper's
// choice) versus Guo–Hall versus the medial axis, measured by final pose
// accuracy. It closes the loop on the paper's Section 3 design decision:
// the skeletonizer is judged not by skeleton aesthetics but by whether
// the DBN can classify the poses it yields.

// Ext5Result is the skeletonizer sweep.
type Ext5Result struct {
	Algorithms []string
	Accuracy   []float64
	// KeyPointRate is the fraction of test frames with all key points
	// recovered (fragmented skeletons fail here).
	KeyPointRate []float64
}

// Ext5 evaluates the full pipeline per skeletonizer.
func Ext5(cfg Config) (Ext5Result, error) {
	ds, err := dataset.Generate(genOpts(cfg))
	if err != nil {
		return Ext5Result{}, err
	}
	var res Ext5Result
	for _, alg := range []thinning.Algorithm{thinning.ZhangSuen, thinning.GuoHall, thinning.MedialAxis} {
		t0 := time.Now()
		eng, err := cfg.newEngine(slj.WithThinning(alg))
		if err != nil {
			return Ext5Result{}, err
		}
		if err := eng.Train(ds.Train); err != nil {
			return Ext5Result{}, err
		}
		sum, _, err := eng.Evaluate(ds.Test)
		if err != nil {
			return Ext5Result{}, err
		}
		// Key-point recovery rate over test frames (per-frame inspection
		// needs the raw System; it is sequential by nature).
		sys := eng.System()
		okFrames, frames := 0, 0
		for _, lc := range ds.Test {
			sys.SetBackground(lc.Clip.Background)
			for _, fr := range lc.Clip.Frames {
				fa, err := sys.AnalyzeFrame(fr.Image)
				if err != nil {
					return Ext5Result{}, err
				}
				frames++
				if fa.KeyPointsOK {
					okFrames++
				}
			}
		}
		cfg.sweepPoint("ext5."+alg.String(), t0)
		res.Algorithms = append(res.Algorithms, alg.String())
		res.Accuracy = append(res.Accuracy, sum.OverallAccuracy())
		res.KeyPointRate = append(res.KeyPointRate, float64(okFrames)/float64(frames))
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r Ext5Result) String() string {
	var b strings.Builder
	b.WriteString("EXT5 skeletonizer ablation (end-to-end pose accuracy per algorithm)\n")
	fmt.Fprintf(&b, "%-14s %10s %16s\n", "algorithm", "accuracy", "key-point rate")
	for i, alg := range r.Algorithms {
		fmt.Fprintf(&b, "%-14s %9.1f%% %15.1f%%\n", alg, 100*r.Accuracy[i], 100*r.KeyPointRate[i])
	}
	return b.String()
}

// EXT6 — radial features: the conclusion's "more information would
// further improve the classification results", realised as quantised
// waist-distance rings per part on top of the eight areas.

// Ext6Result is the ring sweep.
type Ext6Result struct {
	Rings    []int
	Accuracy []float64
}

// Ext6 evaluates the pipeline with 0 (paper), 2, 3 and 4 radial bands.
func Ext6(cfg Config) (Ext6Result, error) {
	ds, err := dataset.Generate(genOpts(cfg))
	if err != nil {
		return Ext6Result{}, err
	}
	rings := []int{0, 2, 3, 4}
	if cfg.Quick {
		rings = rings[:2]
	}
	var res Ext6Result
	for _, r := range rings {
		sys, err := slj.NewSystem(slj.WithRings(r))
		if err != nil {
			return Ext6Result{}, err
		}
		if err := sys.Train(ds.Train); err != nil {
			return Ext6Result{}, err
		}
		sum, _, err := sys.Evaluate(ds.Test)
		if err != nil {
			return Ext6Result{}, err
		}
		res.Rings = append(res.Rings, r)
		res.Accuracy = append(res.Accuracy, sum.OverallAccuracy())
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r Ext6Result) String() string {
	var b strings.Builder
	b.WriteString("EXT6 radial features (conclusion: \"more information would further improve\")\n")
	for i, n := range r.Rings {
		label := fmt.Sprintf("%d rings", n)
		if n == 0 {
			label = "0 rings (paper)"
		}
		fmt.Fprintf(&b, "  %-16s %.1f%%\n", label, 100*r.Accuracy[i])
	}
	return b.String()
}

// EXT7 — the two complete systems head to head: the paper's thinning
// pipeline versus the previous work's GA stick-model pipeline, trained
// and evaluated identically. The paper's claim is that thinning is
// "somewhat rough and not as precise as the predefined stick model" but
// "still can provide meaningful information about the pose" at a
// fraction of the cost; this experiment puts final numbers on it.

// Ext7Result compares the two front ends end to end.
type Ext7Result struct {
	ThinningAccuracy, GAAccuracy float64
	ThinningSeconds, GASeconds   float64
}

// Ext7 trains and evaluates both systems on the same (reduced) corpus.
// The GA budget is deliberately modest — the full default budget would
// take minutes per clip, which is itself the paper's point.
func Ext7(cfg Config) (Ext7Result, error) {
	opts := genOpts(cfg)
	// The GA is ~two orders of magnitude slower per frame; shrink the
	// corpus so the experiment stays tractable at full size too.
	if !cfg.Quick {
		opts.TrainClips, opts.TestClips = 4, 2
	}
	ds, err := dataset.Generate(opts)
	if err != nil {
		return Ext7Result{}, err
	}
	var res Ext7Result

	run := func(fe slj.FrontEnd) (float64, float64, error) {
		sysOpts := []slj.Option{slj.WithFrontEnd(fe)}
		if fe == slj.FrontEndGA {
			gaCfg := ga.Config{Population: 24, Generations: 12, Seed: cfg.Seed}
			if cfg.Quick {
				gaCfg.Population, gaCfg.Generations = 12, 6
			}
			sysOpts = append(sysOpts, slj.WithGAConfig(gaCfg))
		}
		sys, err := slj.NewSystem(sysOpts...)
		if err != nil {
			return 0, 0, err
		}
		t0 := time.Now()
		if err := sys.Train(ds.Train); err != nil {
			return 0, 0, err
		}
		sum, _, err := sys.Evaluate(ds.Test)
		if err != nil {
			return 0, 0, err
		}
		return sum.OverallAccuracy(), time.Since(t0).Seconds(), nil
	}
	if res.ThinningAccuracy, res.ThinningSeconds, err = run(slj.FrontEndThinning); err != nil {
		return Ext7Result{}, err
	}
	if res.GAAccuracy, res.GASeconds, err = run(slj.FrontEndGA); err != nil {
		return Ext7Result{}, err
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r Ext7Result) String() string {
	ratio := 0.0
	if r.ThinningSeconds > 0 {
		ratio = r.GASeconds / r.ThinningSeconds
	}
	return fmt.Sprintf(`EXT7 complete systems: thinning (this paper) vs GA stick model (previous work)
thinning pipeline: %.1f%% accuracy in %.1fs (train+test)
GA pipeline:       %.1f%% accuracy in %.1fs (%.0fx slower, with a reduced GA budget)
`, 100*r.ThinningAccuracy, r.ThinningSeconds, 100*r.GAAccuracy, r.GASeconds, ratio)
}
