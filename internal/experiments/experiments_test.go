package experiments

import (
	"os"
	"strings"
	"testing"
)

// quickCfg runs every experiment in its reduced form; the full-size runs
// happen in cmd/sljexp and the repository benchmarks.
func quickCfg() Config { return Config{Seed: 2008, Quick: true} }

func TestNamesComplete(t *testing.T) {
	want := []string{"cv", "ext1", "ext10", "ext2", "ext3", "ext4", "ext5",
		"ext6", "ext7", "ext8", "ext9", "fig1", "fig2", "fig3", "fig4",
		"fig5", "fig6", "fig7", "fig8", "ga", "jump", "sec5", "sec5b"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := Run(name, quickCfg())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if s := res.String(); len(strings.TrimSpace(s)) == 0 {
				t.Fatalf("%s: empty report", name)
			}
		})
	}
}

func TestFig1SmoothingImprovesQuality(t *testing.T) {
	r, err := Fig1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanIoUSmooth < r.MeanIoURaw-0.02 {
		t.Errorf("smoothing hurt IoU: raw %.3f -> smooth %.3f", r.MeanIoURaw, r.MeanIoUSmooth)
	}
	for _, f := range r.Frames {
		if f.SmoothHoles > f.RawHoles {
			t.Errorf("smoothing increased holes: %d -> %d", f.RawHoles, f.SmoothHoles)
		}
	}
}

func TestFig3ForestInvariant(t *testing.T) {
	r, err := Fig3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.ForestViolations != 0 {
		t.Errorf("forest violations = %d, want 0", r.ForestViolations)
	}
	if r.MeanLenMax < r.MeanLenMin {
		t.Errorf("max spanning kept less skeleton (%.1f) than min (%.1f)", r.MeanLenMax, r.MeanLenMin)
	}
}

func TestFig4PaperClaim(t *testing.T) {
	r, err := Fig4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !r.TrueBranchSurvivesOneAtATime {
		t.Error("one-at-a-time pruning lost the true branch")
	}
	if r.TrueBranchSurvivesNaive {
		t.Error("naive pruning kept the true branch; scenario not discriminating")
	}
}

func TestFig7DynamicEdgeHelps(t *testing.T) {
	r, err := Fig7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes != 16 {
		t.Errorf("network nodes = %d, want 16", r.Nodes)
	}
	if r.PosteriorAfterCrouch <= r.PosteriorCold {
		t.Errorf("previous pose did not raise the posterior: %.4f vs %.4f",
			r.PosteriorAfterCrouch, r.PosteriorCold)
	}
}

func TestSec5QuickShape(t *testing.T) {
	r, err := Sec5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary.TotalFrames() == 0 {
		t.Fatal("no frames evaluated")
	}
	if acc := r.Summary.OverallAccuracy(); acc < 0.5 {
		t.Errorf("quick Sec5 accuracy = %.1f%%, want >= 50%%", 100*acc)
	}
}

func TestGABaselineCostClaim(t *testing.T) {
	r, err := GABaseline(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.SpeedupFactor < 2 {
		t.Errorf("GA only %.1fx slower than thinning; paper claims it is very time-consuming", r.SpeedupFactor)
	}
	if r.GAFitness <= 0 {
		t.Error("GA fitness is zero")
	}
}

func TestExt2MoreDataHelps(t *testing.T) {
	r, err := Ext2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Accuracy) < 2 {
		t.Fatal("sweep too short")
	}
	// More data should not dramatically hurt (noise tolerance 10 pts).
	first, last := r.Accuracy[0], r.Accuracy[len(r.Accuracy)-1]
	if last < first-0.10 {
		t.Errorf("accuracy fell with more data: %.2f -> %.2f", first, last)
	}
}

func TestExt3ViterbiNotWorse(t *testing.T) {
	r, err := Ext3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Joint decoding should not be dramatically worse than greedy (it is
	// usually better); allow 10 points of noise on the quick corpus.
	if r.ViterbiAccuracy < r.GreedyAccuracy-0.10 {
		t.Errorf("Viterbi %.2f much worse than greedy %.2f", r.ViterbiAccuracy, r.GreedyAccuracy)
	}
}

func TestExt4BothChannelsCompetitive(t *testing.T) {
	r, err := Ext4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Accuracy) != 3 {
		t.Fatalf("variants = %d", len(r.Accuracy))
	}
	both := r.Accuracy[2]
	for i, acc := range r.Accuracy[:2] {
		if both < acc-0.15 {
			t.Errorf("combined evidence (%.2f) much worse than %s (%.2f)", both, r.Channels[i], acc)
		}
	}
}

func TestJumpMeasurementShape(t *testing.T) {
	r, err := Jump(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Clips) == 0 {
		t.Fatal("no clips measured")
	}
	for i := range r.Clips {
		if r.MeasuredPx[i] < r.TruthPx[i]*0.5 || r.MeasuredPx[i] > r.TruthPx[i]*1.6 {
			t.Errorf("%s: measured %v px vs spec %v", r.Clips[i], r.MeasuredPx[i], r.TruthPx[i])
		}
	}
}

func TestExt5ZhangSuenCompetitive(t *testing.T) {
	r, err := Ext5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Algorithms) != 3 {
		t.Fatalf("algorithms = %v", r.Algorithms)
	}
	// The paper's Z-S choice must be competitive with the alternatives
	// (within 15 points on the quick corpus).
	zs := r.Accuracy[0]
	for i := 1; i < len(r.Accuracy); i++ {
		if zs < r.Accuracy[i]-0.15 {
			t.Errorf("Z-S (%.2f) much worse than %s (%.2f)", zs, r.Algorithms[i], r.Accuracy[i])
		}
	}
}

func TestExt6RingsNotHarmful(t *testing.T) {
	r, err := Ext6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Accuracy) < 2 {
		t.Fatal("sweep too short")
	}
	// Extra information should not be dramatically harmful.
	if r.Accuracy[1] < r.Accuracy[0]-0.15 {
		t.Errorf("rings hurt badly: %.2f -> %.2f", r.Accuracy[0], r.Accuracy[1])
	}
}

func TestExt8AutoOrientRecovers(t *testing.T) {
	r, err := Ext8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.MirroredAuto <= r.MirroredRaw {
		t.Errorf("auto-orient (%.2f) should beat raw mirrored decoding (%.2f)",
			r.MirroredAuto, r.MirroredRaw)
	}
	if r.MirroredAuto < r.Standard-0.25 {
		t.Errorf("auto-orient accuracy %.2f far below standard %.2f", r.MirroredAuto, r.Standard)
	}
}

func TestExt9NoiseDegradesGracefully(t *testing.T) {
	r, err := Ext9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Accuracy) < 2 {
		t.Fatal("sweep too short")
	}
	// 5% label noise must not collapse the system.
	if r.Accuracy[1] < r.Accuracy[0]-0.25 {
		t.Errorf("5%% noise collapsed accuracy: %.2f -> %.2f", r.Accuracy[0], r.Accuracy[1])
	}
}

func TestExt10DBNBeatsOrMatchesLookup(t *testing.T) {
	r, err := Ext10(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.BaselineKeys == 0 {
		t.Fatal("baseline memorised nothing")
	}
	// The DBN should not lose to the table lookup by a wide margin.
	if r.DBNAccuracy < r.BaselineAccuracy-0.10 {
		t.Errorf("DBN (%.2f) well below lookup baseline (%.2f)", r.DBNAccuracy, r.BaselineAccuracy)
	}
}

func TestArtifactsWritten(t *testing.T) {
	dir := t.TempDir()
	cfg := quickCfg()
	cfg.ArtifactDir = dir
	if _, err := Fig1(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig5(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig7(cfg); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Name()] = true
	}
	for _, want := range []string{"fig1a-input.ppm", "fig1b-raw.pbm", "fig1c-smoothed.pbm", "fig7-structure.dot"} {
		if !names[want] {
			t.Errorf("artifact %s missing (have %v)", want, names)
		}
	}
	found := false
	for n := range names {
		if strings.HasPrefix(n, "fig5-skeleton-") {
			found = true
		}
	}
	if !found {
		t.Error("fig5 skeleton artifacts missing")
	}
}

func TestCVShape(t *testing.T) {
	r, err := CV(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.FoldAccuracies) != r.Folds {
		t.Fatalf("folds = %d, accuracies = %d", r.Folds, len(r.FoldAccuracies))
	}
	if r.Mean <= 0 || r.Mean > 1 {
		t.Errorf("mean = %v", r.Mean)
	}
	if r.Std < 0 {
		t.Errorf("std = %v", r.Std)
	}
}
