// Package experiments regenerates every evaluation artifact of the paper
// — Figures 1 through 8 and the Section 5 quantitative results — plus the
// ablations and extensions called out in DESIGN.md (GA baseline cost,
// partition-count sweep, training-set-size sweep, previous-pose policy).
//
// Each experiment is a pure function of a Config: deterministic, seeded,
// returning a result value whose String() prints the rows/series the
// paper reports. The cmd/sljexp binary and the repository benchmarks are
// thin wrappers over this package.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	slj "repro"
	"repro/internal/dataset"
	"repro/internal/obs"
)

// Config parameterises every experiment.
type Config struct {
	// Seed drives all data generation.
	Seed int64
	// Quick shrinks workloads for use inside benchmarks (fewer clips,
	// fewer GA generations). Headline numbers should be produced with
	// Quick=false.
	Quick bool
	// ArtifactDir, when non-empty, makes figure experiments write their
	// image artifacts (PPM frames, PBM skeletons, Graphviz sources)
	// under this directory so the paper's figures can be viewed
	// directly.
	ArtifactDir string
	// Workers sets the clip-evaluation worker-pool size for the
	// experiments that train/evaluate over whole corpora (sec5, cv,
	// and the ext1/ext2/ext5/ext9 sweeps). 0 leaves the sequential
	// path; < 0 selects runtime.NumCPU(). Results are identical at
	// every setting — only wall clock changes.
	Workers int
	// Obs, when non-nil, instruments every engine the experiments build
	// (stage latency histograms, health counters) and receives one
	// sweep.<exp>.<point>.ms counter per sweep point with its wall time.
	Obs *obs.Scope
	// Stream round-trips the generated corpus through a temporary
	// on-disk directory and streams clips lazily from it instead of
	// evaluating the in-memory slices (currently honoured by sec5).
	// Results are identical; only the I/O path changes — this is the
	// same bounded-memory path as sljeval -stream.
	Stream bool
}

// DefaultConfig returns the standard experiment configuration.
func DefaultConfig() Config { return Config{Seed: 2008} } // the paper's year

// workersOrSequential resolves Config.Workers for slj.NewEngineFrom:
// 0 (the default) pins the sequential single-worker path.
func (c Config) workersOrSequential() int {
	if c.Workers == 0 {
		return 1
	}
	return c.Workers
}

// newEngine builds a clip-evaluation engine honouring Config.Workers and,
// when set, attaching Config.Obs to the systems it pools.
func (c Config) newEngine(opts ...slj.Option) (*slj.Engine, error) {
	if c.Obs != nil {
		opts = append(opts, slj.WithObservability(c.Obs))
	}
	return slj.NewEngine(c.workersOrSequential(), opts...)
}

// sources adapts a generated dataset to Config.Stream: by default the
// in-memory slices back MaterializedSources; with Stream set the
// dataset is first saved to a temporary on-disk corpus (removed by
// cleanup) and every open call streams that split's clips lazily from
// disk. Each returned opener yields a fresh single-use source, so a
// split can be traversed any number of times.
func (c Config) sources(ds *dataset.Dataset) (train, test func() (dataset.ClipSource, error), cleanup func(), err error) {
	if !c.Stream {
		train = func() (dataset.ClipSource, error) { return dataset.Materialized(ds.Train), nil }
		test = func() (dataset.ClipSource, error) { return dataset.Materialized(ds.Test), nil }
		return train, test, func() {}, nil
	}
	root, err := os.MkdirTemp("", "slj-stream-")
	if err != nil {
		return nil, nil, nil, fmt.Errorf("experiments: stream corpus: %w", err)
	}
	if err := dataset.Save(root, ds); err != nil {
		os.RemoveAll(root)
		return nil, nil, nil, err
	}
	train = func() (dataset.ClipSource, error) { return dataset.OpenDir(filepath.Join(root, "train")) }
	test = func() (dataset.ClipSource, error) { return dataset.OpenDir(filepath.Join(root, "test")) }
	return train, test, func() { os.RemoveAll(root) }, nil
}

// sweepPoint reports one sweep point's wall time since start into the
// Obs registry as sweep.<name>.ms; a no-op without Obs.
func (c Config) sweepPoint(name string, start time.Time) {
	if reg := c.Obs.Registry(); reg != nil {
		reg.Counter("sweep." + name + ".ms").Add(time.Since(start).Milliseconds())
	}
}

// Runner executes one experiment.
type Runner func(Config) (fmt.Stringer, error)

// registry maps experiment ids (as used by cmd/sljexp -exp) to runners.
var registry = map[string]Runner{
	"fig1":  func(c Config) (fmt.Stringer, error) { return Fig1(c) },
	"fig2":  func(c Config) (fmt.Stringer, error) { return Fig2(c) },
	"fig3":  func(c Config) (fmt.Stringer, error) { return Fig3(c) },
	"fig4":  func(c Config) (fmt.Stringer, error) { return Fig4(c) },
	"fig5":  func(c Config) (fmt.Stringer, error) { return Fig5(c) },
	"fig6":  func(c Config) (fmt.Stringer, error) { return Fig6(c) },
	"fig7":  func(c Config) (fmt.Stringer, error) { return Fig7(c) },
	"fig8":  func(c Config) (fmt.Stringer, error) { return Fig8(c) },
	"sec5":  func(c Config) (fmt.Stringer, error) { return Sec5(c) },
	"sec5b": func(c Config) (fmt.Stringer, error) { return Sec5b(c) },
	"ga":    func(c Config) (fmt.Stringer, error) { return GABaseline(c) },
	"ext1":  func(c Config) (fmt.Stringer, error) { return Ext1(c) },
	"ext2":  func(c Config) (fmt.Stringer, error) { return Ext2(c) },
	"ext3":  func(c Config) (fmt.Stringer, error) { return Ext3(c) },
	"ext4":  func(c Config) (fmt.Stringer, error) { return Ext4(c) },
	"ext5":  func(c Config) (fmt.Stringer, error) { return Ext5(c) },
	"ext6":  func(c Config) (fmt.Stringer, error) { return Ext6(c) },
	"ext7":  func(c Config) (fmt.Stringer, error) { return Ext7(c) },
	"ext8":  func(c Config) (fmt.Stringer, error) { return Ext8(c) },
	"ext9":  func(c Config) (fmt.Stringer, error) { return Ext9(c) },
	"ext10": func(c Config) (fmt.Stringer, error) { return Ext10(c) },
	"jump":  func(c Config) (fmt.Stringer, error) { return Jump(c) },
	"cv":    func(c Config) (fmt.Stringer, error) { return CV(c) },
}

// Names lists the registered experiment ids, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes the named experiment.
func Run(name string, cfg Config) (fmt.Stringer, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(cfg)
}
