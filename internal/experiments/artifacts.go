package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/imaging"
)

// Artifact writers. Every saver is a no-op when cfg.ArtifactDir is empty
// and returns an error only on actual I/O failure, so experiments degrade
// gracefully when no artifact directory is configured.

func artifactPath(cfg Config, name string) (string, error) {
	if cfg.ArtifactDir == "" {
		return "", nil
	}
	if err := os.MkdirAll(cfg.ArtifactDir, 0o755); err != nil {
		return "", fmt.Errorf("experiments: artifact dir: %w", err)
	}
	return filepath.Join(cfg.ArtifactDir, name), nil
}

func saveRGB(cfg Config, name string, img *imaging.RGB) error {
	path, err := artifactPath(cfg, name)
	if err != nil || path == "" {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	defer f.Close()
	if err := imaging.EncodePPM(f, img); err != nil {
		return err
	}
	return f.Close()
}

func saveBinary(cfg Config, name string, img *imaging.Binary) error {
	path, err := artifactPath(cfg, name)
	if err != nil || path == "" {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	defer f.Close()
	if err := imaging.EncodePBM(f, img); err != nil {
		return err
	}
	return f.Close()
}

func saveText(cfg Config, name, content string) error {
	path, err := artifactPath(cfg, name)
	if err != nil || path == "" {
		return err
	}
	return os.WriteFile(path, []byte(content), 0o644)
}
