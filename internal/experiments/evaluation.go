package experiments

import (
	"fmt"
	"strings"
	"time"

	slj "repro"
	"repro/internal/dataset"
	"repro/internal/dbn"
	"repro/internal/ga"
	"repro/internal/imaging"
	"repro/internal/keypoint"
	"repro/internal/pose"
	"repro/internal/skelgraph"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/thinning"
)

// genOpts returns the paper-shaped dataset options, shrunk under Quick.
func genOpts(cfg Config) dataset.GenOptions {
	o := dataset.DefaultGenOptions(cfg.Seed)
	if cfg.Quick {
		o.TrainClips, o.TestClips = 3, 1
	}
	return o
}

// ---------------------------------------------------------------------------
// FIG7 — BN and DBN structure plus an inference sanity trace (Figure 7).

// Fig7Result describes one per-pose network and demonstrates the dynamic
// influence of the previous pose.
type Fig7Result struct {
	// Structure is the printed network of the paper's example pose.
	Structure string
	// Nodes is the node count (paper: 8 observed + 5 hidden + 1 root,
	// plus the two dynamic parents = 16).
	Nodes int
	// PosteriorAfterCrouch and PosteriorCold are P(takeoff-extension
	// present) for identical evidence with different previous poses.
	PosteriorAfterCrouch, PosteriorCold float64
	// DOT is the Graphviz rendering of the network — the figure itself.
	DOT string
}

// Fig7 builds and trains a small bank, then probes the example network.
func Fig7(cfg Config) (Fig7Result, error) {
	ds, err := dataset.Generate(genOpts(cfg))
	if err != nil {
		return Fig7Result{}, err
	}
	sys, err := slj.NewSystem(slj.WithGroundTruthSilhouettes(true))
	if err != nil {
		return Fig7Result{}, err
	}
	if err := sys.Train(ds.Train); err != nil {
		return Fig7Result{}, err
	}
	clf := sys.Classifier()
	net, err := clf.Network(pose.StandHandsForward)
	if err != nil {
		return Fig7Result{}, err
	}
	res := Fig7Result{Structure: net.String(), Nodes: net.Len(), DOT: net.DOT("figure7")}
	if err := saveText(cfg, "fig7-structure.dot", res.DOT); err != nil {
		return Fig7Result{}, err
	}

	// Dynamic probe: same encoding, different previous pose.
	s := pose.Compute(imaging.Pointf{X: 120, Y: 100}, 90, pose.Angles(pose.TakeoffExtension), pose.DefaultProportions())
	enc, err := keypoint.Encode(keypoint.FromSkeleton2D(s), clf.Config().Partitions)
	if err != nil {
		return Fig7Result{}, err
	}
	probe := func(prev pose.Pose) (float64, error) {
		sess := clf.NewSession()
		// Drive the session to the desired prev by classifying nothing:
		// instead use the bank read-only via a fresh session whose first
		// frame carries the canonical previous pose's encoding.
		if prev != pose.StandHandsAtSides {
			ps := pose.Compute(imaging.Pointf{X: 120, Y: 100}, 90, pose.Angles(prev), pose.DefaultProportions())
			penc, err := keypoint.Encode(keypoint.FromSkeleton2D(ps), clf.Config().Partitions)
			if err != nil {
				return 0, err
			}
			if _, err := sess.Classify(penc); err != nil {
				return 0, err
			}
		}
		r, err := sess.Classify(enc)
		if err != nil {
			return 0, err
		}
		for _, sc := range r.Scores {
			if sc.Pose == pose.TakeoffExtension {
				return sc.Prob, nil
			}
		}
		return 0, nil
	}
	if res.PosteriorAfterCrouch, err = probe(pose.CrouchHandsForward); err != nil {
		return Fig7Result{}, err
	}
	if res.PosteriorCold, err = probe(pose.StandHandsAtSides); err != nil {
		return Fig7Result{}, err
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r Fig7Result) String() string {
	return fmt.Sprintf(`FIG7 Bayesian network structure and dynamic influence
network (%d nodes: prev + stage + root pose + 5 hidden parts + 8 observed areas):
%s
P(takeoff-extension | same features) after crouch: %.4f, cold start: %.4f
(the previous pose raises the posterior — the DBN's dynamic edge at work)
graphviz source (render with: dot -Tpng):
%s`, r.Nodes, r.Structure, r.PosteriorAfterCrouch, r.PosteriorCold, r.DOT)
}

// ---------------------------------------------------------------------------
// FIG8 — skeleton extraction across a whole jump (Figure 8).

// Fig8Result summarises per-frame skeleton quality over a full clip.
type Fig8Result struct {
	Frames           int
	KeyPointFrames   int
	MeanEndpoints    float64
	MeanSkeletonLen  float64
	SampleStripASCII string
}

// Fig8 runs the full Section 3 front end over a test clip.
func Fig8(cfg Config) (Fig8Result, error) {
	clip, err := synth.Generate(synth.DefaultSpec(cfg.Seed + 999))
	if err != nil {
		return Fig8Result{}, err
	}
	frames := clip.Frames
	if cfg.Quick {
		frames = frames[:8]
	}
	res := Fig8Result{Frames: len(frames)}
	var strip strings.Builder
	for i, fr := range frames {
		skel := thinning.Thin(fr.Silhouette, thinning.ZhangSuen)
		g, err := skelgraph.Build(skel)
		if err != nil {
			continue
		}
		g.Prune(skelgraph.DefaultPruneLen)
		res.MeanEndpoints += float64(len(g.Endpoints()))
		res.MeanSkeletonLen += float64(g.TotalLength())
		if _, err := keypoint.FromGraph(g); err == nil {
			res.KeyPointFrames++
		}
		if i%8 == 0 {
			fmt.Fprintf(&strip, "frame %02d (%v):\n%s", i, fr.Label, imaging.ASCII(g.ToBinary(), 6))
			if err := saveBinary(cfg, fmt.Sprintf("fig8-frame-%02d.pbm", i), g.ToBinary()); err != nil {
				return Fig8Result{}, err
			}
		}
	}
	res.MeanEndpoints /= float64(len(frames))
	res.MeanSkeletonLen /= float64(len(frames))
	res.SampleStripASCII = strip.String()
	return res, nil
}

// String implements fmt.Stringer.
func (r Fig8Result) String() string {
	return fmt.Sprintf(`FIG8 skeleton extraction across a whole jump
frames: %d, frames with all key points: %d
mean endpoints %.2f, mean skeleton length %.1f px
%s`, r.Frames, r.KeyPointFrames, r.MeanEndpoints, r.MeanSkeletonLen, r.SampleStripASCII)
}

// ---------------------------------------------------------------------------
// SEC5 — the headline evaluation: 12 train clips / 3 test clips,
// per-clip accuracy (paper: 81%–87%), with the Th_Pose ablation.

// Sec5Result is the Section 5 table.
type Sec5Result struct {
	TrainClips, TestClips   int
	TrainFrames, TestFrames int
	Summary                 stats.Summary
	Confusion               *stats.Confusion
	// NoThresholdAccuracy is the overall accuracy with all Th_Pose
	// gating disabled (every pose threshold 0 → pure argmax).
	NoThresholdAccuracy float64
	// Calibration is the reliability analysis of the accepted
	// posteriors (are the DBN's probabilities trustworthy?).
	Calibration *stats.Calibration
}

// Sec5 trains on the full synthetic corpus and evaluates the test clips.
func Sec5(cfg Config) (Sec5Result, error) {
	ds, err := dataset.Generate(genOpts(cfg))
	if err != nil {
		return Sec5Result{}, err
	}
	res := Sec5Result{TrainClips: len(ds.Train), TestClips: len(ds.Test)}
	res.TrainFrames, res.TestFrames = ds.TotalFrames()

	// Under cfg.Stream the corpus round-trips through a temp dir and
	// every pass below streams clips from disk; otherwise the in-memory
	// slices back the sources. Results are identical either way.
	openTrain, openTest, cleanup, err := cfg.sources(ds)
	if err != nil {
		return Sec5Result{}, err
	}
	defer cleanup()
	train := func(eng *slj.Engine) error {
		src, err := openTrain()
		if err != nil {
			return err
		}
		err = eng.TrainSource(src)
		if cerr := src.Close(); err == nil {
			err = cerr
		}
		return err
	}
	evaluate := func(eng *slj.Engine) (stats.Summary, *stats.Confusion, error) {
		src, err := openTest()
		if err != nil {
			return stats.Summary{}, nil, err
		}
		sum, conf, err := eng.EvaluateSource(src)
		if cerr := src.Close(); err == nil {
			err = cerr
		}
		return sum, conf, err
	}

	// The worker-pool engine fans clip training analysis and evaluation
	// out over cfg.Workers; results are bit-identical to the sequential
	// path at any worker count.
	eng, err := cfg.newEngine()
	if err != nil {
		return Sec5Result{}, err
	}
	if err := train(eng); err != nil {
		return Sec5Result{}, err
	}
	sum, conf, err := evaluate(eng)
	if err != nil {
		return Sec5Result{}, err
	}
	res.Summary, res.Confusion = sum, conf

	// Reliability of the accepted posteriors.
	cal, err := stats.NewCalibration(10)
	if err != nil {
		return Sec5Result{}, err
	}
	testSrc, err := openTest()
	if err != nil {
		return Sec5Result{}, err
	}
	allResults, err := eng.ClassifyAllSource(testSrc)
	if cerr := testSrc.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return Sec5Result{}, err
	}
	for ci, lc := range ds.Test {
		for i, r := range allResults[ci] {
			if r.Pose == 0 {
				continue // rejected frames carry no accepted posterior
			}
			cal.Add(r.Prob, r.Pose == lc.Clip.Frames[i].Label)
		}
	}
	res.Calibration = cal

	// Ablation: thresholds off (argmax decision, no Unknown).
	cfgNoTh := dbn.DefaultConfig()
	cfgNoTh.ThPose, cfgNoTh.ThDefault = 0, 0
	engNoTh, err := cfg.newEngine(slj.WithClassifierConfig(cfgNoTh))
	if err != nil {
		return Sec5Result{}, err
	}
	if err := train(engNoTh); err != nil {
		return Sec5Result{}, err
	}
	sumNoTh, _, err := evaluate(engNoTh)
	if err != nil {
		return Sec5Result{}, err
	}
	res.NoThresholdAccuracy = sumNoTh.OverallAccuracy()
	return res, nil
}

// String implements fmt.Stringer.
func (r Sec5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SEC5 headline evaluation: %d train clips (%d frames), %d test clips (%d frames)\n",
		r.TrainClips, r.TrainFrames, r.TestClips, r.TestFrames)
	fmt.Fprintf(&b, "(paper: 12 clips / 522 frames train, 3 clips / 135 frames test, accuracy 81%%–87%%)\n")
	b.WriteString(r.Summary.Table())
	fmt.Fprintf(&b, "unknown rate: %.1f%%\n", 100*r.Confusion.UnknownRate())
	b.WriteString("per-stage accuracy:")
	for st := pose.StageBeforeJump; st <= pose.StageLanding; st++ {
		if acc, ok := r.Summary.PerStageAccuracy()[st]; ok {
			fmt.Fprintf(&b, "  %v %.0f%%", st, 100*acc)
		}
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "with Th_Pose gating disabled (pure argmax): %.1f%%\n", 100*r.NoThresholdAccuracy)
	b.WriteString("top confusions:\n")
	for _, c := range r.Confusion.TopConfusions(5) {
		fmt.Fprintf(&b, "  %v -> %v: %d\n", c.Truth, c.Predicted, c.Count)
	}
	if r.Calibration != nil {
		b.WriteString("posterior reliability:\n")
		b.WriteString(r.Calibration.Table())
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// SEC5b — the previous-pose policy ablation and the consecutive-error
// observation.

// Sec5bResult compares carry-last-recognised against reset-to-unknown.
type Sec5bResult struct {
	CarryAccuracy, ResetAccuracy float64
	// MeanErrorRun is the mean consecutive-error run length under the
	// carry policy; the paper observes errors cluster ("most errors ...
	// occurred in consecutive frames"), i.e. values above 1.
	MeanErrorRun float64
	RunHistogram map[int]int
}

// Sec5b evaluates both previous-pose policies on the same data.
func Sec5b(cfg Config) (Sec5bResult, error) {
	ds, err := dataset.Generate(genOpts(cfg))
	if err != nil {
		return Sec5bResult{}, err
	}
	run := func(carry bool) (stats.Summary, error) {
		c := dbn.DefaultConfig()
		c.CarryLastRecognized = carry
		sys, err := slj.NewSystem(slj.WithClassifierConfig(c))
		if err != nil {
			return stats.Summary{}, err
		}
		if err := sys.Train(ds.Train); err != nil {
			return stats.Summary{}, err
		}
		sum, _, err := sys.Evaluate(ds.Test)
		return sum, err
	}
	carry, err := run(true)
	if err != nil {
		return Sec5bResult{}, err
	}
	reset, err := run(false)
	if err != nil {
		return Sec5bResult{}, err
	}
	res := Sec5bResult{
		CarryAccuracy: carry.OverallAccuracy(),
		ResetAccuracy: reset.OverallAccuracy(),
		RunHistogram:  map[int]int{},
	}
	runs, total := 0, 0
	for _, c := range carry.Clips {
		for l, n := range c.ErrorRuns {
			res.RunHistogram[l] += n
			runs += n
			total += l * n
		}
	}
	if runs > 0 {
		res.MeanErrorRun = float64(total) / float64(runs)
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r Sec5bResult) String() string {
	var b strings.Builder
	b.WriteString("SEC5b previous-pose policy ablation (paper: carry the last recognised pose)\n")
	fmt.Fprintf(&b, "carry-last-recognised: %.1f%%   reset-to-unknown: %.1f%%\n",
		100*r.CarryAccuracy, 100*r.ResetAccuracy)
	fmt.Fprintf(&b, "mean consecutive-error run length: %.2f (paper: errors cluster in consecutive frames)\n", r.MeanErrorRun)
	fmt.Fprintf(&b, "error-run histogram: %v\n", r.RunHistogram)
	return b.String()
}

// ---------------------------------------------------------------------------
// GA-BASE — the genetic-algorithm stick-model baseline of the authors'
// previous work: wall-clock and agreement against the thinning front end.

// GABaselineResult compares the GA fit against the thinning pipeline on
// the same frame.
type GABaselineResult struct {
	GAFitness     float64
	GAEvaluations int
	GATime        time.Duration
	ThinningTime  time.Duration
	SpeedupFactor float64
	// HeadAgreementPx is the distance between the GA head key point and
	// the thinning head key point.
	HeadAgreementPx float64
}

// GABaseline runs both skeletonisation approaches on one silhouette.
func GABaseline(cfg Config) (GABaselineResult, error) {
	s := pose.Compute(imaging.Pointf{X: 150, Y: 100}, 90, pose.Angles(pose.StandHandsForward), pose.DefaultProportions())
	sil := synth.RenderSilhouette(s, synth.DefaultShape(), 90, 320, 200)

	gaCfg := ga.Config{Seed: cfg.Seed}
	if cfg.Quick {
		gaCfg.Population, gaCfg.Generations = 20, 8
	}
	t0 := time.Now()
	fit, err := ga.Fit(sil, gaCfg)
	if err != nil {
		return GABaselineResult{}, err
	}
	gaTime := time.Since(t0)

	t1 := time.Now()
	skel := thinning.Thin(sil, thinning.ZhangSuen)
	g, err := skelgraph.Build(skel)
	if err != nil {
		return GABaselineResult{}, err
	}
	g.Prune(skelgraph.DefaultPruneLen)
	kpThin, err := keypoint.FromGraph(g)
	if err != nil {
		return GABaselineResult{}, err
	}
	thinTime := time.Since(t1)

	kpGA := fit.KeyPoints(pose.DefaultProportions())
	dh := kpGA.Loc(keypoint.PartHead).Sub(kpThin.Loc(keypoint.PartHead))
	res := GABaselineResult{
		GAFitness:       fit.Fitness,
		GAEvaluations:   fit.Evaluations,
		GATime:          gaTime,
		ThinningTime:    thinTime,
		HeadAgreementPx: dist(dh),
	}
	if thinTime > 0 {
		res.SpeedupFactor = float64(gaTime) / float64(thinTime)
	}
	return res, nil
}

func dist(p imaging.Point) float64 {
	dx, dy := float64(p.X), float64(p.Y)
	return float64(int(100*(dx*dx+dy*dy)+0.5)) / 100 // squared distance, rounded
}

// String implements fmt.Stringer.
func (r GABaselineResult) String() string {
	return fmt.Sprintf(`GA-BASE stick-model fitting (previous work) vs thinning (this paper)
GA: fitness %.3f after %d evaluations in %v
thinning + graph + key points: %v
GA/thinning wall-clock ratio: %.0fx (paper: "the genetic algorithm is very time-consuming")
head key-point squared distance between the two methods: %.0f px²
`, r.GAFitness, r.GAEvaluations, r.GATime, r.ThinningTime, r.SpeedupFactor, r.HeadAgreementPx)
}

// ---------------------------------------------------------------------------
// EXT1 — the conclusion's first extension: more than eight partitions.

// Ext1Result is the partitions sweep.
type Ext1Result struct {
	Partitions []int
	Accuracy   []float64
}

// Ext1 sweeps the feature-encoding partition count.
func Ext1(cfg Config) (Ext1Result, error) {
	ds, err := dataset.Generate(genOpts(cfg))
	if err != nil {
		return Ext1Result{}, err
	}
	parts := []int{8, 12, 16, 24}
	if cfg.Quick {
		parts = parts[:2]
	}
	var res Ext1Result
	for _, p := range parts {
		t0 := time.Now()
		eng, err := cfg.newEngine(slj.WithPartitions(p))
		if err != nil {
			return Ext1Result{}, err
		}
		if err := eng.Train(ds.Train); err != nil {
			return Ext1Result{}, err
		}
		sum, _, err := eng.Evaluate(ds.Test)
		if err != nil {
			return Ext1Result{}, err
		}
		cfg.sweepPoint(fmt.Sprintf("ext1.partitions_%d", p), t0)
		res.Partitions = append(res.Partitions, p)
		res.Accuracy = append(res.Accuracy, sum.OverallAccuracy())
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r Ext1Result) String() string {
	var b strings.Builder
	b.WriteString("EXT1 feature-encoding partition sweep (conclusion: \"more partitions ... can be used\")\n")
	for i, p := range r.Partitions {
		fmt.Fprintf(&b, "  %2d areas: %.1f%%\n", p, 100*r.Accuracy[i])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// EXT2 — the conclusion's second extension: more training data.

// Ext2Result is the training-set-size sweep.
type Ext2Result struct {
	TrainClips []int
	Accuracy   []float64
}

// Ext2 sweeps the number of training clips with a fixed test set.
func Ext2(cfg Config) (Ext2Result, error) {
	sizes := []int{2, 4, 8, 12, 20}
	if cfg.Quick {
		sizes = []int{2, 4}
	}
	maxSize := sizes[len(sizes)-1]
	opts := dataset.DefaultGenOptions(cfg.Seed)
	opts.TrainClips = maxSize
	ds, err := dataset.Generate(opts)
	if err != nil {
		return Ext2Result{}, err
	}
	var res Ext2Result
	for _, n := range sizes {
		t0 := time.Now()
		eng, err := cfg.newEngine()
		if err != nil {
			return Ext2Result{}, err
		}
		if err := eng.Train(ds.Train[:n]); err != nil {
			return Ext2Result{}, err
		}
		sum, _, err := eng.Evaluate(ds.Test)
		if err != nil {
			return Ext2Result{}, err
		}
		cfg.sweepPoint(fmt.Sprintf("ext2.clips_%d", n), t0)
		res.TrainClips = append(res.TrainClips, n)
		res.Accuracy = append(res.Accuracy, sum.OverallAccuracy())
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r Ext2Result) String() string {
	var b strings.Builder
	b.WriteString("EXT2 training-set-size sweep (conclusion: \"more training data ... are needed\")\n")
	for i, n := range r.TrainClips {
		fmt.Fprintf(&b, "  %2d clips: %.1f%%\n", n, 100*r.Accuracy[i])
	}
	return b.String()
}
