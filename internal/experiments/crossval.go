package experiments

import (
	"fmt"
	"math"

	"repro/internal/dataset"
)

// CV — k-fold cross-validation. The paper evaluates on a single fixed
// 12/3 split, so its 81–87 % band carries no variance estimate; this
// experiment rotates the test fold across the whole corpus and reports
// mean ± standard deviation, the evaluation the paper's reviewers would
// have asked for.

// CVResult is the cross-validation summary.
type CVResult struct {
	Folds          int
	FoldAccuracies []float64
	Mean, Std      float64
}

// CV runs leave-one-fold-out cross-validation over a 15-clip corpus
// (12+3, the paper's total) with 5 folds of 3 clips.
func CV(cfg Config) (CVResult, error) {
	totalClips, folds := 15, 5
	if cfg.Quick {
		totalClips, folds = 6, 3
	}
	opts := dataset.DefaultGenOptions(cfg.Seed)
	opts.TrainClips = totalClips
	opts.TestClips = 1 // unused; we fold over the training clips
	ds, err := dataset.Generate(opts)
	if err != nil {
		return CVResult{}, err
	}
	clips := ds.Train
	foldSize := len(clips) / folds

	res := CVResult{Folds: folds}
	for f := 0; f < folds; f++ {
		lo, hi := f*foldSize, (f+1)*foldSize
		var train, test []dataset.LabeledClip
		for i, lc := range clips {
			if i >= lo && i < hi {
				test = append(test, lc)
			} else {
				train = append(train, lc)
			}
		}
		eng, err := cfg.newEngine()
		if err != nil {
			return CVResult{}, err
		}
		if err := eng.Train(train); err != nil {
			return CVResult{}, err
		}
		sum, _, err := eng.Evaluate(test)
		if err != nil {
			return CVResult{}, err
		}
		res.FoldAccuracies = append(res.FoldAccuracies, sum.OverallAccuracy())
	}
	for _, a := range res.FoldAccuracies {
		res.Mean += a
	}
	res.Mean /= float64(len(res.FoldAccuracies))
	for _, a := range res.FoldAccuracies {
		res.Std += (a - res.Mean) * (a - res.Mean)
	}
	res.Std = math.Sqrt(res.Std / float64(len(res.FoldAccuracies)))
	return res, nil
}

// String implements fmt.Stringer.
func (r CVResult) String() string {
	s := fmt.Sprintf("CV %d-fold cross-validation (the variance estimate the paper's single split lacks)\n", r.Folds)
	for i, a := range r.FoldAccuracies {
		s += fmt.Sprintf("  fold %d: %.1f%%\n", i+1, 100*a)
	}
	s += fmt.Sprintf("  mean %.1f%% ± %.1f%%\n", 100*r.Mean, 100*r.Std)
	return s
}
