package experiments

import (
	"fmt"
	"strings"

	"repro/internal/extract"
	"repro/internal/imaging"
	"repro/internal/keypoint"
	"repro/internal/pose"
	"repro/internal/skelgraph"
	"repro/internal/synth"
	"repro/internal/thinning"
)

// ---------------------------------------------------------------------------
// FIG1 — object extraction: input frame → raw silhouette → smoothed
// silhouette (Figure 1 a/b/c). The quality claim is that the median
// filter removes "small holes and ridged edges".

// Fig1Result reports raw-versus-smoothed silhouette quality per sampled
// frame.
type Fig1Result struct {
	Frames []extract.Stats
	// IoU against the ground-truth mask, raw vs smoothed, averaged.
	MeanIoURaw, MeanIoUSmooth float64
}

// Fig1 runs the Section 2 extractor over sampled frames of a synthetic
// clip.
func Fig1(cfg Config) (Fig1Result, error) {
	clip, err := synth.Generate(synth.DefaultSpec(cfg.Seed))
	if err != nil {
		return Fig1Result{}, err
	}
	ex, err := extract.NewExtractor(extract.WithKeepLargestOnly(false))
	if err != nil {
		return Fig1Result{}, err
	}
	ex.SetBackground(clip.Background)
	exSmooth, err := extract.NewExtractor()
	if err != nil {
		return Fig1Result{}, err
	}
	exSmooth.SetBackground(clip.Background)

	var res Fig1Result
	idxs := []int{0, len(clip.Frames) / 3, 2 * len(clip.Frames) / 3, len(clip.Frames) - 1}
	if cfg.Quick {
		idxs = idxs[:1]
	}
	for k, i := range idxs {
		fr := clip.Frames[i]
		smooth, st, err := exSmooth.ExtractWithStats(fr.Image)
		if err != nil {
			return Fig1Result{}, err
		}
		raw, err := ex.ExtractRaw(fr.Image)
		if err != nil {
			return Fig1Result{}, err
		}
		res.Frames = append(res.Frames, st)
		res.MeanIoURaw += iouBinary(raw, fr.Silhouette)
		res.MeanIoUSmooth += iouBinary(smooth, fr.Silhouette)
		if k == 0 { // one representative frame, like the paper's Figure 1
			if err := saveRGB(cfg, "fig1a-input.ppm", fr.Image); err != nil {
				return Fig1Result{}, err
			}
			if err := saveBinary(cfg, "fig1b-raw.pbm", raw); err != nil {
				return Fig1Result{}, err
			}
			if err := saveBinary(cfg, "fig1c-smoothed.pbm", smooth); err != nil {
				return Fig1Result{}, err
			}
		}
	}
	res.MeanIoURaw /= float64(len(idxs))
	res.MeanIoUSmooth /= float64(len(idxs))
	return res, nil
}

// String implements fmt.Stringer.
func (r Fig1Result) String() string {
	var b strings.Builder
	b.WriteString("FIG1 object extraction (Section 2): raw vs median-smoothed silhouette\n")
	fmt.Fprintf(&b, "%8s %10s %10s %10s %10s %10s\n", "rawPix", "smoothPix", "rawHoles", "smHoles", "rawComps", "smComps")
	for _, s := range r.Frames {
		fmt.Fprintf(&b, "%8d %10d %10d %10d %10d %10d\n",
			s.RawPixels, s.SmoothPixels, s.RawHoles, s.SmoothHoles, s.RawComponents, s.SmoothComponents)
	}
	fmt.Fprintf(&b, "mean IoU vs ground truth: raw %.3f → smoothed %.3f\n", r.MeanIoURaw, r.MeanIoUSmooth)
	return b.String()
}

func iouBinary(a, b *imaging.Binary) float64 {
	inter, union := 0, 0
	for i := range a.Pix {
		x, y := a.Pix[i] != 0, b.Pix[i] != 0
		if x && y {
			inter++
		}
		if x || y {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// ---------------------------------------------------------------------------
// FIG2 — thinning artefacts: loops, corners (2x2 blocks) and redundant
// short branches on the raw thinning result (Figure 2), for both Z-S and
// Guo–Hall.

// Fig2Result aggregates artefact metrics over a clip.
type Fig2Result struct {
	Algorithms []string
	// Mean per-frame metrics, parallel to Algorithms.
	MeanLoops, MeanEndpoints, MeanJunctions, MeanWidthViolations []float64
	// MeanComponents measures fragmentation (the medial-axis weakness
	// that motivates the paper's thinning choice).
	MeanComponents []float64
	Frames         int
}

// Fig2 measures raw thinning artefacts over a clip's silhouettes.
func Fig2(cfg Config) (Fig2Result, error) {
	clip, err := synth.Generate(synth.DefaultSpec(cfg.Seed))
	if err != nil {
		return Fig2Result{}, err
	}
	frames := clip.Frames
	if cfg.Quick {
		frames = frames[:5]
	}
	res := Fig2Result{Frames: len(frames)}
	for _, alg := range []thinning.Algorithm{thinning.ZhangSuen, thinning.GuoHall, thinning.MedialAxis} {
		var loops, ends, juncs, wide, comps float64
		for _, fr := range frames {
			m := thinning.Measure(thinning.Thin(fr.Silhouette, alg))
			loops += float64(m.Loops)
			ends += float64(m.Endpoints)
			juncs += float64(m.Junctions)
			wide += float64(m.MaxWidthViolations)
			comps += float64(m.Components)
		}
		n := float64(len(frames))
		res.Algorithms = append(res.Algorithms, alg.String())
		res.MeanLoops = append(res.MeanLoops, loops/n)
		res.MeanEndpoints = append(res.MeanEndpoints, ends/n)
		res.MeanJunctions = append(res.MeanJunctions, juncs/n)
		res.MeanWidthViolations = append(res.MeanWidthViolations, wide/n)
		res.MeanComponents = append(res.MeanComponents, comps/n)
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG2 raw thinning artefacts over %d frames (loops/corners/spurs motivate Section 3 clean-up)\n", r.Frames)
	fmt.Fprintf(&b, "%-12s %8s %10s %10s %12s %11s\n", "algorithm", "loops", "endpoints", "junctions", "2x2 blocks", "components")
	for i, alg := range r.Algorithms {
		fmt.Fprintf(&b, "%-12s %8.2f %10.2f %10.2f %12.2f %11.2f\n",
			alg, r.MeanLoops[i], r.MeanEndpoints[i], r.MeanJunctions[i], r.MeanWidthViolations[i], r.MeanComponents[i])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// FIG3 — loop cutting via maximum spanning tree (Figure 3), with the
// minimum-spanning ablation the paper argues against.

// Fig3Result compares loop cutting strategies.
type Fig3Result struct {
	// FramesWithLoops counts frames whose raw skeleton had >= 1 loop.
	FramesWithLoops, Frames int
	// All graphs must be forests afterwards.
	ForestViolations int
	// Mean kept skeleton length, max- vs min-spanning.
	MeanLenMax, MeanLenMin float64
	// AdjacentJunctionsRemoved counts removed vertices across frames.
	AdjacentJunctionsRemoved int
}

// Fig3 builds skeleton graphs for every frame of a clip with both
// spanning policies.
func Fig3(cfg Config) (Fig3Result, error) {
	// Use a pose set with self-touching limbs (hands near body) to
	// provoke loops: the default clip plus a hands-on-body sequence.
	spec := synth.DefaultSpec(cfg.Seed)
	clip, err := synth.Generate(spec)
	if err != nil {
		return Fig3Result{}, err
	}
	frames := clip.Frames
	if cfg.Quick {
		frames = frames[:6]
	}
	res := Fig3Result{Frames: len(frames)}
	for _, fr := range frames {
		skel := thinning.Thin(fr.Silhouette, thinning.ZhangSuen)
		if thinning.Measure(skel).Loops > 0 {
			res.FramesWithLoops++
		}
		res.AdjacentJunctionsRemoved += len(skelgraph.AdjacentJunctionVertices(skel))
		gMax, err := skelgraph.Build(skel, skelgraph.WithMaxSpanning(true))
		if err != nil {
			continue
		}
		gMin, err := skelgraph.Build(skel, skelgraph.WithMaxSpanning(false))
		if err != nil {
			continue
		}
		if !gMax.IsForest() || !gMin.IsForest() {
			res.ForestViolations++
		}
		res.MeanLenMax += float64(gMax.TotalLength())
		res.MeanLenMin += float64(gMin.TotalLength())
	}
	res.MeanLenMax /= float64(len(frames))
	res.MeanLenMin /= float64(len(frames))
	return res, nil
}

// String implements fmt.Stringer.
func (r Fig3Result) String() string {
	return fmt.Sprintf(`FIG3 loop cut by maximum spanning tree (Section 3)
frames: %d, frames with raw-skeleton loops: %d
adjacent junction vertices removed: %d
forest violations after cut: %d (must be 0)
mean kept skeleton length: max-spanning %.1f vs min-spanning %.1f (paper argues max)
`, r.Frames, r.FramesWithLoops, r.AdjacentJunctionsRemoved, r.ForestViolations, r.MeanLenMax, r.MeanLenMin)
}

// ---------------------------------------------------------------------------
// FIG4 — branch pruning, one at a time versus all at once (Figure 4).

// Fig4Result compares the pruning policies on the canonical scenario and
// across a clip.
type Fig4Result struct {
	// Canonical scenario (a noisy spur and a true short branch on one
	// junction): does the true branch survive?
	TrueBranchSurvivesOneAtATime bool
	TrueBranchSurvivesNaive      bool
	// Clip-level: mean retained skeleton length under both policies.
	MeanLenOneAtATime, MeanLenNaive float64
	Frames                          int
}

// Fig4 reproduces the Figure 4 comparison.
func Fig4(cfg Config) (Fig4Result, error) {
	var res Fig4Result

	// Canonical scenario from the paper's figure: trunk + 4-px noisy
	// spur + 8-px true branch at a degree-3 junction.
	mk := func() *imaging.Binary {
		img := imaging.NewBinary(40, 20)
		for x := 0; x < 30; x++ {
			img.Set(x, 10, 1)
		}
		for i := 1; i <= 3; i++ {
			img.Set(29, 10-i, 1)
		}
		for i := 1; i <= 7; i++ {
			img.Set(29+i, 10+i, 1)
		}
		return img
	}
	gGood, err := skelgraph.Build(mk())
	if err != nil {
		return res, err
	}
	gGood.Prune(skelgraph.DefaultPruneLen)
	res.TrueBranchSurvivesOneAtATime = gGood.ToBinary().At(36, 17) == 1

	gBad, err := skelgraph.Build(mk())
	if err != nil {
		return res, err
	}
	gBad.PruneNaive(skelgraph.DefaultPruneLen)
	res.TrueBranchSurvivesNaive = gBad.ToBinary().At(36, 17) == 1

	// Clip level.
	spec := synth.DefaultSpec(cfg.Seed)
	spec.HoleRate = 0.004 // more noise, more spurs
	clip, err := synth.Generate(spec)
	if err != nil {
		return res, err
	}
	frames := clip.Frames
	if cfg.Quick {
		frames = frames[:6]
	}
	res.Frames = len(frames)
	for _, fr := range frames {
		skel := thinning.Thin(fr.Silhouette, thinning.ZhangSuen)
		if g, err := skelgraph.Build(skel); err == nil {
			g.Prune(skelgraph.DefaultPruneLen)
			res.MeanLenOneAtATime += float64(g.TotalLength())
		}
		if g, err := skelgraph.Build(skel); err == nil {
			g.PruneNaive(skelgraph.DefaultPruneLen)
			res.MeanLenNaive += float64(g.TotalLength())
		}
	}
	res.MeanLenOneAtATime /= float64(len(frames))
	res.MeanLenNaive /= float64(len(frames))
	return res, nil
}

// String implements fmt.Stringer.
func (r Fig4Result) String() string {
	return fmt.Sprintf(`FIG4 branch pruning: one-at-a-time (paper) vs delete-all-at-once
canonical scenario: true branch survives one-at-a-time=%v, naive=%v (paper: true/false)
clip (%d frames): mean retained skeleton length %.1f (one-at-a-time) vs %.1f (naive)
`, r.TrueBranchSurvivesOneAtATime, r.TrueBranchSurvivesNaive, r.Frames, r.MeanLenOneAtATime, r.MeanLenNaive)
}

// ---------------------------------------------------------------------------
// FIG5 — thinning-result gallery (Figure 5): skeletons represent postures.

// Fig5Result is a gallery of ASCII skeletons plus key-point recall.
type Fig5Result struct {
	Poses []pose.Pose
	// ASCII holds downsampled skeleton renderings, parallel to Poses.
	ASCII []string
	// KeyPointsOK reports whether the five key points were extracted.
	KeyPointsOK []bool
}

// Fig5 renders skeletons for a representative pose set.
func Fig5(cfg Config) (Fig5Result, error) {
	poses := []pose.Pose{
		pose.StandHandsForward, pose.CrouchHandsBackward, pose.TakeoffToeOff,
		pose.AirTuck, pose.AirDescendLegsForward, pose.LandCrouch,
	}
	if cfg.Quick {
		poses = poses[:2]
	}
	var res Fig5Result
	for _, p := range poses {
		s := pose.Compute(imaging.Pointf{X: 120, Y: 100}, 90, pose.Angles(p), pose.DefaultProportions())
		sil := synth.RenderSilhouette(s, synth.DefaultShape(), 90, 240, 170)
		skel := thinning.Thin(sil, thinning.ZhangSuen)
		g, err := skelgraph.Build(skel)
		if err != nil {
			return Fig5Result{}, err
		}
		g.Prune(skelgraph.DefaultPruneLen)
		_, kpErr := keypoint.FromGraph(g)
		res.Poses = append(res.Poses, p)
		res.ASCII = append(res.ASCII, imaging.ASCII(g.ToBinary(), 4))
		res.KeyPointsOK = append(res.KeyPointsOK, kpErr == nil)
		if err := saveBinary(cfg, fmt.Sprintf("fig5-skeleton-%02d.pbm", int(p)), g.ToBinary()); err != nil {
			return Fig5Result{}, err
		}
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r Fig5Result) String() string {
	var b strings.Builder
	b.WriteString("FIG5 thinning-result gallery (skeletons represent postures)\n")
	for i, p := range r.Poses {
		fmt.Fprintf(&b, "--- %v (key points ok: %v)\n%s", p, r.KeyPointsOK[i], r.ASCII[i])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// FIG6 — feature encoding of key points into the eight areas (Figure 6).

// Fig6Result tabulates part→area codes per pose.
type Fig6Result struct {
	Partitions int
	Poses      []pose.Pose
	Encodings  []keypoint.Encoding
}

// Fig6 encodes ground-truth key points for every pose.
func Fig6(cfg Config) (Fig6Result, error) {
	res := Fig6Result{Partitions: keypoint.DefaultPartitions}
	poses := pose.AllPoses()
	if cfg.Quick {
		poses = poses[:6]
	}
	for _, p := range poses {
		s := pose.Compute(imaging.Pointf{X: 120, Y: 100}, 90, pose.Angles(p), pose.DefaultProportions())
		enc, err := keypoint.Encode(keypoint.FromSkeleton2D(s), res.Partitions)
		if err != nil {
			return Fig6Result{}, err
		}
		res.Poses = append(res.Poses, p)
		res.Encodings = append(res.Encodings, enc)
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG6 key-point area encoding (%d areas around the waist)\n", r.Partitions)
	fmt.Fprintf(&b, "%-46s %5s %6s %5s %5s %5s\n", "pose", "head", "chest", "hand", "knee", "foot")
	for i, p := range r.Poses {
		e := r.Encodings[i]
		fmt.Fprintf(&b, "%-46s %5d %6d %5d %5d %5d\n", p, e.Area[0], e.Area[1], e.Area[2], e.Area[3], e.Area[4])
	}
	return b.String()
}
