package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	slj "repro"
	"repro/internal/dataset"
	"repro/internal/pose"
	"repro/internal/synth"
)

// EXT8 — camera-side robustness. The paper fixes the camera "from the
// left-hand side of the jumper"; real deployments cannot always. This
// experiment tests mirrored (right-to-left) clips with and without the
// automatic orientation normalisation.

// Ext8Result compares mirrored-clip accuracy under both settings.
type Ext8Result struct {
	// Standard is the unmirrored baseline accuracy.
	Standard float64
	// MirroredRaw is mirrored-clip accuracy without auto-orientation.
	MirroredRaw float64
	// MirroredAuto is mirrored-clip accuracy with auto-orientation.
	MirroredAuto float64
}

// Ext8 trains on standard clips and evaluates mirrored ones.
func Ext8(cfg Config) (Ext8Result, error) {
	ds, err := dataset.Generate(genOpts(cfg))
	if err != nil {
		return Ext8Result{}, err
	}
	// Mirror the test clips.
	mirrored := make([]dataset.LabeledClip, 0, len(ds.Test))
	for i, lc := range ds.Test {
		spec := lc.Clip.Spec
		spec.Mirror = true
		clip, err := synth.Generate(spec)
		if err != nil {
			return Ext8Result{}, err
		}
		mirrored = append(mirrored, dataset.LabeledClip{
			Name: fmt.Sprintf("mirrored-%02d", i), Clip: clip,
		})
	}

	run := func(clips []dataset.LabeledClip, auto bool) (float64, error) {
		sys, err := slj.NewSystem(slj.WithAutoOrient(auto))
		if err != nil {
			return 0, err
		}
		if err := sys.Train(ds.Train); err != nil {
			return 0, err
		}
		sum, _, err := sys.Evaluate(clips)
		if err != nil {
			return 0, err
		}
		return sum.OverallAccuracy(), nil
	}
	var res Ext8Result
	if res.Standard, err = run(ds.Test, false); err != nil {
		return Ext8Result{}, err
	}
	if res.MirroredRaw, err = run(mirrored, false); err != nil {
		return Ext8Result{}, err
	}
	if res.MirroredAuto, err = run(mirrored, true); err != nil {
		return Ext8Result{}, err
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r Ext8Result) String() string {
	return fmt.Sprintf(`EXT8 camera-side robustness (mirrored clips)
standard clips:            %.1f%%
mirrored, no orientation:  %.1f%% (features are backwards)
mirrored, auto-orient:     %.1f%% (direction detected from centroid drift)
`, 100*r.Standard, 100*r.MirroredRaw, 100*r.MirroredAuto)
}

// EXT9 — label-noise robustness. The paper's poses were labelled by
// hand ("more training data with better definitions of poses are
// needed"); this experiment corrupts a fraction of training labels with
// stage-compatible wrong poses and measures the degradation.

// Ext9Result is the label-noise sweep.
type Ext9Result struct {
	NoiseRate []float64
	Accuracy  []float64
}

// Ext9 sweeps training label corruption.
func Ext9(cfg Config) (Ext9Result, error) {
	ds, err := dataset.Generate(genOpts(cfg))
	if err != nil {
		return Ext9Result{}, err
	}
	rates := []float64{0, 0.05, 0.1, 0.2, 0.4}
	if cfg.Quick {
		rates = rates[:2]
	}
	var res Ext9Result
	for _, rate := range rates {
		t0 := time.Now()
		r := rand.New(rand.NewSource(cfg.Seed + int64(1000*rate)))
		noisy := corruptLabels(ds.Train, rate, r)
		eng, err := cfg.newEngine()
		if err != nil {
			return Ext9Result{}, err
		}
		if err := eng.Train(noisy); err != nil {
			return Ext9Result{}, err
		}
		sum, _, err := eng.Evaluate(ds.Test)
		if err != nil {
			return Ext9Result{}, err
		}
		cfg.sweepPoint(fmt.Sprintf("ext9.noise_%02.0f", 100*rate), t0)
		res.NoiseRate = append(res.NoiseRate, rate)
		res.Accuracy = append(res.Accuracy, sum.OverallAccuracy())
	}
	return res, nil
}

// corruptLabels replaces each training label with probability rate by a
// different pose from the same stage (the realistic labelling mistake).
func corruptLabels(clips []dataset.LabeledClip, rate float64, r *rand.Rand) []dataset.LabeledClip {
	out := make([]dataset.LabeledClip, len(clips))
	for ci, lc := range clips {
		clip := &synth.Clip{Background: lc.Clip.Background, Spec: lc.Clip.Spec}
		clip.Frames = append([]synth.Frame(nil), lc.Clip.Frames...)
		for fi := range clip.Frames {
			if r.Float64() >= rate {
				continue
			}
			stage := pose.StageOf(clip.Frames[fi].Label)
			peers := pose.PosesInStage(stage)
			repl := peers[r.Intn(len(peers))]
			clip.Frames[fi].Label = repl
		}
		out[ci] = dataset.LabeledClip{Name: lc.Name, Clip: clip}
	}
	return out
}

// String implements fmt.Stringer.
func (r Ext9Result) String() string {
	var b strings.Builder
	b.WriteString("EXT9 training label noise (stage-compatible corruption)\n")
	for i, rate := range r.NoiseRate {
		fmt.Fprintf(&b, "  %4.0f%% noise: %.1f%%\n", 100*rate, 100*r.Accuracy[i])
	}
	return b.String()
}
