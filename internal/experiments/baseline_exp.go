package experiments

import (
	"fmt"

	slj "repro"
	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/keypoint"
	"repro/internal/pose"
	"repro/internal/stats"
)

// EXT10 — what does the probabilistic machinery buy? The DBN (per-pose
// networks, previous-pose and jump-stage parents, thresholds) against a
// nearest-prototype table lookup over the very same feature vectors.

// Ext10Result compares the DBN against the lookup baseline.
type Ext10Result struct {
	DBNAccuracy      float64
	BaselineAccuracy float64
	// BaselineKeys is the lookup table size (distinct feature keys).
	BaselineKeys int
	// CrossStageErrors counts baseline errors whose predicted pose
	// belongs to a different stage than the truth — the error class the
	// DBN's stage flag suppresses.
	CrossStageErrorsBaseline, CrossStageErrorsDBN int
}

// Ext10 trains both classifiers on identical front-end encodings.
func Ext10(cfg Config) (Ext10Result, error) {
	ds, err := dataset.Generate(genOpts(cfg))
	if err != nil {
		return Ext10Result{}, err
	}
	sys, err := slj.NewSystem()
	if err != nil {
		return Ext10Result{}, err
	}
	bl, err := baseline.New(keypoint.DefaultPartitions)
	if err != nil {
		return Ext10Result{}, err
	}

	// encodings runs the shared vision front end over a clip.
	encodings := func(lc dataset.LabeledClip) ([]keypoint.Encoding, error) {
		sys.SetBackground(lc.Clip.Background)
		out := make([]keypoint.Encoding, 0, len(lc.Clip.Frames))
		for _, fr := range lc.Clip.Frames {
			fa, err := sys.AnalyzeFrame(fr.Image)
			if err != nil {
				return nil, err
			}
			out = append(out, fa.Encoding)
		}
		return out, nil
	}

	// Train both on the same data.
	if err := sys.Train(ds.Train); err != nil {
		return Ext10Result{}, err
	}
	for _, lc := range ds.Train {
		encs, err := encodings(lc)
		if err != nil {
			return Ext10Result{}, err
		}
		if err := bl.TrainSequence(lc.Clip.Labels(), encs); err != nil {
			return Ext10Result{}, err
		}
	}

	var res Ext10Result
	res.BaselineKeys = bl.Keys()
	var dbnSum, blSum stats.Summary
	for _, lc := range ds.Test {
		truth := lc.Clip.Labels()
		results, err := sys.ClassifyClip(lc)
		if err != nil {
			return Ext10Result{}, err
		}
		dbnSeq := slj.Poses(results)
		dr, err := stats.EvaluateClip(lc.Name, truth, dbnSeq)
		if err != nil {
			return Ext10Result{}, err
		}
		dbnSum.Add(dr)

		encs, err := encodings(lc)
		if err != nil {
			return Ext10Result{}, err
		}
		blSeq, err := bl.ClassifySequence(encs)
		if err != nil {
			return Ext10Result{}, err
		}
		br, err := stats.EvaluateClip(lc.Name, truth, blSeq)
		if err != nil {
			return Ext10Result{}, err
		}
		blSum.Add(br)

		for i := range truth {
			ts := pose.StageOf(truth[i])
			if blSeq[i] != truth[i] && blSeq[i].Valid() && pose.StageOf(blSeq[i]) != ts {
				res.CrossStageErrorsBaseline++
			}
			if dbnSeq[i] != truth[i] && dbnSeq[i].Valid() && pose.StageOf(dbnSeq[i]) != ts {
				res.CrossStageErrorsDBN++
			}
		}
	}
	res.DBNAccuracy = dbnSum.OverallAccuracy()
	res.BaselineAccuracy = blSum.OverallAccuracy()
	return res, nil
}

// String implements fmt.Stringer.
func (r Ext10Result) String() string {
	return fmt.Sprintf(`EXT10 DBN vs nearest-prototype lookup (same features, no probabilistic model)
DBN (paper):        %.1f%% accuracy, %d cross-stage errors
prototype lookup:   %.1f%% accuracy, %d cross-stage errors (%d memorised keys)
(the DBN's previous-pose and stage parents suppress cross-stage confusions)
`, 100*r.DBNAccuracy, r.CrossStageErrorsDBN,
		100*r.BaselineAccuracy, r.CrossStageErrorsBaseline, r.BaselineKeys)
}
