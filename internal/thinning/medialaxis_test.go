package thinning

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/imaging"
)

func TestDistanceTransformEmpty(t *testing.T) {
	d := DistanceTransform(imaging.NewBinary(5, 5))
	for _, v := range d {
		if v != 0 {
			t.Fatal("empty image should be all zeros")
		}
	}
}

func TestDistanceTransformSinglePixel(t *testing.T) {
	b := imaging.NewBinary(5, 5)
	b.Set(2, 2, 1)
	d := DistanceTransform(b)
	if d[2*5+2] != chamferOrtho {
		t.Errorf("isolated pixel distance = %d, want %d", d[2*5+2], chamferOrtho)
	}
}

func TestDistanceTransformMatchesBruteForce(t *testing.T) {
	// Property: the 3-4 chamfer distance equals the brute-force minimum
	// chamfer path length (within the exactness of the two-pass
	// algorithm, which is exact for the 3-4 mask).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w, h := 8+r.Intn(8), 8+r.Intn(8)
		b := imaging.NewBinary(w, h)
		for i := range b.Pix {
			if r.Float64() < 0.6 {
				b.Pix[i] = 1
			}
		}
		d := DistanceTransform(b)
		// Brute force with Dijkstra-like relaxation (iterate to fixpoint).
		const inf = int32(1 << 30)
		ref := make([]int32, w*h)
		for i, v := range b.Pix {
			if v != 0 {
				ref[i] = inf
			}
		}
		at := func(x, y int) int32 {
			if x < 0 || x >= w || y < 0 || y >= h {
				return 0
			}
			return ref[y*w+x]
		}
		for changed := true; changed; {
			changed = false
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					i := y*w + x
					if ref[i] == 0 {
						continue
					}
					for _, n := range imaging.Neighbors8 {
						step := int32(chamferOrtho)
						if n.X != 0 && n.Y != 0 {
							step = chamferDiag
						}
						if v := at(x+n.X, y+n.Y) + step; v < ref[i] {
							ref[i] = v
							changed = true
						}
					}
				}
			}
		}
		for i := range d {
			if d[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTransformInterior(t *testing.T) {
	// Solid 7-wide bar: the centre column is 3 orthogonal steps + ...
	// centre of a 7x7 block away from the border by 4 pixels => 4*3=12?
	// Middle pixel of a 7x7 solid block sits 3+1 pixels from outside:
	// distance = 4 steps of 3 = 12.
	b := imaging.NewBinary(9, 9)
	for y := 1; y <= 7; y++ {
		for x := 1; x <= 7; x++ {
			b.Set(x, y, 1)
		}
	}
	d := DistanceTransform(b)
	if got := d[4*9+4]; got != 12 {
		t.Errorf("centre distance = %d, want 12", got)
	}
	if got := d[1*9+1]; got != chamferOrtho {
		t.Errorf("corner distance = %d, want %d", got, chamferOrtho)
	}
}

func TestMedialAxisOfBar(t *testing.T) {
	// A long horizontal bar's medial axis is (approximately) its centre
	// line.
	b := imaging.NewBinary(40, 11)
	for y := 2; y <= 8; y++ {
		for x := 2; x < 38; x++ {
			b.Set(x, y, 1)
		}
	}
	ma := Thin(b, MedialAxis)
	if ma.Count() == 0 {
		t.Fatal("empty medial axis")
	}
	// Away from the ends (where the true medial axis forks diagonally to
	// the corners), axis pixels must lie on the centre rows (5 ± 1).
	for _, p := range ma.Points() {
		if p.X >= 9 && p.X <= 30 && (p.Y < 4 || p.Y > 6) {
			t.Errorf("medial axis pixel %v off the centre line", p)
		}
	}
	// It must span most of the bar horizontally.
	bounds := ma.ForegroundBounds()
	if bounds.Dx() < 25 {
		t.Errorf("medial axis spans only %d px of a 36 px bar", bounds.Dx())
	}
}

func TestMedialAxisSubsetOfShape(t *testing.T) {
	b := imaging.NewBinary(30, 30)
	imaging.FillDisc(b, imaging.Pointf{X: 15, Y: 15}, 9)
	ma := Thin(b, MedialAxis)
	for i := range ma.Pix {
		if ma.Pix[i] == 1 && b.Pix[i] == 0 {
			t.Fatal("medial axis escaped the shape")
		}
	}
}

func TestMedialAxisDoesNotModifyInput(t *testing.T) {
	b := imaging.NewBinary(20, 20)
	imaging.FillDisc(b, imaging.Pointf{X: 10, Y: 10}, 6)
	want := b.Clone()
	Thin(b, MedialAxis)
	if !b.Equal(want) {
		t.Fatal("MedialAxis mutated its input")
	}
}

func TestMedialAxisFragmentsMoreThanZS(t *testing.T) {
	// The documented weakness: on a noisy-boundary shape the medial axis
	// tends to fragment into more components (or at least never fewer)
	// than the Z-S skeleton.
	r := rand.New(rand.NewSource(12))
	b := imaging.NewBinary(80, 40)
	for y := 10; y < 30; y++ {
		for x := 10; x < 70; x++ {
			b.Set(x, y, 1)
		}
	}
	// Boundary noise.
	for i := 0; i < 80; i++ {
		x := 10 + r.Intn(60)
		if r.Intn(2) == 0 {
			b.Set(x, 9, 1)
		} else {
			b.Set(x, 30, 1)
		}
	}
	zs := Measure(Thin(b, ZhangSuen))
	ma := Measure(Thin(b, MedialAxis))
	if ma.Components < zs.Components {
		t.Errorf("medial axis (%d comps) unexpectedly more connected than Z-S (%d)",
			ma.Components, zs.Components)
	}
}

func TestMedialAxisAlgorithmString(t *testing.T) {
	if MedialAxis.String() != "medial-axis" {
		t.Errorf("String = %q", MedialAxis.String())
	}
}

func BenchmarkDistanceTransform(b *testing.B) {
	img := solidRect(160, 120, 20, 10, 140, 110)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DistanceTransform(img)
	}
}

func BenchmarkThinMedialAxis(b *testing.B) {
	img := solidRect(160, 120, 20, 10, 140, 110)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Thin(img, MedialAxis)
	}
}
