// Package thinning implements the skeletonisation stage of Section 3: the
// Zhang–Suen ("Z-S") iterative thinning algorithm the paper uses, plus the
// Guo–Hall variant as an ablation. Both peel boundary pixels layer by layer
// until only a (mostly) one-pixel-wide skeleton remains, preserving
// 8-connectivity — the "peeling approach ... fast and it can avoid the
// break-line problem" of the paper.
//
// The package also provides artefact metrics (loops, thick T-corners,
// short spurs) used by the Figure 2 experiment, since the paper's whole
// Section 3 post-processing exists to repair exactly those artefacts.
package thinning

import "repro/internal/imaging"

// Algorithm selects a thinning variant.
type Algorithm int

// Supported variants.
const (
	// ZhangSuen is the paper's Z-S algorithm (Zhang & Suen 1984).
	ZhangSuen Algorithm = iota + 1
	// GuoHall is the Guo–Hall (1989) two-subiteration variant, provided
	// as an ablation; it tends to produce fewer staircase artefacts.
	GuoHall
	// MedialAxis is the distance-transform medial-axis skeleton (see
	// medialaxis.go), the classical alternative the thinning approach
	// competes with; it fragments on noisy boundaries.
	MedialAxis
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case ZhangSuen:
		return "zhang-suen"
	case GuoHall:
		return "guo-hall"
	case MedialAxis:
		return "medial-axis"
	default:
		return "unknown-algorithm"
	}
}

// Thin skeletonises the binary image with the requested algorithm and
// returns a new image; the input is not modified. Unknown algorithms fall
// back to Zhang–Suen.
func Thin(src *imaging.Binary, alg Algorithm) *imaging.Binary {
	return ThinInto(nil, src, alg)
}

// ThinInto is Thin writing into dst, which is resized as needed (nil
// allocates a fresh image; imaging.GetBinary hands back a pooled one).
// dst must not alias src. It returns dst, so the per-frame hot path can
// recycle the skeleton buffer instead of cloning the silhouette every
// frame.
func ThinInto(dst *imaging.Binary, src *imaging.Binary, alg Algorithm) *imaging.Binary {
	dst, _ = ThinIntoCounted(dst, src, alg)
	return dst
}

// ThinIntoCounted is ThinInto additionally reporting how many full
// peel iterations the algorithm ran before the skeleton stabilised
// (one iteration = both subiterations; the final no-change sweep
// counts). Iteration counts feed the pipeline.thin_passes health
// counter — a jump in passes-per-frame flags silhouettes much thicker
// than the extractor normally emits. MedialAxis is not iterative and
// reports 1.
//slj:hotpath
func ThinIntoCounted(dst *imaging.Binary, src *imaging.Binary, alg Algorithm) (*imaging.Binary, int) {
	if dst == nil {
		dst = &imaging.Binary{} //slj:alloc-ok nil-dst fallback for one-shot callers; hot callers pass a recycled dst
	}
	dst.W, dst.H = src.W, src.H
	if need := src.W * src.H; cap(dst.Pix) < need {
		dst.Pix = make([]uint8, need) //slj:alloc-ok dst regrow on first use or a larger frame, amortised across frames
	} else {
		dst.Pix = dst.Pix[:need]
	}
	passes := 1
	switch alg {
	case GuoHall:
		copy(dst.Pix, src.Pix)
		passes = thinGuoHall(dst)
	case MedialAxis:
		m := medialAxis(src)
		copy(dst.Pix, m.Pix)
	default:
		copy(dst.Pix, src.Pix)
		passes = thinZhangSuen(dst)
	}
	return dst, passes
}

// neighborhood gathers the classical P2..P9 neighbourhood of (x, y) in
// Zhang–Suen order (N, NE, E, SE, S, SW, W, NW). Out-of-bounds pixels read
// as background.
func neighborhood(b *imaging.Binary, x, y int) (p [8]uint8) {
	for i, d := range imaging.Neighbors8 {
		xx, yy := x+d.X, y+d.Y
		if xx >= 0 && xx < b.W && yy >= 0 && yy < b.H {
			p[i] = b.Pix[yy*b.W+xx]
		}
	}
	return p
}

// transitions counts A(P1): the number of 0→1 patterns in the ordered
// circular sequence P2, P3, ..., P9, P2.
func transitions(p [8]uint8) int {
	n := 0
	for i := 0; i < 8; i++ {
		if p[i] == 0 && p[(i+1)%8] == 1 {
			n++
		}
	}
	return n
}

// sumNeighbors counts B(P1): the number of foreground neighbours.
func sumNeighbors(p [8]uint8) int {
	n := 0
	for _, v := range p {
		n += int(v)
	}
	return n
}

// thinZhangSuen applies the classical two-subiteration Zhang–Suen thinning
// in place until no pixel changes.
//
// Subiteration 1 deletes P1 if:
//
//	(a) 2 <= B(P1) <= 6
//	(b) A(P1) == 1
//	(c) P2 * P4 * P6 == 0   (north × east × south)
//	(d) P4 * P6 * P8 == 0   (east × south × west)
//
// Subiteration 2 replaces (c)/(d) with P2*P4*P8 == 0 and P2*P6*P8 == 0.
//
// Returns the number of iterations run (including the final stable one).
func thinZhangSuen(img *imaging.Binary) int {
	// Indices into the P2..P9 ordering: P2=0 (N), P3=1, P4=2 (E), P5=3,
	// P6=4 (S), P7=5, P8=6 (W), P9=7.
	const (
		pN = 0
		pE = 2
		pS = 4
		pW = 6
	)
	del := make([]int, 0, 256) //slj:alloc-ok one small fixed worklist per frame, counted in the bench-gate baseline
	passes := 0
	for {
		passes++
		changed := false
		for sub := 0; sub < 2; sub++ {
			del = del[:0]
			for y := 0; y < img.H; y++ {
				for x := 0; x < img.W; x++ {
					if img.Pix[y*img.W+x] == 0 {
						continue
					}
					p := neighborhood(img, x, y)
					bN := sumNeighbors(p)
					if bN < 2 || bN > 6 {
						continue
					}
					if transitions(p) != 1 {
						continue
					}
					var c1, c2 bool
					if sub == 0 {
						c1 = p[pN]*p[pE]*p[pS] == 0
						c2 = p[pE]*p[pS]*p[pW] == 0
					} else {
						c1 = p[pN]*p[pE]*p[pW] == 0
						c2 = p[pN]*p[pS]*p[pW] == 0
					}
					if c1 && c2 {
						del = append(del, y*img.W+x)
					}
				}
			}
			if len(del) > 0 {
				changed = true
				for _, i := range del {
					img.Pix[i] = 0
				}
			}
		}
		if !changed {
			return passes
		}
	}
}

// thinGuoHall applies Guo–Hall (1989) thinning in place until stable.
// Returns the number of iterations run (including the final stable one).
func thinGuoHall(img *imaging.Binary) int {
	del := make([]int, 0, 256) //slj:alloc-ok one small fixed worklist per frame, counted in the bench-gate baseline
	passes := 0
	for {
		passes++
		changed := false
		for sub := 0; sub < 2; sub++ {
			del = del[:0]
			for y := 0; y < img.H; y++ {
				for x := 0; x < img.W; x++ {
					if img.Pix[y*img.W+x] == 0 {
						continue
					}
					p := neighborhood(img, x, y)
					// Guo–Hall uses p1..p8 = N, NE, E, SE, S, SW, W, NW
					// which matches our ordering exactly.
					c := 0
					for i := 0; i < 4; i++ {
						a, b1, b2 := p[2*i], p[(2*i+1)%8], p[(2*i+2)%8]
						if a == 0 && (b1 == 1 || b2 == 1) {
							c++
						}
					}
					n1 := 0
					n2 := 0
					for i := 0; i < 4; i++ {
						if p[(2*i+7)%8] == 1 || p[2*i] == 1 {
							n1++
						}
						if p[2*i] == 1 || p[(2*i+1)%8] == 1 {
							n2++
						}
					}
					n := n1
					if n2 < n1 {
						n = n2
					}
					// m of Guo–Hall: subiteration 0 uses
					// (p6 ∨ p7 ∨ ¬p9) ∧ p8, subiteration 1 the
					// 180°-rotated (p2 ∨ p3 ∨ ¬p5) ∧ p4.
					var cond bool
					if sub == 0 {
						cond = (p[4] == 1 || p[5] == 1 || p[7] == 0) && p[6] == 1
					} else {
						cond = (p[0] == 1 || p[1] == 1 || p[3] == 0) && p[2] == 1
					}
					if c == 1 && n >= 2 && n <= 3 && !cond {
						del = append(del, y*img.W+x)
					}
				}
			}
			if len(del) > 0 {
				changed = true
				for _, i := range del {
					img.Pix[i] = 0
				}
			}
		}
		if !changed {
			return passes
		}
	}
}

// Metrics quantifies the artefacts of a raw thinning result, matching the
// problem classes of Figure 2: loops, corners and redundant short branches,
// plus general shape statistics.
type Metrics struct {
	// Pixels is the number of skeleton pixels.
	Pixels int
	// Endpoints counts pixels with exactly one 8-neighbour.
	Endpoints int
	// Junctions counts pixels with three or more 8-neighbours.
	Junctions int
	// Loops is the number of independent cycles of the skeleton,
	// computed per 8-connected component as E - V + 1.
	Loops int
	// Components is the number of 8-connected skeleton components.
	Components int
	// MaxWidthViolations counts pixels whose 2×2 block is entirely
	// foreground — places where the skeleton is not one pixel wide
	// ("corner" artefacts of Figure 2(b)).
	MaxWidthViolations int
}

// Measure computes skeleton quality metrics for a thinned image.
func Measure(skel *imaging.Binary) Metrics {
	var m Metrics
	// Count pixels, endpoints, junctions.
	for y := 0; y < skel.H; y++ {
		for x := 0; x < skel.W; x++ {
			if skel.Pix[y*skel.W+x] == 0 {
				continue
			}
			m.Pixels++
			n := sumNeighbors(neighborhood(skel, x, y))
			switch {
			case n == 1:
				m.Endpoints++
			case n >= 3:
				m.Junctions++
			}
		}
	}
	// 2x2 solid blocks.
	for y := 0; y+1 < skel.H; y++ {
		for x := 0; x+1 < skel.W; x++ {
			if skel.Pix[y*skel.W+x] == 1 && skel.Pix[y*skel.W+x+1] == 1 &&
				skel.Pix[(y+1)*skel.W+x] == 1 && skel.Pix[(y+1)*skel.W+x+1] == 1 {
				m.MaxWidthViolations++
			}
		}
	}
	// Cycle count per component. Edges are unordered 8-adjacent pairs,
	// except that a diagonal edge is ignored when the two pixels are
	// already joined by an orthogonal 2-path (otherwise every thick
	// corner would read as a spurious triangle cycle).
	at := func(x, y int) uint8 {
		if x < 0 || x >= skel.W || y < 0 || y >= skel.H {
			return 0
		}
		return skel.Pix[y*skel.W+x]
	}
	edges := 0
	for y := 0; y < skel.H; y++ {
		for x := 0; x < skel.W; x++ {
			if at(x, y) == 0 {
				continue
			}
			// Count each edge once: only to the 4 "forward" neighbours
			// (E, SE, S, SW).
			if at(x+1, y) == 1 {
				edges++
			}
			if at(x, y+1) == 1 {
				edges++
			}
			if at(x+1, y+1) == 1 && at(x+1, y) == 0 && at(x, y+1) == 0 {
				edges++
			}
			if at(x-1, y+1) == 1 && at(x-1, y) == 0 && at(x, y+1) == 0 {
				edges++
			}
		}
	}
	_, comps := imaging.Components(skel, imaging.Connect8)
	m.Components = len(comps)
	// For a graph with V vertices, E edges and C components the number of
	// independent cycles is E - V + C.
	m.Loops = edges - m.Pixels + m.Components
	if m.Loops < 0 {
		m.Loops = 0
	}
	return m
}
