package thinning

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/imaging"
)

func solidRect(w, h, x0, y0, x1, y1 int) *imaging.Binary {
	b := imaging.NewBinary(w, h)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			b.Set(x, y, 1)
		}
	}
	return b
}

func algorithms() []Algorithm { return []Algorithm{ZhangSuen, GuoHall} }

func TestAlgorithmString(t *testing.T) {
	if ZhangSuen.String() != "zhang-suen" || GuoHall.String() != "guo-hall" {
		t.Error("Algorithm.String mismatch")
	}
	if Algorithm(0).String() != "unknown-algorithm" {
		t.Error("zero Algorithm should stringify as unknown")
	}
}

func TestThinDoesNotModifyInput(t *testing.T) {
	src := solidRect(20, 20, 5, 5, 15, 15)
	want := src.Clone()
	Thin(src, ZhangSuen)
	if !src.Equal(want) {
		t.Fatal("Thin mutated its input")
	}
}

func TestThinEmptyImage(t *testing.T) {
	for _, alg := range algorithms() {
		out := Thin(imaging.NewBinary(10, 10), alg)
		if out.Count() != 0 {
			t.Errorf("%v: thinning empty image produced pixels", alg)
		}
	}
}

func TestThinSinglePixelSurvives(t *testing.T) {
	for _, alg := range algorithms() {
		b := imaging.NewBinary(5, 5)
		b.Set(2, 2, 1)
		out := Thin(b, alg)
		if out.Count() != 1 || out.At(2, 2) != 1 {
			t.Errorf("%v: isolated pixel should survive, got %d pixels", alg, out.Count())
		}
	}
}

func TestThinThinLineIsFixedPoint(t *testing.T) {
	for _, alg := range algorithms() {
		b := imaging.NewBinary(20, 5)
		for x := 2; x < 18; x++ {
			b.Set(x, 2, 1)
		}
		out := Thin(b, alg)
		// A 1-pixel line must keep its endpoints and stay connected;
		// Zhang-Suen may shorten it by at most the endpoint pixels.
		if out.Count() < 14 {
			t.Errorf("%v: 16-pixel line shrank to %d pixels", alg, out.Count())
		}
		_, comps := imaging.Components(out, imaging.Connect8)
		if len(comps) != 1 {
			t.Errorf("%v: line broke into %d components", alg, len(comps))
		}
	}
}

func TestThinRectangleBecomesThinCurve(t *testing.T) {
	for _, alg := range algorithms() {
		src := solidRect(40, 20, 4, 4, 36, 16)
		out := Thin(src, alg)
		m := Measure(out)
		if m.Pixels == 0 {
			t.Fatalf("%v: skeleton vanished", alg)
		}
		if m.Pixels >= src.Count()/2 {
			t.Errorf("%v: skeleton has %d pixels of %d original; not thin", alg, m.Pixels, src.Count())
		}
		if m.MaxWidthViolations > 2 {
			t.Errorf("%v: %d 2x2 solid blocks remain", alg, m.MaxWidthViolations)
		}
		_, comps := imaging.Components(out, imaging.Connect8)
		if len(comps) != 1 {
			t.Errorf("%v: skeleton broke into %d components (break-line problem)", alg, len(comps))
		}
	}
}

func TestThinPreservesConnectivity(t *testing.T) {
	// Property: thinning never increases the number of connected
	// components (the Z-S "avoid the break-line problem" claim), and the
	// skeleton is a subset of the input.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := imaging.NewBinary(32, 32)
		// A few random blobs.
		for k := 0; k < 3; k++ {
			cx, cy := 4+r.Intn(24), 4+r.Intn(24)
			rad := 2 + r.Float64()*4
			imaging.FillDisc(b, imaging.Pointf{X: float64(cx), Y: float64(cy)}, rad)
		}
		_, before := imaging.Components(b, imaging.Connect8)
		for _, alg := range algorithms() {
			out := Thin(b, alg)
			for i := range out.Pix {
				if out.Pix[i] == 1 && b.Pix[i] == 0 {
					return false // grew a pixel
				}
			}
			// "Never increases" exactly: breaking a line apart adds
			// components; a speck thinned away to nothing removes one,
			// which the claim permits.
			_, after := imaging.Components(out, imaging.Connect8)
			if len(after) > len(before) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestThinIdempotent(t *testing.T) {
	// Thinning a skeleton again must not change it (fixed point).
	src := solidRect(30, 30, 5, 5, 25, 25)
	for _, alg := range algorithms() {
		once := Thin(src, alg)
		twice := Thin(once, alg)
		if !once.Equal(twice) {
			t.Errorf("%v: thinning is not idempotent", alg)
		}
	}
}

func TestThinRingKeepsLoop(t *testing.T) {
	// An annulus must thin to a closed curve: one loop, no endpoints.
	b := imaging.NewBinary(40, 40)
	imaging.FillDisc(b, imaging.Pointf{X: 20, Y: 20}, 15)
	inner := imaging.NewBinary(40, 40)
	imaging.FillDisc(inner, imaging.Pointf{X: 20, Y: 20}, 8)
	for i := range b.Pix {
		if inner.Pix[i] == 1 {
			b.Pix[i] = 0
		}
	}
	out := Thin(b, ZhangSuen)
	m := Measure(out)
	if m.Loops != 1 {
		t.Errorf("annulus skeleton has %d loops, want 1", m.Loops)
	}
	if m.Endpoints != 0 {
		t.Errorf("annulus skeleton has %d endpoints, want 0", m.Endpoints)
	}
}

func TestTransitions(t *testing.T) {
	tests := []struct {
		name string
		p    [8]uint8
		want int
	}{
		{"all zero", [8]uint8{}, 0},
		{"all one", [8]uint8{1, 1, 1, 1, 1, 1, 1, 1}, 0},
		{"single run", [8]uint8{1, 1, 0, 0, 0, 0, 0, 0}, 1},
		{"two runs", [8]uint8{1, 0, 1, 0, 0, 0, 0, 0}, 2},
		{"four runs", [8]uint8{1, 0, 1, 0, 1, 0, 1, 0}, 4},
		{"wraparound", [8]uint8{0, 0, 0, 0, 0, 0, 0, 1}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := transitions(tt.p); got != tt.want {
				t.Errorf("transitions(%v) = %d, want %d", tt.p, got, tt.want)
			}
		})
	}
}

func TestNeighborhoodAtBorder(t *testing.T) {
	b := imaging.NewBinary(3, 3)
	b.Set(0, 0, 1)
	b.Set(1, 0, 1)
	p := neighborhood(b, 0, 0)
	// Out-of-bounds reads must be 0; the east neighbour (index 2) is 1.
	if p[2] != 1 {
		t.Error("east neighbour not seen")
	}
	for _, i := range []int{0, 1, 5, 6, 7} { // N, NE, SW, W, NW out of bounds
		if p[i] != 0 {
			t.Errorf("out-of-bounds neighbour %d read as foreground", i)
		}
	}
}

func TestMeasureCross(t *testing.T) {
	// A plus sign: one junction, four endpoints, no loops.
	b := imaging.FromASCII(`
.....#.....
.....#.....
.....#.....
###########
.....#.....
.....#.....
`)
	m := Measure(b)
	if m.Endpoints != 4 {
		t.Errorf("Endpoints = %d, want 4", m.Endpoints)
	}
	if m.Junctions < 1 {
		t.Errorf("Junctions = %d, want >= 1", m.Junctions)
	}
	if m.Loops != 0 {
		t.Errorf("Loops = %d, want 0", m.Loops)
	}
	if m.Components != 1 {
		t.Errorf("Components = %d, want 1", m.Components)
	}
}

func TestMeasureLoopCount(t *testing.T) {
	// A 1-pixel square ring has exactly one independent cycle.
	b := imaging.FromASCII(`
#####
#...#
#...#
#####
`)
	m := Measure(b)
	if m.Loops != 1 {
		t.Errorf("Loops = %d, want 1", m.Loops)
	}
	if m.Endpoints != 0 {
		t.Errorf("Endpoints = %d, want 0", m.Endpoints)
	}
}

func TestMeasureTwoComponents(t *testing.T) {
	b := imaging.FromASCII(`
##...
.....
...##
`)
	m := Measure(b)
	if m.Components != 2 {
		t.Errorf("Components = %d, want 2", m.Components)
	}
	if m.Endpoints != 4 {
		t.Errorf("Endpoints = %d, want 4", m.Endpoints)
	}
}

func TestMeasureWidthViolation(t *testing.T) {
	b := imaging.FromASCII(`
##
##
`)
	m := Measure(b)
	if m.MaxWidthViolations != 1 {
		t.Errorf("MaxWidthViolations = %d, want 1", m.MaxWidthViolations)
	}
}

func TestHumanlikeSilhouetteThinsToTree(t *testing.T) {
	// Rough standing figure: head disc, torso, two arms, two legs.
	b := imaging.NewBinary(60, 100)
	imaging.FillDisc(b, imaging.Pointf{X: 30, Y: 12}, 7)
	imaging.FillCapsule(b, imaging.Pointf{X: 30, Y: 18}, imaging.Pointf{X: 30, Y: 55}, 6)   // torso
	imaging.FillCapsule(b, imaging.Pointf{X: 30, Y: 26}, imaging.Pointf{X: 12, Y: 45}, 3.5) // left arm
	imaging.FillCapsule(b, imaging.Pointf{X: 30, Y: 26}, imaging.Pointf{X: 48, Y: 45}, 3.5) // right arm
	imaging.FillCapsule(b, imaging.Pointf{X: 27, Y: 55}, imaging.Pointf{X: 20, Y: 92}, 4)   // left leg
	imaging.FillCapsule(b, imaging.Pointf{X: 33, Y: 55}, imaging.Pointf{X: 40, Y: 92}, 4)   // right leg
	out := Thin(b, ZhangSuen)
	m := Measure(out)
	if m.Components != 1 {
		t.Fatalf("skeleton has %d components", m.Components)
	}
	// Head, two hands, two feet => at least 5 limb tips, possibly a few
	// extra spurs from thinning noise.
	if m.Endpoints < 5 {
		t.Errorf("Endpoints = %d, want >= 5 for a 5-limbed figure", m.Endpoints)
	}
	if m.Junctions == 0 {
		t.Error("expected at least one junction where limbs meet")
	}
}

func TestGuoHallProducesComparableSkeleton(t *testing.T) {
	src := solidRect(40, 40, 8, 8, 32, 32)
	zs := Measure(Thin(src, ZhangSuen))
	gh := Measure(Thin(src, GuoHall))
	if gh.Pixels == 0 || zs.Pixels == 0 {
		t.Fatal("a variant produced an empty skeleton")
	}
	ratio := float64(gh.Pixels) / float64(zs.Pixels)
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("variants disagree wildly: ZS=%d GH=%d pixels", zs.Pixels, gh.Pixels)
	}
}

func BenchmarkThinZhangSuen(b *testing.B) {
	src := solidRect(160, 120, 20, 10, 140, 110)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Thin(src, ZhangSuen)
	}
}

func BenchmarkThinGuoHall(b *testing.B) {
	src := solidRect(160, 120, 20, 10, 140, 110)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Thin(src, GuoHall)
	}
}
