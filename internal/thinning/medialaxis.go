package thinning

import "repro/internal/imaging"

// Medial-axis skeletonisation. The paper chooses iterative thinning over
// alternatives; the classical competitor is the medial-axis transform
// (centres of maximal discs, computed from a distance transform), which
// the literature the paper cites (Kegl & Krzyzak 2002) positions itself
// against. It is provided here as a second ablation: distance-ridge
// extraction followed by a Zhang–Suen pass to reduce the ridge to unit
// width. Its characteristic weakness — ridge fragmentation on noisy
// boundaries — is measurable with Measure and motivates the paper's
// choice.

// Chamfer weights for the 3-4 distance transform (a good integer
// approximation of Euclidean distance: 3 per orthogonal step, 4 per
// diagonal step).
const (
	chamferOrtho = 3
	chamferDiag  = 4
)

// DistanceTransform computes the two-pass 3-4 chamfer distance of every
// foreground pixel to the nearest background pixel (background pixels get
// 0). Pixels outside the image count as background.
func DistanceTransform(b *imaging.Binary) []int32 {
	const inf = int32(1 << 30)
	w, h := b.W, b.H
	d := make([]int32, w*h) //slj:alloc-ok medial axis is the opt-in algorithm (default Zhang-Suen); its distance map is per call by design
	for i, v := range b.Pix {
		if v != 0 {
			d[i] = inf
		}
	}
	at := func(x, y int) int32 {
		if x < 0 || x >= w || y < 0 || y >= h {
			return 0
		}
		return d[y*w+x]
	}
	// Forward pass: N, NW, NE, W.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			if d[i] == 0 {
				continue
			}
			m := d[i]
			if v := at(x-1, y) + chamferOrtho; v < m {
				m = v
			}
			if v := at(x, y-1) + chamferOrtho; v < m {
				m = v
			}
			if v := at(x-1, y-1) + chamferDiag; v < m {
				m = v
			}
			if v := at(x+1, y-1) + chamferDiag; v < m {
				m = v
			}
			d[i] = m
		}
	}
	// Backward pass: S, SE, SW, E.
	for y := h - 1; y >= 0; y-- {
		for x := w - 1; x >= 0; x-- {
			i := y*w + x
			if d[i] == 0 {
				continue
			}
			m := d[i]
			if v := at(x+1, y) + chamferOrtho; v < m {
				m = v
			}
			if v := at(x, y+1) + chamferOrtho; v < m {
				m = v
			}
			if v := at(x+1, y+1) + chamferDiag; v < m {
				m = v
			}
			if v := at(x-1, y+1) + chamferDiag; v < m {
				m = v
			}
			d[i] = m
		}
	}
	return d
}

// medialAxisRidge marks foreground pixels that are chamfer-distance
// ridges: no 8-neighbour is deeper by more than one orthogonal step.
// These approximate the centres of maximal discs.
func medialAxisRidge(b *imaging.Binary) *imaging.Binary {
	d := DistanceTransform(b)
	out := imaging.NewBinary(b.W, b.H)
	at := func(x, y int) int32 {
		if x < 0 || x >= b.W || y < 0 || y >= b.H {
			return 0
		}
		return d[y*b.W+x]
	}
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			v := at(x, y)
			if v == 0 {
				continue
			}
			ridge := true
			for _, n := range imaging.Neighbors8 {
				step := int32(chamferOrtho)
				if n.X != 0 && n.Y != 0 {
					step = chamferDiag
				}
				if at(x+n.X, y+n.Y) >= v+step {
					ridge = false
					break
				}
			}
			if ridge {
				out.Pix[y*out.W+x] = 1
			}
		}
	}
	return out
}

// medialAxis produces the medial-axis skeleton: the distance ridge,
// reduced to unit width by a Zhang–Suen pass. The result, unlike the Z-S
// skeleton of the full shape, may be fragmented on noisy silhouettes.
func medialAxis(b *imaging.Binary) *imaging.Binary {
	ridge := medialAxisRidge(b)
	thinZhangSuen(ridge)
	return ridge
}
