package video

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/imaging"
)

// FuzzReader guards the Y4M parser: malformed streams must error, never
// panic, and valid prefixes must decode consistently.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteClip(&buf, []*imaging.RGB{imaging.NewRGB(2, 2)}, 25); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("YUV4MPEG2 W2 H2 F25:1 C444\nFRAME\n")
	f.Add("YUV4MPEG2 W0 H2 C444\n")
	f.Add("garbage")
	f.Add("YUV4MPEG2 W99999999 H99999999 C444\nFRAME\n")
	f.Fuzz(func(t *testing.T, data string) {
		vr, err := NewReader(strings.NewReader(data))
		if err != nil {
			return
		}
		for {
			m, err := vr.ReadFrame()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return
			}
			if len(m.Pix) != 3*m.W*m.H {
				t.Fatal("reader produced inconsistent frame")
			}
		}
	})
}
