// Package video reads and writes clips as YUV4MPEG2 (.y4m) streams with
// 4:4:4 chroma, the simplest container that real tools (ffmpeg, mpv)
// play directly. The paper's system consumes video clips of "about 40
// frames"; this package gives the repository a single-file clip format
// alongside the per-frame Netpbm files of internal/dataset.
//
// Colour conversion uses the Rec.601 full-range matrices from the
// standard library's image/color package, so a write/read round trip is
// accurate to ±2 intensity levels per channel.
package video

import (
	"bufio"
	"errors"
	"fmt"
	"image/color"
	"io"
	"strconv"
	"strings"

	"repro/internal/imaging"
)

// Errors.
var (
	// ErrBadHeader reports a malformed YUV4MPEG2 signature or
	// parameters.
	ErrBadHeader = errors.New("video: bad YUV4MPEG2 header")
	// ErrBadFrame reports a malformed FRAME marker or truncated planes.
	ErrBadFrame = errors.New("video: bad frame")
)

const (
	signature = "YUV4MPEG2"
	frameMark = "FRAME"
)

// Writer emits a YUV4MPEG2 4:4:4 stream. Create with NewWriter, call
// WriteFrame per frame, and Flush at the end.
type Writer struct {
	w             *bufio.Writer
	width, height int
	headerDone    bool
	fpsNum        int
	fpsDen        int
	planes        []byte
}

// NewWriter prepares a writer for w×h frames at the given frame rate.
func NewWriter(w io.Writer, width, height, fpsNum, fpsDen int) (*Writer, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("video: bad dimensions %dx%d", width, height)
	}
	if fpsNum <= 0 || fpsDen <= 0 {
		return nil, fmt.Errorf("video: bad frame rate %d:%d", fpsNum, fpsDen)
	}
	return &Writer{
		w: bufio.NewWriter(w), width: width, height: height,
		fpsNum: fpsNum, fpsDen: fpsDen,
		planes: make([]byte, 3*width*height),
	}, nil
}

// WriteFrame appends one RGB frame, converting to YCbCr 4:4:4. The frame
// must match the writer's dimensions.
func (vw *Writer) WriteFrame(m *imaging.RGB) error {
	if m.W != vw.width || m.H != vw.height {
		return fmt.Errorf("video: frame %dx%d does not match stream %dx%d: %w",
			m.W, m.H, vw.width, vw.height, imaging.ErrDimensionMismatch)
	}
	if !vw.headerDone {
		if _, err := fmt.Fprintf(vw.w, "%s W%d H%d F%d:%d Ip A1:1 C444\n",
			signature, vw.width, vw.height, vw.fpsNum, vw.fpsDen); err != nil {
			return fmt.Errorf("video: writing header: %w", err)
		}
		vw.headerDone = true
	}
	if _, err := fmt.Fprintf(vw.w, "%s\n", frameMark); err != nil {
		return fmt.Errorf("video: writing frame marker: %w", err)
	}
	n := vw.width * vw.height
	yp, cbp, crp := vw.planes[:n], vw.planes[n:2*n], vw.planes[2*n:]
	for p := 0; p < n; p++ {
		y, cb, cr := color.RGBToYCbCr(m.Pix[3*p], m.Pix[3*p+1], m.Pix[3*p+2])
		yp[p], cbp[p], crp[p] = y, cb, cr
	}
	if _, err := vw.w.Write(vw.planes); err != nil {
		return fmt.Errorf("video: writing planes: %w", err)
	}
	return nil
}

// Flush completes the stream.
func (vw *Writer) Flush() error {
	if err := vw.w.Flush(); err != nil {
		return fmt.Errorf("video: flushing: %w", err)
	}
	return nil
}

// Reader decodes a YUV4MPEG2 4:4:4 stream written by Writer (or any
// compatible producer using C444).
type Reader struct {
	r             *bufio.Reader
	width, height int
	fpsNum        int
	fpsDen        int
	planes        []byte
}

// NewReader parses the stream header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	fields := strings.Fields(strings.TrimSuffix(line, "\n"))
	if len(fields) == 0 || fields[0] != signature {
		return nil, fmt.Errorf("%w: signature %q", ErrBadHeader, line)
	}
	vr := &Reader{r: br, fpsNum: 25, fpsDen: 1}
	colorOK := true // default C420 would not be ok; require explicit C444 or absent
	for _, f := range fields[1:] {
		if len(f) < 2 {
			continue
		}
		val := f[1:]
		switch f[0] {
		case 'W':
			vr.width, err = strconv.Atoi(val)
		case 'H':
			vr.height, err = strconv.Atoi(val)
		case 'F':
			num, den, found := strings.Cut(val, ":")
			if !found {
				return nil, fmt.Errorf("%w: frame rate %q", ErrBadHeader, val)
			}
			if vr.fpsNum, err = strconv.Atoi(num); err == nil {
				vr.fpsDen, err = strconv.Atoi(den)
			}
		case 'C':
			colorOK = val == "444"
		}
		if err != nil {
			return nil, fmt.Errorf("%w: field %q: %v", ErrBadHeader, f, err)
		}
	}
	if vr.width <= 0 || vr.height <= 0 {
		return nil, fmt.Errorf("%w: dimensions %dx%d", ErrBadHeader, vr.width, vr.height)
	}
	// Cap total pixels so hostile headers cannot drive allocation. Each
	// dimension is capped first so the product cannot overflow int64.
	const maxPixels = 1 << 26
	if vr.width > maxPixels || vr.height > maxPixels ||
		int64(vr.width)*int64(vr.height) > maxPixels {
		return nil, fmt.Errorf("%w: %dx%d exceeds the %d-pixel cap", ErrBadHeader, vr.width, vr.height, maxPixels)
	}
	if !colorOK {
		return nil, fmt.Errorf("%w: only C444 chroma is supported", ErrBadHeader)
	}
	vr.planes = make([]byte, 3*vr.width*vr.height)
	return vr, nil
}

// Size returns the stream dimensions.
func (vr *Reader) Size() (w, h int) { return vr.width, vr.height }

// FrameRate returns the stream frame rate as a rational.
func (vr *Reader) FrameRate() (num, den int) { return vr.fpsNum, vr.fpsDen }

// ReadFrame decodes the next frame, or io.EOF at end of stream.
func (vr *Reader) ReadFrame() (*imaging.RGB, error) {
	line, err := vr.r.ReadString('\n')
	if err != nil {
		if errors.Is(err, io.EOF) && line == "" {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if !strings.HasPrefix(line, frameMark) {
		return nil, fmt.Errorf("%w: marker %q", ErrBadFrame, strings.TrimSpace(line))
	}
	if _, err := io.ReadFull(vr.r, vr.planes); err != nil {
		return nil, fmt.Errorf("%w: planes: %v", ErrBadFrame, err)
	}
	n := vr.width * vr.height
	m := imaging.NewRGB(vr.width, vr.height)
	yp, cbp, crp := vr.planes[:n], vr.planes[n:2*n], vr.planes[2*n:]
	for p := 0; p < n; p++ {
		r, g, b := color.YCbCrToRGB(yp[p], cbp[p], crp[p])
		m.Pix[3*p], m.Pix[3*p+1], m.Pix[3*p+2] = r, g, b
	}
	return m, nil
}

// ReadAll decodes every remaining frame.
func (vr *Reader) ReadAll() ([]*imaging.RGB, error) {
	var out []*imaging.RGB
	for {
		m, err := vr.ReadFrame()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
}

// WriteClip is a convenience that streams a whole frame sequence.
func WriteClip(w io.Writer, frames []*imaging.RGB, fps int) error {
	if len(frames) == 0 {
		return errors.New("video: no frames")
	}
	vw, err := NewWriter(w, frames[0].W, frames[0].H, fps, 1)
	if err != nil {
		return err
	}
	for i, f := range frames {
		if err := vw.WriteFrame(f); err != nil {
			return fmt.Errorf("video: frame %d: %w", i, err)
		}
	}
	return vw.Flush()
}
