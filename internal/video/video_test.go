package video

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/imaging"
	"repro/internal/synth"
)

func randFrame(w, h int, seed int64) *imaging.RGB {
	r := rand.New(rand.NewSource(seed))
	m := imaging.NewRGB(w, h)
	for i := range m.Pix {
		m.Pix[i] = uint8(r.Intn(256))
	}
	return m
}

func TestNewWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, 0, 10, 25, 1); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewWriter(&buf, 10, 10, 0, 1); err == nil {
		t.Error("zero fps accepted")
	}
}

func TestRoundTripApproximate(t *testing.T) {
	frames := []*imaging.RGB{randFrame(32, 24, 1), randFrame(32, 24, 2), randFrame(32, 24, 3)}
	var buf bytes.Buffer
	if err := WriteClip(&buf, frames, 25); err != nil {
		t.Fatal(err)
	}
	vr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if w, h := vr.Size(); w != 32 || h != 24 {
		t.Fatalf("size = %dx%d", w, h)
	}
	if n, d := vr.FrameRate(); n != 25 || d != 1 {
		t.Fatalf("fps = %d:%d", n, d)
	}
	got, err := vr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("frames = %d, want %d", len(got), len(frames))
	}
	// YCbCr round trip is lossy by at most a couple of levels.
	for fi := range frames {
		for i := range frames[fi].Pix {
			d := int(frames[fi].Pix[i]) - int(got[fi].Pix[i])
			if d < -3 || d > 3 {
				t.Fatalf("frame %d byte %d: |%d - %d| > 3", fi, i, frames[fi].Pix[i], got[fi].Pix[i])
			}
		}
	}
}

func TestSecondRoundTripIsExact(t *testing.T) {
	// Once through the colour space, a second encode/decode must be
	// lossless (the conversion is idempotent on its range).
	var buf bytes.Buffer
	if err := WriteClip(&buf, []*imaging.RGB{randFrame(16, 16, 9)}, 30); err != nil {
		t.Fatal(err)
	}
	vr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	once, err := vr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := WriteClip(&buf2, once, 30); err != nil {
		t.Fatal(err)
	}
	vr2, err := NewReader(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := vr2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range once[0].Pix {
		d := int(once[0].Pix[i]) - int(twice[0].Pix[i])
		if d < -1 || d > 1 {
			t.Fatalf("byte %d drifted by %d on second round trip", i, d)
		}
	}
}

func TestWriteFrameDimensionMismatch(t *testing.T) {
	var buf bytes.Buffer
	vw, err := NewWriter(&buf, 16, 16, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := vw.WriteFrame(imaging.NewRGB(8, 8)); !errors.Is(err, imaging.ErrDimensionMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestReaderHeaderErrors(t *testing.T) {
	tests := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"bad signature", "MPEG4 W8 H8 C444\n"},
		{"missing dims", "YUV4MPEG2 F25:1 C444\n"},
		{"bad width", "YUV4MPEG2 Wx H8 C444\n"},
		{"bad rate", "YUV4MPEG2 W8 H8 F25 C444\n"},
		{"unsupported chroma", "YUV4MPEG2 W8 H8 F25:1 C420\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewReader(strings.NewReader(tt.data)); !errors.Is(err, ErrBadHeader) {
				t.Errorf("err = %v, want ErrBadHeader", err)
			}
		})
	}
}

func TestReaderFrameErrors(t *testing.T) {
	// Valid header, corrupt frame marker.
	data := "YUV4MPEG2 W2 H2 F25:1 C444\nBOGUS\n"
	vr, err := NewReader(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vr.ReadFrame(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
	// Truncated planes.
	data2 := "YUV4MPEG2 W2 H2 F25:1 C444\nFRAME\nxx"
	vr2, err := NewReader(strings.NewReader(data2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vr2.ReadFrame(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

func TestReadFrameEOF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteClip(&buf, []*imaging.RGB{randFrame(4, 4, 2)}, 25); err != nil {
		t.Fatal(err)
	}
	vr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vr.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	if _, err := vr.ReadFrame(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestWriteClipEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteClip(&buf, nil, 25); err == nil {
		t.Error("empty clip accepted")
	}
}

func TestSyntheticClipToY4M(t *testing.T) {
	spec := synth.DefaultSpec(31)
	spec.Script = spec.Script[:3]
	clip, err := synth.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]*imaging.RGB, len(clip.Frames))
	for i, f := range clip.Frames {
		frames[i] = f.Image
	}
	var buf bytes.Buffer
	if err := WriteClip(&buf, frames, 25); err != nil {
		t.Fatal(err)
	}
	vr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := vr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("frames = %d, want %d", len(got), len(frames))
	}
	// The stream must carry the expected signature for external tools.
	if !strings.HasPrefix(buf.String(), "YUV4MPEG2 W") {
		// buf was consumed by the reader; rebuild to check.
		var buf2 bytes.Buffer
		if err := WriteClip(&buf2, frames[:1], 25); err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(buf2.String(), "YUV4MPEG2 W") {
			t.Error("stream missing YUV4MPEG2 signature")
		}
	}
}
