package obs

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"time"
)

// Tracer streams span records as JSON Lines: one object per completed
// span, e.g.
//
//	{"t_us":12345678,"clip":"train-03","trace":"t000007","stage":"thin","ns":84125}
//
// t_us is the span start in microseconds since the tracer was opened,
// so traces are diffable across runs; trace is the clip's engine-
// dispatch trace ID (absent on unlabelled scopes), the same ID its log
// lines and error-journal entries carry. Records are hand-formatted
// into the LineSink's reused buffer under its mutex — the tracer is
// shared by all engine workers and must not interleave lines or
// allocate per span beyond the buffered writer's amortised growth. The
// sink may be shared with a LogHandler (-spans and -log pointing at
// one file): both producers then serialise through the same lock.
type Tracer struct {
	sink  *LineSink
	epoch time.Time
	owned bool // Close closes the sink (vs. shared with the log handler)
}

// NewTracer wraps w; Close flushes and, when w is also an io.Closer,
// closes it.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{sink: NewLineSink(w), epoch: time.Now(), owned: true}
}

// NewTracerSink emits onto an existing (possibly shared) sink; Close
// flushes but leaves the sink open for its other producers.
func NewTracerSink(sink *LineSink) *Tracer {
	return &Tracer{sink: sink, epoch: time.Now()}
}

// OpenTrace creates (truncates) a JSONL trace file at path.
func OpenTrace(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: opening trace file: %w", err)
	}
	return NewTracer(f), nil
}

// emit appends one span record. Safe for concurrent use.
func (t *Tracer) emit(clip, trace string, st Stage, start time.Time, ns int64) {
	if t == nil {
		return
	}
	b := t.sink.line()
	b = append(b, `{"t_us":`...)
	b = strconv.AppendInt(b, start.Sub(t.epoch).Microseconds(), 10)
	if clip != "" {
		b = append(b, `,"clip":`...)
		b = strconv.AppendQuote(b, clip)
	}
	if trace != "" {
		b = append(b, `,"trace":`...)
		b = strconv.AppendQuote(b, trace)
	}
	b = append(b, `,"stage":"`...)
	b = append(b, st.String()...)
	b = append(b, `","ns":`...)
	b = strconv.AppendInt(b, ns, 10)
	b = append(b, '}', '\n')
	t.sink.commit(b)
}

// Close flushes buffered records and, when the tracer owns its sink,
// closes the underlying file. Safe on a nil tracer.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	if t.owned {
		if err := t.sink.Close(); err != nil {
			return fmt.Errorf("obs: closing trace: %w", err)
		}
		return nil
	}
	if err := t.sink.Flush(); err != nil {
		return fmt.Errorf("obs: closing trace: %w", err)
	}
	return nil
}
