package obs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"
)

// Tracer streams span records as JSON Lines: one object per completed
// span, e.g.
//
//	{"t_us":12345678,"clip":"train-03","stage":"thin","ns":84125}
//
// t_us is the span start in microseconds since the tracer was opened,
// so traces are diffable across runs. Records are hand-formatted into a
// reusable buffer under a mutex — the tracer is shared by all engine
// workers and must not interleave lines or allocate per span beyond the
// buffered writer's amortised growth.
type Tracer struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer
	epoch time.Time
	buf   []byte
}

// NewTracer wraps w; Close flushes and, when w is also an io.Closer,
// closes it.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: bufio.NewWriterSize(w, 1<<16), epoch: time.Now()}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// OpenTrace creates (truncates) a JSONL trace file at path.
func OpenTrace(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: opening trace file: %w", err)
	}
	return NewTracer(f), nil
}

// emit appends one span record. Safe for concurrent use.
func (t *Tracer) emit(clip string, st Stage, start time.Time, ns int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	b := t.buf[:0]
	b = append(b, `{"t_us":`...)
	b = strconv.AppendInt(b, start.Sub(t.epoch).Microseconds(), 10)
	if clip != "" {
		b = append(b, `,"clip":`...)
		b = strconv.AppendQuote(b, clip)
	}
	b = append(b, `,"stage":"`...)
	b = append(b, st.String()...)
	b = append(b, `","ns":`...)
	b = strconv.AppendInt(b, ns, 10)
	b = append(b, '}', '\n')
	t.buf = b
	_, _ = t.w.Write(b)
	t.mu.Unlock()
}

// Close flushes buffered records and closes the underlying file, if
// any. Safe on a nil tracer.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.w.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return fmt.Errorf("obs: closing trace: %w", err)
	}
	return nil
}
