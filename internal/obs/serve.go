package obs

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes a registry (and the process profiles) over HTTP:
//
//	/debug/vars          — standard expvar page (includes the registry)
//	/debug/metrics       — the registry's JSON snapshot alone
//	/debug/metrics.prom  — Prometheus text exposition (format 0.0.4)
//	/debug/timeseries    — the sampler's ring-buffer series as JSON
//	/debug/errors        — the error journal (counts + exemplars)
//	/debug/health        — the SLO verdict (503 while failing)
//	/debug/pprof/*       — net/http/pprof handlers
//
// A dedicated mux is used so nothing leaks onto http.DefaultServeMux
// and two servers in one process (e.g. -metrics and -pprof on separate
// ports) cannot collide.
type Server struct {
	srv    *http.Server
	ln     net.Listener
	health *HealthEvaluator
	sink   *LineSink
}

// ShutdownTimeout bounds how long Close waits for in-flight scrapes to
// finish before hard-closing connections.
const ShutdownTimeout = 5 * time.Second

// ServeConfig bundles everything a Server can expose. Every field is
// optional; absent subsystems simply don't mount their endpoints.
type ServeConfig struct {
	Registry *Registry
	Sampler  *Sampler
	Journal  *Journal
	// Health is served at /debug/health; Close also stops it so no
	// tick re-evaluates the verdict after shutdown begins.
	Health *HealthEvaluator
	// LogSink, when set, is flushed before Close returns, so the last
	// log lines of a run are on disk once the server is down.
	LogSink *LineSink
}

// Serve starts an HTTP server on addr exposing a registry and sampler;
// the common pre-health call. See ServeWith for the full surface.
func Serve(addr string, reg *Registry, smp *Sampler) (*Server, error) {
	return ServeWith(addr, ServeConfig{Registry: reg, Sampler: smp})
}

// ServeWith starts an HTTP server on addr. When cfg.Registry is
// non-nil its snapshot is served at /debug/metrics (JSON) and
// /debug/metrics.prom (Prometheus) and published to expvar (so it also
// shows under /debug/vars); cfg.Sampler serves /debug/timeseries,
// cfg.Journal /debug/errors, cfg.Health /debug/health; pprof is always
// mounted. addr may use port 0 for an ephemeral port — Addr reports
// the bound address.
func ServeWith(addr string, cfg ServeConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	MountDebug(mux, cfg)
	s := &Server{
		srv:    &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:     ln,
		health: cfg.Health,
		sink:   cfg.LogSink,
	}
	go s.srv.Serve(ln) //nolint — Serve always returns non-nil after Close
	return s, nil
}

// MountDebug registers the /debug endpoint set on mux — the same
// surface ServeWith exposes, for callers (the serving layer) that run
// their own http.Server and want the observability endpoints alongside
// their application routes. Absent cfg subsystems simply don't mount
// their endpoints; pprof and /debug/vars are always mounted.
func MountDebug(mux *http.ServeMux, cfg ServeConfig) {
	mux.Handle("/debug/vars", expvar.Handler())
	if reg := cfg.Registry; reg != nil {
		reg.PublishExpvar("slj")
		mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.WriteJSON(w)
		})
		mux.HandleFunc("/debug/metrics.prom", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", PromContentType)
			_ = reg.WriteProm(w)
		})
	}
	if smp := cfg.Sampler; smp != nil {
		mux.HandleFunc("/debug/timeseries", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = smp.WriteJSON(w)
		})
	}
	if j := cfg.Journal; j != nil {
		mux.HandleFunc("/debug/errors", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = j.WriteJSON(w)
		})
	}
	if h := cfg.Health; h != nil {
		mux.HandleFunc("/debug/health", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			// Ready and degraded runs still answer 200 (a degraded run
			// is serving, just burning budget); failing answers 503 so
			// load balancers and liveness probes eject the process.
			if h.Health() == VerdictFailing {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			_ = h.WriteJSON(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server gracefully: the SLO evaluator is stopped
// first (so no late tick flips the verdict under a shutting-down
// process), then the listener closes so no new scrape can start, while
// requests already in flight (a Prometheus scrape racing CLI.Stop,
// say) get up to ShutdownTimeout to finish before connections are torn
// down. The log sink, when one was configured, is flushed before Close
// returns — the run's last events hit disk no later than its server
// goes away. Safe on a nil receiver.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.health.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), ShutdownTimeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		// A scrape outlived the grace period; fall back to a hard close.
		err = s.srv.Close()
	}
	if ferr := s.sink.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		return fmt.Errorf("obs: closing server: %w", err)
	}
	return nil
}
