package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes a registry (and the process profiles) over HTTP:
//
//	/debug/vars     — standard expvar page (includes the registry)
//	/debug/metrics  — the registry's JSON snapshot alone
//	/debug/pprof/*  — net/http/pprof handlers
//
// A dedicated mux is used so nothing leaks onto http.DefaultServeMux
// and two servers in one process (e.g. -metrics and -pprof on separate
// ports) cannot collide.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts an HTTP server on addr. When reg is non-nil its snapshot
// is served at /debug/metrics and published to expvar (so it also shows
// under /debug/vars); pprof is always mounted. addr may use port 0 for
// an ephemeral port — Addr reports the bound address.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	if reg != nil {
		reg.PublishExpvar("slj")
		mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.WriteJSON(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}, ln: ln}
	go s.srv.Serve(ln) //nolint — Serve always returns non-nil after Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server. Safe on a nil receiver.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	if err := s.srv.Close(); err != nil {
		return fmt.Errorf("obs: closing server: %w", err)
	}
	return nil
}
