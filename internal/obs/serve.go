package obs

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes a registry (and the process profiles) over HTTP:
//
//	/debug/vars          — standard expvar page (includes the registry)
//	/debug/metrics       — the registry's JSON snapshot alone
//	/debug/metrics.prom  — Prometheus text exposition (format 0.0.4)
//	/debug/timeseries    — the sampler's ring-buffer series as JSON
//	/debug/pprof/*       — net/http/pprof handlers
//
// A dedicated mux is used so nothing leaks onto http.DefaultServeMux
// and two servers in one process (e.g. -metrics and -pprof on separate
// ports) cannot collide.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// ShutdownTimeout bounds how long Close waits for in-flight scrapes to
// finish before hard-closing connections.
const ShutdownTimeout = 5 * time.Second

// Serve starts an HTTP server on addr. When reg is non-nil its snapshot
// is served at /debug/metrics (JSON) and /debug/metrics.prom
// (Prometheus) and published to expvar (so it also shows under
// /debug/vars); when smp is non-nil its ring buffers are served at
// /debug/timeseries; pprof is always mounted. addr may use port 0 for
// an ephemeral port — Addr reports the bound address.
func Serve(addr string, reg *Registry, smp *Sampler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	if reg != nil {
		reg.PublishExpvar("slj")
		mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.WriteJSON(w)
		})
		mux.HandleFunc("/debug/metrics.prom", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", PromContentType)
			_ = reg.WriteProm(w)
		})
	}
	if smp != nil {
		mux.HandleFunc("/debug/timeseries", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = smp.WriteJSON(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}, ln: ln}
	go s.srv.Serve(ln) //nolint — Serve always returns non-nil after Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server gracefully: the listener closes immediately so
// no new scrape can start, but requests already in flight (a Prometheus
// scrape racing CLI.Stop, say) get up to ShutdownTimeout to finish
// before connections are torn down. Safe on a nil receiver.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), ShutdownTimeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		// A scrape outlived the grace period; fall back to a hard close.
		err = s.srv.Close()
	}
	if err != nil {
		return fmt.Errorf("obs: closing server: %w", err)
	}
	return nil
}
