package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/trace"
	"strings"
	"time"
)

// CLI bundles the observability command-line surface shared by the slj
// binaries (sljeval, sljexp, sljtrain, sljvideo): flag registration,
// start-up of the chosen sinks, and orderly shutdown. The zero value
// with no flags set is fully inert — Start returns a nil *Scope and the
// pipeline runs exactly as before.
type CLI struct {
	// Metrics is the -metrics listen address (expvar + JSON + Prometheus
	// + timeseries + pprof).
	Metrics string
	// Pprof is the -pprof listen address; shares the -metrics server
	// when equal or empty while -metrics is set.
	Pprof string
	// Trace is the -trace runtime/trace output path.
	Trace string
	// Spans is the -spans JSONL span-trace output path.
	Spans string
	// MetricsOut is the -metrics-out snapshot path written by Stop.
	MetricsOut string
	// SampleInterval is the -sample-interval time-series sampling period
	// (0 disables the sampler; only active when some other flag enables
	// observability).
	SampleInterval time.Duration
	// SampleWindow is the ring-buffer capacity in points.
	SampleWindow int
	// Report is the -report RUN_REPORT.json path written by Stop (a .md
	// rendering is written alongside it).
	Report string
	// ReportCompare is the -report-compare baseline report; Stop returns
	// an error when the new report regresses against it.
	ReportCompare string
	// Log is the -log structured-event JSONL path ("-" or "stderr" for
	// standard error). It may equal Spans, in which case log lines and
	// span records interleave through one shared LineSink.
	Log string
	// LogLevel is the -log-level minimum (debug|info|warn|error).
	LogLevel string
	// ErrorsOut is the -errors-out error-journal snapshot path written
	// by Stop.
	ErrorsOut string
	// HealthOut is the -health-out health snapshot path written by
	// Stop (after one final SLO evaluation).
	HealthOut string

	scope     *Scope
	metricsLn *Server
	pprofLn   *Server
	tracer    *Tracer
	traceFile *os.File
	sampler   *Sampler
	journal   *Journal
	health    *HealthEvaluator
	logSink   *LineSink
	started   time.Time
}

// RegisterFlags installs the observability flags on fs.
func (c *CLI) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Metrics, "metrics", "", "serve expvar (/debug/vars), JSON metrics (/debug/metrics), Prometheus text (/debug/metrics.prom), sampled series (/debug/timeseries) and pprof on this address, e.g. :6060")
	fs.StringVar(&c.Pprof, "pprof", "", "serve net/http/pprof on this address (separate from -metrics)")
	fs.StringVar(&c.Trace, "trace", "", "write a runtime/trace profile to this file (view with `go tool trace`)")
	fs.StringVar(&c.Spans, "spans", "", "write per-stage span timings to this file as JSON Lines (convert with sljtrace for Perfetto)")
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write a final metrics snapshot (JSON) to this file on exit")
	fs.DurationVar(&c.SampleInterval, "sample-interval", time.Second, "time-series sampling period for /debug/timeseries and sljtop (0 disables sampling)")
	fs.IntVar(&c.SampleWindow, "sample-window", 300, "time-series ring-buffer capacity in samples")
	fs.StringVar(&c.Report, "report", "", "write an end-of-run report (JSON + markdown sibling) to this path, e.g. RUN_REPORT.json")
	fs.StringVar(&c.ReportCompare, "report-compare", "", "previous -report JSON to gate against; exit non-zero when stage quantiles or throughput regress")
	fs.StringVar(&c.Log, "log", "", "write structured JSONL event logs to this file (\"-\" or \"stderr\" for standard error; may equal -spans to interleave)")
	fs.StringVar(&c.LogLevel, "log-level", "info", "minimum -log level: debug|info|warn|error")
	fs.StringVar(&c.ErrorsOut, "errors-out", "", "write a final error-journal snapshot (JSON) to this file on exit")
	fs.StringVar(&c.HealthOut, "health-out", "", "write a final health/SLO snapshot (JSON) to this file on exit")
}

// Enabled reports whether any observability sink was requested.
// -sample-interval alone does not enable anything: sampling is a
// consumer of the other sinks, not a sink itself.
func (c *CLI) Enabled() bool {
	return c.Metrics != "" || c.Pprof != "" || c.Trace != "" || c.Spans != "" ||
		c.MetricsOut != "" || c.Report != "" || c.Log != "" ||
		c.ErrorsOut != "" || c.HealthOut != ""
}

// Start brings up every requested sink and returns the pipeline scope
// to thread into slj.WithObservability. When no flag was set it returns
// (nil, nil): a nil scope disables instrumentation everywhere. On error
// it tears down whatever it had already started.
func (c *CLI) Start() (*Scope, error) {
	if !c.Enabled() {
		return nil, nil
	}
	c.started = time.Now()
	c.scope = NewScope(NewRegistry())
	c.journal = NewJournal(c.scope.Registry(), 256)
	c.scope.SetJournal(c.journal)
	if c.Log != "" {
		level, err := ParseLogLevel(c.LogLevel)
		if err != nil {
			c.shutdown()
			return nil, err
		}
		if c.Log == "-" || c.Log == "stderr" {
			// Wrap stderr so the sink's Close never closes the real fd.
			c.logSink = NewLineSink(struct{ io.Writer }{os.Stderr})
		} else {
			c.logSink, err = OpenLineSink(c.Log)
			if err != nil {
				c.shutdown()
				return nil, err
			}
		}
		c.scope.SetLogger(slog.New(NewLogHandler(c.logSink, LogOptions{Level: level})))
	}
	if c.SampleInterval > 0 {
		c.sampler = NewSampler(c.scope.Registry(), c.SampleInterval, c.SampleWindow)
		h, err := NewHealthEvaluator(c.scope.Registry(), c.sampler, c.journal, DefaultSLOs())
		if err != nil {
			c.shutdown()
			return nil, err
		}
		c.health = h
		// The evaluator rides the sampler: one verdict per sample tick.
		c.sampler.SetOnTick(h.Eval)
		c.sampler.Start()
	}
	if c.Spans != "" {
		if c.logSink != nil && c.Spans == c.Log {
			// Spans and logs share one serialized sink: records
			// interleave whole-line, never mid-line.
			c.tracer = NewTracerSink(c.logSink)
		} else {
			t, err := OpenTrace(c.Spans)
			if err != nil {
				c.shutdown()
				return nil, err
			}
			c.tracer = t
		}
		c.scope.SetTracer(c.tracer)
	}
	if c.Trace != "" {
		f, err := os.Create(c.Trace)
		if err != nil {
			c.shutdown()
			return nil, fmt.Errorf("obs: creating trace file: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			c.shutdown()
			return nil, fmt.Errorf("obs: starting runtime trace: %w", err)
		}
		c.traceFile = f
	}
	if c.Metrics != "" {
		s, err := ServeWith(c.Metrics, ServeConfig{
			Registry: c.scope.Registry(),
			Sampler:  c.sampler,
			Journal:  c.journal,
			Health:   c.health,
			LogSink:  c.logSink,
		})
		if err != nil {
			c.shutdown()
			return nil, err
		}
		c.metricsLn = s
		fmt.Fprintf(os.Stderr, "obs: metrics on http://%s/debug/metrics (expvar at /debug/vars, Prometheus at /debug/metrics.prom, series at /debug/timeseries, errors at /debug/errors, health at /debug/health)\n", s.Addr())
	}
	if c.Pprof != "" && c.Pprof != c.Metrics {
		s, err := Serve(c.Pprof, nil, nil)
		if err != nil {
			c.shutdown()
			return nil, err
		}
		c.pprofLn = s
		fmt.Fprintf(os.Stderr, "obs: pprof on http://%s/debug/pprof/\n", s.Addr())
	}
	if l := c.scope.Logger(); l != nil {
		l.Info("run started", "sample_interval", c.SampleInterval)
	}
	return c.scope, nil
}

// Stop flushes and closes every sink Start opened: stops the runtime
// trace, closes the span tracer, stops the sampler (capturing one final
// tick), writes the -metrics-out snapshot and the -report files, and
// shuts the HTTP servers down gracefully. Safe to call when Start was
// never called or returned (nil, nil). When -report-compare was given
// and the new report regresses, the returned error describes every
// regression.
func (c *CLI) Stop() error {
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if c.traceFile != nil {
		trace.Stop()
		keep(c.traceFile.Close())
		c.traceFile = nil
	}
	keep(c.tracer.Close())
	c.tracer = nil
	// Stopping the sampler takes one final tick, which (via SetOnTick)
	// runs one final SLO evaluation — the artifacts below see the whole
	// run, including its last partial window.
	c.sampler.Stop()
	if c.MetricsOut != "" && c.scope != nil {
		keep(c.writeSnapshot())
	}
	if c.ErrorsOut != "" && c.journal != nil {
		keep(writeFileWith(c.ErrorsOut, c.journal.WriteJSON))
	}
	if c.HealthOut != "" && c.scope != nil {
		keep(writeFileWith(c.HealthOut, c.health.WriteJSON))
	}
	if c.Report != "" && c.scope != nil {
		keep(c.writeReport())
	}
	if l := c.scope.Logger(); l != nil {
		l.Info("run finished", "health", c.health.Health().String(), "errors", c.journal.Total())
	}
	c.shutdown()
	keep(c.logSink.Close())
	c.logSink = nil
	return first
}

func (c *CLI) writeSnapshot() error {
	f, err := os.Create(c.MetricsOut)
	if err != nil {
		return fmt.Errorf("obs: creating metrics snapshot: %w", err)
	}
	if err := c.scope.Registry().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: writing metrics snapshot: %w", err)
	}
	return nil
}

// writeReport builds the end-of-run report from the registry's final
// snapshot and writes the JSON and markdown renderings; with
// -report-compare it then gates against the baseline report.
func (c *CLI) writeReport() error {
	rep := BuildRunReport(c.scope.Registry().Snapshot(), time.Since(c.started), time.Now())
	if c.health != nil {
		hs := c.health.Snapshot()
		rep.Health = &hs
	}
	if c.journal != nil {
		js := c.journal.Snapshot()
		rep.Errors = &js
	}
	if err := writeFileWith(c.Report, rep.WriteJSON); err != nil {
		return err
	}
	if err := writeFileWith(reportMarkdownPath(c.Report), rep.WriteMarkdown); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "obs: run report written to %s (markdown: %s)\n",
		c.Report, reportMarkdownPath(c.Report))
	if c.ReportCompare == "" {
		return nil
	}
	base, err := LoadRunReport(c.ReportCompare)
	if err != nil {
		return err
	}
	// Same spirit as benchjson -compare: latency gated loosely because
	// machines vary, throughput must not halve.
	regs := CompareRunReports(base, rep, 500, 80)
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "obs: report gate passed against %s\n", c.ReportCompare)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "obs: REGRESSION %s\n", r)
	}
	return fmt.Errorf("obs: %d report regression(s) against %s", len(regs), c.ReportCompare)
}

// reportMarkdownPath derives the .md sibling of a report path
// ("RUN_REPORT.json" → "RUN_REPORT.md").
func reportMarkdownPath(path string) string {
	ext := filepath.Ext(path)
	if strings.EqualFold(ext, ".json") {
		return path[:len(path)-len(ext)] + ".md"
	}
	return path + ".md"
}

// writeFileWith creates path and streams fn into it, surfacing close
// errors exactly once.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: creating %s: %w", path, err)
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: writing %s: %w", path, err)
	}
	return nil
}

// Sampler returns the CLI's time-series sampler (nil when sampling is
// disabled or Start has not run).
func (c *CLI) Sampler() *Sampler {
	return c.sampler
}

// Health returns the CLI's SLO evaluator (nil when sampling is
// disabled or Start has not run); serving layers use it as their
// admission predicate.
func (c *CLI) Health() *HealthEvaluator {
	return c.health
}

// Journal returns the CLI's error journal (nil before Start).
func (c *CLI) Journal() *Journal {
	return c.journal
}

// shutdown closes the HTTP servers, sampler and SLO evaluator (used by
// Stop and by Start's error paths). The log sink outlives it — Stop
// closes it last so shutdown itself can still be logged.
func (c *CLI) shutdown() {
	c.health.Stop()
	c.sampler.Stop()
	c.sampler = nil
	_ = c.metricsLn.Close()
	_ = c.pprofLn.Close()
	c.metricsLn, c.pprofLn = nil, nil
}
