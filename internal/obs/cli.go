package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime/trace"
)

// CLI bundles the observability command-line surface shared by the slj
// binaries (sljeval, sljexp, sljtrain, sljvideo): flag registration,
// start-up of the chosen sinks, and orderly shutdown. The zero value
// with no flags set is fully inert — Start returns a nil *Scope and the
// pipeline runs exactly as before.
type CLI struct {
	// Metrics is the -metrics listen address (expvar + JSON + pprof).
	Metrics string
	// Pprof is the -pprof listen address; shares the -metrics server
	// when equal or empty while -metrics is set.
	Pprof string
	// Trace is the -trace runtime/trace output path.
	Trace string
	// Spans is the -spans JSONL span-trace output path.
	Spans string
	// MetricsOut is the -metrics-out snapshot path written by Stop.
	MetricsOut string

	scope     *Scope
	metricsLn *Server
	pprofLn   *Server
	tracer    *Tracer
	traceFile *os.File
}

// RegisterFlags installs the observability flags on fs.
func (c *CLI) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Metrics, "metrics", "", "serve expvar (/debug/vars), JSON metrics (/debug/metrics) and pprof on this address, e.g. :6060")
	fs.StringVar(&c.Pprof, "pprof", "", "serve net/http/pprof on this address (separate from -metrics)")
	fs.StringVar(&c.Trace, "trace", "", "write a runtime/trace profile to this file (view with `go tool trace`)")
	fs.StringVar(&c.Spans, "spans", "", "write per-stage span timings to this file as JSON Lines")
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write a final metrics snapshot (JSON) to this file on exit")
}

// Enabled reports whether any observability flag was set.
func (c *CLI) Enabled() bool {
	return c.Metrics != "" || c.Pprof != "" || c.Trace != "" || c.Spans != "" || c.MetricsOut != ""
}

// Start brings up every requested sink and returns the pipeline scope
// to thread into slj.WithObservability. When no flag was set it returns
// (nil, nil): a nil scope disables instrumentation everywhere. On error
// it tears down whatever it had already started.
func (c *CLI) Start() (*Scope, error) {
	if !c.Enabled() {
		return nil, nil
	}
	c.scope = NewScope(NewRegistry())
	if c.Spans != "" {
		t, err := OpenTrace(c.Spans)
		if err != nil {
			return nil, err
		}
		c.tracer = t
		c.scope.SetTracer(t)
	}
	if c.Trace != "" {
		f, err := os.Create(c.Trace)
		if err != nil {
			c.shutdown()
			return nil, fmt.Errorf("obs: creating trace file: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			c.shutdown()
			return nil, fmt.Errorf("obs: starting runtime trace: %w", err)
		}
		c.traceFile = f
	}
	if c.Metrics != "" {
		s, err := Serve(c.Metrics, c.scope.Registry())
		if err != nil {
			c.shutdown()
			return nil, err
		}
		c.metricsLn = s
		fmt.Fprintf(os.Stderr, "obs: metrics on http://%s/debug/metrics (expvar at /debug/vars)\n", s.Addr())
	}
	if c.Pprof != "" && c.Pprof != c.Metrics {
		s, err := Serve(c.Pprof, nil)
		if err != nil {
			c.shutdown()
			return nil, err
		}
		c.pprofLn = s
		fmt.Fprintf(os.Stderr, "obs: pprof on http://%s/debug/pprof/\n", s.Addr())
	}
	return c.scope, nil
}

// Stop flushes and closes every sink Start opened: stops the runtime
// trace, closes the span tracer, writes the -metrics-out snapshot, and
// shuts the HTTP servers down. Safe to call when Start was never called
// or returned (nil, nil).
func (c *CLI) Stop() error {
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if c.traceFile != nil {
		trace.Stop()
		keep(c.traceFile.Close())
		c.traceFile = nil
	}
	keep(c.tracer.Close())
	c.tracer = nil
	if c.MetricsOut != "" && c.scope != nil {
		keep(c.writeSnapshot())
	}
	c.shutdown()
	return first
}

func (c *CLI) writeSnapshot() error {
	f, err := os.Create(c.MetricsOut)
	if err != nil {
		return fmt.Errorf("obs: creating metrics snapshot: %w", err)
	}
	if err := c.scope.Registry().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: writing metrics snapshot: %w", err)
	}
	return nil
}

// shutdown closes the HTTP servers (used by Stop and by Start's error
// paths).
func (c *CLI) shutdown() {
	_ = c.metricsLn.Close()
	_ = c.pprofLn.Close()
	c.metricsLn, c.pprofLn = nil, nil
}
