package obs

import (
	"math"
	"testing"
)

func almost(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

// TestQuantileExact pins Quantile against hand-computed values on
// synthetic distributions: log-linear interpolation inside interior
// buckets, linear from zero in the first bucket, and the last bound for
// overflow mass.
func TestQuantileExact(t *testing.T) {
	bounds := []int64{10, 100, 1000}

	t.Run("single interior bucket", func(t *testing.T) {
		h := NewHistogram(bounds)
		h.Observe(50) // bucket (10,100]
		s := h.Snapshot()
		// All mass in one bucket spanning a 10× factor: the median sits at
		// the geometric midpoint 10·√10, q=0 at the lower edge, q=1 at the
		// upper edge.
		almost(t, "q=0", s.Quantile(0), 10)
		almost(t, "q=0.5", s.Quantile(0.5), 10*math.Sqrt(10))
		almost(t, "q=1", s.Quantile(1), 100)
	})

	t.Run("first bucket is linear from zero", func(t *testing.T) {
		h := NewHistogram(bounds)
		h.Observe(3)
		s := h.Snapshot()
		almost(t, "q=0.5", s.Quantile(0.5), 5)
		almost(t, "q=0.2", s.Quantile(0.2), 2)
	})

	t.Run("uniform across buckets", func(t *testing.T) {
		h := NewHistogram(bounds)
		h.Observe(5)   // bucket 0
		h.Observe(50)  // bucket 1
		h.Observe(500) // bucket 2
		s := h.Snapshot()
		// rank(0.5)=1.5 → halfway through bucket 1 → geometric midpoint.
		almost(t, "q=0.5", s.Quantile(0.5), 10*math.Sqrt(10))
		// rank(1/3)=1 → exactly the end of bucket 0 → its upper bound.
		almost(t, "q=1/3", s.Quantile(1.0/3), 10)
		// rank(1)=3 → end of bucket 2.
		almost(t, "q=1", s.Quantile(1), 1000)
		// rank(5/6)=2.5 → halfway through bucket 2.
		almost(t, "q=5/6", s.Quantile(5.0/6), 100*math.Sqrt(10))
	})

	t.Run("overflow returns last bound", func(t *testing.T) {
		h := NewHistogram(bounds)
		h.Observe(5000)
		s := h.Snapshot()
		almost(t, "q=0.5", s.Quantile(0.5), 1000)
		almost(t, "q=0.99", s.Quantile(0.99), 1000)
	})

	t.Run("empty and clamped", func(t *testing.T) {
		h := NewHistogram(bounds)
		s := h.Snapshot()
		almost(t, "empty", s.Quantile(0.5), 0)
		h.Observe(50)
		s = h.Snapshot()
		almost(t, "q<0 clamps", s.Quantile(-3), s.Quantile(0))
		almost(t, "q>1 clamps", s.Quantile(7), s.Quantile(1))
	})

	t.Run("boundless histogram falls back to mean", func(t *testing.T) {
		h := NewHistogram(nil)
		h.Observe(10)
		h.Observe(30)
		almost(t, "mean", h.Snapshot().Quantile(0.5), 20)
	})
}

func TestHistogramSnapshotSub(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	before := h.Snapshot()
	h.Observe(50)
	h.Observe(500)
	after := h.Snapshot()

	d := after.Sub(before)
	if d.Count != 2 {
		t.Errorf("delta count = %d, want 2", d.Count)
	}
	if d.Sum != 550 {
		t.Errorf("delta sum = %d, want 550", d.Sum)
	}
	wantBuckets := []int64{0, 1, 1}
	for i, w := range wantBuckets {
		if d.Buckets[i] != w {
			t.Errorf("delta bucket %d = %d, want %d", i, d.Buckets[i], w)
		}
	}
	// The delta's median is the median of just the new observations.
	almost(t, "delta q=0.25", d.Quantile(0.25), 10*math.Sqrt(10))

	// Mismatched layouts and empty baselines pass the snapshot through.
	if got := after.Sub(HistogramSnapshot{}); got.Count != after.Count {
		t.Errorf("Sub(empty) count = %d, want %d", got.Count, after.Count)
	}
	other := NewHistogram([]int64{1}).Snapshot()
	if got := after.Sub(other); got.Count != after.Count {
		t.Errorf("Sub(mismatched) count = %d, want %d", got.Count, after.Count)
	}
}
