// Package obs is the pipeline's stdlib-only observability layer: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms) with an expvar / JSON snapshot surface, a lightweight
// span tracer that aggregates per-stage latencies and can stream a
// JSONL trace file, and opt-in profiling hooks (net/http/pprof,
// runtime/trace).
//
// Every instrument is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, *Scope or *Tracer are no-ops, and the disabled path
// allocates nothing. Pipeline code therefore threads a single
// *Scope pointer unconditionally and pays only a nil check when
// observability is off, preserving the engine's bit-identical
// outputs and the per-frame allocation budget (DESIGN.md §9).
package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter.
// The zero value is ready to use; a nil *Counter discards updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, pool free slots).
// The zero value is ready to use; a nil *Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (use negative deltas to decrement).
// No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max raises the gauge to v if v is greater than the current value
// (a monotonic high-water mark). No-op on a nil receiver.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}
