// Declarative SLOs evaluated against the sampler's ring buffers (fast
// window) and the registry's lifetime totals (slow window) — the SRE
// multi-window burn-rate pattern scaled down to one process: the fast
// window reacts to what is happening right now, the slow window stops
// a brief blip (or an idle tail) from flapping the verdict.
package obs

import (
	"fmt"
	"regexp"
)

// SLOKind selects how an SLOSpec derives its burn rate.
type SLOKind int

const (
	// SLOQuantile gates a histogram quantile against a latency target:
	// burn = quantile / TargetNS.
	SLOQuantile SLOKind = iota
	// SLORatio gates a bad/total counter ratio against an error budget:
	// burn = (bad/total) / Budget.
	SLORatio
)

// SLOLevel is one objective's evaluated state.
type SLOLevel int

// Objective levels, in increasing severity.
const (
	SLOOK SLOLevel = iota
	SLODegraded
	SLOFailing
)

var sloLevelNames = [...]string{"ok", "degraded", "failing"}

// String returns "ok", "degraded" or "failing".
func (l SLOLevel) String() string {
	if l < 0 || int(l) >= len(sloLevelNames) {
		return "unknown"
	}
	return sloLevelNames[l]
}

// validSLOName polices spec names at construction: they become metric
// name segments (slo.<name>.level), so they follow the same lowercase
// token grammar metricnames enforces on literal registrations.
var validSLOName = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// SLOSpec declares one service-level objective over registry metrics.
type SLOSpec struct {
	// Name labels the objective; it must match validSLOName because it
	// is spliced into the slo.<name>.* gauge family.
	Name string
	// Kind selects quantile-vs-target or ratio-vs-budget evaluation.
	Kind SLOKind

	// Metric is the histogram gated by an SLOQuantile spec.
	Metric string
	// Quantile is the gated quantile (0.50, 0.95 or 0.99 — the three
	// the sampler derives).
	Quantile float64
	// TargetNS is the latency target the quantile is measured against.
	TargetNS float64

	// Bad and Total are the counter names of an SLORatio spec.
	Bad, Total string
	// Budget is the tolerated Bad/Total ratio (the error budget).
	Budget float64

	// FastTicks is how many of the newest sampler points form the fast
	// window (default 6 — one minute at the default 10s scrape... here,
	// 6 seconds at the default 1s sample interval).
	FastTicks int
	// DegradedBurn: either window at or above it degrades the
	// objective (default 1 — any budget overrun degrades).
	DegradedBurn float64
	// FailingBurn: both windows at or above it fail the objective;
	// zero or negative means the objective never escalates past
	// degraded.
	FailingBurn float64

	// Class links breaches of this objective to the error-journal
	// class whose exemplars explain them (ErrClassNone for latency
	// objectives with no journaled cause).
	Class ErrClass
}

// SLOState is one evaluated objective, as served at /debug/health.
type SLOState struct {
	Name  string `json:"name"`
	Level string `json:"level"`
	// BurnFast/BurnSlow are the two window burn rates (1.0 = exactly
	// on budget/target).
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`
	// Value is the slow-window (lifetime) raw value: the quantile in
	// nanoseconds, or the bad/total ratio.
	Value float64 `json:"value"`
	// Reason is set on degraded/failing objectives.
	Reason string `json:"reason,omitempty"`
	// Trace is the newest journal exemplar's trace ID for the linked
	// error class, when one exists.
	Trace string `json:"trace,omitempty"`
}

// Validate checks the spec is well-formed (name grammar, kind fields).
func (s SLOSpec) Validate() error {
	if !validSLOName.MatchString(s.Name) {
		return fmt.Errorf("obs: slo name %q: want lowercase [a-z0-9_] token", s.Name)
	}
	switch s.Kind {
	case SLOQuantile:
		if s.Metric == "" || s.TargetNS <= 0 {
			return fmt.Errorf("obs: slo %s: quantile kind needs Metric and TargetNS", s.Name)
		}
	case SLORatio:
		if s.Bad == "" || s.Total == "" || s.Budget <= 0 {
			return fmt.Errorf("obs: slo %s: ratio kind needs Bad, Total and Budget", s.Name)
		}
	default:
		return fmt.Errorf("obs: slo %s: unknown kind %d", s.Name, s.Kind)
	}
	return nil
}

// Eval evaluates the objective against a sampler view (fast window)
// and a registry snapshot (slow window). With no sampler points yet
// the fast burn is zero, so early verdicts lean on lifetime totals.
func (s SLOSpec) Eval(ts TimeSeries, snap Snapshot) SLOState {
	st := SLOState{Name: s.Name}
	switch s.Kind {
	case SLOQuantile:
		st.BurnFast = meanTail(ts, s.Metric+quantileSuffix(s.Quantile), s.fastTicks()) / s.TargetNS
		hist, ok := findHistogram(snap, s.Metric)
		if ok && hist.Count > 0 {
			st.Value = hist.Quantile(s.Quantile)
		}
		st.BurnSlow = st.Value / s.TargetNS
	case SLORatio:
		bad := sumTail(ts, s.Bad+".rate", s.fastTicks())
		total := sumTail(ts, s.Total+".rate", s.fastTicks())
		if total > 0 {
			st.BurnFast = (bad / total) / s.Budget
		}
		counters := indexValues(snap.Counters)
		switch t := counters[s.Total]; {
		case t > 0:
			st.Value = float64(counters[s.Bad]) / float64(t)
		case counters[s.Bad] > 0:
			// Nothing succeeded and something failed: the ratio is
			// degenerate, treat the budget as fully burned.
			st.Value = 1
		}
		st.BurnSlow = st.Value / s.Budget
	}
	degraded := s.DegradedBurn
	if degraded <= 0 {
		degraded = 1
	}
	level := SLOOK
	if st.BurnFast >= degraded || st.BurnSlow >= degraded {
		level = SLODegraded
	}
	if s.FailingBurn > 0 && st.BurnFast >= s.FailingBurn && st.BurnSlow >= s.FailingBurn {
		level = SLOFailing
	}
	st.Level = level.String()
	if level != SLOOK {
		switch s.Kind {
		case SLOQuantile:
			st.Reason = fmt.Sprintf("%s %s %s over target %s (burn fast %.2f, slow %.2f)",
				s.Metric, quantileSuffix(s.Quantile)[1:], fmtNS(st.Value), fmtNS(s.TargetNS), st.BurnFast, st.BurnSlow)
		case SLORatio:
			st.Reason = fmt.Sprintf("%s/%s ratio %.4f over budget %.4f (burn fast %.2f, slow %.2f)",
				s.Bad, s.Total, st.Value, s.Budget, st.BurnFast, st.BurnSlow)
		}
	}
	return st
}

func (s SLOSpec) fastTicks() int {
	if s.FastTicks > 0 {
		return s.FastTicks
	}
	return 6
}

// quantileSuffix maps a quantile to the sampler's series suffix.
func quantileSuffix(q float64) string {
	switch {
	case q <= 0.50:
		return ".p50"
	case q <= 0.95:
		return ".p95"
	default:
		return ".p99"
	}
}

// meanTail averages the newest n points of the named series (0 when
// the series is absent or empty).
func meanTail(ts TimeSeries, name string, n int) float64 {
	pts := tail(ts, name, n)
	if len(pts) == 0 {
		return 0
	}
	var sum float64
	for _, p := range pts {
		sum += p
	}
	return sum / float64(len(pts))
}

// sumTail sums the newest n points of the named series.
func sumTail(ts TimeSeries, name string, n int) float64 {
	var sum float64
	for _, p := range tail(ts, name, n) {
		sum += p
	}
	return sum
}

func tail(ts TimeSeries, name string, n int) []float64 {
	for _, s := range ts.Series {
		if s.Name == name {
			if len(s.Points) > n {
				return s.Points[len(s.Points)-n:]
			}
			return s.Points
		}
	}
	return nil
}

func findHistogram(snap Snapshot, name string) (HistogramSnapshot, bool) {
	for _, h := range snap.Histograms {
		if h.Name == name {
			return h.HistogramSnapshot, true
		}
	}
	return HistogramSnapshot{}, false
}

// DefaultSLOs is the objective set the CLI wires up: whole-frame p99
// latency, DBN Unknown-decision ratio, and corpus decode-error rate.
// Budgets are deliberately loose — the defaults must stay quiet on a
// healthy synthetic-corpus run and only speak up for real trouble
// (a corrupt clip, a collapsed front end, a saturated machine).
func DefaultSLOs() []SLOSpec {
	return []SLOSpec{
		{
			Name:     "frame_p99",
			Kind:     SLOQuantile,
			Metric:   "stage.frame.ns",
			Quantile: 0.99,
			TargetNS: 250e6, // 250ms per frame: an order of magnitude over healthy
		},
		{
			Name:   "unknown_ratio",
			Kind:   SLORatio,
			Bad:    "errors.dbn_unknown",
			Total:  "pipeline.frames",
			Budget: 0.90, // only a near-total DBN collapse breaches
			Class:  ErrClassDBNUnknown,
		},
		{
			Name:   "decode_errors",
			Kind:   SLORatio,
			Bad:    "errors.decode",
			Total:  "dataset.clips_streamed",
			Budget: 0.01, // any corrupt clip in a small corpus breaches
			Class:  ErrClassDecode,
			// FailingBurn left zero: decode errors degrade (the run can
			// skip and continue) but never fail the whole process.
		},
	}
}
