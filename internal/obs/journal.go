// The error journal: a bounded in-memory flight recorder of classified
// pipeline failures. Each record carries the trace ID minted at engine
// dispatch, so a journal entry, the clip's spans, and its log lines
// correlate by one ID. Counts are pushed into the registry's errors.*
// counter family; the journal itself keeps only a recent-entries ring
// plus a tiny per-class exemplar ring, so memory stays bounded no
// matter how long a run fails for.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// journalExemplars is the per-class exemplar ring capacity.
const journalExemplars = 4

// JournalSchema versions the /debug/errors JSON layout.
const JournalSchema = 1

// JournalEntry is one recorded failure. Frame is -1 when the failure
// is not attributable to a single frame (clip-level decode errors,
// skeleton failures observed without a frame index).
type JournalEntry struct {
	Seq   int64    `json:"seq"`
	TUS   int64    `json:"t_us"`
	Trace string   `json:"trace,omitempty"`
	Clip  string   `json:"clip,omitempty"`
	Frame int      `json:"frame"`
	Class ErrClass `json:"class"`
	Msg   string   `json:"msg"`
}

// Journal is the bounded error recorder. All methods are nil-safe and
// Record is allocation-free (entries land in preallocated rings), so
// attaching a journal does not disturb the zero-alloc hot path.
type Journal struct {
	counts [NumErrClasses]*Counter
	total  *Counter

	mu     sync.Mutex
	clock  func() time.Time
	epoch  time.Time
	seq    int64
	recent []JournalEntry // ring, preallocated to capacity
	head   int
	n      int
	ex     [NumErrClasses][journalExemplars]JournalEntry
	exHead [NumErrClasses]int
	exN    [NumErrClasses]int
}

// NewJournal builds a journal over reg with a recent-entries ring of
// the given capacity (minimum 16). Per-class counters register under
// the errors.* family. A nil registry yields a nil journal.
func NewJournal(reg *Registry, capacity int) *Journal {
	if reg == nil {
		return nil
	}
	if capacity < 16 {
		capacity = 16
	}
	j := &Journal{
		clock:  time.Now,
		recent: make([]JournalEntry, capacity),
		total:  reg.Counter("errors.total"),
	}
	j.epoch = j.clock()
	// Literal registrations so the metricnames analyzer polices the
	// errors.* family like every other metric.
	j.counts[ErrClassDecode] = reg.Counter("errors.decode")
	j.counts[ErrClassDegenerateSkeleton] = reg.Counter("errors.degenerate_skeleton")
	j.counts[ErrClassNoTorso] = reg.Counter("errors.no_torso")
	j.counts[ErrClassKeypointMiss] = reg.Counter("errors.keypoint_miss")
	j.counts[ErrClassDBNUnknown] = reg.Counter("errors.dbn_unknown")
	j.counts[ErrClassPool] = reg.Counter("errors.pool")
	j.counts[ErrClassIO] = reg.Counter("errors.io")
	return j
}

// SetClock injects a timestamp source (tests); nil restores time.Now.
// Must be called before the journal is shared across goroutines.
func (j *Journal) SetClock(clock func() time.Time) {
	if j == nil {
		return
	}
	if clock == nil {
		clock = time.Now
	}
	j.clock = clock
	j.epoch = clock()
}

// Record journals one classified failure. Out-of-range classes
// (including ErrClassNone) are dropped. Safe for concurrent use; safe
// and free on a nil journal.
func (j *Journal) Record(class ErrClass, trace, clip string, frame int, msg string) {
	if j == nil || class <= ErrClassNone || class >= NumErrClasses {
		return
	}
	j.counts[class].Inc()
	j.total.Inc()
	j.mu.Lock()
	j.seq++
	e := JournalEntry{
		Seq:   j.seq,
		TUS:   j.clock().Sub(j.epoch).Microseconds(),
		Trace: trace,
		Clip:  clip,
		Frame: frame,
		Class: class,
		Msg:   msg,
	}
	j.recent[j.head] = e
	j.head = (j.head + 1) % len(j.recent)
	if j.n < len(j.recent) {
		j.n++
	}
	j.ex[class][j.exHead[class]] = e
	j.exHead[class] = (j.exHead[class] + 1) % journalExemplars
	if j.exN[class] < journalExemplars {
		j.exN[class]++
	}
	j.mu.Unlock()
}

// Count returns the number of records in class (0 on nil).
func (j *Journal) Count(class ErrClass) int64 {
	if j == nil || class <= ErrClassNone || class >= NumErrClasses {
		return 0
	}
	return j.counts[class].Value()
}

// Total returns the number of records across all classes (0 on nil).
func (j *Journal) Total() int64 {
	if j == nil {
		return 0
	}
	return j.total.Value()
}

// LastTrace returns the trace ID of the newest exemplar in class, or
// "" when the class has no records. Health reasons use it to point at
// a concrete failing clip.
func (j *Journal) LastTrace(class ErrClass) string {
	if j == nil || class <= ErrClassNone || class >= NumErrClasses {
		return ""
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.exN[class] == 0 {
		return ""
	}
	last := (j.exHead[class] - 1 + journalExemplars) % journalExemplars
	return j.ex[class][last].Trace
}

// JournalClass summarises one error class in a snapshot: its lifetime
// count and the last few exemplar entries, oldest first.
type JournalClass struct {
	Class     ErrClass       `json:"class"`
	Count     int64          `json:"count"`
	Exemplars []JournalEntry `json:"exemplars"`
}

// JournalSnapshot is the /debug/errors view: per-class counts with
// exemplars (classes in taxonomy order, zero-count classes omitted)
// and the most recent entries overall, oldest first.
type JournalSnapshot struct {
	Schema  int            `json:"schema"`
	Total   int64          `json:"total"`
	Classes []JournalClass `json:"classes"`
	Recent  []JournalEntry `json:"recent"`
}

// Snapshot captures a deterministic view of the journal. Safe on nil
// (zero snapshot with the schema set).
func (j *Journal) Snapshot() JournalSnapshot {
	snap := JournalSnapshot{Schema: JournalSchema}
	if j == nil {
		return snap
	}
	snap.Total = j.total.Value()
	j.mu.Lock()
	defer j.mu.Unlock()
	for c := ErrClassNone + 1; c < NumErrClasses; c++ {
		count := j.counts[c].Value()
		if count == 0 {
			continue
		}
		jc := JournalClass{Class: c, Count: count}
		start := j.exHead[c] - j.exN[c]
		if start < 0 {
			start += journalExemplars
		}
		for i := 0; i < j.exN[c]; i++ {
			jc.Exemplars = append(jc.Exemplars, j.ex[c][(start+i)%journalExemplars])
		}
		snap.Classes = append(snap.Classes, jc)
	}
	start := j.head - j.n
	if start < 0 {
		start += len(j.recent)
	}
	for i := 0; i < j.n; i++ {
		snap.Recent = append(snap.Recent, j.recent[(start+i)%len(j.recent)])
	}
	return snap
}

// WriteJSON writes the current snapshot as indented JSON (the
// /debug/errors payload and the -errors-out artifact).
func (j *Journal) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(j.Snapshot()); err != nil {
		return fmt.Errorf("obs: encoding error journal: %w", err)
	}
	return nil
}
