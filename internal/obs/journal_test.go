package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestErrClassStringJSONRoundTrip(t *testing.T) {
	for c := ErrClassNone; c < NumErrClasses; c++ {
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("marshal %v: %v", c, err)
		}
		var back ErrClass
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != c {
			t.Errorf("round trip %v -> %s -> %v", c, data, back)
		}
	}
	var bad ErrClass
	if err := json.Unmarshal([]byte(`"bogus"`), &bad); err == nil {
		t.Error("unmarshal of unknown class name did not fail")
	}
}

func TestJournalRecordAndCounters(t *testing.T) {
	reg := NewRegistry()
	j := NewJournal(reg, 64)
	j.Record(ErrClassDecode, "t000001", "clip-a", -1, "torn header")
	j.Record(ErrClassDecode, "t000002", "clip-b", -1, "short file")
	j.Record(ErrClassDBNUnknown, "t000003", "clip-c", 7, "no decisive pose")
	j.Record(ErrClassNone, "tX", "clip-d", -1, "must be dropped")

	if got := j.Count(ErrClassDecode); got != 2 {
		t.Errorf("decode count = %d, want 2", got)
	}
	if got := j.Total(); got != 3 {
		t.Errorf("total = %d, want 3", got)
	}
	if got := j.LastTrace(ErrClassDecode); got != "t000002" {
		t.Errorf("LastTrace(decode) = %q, want t000002", got)
	}
	if got := j.LastTrace(ErrClassPool); got != "" {
		t.Errorf("LastTrace(empty class) = %q, want \"\"", got)
	}

	// The registry carries the errors.* family.
	snap := reg.Snapshot()
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["errors.decode"] != 2 || counters["errors.dbn_unknown"] != 1 || counters["errors.total"] != 3 {
		t.Errorf("registry counters = %v", counters)
	}
}

func TestJournalSnapshotOrderingAndRings(t *testing.T) {
	reg := NewRegistry()
	j := NewJournal(reg, 16) // minimum ring
	j.SetClock(func() time.Time { return time.Unix(0, 0) })
	// Overflow both the per-class exemplar ring (4) and the recent ring (16).
	for i := 0; i < 20; i++ {
		j.Record(ErrClassIO, "", "clip", i, "io failure")
	}
	j.Record(ErrClassDecode, "t000021", "clip-x", -1, "decode failure")

	snap := j.Snapshot()
	if snap.Schema != JournalSchema {
		t.Errorf("schema = %d, want %d", snap.Schema, JournalSchema)
	}
	if snap.Total != 21 {
		t.Errorf("total = %d, want 21", snap.Total)
	}
	// Classes come in taxonomy order with zero-count classes omitted.
	if len(snap.Classes) != 2 || snap.Classes[0].Class != ErrClassDecode || snap.Classes[1].Class != ErrClassIO {
		t.Fatalf("classes = %+v, want [decode, io]", snap.Classes)
	}
	// Exemplar ring keeps the newest 4, oldest first.
	ex := snap.Classes[1].Exemplars
	if len(ex) != journalExemplars {
		t.Fatalf("io exemplars = %d, want %d", len(ex), journalExemplars)
	}
	for i, e := range ex {
		if want := 16 + i; e.Frame != want {
			t.Errorf("exemplar %d frame = %d, want %d", i, e.Frame, want)
		}
	}
	// Recent ring keeps the newest 16 overall, oldest first, seq ascending.
	if len(snap.Recent) != 16 {
		t.Fatalf("recent = %d entries, want 16", len(snap.Recent))
	}
	for i := 1; i < len(snap.Recent); i++ {
		if snap.Recent[i].Seq <= snap.Recent[i-1].Seq {
			t.Fatalf("recent out of order at %d: %+v", i, snap.Recent)
		}
	}
	if last := snap.Recent[len(snap.Recent)-1]; last.Class != ErrClassDecode || last.Trace != "t000021" {
		t.Errorf("newest recent entry = %+v, want the decode failure", last)
	}

	var buf bytes.Buffer
	if err := j.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back JournalSnapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v", err)
	}
	if back.Total != 21 {
		t.Errorf("decoded total = %d, want 21", back.Total)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record(ErrClassDecode, "t", "c", -1, "m") // must not panic
	if j.Count(ErrClassDecode) != 0 || j.Total() != 0 || j.LastTrace(ErrClassDecode) != "" {
		t.Error("nil journal reports non-zero state")
	}
	snap := j.Snapshot()
	if snap.Total != 0 || len(snap.Classes) != 0 || snap.Schema != JournalSchema {
		t.Errorf("nil snapshot = %+v", snap)
	}
}

// TestJournalConcurrentRecord drives Record from many goroutines; run
// under -race it proves the rings are lock-protected and the counts
// still add up.
func TestJournalConcurrentRecord(t *testing.T) {
	reg := NewRegistry()
	j := NewJournal(reg, 32)
	const goroutines, perG = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				j.Record(ErrClassKeypointMiss, "t000001", "clip", i, "miss")
			}
		}()
	}
	wg.Wait()
	if got := j.Total(); got != goroutines*perG {
		t.Errorf("total = %d, want %d", got, goroutines*perG)
	}
	if got := len(j.Snapshot().Recent); got != 32 {
		t.Errorf("recent ring holds %d, want 32", got)
	}
}
