package obs

import (
	"context"
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage for span timing. The order
// mirrors the paper's processing chain (Sections 2–4).
type Stage int

// Pipeline stages, in processing order.
const (
	StageDetect   Stage = iota // background subtraction + thresholding
	StageSmooth                // median smoothing of the raw mask
	StageThin                  // Zhang-Suen / Guo-Hall thinning
	StageGraph                 // skeleton graph build + prune
	StageKeyPoint              // key-point location + feature encoding
	StageClassify              // DBN bank decision
	StageFrame                 // whole skeleton front end (thin+graph+keypoint), per frame
	numStages
)

var stageNames = [numStages]string{"detect", "smooth", "thin", "graph", "keypoint", "classify", "frame"}

// String returns the stage's metric-name token ("detect", "thin", ...).
func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return "unknown"
	}
	return stageNames[s]
}

// NumJumpStages is the number of jump stages tracked by the per-stage
// Unknown-rate counters (pose.NumStages; kept literal so obs depends on
// nothing above it).
const NumJumpStages = 4

// ParallelStats is the instrument block shared with internal/parallel
// (which cannot resolve metrics by name without dragging the registry
// into its hot loop). All fields are updated lock-free.
type ParallelStats struct {
	// Items counts work items claimed across MapOrdered/ForEach calls.
	Items Counter
	// StallNS accumulates nanoseconds pipeline stages spent blocked on
	// an empty input channel (downstream waiting for upstream).
	StallNS Counter
	// Workers is the high-water mark of concurrently running workers.
	Workers Gauge
	// QueueDepth is the high-water mark of buffered items in pipeline
	// stage channels.
	QueueDepth Gauge
}

// Scope is the handle pipeline layers thread through: it pre-resolves
// every instrument once so per-frame updates are single atomic ops with
// no map lookups and no allocation. A nil *Scope disables all of it —
// every method is a no-op and Start returns a Span whose End does
// nothing.
type Scope struct {
	reg     *Registry
	tracer  *Tracer
	journal *Journal
	logger  *slog.Logger
	clip    string
	// trace is the clip's correlation ID, minted by WithClip from the
	// shared ids counter; spans, log lines and journal entries from
	// this scope all carry it.
	trace string
	ids   *atomic.Int64

	stageNS [numStages]*Histogram

	frames     *Counter
	graphFail  *Counter
	pruned     *Counter
	thinPasses *Counter
	loopsCut   *Counter
	junctions  *Counter
	kpMiss     *Counter
	kpDegen    *Counter
	kpNoTorso  *Counter
	handAbsent *Counter
	decided    [NumJumpStages + 1]*Counter // index 0 = stage outside 1..4
	unknown    [NumJumpStages + 1]*Counter
	acquireNS  *Counter
	enginePool *Gauge
	par        *ParallelStats

	clipsStreamed *Counter
	decodeNS      *Histogram
	sourceStall   *Counter
	clipsInFlight *Gauge
}

// NewScope builds a scope over reg, resolving the full pipeline metric
// set (DESIGN.md §9 lists the names). A nil registry yields a nil scope.
func NewScope(reg *Registry) *Scope {
	if reg == nil {
		return nil
	}
	sc := &Scope{
		reg:        reg,
		ids:        new(atomic.Int64),
		frames:     reg.Counter("pipeline.frames"),
		graphFail:  reg.Counter("pipeline.graph_fail"),
		pruned:     reg.Counter("pipeline.pruned_branches"),
		thinPasses: reg.Counter("pipeline.thin_passes"),
		loopsCut:   reg.Counter("pipeline.loops_cut"),
		junctions:  reg.Counter("pipeline.junctions_merged"),
		kpMiss:     reg.Counter("pipeline.keypoint_miss"),
		kpDegen:    reg.Counter("pipeline.keypoint_miss.degenerate"),
		kpNoTorso:  reg.Counter("pipeline.keypoint_miss.no_torso"),
		handAbsent: reg.Counter("pipeline.hand_absent"),
		acquireNS:  reg.Counter("engine.acquire_stall_ns"),
		enginePool: reg.Gauge("engine.pool_free"),
		par:        &ParallelStats{},

		clipsStreamed: reg.Counter("dataset.clips_streamed"),
		decodeNS:      reg.Histogram("dataset.decode_ns", LatencyBounds),
		sourceStall:   reg.Counter("engine.source_stall_ns"),
		clipsInFlight: reg.Gauge("engine.clips_in_flight"),
	}
	for st := Stage(0); st < numStages; st++ {
		sc.stageNS[st] = reg.Histogram("stage."+st.String()+".ns", LatencyBounds)
	}
	for i := range sc.decided {
		suffix := "stage" + string(rune('0'+i))
		sc.decided[i] = reg.Counter("pipeline.decided." + suffix)
		sc.unknown[i] = reg.Counter("pipeline.unknown." + suffix)
	}
	reg.RegisterFunc("parallel.items", sc.par.Items.Value)
	reg.RegisterFunc("parallel.stall_ns", sc.par.StallNS.Value)
	reg.RegisterFunc("parallel.workers_max", sc.par.Workers.Value)
	reg.RegisterFunc("parallel.queue_depth_max", sc.par.QueueDepth.Value)
	return sc
}

// Registry returns the scope's registry (nil on a nil scope).
func (sc *Scope) Registry() *Registry {
	if sc == nil {
		return nil
	}
	return sc.reg
}

// SetTracer attaches a JSONL span tracer; nil detaches. Must be set
// before the scope is shared across goroutines.
func (sc *Scope) SetTracer(t *Tracer) {
	if sc == nil {
		return
	}
	sc.tracer = t
}

// SetJournal attaches the error journal classified failures are
// recorded into; nil detaches. Must be set before the scope is shared
// across goroutines.
func (sc *Scope) SetJournal(j *Journal) {
	if sc == nil {
		return
	}
	sc.journal = j
}

// Journal returns the attached error journal (nil when none).
func (sc *Scope) Journal() *Journal {
	if sc == nil {
		return nil
	}
	return sc.journal
}

// SetLogger attaches a structured event logger; nil detaches. WithClip
// children derive per-clip loggers carrying the clip and trace-ID
// attrs. Must be set before the scope is shared across goroutines.
func (sc *Scope) SetLogger(l *slog.Logger) {
	if sc == nil {
		return
	}
	sc.logger = l
}

// Logger returns the scope's event logger: the per-clip child on a
// WithClip scope, the base logger on the root, nil when logging is
// off. Callers must nil-check (and usually Enabled-check) before
// building attrs.
func (sc *Scope) Logger() *slog.Logger {
	if sc == nil {
		return nil
	}
	return sc.logger
}

// TraceID returns the scope's clip trace ID ("" on the root scope or
// a nil scope).
func (sc *Scope) TraceID() string {
	if sc == nil {
		return ""
	}
	return sc.trace
}

// Parallel exposes the worker instrument block for internal/parallel
// (nil on a nil scope, which parallel treats as disabled).
func (sc *Scope) Parallel() *ParallelStats {
	if sc == nil {
		return nil
	}
	return sc.par
}

// WithClip returns a copy of the scope labelled with a clip name and a
// freshly minted trace ID: spans, log lines and journal entries from
// the child all carry both, so one clip's records correlate across
// every output. Instruments are shared with the parent — only the
// labels differ. Returns nil on a nil scope.
func (sc *Scope) WithClip(name string) *Scope {
	if sc == nil {
		return nil
	}
	child := *sc
	child.clip = name
	if sc.ids != nil {
		child.trace = traceID(sc.ids.Add(1))
	}
	if sc.logger != nil {
		child.logger = sc.logger.With(slog.String("clip", name), slog.String("trace", child.trace))
	}
	return &child
}

// traceID renders a deterministic per-dispatch correlation ID. IDs are
// a process-local counter, not randomness: the nondet analyzer keeps
// the pipeline packages entropy-free, and deterministic IDs make trace
// output diffable across runs.
func traceID(n int64) string {
	return fmt.Sprintf("t%06d", n)
}

// RecordError classifies and records a failure: the journal gets an
// entry under class (carrying the scope's clip and trace ID — a fresh
// ID is minted for root-scope errors so journal and log still
// correlate), and the event log gets an error-level line. Safe on a
// nil scope; err == nil is a no-op.
func (sc *Scope) RecordError(class ErrClass, err error) {
	if sc == nil || err == nil {
		return
	}
	trace := sc.trace
	if trace == "" && sc.ids != nil {
		trace = traceID(sc.ids.Add(1))
	}
	msg := err.Error()
	sc.journal.Record(class, trace, sc.clip, -1, msg)
	if sc.logger != nil {
		if sc.trace != "" {
			// The per-clip logger already carries clip+trace attrs.
			sc.logger.LogAttrs(context.Background(), slog.LevelError, msg,
				slog.String("class", class.String()))
		} else {
			sc.logger.LogAttrs(context.Background(), slog.LevelError, msg,
				slog.String("class", class.String()), slog.String("trace", trace))
		}
	}
}

// Span is one in-flight stage timing. It is a small value (no pointer
// indirection to allocate) so Start/End on the hot path never touch the
// heap; a zero Span (from a nil scope) is inert.
type Span struct {
	sc *Scope
	st Stage
	t0 time.Time
}

// Start begins timing a stage. On a nil scope it returns an inert span
// without reading the clock.
func (sc *Scope) Start(st Stage) Span {
	if sc == nil {
		return Span{}
	}
	return Span{sc: sc, st: st, t0: time.Now()}
}

// End stops the span: the elapsed time lands in the stage's latency
// histogram and, when a tracer is attached, one JSONL record is emitted.
func (sp Span) End() {
	if sp.sc == nil {
		return
	}
	ns := time.Since(sp.t0).Nanoseconds()
	sp.sc.stageNS[sp.st].Observe(ns)
	if sp.sc.tracer != nil {
		sp.sc.tracer.emit(sp.sc.clip, sp.sc.trace, sp.st, sp.t0, ns) //slj:alloc-ok tracing is opt-in; with no tracer attached this branch is never taken
	}
}

// FrameDone counts one frame through the skeleton front end.
func (sc *Scope) FrameDone() {
	if sc == nil {
		return
	}
	sc.frames.Inc()
}

// GraphFail counts a silhouette whose skeleton graph could not be
// built, journaling it as a degenerate skeleton.
func (sc *Scope) GraphFail() {
	if sc == nil {
		return
	}
	sc.graphFail.Inc()
	sc.journal.Record(ErrClassDegenerateSkeleton, sc.trace, sc.clip, -1, "skeleton graph build failed") //slj:alloc-ok failure-path journaling; Record lands in preallocated rings, no per-record allocation
	if sc.logger != nil && sc.logger.Enabled(context.Background(), slog.LevelDebug) {                   //slj:alloc-ok level probe only; Enabled and context.Background allocate nothing
		sc.logger.LogAttrs(context.Background(), slog.LevelDebug, "skeleton graph build failed", //slj:alloc-ok debug logging is level-gated; the guard above keeps the disabled path alloc-free
			slog.String("class", ErrClassDegenerateSkeleton.String()))
	}
}

// Pruned adds n pruned noisy branches (skelgraph.Prune's return value).
func (sc *Scope) Pruned(n int) {
	if sc == nil {
		return
	}
	sc.pruned.Add(int64(n))
}

// ThinPasses adds the number of thinning iterations a frame needed.
func (sc *Scope) ThinPasses(n int) {
	if sc == nil {
		return
	}
	sc.thinPasses.Add(int64(n))
}

// GraphStats records skeleton-graph build repairs: spanning-tree loop
// cuts and adjacent-junction merges.
func (sc *Scope) GraphStats(loopsCut, junctionsMerged int) {
	if sc == nil {
		return
	}
	sc.loopsCut.Add(int64(loopsCut))
	sc.junctions.Add(int64(junctionsMerged))
}

// KeyPointMiss counts a frame whose key points could not be located;
// degenerate and noTorso attribute the sentinel cause, which also
// picks the journal class (degenerate_skeleton / no_torso /
// keypoint_miss).
func (sc *Scope) KeyPointMiss(degenerate, noTorso bool) {
	if sc == nil {
		return
	}
	sc.kpMiss.Inc()
	class, msg := ErrClassKeypointMiss, "key points not located"
	if degenerate {
		sc.kpDegen.Inc()
		class, msg = ErrClassDegenerateSkeleton, "key points not located: degenerate skeleton"
	}
	if noTorso {
		sc.kpNoTorso.Inc()
		class, msg = ErrClassNoTorso, "key points not located: no torso"
	}
	sc.journal.Record(class, sc.trace, sc.clip, -1, msg)                              //slj:alloc-ok failure-path journaling; Record lands in preallocated rings, no per-record allocation
	if sc.logger != nil && sc.logger.Enabled(context.Background(), slog.LevelDebug) { //slj:alloc-ok level probe only; Enabled and context.Background allocate nothing
		sc.logger.LogAttrs(context.Background(), slog.LevelDebug, msg, //slj:alloc-ok debug logging is level-gated; the guard above keeps the disabled path alloc-free
			slog.String("class", class.String()))
	}
}

// HandAbsent counts a frame whose key points were found but whose hand
// fell back to the waist (no arm protrusion) — the paper's implausible-
// keypoint case.
func (sc *Scope) HandAbsent() {
	if sc == nil {
		return
	}
	sc.handAbsent.Inc()
}

// Decision counts one DBN decision made while the session believed the
// jump was in jumpStage (1..4; anything else lands in bucket 0).
// unknown marks a Th_Pose fallback to PoseUnknown, which is journaled
// under dbn_unknown with the frame index (pass -1 when unknown).
func (sc *Scope) Decision(jumpStage, frame int, unknown bool) {
	if sc == nil {
		return
	}
	if jumpStage < 1 || jumpStage > NumJumpStages {
		jumpStage = 0
	}
	sc.decided[jumpStage].Inc()
	if unknown {
		sc.unknown[jumpStage].Inc()
		sc.journal.Record(ErrClassDBNUnknown, sc.trace, sc.clip, frame, "dbn decided PoseUnknown")
		if sc.logger != nil && sc.logger.Enabled(context.Background(), slog.LevelDebug) {
			sc.logger.LogAttrs(context.Background(), slog.LevelDebug, "dbn decided PoseUnknown", //slj:alloc-ok debug logging is level-gated; the guard above keeps the disabled path alloc-free
				slog.String("class", ErrClassDBNUnknown.String()),
				slog.Int("frame", frame),
				slog.Int("jump_stage", jumpStage))
		}
	}
}

// AcquireStall adds engine System-pool acquisition wait time, and
// PoolFree tracks the instantaneous number of idle pooled Systems.
func (sc *Scope) AcquireStall(d time.Duration) {
	if sc == nil {
		return
	}
	sc.acquireNS.Add(d.Nanoseconds())
}

// PoolFree records the engine's free-System count after an acquire or
// release.
func (sc *Scope) PoolFree(n int) {
	if sc == nil {
		return
	}
	sc.enginePool.Set(int64(n))
}

// ClipStreamed counts one clip handed out by a streaming corpus source.
func (sc *Scope) ClipStreamed() {
	if sc == nil {
		return
	}
	sc.clipsStreamed.Inc()
}

// DecodeTime records one on-disk decode (a clip header, frame image or
// silhouette) into the dataset decode-latency histogram.
func (sc *Scope) DecodeTime(d time.Duration) {
	if sc == nil {
		return
	}
	sc.decodeNS.Observe(d.Nanoseconds())
}

// SourceStall adds time an engine worker spent pulling the next clip
// from a streaming source (lock hand-off plus any decode the source does
// in Next). Low values relative to stage latencies mean disk I/O is
// successfully overlapped with the vision front end.
func (sc *Scope) SourceStall(d time.Duration) {
	if sc == nil {
		return
	}
	sc.sourceStall.Add(d.Nanoseconds())
}

// ClipsInFlight raises the high-water mark of clips concurrently checked
// out of a streaming source — the engine's peak clip residency, bounded
// by the worker count.
func (sc *Scope) ClipsInFlight(n int) {
	if sc == nil {
		return
	}
	sc.clipsInFlight.Max(int64(n))
}
