// Structured event logging: a deterministic JSONL slog.Handler over a
// LineSink, the serialized line-oriented output path shared with the
// span Tracer. One sink = one mutex = one interleaving-free stream, so
// spans and log events can target the same file without tearing lines
// across engine workers.
package obs

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"
)

// LineSink serialises whole-line writes from many goroutines into one
// buffered stream. Producers (the span Tracer, the log Handler) format
// directly into the sink's reused buffer between line/commit, so a
// line costs no allocation beyond the buffered writer's amortised
// growth and two lines never interleave.
type LineSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	buf []byte
}

// NewLineSink wraps w; Close flushes and, when w is also an io.Closer,
// closes it.
func NewLineSink(w io.Writer) *LineSink {
	s := &LineSink{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// OpenLineSink creates (truncates) a line-oriented file at path.
func OpenLineSink(path string) (*LineSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: opening log file: %w", err)
	}
	return NewLineSink(f), nil
}

// line locks the sink and returns its reused buffer, empty. The caller
// must append exactly one '\n'-terminated line and pass it to commit.
func (s *LineSink) line() []byte {
	s.mu.Lock()
	return s.buf[:0]
}

// commit writes the line built since the matching line call and
// unlocks the sink.
func (s *LineSink) commit(b []byte) {
	s.buf = b
	_, _ = s.w.Write(b)
	s.mu.Unlock()
}

// Flush forces buffered lines to the underlying writer. Safe on nil.
func (s *LineSink) Flush() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// Close flushes and closes the underlying file, if any. Safe on nil.
func (s *LineSink) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
		s.c = nil
	}
	if err != nil {
		return fmt.Errorf("obs: closing line sink: %w", err)
	}
	return nil
}

// LogOptions configures a LogHandler.
type LogOptions struct {
	// Level is the minimum record level emitted (default LevelInfo).
	Level slog.Level
	// Clock supplies record timestamps; nil means time.Now. Tests
	// inject a fake clock so output is byte-deterministic.
	Clock func() time.Time
}

// LogHandler is a slog.Handler writing byte-deterministic JSON Lines:
//
//	{"t_us":1000,"level":"INFO","msg":"run started","clip":"c1","trace":"t000001"}
//
// t_us is microseconds since the handler was built (same epoch scheme
// as the span Tracer), attrs are flattened (group keys joined with
// '.') and sorted by key, and every value renders through one fixed
// formatting path — two runs with the same events and clock produce
// identical bytes.
type LogHandler struct {
	sink  *LineSink
	level slog.Level
	clock func() time.Time
	epoch time.Time
	attrs []slog.Attr // pre-flattened WithAttrs state
	group string      // open group prefix ("a.b.")
}

// NewLogHandler builds a handler over sink.
func NewLogHandler(sink *LineSink, opts LogOptions) *LogHandler {
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	return &LogHandler{sink: sink, level: opts.Level, clock: clock, epoch: clock()}
}

// NewLogger is the common composition: a slog.Logger over a fresh
// handler at the given level.
func NewLogger(sink *LineSink, level slog.Level) *slog.Logger {
	return slog.New(NewLogHandler(sink, LogOptions{Level: level}))
}

// Enabled implements slog.Handler.
func (h *LogHandler) Enabled(_ context.Context, l slog.Level) bool {
	return h.sink != nil && l >= h.level
}

// WithAttrs implements slog.Handler: attrs are resolved and flattened
// once, here, so Handle only merges and sorts.
func (h *LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	if len(attrs) == 0 {
		return h
	}
	nh := *h
	nh.attrs = make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	nh.attrs = append(nh.attrs, h.attrs...)
	for _, a := range attrs {
		nh.attrs = appendFlatAttr(nh.attrs, h.group, a)
	}
	return &nh
}

// WithGroup implements slog.Handler; groups flatten to dotted keys.
func (h *LogHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := *h
	nh.group = h.group + name + "."
	return &nh
}

// Handle implements slog.Handler. The line is hand-formatted into the
// sink's reused buffer under its mutex, like Tracer.emit, so logs and
// spans sharing a sink serialise through the same path.
func (h *LogHandler) Handle(_ context.Context, r slog.Record) error {
	if h.sink == nil {
		return nil
	}
	attrs := make([]slog.Attr, 0, len(h.attrs)+r.NumAttrs())
	attrs = append(attrs, h.attrs...)
	r.Attrs(func(a slog.Attr) bool {
		attrs = appendFlatAttr(attrs, h.group, a)
		return true
	})
	// Stable sort: records with duplicate keys keep their emit order.
	sort.SliceStable(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
	b := h.sink.line()
	b = append(b, `{"t_us":`...)
	b = strconv.AppendInt(b, h.clock().Sub(h.epoch).Microseconds(), 10)
	b = append(b, `,"level":`...)
	b = strconv.AppendQuote(b, r.Level.String())
	b = append(b, `,"msg":`...)
	b = strconv.AppendQuote(b, r.Message)
	for _, a := range attrs {
		b = append(b, ',')
		b = strconv.AppendQuote(b, a.Key)
		b = append(b, ':')
		b = appendLogValue(b, a.Value)
	}
	b = append(b, '}', '\n')
	h.sink.commit(b)
	return nil
}

// appendFlatAttr resolves a and appends it under prefix, expanding
// groups into dotted keys. Empty attrs are dropped, matching slog's
// conventions.
func appendFlatAttr(dst []slog.Attr, prefix string, a slog.Attr) []slog.Attr {
	a.Value = a.Value.Resolve()
	if a.Value.Kind() == slog.KindGroup {
		sub := a.Value.Group()
		if a.Key != "" {
			prefix = prefix + a.Key + "."
		}
		for _, g := range sub {
			dst = appendFlatAttr(dst, prefix, g)
		}
		return dst
	}
	if a.Key == "" {
		return dst
	}
	return append(dst, slog.Attr{Key: prefix + a.Key, Value: a.Value})
}

// appendLogValue renders one resolved slog.Value as JSON. Durations
// render as integer nanoseconds, times as RFC3339Nano in UTC,
// non-finite floats as quoted strings (JSON has no NaN).
func appendLogValue(b []byte, v slog.Value) []byte {
	switch v.Kind() {
	case slog.KindString:
		return strconv.AppendQuote(b, v.String())
	case slog.KindInt64:
		return strconv.AppendInt(b, v.Int64(), 10)
	case slog.KindUint64:
		return strconv.AppendUint(b, v.Uint64(), 10)
	case slog.KindFloat64:
		f := v.Float64()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return strconv.AppendQuote(b, strconv.FormatFloat(f, 'g', -1, 64))
		}
		return strconv.AppendFloat(b, f, 'g', -1, 64)
	case slog.KindBool:
		return strconv.AppendBool(b, v.Bool())
	case slog.KindDuration:
		return strconv.AppendInt(b, v.Duration().Nanoseconds(), 10)
	case slog.KindTime:
		return strconv.AppendQuote(b, v.Time().UTC().Format(time.RFC3339Nano))
	default:
		return strconv.AppendQuote(b, fmt.Sprint(v.Any()))
	}
}

// ParseLogLevel maps a -log-level flag value to a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}
