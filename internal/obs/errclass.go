package obs

import (
	"encoding/json"
	"fmt"
)

// ErrClass is the pipeline's error taxonomy: every classified failure
// lands in exactly one class, driving the per-class counters
// (errors.*), the journal's exemplar rings, and SLO attribution. The
// classes mirror where the paper's pipeline can break: decode (corpus
// I/O), the skeleton front end (degenerate skeleton, missing torso,
// key-point location), the DBN bank (Unknown decisions), buffer-pool
// discipline, and residual I/O.
type ErrClass int

// Error classes; ErrClassNone marks an unclassified (ignored) record.
const (
	ErrClassNone ErrClass = iota
	ErrClassDecode
	ErrClassDegenerateSkeleton
	ErrClassNoTorso
	ErrClassKeypointMiss
	ErrClassDBNUnknown
	ErrClassPool
	ErrClassIO
	NumErrClasses
)

var errClassNames = [NumErrClasses]string{
	"none",
	"decode",
	"degenerate_skeleton",
	"no_torso",
	"keypoint_miss",
	"dbn_unknown",
	"pool",
	"io",
}

// String returns the class's metric-name token ("decode", "no_torso",
// ...); these are the suffixes of the errors.* counter family.
func (c ErrClass) String() string {
	if c < 0 || c >= NumErrClasses {
		return "unknown"
	}
	return errClassNames[c]
}

// MarshalJSON renders the class as its name, so journal and health
// snapshots read as "class": "decode" rather than an integer.
func (c ErrClass) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.String())
}

// UnmarshalJSON parses the name form written by MarshalJSON.
func (c *ErrClass) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for i, n := range errClassNames {
		if n == s {
			*c = ErrClass(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown error class %q", s)
}
