package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentCounters drives one shared counter, gauge and
// histogram from many goroutines; totals must be exact. Run under
// `go test -race ./internal/obs/` (the Makefile race target includes
// this package).
func TestRegistryConcurrentCounters(t *testing.T) {
	reg := NewRegistry()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("c")
			g := reg.Gauge("g")
			h := reg.Histogram("h", LatencyBounds)
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Gauge("g").Value(); got != goroutines*perG {
		t.Errorf("gauge = %d, want %d", got, goroutines*perG)
	}
	h := reg.Histogram("h", nil)
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	wantSum := int64(goroutines) * perG * (perG - 1) / 2
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %d, want %d", got, wantSum)
	}
	snap := h.Snapshot()
	var bucketTotal int64
	for _, b := range snap.Buckets {
		bucketTotal += b
	}
	if bucketTotal != goroutines*perG {
		t.Errorf("bucket total = %d, want %d", bucketTotal, goroutines*perG)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	// Bucket i counts v <= bounds[i]; the 4th bucket is overflow.
	cases := []struct {
		v    int64
		want int // bucket index
	}{
		{-5, 0}, {0, 0}, {9, 0}, {10, 0}, // at-bound lands low
		{11, 1}, {100, 1},
		{101, 2}, {1000, 2},
		{1001, 3}, {1 << 40, 3},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	snap := h.Snapshot()
	want := make([]int64, 4)
	for _, c := range cases {
		want[c.want]++
	}
	for i := range want {
		if snap.Buckets[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (layout %v)", i, snap.Buckets[i], want[i], snap.Bounds)
		}
	}
	if snap.Count != int64(len(cases)) {
		t.Errorf("count = %d, want %d", snap.Count, len(cases))
	}
}

func TestLatencyBoundsAscending(t *testing.T) {
	for _, bounds := range [][]int64{LatencyBounds, AllocBounds} {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("bounds not ascending at %d: %v", i, bounds)
			}
		}
	}
}

// TestNilInstrumentsZeroAlloc is the disabled-path contract: with a nil
// scope every instrument call, span and health hook must allocate
// nothing (this is what keeps bench_test.go's per-frame allocs/op flat
// when observability is off).
func TestNilInstrumentsZeroAlloc(t *testing.T) {
	var sc *Scope
	allocs := testing.AllocsPerRun(100, func() {
		sp := sc.Start(StageThin)
		sc.FrameDone()
		sc.Pruned(3)
		sc.ThinPasses(7)
		sc.GraphStats(1, 2)
		sc.KeyPointMiss(true, false)
		sc.HandAbsent()
		sc.Decision(2, -1, true)
		sc.AcquireStall(time.Millisecond)
		sc.PoolFree(4)
		if ps := sc.Parallel(); ps != nil {
			ps.Items.Inc()
		}
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("nil-scope instrumentation allocates %.1f allocs/op, want 0", allocs)
	}
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs = testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(2)
		g.Max(3)
		h.Observe(4)
	})
	if allocs != 0 {
		t.Errorf("nil instruments allocate %.1f allocs/op, want 0", allocs)
	}
}

// TestEnabledSpanZeroAlloc: even with a live scope (no tracer), the
// span/counter hot path stays allocation-free — overhead is clock reads
// and atomic adds only.
func TestEnabledSpanZeroAlloc(t *testing.T) {
	sc := NewScope(NewRegistry())
	allocs := testing.AllocsPerRun(100, func() {
		sp := sc.Start(StageGraph)
		sc.FrameDone()
		sc.Decision(1, -1, false)
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("enabled span path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	reg := NewRegistry()
	sc := NewScope(reg)
	sc.FrameDone()
	sc.Decision(3, -1, true)
	sc.Start(StageDetect).End()
	var a, b bytes.Buffer
	if err := reg.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two snapshots of an idle registry differ")
	}
	var snap Snapshot
	if err := json.Unmarshal(a.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	names := make(map[string]int64)
	for _, c := range snap.Counters {
		names[c.Name] = c.Value
	}
	if names["pipeline.frames"] != 1 {
		t.Errorf("pipeline.frames = %d, want 1", names["pipeline.frames"])
	}
	if names["pipeline.unknown.stage3"] != 1 || names["pipeline.decided.stage3"] != 1 {
		t.Errorf("stage-3 decision counters = %d/%d, want 1/1",
			names["pipeline.decided.stage3"], names["pipeline.unknown.stage3"])
	}
	found := false
	for _, h := range snap.Histograms {
		if h.Name == "stage.detect.ns" && h.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Error("stage.detect.ns histogram missing or empty in snapshot")
	}
}

func TestRegistryFuncMetrics(t *testing.T) {
	reg := NewRegistry()
	v := int64(41)
	reg.RegisterFunc("ext.value", func() int64 { return v })
	v = 42
	snap := reg.Snapshot()
	for _, c := range snap.Counters {
		if c.Name == "ext.value" {
			if c.Value != 42 {
				t.Errorf("func metric = %d, want 42 (must be read at snapshot time)", c.Value)
			}
			return
		}
	}
	t.Error("func metric missing from snapshot")
}

func TestTracerJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sc := NewScope(NewRegistry()).WithClip(`clip "7"`)
	sc.SetTracer(tr)
	sc.Start(StageThin).End()
	sc.Start(StageClassify).End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d trace lines, want 2: %q", len(lines), buf.String())
	}
	wantStages := []string{"thin", "classify"}
	for i, line := range lines {
		var rec struct {
			TUS   int64  `json:"t_us"`
			Clip  string `json:"clip"`
			Stage string `json:"stage"`
			NS    int64  `json:"ns"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v: %s", i, err, line)
		}
		if rec.Stage != wantStages[i] {
			t.Errorf("line %d stage = %q, want %q", i, rec.Stage, wantStages[i])
		}
		if rec.Clip != `clip "7"` {
			t.Errorf("line %d clip = %q (quoting broken?)", i, rec.Clip)
		}
		if rec.NS < 0 {
			t.Errorf("line %d ns = %d, want >= 0", i, rec.NS)
		}
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served.metric").Add(7)
	srv, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}
	if body := get("/debug/metrics"); !strings.Contains(body, "served.metric") {
		t.Errorf("/debug/metrics missing metric: %s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "served.metric") {
		t.Errorf("/debug/vars missing published registry: %s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline returned nothing")
	}
}

func TestStageString(t *testing.T) {
	want := map[Stage]string{
		StageDetect: "detect", StageSmooth: "smooth", StageThin: "thin",
		StageGraph: "graph", StageKeyPoint: "keypoint", StageClassify: "classify",
		Stage(99): "unknown",
	}
	for st, name := range want {
		if st.String() != name {
			t.Errorf("Stage(%d).String() = %q, want %q", st, st.String(), name)
		}
	}
}
