package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestSamplerDerivesRates drives the sampler with explicit windows and
// checks the derived series against exact values.
func TestSamplerDerivesRates(t *testing.T) {
	reg := NewRegistry()
	frames := reg.Counter("pipeline.frames")
	items := reg.Counter("parallel.items")
	depth := reg.Gauge("engine.pool_free")
	thin := reg.Histogram("stage.thin.ns", []int64{10, 100, 1000})

	s := NewSampler(reg, time.Second, 8)
	// Baseline: empty registry.
	s.sample(reg.Snapshot(), time.Second)

	frames.Add(100)
	items.Add(10)
	depth.Set(4)
	thin.Observe(50)
	thin.Observe(50)
	s.sample(reg.Snapshot(), 2*time.Second)

	ts := s.Series()
	if ts.Ticks != 2 {
		t.Errorf("ticks = %d, want 2", ts.Ticks)
	}
	check := func(name string, want float64) {
		t.Helper()
		got, ok := ts.Latest(name)
		if !ok {
			t.Errorf("series %q missing", name)
			return
		}
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("pipeline.frames.rate", 50) // 100 frames / 2 s
	check("derived.frames_per_s", 50)
	check("parallel.items.rate", 5)
	check("derived.clips_per_s", 5)
	check("engine.pool_free", 4)
	check("stage.thin.ns.rate", 1) // 2 observations / 2 s

	// The windowed histogram quantiles cover only this interval's two
	// observations, both in (10,100].
	p50, ok := ts.Latest("stage.thin.ns.p50")
	if !ok || p50 <= 10 || p50 > 100 {
		t.Errorf("stage.thin.ns.p50 = %v (ok=%v), want within (10,100]", p50, ok)
	}

	// A third, idle window: rates drop to zero, the gauge holds.
	s.sample(reg.Snapshot(), time.Second)
	ts = s.Series()
	check2 := func(name string, want float64) {
		t.Helper()
		if got, _ := ts.Latest(name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check2("pipeline.frames.rate", 0)
	check2("engine.pool_free", 4)
	check2("stage.thin.ns.p50", 0) // no observations this window
}

func TestRingWraparound(t *testing.T) {
	r := newRing(3)
	for i := 1; i <= 5; i++ {
		r.push(float64(i))
	}
	got := r.points()
	want := []float64{3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("points = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("points = %v, want %v", got, want)
		}
	}
}

// TestSamplerWindowBounded: the ring never exceeds its window no matter
// how many ticks pass.
func TestSamplerWindowBounded(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("pipeline.frames")
	s := NewSampler(reg, time.Second, 4)
	for i := 0; i < 20; i++ {
		c.Inc()
		s.sample(reg.Snapshot(), time.Second)
	}
	ts := s.Series()
	if ts.Ticks != 20 {
		t.Errorf("ticks = %d, want 20", ts.Ticks)
	}
	for _, series := range ts.Series {
		if len(series.Points) > 4 {
			t.Errorf("series %s has %d points, window is 4", series.Name, len(series.Points))
		}
	}
}

// TestSamplerStartStopRace exercises Start/Stop/Tick/Series concurrently
// with live instrument updates; run under -race (the Makefile race
// target includes this package). Also checks Stop's final tick and
// idempotence.
func TestSamplerStartStopRace(t *testing.T) {
	reg := NewRegistry()
	sc := NewScope(reg)
	s := NewSampler(reg, 10*time.Millisecond, 16)
	s.Start()
	s.Start() // double-start is a no-op

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sc.FrameDone()
			sc.Start(StageThin).End()
			sc.Decision(2, -1, false)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.Tick()
			_ = s.Series()
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	s.Stop()
	s.Stop() // idempotent

	ts := s.Series()
	if ts.Ticks < 50 {
		t.Errorf("ticks = %d, want >= 50", ts.Ticks)
	}
	if _, ok := ts.Latest("pipeline.frames.rate"); !ok {
		t.Error("pipeline.frames.rate series missing after concurrent run")
	}

	// Nil sampler: everything is a no-op.
	var nilS *Sampler
	nilS.Start()
	nilS.Tick()
	nilS.Stop()
	if got := nilS.Series(); len(got.Series) != 0 {
		t.Error("nil sampler returned series")
	}
}

func TestSamplerJSONDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.metric").Add(1)
	reg.Counter("a.metric").Add(2)
	s := NewSampler(reg, time.Second, 4)
	s.sample(reg.Snapshot(), time.Second)

	var one, two bytes.Buffer
	if err := s.WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Error("two timeseries encodings of an idle sampler differ")
	}
	var ts TimeSeries
	if err := json.Unmarshal(one.Bytes(), &ts); err != nil {
		t.Fatalf("timeseries JSON invalid: %v", err)
	}
	for i := 1; i < len(ts.Series); i++ {
		if ts.Series[i-1].Name >= ts.Series[i].Name {
			t.Errorf("series not sorted: %q before %q", ts.Series[i-1].Name, ts.Series[i].Name)
		}
	}
}
