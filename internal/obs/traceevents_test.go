package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteTraceEvents converts a span JSONL stream produced by the real
// Tracer and checks the Chrome trace-event structure: valid JSON, one
// complete event per span, one named thread row per clip.
func TestWriteTraceEvents(t *testing.T) {
	var spans bytes.Buffer
	tr := NewTracer(&spans)
	scA := NewScope(NewRegistry()).WithClip("clip-a")
	scA.SetTracer(tr)
	scB := scA.WithClip("clip-b")
	scA.Start(StageThin).End()
	scB.Start(StageGraph).End()
	scA.Start(StageClassify).End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := WriteTraceEvents(&spans, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("trace events are not valid JSON: %v\n%s", err, out.String())
	}
	var complete, meta int
	tidsByClip := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Dur < 0 || ev.Pid != 1 || ev.Tid == 0 {
				t.Errorf("bad complete event: %+v", ev)
			}
		case "M":
			meta++
			if ev.Name != "thread_name" {
				t.Errorf("bad metadata event name %q", ev.Name)
			}
			tidsByClip[ev.Args["name"]] = ev.Tid
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if complete != 3 {
		t.Errorf("complete events = %d, want 3", complete)
	}
	if meta != 2 {
		t.Errorf("thread metadata events = %d, want 2 (one per clip)", meta)
	}
	if tidsByClip["clip-a"] == tidsByClip["clip-b"] {
		t.Error("clips share a tid; each clip must get its own row")
	}

	// Stage names survive as event names.
	if !strings.Contains(out.String(), `"name":"thin"`) {
		t.Errorf("thin span missing from events: %s", out.String())
	}
}

func TestWriteTraceEventsErrors(t *testing.T) {
	// Malformed line aborts with its line number.
	in := strings.NewReader("{\"t_us\":1,\"stage\":\"thin\",\"ns\":5}\nnot json\n")
	var out bytes.Buffer
	err := WriteTraceEvents(in, &out)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line-2 parse error", err)
	}

	// Empty input still yields a valid, empty document.
	out.Reset()
	if err := WriteTraceEvents(strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
}
