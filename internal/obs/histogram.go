package obs

import (
	"math"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with v <= Bounds[i]; one extra overflow bucket counts
// the rest. Observe is lock-free (one atomic add per bucket plus sum
// and count), so histograms are safe to share across engine workers.
// A nil *Histogram discards observations.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	sum    atomic.Int64
	count  atomic.Int64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// The bounds slice is retained and must not be mutated by the caller.
func NewHistogram(bounds []int64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// LatencyBounds is the shared bucket layout for stage latencies, in
// nanoseconds: 1 µs to ~8.4 s in powers of two. Stage timings on the
// synthetic corpus span roughly 10 µs (classify) to 10 ms (detect on
// large frames), so the interesting range sits mid-layout at any
// plausible frame size.
var LatencyBounds = expBounds(1_000, 2, 24)

// AllocBounds is the shared bucket layout for byte/allocation sizes:
// 64 B to ~512 MiB in powers of four.
var AllocBounds = expBounds(64, 4, 12)

// expBounds returns n ascending bounds start, start*factor, ...
func expBounds(start, factor int64, n int) []int64 {
	out := make([]int64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value. No-op on a nil receiver; never allocates.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistogramSnapshot is a point-in-time copy of a histogram, suitable
// for JSON encoding.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"` // len(Bounds)+1; last is overflow
}

// Snapshot copies the current bucket counts. Returns a zero snapshot
// on a nil receiver.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// Sub returns the windowed delta s − prev: the observations that landed
// between the two snapshots. Bounds are shared with s. When the layouts
// disagree (a registry was rebuilt mid-run) or prev is empty, s is
// returned unchanged; individual negative deltas clamp to zero so a
// racy pair of snapshots cannot produce negative bucket counts.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if len(prev.Buckets) != len(s.Buckets) || prev.Count == 0 {
		return s
	}
	d := HistogramSnapshot{
		Count:   max64(s.Count-prev.Count, 0),
		Sum:     s.Sum - prev.Sum,
		Bounds:  s.Bounds,
		Buckets: make([]int64, len(s.Buckets)),
	}
	for i := range s.Buckets {
		d.Buckets[i] = max64(s.Buckets[i]-prev.Buckets[i], 0)
	}
	return d
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution from the bucketed counts. The matched bucket is
// interpolated log-linearly between its lower and upper bound — the
// natural choice for the exponential layouts above, where a bucket
// spans a constant factor and equal count mass maps to equal factor
// steps. The first bucket has no lower bound and interpolates linearly
// from zero; the overflow bucket has no upper bound and returns the
// last bound (a documented underestimate). Returns 0 on an empty
// snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 || len(s.Buckets) == 0 {
		return 0
	}
	if len(s.Bounds) == 0 {
		// A bound-less histogram only has the overflow bucket; the mean is
		// the best available point estimate.
		return float64(s.Sum) / float64(s.Count)
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := float64(0)
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(s.Buckets)-1 {
			if i >= len(s.Bounds) {
				// Overflow bucket: no upper bound to interpolate toward.
				return float64(s.Bounds[len(s.Bounds)-1])
			}
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			hi := float64(s.Bounds[i])
			lo := float64(0)
			if i > 0 {
				lo = float64(s.Bounds[i-1])
			}
			if lo > 0 && hi > lo {
				return lo * math.Pow(hi/lo, frac)
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}
