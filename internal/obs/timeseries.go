package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// ring is a fixed-capacity float64 ring buffer. Not safe for concurrent
// use; the Sampler serialises access under its own mutex.
type ring struct {
	buf  []float64
	head int // next write position
	n    int // valid entries, <= len(buf)
}

func newRing(capacity int) *ring {
	if capacity < 1 {
		capacity = 1
	}
	return &ring{buf: make([]float64, capacity)}
}

func (r *ring) push(v float64) {
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// points returns the buffered values oldest → newest in a fresh slice.
func (r *ring) points() []float64 {
	out := make([]float64, r.n)
	start := r.head - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}

// Series is one derived time series: a name and its ring-buffered
// history, oldest point first.
type Series struct {
	Name   string    `json:"name"`
	Points []float64 `json:"points"`
}

// TimeSeries is a point-in-time view of every series a Sampler derives,
// served at /debug/timeseries and consumed by cmd/sljtop. Series are
// sorted by name so encoding is deterministic.
type TimeSeries struct {
	// IntervalNS is the nominal sampling interval.
	IntervalNS int64 `json:"interval_ns"`
	// Ticks counts samples taken since Start (monotonic; rings hold only
	// the most recent Window of them).
	Ticks int64 `json:"ticks"`
	// Window is the ring capacity in points.
	Window int `json:"window"`
	// Series holds the derived histories. Counter X contributes "X.rate"
	// (per-second delta), gauge X contributes "X", histogram X
	// contributes "X.rate", "X.p50", "X.p95" and "X.p99" (quantiles over
	// the observations of that interval alone), and the derived.* series
	// are documented on Sampler.
	Series []Series `json:"series"`
}

// Sampler periodically snapshots a registry and folds the deltas between
// consecutive snapshots into fixed-size ring buffers of derived
// per-interval series: counter rates, gauge levels, windowed
// histogram-delta quantiles, and a few cross-metric conveniences —
//
//	derived.frames_per_s   rate of pipeline.frames
//	derived.clips_per_s    rate of parallel.items (work items claimed)
//	derived.stall_ratio    parallel.stall_ns delta / wall interval
//	derived.pool_hit_rate  imaging pool hits / (hits+misses) this interval
//
// Memory is bounded: window × series rings, no per-tick allocation
// beyond first resolution of a new metric name. All methods are nil-safe
// so the disabled path costs nothing.
type Sampler struct {
	reg      *Registry
	interval time.Duration
	window   int

	mu       sync.Mutex
	prev     Snapshot
	prevAt   time.Time
	havePrev bool
	series   map[string]*ring
	ticks    int64
	onTick   func()

	stop chan struct{}
	done chan struct{}
}

// NewSampler builds a sampler over reg. interval is the nominal period
// between snapshots (clamped to 10ms minimum), window the ring capacity
// in points. A nil registry yields a nil sampler.
func NewSampler(reg *Registry, interval time.Duration, window int) *Sampler {
	if reg == nil {
		return nil
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if window < 1 {
		window = 1
	}
	return &Sampler{
		reg:      reg,
		interval: interval,
		window:   window,
		series:   make(map[string]*ring),
	}
}

// Start launches the background sampling goroutine. No-op on a nil
// sampler or when already started.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	// Prime the delta baseline so the first tick measures a real window.
	s.prev, s.prevAt, s.havePrev = s.reg.Snapshot(), time.Now(), true
	s.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.Tick()
			}
		}
	}()
}

// Stop halts the background goroutine, takes one final sample so the
// tail of the run is captured, and waits for the goroutine to exit.
// Safe on a nil or never-started sampler, and idempotent.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	s.Tick()
}

// SetOnTick installs a callback run after every Tick, outside the
// sampler's lock — the health evaluator rides it so SLO windows are
// re-evaluated exactly once per sample, with no second timer
// goroutine. nil removes the callback. Safe on a nil sampler.
func (s *Sampler) SetOnTick(fn func()) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.onTick = fn
	s.mu.Unlock()
}

// Tick takes one sample now, deriving rates from the wall time elapsed
// since the previous sample. Exported so tests (and -once consumers) can
// drive the sampler deterministically without the background goroutine.
func (s *Sampler) Tick() {
	if s == nil {
		return
	}
	snap := s.reg.Snapshot()
	now := time.Now()
	s.mu.Lock()
	elapsed := s.interval
	if s.havePrev {
		if d := now.Sub(s.prevAt); d > 0 {
			elapsed = d
		}
	}
	s.sampleLocked(snap, elapsed)
	s.prev, s.prevAt, s.havePrev = snap, now, true
	fn := s.onTick
	s.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// sample folds one snapshot with an explicit elapsed window; tests use
// it for exact-rate assertions.
func (s *Sampler) sample(snap Snapshot, elapsed time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sampleLocked(snap, elapsed)
	s.prev, s.havePrev = snap, true
	s.prevAt = time.Now()
}

func (s *Sampler) sampleLocked(snap Snapshot, elapsed time.Duration) {
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = s.interval.Seconds()
	}
	prevCount := indexValues(s.prev.Counters)
	deltas := make(map[string]float64, len(snap.Counters))
	for _, c := range snap.Counters {
		d := float64(c.Value - prevCount[c.Name])
		if !s.havePrev || d < 0 {
			d = 0
		}
		deltas[c.Name] = d
		s.record(c.Name+".rate", d/secs)
	}
	for _, g := range snap.Gauges {
		s.record(g.Name, float64(g.Value))
	}
	prevHist := make(map[string]HistogramSnapshot, len(s.prev.Histograms))
	for _, h := range s.prev.Histograms {
		prevHist[h.Name] = h.HistogramSnapshot
	}
	for _, h := range snap.Histograms {
		win := h.HistogramSnapshot
		if s.havePrev {
			win = win.Sub(prevHist[h.Name])
		}
		s.record(h.Name+".rate", float64(win.Count)/secs)
		s.record(h.Name+".p50", win.Quantile(0.50))
		s.record(h.Name+".p95", win.Quantile(0.95))
		s.record(h.Name+".p99", win.Quantile(0.99))
	}

	s.record("derived.frames_per_s", deltas["pipeline.frames"]/secs)
	s.record("derived.clips_per_s", deltas["parallel.items"]/secs)
	s.record("derived.stall_ratio", deltas["parallel.stall_ns"]/float64(elapsed.Nanoseconds()))
	hits, misses := deltas["imaging.pool.hits"], deltas["imaging.pool.misses"]
	hitRate := float64(0)
	if hits+misses > 0 {
		hitRate = hits / (hits + misses)
	}
	s.record("derived.pool_hit_rate", hitRate)
	s.ticks++
}

func (s *Sampler) record(name string, v float64) {
	r, ok := s.series[name]
	if !ok {
		r = newRing(s.window)
		s.series[name] = r
	}
	r.push(v)
}

func indexValues(vals []MetricValue) map[string]int64 {
	m := make(map[string]int64, len(vals))
	for _, v := range vals {
		m[v.Name] = v.Value
	}
	return m
}

// Series returns a deterministic copy of every ring: series sorted by
// name, points oldest first. Safe on a nil sampler (zero TimeSeries).
func (s *Sampler) Series() TimeSeries {
	if s == nil {
		return TimeSeries{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := TimeSeries{
		IntervalNS: s.interval.Nanoseconds(),
		Ticks:      s.ticks,
		Window:     s.window,
		Series:     make([]Series, 0, len(s.series)),
	}
	for name, r := range s.series {
		ts.Series = append(ts.Series, Series{Name: name, Points: r.points()})
	}
	sort.Slice(ts.Series, func(i, j int) bool { return ts.Series[i].Name < ts.Series[j].Name })
	return ts
}

// Interval returns the nominal sampling period (0 on a nil sampler).
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// WriteJSON writes the current Series() view as indented JSON.
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.Series()); err != nil {
		return fmt.Errorf("obs: encoding timeseries: %w", err)
	}
	return nil
}

// Latest returns the newest point of the named series and whether the
// series exists. Convenience for dashboards and tests.
func (ts TimeSeries) Latest(name string) (float64, bool) {
	for _, s := range ts.Series {
		if s.Name == name && len(s.Points) > 0 {
			return s.Points[len(s.Points)-1], true
		}
	}
	return 0, false
}

// ByPrefix returns the series whose names start with prefix, preserving
// the sorted order.
func (ts TimeSeries) ByPrefix(prefix string) []Series {
	var out []Series
	for _, s := range ts.Series {
		if strings.HasPrefix(s.Name, prefix) {
			out = append(out, s)
		}
	}
	return out
}
