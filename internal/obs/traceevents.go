package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// spanRecord mirrors one Tracer JSONL line.
type spanRecord struct {
	TUS   int64  `json:"t_us"`
	Clip  string `json:"clip"`
	Trace string `json:"trace"`
	Stage string `json:"stage"`
	NS    int64  `json:"ns"`
}

// WriteTraceEvents converts a span JSONL stream (the -spans output) into
// Chrome trace-event JSON that opens directly in Perfetto or
// chrome://tracing: each span becomes a complete ("ph":"X") event, and
// each distinct clip becomes its own named thread row so overlapping
// clip pipelines render as parallel tracks. Events stream through —
// memory is bounded by the clip-name table, not the trace length. Blank
// lines are skipped; a malformed line aborts with an error naming its
// line number.
func WriteTraceEvents(r io.Reader, w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return fmt.Errorf("obs: writing trace events: %w", err)
	}
	tids := map[string]int{}
	first := true
	emit := func(data []byte) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		_, err := bw.Write(data)
		return err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec spanRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("obs: span line %d: %w", lineNo, err)
		}
		tid, ok := tids[rec.Clip]
		if !ok {
			tid = len(tids) + 1
			tids[rec.Clip] = tid
			name := rec.Clip
			if name == "" {
				name = "(unlabelled)"
			}
			meta, err := json.Marshal(map[string]any{
				"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
				"args": map[string]string{"name": name},
			})
			if err != nil {
				return fmt.Errorf("obs: span line %d: %w", lineNo, err)
			}
			if err := emit(meta); err != nil {
				return fmt.Errorf("obs: writing trace events: %w", err)
			}
		}
		// Hand-build the event: field order stays stable and the hot loop
		// avoids a map allocation per span.
		buf := make([]byte, 0, 128)
		buf = append(buf, `{"name":`...)
		buf = strconv.AppendQuote(buf, rec.Stage)
		buf = append(buf, `,"cat":"stage","ph":"X","ts":`...)
		buf = strconv.AppendInt(buf, rec.TUS, 10)
		buf = append(buf, `,"dur":`...)
		buf = strconv.AppendFloat(buf, float64(rec.NS)/1e3, 'f', 3, 64)
		buf = append(buf, `,"pid":1,"tid":`...)
		buf = strconv.AppendInt(buf, int64(tid), 10)
		if rec.Trace != "" {
			buf = append(buf, `,"args":{"trace":`...)
			buf = strconv.AppendQuote(buf, rec.Trace)
			buf = append(buf, '}')
		}
		buf = append(buf, '}')
		if err := emit(buf); err != nil {
			return fmt.Errorf("obs: writing trace events: %w", err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: reading spans: %w", err)
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return fmt.Errorf("obs: writing trace events: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: writing trace events: %w", err)
	}
	return nil
}
