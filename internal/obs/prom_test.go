package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestPromGolden pins the exact Prometheus text exposition for a fixed
// registry: sorted names, cumulative sorted buckets, counter _total
// suffix, +Inf bucket equal to the count. Any format drift breaks
// scrapers, so this is a byte-for-byte golden.
func TestPromGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pipeline.frames").Add(12)
	reg.Counter("dataset.clips_streamed").Add(3)
	reg.Gauge("engine.pool_free").Set(4)
	h := reg.Histogram("stage.thin.ns", []int64{10, 100, 1000})
	h.Observe(5)    // bucket 0
	h.Observe(50)   // bucket 1
	h.Observe(50)   // bucket 1
	h.Observe(5000) // overflow
	reg.RegisterFunc("imaging.pool.hits", func() int64 { return 9 })

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE slj_dataset_clips_streamed_total counter",
		"slj_dataset_clips_streamed_total 3",
		"# TYPE slj_imaging_pool_hits_total counter",
		"slj_imaging_pool_hits_total 9",
		"# TYPE slj_pipeline_frames_total counter",
		"slj_pipeline_frames_total 12",
		"# TYPE slj_engine_pool_free gauge",
		"slj_engine_pool_free 4",
		"# TYPE slj_stage_thin_ns histogram",
		`slj_stage_thin_ns_bucket{le="10"} 1`,
		`slj_stage_thin_ns_bucket{le="100"} 3`,
		`slj_stage_thin_ns_bucket{le="1000"} 3`,
		`slj_stage_thin_ns_bucket{le="+Inf"} 4`,
		"slj_stage_thin_ns_sum 5105",
		"slj_stage_thin_ns_count 4",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("prometheus exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Two writes of an idle registry are byte-identical.
	var again bytes.Buffer
	if err := reg.WriteProm(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != buf.String() {
		t.Error("two expositions of an idle registry differ")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"pipeline.frames":          "slj_pipeline_frames",
		"stage.thin.ns":            "slj_stage_thin_ns",
		"pipeline.decided.stage0":  "slj_pipeline_decided_stage0",
		"weird-name with spaces!":  "slj_weird_name_with_spaces_",
		"9starts.with.digit":       "slj__9starts_with_digit",
		"already_underscored.dots": "slj_already_underscored_dots",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}
