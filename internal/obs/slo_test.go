package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSLOSpecValidate(t *testing.T) {
	good := SLOSpec{Name: "frame_p99", Kind: SLOQuantile, Metric: "stage.frame.ns", Quantile: 0.99, TargetNS: 1e6}
	if err := good.Validate(); err != nil {
		t.Errorf("valid quantile spec rejected: %v", err)
	}
	for _, bad := range []SLOSpec{
		{Name: "Frame-P99", Kind: SLOQuantile, Metric: "m", TargetNS: 1},      // bad name grammar
		{Name: "q", Kind: SLOQuantile, TargetNS: 1},                           // no metric
		{Name: "q", Kind: SLOQuantile, Metric: "m"},                           // no target
		{Name: "r", Kind: SLORatio, Bad: "b", Budget: 0.1},                    // no total
		{Name: "r", Kind: SLORatio, Bad: "b", Total: "t"},                     // no budget
		{Name: "k", Kind: SLOKind(99), Metric: "m", TargetNS: 1},              // unknown kind
		{Name: "slo name", Kind: SLORatio, Bad: "b", Total: "t", Budget: 0.1}, // space in name
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid spec accepted: %+v", bad)
		}
	}
}

func TestSLOQuantileEval(t *testing.T) {
	spec := SLOSpec{Name: "frame_p99", Kind: SLOQuantile, Metric: "stage.frame.ns", Quantile: 0.99, TargetNS: 250e6}

	// Healthy: lifetime quantile far under target, no sampler points.
	reg := NewRegistry()
	h := reg.Histogram("stage.frame.ns", LatencyBounds)
	for i := 0; i < 100; i++ {
		h.Observe(2_000_000) // 2ms
	}
	st := spec.Eval(TimeSeries{}, reg.Snapshot())
	if st.Level != "ok" || st.Reason != "" {
		t.Errorf("healthy eval = %+v, want ok", st)
	}
	if st.BurnSlow <= 0 || st.BurnSlow >= 1 {
		t.Errorf("healthy burn slow = %v, want in (0,1)", st.BurnSlow)
	}

	// Slow-window breach: lifetime p99 over target.
	reg2 := NewRegistry()
	h2 := reg2.Histogram("stage.frame.ns", LatencyBounds)
	for i := 0; i < 100; i++ {
		h2.Observe(600_000_000) // 600ms > 250ms target
	}
	st = spec.Eval(TimeSeries{}, reg2.Snapshot())
	if st.Level != "degraded" {
		t.Errorf("slow breach level = %q, want degraded", st.Level)
	}
	if !strings.Contains(st.Reason, "stage.frame.ns") || !strings.Contains(st.Reason, "p99") {
		t.Errorf("breach reason %q names neither metric nor quantile", st.Reason)
	}

	// Fast-window breach alone also degrades: sampler points over
	// target while the lifetime histogram is healthy.
	ts := TimeSeries{Series: []Series{{Name: "stage.frame.ns.p99", Points: []float64{500e6, 500e6, 500e6}}}}
	st = spec.Eval(ts, reg.Snapshot())
	if st.Level != "degraded" || st.BurnFast < 1 {
		t.Errorf("fast breach = %+v, want degraded with burn fast >= 1", st)
	}
}

func TestSLORatioEval(t *testing.T) {
	spec := SLOSpec{Name: "decode_errors", Kind: SLORatio, Bad: "errors.decode", Total: "dataset.clips_streamed", Budget: 0.01}

	// No traffic at all: ok.
	st := spec.Eval(TimeSeries{}, NewRegistry().Snapshot())
	if st.Level != "ok" || st.Value != 0 {
		t.Errorf("idle eval = %+v, want ok", st)
	}

	// Failures with zero successes: the degenerate ratio counts as a
	// fully burned budget, not a division-by-zero pass.
	reg := NewRegistry()
	reg.Counter("errors.decode").Add(3)
	st = spec.Eval(TimeSeries{}, reg.Snapshot())
	if st.Level != "degraded" || st.Value != 1 {
		t.Errorf("all-failed eval = %+v, want degraded with value 1", st)
	}

	// Ratio over budget degrades; under budget stays ok.
	reg2 := NewRegistry()
	reg2.Counter("errors.decode").Add(1)
	reg2.Counter("dataset.clips_streamed").Add(10) // 10% >> 1% budget
	st = spec.Eval(TimeSeries{}, reg2.Snapshot())
	if st.Level != "degraded" {
		t.Errorf("over-budget eval = %+v, want degraded", st)
	}
	reg3 := NewRegistry()
	reg3.Counter("dataset.clips_streamed").Add(1000)
	reg3.Counter("errors.decode").Add(1) // 0.1% < 1% budget
	st = spec.Eval(TimeSeries{}, reg3.Snapshot())
	if st.Level != "ok" {
		t.Errorf("under-budget eval = %+v, want ok", st)
	}

	// FailingBurn escalates only when BOTH windows burn hot.
	hot := spec
	hot.FailingBurn = 5
	ts := TimeSeries{Series: []Series{
		{Name: "errors.decode.rate", Points: []float64{10, 10}},
		{Name: "dataset.clips_streamed.rate", Points: []float64{10, 10}},
	}}
	st = hot.Eval(ts, reg2.Snapshot()) // fast burn 100, slow burn 10
	if st.Level != "failing" {
		t.Errorf("both-windows-hot eval = %+v, want failing", st)
	}
	st = hot.Eval(TimeSeries{}, reg2.Snapshot()) // fast burn 0: degraded only
	if st.Level != "degraded" {
		t.Errorf("slow-only eval = %+v, want degraded (failing needs both windows)", st)
	}
}

func TestHealthEvaluatorVerdictAndTrace(t *testing.T) {
	reg := NewRegistry()
	smp := NewSampler(reg, time.Hour, 8)
	journal := NewJournal(reg, 32)
	h, err := NewHealthEvaluator(reg, smp, journal, DefaultSLOs())
	if err != nil {
		t.Fatal(err)
	}

	// Fresh run: ready before and after the first eval.
	if h.Health() != VerdictReady || !h.Ready() {
		t.Error("fresh evaluator not ready")
	}
	h.Eval()
	if got := h.Health(); got != VerdictReady {
		t.Errorf("healthy eval verdict = %v, want ready", got)
	}

	// A journaled decode error breaches decode_errors; the breach state
	// carries the journal exemplar's trace ID.
	reg.Counter("dataset.clips_streamed").Add(10)
	journal.Record(ErrClassDecode, "t000042", "clip-bad", -1, "torn header")
	h.Eval()
	if got := h.Health(); got != VerdictDegraded {
		t.Fatalf("verdict = %v, want degraded", got)
	}
	if h.Ready() {
		t.Error("degraded evaluator reports Ready")
	}
	snap := h.Snapshot()
	var decodeState *SLOState
	for i := range snap.SLOs {
		if snap.SLOs[i].Name == "decode_errors" {
			decodeState = &snap.SLOs[i]
		}
	}
	if decodeState == nil {
		t.Fatalf("no decode_errors state in %+v", snap.SLOs)
	}
	if decodeState.Level != "degraded" {
		t.Errorf("decode_errors level = %q, want degraded", decodeState.Level)
	}
	if decodeState.Trace != "t000042" || !strings.Contains(decodeState.Reason, "t000042") {
		t.Errorf("breach state does not carry journal trace: %+v", decodeState)
	}
	if len(snap.Reasons) == 0 || !strings.Contains(snap.Reasons[0], "decode_errors") {
		t.Errorf("snapshot reasons = %v", snap.Reasons)
	}

	// The slo.* gauges and health.state export the same verdict.
	gauges := map[string]int64{}
	for _, g := range reg.Snapshot().Gauges {
		gauges[g.Name] = g.Value
	}
	if gauges["health.state"] != int64(VerdictDegraded) {
		t.Errorf("health.state gauge = %d, want %d", gauges["health.state"], VerdictDegraded)
	}
	if gauges["slo.decode_errors.level"] != int64(SLODegraded) {
		t.Errorf("slo.decode_errors.level gauge = %d, want %d", gauges["slo.decode_errors.level"], SLODegraded)
	}
	if gauges["slo.decode_errors.burn_slow_milli"] < 1000 {
		t.Errorf("burn_slow_milli = %d, want >= 1000", gauges["slo.decode_errors.burn_slow_milli"])
	}

	// Stop freezes the verdict: clearing the breach no longer helps.
	h.Stop()
	if !h.Stopped() {
		t.Error("Stopped() false after Stop")
	}
	reg.Counter("dataset.clips_streamed").Add(100000)
	h.Eval()
	if got := h.Health(); got != VerdictDegraded {
		t.Errorf("verdict after Stop = %v, want frozen degraded", got)
	}

	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back HealthSnapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("WriteJSON output invalid: %v", err)
	}
	if back.Verdict != VerdictDegraded || back.Ready {
		t.Errorf("decoded snapshot = %+v", back)
	}
}

func TestHealthEvaluatorNilSafe(t *testing.T) {
	var h *HealthEvaluator
	h.Eval()
	h.Stop()
	if h.Health() != VerdictReady || !h.Ready() || h.Stopped() {
		t.Error("nil evaluator not inertly ready")
	}
	snap := h.Snapshot()
	if snap.Verdict != VerdictReady || !snap.Ready {
		t.Errorf("nil snapshot = %+v", snap)
	}
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Errorf("nil WriteJSON = %v", err)
	}

	// Nil registry yields a nil evaluator, not an error.
	got, err := NewHealthEvaluator(nil, nil, nil, DefaultSLOs())
	if got != nil || err != nil {
		t.Errorf("NewHealthEvaluator(nil reg) = %v, %v", got, err)
	}

	// Invalid specs are rejected up front.
	if _, err := NewHealthEvaluator(NewRegistry(), nil, nil, []SLOSpec{{Name: "Bad Name"}}); err == nil {
		t.Error("invalid spec accepted")
	}
}

// TestHealthRidesSamplerTick wires the evaluator to the sampler hook
// the way the CLI does and checks a tick produces a verdict.
func TestHealthRidesSamplerTick(t *testing.T) {
	reg := NewRegistry()
	smp := NewSampler(reg, time.Hour, 8)
	smp.Start()
	defer smp.Stop()
	journal := NewJournal(reg, 32)
	h, err := NewHealthEvaluator(reg, smp, journal, DefaultSLOs())
	if err != nil {
		t.Fatal(err)
	}
	smp.SetOnTick(h.Eval)

	reg.Counter("dataset.clips_streamed").Add(5)
	journal.Record(ErrClassDecode, "t000007", "clip-z", -1, "bad magic")
	smp.Tick()
	if got := h.Health(); got != VerdictDegraded {
		t.Errorf("verdict after tick = %v, want degraded", got)
	}
	if snap := h.Snapshot(); snap.Ticks < 1 {
		t.Errorf("ticks = %d, want >= 1", snap.Ticks)
	}
}
