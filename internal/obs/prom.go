package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type for Prometheus text exposition
// format 0.0.4, served at /debug/metrics.prom.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName mangles a registry metric name into a Prometheus-legal one:
// a fixed "slj_" namespace prefix, dots to underscores, and any other
// illegal rune to underscore. Registry names are lowercase dot-case by
// convention (enforced by the metricnames analyzer), so the mapping is
// collision-free in practice: "stage.thin.ns" → "slj_stage_thin_ns".
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 4)
	b.WriteString("slj_")
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm renders the snapshot in Prometheus text exposition format
// 0.0.4. Output is deterministic: the snapshot's slices are already
// sorted by name and bucket bounds are ascending. Counters gain the
// conventional _total suffix; histograms expand to cumulative
// <name>_bucket{le="..."} series plus <name>_sum and <name>_count, with
// the le="+Inf" bucket equal to the total count.
func (s Snapshot) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, c := range s.Counters {
		name := PromName(c.Name) + "_total"
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, c.Value)
	}
	for _, g := range s.Gauges {
		name := PromName(g.Name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", name, name, g.Value)
	}
	for _, h := range s.Histograms {
		name := PromName(h.Name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		cum := int64(0)
		for i, bound := range h.Bounds {
			if i < len(h.Buckets) {
				cum += h.Buckets[i]
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"%s\"} %d\n", name, strconv.FormatInt(bound, 10), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(bw, "%s_sum %d\n", name, h.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", name, h.Count)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: writing prometheus exposition: %w", err)
	}
	return nil
}

// WriteProm writes the registry's current snapshot in Prometheus text
// exposition format. Safe on a nil registry (writes nothing).
func (r *Registry) WriteProm(w io.Writer) error {
	return r.Snapshot().WriteProm(w)
}
