package obs

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleReportRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("pipeline.frames").Add(200)
	reg.Counter("parallel.items").Add(20)
	reg.Counter("parallel.stall_ns").Add(500_000_000)
	reg.Counter("imaging.pool.hits").Add(90)
	reg.Counter("imaging.pool.misses").Add(10)
	reg.Gauge("engine.pool_free").Set(3)
	h := reg.Histogram("stage.thin.ns", []int64{1000, 10_000, 100_000})
	for i := 0; i < 10; i++ {
		h.Observe(5000)
	}
	return reg
}

func TestBuildRunReport(t *testing.T) {
	reg := sampleReportRegistry()
	snap := reg.Snapshot()
	rep := BuildRunReport(snap, 10*time.Second, time.Unix(1754600000, 0))

	if rep.Schema != RunReportSchema {
		t.Errorf("schema = %d, want %d", rep.Schema, RunReportSchema)
	}
	if rep.Frames != 200 || rep.FramesPerS != 20 {
		t.Errorf("frames = %d @ %v/s, want 200 @ 20/s", rep.Frames, rep.FramesPerS)
	}
	if rep.Clips != 20 || rep.ClipsPerS != 2 {
		t.Errorf("clips = %d @ %v/s, want 20 @ 2/s", rep.Clips, rep.ClipsPerS)
	}
	if rep.StallRatio != 0.05 {
		t.Errorf("stall ratio = %v, want 0.05", rep.StallRatio)
	}
	if rep.PoolHitRate != 0.9 {
		t.Errorf("pool hit rate = %v, want 0.9", rep.PoolHitRate)
	}

	// The report's quantiles must agree exactly with quantiles computed
	// from the registry's final histogram snapshots — the acceptance
	// contract for RUN_REPORT.json.
	if len(rep.Stages) != 1 {
		t.Fatalf("stages = %d, want 1", len(rep.Stages))
	}
	st := rep.Stages[0]
	hs := snap.Histograms[0].HistogramSnapshot
	if st.Name != "stage.thin.ns" || st.Count != 10 {
		t.Errorf("stage = %q count %d, want stage.thin.ns count 10", st.Name, st.Count)
	}
	for _, q := range []struct {
		got  float64
		q    float64
		name string
	}{{st.P50NS, 0.50, "p50"}, {st.P95NS, 0.95, "p95"}, {st.P99NS, 0.99, "p99"}} {
		if want := hs.Quantile(q.q); q.got != want {
			t.Errorf("report %s = %v, want snapshot quantile %v", q.name, q.got, want)
		}
	}
	if st.MeanNS != 5000 {
		t.Errorf("mean = %v, want 5000", st.MeanNS)
	}
}

func TestRunReportRoundTripAndMarkdown(t *testing.T) {
	reg := sampleReportRegistry()
	rep := BuildRunReport(reg.Snapshot(), 10*time.Second, time.Unix(1754600000, 0))

	path := filepath.Join(t.TempDir(), "RUN_REPORT.json")
	if err := writeFileWith(path, rep.WriteJSON); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRunReport(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(back)
	if !bytes.Equal(a, b) {
		t.Error("report did not round-trip through JSON")
	}

	var md bytes.Buffer
	if err := rep.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# Run report", "stage.thin.ns", "frames: 200", "| pipeline.frames | 200 |"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown missing %q:\n%s", want, md.String())
		}
	}
}

func TestCompareRunReports(t *testing.T) {
	reg := sampleReportRegistry()
	base := BuildRunReport(reg.Snapshot(), 10*time.Second, time.Unix(1754600000, 0))

	// Identical runs: no regressions.
	if regs := CompareRunReports(base, base, 500, 80); len(regs) != 0 {
		t.Errorf("self-compare regressed: %v", regs)
	}

	// Slow the stage down 100× and halve throughput beyond the floor.
	slow := base
	slow.Stages = append([]StageQuantiles(nil), base.Stages...)
	slow.Stages[0].P50NS *= 100
	slow.Stages[0].P95NS *= 100
	slow.Stages[0].P99NS *= 100
	slow.FramesPerS = base.FramesPerS / 100
	regs := CompareRunReports(base, slow, 500, 80)
	if len(regs) != 4 { // p50, p95, p99, frames/s
		t.Errorf("regressions = %d (%v), want 4", len(regs), regs)
	}

	// New histograms and empty histograms pass.
	grown := base
	grown.Stages = append([]StageQuantiles{{Name: "stage.new.ns", Count: 5, P50NS: 1}}, base.Stages...)
	if regs := CompareRunReports(base, grown, 500, 80); len(regs) != 0 {
		t.Errorf("new-stage compare regressed: %v", regs)
	}
}

func TestReportMarkdownPath(t *testing.T) {
	cases := map[string]string{
		"RUN_REPORT.json": "RUN_REPORT.md",
		"out/report.JSON": "out/report.md",
		"plainfile":       "plainfile.md",
		"weird.ext":       "weird.ext.md",
	}
	for in, want := range cases {
		if got := reportMarkdownPath(in); got != want {
			t.Errorf("reportMarkdownPath(%q) = %q, want %q", in, got, want)
		}
	}
}
