package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock yields times advancing by step per call, starting at base.
// The handler's epoch consumes the first call, so the first record's
// t_us is exactly step in microseconds.
func fakeClock(step time.Duration) func() time.Time {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * step)
		n++
		return t
	}
}

// TestLogHandlerGoldenJSONL pins the handler's byte layout: with an
// injected clock, two runs over the same events must produce identical
// bytes — flattened dotted group keys, attrs sorted by key, one fixed
// formatting path per value kind.
func TestLogHandlerGoldenJSONL(t *testing.T) {
	emit := func() string {
		var buf bytes.Buffer
		sink := NewLineSink(&buf)
		h := NewLogHandler(sink, LogOptions{Level: slog.LevelDebug, Clock: fakeClock(time.Millisecond)})
		l := slog.New(h)

		l.Info("run started", "workers", 4, "stream", true)
		l.With("clip", "test-001", "trace", "t000001").
			Warn("keypoint miss", "frame", 12, "ratio", 0.5)
		l.WithGroup("dbn").Debug("decision", "stage", 3, "unknown", false)
		l.Error("decode failed",
			"err", errors.New("torn header"),
			"took", 1500*time.Nanosecond,
			"nan", math.NaN(),
		)
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	got := emit()
	want := `{"t_us":1000,"level":"INFO","msg":"run started","stream":true,"workers":4}
{"t_us":2000,"level":"WARN","msg":"keypoint miss","clip":"test-001","frame":12,"ratio":0.5,"trace":"t000001"}
{"t_us":3000,"level":"DEBUG","msg":"decision","dbn.stage":3,"dbn.unknown":false}
{"t_us":4000,"level":"ERROR","msg":"decode failed","err":"torn header","nan":"NaN","took":1500}
`
	if got != want {
		t.Errorf("golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Byte determinism: a second identical run produces identical bytes.
	if again := emit(); again != got {
		t.Errorf("two identical runs differ:\nfirst:\n%s\nsecond:\n%s", got, again)
	}
	// Every line is valid JSON.
	for i, line := range strings.Split(strings.TrimSuffix(got, "\n"), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Errorf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
	}
}

// TestLogHandlerLevelGate checks Enabled and Handle respect the
// configured minimum level, and that a nil sink disables everything.
func TestLogHandlerLevelGate(t *testing.T) {
	var buf bytes.Buffer
	sink := NewLineSink(&buf)
	l := NewLogger(sink, slog.LevelWarn)
	if l.Enabled(nil, slog.LevelInfo) {
		t.Error("info enabled under a warn-level handler")
	}
	if !l.Enabled(nil, slog.LevelError) {
		t.Error("error disabled under a warn-level handler")
	}
	l.Info("dropped")
	l.Warn("kept")
	sink.Flush()
	if got := buf.String(); strings.Contains(got, "dropped") || !strings.Contains(got, "kept") {
		t.Errorf("level gate failed:\n%s", got)
	}

	var nilHandler *LogHandler = &LogHandler{}
	if nilHandler.Enabled(nil, slog.LevelError) {
		t.Error("handler with nil sink reports enabled")
	}
}

// TestParseLogLevel covers the flag mapping including the empty default
// and the error case.
func TestParseLogLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want slog.Level
		ok   bool
	}{
		{"debug", slog.LevelDebug, true},
		{"info", slog.LevelInfo, true},
		{"", slog.LevelInfo, true},
		{"warn", slog.LevelWarn, true},
		{"error", slog.LevelError, true},
		{"loud", 0, false},
	} {
		got, err := ParseLogLevel(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

// TestSharedSinkSpansAndLogsRace hammers one LineSink from the span
// Tracer and the log Handler concurrently — 8 goroutines each emitting
// both record kinds — and checks no line tore: every output line is a
// complete, valid JSON object. Run under -race this is the regression
// test for the shared serialized output path.
func TestSharedSinkSpansAndLogsRace(t *testing.T) {
	var buf bytes.Buffer
	sink := NewLineSink(&buf)
	tracer := NewTracerSink(sink)
	logger := NewLogger(sink, slog.LevelInfo)

	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			clip := fmt.Sprintf("clip-%d", g)
			trace := fmt.Sprintf("t%06d", g+1)
			for i := 0; i < perG; i++ {
				tracer.emit(clip, trace, StageThin, time.Now(), int64(i))
				logger.Info("frame done", "clip", clip, "trace", trace, "frame", i)
			}
		}(g)
	}
	wg.Wait()
	if err := tracer.Close(); err != nil { // shared sink: flush only
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if want := goroutines * perG * 2; len(lines) != want {
		t.Fatalf("got %d lines, want %d", len(lines), want)
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d tore (not valid JSON): %v\n%s", i, err, line)
		}
		if _, ok := m["t_us"]; !ok {
			t.Fatalf("line %d missing t_us: %s", i, line)
		}
	}
}

// TestLineSinkCloseIdempotent checks Close flushes, closes the
// underlying closer exactly once, and is safe on nil.
func TestLineSinkCloseIdempotent(t *testing.T) {
	cc := &countingCloser{}
	sink := NewLineSink(cc)
	b := sink.line()
	b = append(b, "x\n"...)
	sink.commit(b)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if cc.closes != 1 {
		t.Errorf("underlying closer closed %d times, want 1", cc.closes)
	}
	if cc.buf.String() != "x\n" {
		t.Errorf("flushed %q, want %q", cc.buf.String(), "x\n")
	}
	var nilSink *LineSink
	if err := nilSink.Close(); err != nil {
		t.Errorf("nil sink Close = %v", err)
	}
	if err := nilSink.Flush(); err != nil {
		t.Errorf("nil sink Flush = %v", err)
	}
}

type countingCloser struct {
	buf    bytes.Buffer
	closes int
}

func (c *countingCloser) Write(p []byte) (int, error) { return c.buf.Write(p) }
func (c *countingCloser) Close() error                { c.closes++; return nil }
