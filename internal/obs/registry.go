package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Registry is a named collection of instruments. Counter/Gauge/Histogram
// are get-or-create: the first caller for a name allocates the
// instrument, later callers share it, so independent pipeline layers can
// resolve the same metric by name. All methods are safe for concurrent
// use; the hot path never touches the registry (instruments are resolved
// once and then updated via their own atomics).
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	funcs  map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		funcs:  make(map[string]func() int64),
	}
}

// Counter returns the named counter, creating it on first use.
// Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
// Returns nil (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (bounds are ignored if the name already exists).
// Returns nil (a no-op histogram) on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// RegisterFunc registers a pull-style metric: fn is invoked at snapshot
// time. Use for values owned elsewhere (e.g. the imaging pool's
// package-level hit/miss counters). Re-registering a name replaces the
// previous function. No-op on a nil registry.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// MetricValue is one named scalar in a snapshot.
type MetricValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// MetricHistogram is one named histogram in a snapshot.
type MetricHistogram struct {
	Name string `json:"name"`
	HistogramSnapshot
}

// Snapshot is a deterministic point-in-time view of a registry:
// every slice is sorted by name so encoding it is reproducible.
type Snapshot struct {
	Counters   []MetricValue     `json:"counters"`
	Gauges     []MetricValue     `json:"gauges"`
	Histograms []MetricHistogram `json:"histograms"`
}

// Snapshot captures every instrument. The maps are walked under the
// registry lock and the results sorted by name, so two snapshots of an
// idle registry are byte-identical when encoded.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	type pull struct {
		name string
		fn   func() int64
	}
	r.mu.Lock()
	snap := Snapshot{
		Counters:   make([]MetricValue, 0, len(r.counts)+len(r.funcs)),
		Gauges:     make([]MetricValue, 0, len(r.gauges)),
		Histograms: make([]MetricHistogram, 0, len(r.hists)),
	}
	for name, c := range r.counts {
		snap.Counters = append(snap.Counters, MetricValue{Name: name, Value: c.Value()})
	}
	pulls := make([]pull, 0, len(r.funcs))
	for name, fn := range r.funcs {
		pulls = append(pulls, pull{name: name, fn: fn})
	}
	for name, g := range r.gauges {
		snap.Gauges = append(snap.Gauges, MetricValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		snap.Histograms = append(snap.Histograms, MetricHistogram{Name: name, HistogramSnapshot: h.Snapshot()})
	}
	r.mu.Unlock()
	// Pull functions run outside the lock (they may be arbitrarily slow or
	// re-enter the registry) and in sorted order, so call order is stable.
	sort.Slice(pulls, func(i, j int) bool { return pulls[i].name < pulls[j].name })
	for _, p := range pulls {
		snap.Counters = append(snap.Counters, MetricValue{Name: p.name, Value: p.fn()})
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}

// WriteJSON writes the current snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		return fmt.Errorf("obs: encoding snapshot: %w", err)
	}
	return nil
}

// PublishExpvar exposes the registry under the given expvar name (the
// standard /debug/vars page). Publishing the same name twice is a no-op
// (expvar panics on duplicates, so the second registration is skipped).
// No-op on a nil registry.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
