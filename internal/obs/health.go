// Health: the SLO evaluator and the run's admission-control verdict.
// The evaluator rides the Sampler's tick (SetOnTick) so there is no
// second timing goroutine; each tick re-evaluates every objective and
// folds the worst level into one Verdict served at /debug/health and
// exported as the slj_slo_* / slj_health_state Prometheus series.
// Future sljserve admission control is one call: Health() == Ready.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Verdict is the whole-process health state: the worst level across
// all evaluated objectives.
type Verdict int

// Verdicts, in increasing severity.
const (
	VerdictReady Verdict = iota
	VerdictDegraded
	VerdictFailing
)

var verdictNames = [...]string{"ready", "degraded", "failing"}

// String returns "ready", "degraded" or "failing".
func (v Verdict) String() string {
	if v < 0 || int(v) >= len(verdictNames) {
		return "unknown"
	}
	return verdictNames[v]
}

// MarshalJSON renders the verdict as its name.
func (v Verdict) MarshalJSON() ([]byte, error) {
	return json.Marshal(v.String())
}

// UnmarshalJSON parses the name form written by MarshalJSON.
func (v *Verdict) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for i, n := range verdictNames {
		if n == s {
			*v = Verdict(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown verdict %q", s)
}

// sloGauges is one objective's exported gauge set. Burn rates are
// exported in milli-units (registry values are int64): a burn of 1.0
// reads as 1000.
type sloGauges struct {
	level    *Gauge
	burnFast *Gauge
	burnSlow *Gauge
}

// HealthEvaluator evaluates a set of SLOSpecs on every sampler tick
// and keeps the latest per-objective states plus the folded verdict.
// All methods are safe on a nil evaluator (which reports Ready, the
// uninstrumented default).
type HealthEvaluator struct {
	reg     *Registry
	smp     *Sampler
	journal *Journal
	specs   []SLOSpec
	gauges  []sloGauges
	stateG  *Gauge

	stopped atomic.Bool

	mu      sync.Mutex
	states  []SLOState
	verdict Verdict
	ticks   int64
}

// NewHealthEvaluator builds an evaluator over the registry, sampler
// and journal (sampler and journal may be nil: the fast window is
// then empty and breach reasons carry no exemplar traces). Spec
// validation errors are returned before anything registers.
func NewHealthEvaluator(reg *Registry, smp *Sampler, journal *Journal, specs []SLOSpec) (*HealthEvaluator, error) {
	if reg == nil {
		return nil, nil
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	h := &HealthEvaluator{reg: reg, smp: smp, journal: journal, specs: specs}
	h.stateG = reg.Gauge("health.state")
	for _, s := range specs {
		// Gauge names are built from the validated spec name; the
		// lowercase-token grammar is enforced by Validate above, which
		// is why these computed registrations stay out of metricnames'
		// literal-name audit.
		h.gauges = append(h.gauges, sloGauges{
			level:    reg.Gauge("slo." + s.Name + ".level"),
			burnFast: reg.Gauge("slo." + s.Name + ".burn_fast_milli"),
			burnSlow: reg.Gauge("slo." + s.Name + ".burn_slow_milli"),
		})
	}
	return h, nil
}

// Eval re-evaluates every objective now. It is the Sampler.SetOnTick
// callback, but tests (and CLI.Stop, for one final verdict) call it
// directly. No-op after Stop, so a shutdown's verdict is final.
func (h *HealthEvaluator) Eval() {
	if h == nil || h.stopped.Load() {
		return
	}
	ts := h.smp.Series()
	snap := h.reg.Snapshot()
	states := make([]SLOState, len(h.specs))
	verdict := VerdictReady
	for i, spec := range h.specs {
		st := spec.Eval(ts, snap)
		if st.Level != SLOOK.String() && spec.Class != ErrClassNone {
			st.Trace = h.journal.LastTrace(spec.Class)
			if st.Trace != "" {
				st.Reason += " (trace " + st.Trace + ")"
			}
		}
		states[i] = st
		var level SLOLevel
		switch st.Level {
		case SLODegraded.String():
			level = SLODegraded
		case SLOFailing.String():
			level = SLOFailing
		}
		h.gauges[i].level.Set(int64(level))
		h.gauges[i].burnFast.Set(int64(st.BurnFast * 1000))
		h.gauges[i].burnSlow.Set(int64(st.BurnSlow * 1000))
		if Verdict(level) > verdict {
			verdict = Verdict(level)
		}
	}
	h.stateG.Set(int64(verdict))
	h.mu.Lock()
	h.states = states
	h.verdict = verdict
	h.ticks++
	h.mu.Unlock()
}

// Stop freezes the evaluator: subsequent Eval calls (a sampler tick
// racing shutdown) are no-ops. Idempotent, nil-safe.
func (h *HealthEvaluator) Stop() {
	if h == nil {
		return
	}
	h.stopped.Store(true)
}

// Stopped reports whether Stop was called.
func (h *HealthEvaluator) Stopped() bool {
	return h != nil && h.stopped.Load()
}

// Health returns the folded verdict of the latest evaluation. A nil
// evaluator — observability off — is Ready.
func (h *HealthEvaluator) Health() Verdict {
	if h == nil {
		return VerdictReady
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.verdict
}

// Ready is the admission predicate handed to serving layers: admit
// new work only while the run is fully healthy.
func (h *HealthEvaluator) Ready() bool {
	return h.Health() == VerdictReady
}

// HealthSchema versions the /debug/health JSON layout.
const HealthSchema = 1

// HealthSnapshot is the /debug/health view.
type HealthSnapshot struct {
	Schema  int        `json:"schema"`
	Verdict Verdict    `json:"verdict"`
	Ready   bool       `json:"ready"`
	Ticks   int64      `json:"ticks"`
	SLOs    []SLOState `json:"slos"`
	Reasons []string   `json:"reasons,omitempty"`
}

// Snapshot captures the latest evaluation. Safe on nil (a Ready
// snapshot with no objectives).
func (h *HealthEvaluator) Snapshot() HealthSnapshot {
	snap := HealthSnapshot{Schema: HealthSchema, Ready: true}
	if h == nil {
		snap.Verdict = VerdictReady
		return snap
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	snap.Verdict = h.verdict
	snap.Ready = h.verdict == VerdictReady
	snap.Ticks = h.ticks
	snap.SLOs = append(snap.SLOs, h.states...)
	for _, st := range h.states {
		if st.Reason != "" {
			snap.Reasons = append(snap.Reasons, st.Name+": "+st.Reason)
		}
	}
	return snap
}

// WriteJSON writes the current snapshot as indented JSON (the
// /debug/health payload and the -health-out artifact).
func (h *HealthEvaluator) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(h.Snapshot()); err != nil {
		return fmt.Errorf("obs: encoding health snapshot: %w", err)
	}
	return nil
}
