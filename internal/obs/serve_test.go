package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func mustGet(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return string(body)
}

// TestServePromAndTimeseries covers the two new consumption endpoints:
// Prometheus text exposition and the sampler's JSON series.
func TestServePromAndTimeseries(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served.metric").Add(7)
	reg.Histogram("stage.thin.ns", []int64{10, 100}).Observe(50)
	smp := NewSampler(reg, time.Second, 8)
	smp.sample(reg.Snapshot(), time.Second)

	srv, err := Serve("127.0.0.1:0", reg, smp)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	prom := mustGet(t, srv.Addr(), "/debug/metrics.prom")
	for _, want := range []string{
		"# TYPE slj_served_metric_total counter",
		"slj_served_metric_total 7",
		`slj_stage_thin_ns_bucket{le="+Inf"} 1`,
		"slj_stage_thin_ns_count 1",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/debug/metrics.prom missing %q:\n%s", want, prom)
		}
	}

	var ts TimeSeries
	if err := json.Unmarshal([]byte(mustGet(t, srv.Addr(), "/debug/timeseries")), &ts); err != nil {
		t.Fatalf("/debug/timeseries invalid JSON: %v", err)
	}
	if ts.Ticks != 1 || len(ts.Series) == 0 {
		t.Errorf("timeseries ticks=%d series=%d, want 1 tick and some series", ts.Ticks, len(ts.Series))
	}
	if _, ok := ts.Latest("served.metric.rate"); !ok {
		t.Error("served.metric.rate missing from /debug/timeseries")
	}
}

// TestServeCloseWaitsForInFlightScrape is the regression test for the
// abrupt-teardown bug: Server.Close used http.Server.Close, which cut
// connections mid-response, so a /debug/metrics scrape racing CLI.Stop
// saw a truncated body. A slow pull metric keeps the handler busy while
// Close runs; the scrape must still complete with valid, full JSON.
func TestServeCloseWaitsForInFlightScrape(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served.metric").Add(7)
	entered := make(chan struct{})
	reg.RegisterFunc("slow.metric", func() int64 {
		close(entered)
		time.Sleep(300 * time.Millisecond)
		return 42
	})
	srv, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}

	type scrape struct {
		body string
		err  error
	}
	got := make(chan scrape, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/debug/metrics")
		if err != nil {
			got <- scrape{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- scrape{body: string(body), err: err}
	}()

	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("scrape never reached the handler")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close during in-flight scrape: %v", err)
	}
	s := <-got
	if s.err != nil {
		t.Fatalf("in-flight scrape killed by Close: %v", s.err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(s.body), &snap); err != nil {
		t.Fatalf("scrape body truncated by Close: %v\n%q", err, s.body)
	}
	found := false
	for _, c := range snap.Counters {
		if c.Name == "slow.metric" && c.Value == 42 {
			found = true
		}
	}
	if !found {
		t.Errorf("scrape completed without the slow metric: %s", s.body)
	}

	// After Close the listener is gone: new scrapes fail fast.
	if _, err := http.Get("http://" + srv.Addr() + "/debug/metrics"); err == nil {
		t.Error("GET after Close succeeded; listener should be closed")
	}
}
