package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func mustGet(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return string(body)
}

// TestServePromAndTimeseries covers the two new consumption endpoints:
// Prometheus text exposition and the sampler's JSON series.
func TestServePromAndTimeseries(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served.metric").Add(7)
	reg.Histogram("stage.thin.ns", []int64{10, 100}).Observe(50)
	smp := NewSampler(reg, time.Second, 8)
	smp.sample(reg.Snapshot(), time.Second)

	srv, err := Serve("127.0.0.1:0", reg, smp)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	prom := mustGet(t, srv.Addr(), "/debug/metrics.prom")
	for _, want := range []string{
		"# TYPE slj_served_metric_total counter",
		"slj_served_metric_total 7",
		`slj_stage_thin_ns_bucket{le="+Inf"} 1`,
		"slj_stage_thin_ns_count 1",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/debug/metrics.prom missing %q:\n%s", want, prom)
		}
	}

	var ts TimeSeries
	if err := json.Unmarshal([]byte(mustGet(t, srv.Addr(), "/debug/timeseries")), &ts); err != nil {
		t.Fatalf("/debug/timeseries invalid JSON: %v", err)
	}
	if ts.Ticks != 1 || len(ts.Series) == 0 {
		t.Errorf("timeseries ticks=%d series=%d, want 1 tick and some series", ts.Ticks, len(ts.Series))
	}
	if _, ok := ts.Latest("served.metric.rate"); !ok {
		t.Error("served.metric.rate missing from /debug/timeseries")
	}
}

// TestServeCloseWaitsForInFlightScrape is the regression test for the
// abrupt-teardown bug: Server.Close used http.Server.Close, which cut
// connections mid-response, so a /debug/metrics scrape racing CLI.Stop
// saw a truncated body. A slow pull metric keeps the handler busy while
// Close runs; the scrape must still complete with valid, full JSON.
func TestServeCloseWaitsForInFlightScrape(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served.metric").Add(7)
	entered := make(chan struct{})
	reg.RegisterFunc("slow.metric", func() int64 {
		close(entered)
		time.Sleep(300 * time.Millisecond)
		return 42
	})
	srv, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}

	type scrape struct {
		body string
		err  error
	}
	got := make(chan scrape, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/debug/metrics")
		if err != nil {
			got <- scrape{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- scrape{body: string(body), err: err}
	}()

	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("scrape never reached the handler")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close during in-flight scrape: %v", err)
	}
	s := <-got
	if s.err != nil {
		t.Fatalf("in-flight scrape killed by Close: %v", s.err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(s.body), &snap); err != nil {
		t.Fatalf("scrape body truncated by Close: %v\n%q", err, s.body)
	}
	found := false
	for _, c := range snap.Counters {
		if c.Name == "slow.metric" && c.Value == 42 {
			found = true
		}
	}
	if !found {
		t.Errorf("scrape completed without the slow metric: %s", s.body)
	}

	// After Close the listener is gone: new scrapes fail fast.
	if _, err := http.Get("http://" + srv.Addr() + "/debug/metrics"); err == nil {
		t.Error("GET after Close succeeded; listener should be closed")
	}
}

// TestServeErrorsAndHealthEndpoints covers the flight-recorder
// endpoints: /debug/errors serves the journal with exemplars, and
// /debug/health serves the verdict — 200 while ready or degraded, 503
// only once the process is failing its SLOs.
func TestServeErrorsAndHealthEndpoints(t *testing.T) {
	reg := NewRegistry()
	smp := NewSampler(reg, time.Hour, 8)
	journal := NewJournal(reg, 32)
	health, err := NewHealthEvaluator(reg, smp, journal, []SLOSpec{
		{Name: "decode_errors", Kind: SLORatio, Bad: "errors.decode",
			Total: "dataset.clips_streamed", Budget: 0.01,
			FailingBurn: 2, Class: ErrClassDecode},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeWith("127.0.0.1:0", ServeConfig{
		Registry: reg, Sampler: smp, Journal: journal, Health: health,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Healthy: empty journal, ready verdict, both endpoints 200. The
	// tick establishes the sampler's rate baseline for the later ones.
	smp.Tick()
	health.Eval()
	var js JournalSnapshot
	if err := json.Unmarshal([]byte(mustGet(t, srv.Addr(), "/debug/errors")), &js); err != nil {
		t.Fatalf("/debug/errors invalid JSON: %v", err)
	}
	if js.Total != 0 || js.Schema != JournalSchema {
		t.Errorf("fresh /debug/errors = %+v", js)
	}
	var hs HealthSnapshot
	if err := json.Unmarshal([]byte(mustGet(t, srv.Addr(), "/debug/health")), &hs); err != nil {
		t.Fatalf("/debug/health invalid JSON: %v", err)
	}
	if hs.Verdict != VerdictReady || !hs.Ready {
		t.Errorf("fresh /debug/health = %+v", hs)
	}

	// One decode error against ten clips: degraded, still 200, and the
	// journal entry and the health reason share one trace ID.
	reg.Counter("dataset.clips_streamed").Add(10)
	journal.Record(ErrClassDecode, "t000009", "clip-bad", -1, "torn header")
	health.Eval()
	if err := json.Unmarshal([]byte(mustGet(t, srv.Addr(), "/debug/errors")), &js); err != nil {
		t.Fatal(err)
	}
	if js.Total != 1 || len(js.Classes) != 1 || js.Classes[0].Exemplars[0].Trace != "t000009" {
		t.Errorf("degraded /debug/errors = %+v", js)
	}
	body := mustGet(t, srv.Addr(), "/debug/health") // degraded still answers 200
	if err := json.Unmarshal([]byte(body), &hs); err != nil {
		t.Fatal(err)
	}
	if hs.Verdict != VerdictDegraded || hs.Ready {
		t.Errorf("degraded /debug/health = %+v", hs)
	}
	if !strings.Contains(body, "t000009") {
		t.Errorf("/debug/health reason missing the journal trace ID:\n%s", body)
	}

	// Both windows hot: failing answers 503 with the snapshot attached.
	smp.Tick() // fast window now sees the error rate
	health.Eval()
	resp, err := http.Get("http://" + srv.Addr() + "/debug/health")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("failing /debug/health status = %d, want 503\n%s", resp.StatusCode, body2)
	}
	if err := json.Unmarshal(body2, &hs); err != nil || hs.Verdict != VerdictFailing {
		t.Errorf("failing /debug/health body = %+v (%v)", hs, err)
	}
}

// TestServeCloseStopsHealthAndFlushesLogs extends the shutdown
// contract: Close must freeze the SLO evaluator (no late tick flips the
// verdict after shutdown) and flush the log sink so the run's last
// events are on disk before Close returns.
func TestServeCloseStopsHealthAndFlushesLogs(t *testing.T) {
	reg := NewRegistry()
	smp := NewSampler(reg, time.Hour, 8)
	journal := NewJournal(reg, 32)
	health, err := NewHealthEvaluator(reg, smp, journal, DefaultSLOs())
	if err != nil {
		t.Fatal(err)
	}
	var logBuf syncBuffer
	sink := NewLineSink(&logBuf)
	logger := NewLogger(sink, 0)

	srv, err := ServeWith("127.0.0.1:0", ServeConfig{
		Registry: reg, Sampler: smp, Journal: journal,
		Health: health, LogSink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("last words") // buffered in the sink, not yet flushed
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if !health.Stopped() {
		t.Error("Close did not stop the health evaluator")
	}
	if got := logBuf.String(); !strings.Contains(got, "last words") {
		t.Errorf("Close did not flush the log sink; got %q", got)
	}
	// A late sampler tick after Close must not re-evaluate the verdict.
	reg.Counter("dataset.clips_streamed").Add(1)
	journal.Record(ErrClassDecode, "t000001", "late", -1, "late error")
	health.Eval()
	if got := health.Health(); got != VerdictReady {
		t.Errorf("late Eval after Close changed verdict to %v", got)
	}
}

// syncBuffer guards a bytes-like buffer; the sink flushes from Close
// while the test goroutine reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
