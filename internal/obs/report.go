package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// RunReportSchema versions the RUN_REPORT.json layout. Schema 2 added
// the optional health and errors sections (older readers ignore them;
// CompareRunReports never gates on them).
const RunReportSchema = 2

// StageQuantiles summarises one latency histogram in a run report. The
// quantiles are computed from the registry's final histogram snapshot
// with HistogramSnapshot.Quantile, so a report always agrees with the
// /debug/metrics view taken at the same instant.
type StageQuantiles struct {
	Name   string  `json:"name"`
	Count  int64   `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  float64 `json:"p50_ns"`
	P95NS  float64 `json:"p95_ns"`
	P99NS  float64 `json:"p99_ns"`
}

// RunReport is the durable end-of-run summary CLI.Stop writes under
// -report: wall time, throughput, per-stage latency quantiles, pool and
// worker statistics, and every raw counter/gauge for drill-down. Two
// reports from identical runs on the same machine differ only in
// timings.
type RunReport struct {
	Schema      int    `json:"schema"`
	GeneratedAt string `json:"generated_at"` // RFC3339
	WallNS      int64  `json:"wall_ns"`

	Frames     int64   `json:"frames"`
	Clips      int64   `json:"clips"`
	FramesPerS float64 `json:"frames_per_s"`
	ClipsPerS  float64 `json:"clips_per_s"`

	// StallRatio is parallel.stall_ns over the run's wall time; values
	// above the worker count mean the pipeline was mostly waiting.
	StallRatio float64 `json:"stall_ratio"`
	// PoolHitRate is imaging pool hits/(hits+misses) across the run.
	PoolHitRate float64 `json:"pool_hit_rate"`

	Stages   []StageQuantiles `json:"stages"`
	Counters []MetricValue    `json:"counters"`
	Gauges   []MetricValue    `json:"gauges"`

	// Health is the final SLO verdict and Errors the error-journal
	// summary; both are attached by CLI.Stop when the subsystems ran.
	Health *HealthSnapshot  `json:"health,omitempty"`
	Errors *JournalSnapshot `json:"errors,omitempty"`
}

// BuildRunReport derives a report from a final registry snapshot and the
// run's wall time. Every histogram in the snapshot contributes a
// StageQuantiles row (sorted by name); counters and gauges are carried
// through verbatim.
func BuildRunReport(snap Snapshot, wall time.Duration, generatedAt time.Time) RunReport {
	r := RunReport{
		Schema:      RunReportSchema,
		GeneratedAt: generatedAt.UTC().Format(time.RFC3339),
		WallNS:      wall.Nanoseconds(),
		Counters:    snap.Counters,
		Gauges:      snap.Gauges,
	}
	counters := indexValues(snap.Counters)
	r.Frames = counters["pipeline.frames"]
	r.Clips = counters["parallel.items"]
	if secs := wall.Seconds(); secs > 0 {
		r.FramesPerS = float64(r.Frames) / secs
		r.ClipsPerS = float64(r.Clips) / secs
	}
	if wall > 0 {
		r.StallRatio = float64(counters["parallel.stall_ns"]) / float64(wall.Nanoseconds())
	}
	if hm := counters["imaging.pool.hits"] + counters["imaging.pool.misses"]; hm > 0 {
		r.PoolHitRate = float64(counters["imaging.pool.hits"]) / float64(hm)
	}
	for _, h := range snap.Histograms {
		hs := h.HistogramSnapshot
		sq := StageQuantiles{
			Name:  h.Name,
			Count: hs.Count,
			P50NS: hs.Quantile(0.50),
			P95NS: hs.Quantile(0.95),
			P99NS: hs.Quantile(0.99),
		}
		if hs.Count > 0 {
			sq.MeanNS = float64(hs.Sum) / float64(hs.Count)
		}
		r.Stages = append(r.Stages, sq)
	}
	sort.Slice(r.Stages, func(i, j int) bool { return r.Stages[i].Name < r.Stages[j].Name })
	return r
}

// WriteJSON writes the report as indented JSON.
func (r RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("obs: encoding run report: %w", err)
	}
	return nil
}

// WriteMarkdown renders the report as a human-readable markdown summary
// (the .md sibling of RUN_REPORT.json).
func (r RunReport) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# Run report\n\n")
	fmt.Fprintf(&b, "- generated: %s\n", r.GeneratedAt)
	fmt.Fprintf(&b, "- wall time: %s\n", time.Duration(r.WallNS))
	fmt.Fprintf(&b, "- frames: %d (%.1f frames/s)\n", r.Frames, r.FramesPerS)
	fmt.Fprintf(&b, "- clips: %d (%.2f clips/s)\n", r.Clips, r.ClipsPerS)
	fmt.Fprintf(&b, "- stall ratio: %.3f · pool hit rate: %.1f%%\n", r.StallRatio, 100*r.PoolHitRate)
	if r.Health != nil {
		fmt.Fprintf(&b, "- health: **%s**\n", r.Health.Verdict)
		for _, reason := range r.Health.Reasons {
			fmt.Fprintf(&b, "  - %s\n", reason)
		}
	}
	if r.Errors != nil && r.Errors.Total > 0 {
		fmt.Fprintf(&b, "- errors: %d journaled\n", r.Errors.Total)
	}
	fmt.Fprintf(&b, "\n## Latency quantiles\n\n")
	fmt.Fprintf(&b, "| histogram | count | mean | p50 | p95 | p99 |\n")
	fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---:|\n")
	for _, s := range r.Stages {
		fmt.Fprintf(&b, "| %s | %d | %s | %s | %s | %s |\n", s.Name, s.Count,
			fmtNS(s.MeanNS), fmtNS(s.P50NS), fmtNS(s.P95NS), fmtNS(s.P99NS))
	}
	fmt.Fprintf(&b, "\n## Counters\n\n| name | value |\n|---|---:|\n")
	for _, c := range r.Counters {
		fmt.Fprintf(&b, "| %s | %d |\n", c.Name, c.Value)
	}
	fmt.Fprintf(&b, "\n## Gauges\n\n| name | value |\n|---|---:|\n")
	for _, g := range r.Gauges {
		fmt.Fprintf(&b, "| %s | %d |\n", g.Name, g.Value)
	}
	if r.Errors != nil && len(r.Errors.Classes) > 0 {
		fmt.Fprintf(&b, "\n## Errors\n\n| class | count | last trace | last clip |\n|---|---:|---|---|\n")
		for _, c := range r.Errors.Classes {
			trace, clip := "", ""
			if n := len(c.Exemplars); n > 0 {
				trace, clip = c.Exemplars[n-1].Trace, c.Exemplars[n-1].Clip
			}
			fmt.Fprintf(&b, "| %s | %d | %s | %s |\n", c.Class, c.Count, trace, clip)
		}
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("obs: writing run report markdown: %w", err)
	}
	return nil
}

// fmtNS renders nanoseconds with an adaptive unit, for markdown and the
// sljtop dashboard.
func fmtNS(ns float64) string {
	switch {
	case ns <= 0:
		return "0"
	case ns < 1_000:
		return fmt.Sprintf("%.0fns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.1fµs", ns/1_000)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%.1fms", ns/1_000_000)
	default:
		return fmt.Sprintf("%.2fs", ns/1_000_000_000)
	}
}

// FormatNS is fmtNS for external consumers (cmd/sljtop).
func FormatNS(ns float64) string { return fmtNS(ns) }

// LoadRunReport reads a report written by WriteJSON.
func LoadRunReport(path string) (RunReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return RunReport{}, fmt.Errorf("obs: reading run report: %w", err)
	}
	var r RunReport
	if err := json.Unmarshal(data, &r); err != nil {
		return RunReport{}, fmt.Errorf("obs: parsing run report %s: %w", path, err)
	}
	return r, nil
}

// CompareRunReports gates cur against base the way benchjson -compare
// gates benchmarks: per-histogram p50/p95/p99 may grow at most nsPct
// percent, and whole-run frame throughput may drop at most tputPct
// percent. Histograms new since the baseline pass; empty histograms are
// skipped (quantiles of nothing are noise). The returned strings
// describe each regression; an empty slice means the gate passed.
func CompareRunReports(base, cur RunReport, nsPct, tputPct float64) []string {
	var regressions []string
	baseStages := make(map[string]StageQuantiles, len(base.Stages))
	for _, s := range base.Stages {
		baseStages[s.Name] = s
	}
	for _, s := range cur.Stages {
		b, ok := baseStages[s.Name]
		if !ok || b.Count == 0 || s.Count == 0 {
			continue
		}
		for _, q := range []struct {
			label     string
			base, cur float64
		}{
			{"p50", b.P50NS, s.P50NS},
			{"p95", b.P95NS, s.P95NS},
			{"p99", b.P99NS, s.P99NS},
		} {
			if q.base <= 0 {
				continue
			}
			limit := q.base * (1 + nsPct/100)
			if q.cur > limit {
				regressions = append(regressions, fmt.Sprintf(
					"%s %s: %s > limit %s (baseline %s, +%.0f%%)",
					s.Name, q.label, fmtNS(q.cur), fmtNS(limit), fmtNS(q.base), nsPct))
			}
		}
	}
	if base.FramesPerS > 0 && cur.FramesPerS > 0 {
		floor := base.FramesPerS * (1 - tputPct/100)
		if cur.FramesPerS < floor {
			regressions = append(regressions, fmt.Sprintf(
				"frames/s: %.1f < floor %.1f (baseline %.1f, -%.0f%%)",
				cur.FramesPerS, floor, base.FramesPerS, tputPct))
		}
	}
	return regressions
}
