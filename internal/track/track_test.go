package track

import (
	"errors"
	"math"
	"testing"

	"repro/internal/extract"
	"repro/internal/imaging"
	"repro/internal/pose"
	"repro/internal/synth"
)

func TestAlphaBetaValidation(t *testing.T) {
	for _, g := range [][2]float64{{0, 0.5}, {1.5, 0.5}, {0.5, 0}, {0.5, -1}} {
		if _, err := NewAlphaBeta(g[0], g[1]); !errors.Is(err, ErrBadGain) {
			t.Errorf("gains %v accepted", g)
		}
	}
	if _, err := NewAlphaBeta(0.7, 0.3); err != nil {
		t.Fatal(err)
	}
}

func TestAlphaBetaTracksConstantVelocity(t *testing.T) {
	f, err := NewAlphaBeta(0.6, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Target moves at 3 px/frame; after convergence the velocity
	// estimate should approach 3 and the residual should shrink.
	for i := 0; i < 60; i++ {
		f.Update(float64(3 * i))
	}
	if math.Abs(f.Velocity()-3) > 0.2 {
		t.Errorf("velocity = %v, want ≈ 3", f.Velocity())
	}
	if math.Abs(f.Position()-3*59) > 2 {
		t.Errorf("position = %v, want ≈ %v", f.Position(), 3*59)
	}
}

func TestAlphaBetaPredictCoasts(t *testing.T) {
	f, err := NewAlphaBeta(0.8, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		f.Update(float64(2 * i))
	}
	p0 := f.Position()
	p1 := f.Predict()
	p2 := f.Predict()
	if p1 <= p0 || p2 <= p1 {
		t.Error("prediction should keep moving with the estimated velocity")
	}
	if math.Abs((p2-p1)-(p1-p0)) > 0.5 {
		t.Error("coasting velocity should be constant")
	}
}

func TestAlphaBetaSmoothsNoise(t *testing.T) {
	f, err := NewAlphaBeta(0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Static target with ±4 px alternating noise: the filtered position
	// must stay closer to the truth than the raw measurements.
	var worst float64
	for i := 0; i < 100; i++ {
		noise := 4.0
		if i%2 == 0 {
			noise = -4.0
		}
		got := f.Update(100 + noise)
		if i > 20 {
			if d := math.Abs(got - 100); d > worst {
				worst = d
			}
		}
	}
	if worst >= 4 {
		t.Errorf("filtered error %v not better than raw noise 4", worst)
	}
}

func TestNewTrackerValidation(t *testing.T) {
	if _, err := NewTracker(0.7, 0.3, 0); err == nil {
		t.Error("zero minBlob accepted")
	}
	if _, err := NewTracker(0, 0.3, 10); !errors.Is(err, ErrBadGain) {
		t.Error("bad gains accepted")
	}
}

func blobAt(w, h, cx, cy, r int) *imaging.Binary {
	b := imaging.NewBinary(w, h)
	imaging.FillDisc(b, imaging.Pointf{X: float64(cx), Y: float64(cy)}, float64(r))
	return b
}

func TestTrackerFollowsBlob(t *testing.T) {
	tr := DefaultTracker()
	for i := 0; i < 20; i++ {
		obs := tr.Step(blobAt(200, 100, 30+5*i, 50, 8))
		if !obs.Found {
			t.Fatalf("frame %d: blob not found", i)
		}
	}
	last, err := tr.Last()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(last.Smoothed.X-float64(30+5*19)) > 6 {
		t.Errorf("smoothed X = %v, want ≈ %v", last.Smoothed.X, 30+5*19)
	}
	if tr.fx.Velocity() < 3 {
		t.Errorf("x velocity = %v, want ≈ 5", tr.fx.Velocity())
	}
}

func TestTrackerIgnoresSmallNoise(t *testing.T) {
	tr := DefaultTracker()
	obs := tr.Step(blobAt(100, 100, 50, 50, 2)) // ~13 px < minBlob 40
	if obs.Found {
		t.Error("tiny blob accepted as target")
	}
	if _, err := tr.ROI(4, 100, 100); !errors.Is(err, ErrNoTrack) {
		t.Error("ROI available before acquisition")
	}
}

func TestTrackerCoastsThroughOcclusion(t *testing.T) {
	tr := DefaultTracker()
	for i := 0; i < 15; i++ {
		tr.Step(blobAt(300, 100, 40+6*i, 50, 8))
	}
	// Two empty frames: the track must coast forward.
	o1 := tr.Step(imaging.NewBinary(300, 100))
	o2 := tr.Step(imaging.NewBinary(300, 100))
	if !o1.Coasting || !o2.Coasting {
		t.Fatal("coasting not flagged")
	}
	if o2.Smoothed.X <= o1.Smoothed.X {
		t.Error("coasting track did not keep moving")
	}
	roi, err := tr.ROI(5, 300, 100)
	if err != nil {
		t.Fatal(err)
	}
	if roi.Empty() {
		t.Error("coasting ROI is empty")
	}
}

func TestTrackerFootPoint(t *testing.T) {
	tr := DefaultTracker()
	// A vertical bar: foot = bottom row centre.
	b := imaging.NewBinary(60, 80)
	for y := 10; y < 70; y++ {
		for x := 28; x < 33; x++ {
			b.Set(x, y, 1)
		}
	}
	obs := tr.Step(b)
	if obs.FootY != 69 {
		t.Errorf("FootY = %v, want 69", obs.FootY)
	}
	if obs.FootX != 30 {
		t.Errorf("FootX = %v, want 30", obs.FootX)
	}
}

func TestROIClipsToFrame(t *testing.T) {
	tr := DefaultTracker()
	tr.Step(blobAt(100, 100, 5, 5, 8))
	roi, err := tr.ROI(20, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if roi.Min.X < 0 || roi.Min.Y < 0 || roi.Max.X > 100 || roi.Max.Y > 100 {
		t.Errorf("ROI %v exceeds frame", roi)
	}
}

func TestMeasureJumpOnSyntheticClip(t *testing.T) {
	// Full integration: generate a clip, extract silhouettes, track, and
	// measure the jump; the distance must match the spec's JumpSpan.
	spec := synth.DefaultSpec(21)
	clip, err := synth.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := extract.NewExtractor()
	if err != nil {
		t.Fatal(err)
	}
	ex.SetBackground(clip.Background)
	tr := DefaultTracker()
	airborne := make([]bool, len(clip.Frames))
	for i, fr := range clip.Frames {
		sil, err := ex.Extract(fr.Image)
		if err != nil {
			t.Fatal(err)
		}
		tr.Step(sil)
		airborne[i] = fr.Stage == pose.StageAir
	}
	m, err := tr.MeasureJump(airborne)
	if err != nil {
		t.Fatal(err)
	}
	if m.DistancePx < spec.JumpSpan*0.6 || m.DistancePx > spec.JumpSpan*1.5 {
		t.Errorf("measured jump %v px, spec span %v", m.DistancePx, spec.JumpSpan)
	}
	if m.BodyHeights <= 0 {
		t.Error("body-height normalisation missing")
	}
	if m.TakeoffFrame >= m.LandingFrame {
		t.Error("flight boundary frames out of order")
	}
}

func TestMeasureJumpErrors(t *testing.T) {
	tr := DefaultTracker()
	tr.Step(blobAt(100, 100, 50, 50, 8))
	if _, err := tr.MeasureJump([]bool{true, true}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := tr.MeasureJump([]bool{false}); err == nil {
		t.Error("no-flight clip accepted")
	}
	if _, err := tr.MeasureJump([]bool{true}); err == nil {
		t.Error("flight at clip boundary accepted")
	}
}
