// Package track implements the human-detection half of the paper's
// part 1: following the jumper across frames. The extraction algorithm
// of Section 2 is adapted from an object-*tracking* method
// (Polmottawegedara et al., "Tracking Moving Targets", SSST 2006), and a
// practical system needs the track itself — to crop a region of
// interest, to tell the jumper from transient noise, and to measure the
// jump: the horizontal distance between the take-off and landing foot
// positions is the score every PE teacher records.
//
// The tracker is deliberately classical (2008-appropriate): per-frame
// blob detection from the extracted silhouette plus an alpha-beta
// (g-h) filter per axis for smoothing and short-occlusion prediction.
package track

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/imaging"
)

// Errors.
var (
	// ErrNoTrack reports queries against a tracker that has never seen
	// the target.
	ErrNoTrack = errors.New("track: no target acquired")
	// ErrBadGain reports filter gains outside (0, 1].
	ErrBadGain = errors.New("track: filter gains must lie in (0, 1]")
)

// AlphaBeta is a one-dimensional alpha-beta (g-h) tracking filter:
// a fixed-gain steady-state Kalman filter for a constant-velocity
// target. The zero value is not ready; use NewAlphaBeta.
type AlphaBeta struct {
	alpha, beta float64
	pos, vel    float64
	initialized bool
}

// NewAlphaBeta returns a filter with the given gains. Typical smoothing
// gains are alpha ≈ 0.5–0.9, beta ≈ 0.1–0.5.
func NewAlphaBeta(alpha, beta float64) (*AlphaBeta, error) {
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("%w: alpha=%v beta=%v", ErrBadGain, alpha, beta)
	}
	return &AlphaBeta{alpha: alpha, beta: beta}, nil
}

// Update folds one measurement in (dt = 1 frame) and returns the
// filtered position.
func (f *AlphaBeta) Update(measured float64) float64 {
	if !f.initialized {
		f.pos, f.vel, f.initialized = measured, 0, true
		return f.pos
	}
	// Predict.
	pred := f.pos + f.vel
	// Correct.
	r := measured - pred
	f.pos = pred + f.alpha*r
	f.vel += f.beta * r
	return f.pos
}

// Predict advances the filter one frame without a measurement (occlusion
// coasting) and returns the predicted position.
func (f *AlphaBeta) Predict() float64 {
	if !f.initialized {
		return 0
	}
	f.pos += f.vel
	return f.pos
}

// Position returns the current filtered position.
func (f *AlphaBeta) Position() float64 { return f.pos }

// Velocity returns the current velocity estimate (px/frame).
func (f *AlphaBeta) Velocity() float64 { return f.vel }

// Initialized reports whether the filter has seen a measurement.
func (f *AlphaBeta) Initialized() bool { return f.initialized }

// Observation is one frame's detection summary.
type Observation struct {
	// Found reports whether the jumper was detected this frame.
	Found bool
	// Centroid is the raw blob centroid.
	Centroid imaging.Pointf
	// Smoothed is the alpha-beta-filtered centroid.
	Smoothed imaging.Pointf
	// Bounds is the blob's bounding box.
	Bounds imaging.Rect
	// FootX, FootY locate the lowest silhouette point (the foot line),
	// used for jump-distance measurement.
	FootX, FootY float64
	// Coasting reports the track was predicted, not measured.
	Coasting bool
}

// Tracker follows the largest silhouette blob across frames.
type Tracker struct {
	fx, fy   *AlphaBeta
	minBlob  int
	last     Observation
	acquired bool
	// History keeps one observation per processed frame.
	History []Observation
}

// NewTracker builds a tracker. minBlob is the minimum foreground pixel
// count to accept a detection (rejects noise bursts); gains follow
// NewAlphaBeta.
func NewTracker(alpha, beta float64, minBlob int) (*Tracker, error) {
	fx, err := NewAlphaBeta(alpha, beta)
	if err != nil {
		return nil, err
	}
	fy, err := NewAlphaBeta(alpha, beta)
	if err != nil {
		return nil, err
	}
	if minBlob < 1 {
		return nil, fmt.Errorf("track: minBlob %d must be positive", minBlob)
	}
	return &Tracker{fx: fx, fy: fy, minBlob: minBlob}, nil
}

// DefaultTracker returns a tracker with standard gains.
func DefaultTracker() *Tracker {
	t, err := NewTracker(0.7, 0.3, 40)
	if err != nil {
		panic("track: default gains invalid: " + err.Error())
	}
	return t
}

// Step processes one silhouette frame and returns the observation.
func (t *Tracker) Step(sil *imaging.Binary) Observation {
	obs := t.detect(sil)
	if obs.Found {
		obs.Smoothed.X = t.fx.Update(obs.Centroid.X)
		obs.Smoothed.Y = t.fy.Update(obs.Centroid.Y)
		t.acquired = true
	} else if t.acquired {
		obs.Smoothed.X = t.fx.Predict()
		obs.Smoothed.Y = t.fy.Predict()
		obs.Coasting = true
	}
	t.last = obs
	t.History = append(t.History, obs)
	return obs
}

// detect finds the largest blob and its foot point.
func (t *Tracker) detect(sil *imaging.Binary) Observation {
	labels, comps := imaging.Components(sil, imaging.Connect8)
	best := -1
	for i, c := range comps {
		if c.Size >= t.minBlob && (best < 0 || c.Size > comps[best].Size) {
			best = i
		}
	}
	if best < 0 {
		return Observation{}
	}
	c := comps[best]
	want := int32(c.Label)
	var sumX, sumY, n float64
	footY := -1
	footXSum, footXN := 0.0, 0.0
	for y := c.Bounds.Min.Y; y < c.Bounds.Max.Y; y++ {
		for x := c.Bounds.Min.X; x < c.Bounds.Max.X; x++ {
			if labels[y*sil.W+x] != want {
				continue
			}
			sumX += float64(x)
			sumY += float64(y)
			n++
			if y > footY {
				footY = y
				footXSum, footXN = float64(x), 1
			} else if y == footY {
				footXSum += float64(x)
				footXN++
			}
		}
	}
	return Observation{
		Found:    true,
		Centroid: imaging.Pointf{X: sumX / n, Y: sumY / n},
		Bounds:   c.Bounds,
		FootX:    footXSum / footXN,
		FootY:    float64(footY),
	}
}

// Last returns the most recent observation.
func (t *Tracker) Last() (Observation, error) {
	if len(t.History) == 0 {
		return Observation{}, ErrNoTrack
	}
	return t.last, nil
}

// ROI returns the last bounding box expanded by margin pixels and
// clipped to a w×h frame — the crop window for the next frame's
// extraction.
func (t *Tracker) ROI(margin, w, h int) (imaging.Rect, error) {
	if !t.acquired {
		return imaging.Rect{}, ErrNoTrack
	}
	b := t.last.Bounds
	if t.last.Coasting || !t.last.Found {
		// Centre a window of the last box size on the predicted
		// position.
		cw, ch := b.Dx(), b.Dy()
		cx, cy := int(t.fx.Position()), int(t.fy.Position())
		b = imaging.NewRect(cx-cw/2, cy-ch/2, cx+cw/2, cy+ch/2)
	}
	r := imaging.NewRect(b.Min.X-margin, b.Min.Y-margin, b.Max.X+margin, b.Max.Y+margin)
	return r.Intersect(imaging.NewRect(0, 0, w, h)), nil
}

// JumpMeasurement is the geometric outcome of a tracked jump.
type JumpMeasurement struct {
	// TakeoffX and LandingX are the foot positions at the last grounded
	// frame before flight and the first grounded frame after it.
	TakeoffX, LandingX float64
	// DistancePx is the horizontal jump length in pixels.
	DistancePx float64
	// BodyHeights is the jump length in units of the jumper's standing
	// height (bounding-box height of the first frame), the
	// scale-invariant score.
	BodyHeights float64
	// TakeoffFrame and LandingFrame index the flight boundary frames.
	TakeoffFrame, LandingFrame int
}

// AirborneFlags derives per-frame airborne indicators from the tracked
// foot height: the ground line is the lowest foot position seen, and a
// frame is airborne when the foot is more than margin pixels above it.
// This is classifier-independent, so jump measurement works even when
// pose recognition is noisy.
func (t *Tracker) AirborneFlags(margin float64) []bool {
	ground := math.Inf(-1)
	for _, o := range t.History {
		if o.Found && o.FootY > ground {
			ground = o.FootY
		}
	}
	out := make([]bool, len(t.History))
	if math.IsInf(ground, -1) {
		return out
	}
	for i, o := range t.History {
		out[i] = o.Found && o.FootY < ground-margin
	}
	return out
}

// DefaultAirborneMargin is the foot-height threshold for AirborneFlags.
const DefaultAirborneMargin = 5.0

// MeasureJump estimates the jump distance from the tracked history and
// the per-frame airborne flags (true while the jumper is in flight —
// derivable from the ground-truth stage or from the recognised poses).
func (t *Tracker) MeasureJump(airborne []bool) (JumpMeasurement, error) {
	if len(airborne) != len(t.History) {
		return JumpMeasurement{}, fmt.Errorf("track: %d airborne flags for %d observations",
			len(airborne), len(t.History))
	}
	// Use the LONGEST consecutive airborne run: isolated flags from
	// noisy foot-bottom detection (a shadowed heel, a clipped toe) must
	// not be mistaken for the flight phase.
	first, last := -1, -1
	runStart := -1
	for i := 0; i <= len(airborne); i++ {
		if i < len(airborne) && airborne[i] {
			if runStart < 0 {
				runStart = i
			}
			continue
		}
		if runStart >= 0 {
			if first < 0 || i-runStart > last-first+1 {
				first, last = runStart, i-1
			}
			runStart = -1
		}
	}
	if first <= 0 || last >= len(airborne)-1 || last < first {
		return JumpMeasurement{}, errors.New("track: no complete flight phase in clip")
	}
	to := t.History[first-1]
	ld := t.History[last+1]
	if !to.Found || !ld.Found {
		return JumpMeasurement{}, errors.New("track: flight boundary frames lack detections")
	}
	m := JumpMeasurement{
		TakeoffX:     to.FootX,
		LandingX:     ld.FootX,
		DistancePx:   math.Abs(ld.FootX - to.FootX),
		TakeoffFrame: first - 1,
		LandingFrame: last + 1,
	}
	if h := t.History[0].Bounds.Dy(); t.History[0].Found && h > 0 {
		m.BodyHeights = m.DistancePx / float64(h)
	}
	return m, nil
}
