package pose

import (
	"math"
	"testing"

	"repro/internal/imaging"
)

func TestNumPoses(t *testing.T) {
	if NumPoses != 22 {
		t.Fatalf("NumPoses = %d, want 22 (the paper defines 22 poses)", NumPoses)
	}
	if got := len(AllPoses()); got != 22 {
		t.Fatalf("AllPoses = %d entries, want 22", got)
	}
}

func TestPoseValidity(t *testing.T) {
	if PoseUnknown.Valid() {
		t.Error("PoseUnknown must not be Valid")
	}
	for _, p := range AllPoses() {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	if Pose(99).Valid() {
		t.Error("out-of-range pose reported valid")
	}
}

func TestPoseNamesUniqueAndParseable(t *testing.T) {
	seen := make(map[string]Pose)
	for _, p := range AllPoses() {
		name := p.String()
		if name == "" {
			t.Fatalf("pose %d has empty name", p)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("poses %v and %v share the name %q", prev, p, name)
		}
		seen[name] = p
		back, err := ParsePose(name)
		if err != nil {
			t.Fatalf("ParsePose(%q): %v", name, err)
		}
		if back != p {
			t.Fatalf("ParsePose(%q) = %v, want %v", name, back, p)
		}
	}
	if _, err := ParsePose("no such pose"); err == nil {
		t.Error("ParsePose should fail on unknown names")
	}
	if Pose(99).String() == "" {
		t.Error("out-of-range pose should still stringify")
	}
}

func TestPaperNamedPoses(t *testing.T) {
	// The four poses the paper names explicitly must exist verbatim.
	for name, want := range map[string]Pose{
		"standing & hands overlap with body":            StandHandsAtSides,
		"standing & hands swung forward":                StandHandsForward,
		"knee and foot extended & hands raised forward": TakeoffExtension,
		"waist bended & hands raised forward":           LandCrouch,
	} {
		got, err := ParsePose(name)
		if err != nil {
			t.Errorf("paper pose %q missing: %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("ParsePose(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestStageOf(t *testing.T) {
	tests := []struct {
		p    Pose
		want Stage
	}{
		{StandHandsAtSides, StageBeforeJump},
		{CrouchHandsForward, StageBeforeJump},
		{TakeoffExtension, StageJump},
		{TakeoffToeOff, StageJump},
		{AirAscendArmsUp, StageAir},
		{AirArch, StageAir},
		{LandHeelStrike, StageLanding},
		{LandStepForward, StageLanding},
		{PoseUnknown, StageBeforeJump},
	}
	for _, tt := range tests {
		if got := StageOf(tt.p); got != tt.want {
			t.Errorf("StageOf(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestEveryPoseHasAStage(t *testing.T) {
	count := 0
	for s := StageBeforeJump; s <= StageLanding; s++ {
		ps := PosesInStage(s)
		if len(ps) == 0 {
			t.Errorf("stage %v has no poses", s)
		}
		count += len(ps)
		for _, p := range ps {
			if StageOf(p) != s {
				t.Errorf("PosesInStage(%v) contains %v with stage %v", s, p, StageOf(p))
			}
		}
	}
	if count != NumPoses {
		t.Errorf("stage partition covers %d poses, want %d", count, NumPoses)
	}
}

func TestNextStage(t *testing.T) {
	tests := []struct {
		name string
		cur  Stage
		p    Pose
		want Stage
	}{
		{"advance to jump", StageBeforeJump, TakeoffExtension, StageJump},
		{"advance to air", StageJump, AirTuck, StageAir},
		{"advance to landing", StageAir, LandHeelStrike, StageLanding},
		{"stay within stage", StageBeforeJump, CrouchHandsForward, StageBeforeJump},
		{"no skip before->air", StageBeforeJump, AirTuck, StageBeforeJump},
		{"no skip before->landing", StageBeforeJump, LandCrouch, StageBeforeJump},
		{"no regression", StageLanding, StandHandsAtSides, StageLanding},
		{"unknown keeps stage", StageAir, PoseUnknown, StageAir},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := NextStage(tt.cur, tt.p); got != tt.want {
				t.Errorf("NextStage(%v, %v) = %v, want %v", tt.cur, tt.p, got, tt.want)
			}
		})
	}
}

func TestStageString(t *testing.T) {
	want := map[Stage]string{
		StageBeforeJump: "before jumping",
		StageJump:       "jumping",
		StageAir:        "in the air",
		StageLanding:    "landing",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
		if !s.Valid() {
			t.Errorf("%v should be valid", s)
		}
	}
	if Stage(0).Valid() || Stage(5).Valid() {
		t.Error("out-of-range stages reported valid")
	}
}

func TestFaultPoses(t *testing.T) {
	faults := 0
	for _, p := range AllPoses() {
		if p.IsFault() {
			faults++
		}
	}
	if faults != 3 {
		t.Errorf("fault poses = %d, want 3 (AirArch, LandFallBack, LandStepForward)", faults)
	}
	if StandHandsAtSides.IsFault() {
		t.Error("a standard pose is flagged as fault")
	}
}

func TestEveryPoseHasCanonicalAngles(t *testing.T) {
	for _, p := range AllPoses() {
		if _, ok := canonical[p]; !ok {
			t.Errorf("pose %v has no canonical configuration", p)
		}
	}
}

func TestLerpEndpointsAndMidpoint(t *testing.T) {
	a := JointAngles{TorsoLean: 0, Shoulder: 0}
	b := JointAngles{TorsoLean: 1, Shoulder: 2}
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp t=0 = %+v", got)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp t=1 = %+v", got)
	}
	mid := Lerp(a, b, 0.5)
	if mid.TorsoLean != 0.5 || mid.Shoulder != 1 {
		t.Errorf("Lerp t=0.5 = %+v", mid)
	}
}

func TestComputeStandingGeometry(t *testing.T) {
	root := imaging.Pointf{X: 100, Y: 100}
	s := Compute(root, 100, JointAngles{}, DefaultProportions())
	// Standing at attention: shoulder directly above hip.
	if math.Abs(s.Shoulder.X-root.X) > 1e-9 {
		t.Errorf("shoulder X = %v, want %v", s.Shoulder.X, root.X)
	}
	if s.Shoulder.Y >= root.Y {
		t.Error("shoulder should be above the hip (smaller Y)")
	}
	// Head above shoulder.
	if s.Head.Y >= s.Shoulder.Y {
		t.Error("head should be above the shoulder")
	}
	// Hand hangs below shoulder, near the hip line.
	if s.Hand.Y <= s.Shoulder.Y {
		t.Error("hanging hand should be below the shoulder")
	}
	// Knee and ankle below hip, ankle below knee.
	if !(s.Knee.Y > root.Y && s.Ankle.Y > s.Knee.Y) {
		t.Error("leg joints out of order")
	}
	// Toe forward of ankle for a flat foot.
	if s.Toe.X <= s.Ankle.X {
		t.Error("flat foot should point forward (+X)")
	}
	// Standing height ≈ head top to ankle: proportions should make the
	// ankle-to-head span most of the height.
	span := s.Ankle.Y - s.Head.Y
	if span < 70 || span > 100 {
		t.Errorf("vertical span = %v for height 100, want within [70,100]", span)
	}
}

func TestComputeHandsForward(t *testing.T) {
	root := imaging.Pointf{X: 100, Y: 100}
	s := Compute(root, 100, Angles(StandHandsForward), DefaultProportions())
	if s.Hand.X <= s.Shoulder.X {
		t.Error("hands-forward pose should put the hand ahead of the shoulder")
	}
	// Arm horizontal: hand at roughly shoulder height.
	if math.Abs(s.Hand.Y-s.Shoulder.Y) > 5 {
		t.Errorf("hand Y = %v, shoulder Y = %v; want near-horizontal arm", s.Hand.Y, s.Shoulder.Y)
	}
}

func TestComputeHandsUp(t *testing.T) {
	s := Compute(imaging.Pointf{X: 100, Y: 100}, 100, Angles(StandHandsUp), DefaultProportions())
	if s.Hand.Y >= s.Shoulder.Y {
		t.Error("hands-up pose should put the hand above the shoulder")
	}
}

func TestComputeHandsBackward(t *testing.T) {
	s := Compute(imaging.Pointf{X: 100, Y: 100}, 100, Angles(StandHandsBackward), DefaultProportions())
	if s.Hand.X >= s.Shoulder.X {
		t.Error("backswing should put the hand behind the shoulder")
	}
}

func TestComputeCrouchLowersShoulder(t *testing.T) {
	stand := Compute(imaging.Pointf{X: 100, Y: 100}, 100, Angles(StandHandsAtSides), DefaultProportions())
	crouch := Compute(imaging.Pointf{X: 100, Y: 100}, 100, Angles(CrouchHandsBackward), DefaultProportions())
	// With the same hip root, a crouching torso lean lowers the shoulder.
	if crouch.Shoulder.Y <= stand.Shoulder.Y {
		t.Error("crouch should lower the shoulder relative to standing")
	}
	// Knee comes forward.
	if crouch.Knee.X <= stand.Knee.X {
		t.Error("crouch should bring the knee forward")
	}
	// Heel folds back: ankle behind knee.
	if crouch.Ankle.X >= crouch.Knee.X {
		t.Error("crouch knee flexion should put the ankle behind the knee")
	}
}

func TestComputeTuckRaisesKnee(t *testing.T) {
	s := Compute(imaging.Pointf{X: 100, Y: 100}, 100, Angles(AirTuck), DefaultProportions())
	if s.Knee.Y >= s.Hip.Y {
		t.Error("tuck should raise the knee to or above hip height")
	}
}

func TestComputeFallBackLeansBack(t *testing.T) {
	s := Compute(imaging.Pointf{X: 100, Y: 100}, 100, Angles(LandFallBack), DefaultProportions())
	if s.Shoulder.X >= s.Hip.X {
		t.Error("fall-back fault should lean the shoulder behind the hip")
	}
	if s.Hand.X >= s.Shoulder.X {
		t.Error("fall-back fault should trail the hand behind")
	}
}

func TestLowest(t *testing.T) {
	s := Compute(imaging.Pointf{X: 100, Y: 100}, 100, JointAngles{}, DefaultProportions())
	low := s.Lowest()
	// Standing: the lowest joint is the ankle or toe.
	if low.Y < s.Knee.Y {
		t.Errorf("lowest joint Y = %v above knee %v", low.Y, s.Knee.Y)
	}
}

func TestCanonicalPosesAreDistinct(t *testing.T) {
	// Every pair of canonical configurations must differ in at least one
	// joint by a meaningful margin OR belong to different stages (the
	// stage flag disambiguates — e.g. StandHandsAtSides vs LandStand).
	poses := AllPoses()
	for i := 0; i < len(poses); i++ {
		for j := i + 1; j < len(poses); j++ {
			a, b := Angles(poses[i]), Angles(poses[j])
			d := math.Abs(a.TorsoLean-b.TorsoLean) + math.Abs(a.Shoulder-b.Shoulder) +
				math.Abs(a.Elbow-b.Elbow) + math.Abs(a.Hip-b.Hip) +
				math.Abs(a.Knee-b.Knee) + math.Abs(a.Ankle-b.Ankle)
			if d < 0.1 && StageOf(poses[i]) == StageOf(poses[j]) {
				t.Errorf("poses %v and %v are nearly identical within one stage (Δ=%v)",
					poses[i], poses[j], d)
			}
		}
	}
}

func TestJointsOrder(t *testing.T) {
	s := Compute(imaging.Pointf{X: 0, Y: 0}, 100, JointAngles{}, DefaultProportions())
	js := s.Joints()
	if len(js) != 9 {
		t.Fatalf("Joints() = %d entries, want 9", len(js))
	}
	if js[0] != s.Hip || js[len(js)-1] != s.Toe {
		t.Error("Joints() ordering changed; dependent code assumes root-outward")
	}
}

func TestComputeScalesLinearly(t *testing.T) {
	// Property: doubling the height doubles every joint's offset from
	// the root.
	root := imaging.Pointf{X: 50, Y: 60}
	for _, p := range AllPoses() {
		s1 := Compute(root, 80, Angles(p), DefaultProportions())
		s2 := Compute(root, 160, Angles(p), DefaultProportions())
		j1, j2 := s1.Joints(), s2.Joints()
		for k := range j1 {
			d1 := j1[k].Sub(root)
			d2 := j2[k].Sub(root)
			if math.Abs(d2.X-2*d1.X) > 1e-9 || math.Abs(d2.Y-2*d1.Y) > 1e-9 {
				t.Fatalf("pose %v joint %d does not scale linearly: %v vs %v", p, k, d1, d2)
			}
		}
	}
}

func TestComputeTranslationEquivariance(t *testing.T) {
	a := Compute(imaging.Pointf{X: 0, Y: 0}, 100, Angles(AirTuck), DefaultProportions())
	b := Compute(imaging.Pointf{X: 37, Y: -12}, 100, Angles(AirTuck), DefaultProportions())
	ja, jb := a.Joints(), b.Joints()
	for k := range ja {
		if math.Abs(jb[k].X-ja[k].X-37) > 1e-9 || math.Abs(jb[k].Y-ja[k].Y+12) > 1e-9 {
			t.Fatalf("joint %d not translation-equivariant", k)
		}
	}
}
