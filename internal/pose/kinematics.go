package pose

import (
	"math"

	"repro/internal/imaging"
)

// JointAngles parameterises the side-view body configuration. All angles
// are radians. The model is planar (the camera is "taken from the
// left-hand side of the jumper", so both arms collapse onto one Hand key
// point, and both legs onto one Knee/Foot, exactly as the paper's five
// key points assume). The jumper faces +X; Y grows downward.
//
// Conventions (see dirFromDown): an angle of 0 points straight down,
// +pi/2 points forward (+X), pi points straight up, -pi/2 backward.
type JointAngles struct {
	// TorsoLean is the forward lean of the hip→shoulder axis measured
	// from vertical; positive leans toward the jump direction.
	TorsoLean float64
	// Neck is the head tilt relative to the torso axis; positive nods
	// forward.
	Neck float64
	// Shoulder is the arm swing relative to hanging-along-the-torso;
	// positive swings forward/up (pi points straight overhead).
	Shoulder float64
	// Elbow is the forearm bend relative to the upper arm; positive
	// bends forward.
	Elbow float64
	// Hip is the thigh swing from straight-down in absolute terms;
	// positive brings the knee forward/up.
	Hip float64
	// Knee is the shin flexion relative to the thigh; positive folds the
	// heel backward.
	Knee float64
	// Ankle is the foot pitch relative to flat-forward; positive lifts
	// the toes (heel strike), negative points them (toe-off).
	Ankle float64
}

// Lerp linearly interpolates between two configurations (t in [0,1]);
// used by the choreographer to animate between key poses.
func Lerp(a, b JointAngles, t float64) JointAngles {
	l := func(x, y float64) float64 { return x + (y-x)*t }
	return JointAngles{
		TorsoLean: l(a.TorsoLean, b.TorsoLean),
		Neck:      l(a.Neck, b.Neck),
		Shoulder:  l(a.Shoulder, b.Shoulder),
		Elbow:     l(a.Elbow, b.Elbow),
		Hip:       l(a.Hip, b.Hip),
		Knee:      l(a.Knee, b.Knee),
		Ankle:     l(a.Ankle, b.Ankle),
	}
}

// Proportions gives segment lengths as fractions of total standing height.
type Proportions struct {
	// HeadRadius is the radius of the head disc.
	HeadRadius float64
	// Neck is shoulder→head-centre distance (minus the head radius).
	Neck float64
	// Torso is hip→shoulder.
	Torso float64
	// UpperArm is shoulder→elbow.
	UpperArm float64
	// Forearm is elbow→hand (hand included).
	Forearm float64
	// Thigh is hip→knee.
	Thigh float64
	// Shin is knee→ankle.
	Shin float64
	// Foot is ankle→toe.
	Foot float64
}

// DefaultProportions returns anthropometric defaults (fractions of
// standing height, standard artistic canon).
func DefaultProportions() Proportions {
	return Proportions{
		HeadRadius: 0.070,
		Neck:       0.045,
		Torso:      0.300,
		UpperArm:   0.155,
		Forearm:    0.160,
		Thigh:      0.240,
		Shin:       0.230,
		Foot:       0.100,
	}
}

// Skeleton2D holds the planar joint positions computed from a
// configuration. All points are in image coordinates (Y down).
type Skeleton2D struct {
	Hip      imaging.Pointf // the kinematic root (≈ the paper's waist)
	Chest    imaging.Pointf // 2/3 up the torso
	Shoulder imaging.Pointf
	Head     imaging.Pointf // head centre
	Elbow    imaging.Pointf
	Hand     imaging.Pointf
	Knee     imaging.Pointf
	Ankle    imaging.Pointf
	Toe      imaging.Pointf
}

// dirFromDown maps an angle to a unit vector: 0 → straight down (0,+1),
// +pi/2 → forward (+1,0), pi → straight up (0,-1).
func dirFromDown(a float64) imaging.Pointf {
	return imaging.Pointf{X: math.Sin(a), Y: math.Cos(a)}
}

// Compute places every joint for the configuration a, rooted at the hip
// position, with height the total standing height in pixels.
func Compute(root imaging.Pointf, height float64, a JointAngles, p Proportions) Skeleton2D {
	var s Skeleton2D
	s.Hip = root

	torsoUp := dirFromDown(math.Pi - a.TorsoLean)
	s.Shoulder = root.Add(torsoUp.Scale(p.Torso * height))
	s.Chest = root.Add(torsoUp.Scale(p.Torso * height * 2.0 / 3.0))

	headDir := dirFromDown(math.Pi - a.TorsoLean - a.Neck)
	s.Head = s.Shoulder.Add(headDir.Scale((p.Neck + p.HeadRadius) * height))

	// The arm hangs opposite the torso axis at Shoulder = 0.
	upperDir := dirFromDown(-a.TorsoLean + a.Shoulder)
	s.Elbow = s.Shoulder.Add(upperDir.Scale(p.UpperArm * height))
	foreDir := dirFromDown(-a.TorsoLean + a.Shoulder + a.Elbow)
	s.Hand = s.Elbow.Add(foreDir.Scale(p.Forearm * height))

	thighDir := dirFromDown(a.Hip)
	s.Knee = root.Add(thighDir.Scale(p.Thigh * height))
	shinDir := dirFromDown(a.Hip - a.Knee)
	s.Ankle = s.Knee.Add(shinDir.Scale(p.Shin * height))
	footDir := dirFromDown(math.Pi/2 + a.Ankle)
	s.Toe = s.Ankle.Add(footDir.Scale(p.Foot * height))
	return s
}

// Joints returns the named joints as a slice ordered root-outward; handy
// for tests and for the GA baseline's chromosome decoding.
func (s Skeleton2D) Joints() []imaging.Pointf {
	return []imaging.Pointf{
		s.Hip, s.Chest, s.Shoulder, s.Head, s.Elbow, s.Hand, s.Knee, s.Ankle, s.Toe,
	}
}

// Lowest returns the lowest joint position (largest Y) — the paper's rule
// "no matter what pose it is Foot is always the lowest point" anchors on
// this.
func (s Skeleton2D) Lowest() imaging.Pointf {
	low := s.Hip
	for _, j := range s.Joints() {
		if j.Y > low.Y {
			low = j
		}
	}
	return low
}

func deg(d float64) float64 { return d * math.Pi / 180 }

// canonical holds the reference configuration of each pose.
var canonical = map[Pose]JointAngles{
	StandHandsAtSides:      {},
	StandHandsForward:      {Shoulder: deg(90)},
	StandHandsUp:           {Shoulder: deg(170)},
	StandHandsBackward:     {TorsoLean: deg(10), Shoulder: deg(-50)},
	CrouchHandsBackward:    {TorsoLean: deg(40), Neck: deg(10), Shoulder: deg(-60), Hip: deg(60), Knee: deg(100)},
	CrouchHandsForward:     {TorsoLean: deg(45), Neck: deg(10), Shoulder: deg(30), Elbow: deg(10), Hip: deg(65), Knee: deg(110)},
	TakeoffExtension:       {TorsoLean: deg(25), Shoulder: deg(120), Hip: deg(10), Knee: deg(10), Ankle: deg(-40)},
	TakeoffLean:            {TorsoLean: deg(30), Shoulder: deg(140), Hip: deg(-15), Knee: deg(5), Ankle: deg(-60)},
	TakeoffToeOff:          {TorsoLean: deg(20), Shoulder: deg(150), Hip: deg(-25), Knee: deg(15), Ankle: deg(-80)},
	AirAscendArmsUp:        {TorsoLean: deg(10), Shoulder: deg(160), Hip: deg(30), Knee: deg(50), Ankle: deg(-30)},
	AirTuck:                {TorsoLean: deg(20), Neck: deg(15), Shoulder: deg(120), Hip: deg(100), Knee: deg(125)},
	AirExtendForward:       {TorsoLean: deg(5), Shoulder: deg(90), Hip: deg(70), Knee: deg(40)},
	AirDescendLegsForward:  {TorsoLean: deg(-5), Shoulder: deg(60), Hip: deg(75), Knee: deg(20)},
	AirArmsDownLegsForward: {Shoulder: deg(20), Hip: deg(70), Knee: deg(15), Ankle: deg(15)},
	AirArch:                {TorsoLean: deg(-25), Shoulder: deg(170), Hip: deg(-20), Knee: deg(30)},
	LandHeelStrike:         {TorsoLean: deg(15), Shoulder: deg(70), Hip: deg(55), Knee: deg(20), Ankle: deg(20)},
	LandCrouch:             {TorsoLean: deg(50), Neck: deg(10), Shoulder: deg(80), Hip: deg(70), Knee: deg(100)},
	LandDeepCrouch:         {TorsoLean: deg(55), Neck: deg(15), Shoulder: deg(60), Hip: deg(85), Knee: deg(125)},
	LandStandUp:            {TorsoLean: deg(20), Shoulder: deg(30), Hip: deg(25), Knee: deg(35)},
	LandStand:              {Shoulder: deg(5)},
	LandFallBack:           {TorsoLean: deg(-30), Shoulder: deg(-70), Hip: deg(60), Knee: deg(60)},
	LandStepForward:        {TorsoLean: deg(10), Shoulder: deg(10), Hip: deg(45), Knee: deg(10)},
}

// Angles returns the canonical joint configuration of a pose. It returns
// the zero configuration (standing at attention) for PoseUnknown or any
// invalid pose.
func Angles(p Pose) JointAngles { return canonical[p] }
