// Package pose defines the paper's pose taxonomy: the 22 poses of a
// standing long jump, the four jump stages (before jumping, jumping, in
// the air, landing), the stage progression rules, and a 2-D kinematic
// body model that gives every pose a canonical joint configuration.
//
// The paper names only a few of its 22 poses explicitly ("standing & hand
// overlap with body", "standing & hand swung forward", "knee and foot
// extended & hand raised forward", "waist bended & hand raised forward");
// the remaining poses here are reconstructed to cover a complete,
// biomechanically ordered jump plus the fault poses the scoring stage
// needs. The canonical joint angles drive the synthetic clip generator,
// so ground-truth labels and rendered silhouettes are consistent by
// construction.
package pose

import "fmt"

// Pose identifies one of the 22 defined poses. PoseUnknown (zero) is the
// classifier's reject answer, not a member of the taxonomy.
type Pose int

// The 22 poses, grouped by canonical stage. The first pose of a clip is
// always StandHandsAtSides (the paper resets "the current pose to
// 'standing & hand overlap with body'").
const (
	// PoseUnknown is the classifier's reject output.
	PoseUnknown Pose = iota

	// Before-jumping (preparation) poses.

	// StandHandsAtSides: "standing & hand overlap with body".
	StandHandsAtSides
	// StandHandsForward: "standing & hand swung forward".
	StandHandsForward
	// StandHandsUp: arms raised overhead during the preparatory swing.
	StandHandsUp
	// StandHandsBackward: arms swung behind the body (backswing).
	StandHandsBackward
	// CrouchHandsBackward: knees and waist bent, arms held back.
	CrouchHandsBackward
	// CrouchHandsForward: deep crouch with the arms swinging forward.
	CrouchHandsForward

	// Jumping (take-off) poses.

	// TakeoffExtension: "knee and foot extended & hand raised forward".
	TakeoffExtension
	// TakeoffLean: body tilted forward, legs extending behind.
	TakeoffLean
	// TakeoffToeOff: full extension on the toes at the instant of flight.
	TakeoffToeOff

	// In-the-air poses.

	// AirAscendArmsUp: ascending with the arms overhead.
	AirAscendArmsUp
	// AirTuck: knees tucked toward the chest at the apex.
	AirTuck
	// AirExtendForward: legs swinging forward, arms forward.
	AirExtendForward
	// AirDescendLegsForward: descending with the legs reaching forward.
	AirDescendLegsForward
	// AirArmsDownLegsForward: pre-landing, arms sweeping down.
	AirArmsDownLegsForward
	// AirArch: FAULT — body arched backward in flight.
	AirArch

	// Landing poses.

	// LandHeelStrike: heels contacting, knees flexing, arms forward.
	LandHeelStrike
	// LandCrouch: "waist bended & hand raised forward" (absorption).
	LandCrouch
	// LandDeepCrouch: deepest absorption crouch.
	LandDeepCrouch
	// LandStandUp: rising out of the crouch.
	LandStandUp
	// LandStand: standing upright after the landing.
	LandStand
	// LandFallBack: FAULT — falling backward, arms trailing behind.
	LandFallBack
	// LandStepForward: FAULT — stepping forward out of the landing.
	LandStepForward

	// NumPoses is the number of defined poses (excluding PoseUnknown).
	NumPoses = int(LandStepForward)
)

var poseNames = map[Pose]string{
	PoseUnknown:            "unknown",
	StandHandsAtSides:      "standing & hands overlap with body",
	StandHandsForward:      "standing & hands swung forward",
	StandHandsUp:           "standing & hands raised up",
	StandHandsBackward:     "standing & hands swung backward",
	CrouchHandsBackward:    "crouching & hands swung backward",
	CrouchHandsForward:     "crouching & hands swung forward",
	TakeoffExtension:       "knee and foot extended & hands raised forward",
	TakeoffLean:            "taking off & body tilted forward",
	TakeoffToeOff:          "taking off & full extension on toes",
	AirAscendArmsUp:        "in air & ascending with arms up",
	AirTuck:                "in air & knees tucked",
	AirExtendForward:       "in air & legs extended forward",
	AirDescendLegsForward:  "in air & descending with legs forward",
	AirArmsDownLegsForward: "in air & arms down with legs forward",
	AirArch:                "in air & body arched backward",
	LandHeelStrike:         "landing & heels striking",
	LandCrouch:             "waist bended & hands raised forward",
	LandDeepCrouch:         "landing & deep crouch",
	LandStandUp:            "landing & standing up",
	LandStand:              "standing after landing",
	LandFallBack:           "landing & falling backward",
	LandStepForward:        "landing & stepping forward",
}

// String returns the human-readable pose name.
func (p Pose) String() string {
	if s, ok := poseNames[p]; ok {
		return s
	}
	return fmt.Sprintf("pose(%d)", int(p))
}

// Valid reports whether p is one of the 22 defined poses.
func (p Pose) Valid() bool { return p >= StandHandsAtSides && p <= LandStepForward }

// IsFault reports whether p is one of the defined fault poses that the
// scoring stage flags as a deviation from the standard.
func (p Pose) IsFault() bool {
	return p == AirArch || p == LandFallBack || p == LandStepForward
}

// Stage is one of the paper's four jump stages.
type Stage int

// The four stages of a standing long jump, in temporal order.
const (
	// StageBeforeJump covers the preparation: standing, arm swings,
	// crouching.
	StageBeforeJump Stage = iota + 1
	// StageJump covers the take-off extension until the feet leave the
	// ground.
	StageJump
	// StageAir covers flight.
	StageAir
	// StageLanding covers touchdown to standing.
	StageLanding

	// NumStages is the number of stages.
	NumStages = int(StageLanding)
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageBeforeJump:
		return "before jumping"
	case StageJump:
		return "jumping"
	case StageAir:
		return "in the air"
	case StageLanding:
		return "landing"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// Valid reports whether s is one of the four defined stages.
func (s Stage) Valid() bool { return s >= StageBeforeJump && s <= StageLanding }

// StageOf returns the canonical stage of a pose. PoseUnknown maps to
// StageBeforeJump, the reset state.
func StageOf(p Pose) Stage {
	switch {
	case p >= StandHandsAtSides && p <= CrouchHandsForward:
		return StageBeforeJump
	case p >= TakeoffExtension && p <= TakeoffToeOff:
		return StageJump
	case p >= AirAscendArmsUp && p <= AirArch:
		return StageAir
	case p >= LandHeelStrike && p <= LandStepForward:
		return StageLanding
	default:
		return StageBeforeJump
	}
}

// NextStage advances the jump-stage flag given the pose just recognised.
// Stages only move forward and only one step at a time: "poses belonging
// to 'before jumping' and poses belonging to 'landing' cannot occur
// consecutively because it does not exist in real cases." A recognised
// pose whose canonical stage is the immediate successor advances the
// flag; anything else (including Unknown and out-of-order poses) leaves
// it unchanged.
func NextStage(cur Stage, p Pose) Stage {
	if !p.Valid() {
		return cur
	}
	ps := StageOf(p)
	if int(ps) == int(cur)+1 {
		return ps
	}
	return cur
}

// AllPoses returns the 22 defined poses in declaration (temporal) order.
func AllPoses() []Pose {
	out := make([]Pose, 0, NumPoses)
	for p := StandHandsAtSides; p <= LandStepForward; p++ {
		out = append(out, p)
	}
	return out
}

// PosesInStage returns the poses whose canonical stage is s, in order.
func PosesInStage(s Stage) []Pose {
	var out []Pose
	for _, p := range AllPoses() {
		if StageOf(p) == s {
			out = append(out, p)
		}
	}
	return out
}

// ParsePose resolves a human-readable pose name (as produced by String)
// back to the Pose value.
func ParsePose(name string) (Pose, error) {
	for p, n := range poseNames {
		if n == name {
			return p, nil
		}
	}
	return PoseUnknown, fmt.Errorf("pose: unknown pose name %q", name)
}
