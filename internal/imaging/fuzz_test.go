package imaging

import (
	"bytes"
	"testing"
)

// Fuzz targets guard the codecs against panics on malformed input; the
// decoders must fail with an error, never crash. Seeds cover valid
// streams, truncations and header corruption.

func FuzzDecodePGM(f *testing.F) {
	var buf bytes.Buffer
	g := NewGray(3, 2)
	if err := EncodePGM(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("P5\n3 2\n255\nab"))
	f.Add([]byte("P5\n# comment\n1 1\n255\nx"))
	f.Add([]byte("P6\n1 1\n255\nxyz"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := DecodePGM(bytes.NewReader(data))
		if err == nil && (img.W <= 0 || img.H <= 0 || len(img.Pix) != img.W*img.H) {
			t.Fatalf("decoder returned inconsistent image %dx%d with %d pixels", img.W, img.H, len(img.Pix))
		}
	})
}

func FuzzDecodePPM(f *testing.F) {
	var buf bytes.Buffer
	m := NewRGB(2, 2)
	if err := EncodePPM(&buf, m); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("P6\n2 2\n255\n"))
	f.Add([]byte("P6 9999999 9999999 255 "))
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := DecodePPM(bytes.NewReader(data))
		if err == nil && len(img.Pix) != 3*img.W*img.H {
			t.Fatalf("decoder returned inconsistent image")
		}
	})
}

func FuzzDecodePBM(f *testing.F) {
	var buf bytes.Buffer
	b := NewBinary(9, 3)
	b.Set(4, 1, 1)
	if err := EncodePBM(&buf, b); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("P4\n8 1\nz"))
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := DecodePBM(bytes.NewReader(data))
		if err == nil {
			for _, v := range img.Pix {
				if v > 1 {
					t.Fatal("decoder produced non-binary pixel")
				}
			}
		}
	})
}

func FuzzFromASCII(f *testing.F) {
	f.Add("##.\n.#.\n")
	f.Add("")
	f.Add("#")
	f.Add("\n\n\n")
	f.Fuzz(func(t *testing.T, s string) {
		img := FromASCII(s)
		if img.W <= 0 || img.H <= 0 {
			t.Fatal("FromASCII returned degenerate image")
		}
	})
}
