package imaging

import (
	"bufio"
	"fmt"
	"io"
)

// The codecs implement the binary ("raw") Netpbm formats: P4 (bitmap),
// P5 (graymap) and P6 (pixmap). They are the persistence format for
// synthetic clips and intermediate pipeline products; any image viewer can
// open the files, which makes visual inspection of reproduction artefacts
// easy without pulling in image/png.

// EncodePPM writes m to w in binary PPM (P6) format.
func EncodePPM(w io.Writer, m *RGB) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", m.W, m.H); err != nil {
		return fmt.Errorf("imaging: encode ppm header: %w", err)
	}
	if _, err := bw.Write(m.Pix); err != nil {
		return fmt.Errorf("imaging: encode ppm pixels: %w", err)
	}
	return bw.Flush()
}

// DecodePPM reads a binary PPM (P6) image from r.
func DecodePPM(r io.Reader) (*RGB, error) {
	br := bufio.NewReader(r)
	w, h, maxv, err := readNetpbmHeader(br, "P6")
	if err != nil {
		return nil, err
	}
	if maxv != 255 {
		return nil, fmt.Errorf("imaging: decode ppm: unsupported maxval %d", maxv)
	}
	m := NewRGB(w, h)
	if _, err := io.ReadFull(br, m.Pix); err != nil {
		return nil, fmt.Errorf("imaging: decode ppm pixels: %w", err)
	}
	return m, nil
}

// EncodePGM writes g to w in binary PGM (P5) format.
func EncodePGM(w io.Writer, g *Gray) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", g.W, g.H); err != nil {
		return fmt.Errorf("imaging: encode pgm header: %w", err)
	}
	if _, err := bw.Write(g.Pix); err != nil {
		return fmt.Errorf("imaging: encode pgm pixels: %w", err)
	}
	return bw.Flush()
}

// DecodePGM reads a binary PGM (P5) image from r.
func DecodePGM(r io.Reader) (*Gray, error) {
	br := bufio.NewReader(r)
	w, h, maxv, err := readNetpbmHeader(br, "P5")
	if err != nil {
		return nil, err
	}
	if maxv != 255 {
		return nil, fmt.Errorf("imaging: decode pgm: unsupported maxval %d", maxv)
	}
	g := NewGray(w, h)
	if _, err := io.ReadFull(br, g.Pix); err != nil {
		return nil, fmt.Errorf("imaging: decode pgm pixels: %w", err)
	}
	return g, nil
}

// EncodePBM writes b to w in binary PBM (P4) format. Foreground (1) pixels
// are written as black per the PBM convention.
func EncodePBM(w io.Writer, b *Binary) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P4\n%d %d\n", b.W, b.H); err != nil {
		return fmt.Errorf("imaging: encode pbm header: %w", err)
	}
	rowBytes := (b.W + 7) / 8
	row := make([]byte, rowBytes)
	for y := 0; y < b.H; y++ {
		for i := range row {
			row[i] = 0
		}
		for x := 0; x < b.W; x++ {
			if b.Pix[y*b.W+x] != 0 {
				row[x/8] |= 0x80 >> uint(x%8)
			}
		}
		if _, err := bw.Write(row); err != nil {
			return fmt.Errorf("imaging: encode pbm pixels: %w", err)
		}
	}
	return bw.Flush()
}

// DecodePBM reads a binary PBM (P4) image from r.
func DecodePBM(r io.Reader) (*Binary, error) {
	br := bufio.NewReader(r)
	w, h, _, err := readNetpbmHeader(br, "P4")
	if err != nil {
		return nil, err
	}
	b := NewBinary(w, h)
	rowBytes := (w + 7) / 8
	row := make([]byte, rowBytes)
	for y := 0; y < h; y++ {
		if _, err := io.ReadFull(br, row); err != nil {
			return nil, fmt.Errorf("imaging: decode pbm pixels: %w", err)
		}
		for x := 0; x < w; x++ {
			if row[x/8]&(0x80>>uint(x%8)) != 0 {
				b.Pix[y*w+x] = 1
			}
		}
	}
	return b, nil
}

// readNetpbmHeader parses "<magic> <w> <h> [<maxval>]" with Netpbm comment
// and whitespace rules. PBM (P4) has no maxval; 1 is returned for it.
func readNetpbmHeader(br *bufio.Reader, magic string) (w, h, maxv int, err error) {
	tok, err := netpbmToken(br)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("imaging: read magic: %w", err)
	}
	if tok != magic {
		return 0, 0, 0, fmt.Errorf("imaging: bad magic %q, want %q", tok, magic)
	}
	fields := 2
	if magic != "P4" {
		fields = 3
	}
	vals := make([]int, fields)
	for i := range vals {
		tok, err := netpbmToken(br)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("imaging: read header field: %w", err)
		}
		n, err := parseUint(tok)
		if err != nil {
			return 0, 0, 0, err
		}
		vals[i] = n
	}
	w, h = vals[0], vals[1]
	maxv = 1
	if fields == 3 {
		maxv = vals[2]
	}
	if w <= 0 || h <= 0 {
		return 0, 0, 0, ErrBadDimensions
	}
	// Cap the total pixel count: huge headers must not drive allocation
	// (a 64-megapixel ceiling is far beyond any clip frame).
	const maxPixels = 1 << 26
	// parseUint already caps each field at 2^30, so the product cannot
	// overflow int64 here.
	if int64(w)*int64(h) > maxPixels {
		return 0, 0, 0, fmt.Errorf("imaging: image %dx%d exceeds the %d-pixel decoder cap", w, h, maxPixels)
	}
	return w, h, maxv, nil
}

// netpbmToken reads the next whitespace-delimited token, skipping '#'
// comments, and consumes the single whitespace byte that terminates it.
func netpbmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		c, err := br.ReadByte()
		if err != nil {
			if len(tok) > 0 && err == io.EOF {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case c == '#':
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", err
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, c)
		}
	}
}

func parseUint(s string) (int, error) {
	n := 0
	if s == "" {
		return 0, fmt.Errorf("imaging: empty numeric field")
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("imaging: bad numeric field %q", s)
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return 0, fmt.Errorf("imaging: numeric field %q too large", s)
		}
	}
	return n, nil
}
