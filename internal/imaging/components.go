package imaging

// Connectivity selects the pixel adjacency used by connected-component
// labelling and hole filling.
type Connectivity int

// Supported adjacencies.
const (
	// Connect4 treats only N/E/S/W neighbours as adjacent.
	Connect4 Connectivity = iota + 1
	// Connect8 additionally treats diagonal neighbours as adjacent.
	Connect8
)

// String implements fmt.Stringer.
func (c Connectivity) String() string {
	switch c {
	case Connect4:
		return "4-connected"
	case Connect8:
		return "8-connected"
	default:
		return "unknown-connectivity"
	}
}

func (c Connectivity) offsets() []Point {
	if c == Connect4 {
		return Neighbors4[:]
	}
	return Neighbors8[:]
}

// Component is one connected region of foreground pixels.
type Component struct {
	// Label is the 1-based label assigned by Components.
	Label int
	// Size is the pixel count of the region.
	Size int
	// Bounds is the tight bounding rectangle.
	Bounds Rect
	// Seed is an arbitrary pixel of the region (the first visited).
	Seed Point
}

// ComponentScratch carries the labelling state of Components between
// calls so the per-frame hot path (extract.Smooth's largest-component
// isolation) can relabel every frame without allocating. The zero value
// is ready to use; a nil *ComponentScratch falls back to fresh
// allocations. Not safe for concurrent use — callers own one per worker,
// exactly like extract.Extractor's other scratch buffers.
type ComponentScratch struct {
	labels []int32
	comps  []Component
	stack  []Point
}

// grabLabels returns the scratch label map resized to n zeroed entries.
func (s *ComponentScratch) grabLabels(n int) []int32 {
	if s == nil {
		return make([]int32, n) //slj:alloc-ok nil-scratch fallback for one-shot callers without a ComponentScratch
	}
	if cap(s.labels) < n {
		s.labels = make([]int32, n) //slj:alloc-ok scratch regrow on first use or a larger frame, amortised across frames
	}
	s.labels = s.labels[:n]
	clear(s.labels)
	return s.labels
}

// Components labels the foreground regions of b under the given
// connectivity. It returns the label map (0 = background, 1.. = region
// labels, row-major, same size as b) and per-region metadata ordered by
// label. The returned slices are freshly allocated and owned by the
// caller; the hot path uses ComponentsInto instead.
func Components(b *Binary, conn Connectivity) ([]int32, []Component) {
	return componentsInto(nil, b, conn)
}

// ComponentsInto is Components backed by reusable scratch: the label map
// and component list alias sc's buffers and are valid only until the next
// call on the same scratch.
func (sc *ComponentScratch) ComponentsInto(b *Binary, conn Connectivity) ([]int32, []Component) {
	return componentsInto(sc, b, conn)
}

func componentsInto(sc *ComponentScratch, b *Binary, conn Connectivity) ([]int32, []Component) {
	labels := sc.grabLabels(len(b.Pix))
	var comps []Component
	var stack []Point
	if sc != nil {
		comps = sc.comps[:0]
		stack = sc.stack[:0]
	}
	offs := conn.offsets()
	next := int32(0)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			idx := y*b.W + x
			if b.Pix[idx] == 0 || labels[idx] != 0 {
				continue
			}
			next++
			comp := Component{
				Label:  int(next),
				Bounds: NewRect(x, y, x+1, y+1),
				Seed:   Point{x, y},
			}
			stack = append(stack[:0], Point{x, y})
			labels[idx] = next
			for len(stack) > 0 {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				comp.Size++
				comp.Bounds = comp.Bounds.Union(NewRect(p.X, p.Y, p.X+1, p.Y+1))
				for _, d := range offs {
					q := p.Add(d)
					if !q.In(b.W, b.H) {
						continue
					}
					qi := q.Y*b.W + q.X
					if b.Pix[qi] != 0 && labels[qi] == 0 {
						labels[qi] = next
						stack = append(stack, q)
					}
				}
			}
			comps = append(comps, comp)
		}
	}
	if sc != nil {
		// The buffers may have been regrown by append; keep the larger
		// backing arrays for the next frame.
		sc.comps = comps
		sc.stack = stack
	}
	return labels, comps
}

// LargestComponent returns a copy of b that keeps only its largest
// foreground region (ties broken by lowest label, i.e. scan order). The
// extraction stage uses it to isolate the jumper from residual background
// speckle. Returns an all-background image when b has no foreground.
func LargestComponent(b *Binary, conn Connectivity) *Binary {
	return LargestComponentInto(NewBinary(b.W, b.H), b, conn, nil)
}

// LargestComponentInto writes b's largest foreground region into dst,
// which must be a zeroed image of b's size (NewBinary or GetBinary
// provide one), and returns dst. sc (optionally nil) supplies reusable
// labelling scratch so the steady-state call allocates nothing.
func LargestComponentInto(dst, b *Binary, conn Connectivity, sc *ComponentScratch) *Binary {
	labels, comps := componentsInto(sc, b, conn)
	if len(comps) == 0 {
		return dst
	}
	best := comps[0]
	for _, c := range comps[1:] {
		if c.Size > best.Size {
			best = c
		}
	}
	want := int32(best.Label)
	for i, l := range labels {
		if l == want {
			dst.Pix[i] = 1
		}
	}
	return dst
}

// FillHoles fills background regions not connected to the image border,
// i.e. interior holes of the silhouette. Holes are detected with the dual
// connectivity of the foreground (8-connected foreground ⇒ 4-connected
// background), which is the topologically consistent pairing.
func FillHoles(b *Binary, conn Connectivity) *Binary {
	dual := Connect4
	if conn == Connect4 {
		dual = Connect8
	}
	// Flood the background from every border pixel; anything 0 that the
	// flood cannot reach is a hole.
	reached := make([]bool, len(b.Pix))
	var stack []Point
	push := func(x, y int) {
		i := y*b.W + x
		if b.Pix[i] == 0 && !reached[i] {
			reached[i] = true
			stack = append(stack, Point{x, y})
		}
	}
	for x := 0; x < b.W; x++ {
		push(x, 0)
		push(x, b.H-1)
	}
	for y := 0; y < b.H; y++ {
		push(0, y)
		push(b.W-1, y)
	}
	offs := dual.offsets()
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range offs {
			q := p.Add(d)
			if q.In(b.W, b.H) {
				push(q.X, q.Y)
			}
		}
	}
	out := b.Clone()
	for i := range out.Pix {
		if out.Pix[i] == 0 && !reached[i] {
			out.Pix[i] = 1
		}
	}
	return out
}

// CountHoles returns the number of interior background regions (holes) of
// the silhouette, a quality metric used by the Figure 1 experiment to show
// the effect of the median filter.
func CountHoles(b *Binary, conn Connectivity) int {
	inv := b.Clone()
	inv.Invert()
	dual := Connect4
	if conn == Connect4 {
		dual = Connect8
	}
	labels, comps := Components(inv, dual)
	touches := make(map[int32]bool)
	for x := 0; x < b.W; x++ {
		touches[labels[x]] = true
		touches[labels[(b.H-1)*b.W+x]] = true
	}
	for y := 0; y < b.H; y++ {
		touches[labels[y*b.W]] = true
		touches[labels[y*b.W+b.W-1]] = true
	}
	holes := 0
	for _, c := range comps {
		if !touches[int32(c.Label)] {
			holes++
		}
	}
	return holes
}
