// Buffer pooling. The per-frame pipeline allocates several full-frame
// images per frame (averaged frames, raw masks, smoothing intermediates,
// thinning work copies); at video rate that churns the allocator hard.
// The Get/Put pairs below recycle those buffers through sync.Pools so the
// steady-state hot path allocates (almost) nothing.
//
// Contract: Get* returns an image that is ZEROED and exactly w×h, exactly
// like New*; Put* hands the buffer back for reuse. After Put the caller
// must not touch the image again — the next Get may hand the same backing
// slice to an unrelated frame. Putting an image that is still referenced
// elsewhere is the classic aliasing bug; when in doubt, don't Put. Pooled
// buffers that escape to callers are simply never returned, which is
// always safe.
//
// Two layers defend the contract. Statically, the pooldiscipline
// analyzer (cmd/sljcheck, DESIGN.md §8) rejects Gets without a Put and
// uses after Put. Dynamically, each image carries a pooled flag so a
// double Put within one goroutine degrades to a no-op instead of
// handing the same buffer to two future Gets. The flag is best-effort
// only — a racing Get on another goroutine can clear it between the two
// Puts — but it converts the common single-threaded misuse from silent
// frame corruption into a mere missed recycle.

package imaging

import "sync"

var (
	binaryPool = sync.Pool{New: func() any { return new(Binary) }}
	grayPool   = sync.Pool{New: func() any { return new(Gray) }}
	rgbPool    = sync.Pool{New: func() any { return new(RGB) }}
)

// grab reslices buf to n zeroed elements, reallocating when the backing
// capacity is too small.
func grab(buf []uint8, n int) []uint8 {
	if cap(buf) < n {
		return make([]uint8, n) //slj:alloc-ok pool-miss regrow, amortised once the pool is warm
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// GetBinary returns a zeroed w×h binary image, reusing a pooled buffer
// when one of sufficient capacity is available. Pair with PutBinary.
//slj:hotpath
func GetBinary(w, h int) *Binary {
	if w <= 0 || h <= 0 {
		panic("imaging.GetBinary: non-positive dimensions")
	}
	b := binaryPool.Get().(*Binary) //slj:alloc-ok sync.Pool round trip; Get allocates only while the pool is cold
	countGet(b.Pix != nil)
	b.pooled = false
	b.W, b.H = w, h
	b.Pix = grab(b.Pix, w*h)
	return b
}

// PutBinary returns a binary image to the pool. nil and double Puts are
// ignored.
//slj:hotpath
func PutBinary(b *Binary) {
	if b == nil {
		return
	}
	if b.pooled {
		poolStats.DoublePuts.Inc()
		return
	}
	b.pooled = true
	poolStats.Puts.Inc()
	binaryPool.Put(b) //slj:alloc-ok sync.Pool round trip; boxing a pointer into any does not allocate
}

// GetGray returns a zeroed w×h grayscale image from the pool. Pair with
// PutGray.
//slj:hotpath
func GetGray(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic("imaging.GetGray: non-positive dimensions")
	}
	g := grayPool.Get().(*Gray) //slj:alloc-ok sync.Pool round trip; Get allocates only while the pool is cold
	countGet(g.Pix != nil)
	g.pooled = false
	g.W, g.H = w, h
	g.Pix = grab(g.Pix, w*h)
	return g
}

// PutGray returns a grayscale image to the pool. nil and double Puts are
// ignored.
//slj:hotpath
func PutGray(g *Gray) {
	if g == nil {
		return
	}
	if g.pooled {
		poolStats.DoublePuts.Inc()
		return
	}
	g.pooled = true
	poolStats.Puts.Inc()
	grayPool.Put(g) //slj:alloc-ok sync.Pool round trip; boxing a pointer into any does not allocate
}

// GetRGB returns a zeroed (black) w×h colour image from the pool. Pair
// with PutRGB.
//slj:hotpath
func GetRGB(w, h int) *RGB {
	if w <= 0 || h <= 0 {
		panic("imaging.GetRGB: non-positive dimensions")
	}
	m := rgbPool.Get().(*RGB) //slj:alloc-ok sync.Pool round trip; Get allocates only while the pool is cold
	countGet(m.Pix != nil)
	m.pooled = false
	m.W, m.H = w, h
	m.Pix = grab(m.Pix, 3*w*h)
	return m
}

// PutRGB returns a colour image to the pool. nil and double Puts are
// ignored.
//slj:hotpath
func PutRGB(m *RGB) {
	if m == nil {
		return
	}
	if m.pooled {
		poolStats.DoublePuts.Inc()
		return
	}
	m.pooled = true
	poolStats.Puts.Inc()
	rgbPool.Put(m) //slj:alloc-ok sync.Pool round trip; boxing a pointer into any does not allocate
}
