// Package imaging provides the low-level image substrate used by the
// standing-long-jump pipeline: 8-bit grayscale, RGB and binary images,
// smoothing filters, connected-component analysis, simple morphology,
// rasterisation primitives for the synthetic renderer, and text codecs
// (PGM/PPM/PBM) for persisting frames.
//
// The package is deliberately self-contained (stdlib only) and allocation
// conscious: images store their pixels in a single backing slice, and the
// hot-path filters reuse caller-provided destination buffers where offered.
package imaging

import (
	"errors"
	"fmt"
)

// Common errors returned by this package.
var (
	// ErrBounds reports an access or operation outside image bounds.
	ErrBounds = errors.New("imaging: out of bounds")
	// ErrDimensionMismatch reports two images whose sizes differ where
	// identical sizes are required.
	ErrDimensionMismatch = errors.New("imaging: dimension mismatch")
	// ErrBadDimensions reports a non-positive width or height.
	ErrBadDimensions = errors.New("imaging: non-positive dimensions")
)

// Point is an integer pixel coordinate. X grows rightward, Y grows downward
// (screen convention), matching the paper's frames.
type Point struct {
	X, Y int
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// In reports whether p lies inside a w×h image.
func (p Point) In(w, h int) bool { return p.X >= 0 && p.X < w && p.Y >= 0 && p.Y < h }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is an axis-aligned integer rectangle, inclusive of Min and exclusive
// of Max, following the image.Rectangle convention.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning [x0,x1)×[y0,y1).
func NewRect(x0, y0, x1, y1 int) Rect {
	return Rect{Min: Point{x0, y0}, Max: Point{x1, y1}}
}

// Dx returns the rectangle width.
func (r Rect) Dx() int { return r.Max.X - r.Min.X }

// Dy returns the rectangle height.
func (r Rect) Dy() int { return r.Max.Y - r.Min.Y }

// Empty reports whether the rectangle contains no pixels.
func (r Rect) Empty() bool { return r.Dx() <= 0 || r.Dy() <= 0 }

// Contains reports whether p lies inside r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	if s.Min.X < r.Min.X {
		r.Min.X = s.Min.X
	}
	if s.Min.Y < r.Min.Y {
		r.Min.Y = s.Min.Y
	}
	if s.Max.X > r.Max.X {
		r.Max.X = s.Max.X
	}
	if s.Max.Y > r.Max.Y {
		r.Max.Y = s.Max.Y
	}
	return r
}

// Intersect returns the largest rectangle contained in both r and s.
// The result may be empty.
func (r Rect) Intersect(s Rect) Rect {
	if s.Min.X > r.Min.X {
		r.Min.X = s.Min.X
	}
	if s.Min.Y > r.Min.Y {
		r.Min.Y = s.Min.Y
	}
	if s.Max.X < r.Max.X {
		r.Max.X = s.Max.X
	}
	if s.Max.Y < r.Max.Y {
		r.Max.Y = s.Max.Y
	}
	if r.Empty() {
		return Rect{}
	}
	return r
}

// Gray is an 8-bit single-channel image. Pixels are stored row-major in Pix,
// one byte per pixel; the zero value is an empty image.
type Gray struct {
	W, H int
	Pix  []uint8
	// pooled marks an image currently resident in the buffer pool; Put*
	// uses it to turn a double Put into a no-op instead of an aliasing
	// bug (see pool.go).
	pooled bool
}

// NewGray allocates a zeroed w×h grayscale image.
func NewGray(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging.NewGray: bad dimensions %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel value at (x, y). It panics outside bounds, matching
// slice-index semantics; use In for guarded access.
func (g *Gray) At(x, y int) uint8 { return g.Pix[y*g.W+x] }

// Set writes the pixel value at (x, y).
func (g *Gray) Set(x, y int, v uint8) { g.Pix[y*g.W+x] = v }

// In reports whether (x, y) is inside the image.
func (g *Gray) In(x, y int) bool { return x >= 0 && x < g.W && y >= 0 && y < g.H }

// Bounds returns the image rectangle.
func (g *Gray) Bounds() Rect { return NewRect(0, 0, g.W, g.H) }

// Clone returns a deep copy of the image.
func (g *Gray) Clone() *Gray {
	out := &Gray{W: g.W, H: g.H, Pix: make([]uint8, len(g.Pix))}
	copy(out.Pix, g.Pix)
	return out
}

// Fill sets every pixel to v.
func (g *Gray) Fill(v uint8) {
	for i := range g.Pix {
		g.Pix[i] = v
	}
}

// RGB is an 8-bit three-channel image with interleaved R, G, B samples.
// Pix holds 3*W*H bytes, row-major.
type RGB struct {
	W, H int
	Pix  []uint8
	// pooled marks an image currently resident in the buffer pool; see
	// Gray.pooled.
	pooled bool
}

// NewRGB allocates a zeroed (black) w×h colour image.
func NewRGB(w, h int) *RGB {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging.NewRGB: bad dimensions %dx%d", w, h))
	}
	return &RGB{W: w, H: h, Pix: make([]uint8, 3*w*h)}
}

// At returns the (r, g, b) triple at (x, y).
func (m *RGB) At(x, y int) (r, g, b uint8) {
	i := 3 * (y*m.W + x)
	return m.Pix[i], m.Pix[i+1], m.Pix[i+2]
}

// Set writes the (r, g, b) triple at (x, y).
func (m *RGB) Set(x, y int, r, g, b uint8) {
	i := 3 * (y*m.W + x)
	m.Pix[i], m.Pix[i+1], m.Pix[i+2] = r, g, b
}

// In reports whether (x, y) is inside the image.
func (m *RGB) In(x, y int) bool { return x >= 0 && x < m.W && y >= 0 && y < m.H }

// Bounds returns the image rectangle.
func (m *RGB) Bounds() Rect { return NewRect(0, 0, m.W, m.H) }

// Clone returns a deep copy of the image.
func (m *RGB) Clone() *RGB {
	out := &RGB{W: m.W, H: m.H, Pix: make([]uint8, len(m.Pix))}
	copy(out.Pix, m.Pix)
	return out
}

// Fill sets every pixel to the (r, g, b) triple.
func (m *RGB) Fill(r, g, b uint8) {
	for i := 0; i < len(m.Pix); i += 3 {
		m.Pix[i], m.Pix[i+1], m.Pix[i+2] = r, g, b
	}
}

// Gray converts the image to grayscale using the integer Rec.601 luma
// approximation (299r + 587g + 114b) / 1000.
func (m *RGB) Gray() *Gray {
	out := NewGray(m.W, m.H)
	for p, i := 0, 0; p < len(out.Pix); p, i = p+1, i+3 {
		r, g, b := int(m.Pix[i]), int(m.Pix[i+1]), int(m.Pix[i+2])
		out.Pix[p] = uint8((299*r + 587*g + 114*b) / 1000)
	}
	return out
}

// Binary is a bi-level image. Pixels are stored one byte each and MUST be
// 0 (background) or 1 (foreground); storing other values is a programmer
// error that the filters are free to mangle.
type Binary struct {
	W, H int
	Pix  []uint8
	// pooled marks an image currently resident in the buffer pool; see
	// Gray.pooled.
	pooled bool
}

// NewBinary allocates a zeroed (all background) w×h binary image.
func NewBinary(w, h int) *Binary {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging.NewBinary: bad dimensions %dx%d", w, h))
	}
	return &Binary{W: w, H: h, Pix: make([]uint8, w*h)} //slj:alloc-ok constructor runs on skeletonInto's first frame only; steady frames take the Reset branch
}

// Reset resizes b to a zeroed w×h image, reusing the backing pixel
// slice when its capacity suffices. It is the scratch-buffer idiom of
// the per-frame arenas: the same image object is re-aimed at each frame
// without going through the allocator.
func (b *Binary) Reset(w, h int) {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging.(*Binary).Reset: bad dimensions %dx%d", w, h))
	}
	b.W, b.H = w, h
	n := w * h
	if cap(b.Pix) < n {
		b.Pix = make([]uint8, n) //slj:alloc-ok backing regrow on a larger frame, amortised across frames
		return
	}
	b.Pix = b.Pix[:n]
	clear(b.Pix)
}

// At returns the pixel at (x, y): 0 or 1.
func (b *Binary) At(x, y int) uint8 { return b.Pix[y*b.W+x] }

// Set writes the pixel at (x, y); v must be 0 or 1.
func (b *Binary) Set(x, y int, v uint8) { b.Pix[y*b.W+x] = v }

// In reports whether (x, y) is inside the image.
func (b *Binary) In(x, y int) bool { return x >= 0 && x < b.W && y >= 0 && y < b.H }

// Bounds returns the image rectangle.
func (b *Binary) Bounds() Rect { return NewRect(0, 0, b.W, b.H) }

// Clone returns a deep copy of the image.
func (b *Binary) Clone() *Binary {
	out := &Binary{W: b.W, H: b.H, Pix: make([]uint8, len(b.Pix))}
	copy(out.Pix, b.Pix)
	return out
}

// Count returns the number of foreground (1) pixels.
func (b *Binary) Count() int {
	n := 0
	for _, v := range b.Pix {
		if v != 0 {
			n++
		}
	}
	return n
}

// ForegroundBounds returns the tight bounding rectangle of foreground pixels,
// or an empty Rect if the image has no foreground.
func (b *Binary) ForegroundBounds() Rect {
	minX, minY := b.W, b.H
	maxX, maxY := -1, -1
	for y := 0; y < b.H; y++ {
		row := b.Pix[y*b.W : (y+1)*b.W]
		for x, v := range row {
			if v == 0 {
				continue
			}
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxX < 0 {
		return Rect{}
	}
	return NewRect(minX, minY, maxX+1, maxY+1)
}

// Points returns the coordinates of all foreground pixels in row-major order.
func (b *Binary) Points() []Point {
	pts := make([]Point, 0, 256)
	for y := 0; y < b.H; y++ {
		row := b.Pix[y*b.W : (y+1)*b.W]
		for x, v := range row {
			if v != 0 {
				pts = append(pts, Point{x, y})
			}
		}
	}
	return pts
}

// Equal reports whether two binary images have identical size and pixels.
func (b *Binary) Equal(o *Binary) bool {
	if b.W != o.W || b.H != o.H {
		return false
	}
	for i, v := range b.Pix {
		if (v != 0) != (o.Pix[i] != 0) {
			return false
		}
	}
	return true
}

// Invert flips foreground and background in place.
func (b *Binary) Invert() {
	for i, v := range b.Pix {
		if v == 0 {
			b.Pix[i] = 1
		} else {
			b.Pix[i] = 0
		}
	}
}

// FlipH returns the image mirrored horizontally.
func (b *Binary) FlipH() *Binary {
	out := NewBinary(b.W, b.H)
	for y := 0; y < b.H; y++ {
		row := b.Pix[y*b.W : (y+1)*b.W]
		orow := out.Pix[y*out.W : (y+1)*out.W]
		for x, v := range row {
			orow[b.W-1-x] = v
		}
	}
	return out
}

// Crop returns a copy of the sub-image spanned by r (clipped to bounds).
// An empty intersection yields a 1x1 black image.
func (m *RGB) Crop(r Rect) *RGB {
	return m.CropInto(nil, r)
}

// CropInto is Crop writing into dst, which is resized as needed (nil
// allocates a fresh image). dst must not alias m. It returns dst so hot
// paths can recycle the crop buffer across frames.
func (m *RGB) CropInto(dst *RGB, r Rect) *RGB {
	r = r.Intersect(m.Bounds())
	if dst == nil {
		dst = &RGB{} //slj:alloc-ok nil-dst fallback for one-shot callers; hot callers pass a recycled dst
	}
	w, h := r.Dx(), r.Dy()
	if r.Empty() {
		w, h = 1, 1
	}
	dst.W, dst.H = w, h
	if need := 3 * w * h; cap(dst.Pix) < need {
		dst.Pix = make([]uint8, need) //slj:alloc-ok dst regrow on first use or a larger crop, amortised across frames
	} else {
		dst.Pix = dst.Pix[:need]
	}
	if r.Empty() {
		dst.Pix[0], dst.Pix[1], dst.Pix[2] = 0, 0, 0
		return dst
	}
	out := dst
	for y := 0; y < out.H; y++ {
		srcOff := 3 * ((r.Min.Y+y)*m.W + r.Min.X)
		dstOff := 3 * y * out.W
		copy(out.Pix[dstOff:dstOff+3*out.W], m.Pix[srcOff:srcOff+3*out.W])
	}
	return out
}

// FlipH returns the image mirrored horizontally.
func (m *RGB) FlipH() *RGB {
	out := NewRGB(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			r, g, b := m.At(x, y)
			out.Set(m.W-1-x, y, r, g, b)
		}
	}
	return out
}

// Neighbors8 lists the 8-connected neighbourhood offsets in the clockwise
// order used by the Zhang–Suen algorithm, starting from north:
// P2 P3 P4 P5 P6 P7 P8 P9 in the classical labelling.
var Neighbors8 = [8]Point{
	{0, -1}, {1, -1}, {1, 0}, {1, 1},
	{0, 1}, {-1, 1}, {-1, 0}, {-1, -1},
}

// Neighbors4 lists the 4-connected neighbourhood offsets (N, E, S, W).
var Neighbors4 = [4]Point{{0, -1}, {1, 0}, {0, 1}, {-1, 0}}
