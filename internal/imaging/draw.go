package imaging

import "math"

// Pointf is a floating-point 2-D coordinate used by the rasterisers and the
// synthetic body model. Like Point, Y grows downward.
type Pointf struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Pointf) Add(q Pointf) Pointf { return Pointf{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Pointf) Sub(q Pointf) Pointf { return Pointf{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Pointf) Scale(s float64) Pointf { return Pointf{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Pointf) Dist(q Pointf) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Round converts to the nearest integer Point.
func (p Pointf) Round() Point {
	return Point{int(math.Round(p.X)), int(math.Round(p.Y))}
}

// distToSegment returns the distance from point p to the segment a-b.
func distToSegment(p, a, b Pointf) float64 {
	ab := b.Sub(a)
	l2 := ab.X*ab.X + ab.Y*ab.Y
	if l2 == 0 {
		return p.Dist(a)
	}
	t := ((p.X-a.X)*ab.X + (p.Y-a.Y)*ab.Y) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(Pointf{a.X + t*ab.X, a.Y + t*ab.Y})
}

// FillCapsule rasterises a thick line segment (a capsule: the set of pixels
// within radius r of the segment a-b) into the binary image as foreground.
// This is the primitive the synthetic renderer uses for limbs.
func FillCapsule(dst *Binary, a, b Pointf, r float64) {
	if r < 0 {
		return
	}
	minX := int(math.Floor(math.Min(a.X, b.X) - r))
	maxX := int(math.Ceil(math.Max(a.X, b.X) + r))
	minY := int(math.Floor(math.Min(a.Y, b.Y) - r))
	maxY := int(math.Ceil(math.Max(a.Y, b.Y) + r))
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX >= dst.W {
		maxX = dst.W - 1
	}
	if maxY >= dst.H {
		maxY = dst.H - 1
	}
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			if distToSegment(Pointf{float64(x), float64(y)}, a, b) <= r {
				dst.Pix[y*dst.W+x] = 1
			}
		}
	}
}

// FillDisc rasterises a filled disc of radius r centred at c into the binary
// image as foreground. Used for the head of the synthetic body model.
func FillDisc(dst *Binary, c Pointf, r float64) {
	FillCapsule(dst, c, c, r)
}

// DrawLine writes a 1-pixel-wide Bresenham line from a to b.
func DrawLine(dst *Binary, a, b Point) {
	dx := abs(b.X - a.X)
	dy := -abs(b.Y - a.Y)
	sx, sy := 1, 1
	if a.X > b.X {
		sx = -1
	}
	if a.Y > b.Y {
		sy = -1
	}
	err := dx + dy
	x, y := a.X, a.Y
	for {
		if x >= 0 && x < dst.W && y >= 0 && y < dst.H {
			dst.Pix[y*dst.W+x] = 1
		}
		if x == b.X && y == b.Y {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x += sx
		}
		if e2 <= dx {
			err += dx
			y += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// PaintMask colours every foreground pixel of mask with (r, g, b) in dst.
// dst and mask must have identical dimensions.
func PaintMask(dst *RGB, mask *Binary, r, g, b uint8) error {
	if dst.W != mask.W || dst.H != mask.H {
		return ErrDimensionMismatch
	}
	for i, v := range mask.Pix {
		if v != 0 {
			dst.Pix[3*i], dst.Pix[3*i+1], dst.Pix[3*i+2] = r, g, b
		}
	}
	return nil
}

// ASCII renders the binary image as a string, one rune per pixel
// ('#' foreground, '.' background), with rows separated by newlines.
// It optionally downsamples by step (>= 1) so a 240×320 silhouette still
// fits a terminal; a block is foreground if any pixel in it is.
func ASCII(b *Binary, step int) string {
	if step < 1 {
		step = 1
	}
	var sb []byte
	for y := 0; y < b.H; y += step {
		for x := 0; x < b.W; x += step {
			on := false
			for dy := 0; dy < step && !on; dy++ {
				for dx := 0; dx < step && !on; dx++ {
					xx, yy := x+dx, y+dy
					if xx < b.W && yy < b.H && b.Pix[yy*b.W+xx] != 0 {
						on = true
					}
				}
			}
			if on {
				sb = append(sb, '#')
			} else {
				sb = append(sb, '.')
			}
		}
		sb = append(sb, '\n')
	}
	return string(sb)
}

// FromASCII parses the format produced by ASCII (with step 1): '#' (or any
// non-'.' non-space rune) is foreground. Lines are right-padded to the
// longest line. An empty input yields a 1×1 background image.
func FromASCII(s string) *Binary {
	var rows [][]byte
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				rows = append(rows, []byte(s[start:i]))
			}
			start = i + 1
		}
	}
	if len(rows) == 0 {
		return NewBinary(1, 1)
	}
	w := 0
	for _, r := range rows {
		if len(r) > w {
			w = len(r)
		}
	}
	out := NewBinary(w, len(rows))
	for y, r := range rows {
		for x, c := range r {
			if c != '.' && c != ' ' {
				out.Pix[y*w+x] = 1
			}
		}
	}
	return out
}
