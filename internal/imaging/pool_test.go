package imaging

import "testing"

func TestGetBinaryZeroedAfterPut(t *testing.T) {
	// Acquire, dirty, release, re-acquire: the new buffer must be zeroed
	// even when the pool hands the same backing slice back.
	b := GetBinary(16, 8)
	for i := range b.Pix {
		b.Pix[i] = 1
	}
	PutBinary(b)
	c := GetBinary(16, 8)
	for i, v := range c.Pix {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d", i)
		}
	}
	PutBinary(c)
}

func TestPoolResizes(t *testing.T) {
	b := GetBinary(4, 4)
	PutBinary(b)
	big := GetBinary(32, 32)
	if big.W != 32 || big.H != 32 || len(big.Pix) != 32*32 {
		t.Fatalf("got %dx%d len %d", big.W, big.H, len(big.Pix))
	}
	PutBinary(big)
	small := GetBinary(2, 3)
	if small.W != 2 || small.H != 3 || len(small.Pix) != 6 {
		t.Fatalf("got %dx%d len %d", small.W, small.H, len(small.Pix))
	}
	for i, v := range small.Pix {
		if v != 0 {
			t.Fatalf("shrunk buffer not zeroed at %d", i)
		}
	}
	PutBinary(small)
}

func TestGetRGBAndGrayZeroed(t *testing.T) {
	m := GetRGB(5, 5)
	for i := range m.Pix {
		m.Pix[i] = 200
	}
	PutRGB(m)
	m2 := GetRGB(5, 5)
	for i, v := range m2.Pix {
		if v != 0 {
			t.Fatalf("rgb reuse not zeroed at %d", i)
		}
	}
	PutRGB(m2)

	g := GetGray(7, 3)
	for i := range g.Pix {
		g.Pix[i] = 9
	}
	PutGray(g)
	g2 := GetGray(7, 3)
	for i, v := range g2.Pix {
		if v != 0 {
			t.Fatalf("gray reuse not zeroed at %d", i)
		}
	}
	PutGray(g2)
}

func TestPutNilIsNoop(t *testing.T) {
	PutBinary(nil)
	PutGray(nil)
	PutRGB(nil)
}

// TestPutResizedBuffer returns a buffer whose caller mangled the
// dimensions and pixel slice before Put; the next Get must still hand
// out an exact-size, zeroed image.
func TestPutResizedBuffer(t *testing.T) {
	b := GetBinary(8, 8)
	b.Pix = b.Pix[:16]
	b.W, b.H = 4, 4
	for i := range b.Pix {
		b.Pix[i] = 3
	}
	PutBinary(b)
	c := GetBinary(8, 8)
	if c.W != 8 || c.H != 8 || len(c.Pix) != 64 {
		t.Fatalf("after resized Put: got %dx%d len %d", c.W, c.H, len(c.Pix))
	}
	for i, v := range c.Pix {
		if v != 0 {
			t.Fatalf("after resized Put: pixel %d = %d, want 0", i, v)
		}
	}
	PutBinary(c)
}

// TestDoublePutDoesNotAlias double-Puts one buffer and then draws two
// from the pool: they must be distinct images with distinct backing
// storage, not the same buffer handed out twice.
func TestDoublePutDoesNotAlias(t *testing.T) {
	b := GetBinary(6, 6)
	PutBinary(b)
	PutBinary(b) // contract violation: must degrade to a no-op

	b1 := GetBinary(6, 6)
	b2 := GetBinary(6, 6)
	if b1 == b2 {
		t.Fatal("double Put made the pool issue the same *Binary twice")
	}
	b1.Pix[0] = 7
	if b2.Pix[0] != 0 {
		t.Fatal("double Put aliased the backing arrays of two live buffers")
	}
	PutBinary(b1)
	PutBinary(b2)

	g := GetGray(3, 3)
	PutGray(g)
	PutGray(g)
	g1, g2 := GetGray(3, 3), GetGray(3, 3)
	if g1 == g2 {
		t.Fatal("double PutGray issued the same *Gray twice")
	}
	PutGray(g1)
	PutGray(g2)

	m := GetRGB(3, 3)
	PutRGB(m)
	PutRGB(m)
	m1, m2 := GetRGB(3, 3), GetRGB(3, 3)
	if m1 == m2 {
		t.Fatal("double PutRGB issued the same *RGB twice")
	}
	PutRGB(m1)
	PutRGB(m2)
}

// TestGetUnderPoolPressure drains the pool by holding many buffers live
// at once: every concurrently issued buffer must be exact-size, zeroed,
// and disjoint from all the others — writing through one must never show
// up in another.
func TestGetUnderPoolPressure(t *testing.T) {
	const n = 32
	bufs := make([]*Binary, n)
	for i := range bufs {
		bufs[i] = GetBinary(10, 10)
	}
	for i, b := range bufs {
		if b.W != 10 || b.H != 10 || len(b.Pix) != 100 {
			t.Fatalf("buffer %d: got %dx%d len %d", i, b.W, b.H, len(b.Pix))
		}
		for p := range b.Pix {
			b.Pix[p] = uint8(i + 1)
		}
	}
	for i, b := range bufs {
		for p, v := range b.Pix {
			if v != uint8(i+1) {
				t.Fatalf("buffer %d aliased: pixel %d = %d, want %d", i, p, v, i+1)
			}
		}
	}
	// Recycle everything, then draw again at a different size: still
	// zeroed, still disjoint.
	for _, b := range bufs {
		PutBinary(b)
	}
	a, b := GetBinary(5, 7), GetBinary(5, 7)
	if a == b {
		t.Fatal("pool issued the same buffer to two consecutive Gets")
	}
	a.Pix[0] = 9
	if b.Pix[0] != 0 {
		t.Fatal("consecutively issued buffers alias")
	}
	PutBinary(a)
	PutBinary(b)
}

func TestBoxAverageRGBIntoMatchesAlloc(t *testing.T) {
	src := NewRGB(37, 23)
	for i := range src.Pix {
		src.Pix[i] = uint8((i*31 + 7) % 256)
	}
	want := BoxAverageRGB(src, 3)
	var dst *RGB
	var sat []int64
	// Run twice through the same scratch: the second pass must not be
	// polluted by the first.
	for pass := 0; pass < 2; pass++ {
		dst, sat = BoxAverageRGBInto(dst, src, 3, sat)
		if dst.W != want.W || dst.H != want.H {
			t.Fatalf("pass %d: got %dx%d", pass, dst.W, dst.H)
		}
		for i := range want.Pix {
			if dst.Pix[i] != want.Pix[i] {
				t.Fatalf("pass %d: pixel %d = %d, want %d", pass, i, dst.Pix[i], want.Pix[i])
			}
		}
	}
	// Shrink after growth: reuse the scratch for a smaller frame.
	small := NewRGB(9, 5)
	for i := range small.Pix {
		small.Pix[i] = uint8(i)
	}
	wantSmall := BoxAverageRGB(small, 5)
	dst, _ = BoxAverageRGBInto(dst, small, 5, sat)
	for i := range wantSmall.Pix {
		if dst.Pix[i] != wantSmall.Pix[i] {
			t.Fatalf("small: pixel %d = %d, want %d", i, dst.Pix[i], wantSmall.Pix[i])
		}
	}
}

func TestMedianFilterBinaryIntoMatchesAlloc(t *testing.T) {
	src := NewBinary(21, 17)
	for i := range src.Pix {
		if (i*13)%5 < 2 {
			src.Pix[i] = 1
		}
	}
	want := MedianFilterBinary(src, 3)
	dst := GetBinary(21, 17)
	// Dirty the destination first: Into must overwrite every pixel.
	for i := range dst.Pix {
		dst.Pix[i] = 1
	}
	got := MedianFilterBinaryInto(dst, src, 3)
	if !got.Equal(want) {
		t.Fatal("Into result differs from allocating variant")
	}
	PutBinary(dst)
}

func TestCropIntoMatchesCrop(t *testing.T) {
	src := NewRGB(30, 20)
	for i := range src.Pix {
		src.Pix[i] = uint8(i % 251)
	}
	for _, r := range []Rect{
		NewRect(3, 4, 17, 12),
		NewRect(-5, -5, 10, 10), // clipped
		NewRect(25, 15, 60, 60), // clipped
		NewRect(8, 8, 8, 9),     // empty
	} {
		want := src.Crop(r)
		got := src.CropInto(GetRGB(1, 1), r)
		if got.W != want.W || got.H != want.H {
			t.Fatalf("rect %v: got %dx%d want %dx%d", r, got.W, got.H, want.W, want.H)
		}
		for i := range want.Pix {
			if got.Pix[i] != want.Pix[i] {
				t.Fatalf("rect %v: pixel %d differs", r, i)
			}
		}
		PutRGB(got)
	}
}

// TestPoolHitMissAccounting is the regression test for the accounting
// gap where Get* could not tell a fresh allocation from a recycled
// buffer. It drains the pool under pressure (every Get while all
// buffers are held live must miss) and then recycles (every Get after a
// Put must hit). Counters are process-global, so assertions are on
// deltas.
func TestPoolHitMissAccounting(t *testing.T) {
	delta := func(h0, m0, d0 int64) (int64, int64, int64) {
		h, m, d := PoolCounters()
		return h - h0, m - m0, d - d0
	}

	// Phase 1: hold n buffers live at once. At most the pool's current
	// idle population can hit; forcing n simultaneous live buffers after
	// draining guarantees at least one miss, and every buffer freshly
	// constructed arrives with Pix == nil before grab sizes it.
	const n = 16
	h0, m0, d0 := PoolCounters()
	bufs := make([]*Binary, n)
	for i := range bufs {
		bufs[i] = GetBinary(9, 9)
	}
	hits, misses, _ := delta(h0, m0, d0)
	if hits+misses != n {
		t.Fatalf("phase 1: hits+misses = %d+%d, want %d Gets accounted", hits, misses, n)
	}

	// Phase 2: strict Put→Get cycles on the buffers we now own must be
	// all hits — the pool always has an idle buffer when we ask.
	h0, m0, d0 = PoolCounters()
	for i := 0; i < n; i++ {
		PutBinary(bufs[i])
		bufs[i] = GetBinary(9, 9)
	}
	hits, misses, _ = delta(h0, m0, d0)
	if misses != 0 || hits != n {
		t.Errorf("phase 2: hits=%d misses=%d, want %d/0 (Put→Get must recycle)", hits, misses, n)
	}

	// Phase 3: double Put is counted, and the extra Put must not
	// manufacture a phantom hit for two Gets.
	h0, m0, d0 = PoolCounters()
	PutBinary(bufs[0])
	PutBinary(bufs[0])
	_, _, doubles := delta(h0, m0, d0)
	if doubles != 1 {
		t.Errorf("double Put counted %d times, want 1", doubles)
	}
	for _, b := range bufs[1:] {
		PutBinary(b)
	}

	// Gray and RGB share the accounting path; spot-check one cycle each.
	h0, m0, d0 = PoolCounters()
	g := GetGray(4, 4)
	PutGray(g)
	g = GetGray(4, 4)
	m := GetRGB(4, 4)
	PutRGB(m)
	m = GetRGB(4, 4)
	hits, misses, _ = delta(h0, m0, d0)
	if hits+misses != 4 || hits < 2 {
		t.Errorf("gray/rgb cycle: hits=%d misses=%d, want 4 Gets with >=2 hits", hits, misses)
	}
	PutGray(g)
	PutRGB(m)
}
