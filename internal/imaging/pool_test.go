package imaging

import "testing"

func TestGetBinaryZeroedAfterPut(t *testing.T) {
	// Acquire, dirty, release, re-acquire: the new buffer must be zeroed
	// even when the pool hands the same backing slice back.
	b := GetBinary(16, 8)
	for i := range b.Pix {
		b.Pix[i] = 1
	}
	PutBinary(b)
	c := GetBinary(16, 8)
	for i, v := range c.Pix {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d", i)
		}
	}
	PutBinary(c)
}

func TestPoolResizes(t *testing.T) {
	b := GetBinary(4, 4)
	PutBinary(b)
	big := GetBinary(32, 32)
	if big.W != 32 || big.H != 32 || len(big.Pix) != 32*32 {
		t.Fatalf("got %dx%d len %d", big.W, big.H, len(big.Pix))
	}
	PutBinary(big)
	small := GetBinary(2, 3)
	if small.W != 2 || small.H != 3 || len(small.Pix) != 6 {
		t.Fatalf("got %dx%d len %d", small.W, small.H, len(small.Pix))
	}
	for i, v := range small.Pix {
		if v != 0 {
			t.Fatalf("shrunk buffer not zeroed at %d", i)
		}
	}
	PutBinary(small)
}

func TestGetRGBAndGrayZeroed(t *testing.T) {
	m := GetRGB(5, 5)
	for i := range m.Pix {
		m.Pix[i] = 200
	}
	PutRGB(m)
	m2 := GetRGB(5, 5)
	for i, v := range m2.Pix {
		if v != 0 {
			t.Fatalf("rgb reuse not zeroed at %d", i)
		}
	}
	PutRGB(m2)

	g := GetGray(7, 3)
	for i := range g.Pix {
		g.Pix[i] = 9
	}
	PutGray(g)
	g2 := GetGray(7, 3)
	for i, v := range g2.Pix {
		if v != 0 {
			t.Fatalf("gray reuse not zeroed at %d", i)
		}
	}
	PutGray(g2)
}

func TestPutNilIsNoop(t *testing.T) {
	PutBinary(nil)
	PutGray(nil)
	PutRGB(nil)
}

func TestBoxAverageRGBIntoMatchesAlloc(t *testing.T) {
	src := NewRGB(37, 23)
	for i := range src.Pix {
		src.Pix[i] = uint8((i*31 + 7) % 256)
	}
	want := BoxAverageRGB(src, 3)
	var dst *RGB
	var sat []int64
	// Run twice through the same scratch: the second pass must not be
	// polluted by the first.
	for pass := 0; pass < 2; pass++ {
		dst, sat = BoxAverageRGBInto(dst, src, 3, sat)
		if dst.W != want.W || dst.H != want.H {
			t.Fatalf("pass %d: got %dx%d", pass, dst.W, dst.H)
		}
		for i := range want.Pix {
			if dst.Pix[i] != want.Pix[i] {
				t.Fatalf("pass %d: pixel %d = %d, want %d", pass, i, dst.Pix[i], want.Pix[i])
			}
		}
	}
	// Shrink after growth: reuse the scratch for a smaller frame.
	small := NewRGB(9, 5)
	for i := range small.Pix {
		small.Pix[i] = uint8(i)
	}
	wantSmall := BoxAverageRGB(small, 5)
	dst, _ = BoxAverageRGBInto(dst, small, 5, sat)
	for i := range wantSmall.Pix {
		if dst.Pix[i] != wantSmall.Pix[i] {
			t.Fatalf("small: pixel %d = %d, want %d", i, dst.Pix[i], wantSmall.Pix[i])
		}
	}
}

func TestMedianFilterBinaryIntoMatchesAlloc(t *testing.T) {
	src := NewBinary(21, 17)
	for i := range src.Pix {
		if (i*13)%5 < 2 {
			src.Pix[i] = 1
		}
	}
	want := MedianFilterBinary(src, 3)
	dst := GetBinary(21, 17)
	// Dirty the destination first: Into must overwrite every pixel.
	for i := range dst.Pix {
		dst.Pix[i] = 1
	}
	got := MedianFilterBinaryInto(dst, src, 3)
	if !got.Equal(want) {
		t.Fatal("Into result differs from allocating variant")
	}
	PutBinary(dst)
}

func TestCropIntoMatchesCrop(t *testing.T) {
	src := NewRGB(30, 20)
	for i := range src.Pix {
		src.Pix[i] = uint8(i % 251)
	}
	for _, r := range []Rect{
		NewRect(3, 4, 17, 12),
		NewRect(-5, -5, 10, 10), // clipped
		NewRect(25, 15, 60, 60), // clipped
		NewRect(8, 8, 8, 9),     // empty
	} {
		want := src.Crop(r)
		got := src.CropInto(GetRGB(1, 1), r)
		if got.W != want.W || got.H != want.H {
			t.Fatalf("rect %v: got %dx%d want %dx%d", r, got.W, got.H, want.W, want.H)
		}
		for i := range want.Pix {
			if got.Pix[i] != want.Pix[i] {
				t.Fatalf("rect %v: pixel %d differs", r, i)
			}
		}
		PutRGB(got)
	}
}
