package imaging

import "sort"

// MedianFilterBinary applies a k×k median filter to a binary image; k must be
// odd and >= 1. For bi-level data the median reduces to majority voting, so
// the filter fills pinholes and shaves ridged edges exactly as the paper uses
// it on the extracted silhouette (Figure 1(c)). Pixels whose window leaves
// the image are computed over the in-bounds part of the window.
func MedianFilterBinary(src *Binary, k int) *Binary {
	return MedianFilterBinaryInto(nil, src, k)
}

// MedianFilterBinaryInto is MedianFilterBinary writing into dst, which is
// resized as needed (nil allocates a fresh image). dst must not alias src.
// It returns dst, so hot paths can recycle one destination buffer across
// frames instead of allocating per call.
func MedianFilterBinaryInto(dst *Binary, src *Binary, k int) *Binary {
	if k < 1 || k%2 == 0 {
		panic("imaging.MedianFilterBinary: kernel size must be odd and positive")
	}
	if dst == nil {
		dst = &Binary{}
	}
	dst.W, dst.H = src.W, src.H
	if n := src.W * src.H; cap(dst.Pix) < n { //slj:alloc-ok dst regrow on first use or a larger frame, amortised across frames
		dst.Pix = make([]uint8, n)
	} else {
		dst.Pix = dst.Pix[:n]
	}
	out := dst
	r := k / 2
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			ones, total := 0, 0
			for dy := -r; dy <= r; dy++ {
				yy := y + dy
				if yy < 0 || yy >= src.H {
					continue
				}
				row := src.Pix[yy*src.W:]
				for dx := -r; dx <= r; dx++ {
					xx := x + dx
					if xx < 0 || xx >= src.W {
						continue
					}
					total++
					if row[xx] != 0 {
						ones++
					}
				}
			}
			if 2*ones > total {
				out.Pix[y*out.W+x] = 1
			} else {
				out.Pix[y*out.W+x] = 0
			}
		}
	}
	return out
}

// MedianFilterGray applies a k×k median filter to a grayscale image; k must
// be odd. Border pixels use the in-bounds part of the window.
func MedianFilterGray(src *Gray, k int) *Gray {
	if k < 1 || k%2 == 0 {
		panic("imaging.MedianFilterGray: kernel size must be odd and positive")
	}
	out := NewGray(src.W, src.H)
	r := k / 2
	window := make([]uint8, 0, k*k)
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			window = window[:0]
			for dy := -r; dy <= r; dy++ {
				yy := y + dy
				if yy < 0 || yy >= src.H {
					continue
				}
				row := src.Pix[yy*src.W:]
				for dx := -r; dx <= r; dx++ {
					xx := x + dx
					if xx < 0 || xx >= src.W {
						continue
					}
					window = append(window, row[xx])
				}
			}
			sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
			out.Pix[y*out.W+x] = window[len(window)/2]
		}
	}
	return out
}

// BoxAverageRGB computes, for every pixel and channel, the mean over an n×n
// window centred on the pixel, exactly the moving-window average matrices
// A_ave and B_ave of Section 2 (steps i–ii). n must be odd and positive.
// Windows are clipped at the border and averaged over the in-bounds pixels.
//
// The implementation uses per-channel summed-area tables so the cost is
// O(W·H) independent of n.
func BoxAverageRGB(src *RGB, n int) *RGB {
	out, _ := BoxAverageRGBInto(nil, src, n, nil)
	return out
}

// BoxAverageRGBInto is BoxAverageRGB writing into dst (resized as needed;
// nil allocates) with sat as summed-area scratch (grown as needed; nil
// allocates). dst must not alias src. It returns dst and the scratch so a
// hot path can thread both through successive frames and reach zero
// steady-state allocations.
func BoxAverageRGBInto(dst *RGB, src *RGB, n int, sat []int64) (*RGB, []int64) {
	if n < 1 || n%2 == 0 {
		panic("imaging.BoxAverageRGB: window size must be odd and positive")
	}
	w, h := src.W, src.H
	if dst == nil {
		dst = &RGB{}
	}
	dst.W, dst.H = w, h
	if need := 3 * w * h; cap(dst.Pix) < need { //slj:alloc-ok dst regrow on first use or a larger frame, amortised across frames
		dst.Pix = make([]uint8, need)
	} else {
		dst.Pix = dst.Pix[:need]
	}
	out := dst
	// Per-channel summed-area tables with a zero top row and left column,
	// packed back to back in sat: sat[c*sw*sh + (y+1)*sw + x+1] is the
	// channel-c sum over the rectangle [0..x]×[0..y].
	sw, sh := w+1, h+1
	if need := 3 * sw * sh; cap(sat) < need {
		sat = make([]int64, need) //slj:alloc-ok summed-area scratch regrow, amortised across frames
	} else {
		sat = sat[:need]
		clear(sat[:sw]) // zero top row; the fill below writes the rest
		for c := 1; c < 3; c++ {
			clear(sat[c*sw*sh : c*sw*sh+sw])
		}
	}
	var tab [3][]int64
	for c := 0; c < 3; c++ {
		tab[c] = sat[c*sw*sh : (c+1)*sw*sh]
	}
	for y := 0; y < h; y++ {
		var run [3]int64
		tab[0][(y+1)*sw], tab[1][(y+1)*sw], tab[2][(y+1)*sw] = 0, 0, 0 // zero left column
		for x := 0; x < w; x++ {
			i := 3 * (y*w + x)
			for c := 0; c < 3; c++ {
				run[c] += int64(src.Pix[i+c])
				tab[c][(y+1)*sw+x+1] = tab[c][y*sw+x+1] + run[c]
			}
		}
	}
	r := n / 2
	for y := 0; y < h; y++ {
		y0, y1 := y-r, y+r+1
		if y0 < 0 {
			y0 = 0
		}
		if y1 > h {
			y1 = h
		}
		for x := 0; x < w; x++ {
			x0, x1 := x-r, x+r+1
			if x0 < 0 {
				x0 = 0
			}
			if x1 > w {
				x1 = w
			}
			area := int64((y1 - y0) * (x1 - x0))
			o := 3 * (y*w + x)
			for c := 0; c < 3; c++ {
				s := tab[c][y1*sw+x1] - tab[c][y0*sw+x1] - tab[c][y1*sw+x0] + tab[c][y0*sw+x0]
				out.Pix[o+c] = uint8((s + area/2) / area)
			}
		}
	}
	return out, sat
}

// Dilate returns the binary dilation of src with a 3×3 square structuring
// element: a pixel is foreground if any pixel in its 8-neighbourhood
// (or itself) is foreground.
func Dilate(src *Binary) *Binary {
	out := NewBinary(src.W, src.H)
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			if src.Pix[y*src.W+x] != 0 {
				out.Pix[y*out.W+x] = 1
				continue
			}
			for _, d := range Neighbors8 {
				xx, yy := x+d.X, y+d.Y
				if xx >= 0 && xx < src.W && yy >= 0 && yy < src.H && src.Pix[yy*src.W+xx] != 0 {
					out.Pix[y*out.W+x] = 1
					break
				}
			}
		}
	}
	return out
}

// Erode returns the binary erosion of src with a 3×3 square structuring
// element: a pixel stays foreground only if its whole 8-neighbourhood is
// foreground. Pixels on the image border are eroded (treated as touching
// background).
func Erode(src *Binary) *Binary {
	out := NewBinary(src.W, src.H)
	for y := 0; y < src.H; y++ {
	pixels:
		for x := 0; x < src.W; x++ {
			if src.Pix[y*src.W+x] == 0 {
				continue
			}
			for _, d := range Neighbors8 {
				xx, yy := x+d.X, y+d.Y
				if xx < 0 || xx >= src.W || yy < 0 || yy >= src.H || src.Pix[yy*src.W+xx] == 0 {
					continue pixels
				}
			}
			out.Pix[y*out.W+x] = 1
		}
	}
	return out
}

// Open performs erosion followed by dilation (removes small speckle).
func Open(src *Binary) *Binary { return Dilate(Erode(src)) }

// Close performs dilation followed by erosion (fills small holes).
func Close(src *Binary) *Binary { return Erode(Dilate(src)) }
