package imaging

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	tests := []struct {
		name    string
		p, q    Point
		wantAdd Point
		wantSub Point
	}{
		{"origin", Point{0, 0}, Point{0, 0}, Point{0, 0}, Point{0, 0}},
		{"positive", Point{1, 2}, Point{3, 4}, Point{4, 6}, Point{-2, -2}},
		{"negative", Point{-1, -2}, Point{3, -4}, Point{2, -6}, Point{-4, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Add(tt.q); got != tt.wantAdd {
				t.Errorf("Add = %v, want %v", got, tt.wantAdd)
			}
			if got := tt.p.Sub(tt.q); got != tt.wantSub {
				t.Errorf("Sub = %v, want %v", got, tt.wantSub)
			}
		})
	}
}

func TestPointIn(t *testing.T) {
	tests := []struct {
		name string
		p    Point
		w, h int
		want bool
	}{
		{"inside", Point{3, 4}, 10, 10, true},
		{"origin", Point{0, 0}, 1, 1, true},
		{"right edge", Point{10, 4}, 10, 10, false},
		{"bottom edge", Point{4, 10}, 10, 10, false},
		{"negative x", Point{-1, 4}, 10, 10, false},
		{"negative y", Point{4, -1}, 10, 10, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.In(tt.w, tt.h); got != tt.want {
				t.Errorf("In(%d,%d) = %v, want %v", tt.w, tt.h, got, tt.want)
			}
		})
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(1, 2, 5, 7)
	if r.Dx() != 4 || r.Dy() != 5 {
		t.Fatalf("Dx/Dy = %d/%d, want 4/5", r.Dx(), r.Dy())
	}
	if r.Empty() {
		t.Fatal("non-degenerate rect reported empty")
	}
	if (Rect{}).Empty() != true {
		t.Fatal("zero rect should be empty")
	}
	if !r.Contains(Point{1, 2}) {
		t.Error("Min corner should be contained")
	}
	if r.Contains(Point{5, 7}) {
		t.Error("Max corner should be excluded")
	}
}

func TestRectUnionIntersect(t *testing.T) {
	tests := []struct {
		name      string
		a, b      Rect
		wantUnion Rect
		wantInter Rect
	}{
		{
			name:      "overlapping",
			a:         NewRect(0, 0, 4, 4),
			b:         NewRect(2, 2, 6, 6),
			wantUnion: NewRect(0, 0, 6, 6),
			wantInter: NewRect(2, 2, 4, 4),
		},
		{
			name:      "disjoint",
			a:         NewRect(0, 0, 2, 2),
			b:         NewRect(5, 5, 7, 7),
			wantUnion: NewRect(0, 0, 7, 7),
			wantInter: Rect{},
		},
		{
			name:      "contained",
			a:         NewRect(0, 0, 10, 10),
			b:         NewRect(3, 3, 4, 4),
			wantUnion: NewRect(0, 0, 10, 10),
			wantInter: NewRect(3, 3, 4, 4),
		},
		{
			name:      "empty operand",
			a:         Rect{},
			b:         NewRect(1, 1, 2, 2),
			wantUnion: NewRect(1, 1, 2, 2),
			wantInter: Rect{},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Union(tt.b); got != tt.wantUnion {
				t.Errorf("Union = %v, want %v", got, tt.wantUnion)
			}
			got := tt.a.Intersect(tt.b)
			if got.Empty() != tt.wantInter.Empty() {
				t.Fatalf("Intersect emptiness = %v, want %v", got, tt.wantInter)
			}
			if !got.Empty() && got != tt.wantInter {
				t.Errorf("Intersect = %v, want %v", got, tt.wantInter)
			}
		})
	}
}

func TestGrayRoundTrip(t *testing.T) {
	g := NewGray(7, 5)
	g.Set(3, 2, 200)
	if got := g.At(3, 2); got != 200 {
		t.Fatalf("At = %d, want 200", got)
	}
	c := g.Clone()
	c.Set(3, 2, 10)
	if g.At(3, 2) != 200 {
		t.Fatal("Clone aliases the original backing array")
	}
	g.Fill(9)
	for _, v := range g.Pix {
		if v != 9 {
			t.Fatal("Fill did not set every pixel")
		}
	}
}

func TestRGBGrayConversion(t *testing.T) {
	m := NewRGB(2, 1)
	m.Set(0, 0, 255, 255, 255)
	m.Set(1, 0, 255, 0, 0)
	g := m.Gray()
	if g.At(0, 0) != 255 {
		t.Errorf("white luma = %d, want 255", g.At(0, 0))
	}
	if got := g.At(1, 0); got != 76 { // 299*255/1000
		t.Errorf("red luma = %d, want 76", got)
	}
}

func TestBinaryBasics(t *testing.T) {
	b := NewBinary(4, 3)
	if b.Count() != 0 {
		t.Fatal("fresh image should be empty")
	}
	b.Set(1, 1, 1)
	b.Set(3, 2, 1)
	if b.Count() != 2 {
		t.Fatalf("Count = %d, want 2", b.Count())
	}
	if got := b.ForegroundBounds(); got != NewRect(1, 1, 4, 3) {
		t.Fatalf("ForegroundBounds = %v", got)
	}
	pts := b.Points()
	if len(pts) != 2 || pts[0] != (Point{1, 1}) || pts[1] != (Point{3, 2}) {
		t.Fatalf("Points = %v", pts)
	}
	b.Invert()
	if b.Count() != 10 {
		t.Fatalf("after Invert Count = %d, want 10", b.Count())
	}
}

func TestForegroundBoundsEmpty(t *testing.T) {
	b := NewBinary(5, 5)
	if got := b.ForegroundBounds(); !got.Empty() {
		t.Fatalf("empty image bounds = %v, want empty", got)
	}
}

func TestBinaryEqual(t *testing.T) {
	a := FromASCII("##.\n.#.\n")
	b := FromASCII("##.\n.#.\n")
	c := FromASCII("##.\n..#\n")
	if !a.Equal(b) {
		t.Error("identical images compare unequal")
	}
	if a.Equal(c) {
		t.Error("different images compare equal")
	}
	d := NewBinary(2, 3)
	if a.Equal(d) {
		t.Error("different sizes compare equal")
	}
}

func TestASCIIRoundTrip(t *testing.T) {
	src := FromASCII(`
.#..#
.###.
..#..
`)
	got := FromASCII(ASCII(src, 1))
	if !src.Equal(got) {
		t.Fatalf("ASCII round trip mismatch:\n%s\nvs\n%s", ASCII(src, 1), ASCII(got, 1))
	}
}

func TestASCIIDownsample(t *testing.T) {
	b := NewBinary(4, 4)
	b.Set(3, 3, 1)
	s := ASCII(b, 2)
	want := "..\n.#\n"
	if s != want {
		t.Fatalf("ASCII step=2 = %q, want %q", s, want)
	}
}

func quickBinary(r *rand.Rand, w, h int, density float64) *Binary {
	b := NewBinary(w, h)
	for i := range b.Pix {
		if r.Float64() < density {
			b.Pix[i] = 1
		}
	}
	return b
}

func TestASCIIRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		w, h := 1+rr.Intn(20), 1+rr.Intn(20)
		b := quickBinary(rr, w, h, 0.4)
		// FromASCII pads short rows, so compare only up to the last
		// foreground column; simplest is to ensure width survives by
		// setting the corner pixel.
		b.Set(w-1, h-1, 1)
		return b.Equal(FromASCII(ASCII(b, 1)))
	}
	cfg := &quick.Config{MaxCount: 50, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMedianFilterBinaryFillsPinhole(t *testing.T) {
	b := FromASCII(`
#####
##.##
#####
`)
	out := MedianFilterBinary(b, 3)
	if out.At(2, 1) != 1 {
		t.Error("3x3 median should fill a single-pixel hole")
	}
}

func TestMedianFilterBinaryRemovesSpeckle(t *testing.T) {
	b := NewBinary(9, 9)
	b.Set(4, 4, 1)
	out := MedianFilterBinary(b, 3)
	if out.Count() != 0 {
		t.Error("3x3 median should remove an isolated pixel")
	}
}

func TestMedianFilterBinaryPreservesSolid(t *testing.T) {
	b := NewBinary(10, 10)
	for y := 2; y < 8; y++ {
		for x := 2; x < 8; x++ {
			b.Set(x, y, 1)
		}
	}
	out := MedianFilterBinary(b, 3)
	for y := 3; y < 7; y++ {
		for x := 3; x < 7; x++ {
			if out.At(x, y) != 1 {
				t.Fatalf("interior pixel (%d,%d) lost", x, y)
			}
		}
	}
}

func TestMedianFilterBinaryPanicsOnEvenKernel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for even kernel")
		}
	}()
	MedianFilterBinary(NewBinary(3, 3), 2)
}

func TestMedianFilterGray(t *testing.T) {
	g := NewGray(3, 3)
	g.Fill(100)
	g.Set(1, 1, 255) // hot pixel
	out := MedianFilterGray(g, 3)
	if out.At(1, 1) != 100 {
		t.Errorf("median should suppress the hot pixel, got %d", out.At(1, 1))
	}
}

func TestMedianFilterGrayIdentityOnConstant(t *testing.T) {
	g := NewGray(8, 8)
	g.Fill(42)
	out := MedianFilterGray(g, 5)
	for _, v := range out.Pix {
		if v != 42 {
			t.Fatal("median of constant image changed a pixel")
		}
	}
}

func TestBoxAverageRGBWindow1IsIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := NewRGB(13, 9)
	for i := range m.Pix {
		m.Pix[i] = uint8(r.Intn(256))
	}
	out := BoxAverageRGB(m, 1)
	if !bytes.Equal(out.Pix, m.Pix) {
		t.Fatal("1x1 box average should be the identity")
	}
}

func TestBoxAverageRGBConstant(t *testing.T) {
	m := NewRGB(16, 16)
	m.Fill(37, 99, 200)
	out := BoxAverageRGB(m, 5)
	for i := 0; i < len(out.Pix); i += 3 {
		if out.Pix[i] != 37 || out.Pix[i+1] != 99 || out.Pix[i+2] != 200 {
			t.Fatalf("constant image average changed at %d: %v", i, out.Pix[i:i+3])
		}
	}
}

func TestBoxAverageRGBInterior(t *testing.T) {
	// A 3x3 window over a checkerboard of 0/255 in one channel averages to
	// either 4/9 or 5/9 of 255 depending on parity.
	m := NewRGB(9, 9)
	for y := 0; y < 9; y++ {
		for x := 0; x < 9; x++ {
			if (x+y)%2 == 0 {
				m.Set(x, y, 255, 0, 0)
			}
		}
	}
	out := BoxAverageRGB(m, 3)
	r, _, _ := out.At(4, 4)
	want := uint8((5*255 + 4) / 9) // centre parity even → 5 bright pixels
	if r != want {
		t.Fatalf("checkerboard centre average = %d, want %d", r, want)
	}
}

func TestBoxAverageMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := NewRGB(17, 11)
	for i := range m.Pix {
		m.Pix[i] = uint8(r.Intn(256))
	}
	const n = 5
	got := BoxAverageRGB(m, n)
	// Naive reference implementation.
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			var sum [3]int
			cnt := 0
			for dy := -n / 2; dy <= n/2; dy++ {
				for dx := -n / 2; dx <= n/2; dx++ {
					xx, yy := x+dx, y+dy
					if xx < 0 || xx >= m.W || yy < 0 || yy >= m.H {
						continue
					}
					cnt++
					rr, gg, bb := m.At(xx, yy)
					sum[0] += int(rr)
					sum[1] += int(gg)
					sum[2] += int(bb)
				}
			}
			gr, gg2, gb := got.At(x, y)
			want := [3]uint8{
				uint8((sum[0] + cnt/2) / cnt),
				uint8((sum[1] + cnt/2) / cnt),
				uint8((sum[2] + cnt/2) / cnt),
			}
			if gr != want[0] || gg2 != want[1] || gb != want[2] {
				t.Fatalf("mismatch at (%d,%d): got (%d,%d,%d) want %v", x, y, gr, gg2, gb, want)
			}
		}
	}
}

func TestDilateErodeDuality(t *testing.T) {
	b := FromASCII(`
.....
.###.
.###.
.###.
.....
`)
	d := Dilate(b)
	if d.Count() != 25 {
		t.Errorf("dilate of 3x3 block in 5x5 should fill image, got %d", d.Count())
	}
	e := Erode(b)
	if e.Count() != 1 || e.At(2, 2) != 1 {
		t.Errorf("erode should leave only the centre, got %d pixels", e.Count())
	}
}

func TestOpenRemovesSpeckleClosesHole(t *testing.T) {
	speckle := NewBinary(10, 10)
	speckle.Set(5, 5, 1)
	if Open(speckle).Count() != 0 {
		t.Error("Open should remove isolated speckle")
	}

	holed := NewBinary(10, 10)
	for y := 2; y < 8; y++ {
		for x := 2; x < 8; x++ {
			holed.Set(x, y, 1)
		}
	}
	holed.Set(4, 4, 0)
	closed := Close(holed)
	if closed.At(4, 4) != 1 {
		t.Error("Close should fill a single-pixel hole")
	}
}

func TestErodeDilateProperty(t *testing.T) {
	// Erosion is anti-extensive, dilation is extensive.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		b := quickBinary(rr, 12, 12, 0.5)
		e, d := Erode(b), Dilate(b)
		for i := range b.Pix {
			if e.Pix[i] == 1 && b.Pix[i] == 0 {
				return false
			}
			if b.Pix[i] == 1 && d.Pix[i] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestComponents(t *testing.T) {
	b := FromASCII(`
##...
##..#
....#
#....
`)
	_, comps4 := Components(b, Connect4)
	if len(comps4) != 3 {
		t.Fatalf("4-connected components = %d, want 3", len(comps4))
	}
	// The single diagonal touch between (1,1)-block and (4,1) pixel does not
	// merge under 4-connectivity; nothing is diagonal here so 8 gives 3 too.
	_, comps8 := Components(b, Connect8)
	if len(comps8) != 3 {
		t.Fatalf("8-connected components = %d, want 3", len(comps8))
	}
}

func TestComponentsDiagonal(t *testing.T) {
	b := FromASCII(`
#.
.#
`)
	_, c4 := Components(b, Connect4)
	_, c8 := Components(b, Connect8)
	if len(c4) != 2 {
		t.Errorf("diagonal pixels: 4-connected = %d comps, want 2", len(c4))
	}
	if len(c8) != 1 {
		t.Errorf("diagonal pixels: 8-connected = %d comps, want 1", len(c8))
	}
}

func TestComponentsMetadata(t *testing.T) {
	b := FromASCII(`
.....
.###.
.....
`)
	_, comps := Components(b, Connect8)
	if len(comps) != 1 {
		t.Fatalf("components = %d, want 1", len(comps))
	}
	c := comps[0]
	if c.Size != 3 {
		t.Errorf("Size = %d, want 3", c.Size)
	}
	if c.Bounds != NewRect(1, 1, 4, 2) {
		t.Errorf("Bounds = %v", c.Bounds)
	}
	if c.Label != 1 {
		t.Errorf("Label = %d, want 1", c.Label)
	}
}

func TestLargestComponent(t *testing.T) {
	b := FromASCII(`
##....#
##....#
.......
#......
`)
	out := LargestComponent(b, Connect8)
	if out.Count() != 4 {
		t.Fatalf("largest component size = %d, want 4", out.Count())
	}
	if out.At(0, 0) != 1 || out.At(6, 0) != 0 || out.At(0, 3) != 0 {
		t.Error("wrong component retained")
	}
}

func TestLargestComponentEmpty(t *testing.T) {
	out := LargestComponent(NewBinary(4, 4), Connect8)
	if out.Count() != 0 {
		t.Fatal("largest component of empty image should be empty")
	}
}

func TestFillHoles(t *testing.T) {
	b := FromASCII(`
.......
.#####.
.#...#.
.#.#.#.
.#...#.
.#####.
.......
`)
	filled := FillHoles(b, Connect8)
	for y := 1; y <= 5; y++ {
		for x := 1; x <= 5; x++ {
			if filled.At(x, y) != 1 {
				t.Fatalf("hole pixel (%d,%d) not filled", x, y)
			}
		}
	}
	if filled.At(0, 0) != 0 {
		t.Error("exterior background was filled")
	}
}

func TestCountHoles(t *testing.T) {
	tests := []struct {
		name string
		img  string
		want int
	}{
		{"no holes", ".....\n.###.\n.....\n", 0},
		{"one hole", "#####\n#...#\n#####\n", 1},
		{"two holes", "#######\n#.###.#\n#######\n", 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CountHoles(FromASCII(tt.img), Connect8); got != tt.want {
				t.Errorf("CountHoles = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestFillCapsule(t *testing.T) {
	b := NewBinary(20, 20)
	FillCapsule(b, Pointf{5, 10}, Pointf{15, 10}, 2)
	if b.At(10, 10) != 1 {
		t.Error("centre of capsule not filled")
	}
	if b.At(10, 12) != 1 {
		t.Error("pixel within radius not filled")
	}
	if b.At(10, 14) != 0 {
		t.Error("pixel outside radius filled")
	}
	if b.At(2, 10) != 0 {
		t.Error("pixel beyond endpoint cap filled")
	}
	if b.At(4, 10) != 1 {
		t.Error("end cap should extend by radius")
	}
}

func TestFillCapsuleClipped(t *testing.T) {
	b := NewBinary(10, 10)
	// Partially outside the image; must not panic.
	FillCapsule(b, Pointf{-5, 5}, Pointf{5, 5}, 3)
	if b.At(0, 5) != 1 {
		t.Error("clipped capsule missing in-bounds pixels")
	}
}

func TestFillDisc(t *testing.T) {
	b := NewBinary(11, 11)
	FillDisc(b, Pointf{5, 5}, 3)
	if b.At(5, 5) != 1 || b.At(5, 2) != 1 || b.At(8, 5) != 1 {
		t.Error("disc interior missing")
	}
	if b.At(8, 8) != 0 {
		t.Error("disc corner should be outside radius")
	}
}

func TestDrawLine(t *testing.T) {
	b := NewBinary(10, 10)
	DrawLine(b, Point{0, 0}, Point{9, 9})
	for i := 0; i < 10; i++ {
		if b.At(i, i) != 1 {
			t.Fatalf("diagonal pixel (%d,%d) missing", i, i)
		}
	}
	b2 := NewBinary(10, 10)
	DrawLine(b2, Point{9, 3}, Point{0, 3}) // right-to-left horizontal
	if b2.Count() != 10 {
		t.Fatalf("horizontal line has %d pixels, want 10", b2.Count())
	}
}

func TestPaintMask(t *testing.T) {
	dst := NewRGB(3, 3)
	mask := NewBinary(3, 3)
	mask.Set(1, 1, 1)
	if err := PaintMask(dst, mask, 10, 20, 30); err != nil {
		t.Fatal(err)
	}
	r, g, b := dst.At(1, 1)
	if r != 10 || g != 20 || b != 30 {
		t.Errorf("painted pixel = (%d,%d,%d)", r, g, b)
	}
	if r, _, _ := dst.At(0, 0); r != 0 {
		t.Error("unmasked pixel modified")
	}
	if err := PaintMask(dst, NewBinary(2, 2), 0, 0, 0); err == nil {
		t.Error("expected dimension mismatch error")
	}
}

func TestPPMRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	m := NewRGB(13, 7)
	for i := range m.Pix {
		m.Pix[i] = uint8(r.Intn(256))
	}
	var buf bytes.Buffer
	if err := EncodePPM(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != m.W || got.H != m.H || !bytes.Equal(got.Pix, m.Pix) {
		t.Fatal("PPM round trip mismatch")
	}
}

func TestPGMRoundTrip(t *testing.T) {
	g := NewGray(5, 4)
	for i := range g.Pix {
		g.Pix[i] = uint8(i * 13)
	}
	var buf bytes.Buffer
	if err := EncodePGM(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != g.W || got.H != g.H || !bytes.Equal(got.Pix, g.Pix) {
		t.Fatal("PGM round trip mismatch")
	}
}

func TestPBMRoundTrip(t *testing.T) {
	for _, w := range []int{1, 7, 8, 9, 16, 17} {
		b := NewBinary(w, 3)
		r := rand.New(rand.NewSource(int64(w)))
		for i := range b.Pix {
			b.Pix[i] = uint8(r.Intn(2))
		}
		var buf bytes.Buffer
		if err := EncodePBM(&buf, b); err != nil {
			t.Fatal(err)
		}
		got, err := DecodePBM(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !b.Equal(got) {
			t.Fatalf("PBM round trip mismatch at width %d", w)
		}
	}
}

func TestDecodeNetpbmWithComments(t *testing.T) {
	data := "P5\n# a comment\n3 2\n# another\n255\nabcdef"
	g, err := DecodePGM(bytes.NewReader([]byte(data)))
	if err != nil {
		t.Fatal(err)
	}
	if g.W != 3 || g.H != 2 || g.Pix[0] != 'a' {
		t.Fatalf("decoded %dx%d first=%q", g.W, g.H, g.Pix[0])
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		data string
	}{
		{"bad magic", "P9\n2 2\n255\nabcd"},
		{"truncated pixels", "P5\n4 4\n255\nab"},
		{"bad dims", "P5\n0 4\n255\n"},
		{"garbage dims", "P5\nxx 4\n255\n"},
		{"empty", ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodePGM(bytes.NewReader([]byte(tt.data))); err == nil {
				t.Error("expected decode error")
			}
		})
	}
}

func TestConnectivityString(t *testing.T) {
	if Connect4.String() != "4-connected" || Connect8.String() != "8-connected" {
		t.Error("Connectivity.String mismatch")
	}
	if Connectivity(0).String() != "unknown-connectivity" {
		t.Error("zero Connectivity should stringify as unknown")
	}
}

func TestPointfGeometry(t *testing.T) {
	a := Pointf{0, 0}
	b := Pointf{3, 4}
	if d := a.Dist(b); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if got := b.Scale(2); got != (Pointf{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := b.Round(); got != (Point{3, 4}) {
		t.Errorf("Round = %v", got)
	}
	if got := (Pointf{1.5, 2.5}).Round(); got != (Point{2, 3}) {
		t.Errorf("Round half-up = %v", got)
	}
}

func TestDistToSegment(t *testing.T) {
	tests := []struct {
		name    string
		p, a, b Pointf
		want    float64
	}{
		{"perpendicular", Pointf{5, 5}, Pointf{0, 0}, Pointf{10, 0}, 5},
		{"beyond end", Pointf{13, 4}, Pointf{0, 0}, Pointf{10, 0}, 5},
		{"degenerate segment", Pointf{3, 4}, Pointf{0, 0}, Pointf{0, 0}, 5},
		{"on segment", Pointf{5, 0}, Pointf{0, 0}, Pointf{10, 0}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := distToSegment(tt.p, tt.a, tt.b); got != tt.want {
				t.Errorf("distToSegment = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestFlipHBinary(t *testing.T) {
	b := FromASCII(`
#..
##.
`)
	f := b.FlipH()
	want := FromASCII(`
..#
.##
`)
	if !f.Equal(want) {
		t.Fatalf("FlipH mismatch:\n%s", ASCII(f, 1))
	}
	// Involution: flipping twice restores the original.
	if !f.FlipH().Equal(b) {
		t.Error("FlipH is not an involution")
	}
}

func TestFlipHRGB(t *testing.T) {
	m := NewRGB(3, 2)
	m.Set(0, 0, 1, 2, 3)
	m.Set(2, 1, 9, 8, 7)
	f := m.FlipH()
	if r, g, b := f.At(2, 0); r != 1 || g != 2 || b != 3 {
		t.Error("pixel (0,0) did not move to (2,0)")
	}
	if r, _, _ := f.At(0, 1); r != 9 {
		t.Error("pixel (2,1) did not move to (0,1)")
	}
}

func TestCropRGB(t *testing.T) {
	m := NewRGB(8, 6)
	m.Set(3, 2, 10, 20, 30)
	c := m.Crop(NewRect(2, 1, 6, 5))
	if c.W != 4 || c.H != 4 {
		t.Fatalf("crop size = %dx%d", c.W, c.H)
	}
	if r, g, b := c.At(1, 1); r != 10 || g != 20 || b != 30 {
		t.Error("cropped pixel value wrong")
	}
	// Clipping.
	c2 := m.Crop(NewRect(-5, -5, 3, 3))
	if c2.W != 3 || c2.H != 3 {
		t.Errorf("clipped crop = %dx%d, want 3x3", c2.W, c2.H)
	}
	// Disjoint.
	c3 := m.Crop(NewRect(100, 100, 110, 110))
	if c3.W != 1 || c3.H != 1 {
		t.Errorf("disjoint crop = %dx%d, want 1x1", c3.W, c3.H)
	}
}

func TestAccessors(t *testing.T) {
	if (Point{1, 2}).String() != "(1,2)" {
		t.Error("Point.String mismatch")
	}
	g := NewGray(4, 3)
	if !g.In(3, 2) || g.In(4, 0) || g.Bounds() != NewRect(0, 0, 4, 3) {
		t.Error("Gray accessors wrong")
	}
	m := NewRGB(4, 3)
	if !m.In(0, 0) || m.In(-1, 0) {
		t.Error("RGB.In wrong")
	}
	c := m.Clone()
	c.Set(1, 1, 9, 9, 9)
	if r, _, _ := m.At(1, 1); r != 0 {
		t.Error("RGB.Clone aliases")
	}
	b := NewBinary(4, 3)
	if !b.In(3, 2) || b.Bounds().Dy() != 3 {
		t.Error("Binary accessors wrong")
	}
	if (Pointf{1, 2}).Add(Pointf{3, 4}) != (Pointf{4, 6}) {
		t.Error("Pointf.Add wrong")
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, fn := range []func(){
		func() { NewGray(0, 1) },
		func() { NewRGB(1, 0) },
		func() { NewBinary(-1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for bad dimensions")
				}
			}()
			fn()
		}()
	}
}
