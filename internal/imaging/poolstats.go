package imaging

import "repro/internal/obs"

// PoolStats counts buffer-pool traffic across all three image pools.
// A hit is a Get served by a recycled buffer, a miss is a Get that had
// to allocate a fresh image (the pool was empty or the GC emptied it),
// a put is a successful return to the pool, and a double Put is a Put
// of an already-pooled image that the pooled flag degraded to a no-op.
// The distinction was previously invisible: Get* zeroes the buffer
// either way, so only these counters reveal whether the pool actually
// absorbs the per-frame churn. Because gets == hits + misses, the
// difference (hits + misses) - puts is the number of buffers currently
// checked out of the pools — a leak detector when diffed across a
// region that should be balanced.
//
// The counters are process-global (the pools are too) and always on —
// each is a single uncontended atomic add, far below the cost of the
// clear() in grab. Readers should diff snapshots around the region of
// interest rather than assume a zero start.
type PoolStats struct {
	Hits       obs.Counter
	Misses     obs.Counter
	Puts       obs.Counter
	DoublePuts obs.Counter
}

var poolStats PoolStats

// Pool returns the process-wide image pool counters (never nil).
func Pool() *PoolStats { return &poolStats }

// PoolCounters returns a point-in-time (hits, misses, doublePuts)
// reading, for tests and registry pull-metrics.
func PoolCounters() (hits, misses, doublePuts int64) {
	return poolStats.Hits.Value(), poolStats.Misses.Value(), poolStats.DoublePuts.Value()
}

// PoolBalance returns gets - puts: the number of pooled buffers
// currently checked out across the three image pools. Escaped buffers
// (deliberately never Put) keep the absolute value positive; diff two
// readings around a region expected to release everything it got.
func PoolBalance() int64 {
	return poolStats.Hits.Value() + poolStats.Misses.Value() - poolStats.Puts.Value()
}

// countGet classifies one pool Get: a recycled image comes back with
// its previous backing slice (every pooled image was sized by grab
// before Put), while sync.Pool's New constructs the zero value with a
// nil Pix.
func countGet(recycled bool) {
	if recycled {
		poolStats.Hits.Inc()
	} else {
		poolStats.Misses.Inc()
	}
}
