// Package stats provides the evaluation metrics of Section 5: per-clip
// and overall pose-classification accuracy, confusion matrices, per-stage
// breakdowns, and the consecutive-error-run analysis behind the paper's
// observation that "most errors in our experiments occurred in
// consecutive frames".
package stats

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pose"
)

// Confusion is a pose confusion matrix. Rows are truth, columns are
// predictions; index 0 is PoseUnknown.
type Confusion struct {
	// Counts[t][p] is the number of frames with truth t predicted p.
	Counts [pose.NumPoses + 1][pose.NumPoses + 1]int
}

// Add records one frame.
func (c *Confusion) Add(truth, predicted pose.Pose) {
	c.Counts[clampPose(truth)][clampPose(predicted)]++
}

func clampPose(p pose.Pose) int {
	if p < 0 || int(p) > pose.NumPoses {
		return 0
	}
	return int(p)
}

// Total returns the number of recorded frames.
func (c *Confusion) Total() int {
	n := 0
	for t := range c.Counts {
		for p := range c.Counts[t] {
			n += c.Counts[t][p]
		}
	}
	return n
}

// Correct returns the number of frames predicted exactly right.
func (c *Confusion) Correct() int {
	n := 0
	for i := range c.Counts {
		n += c.Counts[i][i]
	}
	return n
}

// Accuracy returns Correct/Total, or 0 for an empty matrix.
func (c *Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.Correct()) / float64(t)
}

// UnknownRate returns the fraction of frames predicted Unknown.
func (c *Confusion) UnknownRate() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	n := 0
	for truth := range c.Counts {
		n += c.Counts[truth][0]
	}
	return float64(n) / float64(t)
}

// PerPoseRecall returns recall per true pose (skipping poses never seen).
func (c *Confusion) PerPoseRecall() map[pose.Pose]float64 {
	out := make(map[pose.Pose]float64)
	for t := 1; t <= pose.NumPoses; t++ {
		total := 0
		for p := range c.Counts[t] {
			total += c.Counts[t][p]
		}
		if total > 0 {
			out[pose.Pose(t)] = float64(c.Counts[t][t]) / float64(total)
		}
	}
	return out
}

// TopConfusions returns the n largest off-diagonal cells, descending.
func (c *Confusion) TopConfusions(n int) []ConfusionCell {
	var cells []ConfusionCell
	for t := range c.Counts {
		for p := range c.Counts[t] {
			if t != p && c.Counts[t][p] > 0 {
				cells = append(cells, ConfusionCell{
					Truth: pose.Pose(t), Predicted: pose.Pose(p), Count: c.Counts[t][p],
				})
			}
		}
	}
	sort.SliceStable(cells, func(i, j int) bool { return cells[i].Count > cells[j].Count })
	if len(cells) > n {
		cells = cells[:n]
	}
	return cells
}

// ConfusionCell is one off-diagonal confusion entry.
type ConfusionCell struct {
	Truth, Predicted pose.Pose
	Count            int
}

// ClipResult is the evaluation of one clip.
type ClipResult struct {
	// Name identifies the clip.
	Name string
	// Frames is the clip length.
	Frames int
	// Correct is the number of exactly-right frames.
	Correct int
	// Unknown is the number of rejected frames.
	Unknown int
	// ErrorRuns is the run-length histogram of consecutive-error spans:
	// ErrorRuns[k] = number of maximal error runs of length k.
	ErrorRuns map[int]int
	// StageCorrect and StageTotal break accuracy down by the TRUE
	// frame's canonical stage.
	StageCorrect, StageTotal map[pose.Stage]int
}

// Accuracy returns the clip's frame accuracy.
func (c ClipResult) Accuracy() float64 {
	if c.Frames == 0 {
		return 0
	}
	return float64(c.Correct) / float64(c.Frames)
}

// EvaluateClip scores a prediction sequence against the truth. The
// sequences must be equal length.
func EvaluateClip(name string, truth, predicted []pose.Pose) (ClipResult, error) {
	if len(truth) != len(predicted) {
		return ClipResult{}, fmt.Errorf("stats: %d truth frames vs %d predictions", len(truth), len(predicted))
	}
	res := ClipResult{
		Name: name, Frames: len(truth),
		ErrorRuns:    make(map[int]int),
		StageCorrect: make(map[pose.Stage]int),
		StageTotal:   make(map[pose.Stage]int),
	}
	run := 0
	for i := range truth {
		st := pose.StageOf(truth[i])
		res.StageTotal[st]++
		ok := truth[i] == predicted[i]
		if ok {
			res.Correct++
			res.StageCorrect[st]++
			if run > 0 {
				res.ErrorRuns[run]++
				run = 0
			}
		} else {
			run++
		}
		if predicted[i] == pose.PoseUnknown {
			res.Unknown++
		}
	}
	if run > 0 {
		res.ErrorRuns[run]++
	}
	return res, nil
}

// MeanErrorRunLength returns the average length of maximal error runs,
// or 0 when there are none. Values well above 1 confirm the paper's
// errors-cluster-in-consecutive-frames observation.
func (c ClipResult) MeanErrorRunLength() float64 {
	runs, frames := 0, 0
	for length, count := range c.ErrorRuns {
		runs += count
		frames += length * count
	}
	if runs == 0 {
		return 0
	}
	return float64(frames) / float64(runs)
}

// Summary aggregates clip results into the Section 5 table.
type Summary struct {
	Clips []ClipResult
}

// Add appends a clip result.
func (s *Summary) Add(c ClipResult) { s.Clips = append(s.Clips, c) }

// PerStageAccuracy aggregates stage-level accuracy across clips; stages
// never seen are absent from the map.
func (s *Summary) PerStageAccuracy() map[pose.Stage]float64 {
	correct := make(map[pose.Stage]int)
	total := make(map[pose.Stage]int)
	for _, c := range s.Clips {
		for st, n := range c.StageTotal {
			total[st] += n
		}
		for st, n := range c.StageCorrect {
			correct[st] += n
		}
	}
	out := make(map[pose.Stage]float64, len(total))
	for st, n := range total {
		if n > 0 {
			out[st] = float64(correct[st]) / float64(n)
		}
	}
	return out
}

// OverallAccuracy returns total correct over total frames.
func (s *Summary) OverallAccuracy() float64 {
	correct, frames := 0, 0
	for _, c := range s.Clips {
		correct += c.Correct
		frames += c.Frames
	}
	if frames == 0 {
		return 0
	}
	return float64(correct) / float64(frames)
}

// MinAccuracy and MaxAccuracy give the per-clip accuracy band — the
// paper reports "from 81% to 87% for the three test video clips".
func (s *Summary) MinAccuracy() float64 {
	if len(s.Clips) == 0 {
		return 0
	}
	m := s.Clips[0].Accuracy()
	for _, c := range s.Clips[1:] {
		if a := c.Accuracy(); a < m {
			m = a
		}
	}
	return m
}

// MaxAccuracy returns the best per-clip accuracy.
func (s *Summary) MaxAccuracy() float64 {
	m := 0.0
	for _, c := range s.Clips {
		if a := c.Accuracy(); a > m {
			m = a
		}
	}
	return m
}

// TotalFrames returns the summed clip lengths.
func (s *Summary) TotalFrames() int {
	n := 0
	for _, c := range s.Clips {
		n += c.Frames
	}
	return n
}

// Table renders the per-clip accuracy table in the shape of the paper's
// Section 5 result.
func (s *Summary) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %8s %14s\n", "clip", "frames", "correct", "unknown", "acc", "mean err run")
	for _, c := range s.Clips {
		fmt.Fprintf(&b, "%-12s %8d %8d %8d %7.1f%% %14.2f\n",
			c.Name, c.Frames, c.Correct, c.Unknown, 100*c.Accuracy(), c.MeanErrorRunLength())
	}
	fmt.Fprintf(&b, "%-12s %8d %8s %8s %7.1f%%  (band %.0f%%-%.0f%%)\n",
		"overall", s.TotalFrames(), "", "", 100*s.OverallAccuracy(),
		100*s.MinAccuracy(), 100*s.MaxAccuracy())
	return b.String()
}
