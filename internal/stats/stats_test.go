package stats

import (
	"strings"
	"testing"

	"repro/internal/pose"
)

func TestConfusionBasics(t *testing.T) {
	var c Confusion
	c.Add(pose.AirTuck, pose.AirTuck)
	c.Add(pose.AirTuck, pose.AirTuck)
	c.Add(pose.AirTuck, pose.AirExtendForward)
	c.Add(pose.LandCrouch, pose.PoseUnknown)
	if c.Total() != 4 {
		t.Errorf("Total = %d, want 4", c.Total())
	}
	if c.Correct() != 2 {
		t.Errorf("Correct = %d, want 2", c.Correct())
	}
	if c.Accuracy() != 0.5 {
		t.Errorf("Accuracy = %v, want 0.5", c.Accuracy())
	}
	if c.UnknownRate() != 0.25 {
		t.Errorf("UnknownRate = %v, want 0.25", c.UnknownRate())
	}
}

func TestConfusionEmpty(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.UnknownRate() != 0 {
		t.Error("empty confusion should report zeros")
	}
}

func TestConfusionOutOfRangeClamps(t *testing.T) {
	var c Confusion
	c.Add(pose.Pose(99), pose.Pose(-3))
	if c.Counts[0][0] != 1 {
		t.Error("out-of-range poses should clamp to the unknown cell")
	}
}

func TestPerPoseRecall(t *testing.T) {
	var c Confusion
	c.Add(pose.AirTuck, pose.AirTuck)
	c.Add(pose.AirTuck, pose.PoseUnknown)
	c.Add(pose.LandStand, pose.LandStand)
	rec := c.PerPoseRecall()
	if rec[pose.AirTuck] != 0.5 {
		t.Errorf("AirTuck recall = %v, want 0.5", rec[pose.AirTuck])
	}
	if rec[pose.LandStand] != 1.0 {
		t.Errorf("LandStand recall = %v, want 1", rec[pose.LandStand])
	}
	if _, ok := rec[pose.AirArch]; ok {
		t.Error("recall reported for a pose never seen")
	}
}

func TestTopConfusions(t *testing.T) {
	var c Confusion
	for i := 0; i < 5; i++ {
		c.Add(pose.AirTuck, pose.AirExtendForward)
	}
	for i := 0; i < 2; i++ {
		c.Add(pose.LandCrouch, pose.LandDeepCrouch)
	}
	c.Add(pose.AirTuck, pose.AirTuck) // diagonal, excluded
	top := c.TopConfusions(10)
	if len(top) != 2 {
		t.Fatalf("top = %d cells, want 2", len(top))
	}
	if top[0].Count != 5 || top[0].Truth != pose.AirTuck {
		t.Errorf("top confusion = %+v", top[0])
	}
	if got := c.TopConfusions(1); len(got) != 1 {
		t.Errorf("limit not applied: %d", len(got))
	}
}

func TestEvaluateClip(t *testing.T) {
	truth := []pose.Pose{
		pose.StandHandsAtSides, pose.StandHandsForward, pose.AirTuck,
		pose.AirTuck, pose.LandCrouch, pose.LandStand,
	}
	pred := []pose.Pose{
		pose.StandHandsAtSides, pose.PoseUnknown, pose.PoseUnknown,
		pose.AirTuck, pose.LandCrouch, pose.LandStand,
	}
	res, err := EvaluateClip("clip1", truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 6 || res.Correct != 4 || res.Unknown != 2 {
		t.Errorf("result = %+v", res)
	}
	if res.Accuracy() != 4.0/6 {
		t.Errorf("accuracy = %v", res.Accuracy())
	}
	// One error run of length 2.
	if res.ErrorRuns[2] != 1 || len(res.ErrorRuns) != 1 {
		t.Errorf("error runs = %v, want {2:1}", res.ErrorRuns)
	}
	if res.MeanErrorRunLength() != 2 {
		t.Errorf("mean run = %v, want 2", res.MeanErrorRunLength())
	}
}

func TestEvaluateClipTrailingRun(t *testing.T) {
	truth := []pose.Pose{pose.AirTuck, pose.AirTuck, pose.AirTuck}
	pred := []pose.Pose{pose.AirTuck, pose.LandCrouch, pose.LandCrouch}
	res, err := EvaluateClip("c", truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRuns[2] != 1 {
		t.Errorf("trailing error run not recorded: %v", res.ErrorRuns)
	}
}

func TestEvaluateClipLengthMismatch(t *testing.T) {
	_, err := EvaluateClip("c", []pose.Pose{pose.AirTuck}, nil)
	if err == nil {
		t.Fatal("length mismatch not rejected")
	}
}

func TestEvaluateClipPerfect(t *testing.T) {
	truth := []pose.Pose{pose.AirTuck, pose.LandCrouch}
	res, err := EvaluateClip("c", truth, truth)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy() != 1 || len(res.ErrorRuns) != 0 || res.MeanErrorRunLength() != 0 {
		t.Errorf("perfect clip mis-scored: %+v", res)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	s.Add(ClipResult{Name: "a", Frames: 50, Correct: 45})
	s.Add(ClipResult{Name: "b", Frames: 40, Correct: 32})
	s.Add(ClipResult{Name: "c", Frames: 45, Correct: 39})
	if got := s.TotalFrames(); got != 135 { // the paper's test-set size
		t.Errorf("TotalFrames = %d", got)
	}
	if acc := s.OverallAccuracy(); acc < 0.85 || acc > 0.87 {
		t.Errorf("overall = %v", acc)
	}
	if s.MinAccuracy() != 0.8 {
		t.Errorf("min = %v, want 0.8", s.MinAccuracy())
	}
	if s.MaxAccuracy() != 0.9 {
		t.Errorf("max = %v, want 0.9", s.MaxAccuracy())
	}
	table := s.Table()
	for _, want := range []string{"clip", "overall", "band"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.OverallAccuracy() != 0 || s.MinAccuracy() != 0 || s.MaxAccuracy() != 0 {
		t.Error("empty summary should report zeros")
	}
}

func TestPerStageAccuracy(t *testing.T) {
	truth := []pose.Pose{
		pose.StandHandsAtSides, pose.StandHandsForward, // before jumping
		pose.TakeoffExtension, // jumping
		pose.AirTuck,          // air
		pose.LandCrouch,       // landing
	}
	pred := []pose.Pose{
		pose.StandHandsAtSides, pose.PoseUnknown,
		pose.TakeoffExtension,
		pose.AirExtendForward,
		pose.LandCrouch,
	}
	res, err := EvaluateClip("c", truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	s.Add(res)
	acc := s.PerStageAccuracy()
	if acc[pose.StageBeforeJump] != 0.5 {
		t.Errorf("before-jump accuracy = %v, want 0.5", acc[pose.StageBeforeJump])
	}
	if acc[pose.StageJump] != 1.0 {
		t.Errorf("jump accuracy = %v, want 1", acc[pose.StageJump])
	}
	if acc[pose.StageAir] != 0.0 {
		t.Errorf("air accuracy = %v, want 0", acc[pose.StageAir])
	}
	if acc[pose.StageLanding] != 1.0 {
		t.Errorf("landing accuracy = %v, want 1", acc[pose.StageLanding])
	}
}

func TestCalibrationValidation(t *testing.T) {
	if _, err := NewCalibration(1); err == nil {
		t.Error("1 bin accepted")
	}
}

func TestCalibrationPerfect(t *testing.T) {
	c, err := NewCalibration(10)
	if err != nil {
		t.Fatal(err)
	}
	// Confidence 0.8: exactly 80% correct -> ECE near 0.
	for i := 0; i < 100; i++ {
		c.Add(0.8, i < 80)
	}
	if ece := c.ECE(); ece > 0.01 {
		t.Errorf("perfectly calibrated ECE = %v", ece)
	}
	if c.Total() != 100 {
		t.Errorf("Total = %d", c.Total())
	}
}

func TestCalibrationOverconfident(t *testing.T) {
	c, err := NewCalibration(10)
	if err != nil {
		t.Fatal(err)
	}
	// Confidence 0.95 but only 50% correct: large ECE.
	for i := 0; i < 100; i++ {
		c.Add(0.95, i%2 == 0)
	}
	if ece := c.ECE(); ece < 0.4 {
		t.Errorf("overconfident ECE = %v, want ~0.45", ece)
	}
}

func TestCalibrationClampAndEmpty(t *testing.T) {
	c, err := NewCalibration(5)
	if err != nil {
		t.Fatal(err)
	}
	if c.ECE() != 0 {
		t.Error("empty ECE should be 0")
	}
	c.Add(1.5, true)   // clamps to top bin
	c.Add(-0.2, false) // clamps to bottom bin
	if c.Total() != 2 {
		t.Errorf("Total = %d", c.Total())
	}
	if !strings.Contains(c.Table(), "expected calibration error") {
		t.Error("table missing ECE line")
	}
}
