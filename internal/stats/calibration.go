package stats

import (
	"fmt"
	"strings"
)

// Calibration measures how trustworthy the classifier's posterior
// probabilities are: predictions are binned by confidence and each bin's
// empirical accuracy is compared with its mean confidence. A perfectly
// calibrated classifier has accuracy == confidence in every bin; the
// expected calibration error (ECE) is the weighted mean absolute gap.
//
// The paper thresholds posteriors (Th_Pose) without examining their
// reliability; this analysis makes the threshold choice inspectable.
type Calibration struct {
	bins  int
	count []int
	conf  []float64
	hit   []int
}

// NewCalibration builds an empty reliability diagram with the given
// number of confidence bins (>= 2).
func NewCalibration(bins int) (*Calibration, error) {
	if bins < 2 {
		return nil, fmt.Errorf("stats: calibration needs >= 2 bins, got %d", bins)
	}
	return &Calibration{
		bins:  bins,
		count: make([]int, bins),
		conf:  make([]float64, bins),
		hit:   make([]int, bins),
	}, nil
}

// Add records one prediction with its confidence (clamped to [0,1]) and
// whether it was correct.
func (c *Calibration) Add(confidence float64, correct bool) {
	if confidence < 0 {
		confidence = 0
	} else if confidence > 1 {
		confidence = 1
	}
	b := int(confidence * float64(c.bins))
	if b >= c.bins {
		b = c.bins - 1
	}
	c.count[b]++
	c.conf[b] += confidence
	if correct {
		c.hit[b]++
	}
}

// Total returns the number of recorded predictions.
func (c *Calibration) Total() int {
	n := 0
	for _, v := range c.count {
		n += v
	}
	return n
}

// ECE returns the expected calibration error in [0,1]; 0 for an empty
// diagram.
func (c *Calibration) ECE() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	ece := 0.0
	for b := 0; b < c.bins; b++ {
		if c.count[b] == 0 {
			continue
		}
		acc := float64(c.hit[b]) / float64(c.count[b])
		avg := c.conf[b] / float64(c.count[b])
		gap := acc - avg
		if gap < 0 {
			gap = -gap
		}
		ece += gap * float64(c.count[b]) / float64(total)
	}
	return ece
}

// Table renders the reliability diagram.
func (c *Calibration) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %12s %10s\n", "confidence", "n", "mean conf", "accuracy")
	for i := 0; i < c.bins; i++ {
		lo := float64(i) / float64(c.bins)
		hi := float64(i+1) / float64(c.bins)
		if c.count[i] == 0 {
			continue
		}
		fmt.Fprintf(&b, "[%.2f,%.2f) %8d %11.2f %9.2f\n",
			lo, hi, c.count[i],
			c.conf[i]/float64(c.count[i]),
			float64(c.hit[i])/float64(c.count[i]))
	}
	fmt.Fprintf(&b, "expected calibration error: %.3f\n", c.ECE())
	return b.String()
}
