// Package scoring implements the third part of the paper's system: with
// "the determined poses in all the frames, bad movements can thus be
// identified" and "advices to the jumper can be given". It encodes the
// standing-long-jump standards as rules over the per-frame pose sequence
// and produces a fault list with coaching advice plus a numeric score.
package scoring

import (
	"fmt"

	"repro/internal/pose"
)

// FaultCode identifies a deviation from the standard.
type FaultCode string

// The rule catalogue.
const (
	// FaultNoBackswing: the arms were never swung backward during
	// preparation.
	FaultNoBackswing FaultCode = "no-backswing"
	// FaultNoCrouch: no preparatory crouch before take-off.
	FaultNoCrouch FaultCode = "no-crouch"
	// FaultNoExtension: no full knee/ankle extension at take-off.
	FaultNoExtension FaultCode = "no-extension"
	// FaultArchedBack: the body arched backward in flight.
	FaultArchedBack FaultCode = "arched-back"
	// FaultNoTuck: the knees were never tucked / legs never swung
	// forward in flight.
	FaultNoTuck FaultCode = "no-tuck"
	// FaultFellBackward: the jumper fell backward on landing.
	FaultFellBackward FaultCode = "fell-backward"
	// FaultSteppedForward: the jumper stepped forward out of the landing.
	FaultSteppedForward FaultCode = "stepped-forward"
	// FaultNoAbsorption: no absorbing crouch on landing.
	FaultNoAbsorption FaultCode = "no-absorption"
	// FaultIncomplete: the clip never reaches flight — not a real jump.
	FaultIncomplete FaultCode = "incomplete-jump"
	// FaultRushedPreparation: the preparation phase is too short for a
	// proper swing-and-crouch sequence.
	FaultRushedPreparation FaultCode = "rushed-preparation"
	// FaultShortFlight: the flight phase is implausibly short — the
	// jump had no height or the take-off was aborted.
	FaultShortFlight FaultCode = "short-flight"
)

// Minimum phase durations (frames) for a well-formed jump at the
// paper's ~25 fps: preparation needs time for the swing and crouch;
// flight shorter than 3 frames means almost no air time.
const (
	minPreparationFrames = 6
	minFlightFrames      = 3
)

// Fault is one detected deviation.
type Fault struct {
	// Code identifies the rule.
	Code FaultCode
	// Description says what was observed.
	Description string
	// Advice is the coaching cue.
	Advice string
	// FirstFrame, LastFrame bound the offending (or missing) span;
	// for missing-element faults they bound the stage searched.
	FirstFrame, LastFrame int
	// Deduction is the score penalty in points.
	Deduction int
}

// Report is the full evaluation of one clip.
type Report struct {
	// Frames is the number of frames evaluated.
	Frames int
	// Faults lists detected deviations in rule-catalogue order.
	Faults []Fault
	// Score is 100 minus deductions, floored at 0.
	Score int
	// UnknownFrames counts frames the classifier rejected.
	UnknownFrames int
	// StageSpans maps each reached stage to its [first, last] frame.
	StageSpans map[pose.Stage][2]int
}

// HasFault reports whether the report contains the code.
func (r Report) HasFault(code FaultCode) bool {
	for _, f := range r.Faults {
		if f.Code == code {
			return true
		}
	}
	return false
}

// Smooth removes single-frame blips from a pose sequence: a frame whose
// neighbours agree with each other but not with it takes the neighbours'
// value. Unknown frames adopt the previous recognised pose. This mirrors
// the paper's observation that "most errors ... occurred in consecutive
// frames" — isolated errors are cheap to repair before rule evaluation.
func Smooth(seq []pose.Pose) []pose.Pose {
	out := make([]pose.Pose, len(seq))
	copy(out, seq)
	// Fill Unknowns with the previous recognised pose.
	last := pose.PoseUnknown
	for i, p := range out {
		if p == pose.PoseUnknown {
			if last != pose.PoseUnknown {
				out[i] = last
			}
		} else {
			last = p
		}
	}
	// Repair isolated blips.
	for i := 1; i+1 < len(out); i++ {
		if out[i-1] == out[i+1] && out[i] != out[i-1] {
			out[i] = out[i-1]
		}
	}
	return out
}

// stageSpans computes the frame span of each stage from the pose
// sequence, using the canonical stage FSM.
func stageSpans(seq []pose.Pose) map[pose.Stage][2]int {
	spans := make(map[pose.Stage][2]int)
	stage := pose.StageBeforeJump
	for i, p := range seq {
		stage = pose.NextStage(stage, p)
		if sp, ok := spans[stage]; ok {
			sp[1] = i
			spans[stage] = sp
		} else {
			spans[stage] = [2]int{i, i}
		}
	}
	return spans
}

// contains reports whether any of the poses appears within frames
// [from, to] of seq.
func contains(seq []pose.Pose, from, to int, poses ...pose.Pose) (int, bool) {
	for i := from; i <= to && i < len(seq); i++ {
		for _, p := range poses {
			if seq[i] == p {
				return i, true
			}
		}
	}
	return 0, false
}

// Evaluate applies the standard's rules to a recognised pose sequence
// (one pose per frame; PoseUnknown allowed) and produces the report.
func Evaluate(seq []pose.Pose) Report {
	rep := Report{
		Frames:     len(seq),
		StageSpans: make(map[pose.Stage][2]int),
	}
	for _, p := range seq {
		if p == pose.PoseUnknown {
			rep.UnknownFrames++
		}
	}
	smoothed := Smooth(seq)
	rep.StageSpans = stageSpans(smoothed)

	add := func(code FaultCode, desc, advice string, first, last, deduction int) {
		rep.Faults = append(rep.Faults, Fault{
			Code: code, Description: desc, Advice: advice,
			FirstFrame: first, LastFrame: last, Deduction: deduction,
		})
	}

	airSpan, reachedAir := rep.StageSpans[pose.StageAir]
	if !reachedAir {
		add(FaultIncomplete,
			"the clip never reaches the flight phase",
			"perform a complete jump: swing, crouch, take off and land",
			0, max(len(seq)-1, 0), 40)
	}

	// Phase-duration rules.
	if sp, ok := rep.StageSpans[pose.StageBeforeJump]; ok {
		if dur := sp[1] - sp[0] + 1; dur < minPreparationFrames {
			add(FaultRushedPreparation,
				fmt.Sprintf("the preparation lasted only %d frames", dur),
				"take time before the jump: swing the arms and settle into the crouch",
				sp[0], sp[1], 5)
		}
	}
	if reachedAir {
		if dur := airSpan[1] - airSpan[0] + 1; dur < minFlightFrames {
			add(FaultShortFlight,
				fmt.Sprintf("the flight phase lasted only %d frames", dur),
				"drive harder at take-off to gain air time",
				airSpan[0], airSpan[1], 10)
		}
	}

	// Preparation rules, evaluated over the before-jump span.
	if sp, ok := rep.StageSpans[pose.StageBeforeJump]; ok {
		if _, found := contains(smoothed, sp[0], sp[1],
			pose.StandHandsBackward, pose.CrouchHandsBackward); !found {
			add(FaultNoBackswing,
				"the arms were never swung backward during preparation",
				"swing both arms backward before jumping to build momentum",
				sp[0], sp[1], 10)
		}
		if _, found := contains(smoothed, sp[0], sp[1],
			pose.CrouchHandsBackward, pose.CrouchHandsForward); !found {
			add(FaultNoCrouch,
				"no preparatory crouch was observed",
				"bend your knees to about 90 degrees before taking off",
				sp[0], sp[1], 15)
		}
	}

	// Take-off extension.
	if _, found := contains(smoothed, 0, len(smoothed)-1,
		pose.TakeoffExtension, pose.TakeoffLean, pose.TakeoffToeOff); !found {
		add(FaultNoExtension,
			"knees and ankles were never fully extended at take-off",
			"drive through the legs: extend knees and ankles completely",
			0, max(len(seq)-1, 0), 15)
	}

	// Flight rules.
	if reachedAir {
		if i, found := contains(smoothed, airSpan[0], airSpan[1], pose.AirArch); found {
			add(FaultArchedBack,
				"the body arched backward in flight",
				"keep the chin down and bring the knees toward the chest",
				i, airSpan[1], 20)
		}
		if _, found := contains(smoothed, airSpan[0], airSpan[1],
			pose.AirTuck, pose.AirExtendForward, pose.AirDescendLegsForward); !found {
			add(FaultNoTuck,
				"the knees were never tucked and the legs never reached forward",
				"tuck the knees at the apex and shoot the legs forward to land",
				airSpan[0], airSpan[1], 15)
		}
	}

	// Landing rules.
	if sp, ok := rep.StageSpans[pose.StageLanding]; ok {
		if i, found := contains(smoothed, sp[0], sp[1], pose.LandFallBack); found {
			add(FaultFellBackward,
				"the jumper fell backward after touchdown",
				"throw the arms forward on landing and keep the weight over the feet",
				i, sp[1], 20)
		}
		if i, found := contains(smoothed, sp[0], sp[1], pose.LandStepForward); found {
			add(FaultSteppedForward,
				"the jumper stepped forward out of the landing",
				"stick the landing: hold both feet in place until balanced",
				i, sp[1], 10)
		}
		if _, found := contains(smoothed, sp[0], sp[1],
			pose.LandCrouch, pose.LandDeepCrouch); !found {
			add(FaultNoAbsorption,
				"the landing was not absorbed with a crouch",
				"bend the knees on touchdown to absorb the impact",
				sp[0], sp[1], 10)
		}
	}

	score := 100
	for _, f := range rep.Faults {
		score -= f.Deduction
	}
	if score < 0 {
		score = 0
	}
	rep.Score = score
	return rep
}

// String renders a human-readable coaching report.
func (r Report) String() string {
	s := fmt.Sprintf("score %d/100 over %d frames (%d unknown)\n", r.Score, r.Frames, r.UnknownFrames)
	if len(r.Faults) == 0 {
		s += "no faults detected — a standard jump\n"
		return s
	}
	for _, f := range r.Faults {
		s += fmt.Sprintf("- [%s] frames %d-%d: %s (-%d)\n    advice: %s\n",
			f.Code, f.FirstFrame, f.LastFrame, f.Description, f.Deduction, f.Advice)
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
