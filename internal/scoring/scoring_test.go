package scoring

import (
	"strings"
	"testing"

	"repro/internal/pose"
	"repro/internal/synth"
)

// seqFromScript expands a synth script into the per-frame label sequence.
func seqFromScript(script []synth.Step) []pose.Pose {
	var seq []pose.Pose
	for _, st := range script {
		for i := 0; i < st.Frames; i++ {
			seq = append(seq, st.Pose)
		}
	}
	return seq
}

func TestStandardJumpScoresClean(t *testing.T) {
	rep := Evaluate(seqFromScript(synth.DefaultScript()))
	if len(rep.Faults) != 0 {
		t.Fatalf("standard jump produced faults: %+v", rep.Faults)
	}
	if rep.Score != 100 {
		t.Errorf("score = %d, want 100", rep.Score)
	}
	if rep.UnknownFrames != 0 {
		t.Errorf("unknown frames = %d", rep.UnknownFrames)
	}
	// All four stages must be reached.
	for s := pose.StageBeforeJump; s <= pose.StageLanding; s++ {
		if _, ok := rep.StageSpans[s]; !ok {
			t.Errorf("stage %v not reached in the span map", s)
		}
	}
}

func TestArchedBackDetected(t *testing.T) {
	rep := Evaluate(seqFromScript(synth.FaultyScript(pose.AirArch)))
	if !rep.HasFault(FaultArchedBack) {
		t.Fatal("arched-back fault not detected")
	}
	if rep.Score >= 100 {
		t.Error("score not deducted")
	}
}

func TestFellBackwardDetected(t *testing.T) {
	rep := Evaluate(seqFromScript(synth.FaultyScript(pose.LandFallBack)))
	if !rep.HasFault(FaultFellBackward) {
		t.Fatal("fell-backward fault not detected")
	}
	// Replacing the absorption crouch also removes absorption.
	if !rep.HasFault(FaultNoAbsorption) {
		t.Error("missing-absorption should also fire when the crouch is replaced")
	}
}

func TestSteppedForwardDetected(t *testing.T) {
	rep := Evaluate(seqFromScript(synth.FaultyScript(pose.LandStepForward)))
	if !rep.HasFault(FaultSteppedForward) {
		t.Fatal("stepped-forward fault not detected")
	}
}

func TestMissingBackswing(t *testing.T) {
	// Build a jump whose preparation goes straight from standing to a
	// forward-arm crouch.
	seq := seqFromScript([]synth.Step{
		{Pose: pose.StandHandsAtSides, Frames: 3},
		{Pose: pose.StandHandsForward, Frames: 3},
		{Pose: pose.CrouchHandsForward, Frames: 3},
		{Pose: pose.TakeoffExtension, Frames: 2},
		{Pose: pose.AirTuck, Frames: 3},
		{Pose: pose.AirDescendLegsForward, Frames: 2},
		{Pose: pose.LandHeelStrike, Frames: 2},
		{Pose: pose.LandCrouch, Frames: 2},
		{Pose: pose.LandStand, Frames: 2},
	})
	rep := Evaluate(seq)
	if !rep.HasFault(FaultNoBackswing) {
		t.Fatal("missing backswing not detected")
	}
	if rep.HasFault(FaultNoCrouch) {
		t.Error("crouch was present but flagged")
	}
}

func TestMissingCrouchAndExtension(t *testing.T) {
	seq := seqFromScript([]synth.Step{
		{Pose: pose.StandHandsAtSides, Frames: 3},
		{Pose: pose.StandHandsBackward, Frames: 2},
		{Pose: pose.TakeoffLean, Frames: 1}, // minimal takeoff to enter air
		{Pose: pose.AirTuck, Frames: 3},
		{Pose: pose.LandHeelStrike, Frames: 2},
		{Pose: pose.LandCrouch, Frames: 2},
	})
	rep := Evaluate(seq)
	if !rep.HasFault(FaultNoCrouch) {
		t.Error("missing crouch not detected")
	}
	if rep.HasFault(FaultNoExtension) {
		t.Error("takeoff pose present but extension flagged missing")
	}
}

func TestIncompleteJump(t *testing.T) {
	seq := seqFromScript([]synth.Step{
		{Pose: pose.StandHandsAtSides, Frames: 5},
		{Pose: pose.StandHandsForward, Frames: 5},
	})
	rep := Evaluate(seq)
	if !rep.HasFault(FaultIncomplete) {
		t.Fatal("incomplete jump not detected")
	}
	if rep.Score > 60 {
		t.Errorf("incomplete jump scored %d, want heavy deduction", rep.Score)
	}
}

func TestNoTuckDetected(t *testing.T) {
	seq := seqFromScript([]synth.Step{
		{Pose: pose.StandHandsAtSides, Frames: 2},
		{Pose: pose.StandHandsBackward, Frames: 2},
		{Pose: pose.CrouchHandsBackward, Frames: 2},
		{Pose: pose.TakeoffExtension, Frames: 2},
		{Pose: pose.AirAscendArmsUp, Frames: 3}, // flight without tuck/extend
		{Pose: pose.LandHeelStrike, Frames: 2},
		{Pose: pose.LandCrouch, Frames: 2},
	})
	rep := Evaluate(seq)
	if !rep.HasFault(FaultNoTuck) {
		t.Fatal("missing tuck not detected")
	}
}

func TestUnknownFramesCounted(t *testing.T) {
	seq := seqFromScript(synth.DefaultScript())
	seq[5] = pose.PoseUnknown
	seq[6] = pose.PoseUnknown
	rep := Evaluate(seq)
	if rep.UnknownFrames != 2 {
		t.Errorf("unknown frames = %d, want 2", rep.UnknownFrames)
	}
}

func TestSmoothRepairsBlip(t *testing.T) {
	seq := []pose.Pose{
		pose.StandHandsAtSides, pose.StandHandsAtSides, pose.AirTuck,
		pose.StandHandsAtSides, pose.StandHandsAtSides,
	}
	out := Smooth(seq)
	if out[2] != pose.StandHandsAtSides {
		t.Error("isolated blip not repaired")
	}
	// Input unchanged.
	if seq[2] != pose.AirTuck {
		t.Error("Smooth mutated its input")
	}
}

func TestSmoothFillsUnknown(t *testing.T) {
	seq := []pose.Pose{
		pose.StandHandsForward, pose.PoseUnknown, pose.PoseUnknown, pose.CrouchHandsForward,
	}
	out := Smooth(seq)
	if out[1] != pose.StandHandsForward || out[2] != pose.StandHandsForward {
		t.Errorf("unknowns not filled: %v", out)
	}
	// Leading unknown with no prior pose stays unknown.
	lead := Smooth([]pose.Pose{pose.PoseUnknown, pose.AirTuck})
	if lead[0] != pose.PoseUnknown {
		t.Error("leading unknown should stay unknown")
	}
}

func TestSmoothBlipSurvivesEvaluation(t *testing.T) {
	// A single mis-classified frame in an otherwise standard jump must
	// not trigger a fault (the smoothing shields the rules).
	seq := seqFromScript(synth.DefaultScript())
	// Corrupt one mid-air frame (with agreeing neighbours) into a
	// fall-back pose.
	for i := 1; i+1 < len(seq); i++ {
		if seq[i] == pose.AirTuck && seq[i-1] == pose.AirTuck && seq[i+1] == pose.AirTuck {
			seq[i] = pose.LandFallBack
			break
		}
	}
	rep := Evaluate(seq)
	if rep.HasFault(FaultFellBackward) {
		t.Error("an isolated misclassification triggered a fault; smoothing ineffective")
	}
}

func TestScoreFloor(t *testing.T) {
	// An empty-ish sequence with everything wrong cannot go below zero.
	rep := Evaluate([]pose.Pose{pose.PoseUnknown, pose.PoseUnknown})
	if rep.Score < 0 {
		t.Errorf("score = %d, want >= 0", rep.Score)
	}
}

func TestEmptySequence(t *testing.T) {
	rep := Evaluate(nil)
	if rep.Frames != 0 {
		t.Errorf("frames = %d", rep.Frames)
	}
	if !rep.HasFault(FaultIncomplete) {
		t.Error("empty sequence should be incomplete")
	}
}

func TestReportString(t *testing.T) {
	clean := Evaluate(seqFromScript(synth.DefaultScript()))
	if !strings.Contains(clean.String(), "no faults") {
		t.Error("clean report should say no faults")
	}
	faulty := Evaluate(seqFromScript(synth.FaultyScript(pose.AirArch)))
	s := faulty.String()
	if !strings.Contains(s, string(FaultArchedBack)) || !strings.Contains(s, "advice:") {
		t.Errorf("faulty report missing content:\n%s", s)
	}
}

func TestRushedPreparationDetected(t *testing.T) {
	seq := seqFromScript([]synth.Step{
		{Pose: pose.StandHandsBackward, Frames: 1},
		{Pose: pose.CrouchHandsBackward, Frames: 2},
		{Pose: pose.TakeoffExtension, Frames: 2},
		{Pose: pose.AirTuck, Frames: 3},
		{Pose: pose.AirDescendLegsForward, Frames: 2},
		{Pose: pose.LandHeelStrike, Frames: 2},
		{Pose: pose.LandCrouch, Frames: 2},
	})
	rep := Evaluate(seq)
	if !rep.HasFault(FaultRushedPreparation) {
		t.Fatal("3-frame preparation not flagged as rushed")
	}
	// A standard jump must NOT trigger it.
	clean := Evaluate(seqFromScript(synth.DefaultScript()))
	if clean.HasFault(FaultRushedPreparation) {
		t.Error("standard jump flagged as rushed")
	}
}

func TestShortFlightDetected(t *testing.T) {
	seq := seqFromScript([]synth.Step{
		{Pose: pose.StandHandsAtSides, Frames: 3},
		{Pose: pose.StandHandsBackward, Frames: 2},
		{Pose: pose.CrouchHandsBackward, Frames: 3},
		{Pose: pose.TakeoffExtension, Frames: 2},
		{Pose: pose.AirTuck, Frames: 2}, // only 2 airborne frames
		{Pose: pose.LandHeelStrike, Frames: 2},
		{Pose: pose.LandCrouch, Frames: 2},
	})
	rep := Evaluate(seq)
	if !rep.HasFault(FaultShortFlight) {
		t.Fatal("2-frame flight not flagged as short")
	}
	clean := Evaluate(seqFromScript(synth.DefaultScript()))
	if clean.HasFault(FaultShortFlight) {
		t.Error("standard jump flagged as short flight")
	}
}
