package bayes

import (
	"math"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	n, ids := sprinkler(t)
	// Add learned counts on top of the fixed CPTs.
	if err := n.Observe([]int{1, 0, 1}, 3); err != nil {
		t.Fatal(err)
	}
	restored, err := FromSnapshot(n.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	// Posteriors must match exactly.
	for q := 0; q < n.Len(); q++ {
		a, err := n.PosteriorVE(q, Evidence{ids[2]: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.PosteriorVE(q, Evidence{ids[2]: 1})
		if err != nil {
			t.Fatal(err)
		}
		for s := range a {
			if math.Abs(a[s]-b[s]) > 1e-12 {
				t.Fatalf("query %d state %d: %v != %v", q, s, a[s], b[s])
			}
		}
	}
	if restored.TotalObservations() != n.TotalObservations() {
		t.Error("observation totals differ")
	}
}

func TestFromSnapshotValidation(t *testing.T) {
	n, _ := sprinkler(t)
	good := n.Snapshot()

	bad := good
	bad.Nodes = append([]NodeSnapshot(nil), good.Nodes...)
	bad.Nodes[0].Counts = []float64{1} // wrong length
	if _, err := FromSnapshot(bad); err == nil {
		t.Error("wrong-length counts accepted")
	}

	bad2 := good
	bad2.Nodes = append([]NodeSnapshot(nil), good.Nodes...)
	bad2.Nodes[0] = NodeSnapshot{Name: "x", States: 2, Parents: []int{9}, Counts: []float64{0, 0}}
	if _, err := FromSnapshot(bad2); err == nil {
		t.Error("dangling parent accepted")
	}

	bad3 := good
	bad3.Nodes = append([]NodeSnapshot(nil), good.Nodes...)
	counts := append([]float64(nil), good.Nodes[0].Counts...)
	counts[0] = -1
	bad3.Nodes[0].Counts = counts
	if _, err := FromSnapshot(bad3); err == nil {
		t.Error("negative count accepted")
	}
}
