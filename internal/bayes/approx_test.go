package bayes

import (
	"math"
	"math/rand"
	"testing"
)

// maxAbsDiff returns the largest per-state difference of two
// distributions.
func maxAbsDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestLikelihoodWeightingMatchesExact(t *testing.T) {
	n, ids := sprinkler(t)
	r := rand.New(rand.NewSource(1))
	exact, err := n.PosteriorVE(ids[0], Evidence{ids[2]: 1})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := n.PosteriorLW(ids[0], Evidence{ids[2]: 1}, 60000, r)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(exact, approx); d > 0.02 {
		t.Errorf("LW off by %v: exact %v, approx %v", d, exact, approx)
	}
}

func TestGibbsMatchesExact(t *testing.T) {
	n, ids := sprinkler(t)
	r := rand.New(rand.NewSource(2))
	exact, err := n.PosteriorVE(ids[0], Evidence{ids[2]: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The sprinkler network's near-deterministic CPTs make the Gibbs
	// chain mix slowly (autocorrelation ~100 sweeps), so this needs many
	// samples and a correspondingly loose tolerance.
	approx, err := n.PosteriorGibbs(ids[0], Evidence{ids[2]: 1}, 5000, 250000, r)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(exact, approx); d > 0.05 {
		t.Errorf("Gibbs off by %v: exact %v, approx %v", d, exact, approx)
	}
}

func TestApproxOnLearnedNetwork(t *testing.T) {
	// A learned chain a -> b -> c with noisy relations: both samplers
	// must approach the exact posterior of the root given the leaf.
	rr := rand.New(rand.NewSource(3))
	n := New()
	n.SetLaplace(1)
	a, _ := n.AddNode("a", 2)
	b, _ := n.AddNode("b", 3, a)
	c, _ := n.AddNode("c", 2, b)
	for k := 0; k < 300; k++ {
		av := rr.Intn(2)
		bv := (av + rr.Intn(2)) % 3
		cv := 0
		if bv == 2 || rr.Float64() < 0.2 {
			cv = 1
		}
		if err := n.Observe([]int{av, bv, cv}, 1); err != nil {
			t.Fatal(err)
		}
	}
	ev := Evidence{c: 1}
	exact, err := n.Posterior(a, ev)
	if err != nil {
		t.Fatal(err)
	}
	lw, err := n.PosteriorLW(a, ev, 50000, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	gibbs, err := n.PosteriorGibbs(a, ev, 1000, 50000, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(exact, lw); d > 0.02 {
		t.Errorf("LW off by %v", d)
	}
	if d := maxAbsDiff(exact, gibbs); d > 0.03 {
		t.Errorf("Gibbs off by %v", d)
	}
}

func TestApproxEvidenceOnQuery(t *testing.T) {
	n, ids := sprinkler(t)
	r := rand.New(rand.NewSource(6))
	lw, err := n.PosteriorLW(ids[0], Evidence{ids[0]: 1}, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	if lw[1] != 1 {
		t.Error("LW should be deterministic for observed query")
	}
	gibbs, err := n.PosteriorGibbs(ids[0], Evidence{ids[0]: 0}, 0, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	if gibbs[0] != 1 {
		t.Error("Gibbs should be deterministic for observed query")
	}
}

func TestApproxValidation(t *testing.T) {
	n, ids := sprinkler(t)
	r := rand.New(rand.NewSource(7))
	if _, err := n.PosteriorLW(99, nil, 10, r); err == nil {
		t.Error("bad query accepted by LW")
	}
	if _, err := n.PosteriorLW(ids[0], nil, 0, r); err == nil {
		t.Error("zero samples accepted by LW")
	}
	if _, err := n.PosteriorGibbs(ids[0], nil, -1, 10, r); err == nil {
		t.Error("negative burnin accepted by Gibbs")
	}
	if _, err := n.PosteriorGibbs(ids[0], Evidence{99: 0}, 0, 10, r); err == nil {
		t.Error("bad evidence accepted by Gibbs")
	}
}

func TestSampleFromCoversSupport(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	counts := make([]int, 3)
	dist := []float64{0.2, 0.5, 0.3}
	for i := 0; i < 30000; i++ {
		counts[sampleFrom(dist, r)]++
	}
	for s, want := range dist {
		got := float64(counts[s]) / 30000
		if math.Abs(got-want) > 0.02 {
			t.Errorf("state %d frequency %v, want %v", s, got, want)
		}
	}
}

func BenchmarkPosteriorLW(b *testing.B) {
	n := New()
	ids := make([]int, 8)
	for i := range ids {
		var parents []int
		if i > 0 {
			parents = []int{ids[i-1]}
		}
		ids[i], _ = n.AddNode("v", 3, parents...)
	}
	r := rand.New(rand.NewSource(1))
	ev := Evidence{ids[7]: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := n.PosteriorLW(ids[0], ev, 1000, r); err != nil {
			b.Fatal(err)
		}
	}
}
