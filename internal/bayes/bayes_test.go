package bayes

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

// sprinkler builds the classic rain/sprinkler/grass network with known
// CPTs: P(R)=0.2; P(S|R)= {0.4, 0.01}; P(G|S,R) as usual.
func sprinkler(t *testing.T) (*Network, [3]int) {
	t.Helper()
	n := New()
	n.SetLaplace(0)
	rain, err := n.AddNode("rain", 2)
	if err != nil {
		t.Fatal(err)
	}
	sprk, err := n.AddNode("sprinkler", 2, rain)
	if err != nil {
		t.Fatal(err)
	}
	grass, err := n.AddNode("grass", 2, sprk, rain)
	if err != nil {
		t.Fatal(err)
	}
	check := func(e error) {
		if e != nil {
			t.Fatal(e)
		}
	}
	check(n.SetCPT(rain, 0, []float64{0.8, 0.2}))
	check(n.SetCPT(sprk, 0, []float64{0.6, 0.4}))   // rain=0
	check(n.SetCPT(sprk, 1, []float64{0.99, 0.01})) // rain=1
	// grass parents: (sprinkler, rain) -> row = s*2 + r
	check(n.SetCPT(grass, 0, []float64{1.0, 0.0}))   // s=0, r=0
	check(n.SetCPT(grass, 1, []float64{0.2, 0.8}))   // s=0, r=1
	check(n.SetCPT(grass, 2, []float64{0.1, 0.9}))   // s=1, r=0
	check(n.SetCPT(grass, 3, []float64{0.01, 0.99})) // s=1, r=1
	return n, [3]int{rain, sprk, grass}
}

func TestSprinklerPosterior(t *testing.T) {
	n, ids := sprinkler(t)
	rain, _, grass := ids[0], ids[1], ids[2]
	// Classic result: P(rain=1 | grass wet).
	dist, err := n.Posterior(rain, Evidence{grass: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Hand computation:
	// P(g=1) = sum over r,s P(r)P(s|r)P(g=1|s,r)
	//  r0s0: .8*.6*0    = 0
	//  r0s1: .8*.4*.9   = .288
	//  r1s0: .2*.99*.8  = .15840
	//  r1s1: .2*.01*.99 = .00198
	// P(r=1,g=1) = .15840+.00198 = .16038; total = .44838
	want := 0.16038 / 0.44838
	if !almostEqual(dist[1], want) {
		t.Errorf("P(rain|wet) = %v, want %v", dist[1], want)
	}
}

func TestPosteriorMatchesVE(t *testing.T) {
	n, ids := sprinkler(t)
	for _, ev := range []Evidence{
		{},
		{ids[2]: 1},
		{ids[2]: 0},
		{ids[1]: 1},
		{ids[1]: 0, ids[2]: 1},
	} {
		for q := 0; q < n.Len(); q++ {
			if _, isEv := ev[q]; isEv {
				continue
			}
			a, err := n.Posterior(q, ev)
			if err != nil {
				t.Fatal(err)
			}
			b, err := n.PosteriorVE(q, ev)
			if err != nil {
				t.Fatal(err)
			}
			for s := range a {
				if !almostEqual(a[s], b[s]) {
					t.Errorf("query %d ev %v state %d: enum %v != VE %v", q, ev, s, a[s], b[s])
				}
			}
		}
	}
}

func TestRandomNetworkEnumVsVE(t *testing.T) {
	// Property: enumeration and variable elimination agree on random
	// small networks with random learned counts and random evidence.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := New()
		n.SetLaplace(1)
		nNodes := 3 + r.Intn(4)
		for i := 0; i < nNodes; i++ {
			var parents []int
			for p := 0; p < i; p++ {
				if r.Float64() < 0.4 {
					parents = append(parents, p)
				}
			}
			if _, err := n.AddNode("v", 2+r.Intn(2), parents...); err != nil {
				return false
			}
		}
		// Random complete observations.
		for k := 0; k < 30; k++ {
			row := make([]int, nNodes)
			for i := 0; i < nNodes; i++ {
				nd, _ := n.Node(i)
				row[i] = r.Intn(nd.States)
			}
			if err := n.Observe(row, 1); err != nil {
				return false
			}
		}
		ev := Evidence{}
		for i := 0; i < nNodes; i++ {
			if r.Float64() < 0.3 {
				nd, _ := n.Node(i)
				ev[i] = r.Intn(nd.States)
			}
		}
		for q := 0; q < nNodes; q++ {
			if _, isEv := ev[q]; isEv {
				continue
			}
			a, err := n.Posterior(q, ev)
			if err != nil {
				return false
			}
			b, err := n.PosteriorVE(q, ev)
			if err != nil {
				return false
			}
			for s := range a {
				if math.Abs(a[s]-b[s]) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLearningRecoversFrequencies(t *testing.T) {
	n := New()
	n.SetLaplace(0)
	a, _ := n.AddNode("a", 2)
	b, _ := n.AddNode("b", 2, a)
	// a=1 with prob 0.25; b copies a.
	data := [][]int{
		{0, 0}, {0, 0}, {0, 0}, {1, 1},
		{0, 0}, {0, 0}, {0, 0}, {1, 1},
	}
	if err := n.Fit(data); err != nil {
		t.Fatal(err)
	}
	if p := n.Prob(a, 0, 1); !almostEqual(p, 0.25) {
		t.Errorf("P(a=1) = %v, want 0.25", p)
	}
	if p := n.Prob(b, 1, 1); !almostEqual(p, 1.0) {
		t.Errorf("P(b=1|a=1) = %v, want 1", p)
	}
	if p := n.Prob(b, 0, 0); !almostEqual(p, 1.0) {
		t.Errorf("P(b=0|a=0) = %v, want 1", p)
	}
}

func TestLaplaceSmoothing(t *testing.T) {
	n := New()
	n.SetLaplace(1)
	a, _ := n.AddNode("a", 2)
	// One observation of a=0: smoothed P(a=1) = (0+1)/(1+2) = 1/3.
	if err := n.Observe([]int{0}, 1); err != nil {
		t.Fatal(err)
	}
	if p := n.Prob(a, 0, 1); !almostEqual(p, 1.0/3) {
		t.Errorf("smoothed P(a=1) = %v, want 1/3", p)
	}
	// Unseen parent rows are uniform.
	n2 := New()
	n2.SetLaplace(0)
	a2, _ := n2.AddNode("a", 4)
	if p := n2.Prob(a2, 0, 2); !almostEqual(p, 0.25) {
		t.Errorf("unseen row P = %v, want uniform 0.25", p)
	}
}

func TestCPTRowSumsToOne(t *testing.T) {
	n := New()
	a, _ := n.AddNode("a", 3)
	b, _ := n.AddNode("b", 4, a)
	_ = n.Observe([]int{1, 2}, 3)
	_ = n.Observe([]int{0, 1}, 1)
	for _, node := range []int{a, b} {
		nd, _ := n.Node(node)
		rows := 1
		for _, p := range nd.Parents {
			pd, _ := n.Node(p)
			rows *= pd.States
		}
		for r := 0; r < rows; r++ {
			row := n.CPTRow(node, r)
			sum := 0.0
			for _, v := range row {
				sum += v
			}
			if !almostEqual(sum, 1) {
				t.Errorf("node %d row %d sums to %v", node, r, sum)
			}
		}
	}
}

func TestJointLogProb(t *testing.T) {
	n, ids := sprinkler(t)
	lp, err := n.JointLogProb([]int{1, 0, 1}) // rain, no sprinkler, wet
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(0.2) + math.Log(0.99) + math.Log(0.8)
	if math.Abs(lp-want) > tol {
		t.Errorf("JointLogProb = %v, want %v", lp, want)
	}
	_ = ids
	if _, err := n.JointLogProb([]int{1, 0}); !errors.Is(err, ErrIncomplete) {
		t.Errorf("short assignment err = %v", err)
	}
	if _, err := n.JointLogProb([]int{1, 0, 9}); !errors.Is(err, ErrBadState) {
		t.Errorf("bad state err = %v", err)
	}
}

func TestAddNodeValidation(t *testing.T) {
	n := New()
	if _, err := n.AddNode("bad", 0); err == nil {
		t.Error("zero states accepted")
	}
	if _, err := n.AddNode("orphan", 2, 5); !errors.Is(err, ErrBadNode) {
		t.Errorf("missing parent err = %v", err)
	}
	a, err := n.AddNode("a", 2)
	if err != nil {
		t.Fatal(err)
	}
	// A parent declared after the child is impossible by construction:
	// children can only reference existing nodes, so cycles cannot form.
	if _, err := n.AddNode("b", 2, a); err != nil {
		t.Fatal(err)
	}
}

func TestObserveValidation(t *testing.T) {
	n := New()
	_, _ = n.AddNode("a", 2)
	if err := n.Observe([]int{0, 1}, 1); !errors.Is(err, ErrIncomplete) {
		t.Errorf("wrong-length err = %v", err)
	}
	if err := n.Observe([]int{5}, 1); !errors.Is(err, ErrBadState) {
		t.Errorf("bad-state err = %v", err)
	}
	if err := n.Observe([]int{0}, -1); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestSetCPTValidation(t *testing.T) {
	n := New()
	a, _ := n.AddNode("a", 2)
	tests := []struct {
		name string
		node int
		cfg  int
		row  []float64
	}{
		{"bad node", 9, 0, []float64{0.5, 0.5}},
		{"bad config", a, 3, []float64{0.5, 0.5}},
		{"short row", a, 0, []float64{1.0}},
		{"negative", a, 0, []float64{-0.5, 1.5}},
		{"bad sum", a, 0, []float64{0.5, 0.1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := n.SetCPT(tt.node, tt.cfg, tt.row); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestPosteriorEvidenceOnQuery(t *testing.T) {
	n, ids := sprinkler(t)
	dist, err := n.Posterior(ids[0], Evidence{ids[0]: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dist[1] != 1 || dist[0] != 0 {
		t.Errorf("evidence on query should be deterministic: %v", dist)
	}
}

func TestPosteriorValidation(t *testing.T) {
	n, ids := sprinkler(t)
	if _, err := n.Posterior(99, nil); !errors.Is(err, ErrBadNode) {
		t.Errorf("bad query err = %v", err)
	}
	if _, err := n.Posterior(ids[0], Evidence{99: 0}); !errors.Is(err, ErrBadNode) {
		t.Errorf("bad evidence node err = %v", err)
	}
	if _, err := n.Posterior(ids[0], Evidence{ids[1]: 9}); !errors.Is(err, ErrBadState) {
		t.Errorf("bad evidence state err = %v", err)
	}
}

func TestMAP(t *testing.T) {
	n, ids := sprinkler(t)
	state, prob, err := n.MAP(ids[0], Evidence{ids[2]: 1})
	if err != nil {
		t.Fatal(err)
	}
	// P(rain=1|wet) ≈ 0.358 < 0.5, so MAP is "no rain".
	if state != 0 {
		t.Errorf("MAP state = %d, want 0", state)
	}
	if prob < 0.6 || prob > 0.7 {
		t.Errorf("MAP prob = %v, want ≈ 0.642", prob)
	}
}

func TestCloneIndependence(t *testing.T) {
	n := New()
	a, _ := n.AddNode("a", 2)
	_ = n.Observe([]int{0}, 1)
	c := n.Clone()
	_ = c.Observe([]int{1}, 10)
	if n.Prob(a, 0, 1) == c.Prob(a, 0, 1) {
		t.Error("clone shares state with original")
	}
	if n.TotalObservations() != 1 {
		t.Errorf("original observations = %v, want 1", n.TotalObservations())
	}
	if c.TotalObservations() != 11 {
		t.Errorf("clone observations = %v, want 11", c.TotalObservations())
	}
}

func TestReset(t *testing.T) {
	n := New()
	n.SetLaplace(0)
	a, _ := n.AddNode("a", 2)
	_ = n.Observe([]int{1}, 5)
	n.Reset()
	if n.TotalObservations() != 0 {
		t.Error("Reset left observations")
	}
	if p := n.Prob(a, 0, 0); !almostEqual(p, 0.5) {
		t.Errorf("after reset P = %v, want uniform", p)
	}
}

func TestZeroProbabilityEvidence(t *testing.T) {
	n := New()
	n.SetLaplace(0)
	a, _ := n.AddNode("a", 2)
	b, _ := n.AddNode("b", 2, a)
	_ = n.SetCPT(a, 0, []float64{1, 0})
	_ = n.SetCPT(b, 0, []float64{1, 0})
	_ = n.SetCPT(b, 1, []float64{1, 0})
	// Evidence b=1 has probability zero; both engines must not NaN.
	for _, fn := range []func(int, Evidence) ([]float64, error){n.Posterior, n.PosteriorVE} {
		dist, err := fn(a, Evidence{b: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range dist {
			if math.IsNaN(p) {
				t.Fatal("NaN posterior on impossible evidence")
			}
		}
	}
}

func TestNetworkString(t *testing.T) {
	n, _ := sprinkler(t)
	if n.String() == "" {
		t.Error("empty String()")
	}
	if n.Len() != 3 {
		t.Errorf("Len = %d, want 3", n.Len())
	}
}

func TestNodeAccessor(t *testing.T) {
	n, ids := sprinkler(t)
	nd, err := n.Node(ids[2])
	if err != nil {
		t.Fatal(err)
	}
	if nd.Name != "grass" || nd.States != 2 || len(nd.Parents) != 2 {
		t.Errorf("Node = %+v", nd)
	}
	if _, err := n.Node(42); !errors.Is(err, ErrBadNode) {
		t.Errorf("bad node err = %v", err)
	}
}

func BenchmarkPosteriorEnum(b *testing.B) {
	n := New()
	ids := make([]int, 10)
	for i := range ids {
		var parents []int
		if i > 0 {
			parents = []int{ids[i-1]}
		}
		ids[i], _ = n.AddNode("v", 3, parents...)
	}
	ev := Evidence{ids[9]: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := n.Posterior(ids[0], ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPosteriorVE(b *testing.B) {
	n := New()
	ids := make([]int, 10)
	for i := range ids {
		var parents []int
		if i > 0 {
			parents = []int{ids[i-1]}
		}
		ids[i], _ = n.AddNode("v", 3, parents...)
	}
	ev := Evidence{ids[9]: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := n.PosteriorVE(ids[0], ev); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDOTExport(t *testing.T) {
	n, _ := sprinkler(t)
	dot := n.DOT("sprinkler")
	for _, want := range []string{"digraph", "rain", "sprinkler", "grass", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Three nodes, three edges (rain->sprinkler, rain->grass, sprinkler->grass).
	if got := strings.Count(dot, "->"); got != 3 {
		t.Errorf("edges = %d, want 3", got)
	}
}
