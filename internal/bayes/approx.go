package bayes

import (
	"fmt"
	"math/rand"
)

// Approximate inference engines. The pose networks are small enough for
// exact inference, but the paper's conclusion asks for richer models
// ("more partitions", "more information"), whose joint tables outgrow
// exact methods; these samplers are the scaling path, and the test suite
// cross-checks them against the exact engines on small networks.

// sampleFrom draws a state from a distribution (which must sum to ~1).
func sampleFrom(dist []float64, r *rand.Rand) int {
	u := r.Float64()
	acc := 0.0
	for s, p := range dist {
		acc += p
		if u < acc {
			return s
		}
	}
	return len(dist) - 1
}

// PosteriorLW estimates P(query | evidence) by likelihood weighting with
// n samples. Evidence variables are clamped and weighted by their CPT
// probability; all other variables are sampled topologically (node order
// is topological by construction).
func (n *Network) PosteriorLW(query int, ev Evidence, samples int, r *rand.Rand) ([]float64, error) {
	if query < 0 || query >= len(n.nodes) {
		return nil, fmt.Errorf("%w: query %d", ErrBadNode, query)
	}
	if err := n.validateEvidence(ev); err != nil {
		return nil, err
	}
	if samples < 1 {
		return nil, fmt.Errorf("bayes: need >= 1 sample, got %d", samples)
	}
	if qs, observed := ev[query]; observed {
		dist := make([]float64, n.nodes[query].States)
		dist[qs] = 1
		return dist, nil
	}
	dist := make([]float64, n.nodes[query].States)
	assignment := make([]int, len(n.nodes))
	total := 0.0
	for k := 0; k < samples; k++ {
		weight := 1.0
		for i := range n.nodes {
			row, err := n.parentConfig(i, assignment)
			if err != nil {
				return nil, err
			}
			if s, observed := ev[i]; observed {
				assignment[i] = s
				weight *= n.Prob(i, row, s)
			} else {
				assignment[i] = sampleFrom(n.CPTRow(i, row), r)
			}
		}
		dist[assignment[query]] += weight
		total += weight
	}
	if total == 0 {
		for s := range dist {
			dist[s] = 1 / float64(len(dist))
		}
		return dist, nil
	}
	for s := range dist {
		dist[s] /= total
	}
	return dist, nil
}

// children[i] lists nodes that have i as a parent; computed on demand
// for Gibbs sampling.
func (n *Network) children() [][]int {
	out := make([][]int, len(n.nodes))
	for c := range n.nodes {
		for _, p := range n.nodes[c].Parents {
			out[p] = append(out[p], c)
		}
	}
	return out
}

// PosteriorGibbs estimates P(query | evidence) with Gibbs sampling:
// burnin sweeps are discarded, then samples sweeps are tallied. Each
// sweep resamples every hidden variable from its full conditional
// (proportional to its CPT row times its children's CPT entries — the
// Markov blanket).
func (n *Network) PosteriorGibbs(query int, ev Evidence, burnin, samples int, r *rand.Rand) ([]float64, error) {
	if query < 0 || query >= len(n.nodes) {
		return nil, fmt.Errorf("%w: query %d", ErrBadNode, query)
	}
	if err := n.validateEvidence(ev); err != nil {
		return nil, err
	}
	if samples < 1 || burnin < 0 {
		return nil, fmt.Errorf("bayes: bad sample counts burnin=%d samples=%d", burnin, samples)
	}
	if qs, observed := ev[query]; observed {
		dist := make([]float64, n.nodes[query].States)
		dist[qs] = 1
		return dist, nil
	}
	children := n.children()

	// Initialise: evidence clamped, hidden sampled from priors given
	// current parents (topological order makes this consistent).
	assignment := make([]int, len(n.nodes))
	var hidden []int
	for i := range n.nodes {
		if s, observed := ev[i]; observed {
			assignment[i] = s
			continue
		}
		hidden = append(hidden, i)
		row, _ := n.parentConfig(i, assignment)
		assignment[i] = sampleFrom(n.CPTRow(i, row), r)
	}

	dist := make([]float64, n.nodes[query].States)
	cond := make([]float64, 0, 8)
	for sweep := 0; sweep < burnin+samples; sweep++ {
		for _, i := range hidden {
			states := n.nodes[i].States
			cond = cond[:0]
			total := 0.0
			for s := 0; s < states; s++ {
				assignment[i] = s
				row, _ := n.parentConfig(i, assignment)
				p := n.Prob(i, row, s)
				for _, c := range children[i] {
					crow, _ := n.parentConfig(c, assignment)
					p *= n.Prob(c, crow, assignment[c])
				}
				cond = append(cond, p)
				total += p
			}
			if total == 0 {
				// Degenerate conditional; keep a uniform draw to stay
				// ergodic.
				assignment[i] = r.Intn(states)
				continue
			}
			for s := range cond {
				cond[s] /= total
			}
			assignment[i] = sampleFrom(cond, r)
		}
		if sweep >= burnin {
			dist[assignment[query]]++
		}
	}
	for s := range dist {
		dist[s] /= float64(samples)
	}
	return dist, nil
}
