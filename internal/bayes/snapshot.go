package bayes

import "fmt"

// NodeSnapshot is the serialisable state of one node.
type NodeSnapshot struct {
	Name    string
	States  int
	Parents []int
	// Counts holds the learned observation weights
	// ([parentConfig*States + state]).
	Counts []float64
	// Fixed holds explicitly set CPT rows (-1 sentinel for unset rows);
	// nil when no row was ever fixed.
	Fixed []float64
}

// Snapshot is the full serialisable state of a network, suitable for
// encoding/gob or encoding/json.
type Snapshot struct {
	Laplace float64
	Nodes   []NodeSnapshot
}

// Snapshot exports the network state.
func (n *Network) Snapshot() Snapshot {
	s := Snapshot{Laplace: n.laplace, Nodes: make([]NodeSnapshot, len(n.nodes))}
	for i, nd := range n.nodes {
		s.Nodes[i] = NodeSnapshot{
			Name:    nd.Name,
			States:  nd.States,
			Parents: append([]int(nil), nd.Parents...),
			Counts:  append([]float64(nil), nd.counts...),
		}
		if nd.fixed != nil {
			s.Nodes[i].Fixed = append([]float64(nil), nd.fixed...)
		}
	}
	return s
}

// FromSnapshot reconstructs a network, validating structural integrity.
func FromSnapshot(s Snapshot) (*Network, error) {
	n := New()
	n.SetLaplace(s.Laplace)
	for i, ns := range s.Nodes {
		id, err := n.AddNode(ns.Name, ns.States, ns.Parents...)
		if err != nil {
			return nil, fmt.Errorf("bayes: snapshot node %d: %w", i, err)
		}
		nd := &n.nodes[id]
		if len(ns.Counts) != len(nd.counts) {
			return nil, fmt.Errorf("bayes: snapshot node %d: %d counts, want %d",
				i, len(ns.Counts), len(nd.counts))
		}
		copy(nd.counts, ns.Counts)
		// Rebuild row totals.
		for row := range nd.rowTotals {
			total := 0.0
			for st := 0; st < nd.States; st++ {
				c := nd.counts[row*nd.States+st]
				if c < 0 {
					return nil, fmt.Errorf("bayes: snapshot node %d: negative count", i)
				}
				total += c
			}
			nd.rowTotals[row] = total
		}
		if ns.Fixed != nil {
			if len(ns.Fixed) != len(nd.counts) {
				return nil, fmt.Errorf("bayes: snapshot node %d: %d fixed entries, want %d",
					i, len(ns.Fixed), len(nd.counts))
			}
			nd.fixed = append([]float64(nil), ns.Fixed...)
		}
	}
	return n, nil
}
