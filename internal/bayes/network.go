// Package bayes implements discrete Bayesian networks: directed acyclic
// graphs of categorical variables with conditional probability tables,
// maximum-likelihood learning with Laplace smoothing from complete data,
// and exact inference by both enumeration and variable elimination.
//
// It is the probabilistic substrate of Section 4: each of the paper's 22
// pose classifiers is a small BN over the five body-part variables and
// the eight observed area variables, and the dynamic extension threads
// previous-pose and jump-stage variables through time (package dbn).
//
// Networks are built by declaring nodes whose parents already exist, so
// acyclicity holds by construction. "Quantitative training" (the paper's
// term for CPT estimation) is count-based: Observe accumulates weighted
// complete assignments and the CPTs are the smoothed normalised counts.
package bayes

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Common errors.
var (
	// ErrBadState reports a state index outside a variable's range.
	ErrBadState = errors.New("bayes: state out of range")
	// ErrBadNode reports a node index outside the network.
	ErrBadNode = errors.New("bayes: no such node")
	// ErrIncomplete reports an assignment that does not cover every
	// variable where a complete one is required.
	ErrIncomplete = errors.New("bayes: incomplete assignment")
	// ErrBadCPT reports an invalid probability row (wrong length,
	// negative entries or a zero sum).
	ErrBadCPT = errors.New("bayes: invalid CPT row")
)

// DefaultLaplace is the default additive-smoothing pseudo-count. A full
// pseudo-count per cell is the classical Laplace correction; it keeps
// rarely-seen pose features from collapsing to zero probability, which
// matters because the paper's training set is tiny (522 frames).
const DefaultLaplace = 1.0

// Node is one categorical variable of the network.
type Node struct {
	// Name identifies the variable in diagnostics.
	Name string
	// States is the cardinality (>= 1). State values are 0..States-1.
	States int
	// Parents lists parent node indices, in declaration order.
	Parents []int

	// counts holds accumulated observation weights, indexed
	// [parentConfig*States + state].
	counts []float64
	// rowTotals caches the per-parent-config sum of counts.
	rowTotals []float64
	// fixed, when non-nil, is an explicitly set CPT that overrides the
	// learned counts (same indexing as counts).
	fixed []float64
}

// Network is a discrete Bayesian network. The zero value is an empty
// network ready for AddNode.
type Network struct {
	nodes   []Node
	laplace float64
}

// New returns an empty network with the default Laplace smoothing.
func New() *Network { return &Network{laplace: DefaultLaplace} }

// SetLaplace sets the additive smoothing pseudo-count used when
// normalising learned counts. Zero disables smoothing.
func (n *Network) SetLaplace(a float64) {
	if a < 0 {
		a = 0
	}
	n.laplace = a
}

// Len returns the number of nodes.
func (n *Network) Len() int { return len(n.nodes) }

// Node returns a copy of the node's metadata.
func (n *Network) Node(i int) (Node, error) {
	if i < 0 || i >= len(n.nodes) {
		return Node{}, fmt.Errorf("%w: %d", ErrBadNode, i)
	}
	nd := n.nodes[i]
	return Node{Name: nd.Name, States: nd.States, Parents: append([]int(nil), nd.Parents...)}, nil
}

// AddNode declares a new variable with the given cardinality and parents.
// Parents must already exist (this enforces acyclicity by construction).
// It returns the new node's index.
func (n *Network) AddNode(name string, states int, parents ...int) (int, error) {
	if states < 1 {
		return 0, fmt.Errorf("bayes: node %q needs >= 1 state, got %d", name, states)
	}
	for _, p := range parents {
		if p < 0 || p >= len(n.nodes) {
			return 0, fmt.Errorf("%w: parent %d of %q", ErrBadNode, p, name)
		}
	}
	rows := 1
	for _, p := range parents {
		rows *= n.nodes[p].States
	}
	if rows > 1<<22 {
		return 0, fmt.Errorf("bayes: node %q CPT too large (%d rows)", name, rows)
	}
	n.nodes = append(n.nodes, Node{
		Name:      name,
		States:    states,
		Parents:   append([]int(nil), parents...),
		counts:    make([]float64, rows*states),
		rowTotals: make([]float64, rows),
	})
	return len(n.nodes) - 1, nil
}

// parentConfig flattens the parent states of node i under the assignment
// into a mixed-radix row index.
func (n *Network) parentConfig(i int, assignment []int) (int, error) {
	row := 0
	for _, p := range n.nodes[i].Parents {
		s := assignment[p]
		if s < 0 || s >= n.nodes[p].States {
			return 0, fmt.Errorf("%w: node %q state %d", ErrBadState, n.nodes[p].Name, s)
		}
		row = row*n.nodes[p].States + s
	}
	return row, nil
}

// Observe accumulates one complete weighted observation: assignment must
// give a state for every node. This is the paper's quantitative training.
func (n *Network) Observe(assignment []int, weight float64) error {
	if len(assignment) != len(n.nodes) {
		return fmt.Errorf("%w: got %d states for %d nodes", ErrIncomplete, len(assignment), len(n.nodes))
	}
	if weight < 0 {
		return fmt.Errorf("bayes: negative observation weight %v", weight)
	}
	for i := range n.nodes {
		s := assignment[i]
		if s < 0 || s >= n.nodes[i].States {
			return fmt.Errorf("%w: node %q state %d", ErrBadState, n.nodes[i].Name, s)
		}
	}
	for i := range n.nodes {
		row, err := n.parentConfig(i, assignment)
		if err != nil {
			return err
		}
		n.nodes[i].counts[row*n.nodes[i].States+assignment[i]] += weight
		n.nodes[i].rowTotals[row] += weight
	}
	return nil
}

// Fit is a convenience wrapper observing every complete row with weight 1.
func (n *Network) Fit(data [][]int) error {
	for r, row := range data {
		if err := n.Observe(row, 1); err != nil {
			return fmt.Errorf("bayes: row %d: %w", r, err)
		}
	}
	return nil
}

// SetCPT fixes the conditional distribution of node i for one parent
// configuration, overriding learned counts. The row must contain States
// non-negative probabilities summing to ~1.
func (n *Network) SetCPT(i int, parentCfg int, probs []float64) error {
	if i < 0 || i >= len(n.nodes) {
		return fmt.Errorf("%w: %d", ErrBadNode, i)
	}
	nd := &n.nodes[i]
	rows := len(nd.rowTotals)
	if parentCfg < 0 || parentCfg >= rows {
		return fmt.Errorf("bayes: parent config %d out of %d rows: %w", parentCfg, rows, ErrBadCPT)
	}
	if len(probs) != nd.States {
		return fmt.Errorf("%w: got %d probs for %d states", ErrBadCPT, len(probs), nd.States)
	}
	sum := 0.0
	for _, p := range probs {
		if p < 0 || math.IsNaN(p) {
			return fmt.Errorf("%w: negative or NaN entry", ErrBadCPT)
		}
		sum += p
	}
	if sum <= 0 || math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("%w: row sums to %v", ErrBadCPT, sum)
	}
	if nd.fixed == nil {
		nd.fixed = make([]float64, len(nd.counts))
		for k := range nd.fixed {
			nd.fixed[k] = -1 // sentinel: row not fixed
		}
	}
	copy(nd.fixed[parentCfg*nd.States:], probs)
	return nil
}

// Prob returns P(node i = state | parents in configuration parentCfg),
// using a fixed CPT row when one was set and the smoothed learned counts
// otherwise. Unseen parent configurations yield the uniform distribution.
func (n *Network) Prob(i, parentCfg, state int) float64 {
	nd := &n.nodes[i]
	if nd.fixed != nil && nd.fixed[parentCfg*nd.States] >= 0 {
		return nd.fixed[parentCfg*nd.States+state]
	}
	total := nd.rowTotals[parentCfg]
	c := nd.counts[parentCfg*nd.States+state]
	den := total + n.laplace*float64(nd.States)
	if den == 0 {
		return 1 / float64(nd.States)
	}
	return (c + n.laplace) / den
}

// CPTRow returns the full distribution of node i given parentCfg.
func (n *Network) CPTRow(i, parentCfg int) []float64 {
	nd := &n.nodes[i]
	out := make([]float64, nd.States)
	for s := range out {
		out[s] = n.Prob(i, parentCfg, s)
	}
	return out
}

// JointLogProb returns the log joint probability of a complete assignment.
func (n *Network) JointLogProb(assignment []int) (float64, error) {
	if len(assignment) != len(n.nodes) {
		return 0, fmt.Errorf("%w: got %d states for %d nodes", ErrIncomplete, len(assignment), len(n.nodes))
	}
	lp := 0.0
	for i := range n.nodes {
		row, err := n.parentConfig(i, assignment)
		if err != nil {
			return 0, err
		}
		s := assignment[i]
		if s < 0 || s >= n.nodes[i].States {
			return 0, fmt.Errorf("%w: node %q state %d", ErrBadState, n.nodes[i].Name, s)
		}
		p := n.Prob(i, row, s)
		if p <= 0 {
			return math.Inf(-1), nil
		}
		lp += math.Log(p)
	}
	return lp, nil
}

// TotalObservations returns the summed weight seen by Observe/Fit (taken
// from the root-most node; all nodes see every observation).
func (n *Network) TotalObservations() float64 {
	if len(n.nodes) == 0 {
		return 0
	}
	t := 0.0
	for _, rt := range n.nodes[0].rowTotals {
		t += rt
	}
	return t
}

// Reset clears all learned counts (fixed CPTs are kept).
func (n *Network) Reset() {
	for i := range n.nodes {
		for k := range n.nodes[i].counts {
			n.nodes[i].counts[k] = 0
		}
		for k := range n.nodes[i].rowTotals {
			n.nodes[i].rowTotals[k] = 0
		}
	}
}

// Clone returns a deep copy of the network, including learned counts and
// fixed CPTs.
func (n *Network) Clone() *Network {
	out := &Network{laplace: n.laplace, nodes: make([]Node, len(n.nodes))}
	for i, nd := range n.nodes {
		out.nodes[i] = Node{
			Name:      nd.Name,
			States:    nd.States,
			Parents:   append([]int(nil), nd.Parents...),
			counts:    append([]float64(nil), nd.counts...),
			rowTotals: append([]float64(nil), nd.rowTotals...),
		}
		if nd.fixed != nil {
			out.nodes[i].fixed = append([]float64(nil), nd.fixed...)
		}
	}
	return out
}

// String summarises the network structure.
func (n *Network) String() string {
	s := fmt.Sprintf("bayes.Network{%d nodes", len(n.nodes))
	for i, nd := range n.nodes {
		s += fmt.Sprintf("; %d:%s(%d)", i, nd.Name, nd.States)
		if len(nd.Parents) > 0 {
			s += fmt.Sprintf("<-%v", nd.Parents)
		}
	}
	return s + "}"
}

// DOT renders the network structure in Graphviz dot format, one node per
// variable with edges from parents — the programmatic version of the
// paper's Figure 7 diagrams.
func (n *Network) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=ellipse, fontsize=10];\n", name)
	for i, nd := range n.nodes {
		fmt.Fprintf(&b, "  n%d [label=\"%s (%d)\"];\n", i, nd.Name, nd.States)
	}
	for i, nd := range n.nodes {
		for _, p := range nd.Parents {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", p, i)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
