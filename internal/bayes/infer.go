package bayes

import (
	"fmt"
	"sort"
)

// Evidence maps node index → observed state.
type Evidence map[int]int

// validate checks evidence against the network.
func (n *Network) validateEvidence(ev Evidence) error {
	for node, state := range ev {
		if node < 0 || node >= len(n.nodes) {
			return fmt.Errorf("%w: evidence node %d", ErrBadNode, node)
		}
		if state < 0 || state >= n.nodes[node].States {
			return fmt.Errorf("%w: evidence node %q state %d", ErrBadState, n.nodes[node].Name, state)
		}
	}
	return nil
}

// Posterior computes P(query | evidence) exactly, by enumeration over all
// hidden variables. Cost is exponential in the number of hidden variables;
// the pose networks have at most a handful, so this is the reference
// engine (PosteriorVE is the fast one and is cross-checked against this in
// tests). It returns a distribution over the query variable's states.
func (n *Network) Posterior(query int, ev Evidence) ([]float64, error) {
	if query < 0 || query >= len(n.nodes) {
		return nil, fmt.Errorf("%w: query %d", ErrBadNode, query)
	}
	if err := n.validateEvidence(ev); err != nil {
		return nil, err
	}
	assignment := make([]int, len(n.nodes))
	for i := range assignment {
		assignment[i] = -1
	}
	for node, state := range ev {
		assignment[node] = state
	}
	// Hidden variables (everything unassigned, including the query).
	var hidden []int
	for i, s := range assignment {
		if s == -1 {
			hidden = append(hidden, i)
		}
	}
	dist := make([]float64, n.nodes[query].States)
	if qs, observed := ev[query]; observed {
		dist[qs] = 1
		return dist, nil
	}

	var total float64
	var enumerateJoint func(k int)
	enumerateJoint = func(k int) {
		if k == len(hidden) {
			p := 1.0
			for i := range n.nodes {
				row, _ := n.parentConfig(i, assignment)
				p *= n.Prob(i, row, assignment[i])
				if p == 0 {
					return
				}
			}
			dist[assignment[query]] += p
			total += p
			return
		}
		node := hidden[k]
		for s := 0; s < n.nodes[node].States; s++ {
			assignment[node] = s
			enumerateJoint(k + 1)
		}
		assignment[node] = -1
	}
	enumerateJoint(0)

	if total == 0 {
		// Evidence has zero probability; return uniform as a safe answer.
		for s := range dist {
			dist[s] = 1 / float64(len(dist))
		}
		return dist, nil
	}
	for s := range dist {
		dist[s] /= total
	}
	return dist, nil
}

// factor is an intermediate table over a set of variables, used by
// variable elimination.
type factor struct {
	vars []int // node indices, ascending
	card []int // cardinalities, parallel to vars
	vals []float64
}

func (f *factor) index(assignment map[int]int) int {
	idx := 0
	for k, v := range f.vars {
		idx = idx*f.card[k] + assignment[v]
	}
	return idx
}

// multiply returns the product factor of a and b.
func multiply(a, b *factor, states func(int) int) *factor {
	seen := make(map[int]bool, len(a.vars)+len(b.vars))
	var vars []int
	for _, v := range append(append([]int{}, a.vars...), b.vars...) {
		if !seen[v] {
			seen[v] = true
			vars = append(vars, v)
		}
	}
	sort.Ints(vars)
	card := make([]int, len(vars))
	size := 1
	for i, v := range vars {
		card[i] = states(v)
		size *= card[i]
	}
	out := &factor{vars: vars, card: card, vals: make([]float64, size)}
	assignment := make(map[int]int, len(vars))
	var walk func(k int)
	walk = func(k int) {
		if k == len(vars) {
			out.vals[out.index(assignment)] = a.vals[a.index(assignment)] * b.vals[b.index(assignment)]
			return
		}
		for s := 0; s < card[k]; s++ {
			assignment[vars[k]] = s
			walk(k + 1)
		}
	}
	walk(0)
	return out
}

// reduce slices factor f at variable v = state, removing v from the
// factor's scope. A factor whose scope does not include v is returned
// unchanged.
func reduce(f *factor, v, state int, states func(int) int) *factor {
	found := false
	for _, fv := range f.vars {
		if fv == v {
			found = true
			break
		}
	}
	if !found {
		return f
	}
	var vars []int
	for _, fv := range f.vars {
		if fv != v {
			vars = append(vars, fv)
		}
	}
	card := make([]int, len(vars))
	size := 1
	for i, fv := range vars {
		card[i] = states(fv)
		size *= card[i]
	}
	out := &factor{vars: vars, card: card, vals: make([]float64, size)}
	assignment := make(map[int]int, len(f.vars))
	assignment[v] = state
	var walk func(k int)
	walk = func(k int) {
		if k == len(vars) {
			out.vals[out.index(assignment)] = f.vals[f.index(assignment)]
			return
		}
		for s := 0; s < card[k]; s++ {
			assignment[vars[k]] = s
			walk(k + 1)
		}
	}
	walk(0)
	return out
}

// sumOut marginalises variable v out of f.
func sumOut(f *factor, v int, states func(int) int) *factor {
	var vars []int
	for _, fv := range f.vars {
		if fv != v {
			vars = append(vars, fv)
		}
	}
	card := make([]int, len(vars))
	size := 1
	for i, fv := range vars {
		card[i] = states(fv)
		size *= card[i]
	}
	out := &factor{vars: vars, card: card, vals: make([]float64, size)}
	assignment := make(map[int]int, len(f.vars))
	var walk func(k int)
	walk = func(k int) {
		if k == len(vars) {
			sum := 0.0
			for s := 0; s < states(v); s++ {
				assignment[v] = s
				sum += f.vals[f.index(assignment)]
			}
			delete(assignment, v)
			out.vals[out.index(assignment)] = sum
			return
		}
		for s := 0; s < card[k]; s++ {
			assignment[vars[k]] = s
			walk(k + 1)
		}
	}
	walk(0)
	return out
}

// PosteriorVE computes P(query | evidence) by variable elimination with a
// min-degree-style ordering (fewest-factors-first). Exact; asymptotically
// much faster than enumeration on chain- and tree-like networks.
func (n *Network) PosteriorVE(query int, ev Evidence) ([]float64, error) {
	if query < 0 || query >= len(n.nodes) {
		return nil, fmt.Errorf("%w: query %d", ErrBadNode, query)
	}
	if err := n.validateEvidence(ev); err != nil {
		return nil, err
	}
	if qs, observed := ev[query]; observed {
		dist := make([]float64, n.nodes[query].States)
		dist[qs] = 1
		return dist, nil
	}
	states := func(v int) int { return n.nodes[v].States }

	// Build one factor per node, P(node | parents), then apply evidence
	// by REDUCING each observed variable out of the factor (slicing at
	// the observed state). Reduction — rather than masking — keeps the
	// final product factor small even when almost everything is
	// observed, which is the common case for the pose networks.
	factors := make([]*factor, 0, len(n.nodes))
	for i := range n.nodes {
		vars := append(append([]int{}, n.nodes[i].Parents...), i)
		sort.Ints(vars)
		card := make([]int, len(vars))
		size := 1
		for k, v := range vars {
			card[k] = states(v)
			size *= card[k]
		}
		f := &factor{vars: vars, card: card, vals: make([]float64, size)}
		assignment := make(map[int]int, len(vars))
		full := make([]int, len(n.nodes))
		var walk func(k int)
		walk = func(k int) {
			if k == len(vars) {
				for v, s := range assignment {
					full[v] = s
				}
				row, _ := n.parentConfig(i, full)
				f.vals[f.index(assignment)] = n.Prob(i, row, assignment[i])
				return
			}
			for s := 0; s < card[k]; s++ {
				assignment[vars[k]] = s
				walk(k + 1)
			}
		}
		walk(0)
		for _, v := range vars {
			if s, observed := ev[v]; observed {
				f = reduce(f, v, s, states)
			}
		}
		factors = append(factors, f)
	}

	// Eliminate every hidden non-query variable, smallest-involvement
	// first.
	hidden := make(map[int]bool)
	for i := range n.nodes {
		if _, observed := ev[i]; !observed && i != query {
			hidden[i] = true
		}
	}
	for len(hidden) > 0 {
		// Pick the hidden variable appearing in the fewest factors.
		best, bestCount := -1, 1<<30
		for v := range hidden {
			c := 0
			for _, f := range factors {
				for _, fv := range f.vars {
					if fv == v {
						c++
						break
					}
				}
			}
			if c < bestCount || (c == bestCount && v < best) {
				best, bestCount = v, c
			}
		}
		v := best
		delete(hidden, v)
		// Multiply all factors containing v, sum v out.
		var prod *factor
		rest := factors[:0]
		for _, f := range factors {
			contains := false
			for _, fv := range f.vars {
				if fv == v {
					contains = true
					break
				}
			}
			if !contains {
				rest = append(rest, f)
				continue
			}
			if prod == nil {
				prod = f
			} else {
				prod = multiply(prod, f, states)
			}
		}
		factors = rest
		if prod != nil {
			factors = append(factors, sumOut(prod, v, states))
		}
	}

	// Multiply the survivors and read off the query distribution.
	var prod *factor
	for _, f := range factors {
		if prod == nil {
			prod = f
		} else {
			prod = multiply(prod, f, states)
		}
	}
	dist := make([]float64, n.nodes[query].States)
	if prod == nil {
		for s := range dist {
			dist[s] = 1 / float64(len(dist))
		}
		return dist, nil
	}
	assignment := map[int]int{}
	total := 0.0
	for s := 0; s < n.nodes[query].States; s++ {
		assignment[query] = s
		// Any remaining vars beyond the query would indicate a bug; the
		// elimination above removes everything else, and evidence vars
		// were restricted. Sum over leftovers defensively.
		dist[s] = sumAll(prod, assignment, states)
		total += dist[s]
	}
	if total == 0 {
		for s := range dist {
			dist[s] = 1 / float64(len(dist))
		}
		return dist, nil
	}
	for s := range dist {
		dist[s] /= total
	}
	return dist, nil
}

// sumAll sums f over all variables not pinned in assignment.
func sumAll(f *factor, pinned map[int]int, states func(int) int) float64 {
	var free []int
	for _, v := range f.vars {
		if _, ok := pinned[v]; !ok {
			free = append(free, v)
		}
	}
	assignment := make(map[int]int, len(f.vars))
	for k, v := range pinned {
		assignment[k] = v
	}
	total := 0.0
	var walk func(k int)
	walk = func(k int) {
		if k == len(free) {
			total += f.vals[f.index(assignment)]
			return
		}
		for s := 0; s < states(free[k]); s++ {
			assignment[free[k]] = s
			walk(k + 1)
		}
	}
	walk(0)
	return total
}

// MAP returns the most probable state of query given evidence, along with
// its posterior probability, using variable elimination.
func (n *Network) MAP(query int, ev Evidence) (state int, prob float64, err error) {
	dist, err := n.PosteriorVE(query, ev)
	if err != nil {
		return 0, 0, err
	}
	best := 0
	for s, p := range dist {
		if p > dist[best] {
			best = s
		}
	}
	return best, dist[best], nil
}
