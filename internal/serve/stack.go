// Stack bootstraps the observability subsystems a long-lived server
// always wants on: registry, scope, error journal, time-series sampler
// and SLO health evaluator, plus an optional structured-log sink. The
// batch CLIs gate all of this behind obs.CLI flags (a silent run is a
// valid run); a server has no silent mode — its admission control reads
// the health verdict, so the evaluator must exist.
package serve

import (
	"io"
	"log/slog"
	"os"
	"time"

	"repro/internal/obs"
)

// StackConfig tunes the server observability bundle. The zero value is
// valid: one-second sampling, a five-minute ring window, no log file.
type StackConfig struct {
	// SampleInterval is the time-series sampling period (and therefore
	// the health re-evaluation period). 0 means one second.
	SampleInterval time.Duration
	// SampleWindow is the ring-buffer capacity in samples. 0 means 300.
	SampleWindow int
	// LogPath writes structured JSONL event logs: a file path, or "-" /
	// "stderr" for standard error. Empty disables logging.
	LogPath string
	// LogLevel is the minimum log level (debug|info|warn|error); empty
	// means info.
	LogLevel string
	// SLOs overrides the health objectives; nil means obs.DefaultSLOs.
	SLOs []obs.SLOSpec
}

// Stack is the assembled bundle. All fields are non-nil after NewStack
// except Sink (nil without LogPath).
type Stack struct {
	Scope   *obs.Scope
	Sampler *obs.Sampler
	Journal *obs.Journal
	Health  *obs.HealthEvaluator
	Sink    *obs.LineSink
}

// NewStack builds and starts the bundle: the sampler begins ticking and
// the health evaluator rides its tick. Callers own Stop.
func NewStack(cfg StackConfig) (*Stack, error) {
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = time.Second
	}
	if cfg.SampleWindow <= 0 {
		cfg.SampleWindow = 300
	}
	specs := cfg.SLOs
	if specs == nil {
		specs = obs.DefaultSLOs()
	}
	st := &Stack{Scope: obs.NewScope(obs.NewRegistry())}
	st.Journal = obs.NewJournal(st.Scope.Registry(), 256)
	st.Scope.SetJournal(st.Journal)
	if cfg.LogPath != "" {
		level, err := obs.ParseLogLevel(levelOr(cfg.LogLevel))
		if err != nil {
			return nil, err
		}
		if cfg.LogPath == "-" || cfg.LogPath == "stderr" {
			// Wrap stderr so the sink's Close never closes the real fd.
			st.Sink = obs.NewLineSink(struct{ io.Writer }{os.Stderr})
		} else {
			st.Sink, err = obs.OpenLineSink(cfg.LogPath)
			if err != nil {
				return nil, err
			}
		}
		st.Scope.SetLogger(slog.New(obs.NewLogHandler(st.Sink, obs.LogOptions{Level: level})))
	}
	st.Sampler = obs.NewSampler(st.Scope.Registry(), cfg.SampleInterval, cfg.SampleWindow)
	h, err := obs.NewHealthEvaluator(st.Scope.Registry(), st.Sampler, st.Journal, specs)
	if err != nil {
		_ = st.Sink.Close()
		return nil, err
	}
	st.Health = h
	st.Sampler.SetOnTick(h.Eval)
	st.Sampler.Start()
	return st, nil
}

func levelOr(level string) string {
	if level == "" {
		return "info"
	}
	return level
}

// Registry returns the stack's metric registry (nil-safe).
func (st *Stack) Registry() *obs.Registry {
	if st == nil {
		return nil
	}
	return st.Scope.Registry()
}

// ServeConfig shapes the stack for obs.MountDebug / obs.ServeWith.
func (st *Stack) ServeConfig() obs.ServeConfig {
	if st == nil {
		return obs.ServeConfig{}
	}
	return obs.ServeConfig{
		Registry: st.Scope.Registry(),
		Sampler:  st.Sampler,
		Journal:  st.Journal,
		Health:   st.Health,
		LogSink:  st.Sink,
	}
}

// Stop shuts the bundle down in dependency order: the health evaluator
// first (no late tick re-evaluates a dying process), then the sampler
// (its Stop takes one final tick), then the log sink is flushed and
// closed — the run's last events are on disk when Stop returns. Safe on
// nil and safe to call twice.
func (st *Stack) Stop() error {
	if st == nil {
		return nil
	}
	st.Health.Stop()
	st.Sampler.Stop()
	return st.Sink.Close()
}
