package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	slj "repro"
	"repro/internal/dataset"
	"repro/internal/synth"
)

// trainedEngine builds an engine trained on a small synthetic corpus.
func trainedEngine(t *testing.T, workers int, seed int64) *slj.Engine {
	t.Helper()
	ds, err := dataset.Generate(dataset.GenOptions{TrainClips: 2, TestClips: 1, Seed: seed, VaryBody: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := slj.NewEngine(workers)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Train(ds.Train); err != nil {
		t.Fatal(err)
	}
	return eng
}

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = trainedEngine(t, 2, 41)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// post sends an /rpc request body through the handler and returns the
// recorded response.
func post(s *Server, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/rpc", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func decodeEnvelope(t *testing.T, rec *httptest.ResponseRecorder) response {
	t.Helper()
	var resp response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response is not a JSON envelope: %v\n%s", err, rec.Body.String())
	}
	return resp
}

func TestHandlerErrorTable(t *testing.T) {
	s := testServer(t, Config{MaxBody: 512})
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{
			name:       "malformed-json",
			body:       `{"method": "classify-clip", "params":`,
			wantStatus: http.StatusBadRequest,
			wantCode:   "bad-request",
		},
		{
			name:       "unknown-method",
			body:       `{"method": "transmogrify", "id": 7}`,
			wantStatus: http.StatusNotFound,
			wantCode:   "unknown-method",
		},
		{
			name:       "oversized-body",
			body:       `{"method": "classify-clip", "params": {"dir": "` + strings.Repeat("x", 600) + `"}}`,
			wantStatus: http.StatusRequestEntityTooLarge,
			wantCode:   "body-too-large",
		},
		{
			name:       "no-clip-selected",
			body:       `{"method": "classify-clip", "params": {}}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   "bad-request",
		},
		{
			name:       "dir-without-data-root",
			body:       `{"method": "classify-clip", "params": {"dir": "test/test-00"}}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   "bad-request",
		},
		{
			name:       "both-dir-and-synthetic",
			body:       `{"method": "classify-clip", "params": {"dir": "a", "synthetic": {"seed": 1}}}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   "bad-request",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(s, tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d\n%s", rec.Code, tc.wantStatus, rec.Body.String())
			}
			resp := decodeEnvelope(t, rec)
			if resp.Error == nil {
				t.Fatal("response has no error object")
			}
			if resp.Error.Code != tc.wantCode {
				t.Errorf("error code = %q, want %q (%s)", resp.Error.Code, tc.wantCode, resp.Error.Message)
			}
		})
	}
}

func TestHandlerRejectsNonPost(t *testing.T) {
	s := testServer(t, Config{})
	req := httptest.NewRequest(http.MethodGet, "/rpc", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", rec.Code)
	}
}

func TestPathConfinement(t *testing.T) {
	root := t.TempDir()
	s := testServer(t, Config{DataRoot: root})
	for _, dir := range []string{"../outside", "/etc/passwd", "a/../../b", ""} {
		body := fmt.Sprintf(`{"method": "classify-clip", "params": {"dir": %q}}`, dir)
		rec := post(s, body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("dir %q: status = %d, want 400", dir, rec.Code)
		}
	}
}

func TestIDEchoedVerbatim(t *testing.T) {
	s := testServer(t, Config{})
	rec := post(s, `{"method": "classify-clip", "params": {"synthetic": {"seed": 5}}, "id": {"req": "abc-123"}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200\n%s", rec.Code, rec.Body.String())
	}
	resp := decodeEnvelope(t, rec)
	var got struct {
		Req string `json:"req"`
	}
	if err := json.Unmarshal(resp.ID, &got); err != nil || got.Req != "abc-123" {
		t.Fatalf("id not echoed verbatim: %s (err %v)", resp.ID, err)
	}
}

// TestClassifyClipGolden asserts the HTTP round trip is bit-identical
// to calling Engine.ClassifyClip directly on the same clip.
func TestClassifyClipGolden(t *testing.T) {
	eng := trainedEngine(t, 2, 41)
	s := testServer(t, Config{Engine: eng})

	const seed = 914
	rec := post(s, fmt.Sprintf(`{"method": "classify-clip", "params": {"synthetic": {"seed": %d}}}`, seed))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200\n%s", rec.Code, rec.Body.String())
	}
	resp := decodeEnvelope(t, rec)
	raw, err := json.Marshal(resp.Result)
	if err != nil {
		t.Fatal(err)
	}
	var got ClassifyResult
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}

	clip, err := synth.Generate(synth.DefaultSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.ClassifyClip(dataset.LabeledClip{Name: fmt.Sprintf("synthetic-%d", seed), Clip: clip})
	if err != nil {
		t.Fatal(err)
	}
	want := classifyResult(fmt.Sprintf("synthetic-%d", seed), res)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("HTTP classify diverges from Engine.ClassifyClip:\ngot  %+v\nwant %+v", got, want)
	}
	if len(got.Frames) == 0 {
		t.Fatal("classify returned no frames")
	}
}

// TestScoreAndEvaluateOverHTTP exercises the other two registry methods
// end to end against an on-disk corpus under DataRoot.
func TestScoreAndEvaluateOverHTTP(t *testing.T) {
	ds, err := dataset.Generate(dataset.GenOptions{TrainClips: 2, TestClips: 2, Seed: 47, VaryBody: true})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	if err := dataset.Save(root, ds); err != nil {
		t.Fatal(err)
	}
	eng := trainedEngine(t, 2, 47)
	s := testServer(t, Config{Engine: eng, DataRoot: root})

	rec := post(s, `{"method": "score", "params": {"synthetic": {"seed": 9}}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("score: status = %d\n%s", rec.Code, rec.Body.String())
	}
	var score ScoreResult
	mustResult(t, rec, &score)
	if score.Frames == 0 || len(score.Poses) != score.Frames {
		t.Fatalf("score result malformed: %+v", score)
	}
	if score.Score < 0 || score.Score > 100 {
		t.Fatalf("score out of range: %d", score.Score)
	}

	rec = post(s, `{"method": "evaluate-corpus", "params": {"dir": "test", "workers": 2}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("evaluate: status = %d\n%s", rec.Code, rec.Body.String())
	}
	var eval EvaluateResult
	mustResult(t, rec, &eval)
	if len(eval.Clips) != 2 {
		t.Fatalf("evaluated %d clips, want 2", len(eval.Clips))
	}
	if eval.Accuracy <= 0 || eval.Accuracy > 1 {
		t.Fatalf("accuracy out of range: %v", eval.Accuracy)
	}
}

func mustResult(t *testing.T, rec *httptest.ResponseRecorder, out any) {
	t.Helper()
	resp := decodeEnvelope(t, rec)
	raw, err := json.Marshal(resp.Result)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatal(err)
	}
}

// TestShedWhenSaturated pins the admission contract: with a one-worker
// engine, a second request arriving while the first holds the budget is
// shed with 503 + Retry-After rather than queued.
func TestShedWhenSaturated(t *testing.T) {
	eng := trainedEngine(t, 1, 43)
	s := testServer(t, Config{Engine: eng})

	// A test-only method that parks inside the admission window until
	// released, holding its one-worker charge.
	entered := make(chan struct{})
	release := make(chan struct{})
	s.methods["block"] = method{
		cost: func(int) int { return 1 },
		run: func(*Server, json.RawMessage, int) (any, *apiError) {
			close(entered)
			<-release
			return "done", nil
		},
	}

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- post(s, `{"method": "block"}`) }()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("blocking request never admitted")
	}

	rec := post(s, `{"method": "classify-clip", "params": {"synthetic": {"seed": 1}}}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated request: status = %d, want 503\n%s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After header")
	}
	resp := decodeEnvelope(t, rec)
	if resp.Error == nil || resp.Error.Code != "overloaded" {
		t.Fatalf("shed error = %+v, want code overloaded", resp.Error)
	}

	close(release)
	blocked := <-done
	if blocked.Code != http.StatusOK {
		t.Fatalf("blocking request: status = %d, want 200", blocked.Code)
	}
	// Budget fully returned: the next request is admitted again.
	rec = post(s, `{"method": "classify-clip", "params": {"synthetic": {"seed": 1}}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-release request: status = %d, want 200\n%s", rec.Code, rec.Body.String())
	}
	if got := s.admitted.Load(); got != 0 {
		t.Fatalf("admitted = %d after all requests done, want 0", got)
	}
}

// TestEvaluateWorkerAskClamped: an absurd workers ask is clamped to
// capacity rather than rejected or over-admitted.
func TestEvaluateWorkerAskClamped(t *testing.T) {
	ds, err := dataset.Generate(dataset.GenOptions{TrainClips: 2, TestClips: 1, Seed: 53, VaryBody: true})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	if err := dataset.Save(root, ds); err != nil {
		t.Fatal(err)
	}
	eng := trainedEngine(t, 2, 53)
	s := testServer(t, Config{Engine: eng, DataRoot: root})
	rec := post(s, `{"method": "evaluate-corpus", "params": {"dir": "test", "workers": 9999}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200\n%s", rec.Code, rec.Body.String())
	}
	if got := s.admitted.Load(); got != 0 {
		t.Fatalf("admitted = %d after request, want 0", got)
	}
}

// TestModelRegistry exercises the content-hash cache: two paths with
// identical bytes share an engine; a changed file gets a fresh one.
func TestModelRegistry(t *testing.T) {
	eng := trainedEngine(t, 2, 59)
	var buf bytes.Buffer
	if err := eng.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	for _, name := range []string{"a.model", "b.model"} {
		if err := os.WriteFile(filepath.Join(root, name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s := testServer(t, Config{Engine: eng, DataRoot: root})

	for _, model := range []string{"a.model", "b.model"} {
		body := fmt.Sprintf(`{"method": "classify-clip", "params": {"synthetic": {"seed": 3}, "model": %q}}`, model)
		rec := post(s, body)
		if rec.Code != http.StatusOK {
			t.Fatalf("model %s: status = %d\n%s", model, rec.Code, rec.Body.String())
		}
	}
	if got := s.models.Len(); got != 1 {
		t.Fatalf("model cache holds %d entries for identical bytes, want 1", got)
	}

	// Train a different model into b.model: next request loads a second engine.
	other := trainedEngine(t, 2, 61)
	var buf2 bytes.Buffer
	if err := other.SaveModel(&buf2); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "b.model"), buf2.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	rec := post(s, `{"method": "classify-clip", "params": {"synthetic": {"seed": 3}, "model": "b.model"}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("replaced model: status = %d\n%s", rec.Code, rec.Body.String())
	}
	if got := s.models.Len(); got != 2 {
		t.Fatalf("model cache holds %d entries after replacement, want 2", got)
	}
	if rec := post(s, `{"method": "classify-clip", "params": {"synthetic": {"seed": 3}, "model": "missing.model"}}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing model: status = %d, want 400", rec.Code)
	}
}

// TestGracefulClose: Close drains an in-flight request (it completes
// with 200) while new arrivals during the drain are shed.
func TestGracefulClose(t *testing.T) {
	eng := trainedEngine(t, 2, 67)
	st, err := NewStack(StackConfig{SampleInterval: 20 * time.Millisecond, SampleWindow: 16})
	if err != nil {
		t.Fatal(err)
	}
	s := testServer(t, Config{Engine: eng, Obs: st, DrainTimeout: 5 * time.Second})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	s.methods["block"] = method{
		cost: func(int) int { return 1 },
		run: func(*Server, json.RawMessage, int) (any, *apiError) {
			close(entered)
			<-release
			return "drained", nil
		},
	}

	url := "http://" + s.Addr() + "/rpc"
	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(url, "application/json", strings.NewReader(`{"method": "block"}`))
		if err != nil {
			done <- result{err: err}
			return
		}
		resp.Body.Close()
		done <- result{status: resp.StatusCode}
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never admitted")
	}

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()

	// While draining, the admission gate is shut even in-process.
	waitFor(t, func() bool { return s.draining.Load() })
	if s.admit(1) {
		t.Error("admit succeeded while draining")
	}

	close(release)
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request status = %d, want 200 (drain should let it finish)", r.status)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDebugEndpointsMounted: the obs surface rides the same mux.
func TestDebugEndpointsMounted(t *testing.T) {
	st, err := NewStack(StackConfig{SampleInterval: 20 * time.Millisecond, SampleWindow: 16})
	if err != nil {
		t.Fatal(err)
	}
	s := testServer(t, Config{Obs: st})
	defer func() { _ = st.Stop() }()

	post(s, `{"method": "classify-clip", "params": {"synthetic": {"seed": 2}}}`)
	for _, path := range []string{"/debug/metrics", "/debug/health", "/debug/errors", "/debug/timeseries"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("%s: status = %d, want 200", path, rec.Code)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/debug/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	snap := st.Registry().Snapshot()
	names := make(map[string]bool)
	for _, m := range snap.Counters {
		names[m.Name] = true
	}
	for _, m := range snap.Gauges {
		names[m.Name] = true
	}
	for _, m := range snap.Histograms {
		names[m.Name] = true
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("/debug/metrics is not valid JSON: %s", rec.Body.String())
	}
	for _, name := range []string{"serve.requests", "serve.inflight_workers", "serve.clips_checked_out", "serve.request_ns"} {
		if !names[name] {
			t.Errorf("metric %q missing from registry snapshot", name)
		}
	}
}
