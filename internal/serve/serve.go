// Package serve is the network face of the pipeline: a stdlib-only
// net/http JSON service exposing clip classification, corpus evaluation
// and coaching reports over a single POST /rpc endpoint, with the obs
// /debug endpoints mounted alongside (DESIGN.md §15).
//
// Three properties a batch CLI never needed shape the design:
//
//   - Admission control. Every request declares a worker cost drawn
//     from one shared budget (the engine's worker count). When the
//     budget is spent — or the SLO health verdict says the process is
//     not ready — the server sheds load with 503 + Retry-After instead
//     of queueing unboundedly: callers retry against a healthy replica
//     rather than pile onto a sick one.
//   - Model registry. Engines are cached by the content hash of the
//     serialized DBN bank, so switching models per request is one map
//     lookup, not a deserialization.
//   - Graceful shutdown. Close drains in-flight requests before the
//     observability stack is stopped and the log sink flushed, so the
//     final requests of a deploy are both answered and recorded.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sync/atomic"
	"time"

	slj "repro"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/scoring"
	"repro/internal/stats"
	"repro/internal/synth"
)

// DefaultMaxBody caps the request body; classification requests are
// small JSON envelopes, so anything past this is a client bug.
const DefaultMaxBody = 1 << 20

// DefaultDrainTimeout bounds how long Close waits for in-flight
// requests before hard-closing connections.
const DefaultDrainTimeout = 30 * time.Second

// Config assembles a Server.
type Config struct {
	// Engine is the shared classification engine; its worker count is
	// the server's total admission budget. Required.
	Engine *slj.Engine
	// DataRoot confines request-supplied clip/model paths: a request
	// "dir" resolves under this directory and may not escape it. Empty
	// disables path-based requests (synthetic clips still work).
	DataRoot string
	// MaxBody caps the request body in bytes (0 = DefaultMaxBody).
	MaxBody int64
	// ModelCacheCap bounds the model registry (0 = 4 engines).
	ModelCacheCap int
	// EngineOptions build the per-model engines of the model registry;
	// pass the same options the base engine was built with (e.g. the
	// observability scope) so cached engines are instrumented alike.
	EngineOptions []slj.Option
	// Obs is the server observability bundle (nil = uninstrumented:
	// no /debug endpoints, health always ready).
	Obs *Stack
	// DrainTimeout bounds graceful shutdown (0 = DefaultDrainTimeout).
	DrainTimeout time.Duration
}

// Server is the HTTP service. Create with New, serve with Start (or
// mount Handler in a custom server), stop with Close.
type Server struct {
	cfg      Config
	eng      *slj.Engine
	models   *modelCache
	mux      *http.ServeMux
	srv      *http.Server
	ln       net.Listener
	capacity int64

	admitted atomic.Int64 // worker budget currently granted
	draining atomic.Bool

	requests  *obs.Counter
	shed      *obs.Counter
	errCount  *obs.Counter
	inflightG *obs.Gauge
	latency   *obs.Histogram

	methods map[string]method
}

// method is one registry entry: its handler plus how its admission cost
// is derived from the request's worker ask.
type method struct {
	// cost converts the request's workers field into the admission
	// charge (clamped to [1, capacity] by the caller).
	cost func(workers int) int
	run  func(s *Server, params json.RawMessage, budget int) (any, *apiError)
}

// New builds the server and registers its metrics and method registry.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("serve: Config.Engine is required")
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	s := &Server{
		cfg:      cfg,
		eng:      cfg.Engine,
		models:   newModelCache(cfg.Engine.Workers(), cfg.ModelCacheCap, cfg.EngineOptions),
		capacity: int64(cfg.Engine.Workers()),
	}
	if reg := cfg.Obs.Registry(); reg != nil {
		s.requests = reg.Counter("serve.requests")
		s.shed = reg.Counter("serve.shed")
		s.errCount = reg.Counter("serve.errors")
		s.inflightG = reg.Gauge("serve.inflight_workers")
		s.latency = reg.Histogram("serve.request_ns", obs.LatencyBounds)
		// Pool-leak detector: source clips checked out across the base
		// engine and every cached model engine. Quiescent servers read 0.
		reg.RegisterFunc("serve.clips_checked_out", func() int64 {
			n := s.eng.CheckedOut()
			for _, e := range s.models.engines() {
				n += e.CheckedOut()
			}
			return n
		})
	}
	s.methods = map[string]method{
		"classify-clip":   {cost: func(int) int { return 1 }, run: (*Server).classifyClip},
		"score":           {cost: func(int) int { return 1 }, run: (*Server).score},
		"evaluate-corpus": {cost: func(w int) int { return w }, run: (*Server).evaluateCorpus},
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/rpc", s.handleRPC)
	obs.MountDebug(s.mux, cfg.Obs.ServeConfig())
	return s, nil
}

// Handler returns the server's root handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (port 0 for ephemeral — see Addr) and serves
// until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listening on %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint — Serve always returns non-nil after Close
	return nil
}

// Addr reports the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down gracefully, in strict order: first new
// requests are shed (503) and the HTTP server drains — requests already
// admitted get up to DrainTimeout to finish; then the observability
// stack stops (health evaluator before sampler, so no late tick flips
// the verdict of a dying process) and the log sink is flushed. The
// order matters: in-flight requests still record metrics and log lines,
// so the stack must outlive the drain.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.draining.Store(true)
	var err error
	if s.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		err = s.srv.Shutdown(ctx)
		if errors.Is(err, context.DeadlineExceeded) {
			err = s.srv.Close()
		}
	}
	if serr := s.cfg.Obs.Stop(); err == nil {
		err = serr
	}
	if err != nil {
		return fmt.Errorf("serve: closing: %w", err)
	}
	return nil
}

// apiError is the error half of a response envelope.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`

	status int // HTTP status; not serialized
}

func errBadRequest(format string, args ...any) *apiError {
	return &apiError{Code: "bad-request", Message: fmt.Sprintf(format, args...), status: http.StatusBadRequest}
}

func errInternal(err error) *apiError {
	return &apiError{Code: "internal", Message: err.Error(), status: http.StatusInternalServerError}
}

// request is the POST /rpc envelope.
type request struct {
	Method string          `json:"method"`
	Params json.RawMessage `json:"params"`
	ID     json.RawMessage `json:"id"`
}

// response is the reply envelope; ID echoes the request's verbatim.
type response struct {
	ID     json.RawMessage `json:"id,omitempty"`
	Result any             `json:"result,omitempty"`
	Error  *apiError       `json:"error,omitempty"`
}

func writeResponse(w http.ResponseWriter, status int, resp response) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// admit tries to charge cost workers against the shared budget; release
// undoes it. Admission fails while draining, while the SLO health
// verdict is not ready, and when the budget would overflow — the three
// load-shedding signals.
func (s *Server) admit(cost int64) bool {
	if s.draining.Load() {
		return false
	}
	if h := s.healthEval(); !h.Ready() {
		return false
	}
	for {
		cur := s.admitted.Load()
		if cur+cost > s.capacity {
			return false
		}
		if s.admitted.CompareAndSwap(cur, cur+cost) {
			s.inflightG.Set(cur + cost)
			return true
		}
	}
}

func (s *Server) release(cost int64) {
	s.inflightG.Set(s.admitted.Add(-cost))
}

func (s *Server) healthEval() *obs.HealthEvaluator {
	if s.cfg.Obs == nil {
		return nil // nil evaluator reports Ready
	}
	return s.cfg.Obs.Health
}

// handleRPC decodes the envelope, charges admission, dispatches the
// method and writes the reply.
func (s *Server) handleRPC(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	t0 := time.Now()
	defer func() { s.latency.Observe(time.Since(t0).Nanoseconds()) }()

	if r.Method != http.MethodPost {
		s.errCount.Inc()
		writeResponse(w, http.StatusMethodNotAllowed, response{
			Error: &apiError{Code: "method-not-allowed", Message: "POST required"},
		})
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	var req request
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.errCount.Inc()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeResponse(w, http.StatusRequestEntityTooLarge, response{
				Error: &apiError{Code: "body-too-large", Message: fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBody)},
			})
			return
		}
		writeResponse(w, http.StatusBadRequest, response{
			Error: &apiError{Code: "bad-request", Message: "malformed JSON: " + err.Error()},
		})
		return
	}
	m, ok := s.methods[req.Method]
	if !ok {
		s.errCount.Inc()
		writeResponse(w, http.StatusNotFound, response{
			ID:    req.ID,
			Error: &apiError{Code: "unknown-method", Message: fmt.Sprintf("unknown method %q", req.Method)},
		})
		return
	}

	// The worker ask rides every params shape; decode it alone here.
	var ask struct {
		Workers int `json:"workers"`
	}
	_ = json.Unmarshal(req.Params, &ask)
	budget := clamp(m.cost(ask.Workers), 1, int(s.capacity))

	if !s.admit(int64(budget)) {
		s.shed.Inc()
		w.Header().Set("Retry-After", "1")
		writeResponse(w, http.StatusServiceUnavailable, response{
			ID:    req.ID,
			Error: &apiError{Code: "overloaded", Message: "worker budget exhausted or not ready; retry later"},
		})
		return
	}
	defer s.release(int64(budget))

	result, aerr := m.run(s, req.Params, budget)
	if aerr != nil {
		s.errCount.Inc()
		status := aerr.status
		if status == 0 {
			status = http.StatusInternalServerError
		}
		writeResponse(w, status, response{ID: req.ID, Error: aerr})
		return
	}
	writeResponse(w, http.StatusOK, response{ID: req.ID, Result: result})
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ---- request parameter shapes -----------------------------------------

// SynthParams asks the server to generate a clip instead of reading one
// from disk — the load-test and demo path, no corpus required.
type SynthParams struct {
	Seed   int64 `json:"seed"`
	Mirror bool  `json:"mirror,omitempty"`
}

// ClipParams selects one clip: a corpus directory under DataRoot, or a
// synthetic spec. Model optionally routes through the model registry;
// Workers is the admission ask (evaluate-corpus fans out that wide).
type ClipParams struct {
	Dir       string       `json:"dir,omitempty"`
	Synthetic *SynthParams `json:"synthetic,omitempty"`
	Model     string       `json:"model,omitempty"`
	Workers   int          `json:"workers,omitempty"`
}

// CorpusParams selects a split directory under DataRoot.
type CorpusParams struct {
	Dir     string `json:"dir"`
	Model   string `json:"model,omitempty"`
	Workers int    `json:"workers,omitempty"`
}

// resolvePath confines a request-supplied relative path under DataRoot.
func (s *Server) resolvePath(rel string) (string, *apiError) {
	if s.cfg.DataRoot == "" {
		return "", errBadRequest("no data root configured; only synthetic clips are served")
	}
	if rel == "" || !filepath.IsLocal(rel) {
		return "", errBadRequest("path %q must be relative and stay inside the data root", rel)
	}
	return filepath.Join(s.cfg.DataRoot, rel), nil
}

// engineFor routes a request to the base engine or, via the model
// registry, to the engine holding the named model.
func (s *Server) engineFor(model string) (*slj.Engine, *apiError) {
	if model == "" {
		return s.eng, nil
	}
	path, aerr := s.resolvePath(model)
	if aerr != nil {
		return nil, aerr
	}
	eng, err := s.models.engineFor(path)
	if err != nil {
		return nil, errBadRequest("loading model %q: %v", model, err)
	}
	return eng, nil
}

// loadClip materialises the requested clip.
func (s *Server) loadClip(p ClipParams) (dataset.LabeledClip, *apiError) {
	switch {
	case p.Synthetic != nil && p.Dir != "":
		return dataset.LabeledClip{}, errBadRequest("give dir or synthetic, not both")
	case p.Synthetic != nil:
		spec := synth.DefaultSpec(p.Synthetic.Seed)
		spec.Mirror = p.Synthetic.Mirror
		clip, err := synth.Generate(spec)
		if err != nil {
			return dataset.LabeledClip{}, errInternal(err)
		}
		return dataset.LabeledClip{Name: fmt.Sprintf("synthetic-%d", p.Synthetic.Seed), Clip: clip}, nil
	case p.Dir != "":
		dir, aerr := s.resolvePath(p.Dir)
		if aerr != nil {
			return dataset.LabeledClip{}, aerr
		}
		r, err := dataset.OpenClip(dir)
		if err != nil {
			return dataset.LabeledClip{}, errBadRequest("opening clip %q: %v", p.Dir, err)
		}
		return r.Labeled(), nil
	default:
		return dataset.LabeledClip{}, errBadRequest("params need dir or synthetic")
	}
}

// ---- result shapes -----------------------------------------------------

// FrameResult is one classified frame.
type FrameResult struct {
	Frame int     `json:"frame"`
	Pose  string  `json:"pose"`
	Stage string  `json:"stage"`
	Prob  float64 `json:"prob"`
}

// ClassifyResult is the classify-clip reply.
type ClassifyResult struct {
	Clip   string        `json:"clip"`
	Frames []FrameResult `json:"frames"`
}

func (s *Server) classifyClip(params json.RawMessage, _ int) (any, *apiError) {
	var p ClipParams
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, errBadRequest("params: %v", err)
	}
	eng, aerr := s.engineFor(p.Model)
	if aerr != nil {
		return nil, aerr
	}
	lc, aerr := s.loadClip(p)
	if aerr != nil {
		return nil, aerr
	}
	res, err := eng.ClassifyClip(lc)
	if err != nil {
		return nil, errBadRequest("classifying: %v", err)
	}
	return classifyResult(lc.Name, res), nil
}

func classifyResult(name string, res []slj.Result) ClassifyResult {
	out := ClassifyResult{Clip: name, Frames: make([]FrameResult, len(res))}
	for i, r := range res {
		out.Frames[i] = FrameResult{Frame: i, Pose: r.Pose.String(), Stage: r.Stage.String(), Prob: r.Prob}
	}
	return out
}

// FaultResult is one detected jump fault with its coaching advice.
type FaultResult struct {
	Code        string `json:"code"`
	Description string `json:"description"`
	Advice      string `json:"advice"`
	FirstFrame  int    `json:"first_frame"`
	LastFrame   int    `json:"last_frame"`
	Deduction   int    `json:"deduction"`
}

// ScoreResult is the score reply: the coaching report over the decided
// pose sequence.
type ScoreResult struct {
	Clip          string        `json:"clip"`
	Score         int           `json:"score"`
	Frames        int           `json:"frames"`
	UnknownFrames int           `json:"unknown_frames"`
	Faults        []FaultResult `json:"faults"`
	Poses         []string      `json:"poses"`
}

func (s *Server) score(params json.RawMessage, _ int) (any, *apiError) {
	var p ClipParams
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, errBadRequest("params: %v", err)
	}
	eng, aerr := s.engineFor(p.Model)
	if aerr != nil {
		return nil, aerr
	}
	lc, aerr := s.loadClip(p)
	if aerr != nil {
		return nil, aerr
	}
	res, err := eng.ClassifyClip(lc)
	if err != nil {
		return nil, errBadRequest("classifying: %v", err)
	}
	seq := slj.Poses(res)
	rep := scoring.Evaluate(seq)
	out := ScoreResult{
		Clip:          lc.Name,
		Score:         rep.Score,
		Frames:        rep.Frames,
		UnknownFrames: rep.UnknownFrames,
		Faults:        make([]FaultResult, len(rep.Faults)),
		Poses:         make([]string, len(seq)),
	}
	for i, f := range rep.Faults {
		out.Faults[i] = FaultResult{
			Code:        string(f.Code),
			Description: f.Description,
			Advice:      f.Advice,
			FirstFrame:  f.FirstFrame,
			LastFrame:   f.LastFrame,
			Deduction:   f.Deduction,
		}
	}
	for i, p := range seq {
		out.Poses[i] = p.String()
	}
	return out, nil
}

// ClipScore is one clip's accuracy line in an evaluate-corpus reply.
type ClipScore struct {
	Name     string  `json:"name"`
	Frames   int     `json:"frames"`
	Correct  int     `json:"correct"`
	Unknown  int     `json:"unknown"`
	Accuracy float64 `json:"accuracy"`
}

// EvaluateResult is the evaluate-corpus reply.
type EvaluateResult struct {
	Clips    []ClipScore `json:"clips"`
	Frames   int         `json:"frames"`
	Accuracy float64     `json:"accuracy"`
}

// evaluateCorpus streams the split at Dir through the engine with the
// request's own worker budget — the per-request fan-out the admission
// charge paid for. The accumulation mirrors Engine.EvaluateSource, so
// the numbers match a batch evaluation of the same split exactly.
func (s *Server) evaluateCorpus(params json.RawMessage, budget int) (any, *apiError) {
	var p CorpusParams
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, errBadRequest("params: %v", err)
	}
	eng, aerr := s.engineFor(p.Model)
	if aerr != nil {
		return nil, aerr
	}
	dir, aerr := s.resolvePath(p.Dir)
	if aerr != nil {
		return nil, aerr
	}
	src, err := dataset.OpenDir(dir)
	if err != nil {
		return nil, errBadRequest("opening corpus %q: %v", p.Dir, err)
	}
	defer src.Close()
	if src.Len() == 0 {
		return nil, errBadRequest("corpus %q has no clips", p.Dir)
	}
	type clipOut struct {
		name         string
		truth, preds []slj.Pose
	}
	outs, err := parallel.MapSource(budget, src.Next,
		func(_ int, lc dataset.LabeledClip) (clipOut, error) {
			res, cerr := eng.ClassifyClip(lc)
			if cerr != nil {
				return clipOut{}, cerr
			}
			return clipOut{name: lc.Name, truth: lc.Clip.Labels(), preds: slj.Poses(res)}, nil
		})
	if err != nil {
		return nil, errBadRequest("evaluating: %v", err)
	}
	var sum stats.Summary
	for _, o := range outs {
		cr, serr := stats.EvaluateClip(o.name, o.truth, o.preds)
		if serr != nil {
			return nil, errInternal(serr)
		}
		sum.Add(cr)
	}
	out := EvaluateResult{
		Clips:    make([]ClipScore, len(sum.Clips)),
		Frames:   sum.TotalFrames(),
		Accuracy: sum.OverallAccuracy(),
	}
	for i, c := range sum.Clips {
		out.Clips[i] = ClipScore{Name: c.Name, Frames: c.Frames, Correct: c.Correct, Unknown: c.Unknown, Accuracy: c.Accuracy()}
	}
	return out, nil
}
