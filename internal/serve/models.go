package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sync"

	slj "repro"
)

// modelCache maps serialized-model content hashes to loaded engines, so
// repeated requests against the same DBN bank pay the deserialization
// and worker-clone cost once. Keying by content hash — not by path —
// means a model file atomically replaced on disk gets a fresh engine on
// its next request while requests still in flight keep the old one, and
// two paths holding identical bytes share one entry.
//
// Eviction is FIFO with a small cap: a serving process hosts a handful
// of model generations, not an unbounded zoo, and evicted engines are
// simply released to the GC (engines hold no file handles).
type modelCache struct {
	workers int
	opts    []slj.Option
	cap     int

	mu      sync.Mutex
	entries map[string]*slj.Engine
	order   []string // insertion order for FIFO eviction
}

func newModelCache(workers, capacity int, opts []slj.Option) *modelCache {
	if capacity < 1 {
		capacity = 4
	}
	return &modelCache{
		workers: workers,
		opts:    opts,
		cap:     capacity,
		entries: make(map[string]*slj.Engine),
	}
}

// engineFor loads the model file at path (already confined by the
// caller) and returns the cached engine for its content hash, building
// one on first sight.
func (c *modelCache) engineFor(path string) (*slj.Engine, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: reading model: %w", err)
	}
	sum := sha256.Sum256(data)
	key := hex.EncodeToString(sum[:])

	c.mu.Lock()
	defer c.mu.Unlock()
	if eng, ok := c.entries[key]; ok {
		return eng, nil
	}
	eng, err := slj.NewEngine(c.workers, c.opts...)
	if err != nil {
		return nil, err
	}
	if err := eng.LoadModel(bytes.NewReader(data)); err != nil {
		return nil, err
	}
	if len(c.order) >= c.cap {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.entries[key] = eng
	c.order = append(c.order, key)
	return eng, nil
}

// engines snapshots every cached engine (for pull metrics summing
// checked-out clips across all of them).
func (c *modelCache) engines() []*slj.Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*slj.Engine, 0, len(c.order))
	for _, key := range c.order {
		out = append(out, c.entries[key])
	}
	return out
}

// Len reports the number of cached models.
func (c *modelCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
