package analysis

import (
	"go/types"
	"path/filepath"
	"testing"
)

// TestLoadModulePackages proves the source loader can resolve and fully
// type-check real module packages (and their stdlib closure) without any
// external tooling.
func TestLoadModulePackages(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath != "repro" {
		t.Fatalf("module path = %q, want repro", l.ModulePath)
	}
	pkgs, err := l.Load(
		filepath.Join(l.ModuleDir, "internal/extract"),
		filepath.Join(l.ModuleDir, "internal/imaging"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	img := byPath["repro/internal/imaging"]
	if img == nil {
		t.Fatal("imaging package not loaded")
	}
	if obj := img.Types.Scope().Lookup("GetBinary"); obj == nil {
		t.Error("imaging.GetBinary not found in type info")
	}
	ext := byPath["repro/internal/extract"]
	if ext == nil {
		t.Fatal("extract package not loaded")
	}
	// Full bodies: the Info maps must cover expressions inside functions.
	if len(ext.Info.Uses) == 0 {
		t.Error("extract package has empty Uses map — bodies not checked")
	}
	// Spot-check cross-package type resolution.
	obj := ext.Types.Scope().Lookup("Extractor")
	if obj == nil {
		t.Fatal("extract.Extractor not found")
	}
	if _, ok := obj.Type().Underlying().(*types.Struct); !ok {
		t.Errorf("extract.Extractor is %T, want struct", obj.Type().Underlying())
	}
}

// TestLoadWholeModule loads every package in the repo, which is what
// cmd/sljcheck does on each CI run.
func TestLoadWholeModule(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load in -short mode")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(l.ModuleDir + "/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from ./...", len(pkgs))
	}
}
