package analysis

import (
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestLoadModulePackages proves the source loader can resolve and fully
// type-check real module packages (and their stdlib closure) without any
// external tooling.
func TestLoadModulePackages(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath != "repro" {
		t.Fatalf("module path = %q, want repro", l.ModulePath)
	}
	pkgs, err := l.Load(
		filepath.Join(l.ModuleDir, "internal/extract"),
		filepath.Join(l.ModuleDir, "internal/imaging"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	img := byPath["repro/internal/imaging"]
	if img == nil {
		t.Fatal("imaging package not loaded")
	}
	if obj := img.Types.Scope().Lookup("GetBinary"); obj == nil {
		t.Error("imaging.GetBinary not found in type info")
	}
	ext := byPath["repro/internal/extract"]
	if ext == nil {
		t.Fatal("extract package not loaded")
	}
	// Full bodies: the Info maps must cover expressions inside functions.
	if len(ext.Info.Uses) == 0 {
		t.Error("extract package has empty Uses map — bodies not checked")
	}
	// Spot-check cross-package type resolution.
	obj := ext.Types.Scope().Lookup("Extractor")
	if obj == nil {
		t.Fatal("extract.Extractor not found")
	}
	if _, ok := obj.Type().Underlying().(*types.Struct); !ok {
		t.Errorf("extract.Extractor is %T, want struct", obj.Type().Underlying())
	}
}

// TestLoadWholeModule loads every package in the repo, which is what
// cmd/sljcheck does on each CI run.
func TestLoadWholeModule(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load in -short mode")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(l.ModuleDir + "/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from ./...", len(pkgs))
	}
}

// writeFixtureModule lays out a throwaway module for loader edge-case
// tests and returns its root.
func writeFixtureModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module fixmod\n\ngo 1.21\n"
	for name, src := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadBuildTags proves parseDir honours build constraints: a file
// excluded by //go:build (wrong GOOS and a never-true tag) must not be
// parsed, so its (deliberately conflicting) declarations never reach the
// type checker.
func TestLoadBuildTags(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"tagged/a.go": "package tagged\n\nconst Mode = \"portable\"\n",
		"tagged/b_never.go": "//go:build never\n\npackage tagged\n\nconst Mode = \"never\"\n",
		"tagged/c_otheros.go": "//go:build plan9\n\npackage tagged\n\nconst Mode = \"plan9\"\n",
	})
	if runtime.GOOS == "plan9" {
		t.Skip("fixture assumes GOOS != plan9")
	}
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadTarget("fixmod/tagged", filepath.Join(dir, "tagged"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Syntax) != 1 {
		t.Fatalf("parsed %d files, want 1 (build-tagged files must be excluded)", len(pkg.Syntax))
	}
	obj := pkg.Types.Scope().Lookup("Mode")
	if obj == nil {
		t.Fatal("tagged.Mode not found")
	}
	if got := obj.(*types.Const).Val().ExactString(); got != `"portable"` {
		t.Errorf("Mode = %s, want \"portable\"", got)
	}
}

// TestLoadExcludesTestFiles proves _test.go files — both in-package and
// external-test-package ones — never enter the program: an external
// package ("pkg_test") in the same directory would otherwise be a parse-
// level package clash.
func TestLoadExcludesTestFiles(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"pkg/code.go":          "package pkg\n\nfunc Real() int { return 1 }\n",
		"pkg/code_test.go":     "package pkg\n\nfunc helper() int { return Real() }\n",
		"pkg/external_test.go": "package pkg_test\n\nimport \"fixmod/pkg\"\n\nvar _ = pkg.Real\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadTarget("fixmod/pkg", filepath.Join(dir, "pkg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Syntax) != 1 {
		t.Fatalf("parsed %d files, want 1 (test files must be excluded)", len(pkg.Syntax))
	}
	if pkg.Types.Scope().Lookup("helper") != nil {
		t.Error("in-package test declaration leaked into the program")
	}
}

// TestLoadDedup proves a package reached both as a named target and as a
// dependency of another target is checked exactly once: same *Package,
// same *types.Package, and cross-package object identity through the
// shared types.Info.
func TestLoadDedup(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"a/a.go": "package a\n\nfunc Shared() int { return 42 }\n",
		"b/b.go": "package b\n\nimport \"fixmod/a\"\n\nfunc Use() int { return a.Shared() }\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Load b first so a is pulled in as a dependency…
	bPkg, err := l.LoadTarget("fixmod/b", filepath.Join(dir, "b"))
	if err != nil {
		t.Fatal(err)
	}
	// …then name a directly.
	aPkg, err := l.LoadTarget("fixmod/a", filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	aAgain, err := l.LoadTarget("fixmod/a", filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if aPkg != aAgain {
		t.Error("loading the same target twice produced distinct *Package values")
	}
	imported := bPkg.Types.Imports()
	if len(imported) != 1 || imported[0] != aPkg.Types {
		t.Error("b's imported a is not the same *types.Package as the directly loaded a")
	}
	// Object identity across packages: the a.Shared the type checker
	// resolved inside b's body is a's own Defs object.
	sharedDef := aPkg.Types.Scope().Lookup("Shared")
	found := false
	for _, obj := range l.Info().Uses {
		if obj == sharedDef {
			found = true
			break
		}
	}
	if !found {
		t.Error("a.Shared use inside b does not alias a's definition object (shared Info broken)")
	}
	if got := l.FullPackages(); len(got) != 2 {
		t.Errorf("FullPackages = %d packages, want 2", len(got))
	}
}
