// Package nondet guards the determinism contract behind model format v2
// and the golden bit-identical tests: code in the DBN, extraction, and
// dataset pipeline packages must not consult sources that vary between
// runs. Flagged inside those packages:
//
//   - time.Now / time.Since (wall clock)
//   - the global math/rand functions (Int, Float64, Perm, Shuffle, …) —
//     a locally constructed, explicitly seeded *rand.Rand is fine
//   - os.Getenv / os.LookupEnv / os.Environ (environment reads)
//
// A pipeline package is one whose import path contains a "dbn",
// "extract", or "dataset" segment. `//slj:nondet-ok <reason>` on the
// line (or the line above) records that a use is intentional — e.g. a
// progress log timestamp that never reaches an encoded artifact.
package nondet

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Annotation is the suppression annotation honoured by this analyzer.
const Annotation = "nondet-ok"

// Analyzer flags run-to-run nondeterminism sources in pipeline packages.
var Analyzer = &analysis.Analyzer{
	Name: "nondet",
	Doc:  "check that DBN/extract/dataset pipeline code avoids wall-clock, global math/rand, and environment reads",
	Run:  run,
}

// pipelineSegments are the import-path segments that mark a package as
// part of the deterministic pipeline.
var pipelineSegments = map[string]bool{
	"dbn":     true,
	"extract": true,
	"dataset": true,
}

// banned maps package path → function name → what to say about it. The
// math/rand entries are the package-level convenience functions, which
// share the unseeded (Go ≥1.20: randomly seeded) global source; methods
// on an explicitly constructed *rand.Rand do not match.
var banned = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read",
		"Since": "wall-clock read",
	},
	"os": {
		"Getenv":    "environment read",
		"LookupEnv": "environment read",
		"Environ":   "environment read",
	},
	"math/rand": {
		"Int": "global rand source", "Intn": "global rand source",
		"Int31": "global rand source", "Int31n": "global rand source",
		"Int63": "global rand source", "Int63n": "global rand source",
		"Uint32": "global rand source", "Uint64": "global rand source",
		"Float32": "global rand source", "Float64": "global rand source",
		"NormFloat64": "global rand source", "ExpFloat64": "global rand source",
		"Perm": "global rand source", "Shuffle": "global rand source",
		"Seed": "global rand source",
	},
	"math/rand/v2": {
		"Int": "global rand source", "IntN": "global rand source",
		"Int32": "global rand source", "Int32N": "global rand source",
		"Int64": "global rand source", "Int64N": "global rand source",
		"Uint32": "global rand source", "Uint64": "global rand source",
		"Float32": "global rand source", "Float64": "global rand source",
		"NormFloat64": "global rand source", "ExpFloat64": "global rand source",
		"Perm": "global rand source", "Shuffle": "global rand source",
		"N": "global rand source",
	},
}

// InPipeline reports whether pkgPath is part of the deterministic
// pipeline (has a dbn/extract/dataset path segment).
func InPipeline(pkgPath string) bool {
	for _, seg := range strings.Split(pkgPath, "/") {
		if pipelineSegments[seg] {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !InPipeline(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Package-level functions only: a method (e.g. (*rand.Rand).Intn
			// on a seeded local source) has a receiver and is allowed.
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			what, ok := banned[fn.Pkg().Path()][fn.Name()]
			if !ok {
				return true
			}
			if pass.Annotated(sel.Pos(), Annotation) {
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s (%s) in deterministic pipeline package %s; thread the value in explicitly or annotate //slj:nondet-ok <reason>",
				fn.Pkg().Name(), fn.Name(), what, pass.Pkg.Path())
			return true
		})
	}
	return nil
}
