package nondet

import (
	"testing"

	"repro/internal/analysis/atest"
)

func TestNondet(t *testing.T) {
	atest.RunPackages(t, "testdata", []string{"pipe/dbn", "pipe/viz"}, Analyzer)
}

func TestInPipeline(t *testing.T) {
	cases := map[string]bool{
		"repro/internal/dbn":           true,
		"repro/internal/extract":       true,
		"repro/internal/dataset":       true,
		"pipe/dbn":                     true,
		"repro/internal/obs":           false,
		"repro/internal/extractor":     false, // segment match, not substring
		"repro/cmd/sljtop":             false,
	}
	for path, want := range cases {
		if got := InPipeline(path); got != want {
			t.Errorf("InPipeline(%q) = %v, want %v", path, got, want)
		}
	}
}
