// Package dbn is a nondet fixture: its import path carries a "dbn"
// segment, so every nondeterminism source below must be flagged unless
// annotated.
package dbn

import (
	"math/rand"
	"os"
	"time"
)

func Infer(seed int64) float64 {
	t := time.Now()                  // want "time.Now \\(wall-clock read\\)"
	_ = time.Since(t)                // want "time.Since \\(wall-clock read\\)"
	_ = rand.Float64()               // want "rand.Float64 \\(global rand source\\)"
	rand.Shuffle(3, func(i, j int) {}) // want "rand.Shuffle \\(global rand source\\)"
	_ = os.Getenv("SLJ_MODE")        // want "os.Getenv \\(environment read\\)"

	// A locally constructed, explicitly seeded source is deterministic.
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Annotated uses are accepted with a reason.
func Trace() int64 {
	//slj:nondet-ok progress timestamp, never encoded
	return time.Now().UnixNano()
}

// Suppression also covers the same line.
func TraceInline() string {
	return os.Getenv("SLJ_TRACE") //slj:nondet-ok debug toggle, not part of the artifact
}
