// Package viz is outside the deterministic pipeline (no dbn/extract/
// dataset path segment), so nondeterminism sources are fine here.
package viz

import (
	"os"
	"time"
)

func Stamp() (int64, string) {
	return time.Now().UnixNano(), os.Getenv("TERM")
}
