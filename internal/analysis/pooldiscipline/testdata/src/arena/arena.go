// Package arena is the pooldiscipline fixture for the frame-arena
// Get/Put pairs (skelgraph.GetScratch / keypoint.GetScratch): the same
// leak, use-after-Put, escape and annotation cases as the imaging
// fixture, but through the arena pools.
package arena

import (
	"keypoint"
	"skelgraph"
)

func analyze(sc *skelgraph.Scratch) {}

// --- true positives -------------------------------------------------

func leak() {
	sc := skelgraph.GetScratch() // want "never returned to the pool; call skelgraph.PutScratch"
	analyze(sc)
}

func leakEscapesReturn() *skelgraph.Scratch {
	sc := skelgraph.GetScratch() // want "escapes this function without a Put"
	return sc
}

func leakDirectReturn() *keypoint.Scratch {
	return keypoint.GetScratch() // want "escapes via return"
}

func leakHandoff() {
	analyze(skelgraph.GetScratch()) // want "passed straight to analyze"
}

func leakDiscard() {
	keypoint.GetScratch() // want "result of keypoint.GetScratch is discarded"
}

func useAfterPut() int {
	sc := skelgraph.GetScratch()
	skelgraph.PutScratch(sc)
	return len(sc.Buf) // want "used after being returned to the pool"
}

func doublePut() {
	kp := keypoint.GetScratch()
	keypoint.PutScratch(kp)
	keypoint.PutScratch(kp) // want "used after being returned to the pool"
}

// --- clean ----------------------------------------------------------

func cleanPair() {
	sc := skelgraph.GetScratch()
	analyze(sc)
	skelgraph.PutScratch(sc)
}

func cleanDeferredPair() {
	kp := keypoint.GetScratch()
	defer keypoint.PutScratch(kp)
	_ = kp
}

func cleanMixedPools() {
	g := skelgraph.GetScratch()
	k := keypoint.GetScratch()
	analyze(g)
	skelgraph.PutScratch(g)
	keypoint.PutScratch(k)
}

// --- annotated ------------------------------------------------------

type worker struct {
	graph *skelgraph.Scratch
	kp    *keypoint.Scratch
}

func newWorker() *worker {
	//slj:pool-escapes the arenas live for the worker's lifetime
	return &worker{graph: skelgraph.GetScratch(), kp: keypoint.GetScratch()}
}
