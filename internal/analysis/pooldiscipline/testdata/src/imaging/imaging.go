// Package imaging is a fixture stub mirroring the pool API of
// repro/internal/imaging; the pooldiscipline analyzer matches pool
// helpers by package name and function name, so fixtures can exercise it
// without importing the real package.
package imaging

type Binary struct {
	W, H int
	Pix  []uint8
}

type Gray struct {
	W, H int
	Pix  []uint8
}

type RGB struct {
	W, H int
	Pix  []uint8
}

func GetBinary(w, h int) *Binary { return &Binary{W: w, H: h, Pix: make([]uint8, w*h)} }
func PutBinary(b *Binary)        {}

func GetGray(w, h int) *Gray { return &Gray{W: w, H: h, Pix: make([]uint8, w*h)} }
func PutGray(g *Gray)        {}

func GetRGB(w, h int) *RGB { return &RGB{W: w, H: h, Pix: make([]uint8, 3*w*h)} }
func PutRGB(m *RGB)        {}
