// Package keypoint is a fixture stub mirroring the frame-arena API of
// repro/internal/keypoint; the pooldiscipline analyzer matches arena
// helpers by package name and function name.
package keypoint

type Scratch struct{ ends []int }

func GetScratch() *Scratch  { return &Scratch{} }
func PutScratch(s *Scratch) {}
