// Package pool is the pooldiscipline fixture: each function is one
// true-positive, clean, or annotated case.
package pool

import "imaging"

func process(b *imaging.Binary) {}

func smooth(b *imaging.Binary) *imaging.Binary { return b }

func thinInto(dst *imaging.Binary) *imaging.Binary { return dst }

// --- true positives -------------------------------------------------

func leak(w, h int) int {
	b := imaging.GetBinary(w, h) // want "never returned to the pool"
	return len(b.Pix)
}

func leakEscapesReturn(w, h int) *imaging.Binary {
	b := imaging.GetBinary(w, h) // want "escapes this function without a Put"
	return b
}

func leakDirectReturn(w, h int) *imaging.Gray {
	return imaging.GetGray(w, h) // want "escapes via return"
}

func leakHandoff(w, h int) {
	process(imaging.GetBinary(w, h)) // want "passed straight to process"
}

func leakDiscard(w, h int) {
	imaging.GetRGB(w, h) // want "discarded"
}

func useAfterPut(w, h int) int {
	b := imaging.GetBinary(w, h)
	imaging.PutBinary(b)
	return len(b.Pix) // want "used after being returned to the pool"
}

func doublePut(w, h int) {
	g := imaging.GetGray(w, h)
	imaging.PutGray(g)
	imaging.PutGray(g) // want "used after being returned to the pool"
}

func leakStoredInField(w, h int, s *struct{ b *imaging.Binary }) {
	s.b = imaging.GetBinary(w, h) // want "stored somewhere this check cannot follow"
}

// --- clean ----------------------------------------------------------

func cleanPair(w, h int) int {
	b := imaging.GetBinary(w, h)
	n := len(b.Pix)
	imaging.PutBinary(b)
	return n
}

func cleanDefer(w, h int) int {
	b := imaging.GetBinary(w, h)
	defer imaging.PutBinary(b)
	return len(b.Pix)
}

// cleanConditional is the idiom used by extract.Extract: the raw buffer
// is released only when post-processing produced a fresh image.
func cleanConditional(w, h int) *imaging.Binary {
	raw := imaging.GetBinary(w, h)
	out := smooth(raw)
	if out != raw {
		imaging.PutBinary(raw)
	}
	return out
}

// cleanBranchReturn mirrors extract.ExtractInROI: one early return hands
// the buffer to the caller, the other path recycles it. Having any Put
// satisfies the discipline.
func cleanBranchReturn(w, h int, early bool) *imaging.Binary {
	out := imaging.GetBinary(w, h)
	if early {
		return out
	}
	res := smooth(out)
	if res != out {
		imaging.PutBinary(out)
	}
	return res
}

// --- annotated ownership transfers ----------------------------------

func annotatedEscape(w, h int) *imaging.Binary {
	b := imaging.GetBinary(w, h) //slj:pool-escapes caller owns the buffer
	return b
}

func annotatedHandoff(w, h int) *imaging.Binary {
	//slj:pool-escapes thinInto returns dst; the caller Puts it
	return thinInto(imaging.GetBinary(w, h))
}
