// Package skelgraph is a fixture stub mirroring the frame-arena API of
// repro/internal/skelgraph; the pooldiscipline analyzer matches arena
// helpers by package name and function name.
package skelgraph

type Scratch struct{ Buf []int }

func GetScratch() *Scratch  { return &Scratch{} }
func PutScratch(s *Scratch) {}
