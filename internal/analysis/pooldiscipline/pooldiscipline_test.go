package pooldiscipline

import (
	"testing"

	"repro/internal/analysis/atest"
)

func TestPoolDiscipline(t *testing.T) {
	atest.Run(t, "testdata", "pool", Analyzer)
}

func TestPoolDisciplineArena(t *testing.T) {
	atest.Run(t, "testdata", "arena", Analyzer)
}
