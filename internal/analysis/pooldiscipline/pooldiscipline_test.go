package pooldiscipline

import (
	"testing"

	"repro/internal/analysis/atest"
)

func TestPoolDiscipline(t *testing.T) {
	atest.Run(t, "testdata", "pool", Analyzer)
}
