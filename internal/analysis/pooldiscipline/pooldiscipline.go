// Package pooldiscipline checks that every pooled object obtained from a
// recognised sync.Pool Get helper — the imaging image pools
// (GetBinary/GetGray/GetRGB) and the frame-arena pools
// (skelgraph.GetScratch, keypoint.GetScratch) — is returned with the
// matching Put* on some path through the same function, and that a
// pooled object is never touched again after it has been Put.
//
// The check is intraprocedural and deliberately conservative:
//
//   - A Get whose result is bound to a variable must have at least one
//     Put of that variable somewhere in the function. Conditional Puts
//     (the `if out != raw { PutBinary(raw) }` idiom) count.
//   - A Get result that is returned, stored into a field/slice/map, or
//     passed straight into another call transfers ownership out of the
//     function; that is legal but must be declared with an
//     `//slj:pool-escapes` annotation on (or directly above) the Get
//     line, so every escape is a reviewed decision rather than an
//     accident.
//   - Any syntactic use of the buffer variable in a statement after the
//     Put, within the same block, is flagged as use-after-Put. Double
//     Puts in a straight line are a special case of this.
//
// What it cannot see: aliases created before Put (a second name for the
// same buffer), Puts performed by a callee, or flow through struct
// fields. Those remain covered by the pool contract comment in
// internal/imaging/pool.go and the race/golden tests.
package pooldiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Annotation is the suppression annotation honoured by this analyzer.
const Annotation = "pool-escapes"

// Analyzer flags pooled buffers and arenas that leak, escape
// unannotated, or are used after release.
var Analyzer = &analysis.Analyzer{
	Name: "pooldiscipline",
	Doc:  "check Get*/Put* pairing and use-after-Put on pooled image buffers and frame arenas",
	Run:  run,
}

// poolPairs lists the recognised Get*/Put* pairs, keyed by defining
// package name, then by the suffix shared by the Get and the Put. The
// analyzer matches by name rather than import path so it works against
// both the real packages and test fixtures.
var poolPairs = map[string]map[string]bool{
	"imaging":   {"Binary": true, "Gray": true, "RGB": true},
	"skelgraph": {"Scratch": true},
	"keypoint":  {"Scratch": true},
}

// poolFunc classifies a call as a recognised pool/arena Get or Put and
// returns the package-qualified callee name (e.g. "imaging.GetBinary",
// "skelgraph.PutScratch").
func poolFunc(pass *analysis.Pass, call *ast.CallExpr) (qual string, isGet bool, ok bool) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return "", false, false
	}
	suffixes := poolPairs[fn.Pkg().Name()]
	if suffixes == nil {
		return "", false, false
	}
	name := fn.Name()
	var rest string
	var get bool
	switch {
	case strings.HasPrefix(name, "Get"):
		rest, get = name[3:], true
	case strings.HasPrefix(name, "Put"):
		rest, get = name[3:], false
	default:
		return "", false, false
	}
	if !suffixes[rest] {
		return "", false, false
	}
	return fn.Pkg().Name() + "." + name, get, true
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

// putSite is one Put call releasing a tracked buffer variable.
type putSite struct {
	call  *ast.CallExpr
	stack []ast.Node // ancestor stack at the call
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// Pass 1: index Put calls by the object of their (plain identifier)
	// argument.
	puts := map[types.Object][]putSite{}
	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, isGet, ok := poolFunc(pass, call); !ok || isGet {
			return true
		}
		if len(call.Args) != 1 {
			return true
		}
		id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.ObjectOf(id); obj != nil {
			puts[obj] = append(puts[obj], putSite{call, append([]ast.Node(nil), stack...)})
		}
		return true
	})

	// Pass 2: classify every Get call site.
	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		getName, isGet, ok := poolFunc(pass, call)
		if !ok || !isGet {
			return true
		}
		if pass.Annotated(call.Pos(), Annotation) {
			return true
		}
		parent := stack[len(stack)-2]
		switch p := parent.(type) {
		case *ast.AssignStmt:
			if obj := assignTarget(pass, p, call); obj != nil {
				checkTracked(pass, body, call, getName, obj, puts[obj])
				return true
			}
			pass.Reportf(call.Pos(), "pooled buffer from %s is stored somewhere this check cannot follow; annotate //slj:pool-escapes if ownership is transferred", getName)
		case *ast.ValueSpec:
			if obj := specTarget(pass, p, call); obj != nil {
				checkTracked(pass, body, call, getName, obj, puts[obj])
				return true
			}
			pass.Reportf(call.Pos(), "pooled buffer from %s is never returned to the pool", getName)
		case *ast.CallExpr:
			if _, _, isPool := poolFunc(pass, p); isPool {
				return true // Get fed straight into a Put: pointless but not a leak
			}
			pass.Reportf(call.Pos(), "pooled buffer from %s is passed straight to %s, transferring ownership; annotate //slj:pool-escapes if intended", getName, callLabel(pass, p))
		case *ast.ReturnStmt:
			pass.Reportf(call.Pos(), "pooled buffer from %s escapes via return; annotate //slj:pool-escapes if the caller takes ownership", getName)
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "result of %s is discarded — the pooled buffer leaks", getName)
		default:
			pass.Reportf(call.Pos(), "pooled buffer from %s escapes through %T; annotate //slj:pool-escapes if ownership is transferred", getName, parent)
		}
		return true
	})

	// Pass 3: use-after-Put within the Put's own statement sequence.
	for obj, sites := range puts {
		for _, site := range sites {
			checkUseAfterPut(pass, obj, site)
		}
	}
}

// assignTarget returns the identifier object the Get result is bound to
// in a 1:1 position of the assignment, or nil.
func assignTarget(pass *analysis.Pass, as *ast.AssignStmt, call *ast.CallExpr) types.Object {
	if len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	for i, rhs := range as.Rhs {
		if ast.Unparen(rhs) != call {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		return pass.ObjectOf(id)
	}
	return nil
}

// specTarget is assignTarget for `var v = imaging.Get*(...)` declarations.
func specTarget(pass *analysis.Pass, vs *ast.ValueSpec, call *ast.CallExpr) types.Object {
	if len(vs.Names) != len(vs.Values) {
		return nil
	}
	for i, val := range vs.Values {
		if ast.Unparen(val) == call {
			return pass.ObjectOf(vs.Names[i])
		}
	}
	return nil
}

// checkTracked reports on a Get bound to variable obj given its Put sites.
func checkTracked(pass *analysis.Pass, body *ast.BlockStmt, call *ast.CallExpr, getName string, obj types.Object, sites []putSite) {
	if len(sites) > 0 {
		return // released somewhere; pass 3 handles use-after-Put
	}
	putName := strings.Replace(getName, ".Get", ".Put", 1)
	if escapes(pass, body, obj) {
		pass.Reportf(call.Pos(), "pooled buffer %s from %s escapes this function without a Put; annotate //slj:pool-escapes if the new owner keeps it", obj.Name(), getName)
		return
	}
	pass.Reportf(call.Pos(), "pooled buffer %s from %s is never returned to the pool; call %s on every path or annotate //slj:pool-escapes", obj.Name(), getName, putName)
}

// escapes reports whether obj is returned, stored into non-local
// structure, sent on a channel, or embedded in a composite literal —
// i.e. the buffer plausibly outlives the function.
func escapes(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.ObjectOf(id) != obj {
			return true
		}
		for i := len(stack) - 2; i >= 0; i-- {
			switch p := stack[i].(type) {
			case *ast.ReturnStmt:
				// Only the buffer value itself escaping counts; derived
				// results like `return len(b.Pix)` do not.
				for _, res := range p.Results {
					if ast.Unparen(res) == ast.Node(id) {
						found = true
						return false
					}
				}
			case *ast.SendStmt:
				if ast.Unparen(p.Value) == ast.Node(id) {
					found = true
					return false
				}
			case *ast.CompositeLit:
				found = true
				return false
			case *ast.AssignStmt:
				// Storing the buffer under a selector or index expression
				// (x.f = v, xs[i] = v) hides it from this check.
				for j, rhs := range p.Rhs {
					if !analysis.Within(id, rhs) || j >= len(p.Lhs) {
						continue
					}
					switch p.Lhs[j].(type) {
					case *ast.SelectorExpr, *ast.IndexExpr:
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// checkUseAfterPut flags references to obj in statements that follow the
// Put statement inside the same block.
func checkUseAfterPut(pass *analysis.Pass, obj types.Object, site putSite) {
	// A deferred (or go'd) Put runs when the function exits, after every
	// textually later statement; the straight-line scan does not apply.
	for _, anc := range site.stack {
		switch anc.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return
		}
	}
	// Locate the statement containing the Put and its enclosing list.
	var stmts []ast.Stmt
	var idx = -1
	for i := len(site.stack) - 1; i > 0; i-- {
		stmt, ok := site.stack[i].(ast.Stmt)
		if !ok {
			continue
		}
		switch blk := site.stack[i-1].(type) {
		case *ast.BlockStmt:
			stmts, idx = blk.List, stmtIndex(blk.List, stmt)
		case *ast.CaseClause:
			stmts, idx = blk.Body, stmtIndex(blk.Body, stmt)
		case *ast.CommClause:
			stmts, idx = blk.Body, stmtIndex(blk.Body, stmt)
		}
		if idx >= 0 {
			break
		}
	}
	if idx < 0 {
		return
	}
	for _, later := range stmts[idx+1:] {
		reported := false
		analysis.WalkStack(later, func(n ast.Node, _ []ast.Node) bool {
			if reported {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok || pass.ObjectOf(id) != obj {
				return true
			}
			reported = true
			pass.Reportf(id.Pos(), "buffer %s is used after being returned to the pool at line %d; the pool may already have handed it to another frame", obj.Name(), pass.Fset.Position(site.call.Pos()).Line)
			return false
		})
		if reported {
			return // one report per Put is enough
		}
	}
}

func stmtIndex(list []ast.Stmt, s ast.Stmt) int {
	for i, st := range list {
		if st == s {
			return i
		}
	}
	return -1
}

// callLabel renders a short name for the call receiving the buffer.
func callLabel(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := pass.CalleeFunc(call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	if name := pass.CalleeName(call); name != "" {
		return name
	}
	return "a call"
}
