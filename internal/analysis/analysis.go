// Package analysis is a small, dependency-free static-analysis framework
// modelled on golang.org/x/tools/go/analysis, which is not vendored in
// this module. It provides just enough structure for the project-specific
// checkers under internal/analysis/... and the cmd/sljcheck multichecker:
// a Loader that parses and type-checks packages from source using only the
// standard library, an Analyzer/Pass/Diagnostic trio, and (in the sibling
// atest package) a fixture runner in the style of analysistest.
//
// The analyzers enforce invariants the test suite can only spot-check:
//
//   - pooldiscipline: every imaging.Get* buffer is Put back (or its escape
//     is annotated //slj:pool-escapes), and never touched after Put.
//   - maporder: no map iteration order leaks into encoders, writers,
//     hashes, or collected slices that cross a function boundary — the
//     determinism contract behind model format v2 and the experiment
//     writers.
//   - syncmisuse: no locks copied by value, no goroutines writing shared
//     state without an index-disjoint or synchronised pattern.
//   - metricnames: obs.Registry metric names are lowercase dot-case and
//     registered from exactly one call site.
//
// See DESIGN.md §8 for the invariant catalogue and annotation grammar.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. Run inspects a fully type-checked
// package via the Pass and reports findings through Pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-paragraph description (first line = summary).
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	annots map[annotKey]bool // lazily built //slj: annotation index
	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// annotKey addresses an //slj: annotation by file and line.
type annotKey struct {
	file string
	line int
	name string
}

// AnnotationPrefix introduces suppression comments, e.g.
// "//slj:pool-escapes" or "//slj:map-ordered". The annotation applies to
// findings on the same source line or the line directly below it (so it
// can sit on its own line above the flagged statement).
const AnnotationPrefix = "//slj:"

// Annotated reports whether an //slj:<name> comment covers pos: the
// comment sits on the same line as pos or on the line immediately above.
func (p *Pass) Annotated(pos token.Pos, name string) bool {
	if p.annots == nil {
		p.annots = map[annotKey]bool{}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, AnnotationPrefix)
					if !ok {
						continue
					}
					// Keep only the annotation word; anything after a space
					// is free-form rationale.
					word, _, _ := strings.Cut(text, " ")
					cp := p.Fset.Position(c.Pos())
					// Cover the comment's own line and the next line.
					p.annots[annotKey{cp.Filename, cp.Line, word}] = true
					p.annots[annotKey{cp.Filename, cp.Line + 1, word}] = true
				}
			}
		}
	}
	at := p.Fset.Position(pos)
	return p.annots[annotKey{at.Filename, at.Line, name}]
}

// Run applies every analyzer to every package and returns the combined
// findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Syntax,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Pos:      token.Position{Filename: pkg.PkgPath},
					Analyzer: a.Name,
					Message:  fmt.Sprintf("internal error: %v", err),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
