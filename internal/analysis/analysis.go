// Package analysis is a small, dependency-free static-analysis framework
// modelled on golang.org/x/tools/go/analysis, which is not vendored in
// this module. It provides just enough structure for the project-specific
// checkers under internal/analysis/... and the cmd/sljcheck multichecker:
// a Loader that parses and type-checks packages from source using only the
// standard library, an Analyzer/Pass/Diagnostic trio, and (in the sibling
// atest package) a fixture runner in the style of analysistest.
//
// The analyzers enforce invariants the test suite can only spot-check:
//
//   - pooldiscipline: every imaging.Get* buffer is Put back (or its escape
//     is annotated //slj:pool-escapes), and never touched after Put.
//   - maporder: no map iteration order leaks into encoders, writers,
//     hashes, or collected slices that cross a function boundary — the
//     determinism contract behind model format v2 and the experiment
//     writers.
//   - syncmisuse: no locks copied by value, no goroutines writing shared
//     state without an index-disjoint or synchronised pattern.
//   - metricnames: obs.Registry metric names are lowercase dot-case and
//     registered from exactly one call site.
//   - nondet: no wall-clock, global math/rand, or environment reads in
//     the deterministic DBN/extract/dataset pipeline.
//   - allocfree: nothing reachable from a //slj:hotpath root heap-
//     allocates (the zero-allocation per-frame contract of DESIGN.md §11,
//     proven statically via the interprocedural call graph of the sibling
//     callgraph package).
//
// Analyzers come in two shapes: per-package (Run) and whole-program
// (RunProgram), the latter seeing every loaded package at once through a
// Program. The Loader type-checks the module as one program — shared
// token.FileSet, shared types.Info, one *types.Package per import path —
// so cross-package object identity holds and a whole-program analyzer can
// chase a call from any package into any other.
//
// See DESIGN.md §8 and §13 for the invariant catalogue and annotation
// grammar.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. Exactly one of Run or RunProgram
// must be set: Run inspects one fully type-checked package at a time via
// its Pass; RunProgram runs once over the whole loaded program (the Pass
// then carries every file of every package, Pass.Program is non-nil, and
// Pass.Pkg is nil).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-paragraph description (first line = summary).
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
	// RunProgram executes the check once over all packages.
	RunProgram func(*Pass) error
}

// Program is the whole set of packages one Loader produced, handed to
// RunProgram analyzers. All packages share one FileSet and one
// types.Info (see Loader), so types.Object identity holds across the
// package list.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	Info     *types.Info
}

// Pass carries one type-checked package (or, for RunProgram analyzers,
// the whole program) through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Program is non-nil for RunProgram analyzers.
	Program *Program

	annots map[annotKey]string // lazily built //slj: annotation index
	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Chain is the root→sink call chain for interprocedural findings
	// (empty for intra-package ones). Chain[0] is the annotated hot-path
	// root, the last element the function containing Pos.
	Chain []string `json:",omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportChain records an interprocedural finding at pos carrying the
// root→sink call chain that makes it reachable.
func (p *Pass) ReportChain(pos token.Pos, chain []string, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// NewProgram bundles packages from one Loader into a Program. The
// packages' shared FileSet/Info become the program's.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{Packages: pkgs}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
		prog.Info = pkgs[0].Info
	}
	return prog
}

// annotKey addresses an //slj: annotation by file and line.
type annotKey struct {
	file string
	line int
	name string
}

// AnnotationPrefix introduces suppression comments, e.g.
// "//slj:pool-escapes" or "//slj:map-ordered". The annotation applies to
// findings on the same source line or the line directly below it (so it
// can sit on its own line above the flagged statement).
const AnnotationPrefix = "//slj:"

// Annotated reports whether an //slj:<name> comment covers pos: the
// comment sits on the same line as pos or on the line immediately above.
func (p *Pass) Annotated(pos token.Pos, name string) bool {
	_, ok := p.Annotation(pos, name)
	return ok
}

// Annotation is Annotated plus the annotation's free-form argument text:
// for "//slj:alloc-ok cold error path" covering pos it returns
// ("cold error path", true). An annotation present with no argument
// returns ("", true) — analyzers that require a rationale (allocfree)
// treat that as its own finding.
func (p *Pass) Annotation(pos token.Pos, name string) (string, bool) {
	if p.annots == nil {
		p.annots = map[annotKey]string{}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, AnnotationPrefix)
					if !ok {
						continue
					}
					// The annotation word ends at the first space; anything
					// after it is the free-form argument (reason / target).
					word, rest, _ := strings.Cut(text, " ")
					rest = strings.TrimSpace(rest)
					if rest == "" {
						// Distinguish "present, no argument" from "absent"
						// with a sentinel that TrimSpace can never produce.
						rest = "\x00"
					}
					cp := p.Fset.Position(c.Pos())
					// Cover the comment's own line and the next line.
					p.annots[annotKey{cp.Filename, cp.Line, word}] = rest
					p.annots[annotKey{cp.Filename, cp.Line + 1, word}] = rest
				}
			}
		}
	}
	at := p.Fset.Position(pos)
	rest, ok := p.annots[annotKey{at.Filename, at.Line, name}]
	if rest == "\x00" {
		rest = ""
	}
	return rest, ok
}

// Run applies every analyzer to every package — whole-program analyzers
// run once over all of them — and returns the combined findings sorted
// by position. The packages must come from one Loader (they share its
// FileSet and types.Info); the program is type-checked once and reused
// across every analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Syntax,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Pos:      token.Position{Filename: pkg.PkgPath},
					Analyzer: a.Name,
					Message:  fmt.Sprintf("internal error: %v", err),
				})
			}
		}
	}
	if len(pkgs) > 0 {
		prog := NewProgram(pkgs)
		allFiles := make([]*ast.File, 0, len(pkgs))
		for _, pkg := range pkgs {
			allFiles = append(allFiles, pkg.Syntax...)
		}
		for _, a := range analyzers {
			if a.RunProgram == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     prog.Fset,
				Files:    allFiles,
				Info:     prog.Info,
				Program:  prog,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.RunProgram(pass); err != nil {
				diags = append(diags, Diagnostic{
					Pos:      token.Position{Filename: "program"},
					Analyzer: a.Name,
					Message:  fmt.Sprintf("internal error: %v", err),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
