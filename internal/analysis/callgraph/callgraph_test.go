package callgraph

import (
	"go/ast"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// load builds the fixture program and its call graph with //slj:dyncall
// narrowing active.
func load(t *testing.T) (*Graph, *analysis.Pass) {
	t.Helper()
	loader, err := analysis.NewLoader("testdata")
	if err != nil {
		t.Fatal(err)
	}
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader.ExtraRoots = []string{src}
	if _, err := loader.LoadTarget("app", filepath.Join(src, "app")); err != nil {
		t.Fatal(err)
	}
	pkgs := loader.FullPackages()
	prog := analysis.NewProgram(pkgs)
	var files []*ast.File
	for _, pkg := range pkgs {
		files = append(files, pkg.Syntax...)
	}
	pass := &analysis.Pass{Fset: prog.Fset, Files: files, Info: prog.Info}
	return Build(prog, pass.Annotation), pass
}

// one fails the test unless exactly one fixture node matches name.
func one(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	ns := g.FuncsNamed(name)
	if len(ns) != 1 {
		t.Fatalf("FuncsNamed(%q) = %d nodes, want 1", name, len(ns))
	}
	return ns[0]
}

func outEdges(n *Node) map[string]Kind {
	out := map[string]Kind{}
	for _, e := range n.Out {
		out[e.Callee.Name()+"|"+e.Kind.String()] = e.Kind
	}
	return out
}

func TestStaticAndInterfaceEdges(t *testing.T) {
	g, _ := load(t)
	main := one(t, g, "app.Main")
	edges := outEdges(main)
	for _, want := range []string{
		"lib.Helper|static",      // cross-package static call
		"(app.Dog).Speak|interface", // same-package implementation
		"(lib.Cat).Speak|interface", // cross-package implementation
	} {
		if _, ok := edges[want]; !ok {
			t.Errorf("app.Main missing edge %s (have %v)", want, edges)
		}
	}
	if dyn := g.SiteDyn[main.Out[len(main.Out)-1].Site]; dyn == nil || dyn.Kind != Interface {
		t.Errorf("interface call site not recorded as a DynSite")
	}
}

func TestFuncValueOverApproximation(t *testing.T) {
	g, _ := load(t)
	run := one(t, g, "app.Run")
	edges := outEdges(run)
	// Over-approximation: every program func with signature func(int) int.
	for _, want := range []string{"lib.Twice|funcvalue", "lib.Thrice|funcvalue"} {
		if _, ok := edges[want]; !ok {
			t.Errorf("app.Run missing over-approximated edge %s (have %v)", want, edges)
		}
	}
	for k := range edges {
		if strings.Contains(k, "Helper") || strings.Contains(k, "Speak") {
			t.Errorf("app.Run has signature-mismatched edge %s", k)
		}
	}
}

func TestDyncallNarrowing(t *testing.T) {
	g, _ := load(t)
	narrow := one(t, g, "app.Narrow")
	edges := outEdges(narrow)
	if _, ok := edges["lib.Twice|narrowed"]; !ok {
		t.Errorf("app.Narrow missing narrowed edge to lib.Twice (have %v)", edges)
	}
	if _, ok := edges["lib.Thrice|funcvalue"]; ok {
		t.Errorf("//slj:dyncall did not replace the over-approximation: %v", edges)
	}

	bad := one(t, g, "app.BadNarrow")
	if len(bad.Out) != 0 {
		t.Errorf("app.BadNarrow should have no edges, has %v", outEdges(bad))
	}
	found := false
	for _, site := range g.Sites {
		if site.Caller == bad && site.Narrowed {
			found = true
			if len(site.Unmatched) != 1 || site.Unmatched[0] != "lib.NoSuchFunc" {
				t.Errorf("unmatched targets = %v, want [lib.NoSuchFunc]", site.Unmatched)
			}
		}
	}
	if !found {
		t.Errorf("no narrowed DynSite recorded for app.BadNarrow")
	}
}

func TestReachabilityAndChain(t *testing.T) {
	g, _ := load(t)
	main := one(t, g, "app.Main")
	parents := g.Parents([]*Node{main}, nil)

	catSpeak := one(t, g, "(lib.Cat).Speak")
	chain := Chain(parents, catSpeak)
	want := []string{"app.Main", "(lib.Cat).Speak"}
	if len(chain) != len(want) || chain[0] != want[0] || chain[1] != want[1] {
		t.Errorf("Chain = %v, want %v", chain, want)
	}

	reach := g.Reachable([]*Node{main}, nil)
	if !reach[one(t, g, "lib.Helper")] {
		t.Errorf("lib.Helper not reachable from app.Main")
	}
	if reach[one(t, g, "lib.Twice")] {
		t.Errorf("lib.Twice should not be reachable from app.Main")
	}
	if Chain(parents, one(t, g, "app.Run")) != nil {
		t.Errorf("app.Run should not have a chain from app.Main")
	}
}

func TestFuncsNamedSpellings(t *testing.T) {
	g, _ := load(t)
	for _, spelling := range []string{
		"(lib.Cat).Speak", "Cat.Speak", "(Cat).Speak", "lib.Cat.Speak", "lib.(Cat).Speak",
	} {
		if len(g.FuncsNamed(spelling)) != 1 {
			t.Errorf("FuncsNamed(%q) should match (lib.Cat).Speak", spelling)
		}
	}
	// Bare "Speak" matches both implementations.
	if n := len(g.FuncsNamed("Speak")); n != 2 {
		t.Errorf("FuncsNamed(\"Speak\") = %d nodes, want 2", n)
	}
}
