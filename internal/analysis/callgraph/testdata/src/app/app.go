// Package app is the callgraph fixture's root package.
package app

import "lib"

type Speaker interface{ Speak() string }

type Dog struct{}

func (Dog) Speak() string { return "woof" }

// Main mixes a static cross-package call with interface dispatch.
func Main(s Speaker) string {
	lib.Helper()
	return s.Speak()
}

// Run calls through an unnarrowed func value.
func Run(f func(int) int, n int) int {
	return f(n)
}

// Narrow declares its func-value target explicitly.
func Narrow(f func(int) int, n int) int {
	//slj:dyncall lib.Twice
	return f(n)
}

// BadNarrow names a target that does not exist.
func BadNarrow(f func(int) int, n int) int {
	//slj:dyncall lib.NoSuchFunc
	return f(n)
}
