// Package lib supplies cross-package callees for the callgraph fixture.
package lib

func Helper() {}

type Cat struct{}

func (Cat) Speak() string { return "meow" }

func Twice(n int) int { return n * 2 }

func Thrice(n int) int { return n * 3 }
