// Package callgraph builds a conservative, cross-package call graph over
// a whole loaded program (see analysis.Program) so that whole-program
// analyzers — today allocfree, the static zero-allocation proof of the
// per-frame hot path — can reason about reachability across package
// boundaries instead of one package at a time.
//
// Construction is purely type-checker driven (no SSA, no pointer
// analysis):
//
//   - Static calls (top-level functions, concrete method calls, generic
//     instantiations) resolve through the shared types.Info to the callee
//     *types.Func; because the Loader type-checks the module as one
//     program, the callee object is the SAME object its defining package
//     declared, so the edge crosses package boundaries for free.
//   - Interface method calls are a sound over-approximation within the
//     program: the site gets one edge to every method of every named type
//     declared in the program that implements the interface (value or
//     pointer receiver). Implementations living outside the loaded
//     program (e.g. a stdlib type satisfying a module interface) are
//     invisible — the documented soundness caveat.
//   - Func-value calls (calls through variables, fields, parameters or
//     results of func type) get over-approximated edges to every program
//     function with an identical receiver-stripped signature. That set is
//     often uselessly wide, which is what //slj:dyncall narrowing is for.
//   - A //slj:dyncall <target>[,<target>...] annotation on (or directly
//     above) a dynamic call site REPLACES the over-approximation with
//     edges to exactly the named targets; targets match by suffix of the
//     callee's full name ("skelgraph.Build", "(*Graph).Prune", "Build").
//
// Calls to functions whose bodies the program does not contain (GOROOT
// packages, assembly) land on External nodes, so analyzers can tell
// "analyzed and clean" apart from "not analyzable".
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Kind classifies one call edge.
type Kind int

// Edge kinds.
const (
	// Static is a direct call whose callee the type checker resolved.
	Static Kind = iota
	// Interface is one over-approximated edge from an interface method
	// call site to a program method implementing it.
	Interface
	// FuncValue is one over-approximated edge from a call through a func
	// value to a signature-identical program function.
	FuncValue
	// Narrowed is an edge a //slj:dyncall annotation declared explicitly,
	// replacing the site's over-approximation.
	Narrowed
)

func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "interface"
	case FuncValue:
		return "funcvalue"
	case Narrowed:
		return "narrowed"
	}
	return "unknown"
}

// Node is one function in the graph.
type Node struct {
	// Func is the declared (origin) function object.
	Func *types.Func
	// Decl is the function's declaration; nil for External nodes.
	Decl *ast.FuncDecl
	// Pkg is the program package declaring the function; nil for
	// External nodes.
	Pkg *analysis.Package
	// Out and In are the node's call edges.
	Out []*Edge
	In  []*Edge
}

// External reports whether the function's body is outside the analyzed
// program (stdlib, assembly).
func (n *Node) External() bool { return n.Decl == nil }

// Name returns the function's full name, e.g.
// "repro/internal/skelgraph.Build" or "(*repro/internal/skelgraph.Graph).Prune".
func (n *Node) Name() string { return n.Func.FullName() }

// Edge is one call: Caller invokes Callee at Site.
type Edge struct {
	Caller *Node
	Callee *Node
	// Site is the call expression (nil only for synthetic edges).
	Site *ast.CallExpr
	Kind Kind
}

// DynSite is one dynamic (interface or func-value) call site, recorded
// so analyzers can enforce their own policy on unresolved dispatch.
type DynSite struct {
	Caller *Node
	Call   *ast.CallExpr
	// Kind is Interface or FuncValue.
	Kind Kind
	// Narrowed is true when a //slj:dyncall annotation replaced the
	// over-approximation; Unmatched lists annotation targets that matched
	// no program function (an annotation bug worth surfacing).
	Narrowed  bool
	Unmatched []string
}

// Graph is the program call graph.
type Graph struct {
	Prog  *analysis.Program
	nodes map[*types.Func]*Node
	// Sites lists every dynamic call site in the program.
	Sites []*DynSite
	// BySite indexes edges by their call expression; SiteDyn indexes the
	// dynamic-site record, when the call is one.
	BySite  map[*ast.CallExpr][]*Edge
	SiteDyn map[*ast.CallExpr]*DynSite
}

// Build constructs the call graph for prog. annot reports //slj:
// annotations covering a position — pass (*analysis.Pass).Annotation;
// a nil annot disables //slj:dyncall narrowing.
func Build(prog *analysis.Program, annot func(pos token.Pos, name string) (string, bool)) *Graph {
	g := &Graph{
		Prog:    prog,
		nodes:   map[*types.Func]*Node{},
		BySite:  map[*ast.CallExpr][]*Edge{},
		SiteDyn: map[*ast.CallExpr]*DynSite{},
	}

	// Pass 1: one node per declared function/method.
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Syntax {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := prog.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[origin(obj)] = &Node{Func: origin(obj), Decl: fd, Pkg: pkg}
			}
		}
	}

	// Pass 2: edges from every call expression in every body.
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Syntax {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := prog.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				caller := g.nodes[origin(obj)]
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					g.addCall(caller, call, annot)
					return true
				})
			}
		}
	}
	return g
}

// origin maps an instantiated generic function/method back to its
// declared object, which is what Defs holds.
func origin(f *types.Func) *types.Func { return f.Origin() }

// addCall classifies one call site and appends its edges.
func (g *Graph) addCall(caller *Node, call *ast.CallExpr, annot func(token.Pos, string) (string, bool)) {
	info := g.Prog.Info
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit generic instantiation: f[T](...) / f[T1, T2](...).
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		if _, isFunc := info.TypeOf(idx.X).(*types.Signature); isFunc {
			fun = ast.Unparen(idx.X)
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}

	switch fn := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fn].(type) {
		case *types.Func:
			g.edge(caller, origin(obj), call, Static)
		case *types.Builtin, *types.TypeName, nil:
			// Builtins and conversions are not calls in the graph sense.
		default:
			// A variable of func type: dynamic.
			g.dynamic(caller, call, FuncValue, annot)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok && sel.Kind() == types.MethodVal {
			mf := origin(sel.Obj().(*types.Func))
			if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
				g.interfaceCall(caller, call, sel.Recv(), mf, annot)
				return
			}
			g.edge(caller, mf, call, Static)
			return
		}
		// Package-qualified name or struct field of func type.
		switch obj := info.Uses[fn.Sel].(type) {
		case *types.Func:
			g.edge(caller, origin(obj), call, Static)
		case *types.TypeName, *types.Builtin, nil:
			// Conversion.
		default:
			g.dynamic(caller, call, FuncValue, annot)
		}
	case *ast.FuncLit:
		// Immediately invoked literal: its body already belongs to the
		// enclosing function's AST walk — no edge needed.
	default:
		if _, isSig := info.TypeOf(call.Fun).(*types.Signature); isSig {
			g.dynamic(caller, call, FuncValue, annot)
		}
		// Anything else (conversion via parenthesised type, etc.): skip.
	}
}

// edge appends one resolved edge, creating an External node when the
// callee has no body in the program.
func (g *Graph) edge(caller *Node, callee *types.Func, site *ast.CallExpr, kind Kind) {
	cn, ok := g.nodes[callee]
	if !ok {
		cn = &Node{Func: callee}
		g.nodes[callee] = cn
	}
	e := &Edge{Caller: caller, Callee: cn, Site: site, Kind: kind}
	caller.Out = append(caller.Out, e)
	cn.In = append(cn.In, e)
	if site != nil {
		g.BySite[site] = append(g.BySite[site], e)
	}
}

// interfaceCall over-approximates an interface method call: one edge to
// every program method implementing the interface, unless //slj:dyncall
// narrows the site.
func (g *Graph) interfaceCall(caller *Node, call *ast.CallExpr, recv types.Type, mf *types.Func, annot func(token.Pos, string) (string, bool)) {
	if g.narrow(caller, call, Interface, annot) {
		return
	}
	site := &DynSite{Caller: caller, Call: call, Kind: Interface}
	g.Sites = append(g.Sites, site)
	g.SiteDyn[call] = site

	iface, _ := recv.Underlying().(*types.Interface)
	if iface == nil {
		return
	}
	name := mf.Name()
	for _, pkg := range g.Prog.Packages {
		scope := pkg.Types.Scope()
		for _, tn := range scope.Names() {
			obj, ok := scope.Lookup(tn).(*types.TypeName)
			if !ok || obj.IsAlias() {
				continue
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			m, _, _ := types.LookupFieldOrMethod(ptr, true, pkg.Types, name)
			fn, ok := m.(*types.Func)
			if !ok {
				continue
			}
			g.edge(caller, origin(fn), call, Interface)
		}
	}
}

// dynamic records a func-value call site and its signature-identical
// over-approximation, unless //slj:dyncall narrows it.
func (g *Graph) dynamic(caller *Node, call *ast.CallExpr, kind Kind, annot func(token.Pos, string) (string, bool)) {
	if g.narrow(caller, call, kind, annot) {
		return
	}
	site := &DynSite{Caller: caller, Call: call, Kind: kind}
	g.Sites = append(g.Sites, site)
	g.SiteDyn[call] = site

	sig, _ := g.Prog.Info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	for _, n := range g.nodes {
		if n.External() {
			continue
		}
		nsig, ok := n.Func.Type().(*types.Signature)
		if !ok || !sameSignature(sig, nsig) {
			continue
		}
		g.edge(caller, n.Func, call, FuncValue)
	}
}

// narrow applies a //slj:dyncall annotation covering the call site. It
// returns true when an annotation was present (edges were added for each
// named target; unmatched targets are recorded on the DynSite).
func (g *Graph) narrow(caller *Node, call *ast.CallExpr, kind Kind, annot func(token.Pos, string) (string, bool)) bool {
	if annot == nil {
		return false
	}
	arg, ok := annot(call.Pos(), "dyncall")
	if !ok {
		return false
	}
	site := &DynSite{Caller: caller, Call: call, Kind: kind, Narrowed: true}
	g.Sites = append(g.Sites, site)
	g.SiteDyn[call] = site
	for _, target := range strings.FieldsFunc(arg, func(r rune) bool { return r == ',' || r == ' ' }) {
		matched := false
		for _, n := range g.FuncsNamed(target) {
			g.edge(caller, n.Func, call, Narrowed)
			matched = true
		}
		if !matched {
			site.Unmatched = append(site.Unmatched, target)
		}
	}
	return true
}

// sameSignature compares receiver-stripped signatures.
func sameSignature(a, b *types.Signature) bool {
	return a.Variadic() == b.Variadic() &&
		types.Identical(a.Params(), b.Params()) &&
		types.Identical(a.Results(), b.Results())
}

// Node returns the graph node for f (or its generic origin), or nil.
func (g *Graph) Node(f *types.Func) *Node {
	if f == nil {
		return nil
	}
	return g.nodes[origin(f)]
}

// Nodes returns every node sorted by full name (externals included).
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// FuncsNamed returns program nodes matching target under any of the
// accepted spellings: the full name, the bare function name, and — for
// methods — "Type.Method", "(Type).Method", "(*Type).Method", each
// optionally prefixed with the declaring package's base name
// ("skelgraph.Build", "skelgraph.(*Graph).Prune").
func (g *Graph) FuncsNamed(target string) []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if n.External() {
			continue
		}
		for _, alias := range nodeAliases(n) {
			if alias == target {
				out = append(out, n)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// nodeAliases lists the spellings FuncsNamed accepts for one node.
func nodeAliases(n *Node) []string {
	f := n.Func
	aliases := []string{f.FullName(), f.Name()}
	pkgBase := ""
	if f.Pkg() != nil {
		pkgBase = pathBase(f.Pkg().Path())
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		if pkgBase != "" {
			aliases = append(aliases, pkgBase+"."+f.Name())
		}
		return aliases
	}
	t := sig.Recv().Type()
	star := ""
	if p, ok := t.(*types.Pointer); ok {
		t, star = p.Elem(), "*"
	}
	named, ok := t.(*types.Named)
	if !ok {
		return aliases
	}
	tn := named.Obj().Name()
	forms := []string{
		tn + "." + f.Name(),
		"(" + star + tn + ")." + f.Name(),
	}
	for _, form := range forms {
		aliases = append(aliases, form)
		if pkgBase != "" {
			aliases = append(aliases, pkgBase+"."+form)
		}
	}
	return aliases
}

// pathBase is path.Base for import paths (always slash-separated).
func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// Reachable walks the graph from roots following edges follow admits
// (nil admits every edge) and returns the visited set, roots included.
func (g *Graph) Reachable(roots []*Node, follow func(*Edge) bool) map[*Node]bool {
	seen := map[*Node]bool{}
	var queue []*Node
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if follow != nil && !follow(e) {
				continue
			}
			if !seen[e.Callee] {
				seen[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}
	return seen
}

// Parents runs a breadth-first search from roots (following edges follow
// admits) and returns each visited node's discovering edge — nil for the
// roots themselves. Chain() turns the result into printable root→sink
// paths. BFS order is made deterministic by visiting each node's out
// edges in source order and the roots in the given order.
func (g *Graph) Parents(roots []*Node, follow func(*Edge) bool) map[*Node]*Edge {
	parents := map[*Node]*Edge{}
	var queue []*Node
	for _, r := range roots {
		if r == nil {
			continue
		}
		if _, ok := parents[r]; !ok {
			parents[r] = nil
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if follow != nil && !follow(e) {
				continue
			}
			if _, ok := parents[e.Callee]; !ok {
				parents[e.Callee] = e
				queue = append(queue, e.Callee)
			}
		}
	}
	return parents
}

// Chain returns the shortest discovered root→…→n call chain of full
// function names, using a Parents result. Returns nil when n was not
// reached.
func Chain(parents map[*Node]*Edge, n *Node) []string {
	if _, ok := parents[n]; !ok {
		return nil
	}
	var rev []string
	for cur := n; ; {
		rev = append(rev, cur.Name())
		e := parents[cur]
		if e == nil {
			break
		}
		cur = e.Caller
	}
	out := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}
