// Package metricnames guards the observability naming contract: every
// metric registered on an obs.Registry — via Counter, Gauge, Histogram,
// or RegisterFunc with a literal name — must be lowercase dot-case
// ("pipeline.frames", "stage.thin.ns", "parallel.stall_ns"), and each
// literal name must be registered from exactly one call site per
// package. The Prometheus exposition, the sampler's derived series, the
// run report, and the sljtop dashboard all key on these names; a
// one-off "Frames_Total" or a second registration site silently forks
// the timeline.
//
// Names built by concatenation (e.g. "stage."+st.String()+".ns") are
// outside the analyzer's reach and are skipped. `//slj:metric-ok` on
// the offending line (or the line above) records that a nonconforming
// or duplicated name is intentional.
package metricnames

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"

	"repro/internal/analysis"
)

// Annotation is the suppression annotation honoured by this analyzer.
const Annotation = "metric-ok"

// Analyzer enforces lowercase dot-case metric names with one
// registration site each.
var Analyzer = &analysis.Analyzer{
	Name: "metricnames",
	Doc:  "check that obs.Registry metric names are lowercase dot-case and registered from a single call site",
	Run:  run,
}

// registryMethods maps the Registry registration methods to the metric
// kind they create.
var registryMethods = map[string]string{
	"Counter":      "counter",
	"Gauge":        "gauge",
	"Histogram":    "histogram",
	"RegisterFunc": "func",
}

// nameRE is the naming contract: dot-separated segments of
// [a-z0-9_], the first starting with a letter.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$`)

// Site is one metric registration call.
type Site struct {
	// Name is the metric name: the literal value, or the source
	// expression when the name is built dynamically.
	Name string
	// Kind is counter, gauge, histogram, or func.
	Kind string
	// Pos locates the call.
	Pos token.Position
	// Literal reports whether Name came from a string literal (only
	// literal names are validated and deduplicated).
	Literal bool
	pos     token.Pos
}

func run(pass *analysis.Pass) error {
	firstAt := map[string]token.Position{}
	for _, site := range collect(pass) {
		if !site.Literal {
			continue
		}
		if !nameRE.MatchString(site.Name) && !pass.Annotated(site.pos, Annotation) {
			pass.Reportf(site.pos, "metric name %q is not lowercase dot-case (want e.g. %q); rename it or annotate //slj:metric-ok", site.Name, "pipeline.frames")
		}
		if prev, dup := firstAt[site.Name]; dup {
			if !pass.Annotated(site.pos, Annotation) {
				pass.Reportf(site.pos, "metric %q is already registered at %s; a metric must have exactly one registration site, hoist it or annotate //slj:metric-ok", site.Name, prev)
			}
			continue
		}
		firstAt[site.Name] = site.Pos
	}
	return nil
}

// collect walks the package and returns every Registry registration
// call in source order.
func collect(pass *analysis.Pass) []Site {
	var sites []Site
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := pass.CalleeFunc(call)
			if fn == nil {
				return true
			}
			kind, ok := registryMethods[fn.Name()]
			if !ok || !receiverIsRegistry(fn) {
				return true
			}
			site := Site{Kind: kind, Pos: pass.Fset.Position(call.Pos()), pos: call.Pos()}
			arg := ast.Unparen(call.Args[0])
			if lit, ok := arg.(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if name, err := strconv.Unquote(lit.Value); err == nil {
					site.Name, site.Literal = name, true
				}
			}
			if !site.Literal {
				site.Name = types.ExprString(call.Args[0])
			}
			sites = append(sites, site)
			return true
		})
	}
	return sites
}

// receiverIsRegistry reports whether fn is a method on a type named
// Registry (pointer or value receiver). Matching by type name rather
// than by package path keeps the analyzer testable against fixture
// packages that declare their own Registry.
func receiverIsRegistry(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// Inventory extracts every registration site across pkgs, sorted by
// name then position — the source of truth for the metrics reference
// table (sljcheck -metric-inventory).
func Inventory(pkgs []*analysis.Package) []Site {
	var sites []Site
	for _, pkg := range pkgs {
		pass := &analysis.Pass{
			Analyzer: Analyzer,
			Fset:     pkg.Fset,
			Files:    pkg.Syntax,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		sites = append(sites, collect(pass)...)
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].Name != sites[j].Name {
			return sites[i].Name < sites[j].Name
		}
		return sites[i].Pos.Filename < sites[j].Pos.Filename ||
			(sites[i].Pos.Filename == sites[j].Pos.Filename && sites[i].Pos.Line < sites[j].Pos.Line)
	})
	return sites
}
