package metricnames

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/atest"
)

func TestMetricNames(t *testing.T) {
	atest.Run(t, "testdata", "metricnames", Analyzer)
}

func TestNameRE(t *testing.T) {
	valid := []string{
		"pipeline.frames", "stage.thin.ns", "parallel.stall_ns",
		"imaging.pool.double_puts", "pipeline.decided.stage3", "frames",
	}
	for _, name := range valid {
		if !nameRE.MatchString(name) {
			t.Errorf("nameRE rejects valid name %q", name)
		}
	}
	invalid := []string{
		"", "Pipeline.frames", "pipeline..frames", ".frames", "frames.",
		"9pipeline", "pipeline frames", "pipeline-frames", "pipeline.frames ",
	}
	for _, name := range invalid {
		if nameRE.MatchString(name) {
			t.Errorf("nameRE accepts invalid name %q", name)
		}
	}
}

// TestInventory runs the inventory over the fixture package and checks
// sorting, kinds, and dynamic-name capture.
func TestInventory(t *testing.T) {
	loader, err := analysis.NewLoader("testdata")
	if err != nil {
		t.Fatal(err)
	}
	loader.ExtraRoots = []string{"testdata/src"}
	pkg, err := loader.LoadTarget("metricnames", "testdata/src/metricnames")
	if err != nil {
		t.Fatal(err)
	}
	sites := Inventory([]*analysis.Package{pkg})
	if len(sites) == 0 {
		t.Fatal("inventory is empty")
	}
	for i := 1; i < len(sites); i++ {
		if sites[i-1].Name > sites[i].Name {
			t.Errorf("inventory not sorted: %q before %q", sites[i-1].Name, sites[i].Name)
		}
	}
	byName := map[string]Site{}
	dynamics := 0
	for _, s := range sites {
		if s.Literal {
			byName[s.Name] = s
		} else {
			dynamics++
			if !strings.Contains(s.Name, "dyn()") {
				t.Errorf("dynamic site name = %q, want the source expression", s.Name)
			}
		}
	}
	if got := byName["pipeline.frames"]; got.Kind != "counter" {
		t.Errorf("pipeline.frames kind = %q, want counter", got.Kind)
	}
	if got := byName["stage.thin.ns"]; got.Kind != "histogram" {
		t.Errorf("stage.thin.ns kind = %q, want histogram", got.Kind)
	}
	if got := byName["parallel.stall_ns"]; got.Kind != "func" {
		t.Errorf("parallel.stall_ns kind = %q, want func", got.Kind)
	}
	// Two dynamic sites: the stage histogram and the computed slo gauge.
	if dynamics != 2 {
		t.Errorf("dynamic sites = %d, want 2", dynamics)
	}
	// The flight recorder's literal families are inventoried too.
	if got := byName["errors.decode"]; got.Kind != "counter" {
		t.Errorf("errors.decode kind = %q, want counter", got.Kind)
	}
	if got := byName["health.state"]; got.Kind != "gauge" {
		t.Errorf("health.state kind = %q, want gauge", got.Kind)
	}
	// notRegistry calls must not leak in.
	if _, ok := byName["NOT.A.METRIC"]; ok {
		t.Error("inventory includes a non-Registry call")
	}
}
