// Package metricnames is the fixture for the metricnames analyzer: a
// local Registry type shaped like obs.Registry, plus registrations that
// exercise the naming and single-site rules.
package metricnames

// Registry mirrors the registration surface of obs.Registry.
type Registry struct{}

func (r *Registry) Counter(name string) int                   { return 0 }
func (r *Registry) Gauge(name string) int                     { return 0 }
func (r *Registry) Histogram(name string, bounds []int64) int { return 0 }
func (r *Registry) RegisterFunc(name string, fn func() int64) {}

// notRegistry has the same method names but a different type name; its
// calls are ignored.
type notRegistry struct{}

func (notRegistry) Counter(name string) int { return 0 }

func dyn() string { return "thin" }

func register(reg *Registry) {
	// Conforming names pass.
	reg.Counter("pipeline.frames")
	reg.Gauge("engine.pool_free")
	reg.Histogram("stage.thin.ns", nil)
	reg.RegisterFunc("parallel.stall_ns", nil)
	reg.Counter("pipeline.decided.stage3")

	// Naming violations.
	reg.Counter("Pipeline.Frames")    // want "not lowercase dot-case"
	reg.Gauge("engine pool free")     // want "not lowercase dot-case"
	reg.Histogram("stage..ns", nil)   // want "not lowercase dot-case"
	reg.RegisterFunc("9leading", nil) // want "not lowercase dot-case"
	reg.Counter("trailing.dot.")      // want "not lowercase dot-case"
	reg.Counter("dash-case.name")     // want "not lowercase dot-case"

	// Second registration of an existing name.
	reg.Counter("pipeline.frames") // want "already registered"

	// Dynamic names are out of reach and skipped.
	reg.Histogram("stage."+dyn()+".ns", nil)

	// Annotated violations are accepted.
	//slj:metric-ok legacy dashboard key, renaming would break saved boards
	reg.Counter("Legacy.Name")
	reg.Gauge("engine.pool_free") //slj:metric-ok re-registered by the fixture on purpose

	// Same method names on another type are not metric registrations.
	var n notRegistry
	n.Counter("NOT.A.METRIC")
}

func registerFlightRecorder(reg *Registry) {
	// The error journal's errors.* counter family registers literally,
	// so it is policed like every other family.
	reg.Counter("errors.decode")
	reg.Counter("errors.degenerate_skeleton")
	reg.Counter("errors.total")
	reg.Counter("errors.bad-class") // want "not lowercase dot-case"
	reg.Counter("errors.decode")    // want "already registered"

	// Health gauges: the verdict registers literally; per-objective
	// slo.<name>.* gauges splice a spec name. The literal spelling
	// conforms, the computed one is out of the analyzer's reach (the
	// spec name grammar is enforced at runtime by SLOSpec.Validate).
	reg.Gauge("health.state")
	reg.Gauge("slo.frame_p99.level")
	reg.Gauge("slo.frame_p99.burn_fast_milli")
	reg.Gauge("slo." + dyn() + ".level")
	reg.Gauge("slo.Frame-P99.level") // want "not lowercase dot-case"
}
