// Package atest runs an analyzer over GOPATH-style fixture packages in
// the manner of golang.org/x/tools/go/analysis/analysistest: fixture
// sources live under <testdata>/src/<pkgpath>, and every line that should
// produce a finding carries a trailing comment of the form
//
//	// want "regexp"
//
// (several quoted regexps may follow one want). The test fails on any
// finding without a matching want and any want without a matching
// finding, so fixtures double as both true-positive and clean-case
// documentation.
package atest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type key struct {
	file string
	line int
}

// Run loads the fixture package pkgPath from testdata/src and checks a's
// findings against the fixture's want comments.
func Run(t *testing.T, testdata, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	RunPackages(t, testdata, []string{pkgPath}, a)
}

// RunPackages is Run over several fixture packages at once, loaded as
// one program — the shape whole-program analyzers (allocfree) need for
// cross-package fixtures. Fixture packages pulled in only as imports of
// the named ones are analyzed too, and may carry their own want
// comments.
func RunPackages(t *testing.T, testdata string, pkgPaths []string, a *analysis.Analyzer) {
	t.Helper()
	loader, err := analysis.NewLoader(testdata)
	if err != nil {
		t.Fatalf("atest: %v", err)
	}
	src, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatalf("atest: %v", err)
	}
	loader.ExtraRoots = []string{src}
	for _, pkgPath := range pkgPaths {
		if _, err := loader.LoadTarget(pkgPath, filepath.Join(src, filepath.FromSlash(pkgPath))); err != nil {
			t.Fatalf("atest: loading fixture %s: %v", pkgPath, err)
		}
	}
	pkgs := loader.FullPackages()

	// Collect expectations from comments across every loaded fixture file.
	wants := map[key][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, q := range quotedRE.FindAllString(m[1], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}

	diags := analysis.Run(pkgs, []*analysis.Analyzer{a})
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		if i := matchWant(wants[k], d.Message); i >= 0 {
			wants[k] = append(wants[k][:i], wants[k][i+1:]...)
			continue
		}
		t.Errorf("%s: unexpected finding: %s", posLabel(d.Pos.Filename, d.Pos.Line), d.Message)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s: no finding matched want %q", posLabel(k.file, k.line), re)
		}
	}
}

func matchWant(res []*regexp.Regexp, msg string) int {
	for i, re := range res {
		if re.MatchString(msg) {
			return i
		}
	}
	return -1
}

func posLabel(file string, line int) string {
	return fmt.Sprintf("%s:%d", filepath.Base(file), line)
}
