package analysis

import (
	"go/ast"
	"go/types"
)

// WalkStack traverses the AST rooted at n, invoking f with each node and
// the full ancestor stack (stack[len(stack)-1] == the node itself). When
// f returns false the node's children are skipped.
func WalkStack(n ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	v := &stackVisitor{f: f}
	ast.Walk(v, n)
}

type stackVisitor struct {
	stack []ast.Node
	f     func(n ast.Node, stack []ast.Node) bool
}

func (v *stackVisitor) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		v.stack = v.stack[:len(v.stack)-1]
		return nil
	}
	v.stack = append(v.stack, n)
	if !v.f(n, v.stack) {
		// Children are skipped, so ast.Walk will not deliver the closing
		// Visit(nil); pop eagerly.
		v.stack = v.stack[:len(v.stack)-1]
		return nil
	}
	return v
}

// CalleeFunc resolves the called function object of call, looking through
// package qualifiers and method selectors. Returns nil for builtins,
// function-typed variables, and type conversions.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

// CalleeName returns the bare name of whatever call invokes (function,
// method, builtin, or conversion), or "".
func (p *Pass) CalleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// Within reports whether pos lies inside node's source range.
func Within(pos ast.Node, outer ast.Node) bool {
	return pos.Pos() >= outer.Pos() && pos.Pos() < outer.End()
}

// DeclaredWithin reports whether obj's declaration lies inside node.
func DeclaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}
