// Package syncfix is the syncmisuse fixture: copied locks/pools, racy
// goroutine writes, and the sanctioned index-disjoint patterns.
package syncfix

import "sync"

type guarded struct {
	mu   sync.Mutex
	n    int
	pool sync.Pool
}

// --- lock copies: true positives ------------------------------------

func byValueParam(g guarded) int { // want "parameter copies sync.Mutex by value"
	return g.n
}

func (g guarded) valueMethod() int { // want "receiver copies sync.Mutex by value"
	return g.n
}

func copyAssign(g *guarded) {
	snapshot := *g // want "assignment copies sync.Mutex by value"
	_ = snapshot
}

func poolByValue(p sync.Pool) any { // want "parameter copies sync.Pool by value"
	return p.Get()
}

func rangeCopies(gs []guarded) int {
	n := 0
	for _, g := range gs { // want "range clause copies sync.Mutex by value"
		n += g.n
	}
	return n
}

// --- lock copies: clean ---------------------------------------------

func byPointer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func rangeByIndex(gs []guarded) int {
	n := 0
	for i := range gs {
		n += gs[i].n
	}
	return n
}

func freshValue() {
	var mu sync.Mutex // fresh, never copied
	mu.Lock()
	mu.Unlock()
}

// --- goroutine shared writes: true positives ------------------------

func racyCounter(items []int) int {
	total := 0
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total += it // want "goroutine writes captured variable total"
		}()
	}
	wg.Wait()
	return total
}

func racyIndex(items []int) []int {
	out := make([]int, len(items))
	var wg sync.WaitGroup
	i := 0
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = it * 2 // want "captured index i that is mutated outside the goroutine"
		}()
		i++
	}
	wg.Wait()
	return out
}

func racyMap(items []string) map[string]int {
	out := map[string]int{}
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[it] = len(it) // want "goroutine writes captured map out"
		}()
	}
	wg.Wait()
	return out
}

// --- goroutine shared writes: clean ---------------------------------

// indexDisjoint is the parallel.MapOrdered pattern: every goroutine owns
// the element at its per-iteration loop index.
func indexDisjoint(items []int) []int {
	out := make([]int, len(items))
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = it * 2
		}()
	}
	wg.Wait()
	return out
}

// closureLocalIndex claims indices through a closure-local variable fed
// by an atomic counter, like the worker loop in parallel.MapOrdered.
func closureLocalIndex(items []int) []int {
	out := make([]int, len(items))
	var wg sync.WaitGroup
	next := make(chan int, len(items))
	for i := range items {
		next <- i
	}
	close(next)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = items[i] * 2
			}
		}()
	}
	wg.Wait()
	return out
}

// --- annotated ------------------------------------------------------

// annotatedHandoff writes a captured variable, but the channel close
// publishes it with a happens-before edge the analyzer cannot see.
func annotatedHandoff(f func() error) error {
	done := make(chan struct{})
	var err error
	go func() {
		err = f() //slj:sync-ok published via close(done)
		close(done)
	}()
	<-done
	return err
}
