// Package obsfix exercises the syncmisuse rules around atomic
// instruments: obs counters shared across goroutines through pointer
// method calls are the sanctioned aggregation pattern, while copying an
// instrument by value or assigning captured struct fields is flagged.
package obsfix

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

type workerStats struct {
	hits obs.Counter
	n    int
}

// --- sanctioned: atomic method calls on shared instruments -----------

// sharedCounters is the internal/parallel pattern: every worker bumps
// the same pointer-shared instrument block. Method calls on atomics are
// not assignments, so nothing is flagged.
func sharedCounters(items []int, st *workerStats) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.hits.Inc()
		}()
	}
	wg.Wait()
}

// registryCounters resolves an instrument once and shares it by pointer.
func registryCounters(reg *obs.Registry, items []int) {
	c := reg.Counter("items")
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Add(1)
		}()
	}
	wg.Wait()
}

// --- copies of atomic instruments: flagged ---------------------------

func counterByValue(c obs.Counter) int64 { // want "parameter copies atomic.Int64 by value"
	return c.Value()
}

func statsSnapshot(st *workerStats) {
	snap := *st // want "assignment copies atomic.Int64 by value"
	_ = snap
}

func rawAtomicByValue(v atomic.Int64) int64 { // want "parameter copies atomic.Int64 by value"
	return v.Load()
}

// --- captured field writes: flagged ----------------------------------

func fieldWrite(items []int, st *workerStats) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.n += it // want "goroutine writes field st.n of captured variable"
		}()
	}
	wg.Wait()
}
