package syncmisuse

import (
	"testing"

	"repro/internal/analysis/atest"
)

func TestSyncMisuse(t *testing.T) {
	atest.Run(t, "testdata", "syncfix", Analyzer)
}

func TestObsInstruments(t *testing.T) {
	atest.Run(t, "testdata", "obsfix", Analyzer)
}
