// Package syncmisuse checks the concurrency invariants the engine and
// internal/parallel rely on:
//
//   - no sync primitive (Mutex, RWMutex, WaitGroup, Once, Cond, Pool,
//     Map) or sync/atomic value type (Int64, Pointer[T], Value, ...) is
//     copied by value — through parameters, receivers, plain
//     assignments, or range clauses. A copied sync.Pool silently splits
//     the pool; a copied Mutex silently stops excluding; a copied
//     atomic counter silently forks its count. This covers the
//     internal/obs instruments (Counter, Gauge, Histogram), which embed
//     atomics and must be shared by pointer.
//   - goroutine closures do not write shared state unsynchronised: a
//     `go func(){...}` body may not assign to captured variables or
//     their fields, may not write captured maps, and may only write
//     captured slices through an index that is provably disjoint per
//     goroutine (the index is closure-local, or a per-iteration loop
//     variable that is never mutated outside the closure — the
//     out[i] = r pattern used by parallel.MapOrdered). Bumping a shared
//     obs instrument (st.Items.Inc(), counter.Add(n)) is the sanctioned
//     way to aggregate across workers: it is a method call on an atomic,
//     not an assignment, so it never trips these checks.
//
// `//slj:sync-ok` on the flagged line (or the line above) suppresses a
// finding whose safety is established by some protocol the analyzer
// cannot see (e.g. a happens-before edge through a channel close).
//
// The goroutine checks are intraprocedural and syntactic: writes behind
// helper closures or mutex-guarded sections in callees are out of scope
// and remain the race detector's job (`make race` / `make test-race`).
package syncmisuse

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Annotation is the suppression annotation honoured by this analyzer.
const Annotation = "sync-ok"

// Analyzer flags copied sync primitives and unsynchronised shared writes
// in goroutine closures.
var Analyzer = &analysis.Analyzer{
	Name: "syncmisuse",
	Doc:  "check lock/pool copy-by-value and goroutine shared-write discipline",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, n.Recv, n.Type)
				if n.Body != nil {
					checkGoroutines(pass, n.Body)
				}
			case *ast.FuncLit:
				checkSignature(pass, nil, n.Type)
			case *ast.AssignStmt:
				checkAssignCopies(pass, n)
			case *ast.RangeStmt:
				checkRangeCopies(pass, n)
			}
			return true
		})
	}
	return nil
}

// lockName returns the sync or sync/atomic primitive type contained
// (transitively, by value) in t, or "".
func lockName(t types.Type) string {
	return lockNameRec(t, map[types.Type]bool{})
}

func lockNameRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return "sync." + obj.Name()
			}
		}
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			switch obj.Name() {
			case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
				return "atomic." + obj.Name()
			}
		}
		return lockNameRec(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if name := lockNameRec(t.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockNameRec(t.Elem(), seen)
	}
	return ""
}

// checkSignature flags by-value receivers and parameters whose type
// contains a sync primitive.
func checkSignature(pass *analysis.Pass, recv *ast.FieldList, ftype *ast.FuncType) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			name := lockName(t)
			if name == "" || pass.Annotated(field.Pos(), Annotation) {
				continue
			}
			pass.Reportf(field.Pos(), "%s copies %s by value; pass a pointer instead", kind, name)
		}
	}
	check(recv, "receiver")
	check(ftype.Params, "parameter")
}

// checkAssignCopies flags x := y / x = y where y's type carries a sync
// primitive by value. Fresh values (composite literals, function calls)
// are fine; copies of existing storage are not.
func checkAssignCopies(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		// A copy discarded into the blank identifier is harmless.
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		switch ast.Unparen(rhs).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			continue
		}
		t := pass.TypeOf(rhs)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if name := lockName(t); name != "" && !pass.Annotated(as.Pos(), Annotation) {
			pass.Reportf(as.Pos(), "assignment copies %s by value", name)
		}
	}
}

// checkRangeCopies flags `for _, x := range xs` where the element copy
// carries a sync primitive.
func checkRangeCopies(pass *analysis.Pass, rng *ast.RangeStmt) {
	for _, v := range []ast.Expr{rng.Key, rng.Value} {
		id, ok := v.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		t := pass.TypeOf(id)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if name := lockName(t); name != "" && !pass.Annotated(rng.Pos(), Annotation) {
			pass.Reportf(id.Pos(), "range clause copies %s by value; iterate by index instead", name)
		}
	}
}

// checkGoroutines inspects every `go func(){...}` launched in the
// function body for unsynchronised writes to captured state.
func checkGoroutines(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		checkGoLit(pass, body, lit)
		return true
	})
}

func checkGoLit(pass *analysis.Pass, fnBody *ast.BlockStmt, lit *ast.FuncLit) {
	captured := func(id *ast.Ident) types.Object {
		obj, ok := pass.ObjectOf(id).(*types.Var)
		if !ok || obj.IsField() || analysis.DeclaredWithin(obj, lit) {
			return nil
		}
		return obj
	}
	writeTarget := func(e ast.Expr) {
		switch lhs := ast.Unparen(e).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				return
			}
			if obj := captured(lhs); obj != nil && !pass.Annotated(lhs.Pos(), Annotation) {
				pass.Reportf(lhs.Pos(), "goroutine writes captured variable %s without synchronization; use a channel, a mutex, or index-disjoint slice writes", obj.Name())
			}
		case *ast.IndexExpr:
			base, ok := ast.Unparen(lhs.X).(*ast.Ident)
			if !ok {
				return
			}
			obj := captured(base)
			if obj == nil {
				return
			}
			if _, isMap := pass.TypeOf(lhs.X).Underlying().(*types.Map); isMap {
				if !pass.Annotated(lhs.Pos(), Annotation) {
					pass.Reportf(lhs.Pos(), "goroutine writes captured map %s; concurrent map writes are fatal — guard it or use per-goroutine maps", obj.Name())
				}
				return
			}
			checkIndexDisjoint(pass, fnBody, lit, lhs, obj)
		case *ast.SelectorExpr:
			// x.f = v on a captured x is a shared write racing with every
			// other worker. Aggregating through an atomic instrument
			// instead (x.f.Add(n) on an obs.Counter) is a method call,
			// not an assignment, and sails through.
			base := ast.Unparen(lhs.X)
			for {
				sel, ok := base.(*ast.SelectorExpr)
				if !ok {
					break
				}
				base = ast.Unparen(sel.X)
			}
			id, ok := base.(*ast.Ident)
			if !ok {
				return
			}
			if obj := captured(id); obj != nil && !pass.Annotated(lhs.Pos(), Annotation) {
				pass.Reportf(lhs.Pos(), "goroutine writes field %s.%s of captured variable without synchronization; use a channel, a mutex, or an atomic instrument (internal/obs)", obj.Name(), lhs.Sel.Name)
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested closure is not (yet) a goroutine body
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				writeTarget(l)
			}
		case *ast.IncDecStmt:
			writeTarget(n.X)
		}
		return true
	})
}

// checkIndexDisjoint verifies the out[i] = v idiom: a goroutine may
// write a captured slice only through indices other goroutines cannot
// also claim. The index is safe when every variable it mentions is
// closure-local or is a loop variable never mutated outside the closure
// (per-iteration loop variables are distinct per goroutine since Go
// 1.22).
func checkIndexDisjoint(pass *analysis.Pass, fnBody *ast.BlockStmt, lit *ast.FuncLit, idx *ast.IndexExpr, sliceObj types.Object) {
	ast.Inspect(idx.Index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.ObjectOf(id).(*types.Var)
		if !ok || obj.IsField() || analysis.DeclaredWithin(obj, lit) {
			return true
		}
		if !mutatedOutside(pass, fnBody, lit, obj) {
			return true
		}
		if pass.Annotated(idx.Pos(), Annotation) {
			return true
		}
		pass.Reportf(idx.Pos(), "goroutine writes %s[...] with captured index %s that is mutated outside the goroutine — writes are not index-disjoint", sliceObj.Name(), obj.Name())
		return true
	})
}

// mutatedOutside reports whether obj is written in the function outside
// lit, not counting its declaration or the clauses of a loop that
// declares it (those produce per-iteration copies in Go >= 1.22).
func mutatedOutside(pass *analysis.Pass, fnBody *ast.BlockStmt, lit *ast.FuncLit, obj types.Object) bool {
	found := false
	analysis.WalkStack(fnBody, func(n ast.Node, stack []ast.Node) bool {
		if found || n == lit {
			return false
		}
		isLoopClause := func() bool {
			if len(stack) < 2 {
				return false
			}
			loop, ok := stack[len(stack)-2].(*ast.ForStmt)
			return ok && (loop.Init == n || loop.Post == n) && analysis.DeclaredWithin(obj, loop)
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true // declaration, not mutation
			}
			for _, l := range n.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok && pass.ObjectOf(id) == obj && !isLoopClause() {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.ObjectOf(id) == obj && !isLoopClause() {
				found = true
			}
		case *ast.RangeStmt:
			// `for i = range xs` (no :=) re-binds an outer variable every
			// iteration: a mutation.
			if n.Tok == token.ASSIGN {
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
