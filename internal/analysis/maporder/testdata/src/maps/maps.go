// Package maps is the maporder fixture: map ranges feeding writers,
// encoders, and collected slices, in flagged, clean, and annotated
// variants.
package maps

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// --- true positives -------------------------------------------------

func writeEntries(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "Fprintf emits bytes in map iteration order"
	}
}

func collectKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "keys accumulates entries in map iteration order"
	}
	return keys
}

func buildString(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "WriteString emits bytes in map iteration order"
	}
	return b.String()
}

type result struct {
	Rows []string
}

func collectField(m map[string]int, r *result) {
	for k := range m {
		r.Rows = append(r.Rows, k) // want "r.Rows accumulates entries in map iteration order"
	}
}

func printKeys(m map[string]bool) {
	for k := range m {
		fmt.Println(k) // want "Println emits bytes in map iteration order"
	}
}

// --- clean ----------------------------------------------------------

// collectSortedKeys is the collect-then-sort idiom of experiments.Names
// and dbn's model writer: the append is order-blind because the slice is
// sorted before anyone sees it.
func collectSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sumValues only feeds commutative reductions; nothing ordered leaves
// the loop.
func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// perIterationBuffer writes into a builder declared inside the loop
// body, so each iteration's bytes are independent of iteration order.
func perIterationBuffer(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		var b strings.Builder
		fmt.Fprintf(&b, "%s=%d", k, v)
		out[k] = b.String()
	}
	return out
}

// invertMap writes a map keyed by loop values; map writes commute.
func invertMap(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// --- annotated ------------------------------------------------------

// annotatedDebugDump intentionally prints in arbitrary order (debug
// output only); the annotation records that decision.
func annotatedDebugDump(w io.Writer, m map[string]int) {
	//slj:map-ordered debug-only dump, order is irrelevant
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// annotatedAppend collects into a slice whose order is rehashed by the
// consumer; the annotation sits on the append itself.
func annotatedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //slj:map-ordered consumer treats this as a set
	}
	return keys
}
