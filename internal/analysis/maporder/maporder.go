// Package maporder guards the pipeline's determinism contract: map
// iteration order must never reach bytes that leave the process or data
// that crosses a function boundary. Model format v2 (internal/dbn) and
// the parallel-vs-sequential golden tests both depend on identical
// inputs producing identical bytes, and `for k := range m` is the one
// construct in the codebase that silently breaks that.
//
// Inside the body of a `range` over a map the analyzer flags:
//
//   - calls that emit bytes in iteration order — Fprint*/Print*/Write*/
//     Encode*/Marshal*/Sum*/Hash* — unless the destination (receiver or
//     writer argument) is itself declared inside the loop body, in which
//     case each iteration formats independently and order cannot leak;
//   - appends to a slice declared outside the loop, unless the slice is
//     passed to a sort.*/slices.* call after the loop (the
//     collect-then-sort idiom used by dbn.Save and experiments.Names).
//
// `//slj:map-ordered` on the offending line (or the line above) records
// that ordering was considered and is harmless — e.g. the loop feeds a
// commutative reduction this analyzer cannot prove.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Annotation is the suppression annotation honoured by this analyzer.
const Annotation = "map-ordered"

// Analyzer flags map iteration order leaking into serialized output.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "check that map iteration order cannot reach encoders, writers, hashes, or unsorted collected slices",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if pass.Annotated(rng.Pos(), Annotation) {
			return false
		}
		checkMapRange(pass, body, rng)
		return true // nested ranges are checked independently
	})
}

// appendSite is one `s = append(s, ...)` inside a map range whose target
// is declared outside the loop.
type appendSite struct {
	pos    ast.Node
	target string // types.ExprString of the appended slice
}

func checkMapRange(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	var appends []appendSite
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkSinkCall(pass, rng, n)
		case *ast.AssignStmt:
			if site, ok := appendToOuter(pass, rng, n); ok {
				appends = append(appends, site)
			}
		}
		return true
	})
	for _, site := range appends {
		if sortedAfter(pass, fnBody, rng, site.target) {
			continue
		}
		if pass.Annotated(site.pos.Pos(), Annotation) {
			continue
		}
		pass.Reportf(site.pos.Pos(), "%s accumulates entries in map iteration order and is never sorted afterwards; sort it after the loop or annotate //slj:map-ordered", site.target)
	}
}

// checkSinkCall flags emit-in-order calls inside the range body.
func checkSinkCall(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	name := pass.CalleeName(call)
	if !sinkName(name) {
		return
	}
	// Find where the bytes go: the receiver for methods, the writer
	// argument for the Fprint family, stdout for the Print family.
	var dest ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isPkg := pass.ObjectOf(rootIdent(sel.X)).(*types.PkgName); isPkg {
			switch {
			case strings.HasPrefix(name, "Fprint") && len(call.Args) > 0:
				dest = call.Args[0]
			case strings.HasPrefix(name, "Print"):
				dest = nil // stdout: always a sink
			case len(call.Args) > 0:
				dest = call.Args[0] // e.g. binary.Write(w, ...), gob.NewEncoder(w)
			}
		} else {
			dest = sel.X // method receiver
		}
	}
	if dest != nil {
		if obj := pass.ObjectOf(rootIdent(dest)); analysis.DeclaredWithin(obj, rng.Body) {
			return // per-iteration destination; order cannot leak out
		}
	}
	if pass.Annotated(call.Pos(), Annotation) {
		return
	}
	pass.Reportf(call.Pos(), "%s emits bytes in map iteration order, which is nondeterministic; iterate over sorted keys or annotate //slj:map-ordered", name)
}

// appendToOuter matches `s = append(s, ...)` where s is declared outside
// the range statement.
func appendToOuter(pass *analysis.Pass, rng *ast.RangeStmt, as *ast.AssignStmt) (appendSite, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return appendSite{}, false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return appendSite{}, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return appendSite{}, false
	}
	if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return appendSite{}, false
	}
	switch lhs := as.Lhs[0].(type) {
	case *ast.Ident:
		obj := pass.ObjectOf(lhs)
		if obj == nil || analysis.DeclaredWithin(obj, rng) {
			return appendSite{}, false
		}
	case *ast.SelectorExpr, *ast.IndexExpr:
		// Fields and elements are storage that outlives the loop.
	default:
		return appendSite{}, false
	}
	return appendSite{pos: as, target: types.ExprString(as.Lhs[0])}, true
}

// sortedAfter reports whether target is handed to a sort.*/slices.* call
// in the function after the range loop ends.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, target string) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			a := ast.Unparen(arg)
			if u, ok := a.(*ast.UnaryExpr); ok {
				a = ast.Unparen(u.X)
			}
			if types.ExprString(a) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// sinkName matches functions and methods that emit bytes or accumulate
// hashes in call order.
func sinkName(name string) bool {
	for _, prefix := range []string{"Fprint", "Print", "Write", "Encode", "Marshal", "Sum", "Hash"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// rootIdent strips selectors, indexing, derefs, and parens down to the
// base identifier, or returns nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}
