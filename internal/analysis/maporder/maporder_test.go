package maporder

import (
	"testing"

	"repro/internal/analysis/atest"
)

func TestMapOrder(t *testing.T) {
	atest.Run(t, "testdata", "maps", Analyzer)
}
