package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully loaded, type-checked target package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Syntax  []*ast.File
	Types   *types.Package
	// Info is the loader's SHARED types.Info: every fully loaded package
	// of one Loader records its resolutions into the same maps, so
	// cross-package analyzers (callgraph, allocfree) can follow a
	// types.Object from a call site in one package to its declaration in
	// another with plain map lookups and pointer identity.
	Info *types.Info
}

// Loader parses and type-checks packages from source with no tooling
// beyond the standard library. Imports resolve in order against
// ExtraRoots (GOPATH-style src trees, used by test fixtures), the
// enclosing module, then GOROOT/src (with the GOROOT vendor fallback).
//
// The whole module is checked as ONE program: module-local (and
// extra-root) packages are always fully type-checked — function bodies
// included — into a single shared types.Info, whether they are named as
// targets or merely imported by one, and each such package is checked
// exactly once no matter how many import paths reach it. Only GOROOT
// dependencies are checked shallowly (IgnoreFuncBodies), since the
// analyzers never traverse into the standard library.
type Loader struct {
	Fset *token.FileSet
	// ModulePath/ModuleDir anchor module-local import resolution
	// (e.g. "repro" → the repo root). Resolved by NewLoader.
	ModulePath string
	ModuleDir  string
	// ExtraRoots are GOPATH-style source roots searched before the module
	// and GOROOT; import path "a/b" resolves to <root>/a/b. Packages under
	// an extra root are fully loaded, like module packages, so fixture
	// programs exercise the same interprocedural machinery as the module.
	ExtraRoots []string

	goroot  string
	info    *types.Info          // shared across every full package check
	full    map[string]*Package  // fully loaded packages by import path
	cache   map[string]*types.Package // shallow (GOROOT) dependency cache
	loading map[string]bool
}

// NewLoader builds a Loader anchored at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir := abs
	for {
		if _, err := os.Stat(filepath.Join(modDir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(modDir)
		if parent == modDir {
			return nil, fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		modDir = parent
	}
	data, err := os.ReadFile(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", modDir)
	}
	return &Loader{
		Fset:       token.NewFileSet(),
		ModulePath: modPath,
		ModuleDir:  modDir,
		goroot:     build.Default.GOROOT,
		info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
		full:    map[string]*Package{},
		cache:   map[string]*types.Package{},
		loading: map[string]bool{},
	}, nil
}

// Info exposes the shared types.Info all fully loaded packages write
// into (every Package.Info aliases it).
func (l *Loader) Info() *types.Info { return l.info }

// FullPackages returns every fully loaded package — named targets and
// the module/extra-root dependencies pulled in by their imports — sorted
// by import path. This is the package set a whole-program analyzer
// should see, since reachability may pass through packages nobody named
// on the command line.
func (l *Loader) FullPackages() []*Package {
	pkgs := make([]*Package, 0, len(l.full))
	for _, pkg := range l.full {
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs
}

// resolveDir maps an import path to its source directory.
func (l *Loader) resolveDir(path string) (string, error) {
	for _, root := range l.ExtraRoots {
		d := filepath.Join(root, path)
		if fi, err := os.Stat(d); err == nil && fi.IsDir() {
			return d, nil
		}
	}
	if path == l.ModulePath {
		return l.ModuleDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), nil
	}
	for _, d := range []string{
		filepath.Join(l.goroot, "src", filepath.FromSlash(path)),
		filepath.Join(l.goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if fi, err := os.Stat(d); err == nil && fi.IsDir() {
			return d, nil
		}
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q", path)
}

// fullLoadable reports whether dir holds source the loader must check as
// part of the program (module-local or under an extra root) rather than
// as a shallow GOROOT dependency.
func (l *Loader) fullLoadable(dir string) bool {
	if dir == l.ModuleDir || strings.HasPrefix(dir, l.ModuleDir+string(filepath.Separator)) {
		return true
	}
	for _, root := range l.ExtraRoots {
		if dir == root || strings.HasPrefix(dir, root+string(filepath.Separator)) {
			return true
		}
	}
	return false
}

// parseDir parses the buildable Go files of dir (build-tag aware, tests
// excluded). Files inside the module are registered under module-root-
// relative names, so every diagnostic position is stable regardless of
// the invocation directory (and directly usable in CI annotations);
// GOROOT files keep their absolute paths.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append(append([]string{}, bp.GoFiles...), bp.CgoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		full := filepath.Join(dir, name)
		display := full
		if rel, err := filepath.Rel(l.ModuleDir, full); err == nil && !strings.HasPrefix(rel, "..") {
			display = filepath.ToSlash(rel)
		}
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.Fset, display, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Import implements types.Importer. Module-local and extra-root packages
// are fully loaded (so the importing package sees the SAME *types.Package
// the package's own analysis pass uses — object identity holds across
// package boundaries); GOROOT dependencies contribute their exported API
// only.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.full[path]; ok {
		return pkg.Types, nil
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	dir, err := l.resolveDir(path)
	if err != nil {
		return nil, err
	}
	if l.fullLoadable(dir) {
		pkg, err := l.loadFull(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}

	l.loading[path] = true
	defer delete(l.loading, path)
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: parsing %s: %w", path, err)
	}
	cfg := types.Config{
		Importer:         l,
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		Sizes:            types.SizesFor("gc", build.Default.GOARCH),
		// Dependencies only contribute their exported API; tolerate
		// residual errors (e.g. build-tag corner cases in GOROOT) as long
		// as a package object comes back.
		Error: func(error) {},
	}
	pkg, err := cfg.Check(path, l.Fset, files, nil)
	if pkg == nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	l.cache[path] = pkg
	return pkg, nil
}

// loadFull parses and fully type-checks one program package — bodies and
// all — into the loader's shared types.Info, caching the result so a
// package reached both as a named target and as a dependency of another
// is checked exactly once.
func (l *Loader) loadFull(path, dir string) (*Package, error) {
	if pkg, ok := l.full[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: parsing %s: %w", path, err)
	}
	var errs []error
	cfg := types.Config{
		Importer:    l,
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", build.Default.GOARCH),
		Error:       func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := cfg.Check(path, l.Fset, files, l.info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, errs[0])
	}
	if tpkg == nil {
		return nil, fmt.Errorf("analysis: type-checking %s failed", path)
	}
	pkg := &Package{
		PkgPath: path,
		Dir:     dir,
		Fset:    l.Fset,
		Syntax:  files,
		Types:   tpkg,
		Info:    l.info,
	}
	l.full[path] = pkg
	return pkg, nil
}

// LoadTarget fully type-checks the package in dir under the given import
// path, with function bodies and types.Info populated. Loading the same
// import path again returns the cached package.
func (l *Loader) LoadTarget(path, dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.loadFull(path, abs)
}

// Load expands patterns ("./...", "./dir", "dir") into module packages
// and fully loads each. Vendor, testdata, .git, and hidden directories
// are skipped during ... expansion, as are directories without buildable
// Go files.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleDir, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.loadFull(path, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// expand turns CLI patterns into a sorted, deduplicated directory list.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) error {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return err
		}
		if seen[abs] {
			return nil
		}
		if !l.buildable(abs) {
			return nil
		}
		seen[abs] = true
		dirs = append(dirs, abs)
		return nil
	}
	for _, pat := range patterns {
		root, rec := strings.CutSuffix(pat, "/...")
		if root == "." || root == "" {
			root = l.ModuleDir
		}
		if !rec {
			if fi, err := os.Stat(root); err != nil || !fi.IsDir() {
				return nil, fmt.Errorf("analysis: package pattern %q: no such directory", pat)
			}
			if err := add(root); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return add(p)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// buildable reports whether dir holds at least one buildable Go file.
func (l *Loader) buildable(dir string) bool {
	bp, err := build.Default.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles)+len(bp.CgoFiles) > 0
}
