package allocfree

import (
	"testing"

	"repro/internal/analysis/atest"
)

// TestAllocFree exercises the whole-program analyzer over a two-package
// fixture: hot.Root is the sole //slj:hotpath root, and the sink package
// supplies one of each flagged construct — append regrowth, closure
// capture, interface boxing, an external (unanalyzed) callee, a
// goroutine launch, an unnarrowed func-value call, and a reason-less
// suppression — each reported with the hot.Root→… chain, alongside the
// disciplined idioms (reslice append, arena self-append, //slj:dyncall
// narrowing, reasoned alloc-ok) that must stay silent.
func TestAllocFree(t *testing.T) {
	atest.RunPackages(t, "testdata", []string{"hot"}, Analyzer)
}
