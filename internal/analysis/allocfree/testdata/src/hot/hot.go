// Package hot is the root package of the allocfree cross-package
// fixture: Root is the single //slj:hotpath root, and every sink in the
// imported sink package must be reported with the hot.Root→… chain.
package hot

import "sink"

//slj:hotpath
func Root(n int) int {
	buf := sink.Buffer()
	buf = sink.Grow(buf, n)
	buf = sink.Reslice(buf, n)
	sink.Capture(n)
	sink.Box(n)
	sink.Printer(n)
	sink.Spawn()
	sink.UseArena(n)
	_ = sink.Apply(sink.Double, n)
	_ = sink.Bad(sink.Double, n)
	_ = sink.Sloppy()
	return len(buf)
}

// Cold is NOT annotated and NOT reachable from Root: nothing in it is
// reported, however allocation-happy it is.
func Cold() []int {
	out := []int{}
	for i := 0; i < 10; i++ {
		out = append(out, i)
	}
	return out
}
