// Package sink holds the allocation constructs the allocfree fixture
// exercises; everything here is reachable only through hot.Root.
package sink

import "fmt"

// Buffer returns a frame-lifetime scratch slice; the allocation is an
// accepted, amortised setup cost.
func Buffer() []int {
	return make([]int, 0, 4) //slj:alloc-ok arena setup, amortised across frames
}

// Grow violates capacity discipline: the destination is a plain
// parameter with no visible reslice or sized make.
func Grow(buf []int, n int) []int {
	for i := 0; i < n; i++ {
		buf = append(buf, i) // want "append to buf may grow the backing array .*hot.Root → sink.Grow"
	}
	return buf
}

// Reslice follows the discipline: the destination local is defined from
// a reslice of the caller's buffer.
func Reslice(buf []int, n int) []int {
	out := buf[:0]
	for i := 0; i < n && i < cap(out); i++ {
		out = append(out, i)
	}
	return out
}

var sinkFn func() int

// Capture builds a closure over its parameter.
func Capture(n int) {
	sinkFn = func() int { return n } // want "closure captures n and allocates .*hot.Root → sink.Capture"
}

// Logger is the boxing target interface.
type Logger interface{ Log(v any) }

type nopLogger struct{}

func (nopLogger) Log(v any) {}

// Box boxes twice: the concrete logger into Logger, and the int
// argument into Log's any parameter.
func Box(n int) {
	var l Logger = nopLogger{} // want "declaration boxes sink.nopLogger into interface sink.Logger"
	l.Log(n)                   // want "argument n boxes int into interface .*hot.Root → sink.Box"
}

// Printer calls into the standard library: fmt's body is outside the
// analyzed program (and its variadic ...any boxes the argument).
func Printer(n int) {
	fmt.Println(n) // want "call into fmt.Println, whose body is outside the analyzed program .*hot.Root → sink.Printer" "argument n boxes int into interface"
}

// Spawn launches a goroutine from the hot path.
func Spawn() {
	go worker() // want "go statement launches a goroutine"
}

func worker() {}

// Apply narrows its dynamic call, so the analyzer follows the edge to
// Double instead of flagging the site.
func Apply(f func(int) int, n int) int {
	//slj:dyncall sink.Double
	return f(n)
}

// Bad leaves the func-value call unnarrowed.
func Bad(f func(int) int, n int) int {
	return f(n) // want "dynamic call through a func value defeats static analysis"
}

func Double(n int) int { return n * 2 }

// Sloppy suppresses without a reason, which is itself a finding.
func Sloppy() []byte {
	//slj:alloc-ok
	return make([]byte, 8) // want "//slj:alloc-ok must carry a reason"
}

// Arena demonstrates the self-append arena-slot idiom.
type Arena struct{ Nodes []int }

func (a *Arena) Push(n int) {
	a.Nodes = append(a.Nodes, n)
}

var arena Arena

// UseArena routes Root into the method so (*Arena).Push is scanned.
func UseArena(n int) {
	arena.Push(n)
}
