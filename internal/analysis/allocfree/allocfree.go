// Package allocfree statically proves the zero-allocation contract of
// the per-frame hot path (DESIGN.md §11): functions annotated
// //slj:hotpath are roots; every function transitively reachable from a
// root through the program call graph (see internal/analysis/callgraph)
// is scanned for heap-allocating constructs, and each finding is
// reported with the full root→sink call chain that makes it hot.
//
// Flagged constructs:
//
//   - make of any slice, map, or channel
//   - append without visible capacity discipline (see below)
//   - slice and map composite literals
//   - new(T) and &T{…} composite literals that escape the function
//   - func literals capturing enclosing variables, and method values
//     (both compile to heap-allocated closures) — EXCEPT a local helper
//     closure that never leaves the function (bound to one local var
//     whose every other use is a direct call, or invoked immediately):
//     the compiler stack-allocates those, and their bodies are scanned
//     inline as part of the enclosing function anyway
//   - interface conversions (boxing), including variadic ...any calls
//   - string concatenation and string↔[]byte/[]rune conversions
//   - go statements (goroutine stacks are allocations, and a hot path
//     should not be spawning)
//   - calls into functions whose bodies are outside the analyzed
//     program (stdlib, assembly) unless allowlisted as non-allocating
//   - calls through func values, which defeat static reachability,
//     unless narrowed with //slj:dyncall <target>
//
// Capacity discipline for append: the destination is a reslice
// (x[:0], x[a:b]), or the statement is a self-append to a struct field
// (x.f = append(x.f, …) — the arena-slot idiom, truncated elsewhere via
// [:0]), or the destination local was visibly initialised in the same
// function from a reslice, a 3-arg make, or a callee's return value (the
// callee is itself scanned). Everything else — classically
// x = append(x, …) on a fresh local — is an append regrowth finding.
//
// Suppression: //slj:alloc-ok <reason> on (or directly above) the line.
// The reason is mandatory — a bare //slj:alloc-ok is its own finding.
// On a call site, alloc-ok additionally prunes traversal into the callee:
// the call is an accepted allocation boundary (cold error path, non-arena
// fallback, sync.Pool amortisation), so nothing beyond it is scanned.
//
// Soundness caveats (see DESIGN.md §13): interface calls traverse to
// every program type implementing the interface, but implementations
// outside the program are invisible; self-appends to fields and
// reslice-disciplined appends may still grow on capacity misses (the
// bench gate proves the steady state); package initialisers and
// variables are not roots.
package allocfree

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the allocfree whole-program analyzer.
var Analyzer = &analysis.Analyzer{
	Name:       "allocfree",
	Doc:        "prove //slj:hotpath roots allocation-free across the whole program call graph",
	RunProgram: run,
}

// allowExternal lists functions outside the program that are known not
// to allocate on any path, keyed by package path (whole package) and by
// full function name.
var allowExternalPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

var allowExternalFuncs = map[string]bool{
	"errors.Is":                  true,
	"errors.As":                  true,
	"time.Now":                   true,
	"time.Since":                 true,
	"(time.Time).Sub":            true,
	"(time.Duration).Nanoseconds": true,
	"(time.Duration).Seconds":    true,
	"slices.Sort":                true,
	"sort.Search":                true,
	"runtime.KeepAlive":          true,
}

// Roots returns the //slj:hotpath-annotated root nodes of the graph,
// sorted by name.
func Roots(pass *analysis.Pass, g *callgraph.Graph) []*callgraph.Node {
	var roots []*callgraph.Node
	for _, n := range g.Nodes() {
		if n.External() {
			continue
		}
		if pass.Annotated(n.Decl.Pos(), "hotpath") {
			roots = append(roots, n)
		}
	}
	return roots
}

// Follow returns the edge-traversal policy used for reachability: static
// and //slj:dyncall-narrowed edges plus interface over-approximation
// edges are followed into program functions; func-value over-approx
// edges are not (the call site itself is reported unless narrowed), nor
// are edges whose call site an //slj:alloc-ok annotation marks as an
// accepted allocation boundary.
func Follow(pass *analysis.Pass) func(*callgraph.Edge) bool {
	return func(e *callgraph.Edge) bool {
		if e.Callee.External() {
			return false
		}
		if e.Kind == callgraph.FuncValue {
			return false
		}
		if e.Site != nil && pass.Annotated(e.Site.Pos(), "alloc-ok") {
			return false
		}
		return true
	}
}

// HotPath computes the call graph, hotpath roots, and the BFS parent map
// of the reachable set for prog. Exported for sljcheck -hotpath.
func HotPath(pass *analysis.Pass) (*callgraph.Graph, []*callgraph.Node, map[*callgraph.Node]*callgraph.Edge) {
	g := callgraph.Build(pass.Program, pass.Annotation)
	roots := Roots(pass, g)
	parents := g.Parents(roots, Follow(pass))
	return g, roots, parents
}

func run(pass *analysis.Pass) error {
	g, roots, parents := HotPath(pass)
	if len(roots) == 0 {
		return nil
	}

	// Deterministic scan order: reachable nodes by name.
	var reach []*callgraph.Node
	for n := range parents {
		if !n.External() {
			reach = append(reach, n)
		}
	}
	sort.Slice(reach, func(i, j int) bool { return reach[i].Name() < reach[j].Name() })

	for _, n := range reach {
		s := &scanner{pass: pass, g: g, node: n, chain: callgraph.Chain(parents, n)}
		s.scan()
	}
	return nil
}

// scanner walks one reachable function body for allocation sinks.
type scanner struct {
	pass  *analysis.Pass
	g     *callgraph.Graph
	node  *callgraph.Node
	chain []string
}

// report emits one finding at pos unless an //slj:alloc-ok with a reason
// covers the line; a reason-less alloc-ok is converted into its own
// finding so every suppression in the tree documents itself.
func (s *scanner) report(pos token.Pos, format string, args ...any) {
	if reason, ok := s.pass.Annotation(pos, "alloc-ok"); ok {
		if strings.TrimSpace(reason) == "" {
			s.pass.ReportChain(pos, s.chain, "hot path: //slj:alloc-ok must carry a reason")
		}
		return
	}
	msg := fmt.Sprintf(format, args...)
	s.pass.ReportChain(pos, s.chain, "hot path: %s [%s]", msg, strings.Join(s.chain, " → "))
}

func (s *scanner) scan() {
	decl := s.node.Decl
	if decl.Body == nil {
		return
	}
	info := s.pass.Info
	analysis.WalkStack(decl.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			return s.call(n, stack)
		case *ast.CompositeLit:
			s.compositeLit(n, stack)
		case *ast.FuncLit:
			s.funcLit(n, stack, decl)
		case *ast.GoStmt:
			s.report(n.Pos(), "go statement launches a goroutine")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) {
				s.report(n.Pos(), "string concatenation allocates")
			}
		case *ast.SelectorExpr:
			s.methodValue(n, stack)
		case *ast.AssignStmt:
			s.boxingAssign(n)
		case *ast.ValueSpec:
			s.boxingValueSpec(n)
		case *ast.ReturnStmt:
			s.boxingReturn(n, stack, decl)
		}
		return true
	})
}

// call handles every call expression: builtins (make/append/new),
// conversions, external callees, dynamic dispatch, and argument boxing.
// It returns false to skip the subtree only for panic calls (terminal,
// never hot).
func (s *scanner) call(call *ast.CallExpr, stack []ast.Node) bool {
	info := s.pass.Info
	fun := ast.Unparen(call.Fun)

	// Builtin?
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				s.report(call.Pos(), "make(%s) allocates", typeLabel(info.TypeOf(call)))
			case "append":
				s.appendCall(call, stack)
			case "new":
				s.escapingAlloc(call, stack, "new(T)")
			case "panic":
				// Terminal; a panicking frame is never the steady state.
				return false
			case "print", "println":
				s.report(call.Pos(), "%s allocates", b.Name())
			}
			return true
		}
	}

	// Conversion?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		s.conversion(call)
		return true
	}

	// Resolved edges for this site.
	edges := s.g.BySite[call]
	dyn := s.g.SiteDyn[call]
	switch {
	case dyn != nil && dyn.Narrowed:
		for _, t := range dyn.Unmatched {
			s.report(call.Pos(), "//slj:dyncall target %q matches no program function", t)
		}
	case dyn != nil && dyn.Kind == callgraph.FuncValue:
		// A direct call to a non-escaping local closure is not dynamic in
		// any way that matters: the single possible body is scanned inline.
		if id, ok := fun.(*ast.Ident); ok {
			if obj, ok := s.pass.Info.ObjectOf(id).(*types.Var); ok && s.localClosure(obj) != nil {
				break
			}
		}
		s.report(call.Pos(), "dynamic call through a func value defeats static analysis; narrow with //slj:dyncall <target>")
	case dyn != nil && dyn.Kind == callgraph.Interface:
		// Sound over-approximation: every program implementation is
		// already in the reachable set. Nothing to report.
	default:
		for _, e := range edges {
			if e.Callee.External() && !allowedExternal(e.Callee.Func) {
				s.report(call.Pos(), "call into %s, whose body is outside the analyzed program", e.Callee.Name())
			}
		}
	}

	// Variadic/interface-parameter boxing of the arguments.
	s.boxingCall(call)
	return true
}

// appendCall enforces the capacity discipline documented in the package
// comment.
func (s *scanner) appendCall(call *ast.CallExpr, stack []ast.Node) {
	if len(call.Args) == 0 {
		return
	}
	dst := ast.Unparen(call.Args[0])

	// append(x[:0], …) / append(x[a:b], …): reslice discipline.
	if _, ok := dst.(*ast.SliceExpr); ok {
		return
	}

	// Self-append to a struct field: x.f = append(x.f, …) — the arena
	// slot idiom.
	if assign := enclosingAssign(stack); assign != nil && len(assign.Lhs) == 1 {
		if sel, ok := ast.Unparen(assign.Lhs[0]).(*ast.SelectorExpr); ok {
			if types.ExprString(sel) == types.ExprString(dst) {
				return
			}
		}
	}

	// Destination local visibly initialised with capacity discipline.
	if id, ok := dst.(*ast.Ident); ok {
		if obj, ok := s.pass.Info.ObjectOf(id).(*types.Var); ok && s.disciplinedLocal(obj) {
			return
		}
	}

	s.report(call.Pos(), "append to %s may grow the backing array", types.ExprString(dst))
}

// disciplinedLocal reports whether some assignment in the scanned
// function initialises obj from a reslice, a 3-arg make, or a call
// result (whose own allocations are the callee's findings).
func (s *scanner) disciplinedLocal(obj *types.Var) bool {
	if !analysis.DeclaredWithin(obj, s.node.Decl) {
		return false
	}
	ok := false
	ast.Inspect(s.node.Decl.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		assign, isAssign := n.(*ast.AssignStmt)
		if !isAssign {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, isIdent := ast.Unparen(lhs).(*ast.Ident)
			if !isIdent || s.pass.Info.ObjectOf(id) != obj {
				continue
			}
			var rhs ast.Expr
			if len(assign.Rhs) == len(assign.Lhs) {
				rhs = ast.Unparen(assign.Rhs[i])
			} else if len(assign.Rhs) == 1 {
				rhs = ast.Unparen(assign.Rhs[0])
			}
			switch r := rhs.(type) {
			case *ast.SliceExpr:
				ok = true
			case *ast.CallExpr:
				// make([]T, n, c) or a scanned callee's return value.
				if id, isID := ast.Unparen(r.Fun).(*ast.Ident); isID {
					if b, isB := s.pass.Info.Uses[id].(*types.Builtin); isB {
						if b.Name() == "make" && len(r.Args) == 3 {
							ok = true
						}
						break
					}
				}
				ok = true
			}
		}
		return !ok
	})
	return ok
}

// escapingAlloc flags new(T) / &T{…} when the value escapes the scanned
// function under a simple, conservative approximation: the expression
// appears directly in a return, call argument, composite-literal
// element, channel send, go/defer, or an assignment to anything but a
// fresh local — or it is bound to a local that is later used in one of
// those positions.
func (s *scanner) escapingAlloc(expr ast.Expr, stack []ast.Node, label string) {
	esc, how := s.escapes(expr, stack)
	if !esc {
		return
	}
	s.report(expr.Pos(), "%s escapes (%s) and allocates", label, how)
}

func (s *scanner) escapes(expr ast.Expr, stack []ast.Node) (bool, string) {
	// Walk outward past parens.
	i := len(stack) - 2
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return true, "unknown context"
	}
	switch parent := stack[i].(type) {
	case *ast.ReturnStmt:
		return true, "returned"
	case *ast.CallExpr:
		if parent.Fun != expr {
			return true, "passed to a call"
		}
	case *ast.CompositeLit:
		return true, "stored in a composite literal"
	case *ast.SendStmt:
		return true, "sent on a channel"
	case *ast.KeyValueExpr:
		return true, "stored in a composite literal"
	case *ast.IndexExpr:
		return true, "stored by index"
	case *ast.UnaryExpr:
		// &(&T{}) is not legal; ignore.
	case *ast.AssignStmt:
		// Assigned where?
		for j, rhs := range parent.Rhs {
			if ast.Unparen(rhs) != expr && rhs != expr {
				continue
			}
			if j >= len(parent.Lhs) {
				return true, "assigned"
			}
			lhs := ast.Unparen(parent.Lhs[j])
			id, ok := lhs.(*ast.Ident)
			if !ok {
				return true, "assigned to a non-local"
			}
			obj, ok := s.pass.Info.ObjectOf(id).(*types.Var)
			if !ok || !analysis.DeclaredWithin(obj, s.node.Decl) {
				return true, "assigned to a non-local"
			}
			if how, esc := s.localEscapes(obj); esc {
				return true, how
			}
			return false, ""
		}
	}
	return false, ""
}

// localEscapes reports whether a local var bound to a fresh allocation
// later flows out of the function.
func (s *scanner) localEscapes(obj *types.Var) (string, bool) {
	how := ""
	ast.Inspect(s.node.Decl.Body, func(n ast.Node) bool {
		if how != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if s.usesObj(r, obj) {
					how = "returned via local"
				}
			}
		case *ast.CallExpr:
			for _, a := range n.Args {
				if id, ok := ast.Unparen(a).(*ast.Ident); ok && s.pass.Info.ObjectOf(id) == obj {
					how = "passed to a call via local"
				}
			}
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				id, ok := ast.Unparen(r).(*ast.Ident)
				if !ok || s.pass.Info.ObjectOf(id) != obj || i >= len(n.Lhs) {
					continue
				}
				lhs := ast.Unparen(n.Lhs[i])
				if lid, ok := lhs.(*ast.Ident); ok {
					if lobj, ok := s.pass.Info.ObjectOf(lid).(*types.Var); ok && analysis.DeclaredWithin(lobj, s.node.Decl) {
						continue
					}
				}
				how = "stored outside the frame via local"
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if id, ok := ast.Unparen(el).(*ast.Ident); ok && s.pass.Info.ObjectOf(id) == obj {
					how = "stored in a composite literal via local"
				}
			}
		case *ast.SendStmt:
			if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok && s.pass.Info.ObjectOf(id) == obj {
				how = "sent on a channel via local"
			}
		}
		return how == ""
	})
	return how, how != ""
}

func (s *scanner) usesObj(e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && s.pass.Info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// compositeLit flags slice/map literals always, and &struct{…} literals
// when they escape.
func (s *scanner) compositeLit(lit *ast.CompositeLit, stack []ast.Node) {
	t := s.pass.Info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		s.report(lit.Pos(), "slice literal %s allocates", typeLabel(t))
		return
	case *types.Map:
		s.report(lit.Pos(), "map literal %s allocates", typeLabel(t))
		return
	}
	// &T{…}: the parent unary & decides.
	if len(stack) >= 2 {
		if u, ok := stack[len(stack)-2].(*ast.UnaryExpr); ok && u.Op == token.AND {
			// Drop the unary from the stack view so escape context is the
			// &-expression's parent.
			s.escapingAlloc(u, stack[:len(stack)-1], "&"+typeLabel(t)+"{} composite literal")
		}
	}
}

// funcLit flags closures that capture enclosing variables — unless the
// literal never leaves the function: invoked immediately, or bound to a
// local var whose every other use is a direct call (a named local
// helper). Those stay on the stack.
func (s *scanner) funcLit(lit *ast.FuncLit, stack []ast.Node, decl *ast.FuncDecl) {
	if len(stack) >= 2 {
		switch parent := stack[len(stack)-2].(type) {
		case *ast.CallExpr:
			if ast.Unparen(parent.Fun) == lit {
				return // immediately invoked
			}
		case *ast.AssignStmt:
			for i, rhs := range parent.Rhs {
				if ast.Unparen(rhs) != lit || i >= len(parent.Lhs) {
					continue
				}
				if id, ok := ast.Unparen(parent.Lhs[i]).(*ast.Ident); ok {
					if obj, ok := s.pass.Info.ObjectOf(id).(*types.Var); ok && s.localClosure(obj) == lit {
						return // non-escaping named local helper
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range parent.Values {
				if ast.Unparen(v) != lit || i >= len(parent.Names) {
					continue
				}
				if obj, ok := s.pass.Info.ObjectOf(parent.Names[i]).(*types.Var); ok && s.localClosure(obj) == lit {
					return
				}
			}
		}
	}
	var captured []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := s.pass.Info.Uses[id].(*types.Var)
		if !ok || seen[obj] {
			return true
		}
		// Captured: declared in the enclosing function but not inside the
		// literal itself. Package-level vars are not captures.
		if analysis.DeclaredWithin(obj, decl) && !analysis.DeclaredWithin(obj, lit) {
			seen[obj] = true
			captured = append(captured, obj.Name())
		}
		return true
	})
	if len(captured) > 0 {
		sort.Strings(captured)
		s.report(lit.Pos(), "closure captures %s and allocates", strings.Join(captured, ", "))
	}
}

// localClosure returns the one FuncLit bound to obj when obj is a local
// func variable that never leaves the scanned function: exactly one
// binding assignment whose RHS is a func literal, and every other use of
// obj is a direct call obj(…). Recursion through the variable (the
// `var visit func(int); visit = func(i int){ … visit(j) … }` idiom)
// counts as a call use and is fine. Any other use — passed as an
// argument, returned, stored — disqualifies.
func (s *scanner) localClosure(obj *types.Var) *ast.FuncLit {
	if !analysis.DeclaredWithin(obj, s.node.Decl) {
		return nil
	}
	var lit *ast.FuncLit
	bindings := 0
	escapes := false
	analysis.WalkStack(s.node.Decl.Body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || s.pass.Info.ObjectOf(id) != obj || escapes {
			return !escapes
		}
		// Walk outward past parens to the governing construct.
		i := len(stack) - 2
		for i >= 0 {
			if _, isParen := stack[i].(*ast.ParenExpr); isParen {
				i--
				continue
			}
			break
		}
		if i < 0 {
			escapes = true
			return false
		}
		switch parent := stack[i].(type) {
		case *ast.CallExpr:
			if ast.Unparen(parent.Fun) != id {
				escapes = true // passed as an argument
			}
		case *ast.AssignStmt:
			// Binding assignment? id on the LHS with a FuncLit RHS.
			bound := false
			for j, lhs := range parent.Lhs {
				if ast.Unparen(lhs) != id {
					continue
				}
				bound = true
				if j < len(parent.Rhs) {
					if l, ok := ast.Unparen(parent.Rhs[j]).(*ast.FuncLit); ok {
						lit = l
						bindings++
						continue
					}
				}
				escapes = true // rebound to something unanalyzable
			}
			if !bound {
				escapes = true // id on the RHS: the closure value flows out
			}
		case *ast.ValueSpec:
			for j, name := range parent.Names {
				if name != id {
					continue
				}
				if j < len(parent.Values) {
					if l, ok := ast.Unparen(parent.Values[j]).(*ast.FuncLit); ok {
						lit = l
						bindings++
					} else {
						escapes = true
					}
				}
				// `var f func(int)` with no value: the later binding
				// assignment supplies the literal.
			}
		default:
			escapes = true
		}
		return !escapes
	})
	if escapes || bindings != 1 {
		return nil
	}
	return lit
}

// methodValue flags x.M used as a value (a bound-method closure).
func (s *scanner) methodValue(sel *ast.SelectorExpr, stack []ast.Node) {
	selection, ok := s.pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	// Called directly? Then it is dispatch, not a value.
	if len(stack) >= 2 {
		if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
			return
		}
	}
	s.report(sel.Pos(), "method value %s allocates a bound closure", types.ExprString(sel))
}

// conversion flags string↔byte/rune-slice conversions and conversions
// to interface types.
func (s *scanner) conversion(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	to := s.pass.Info.TypeOf(call)
	from := s.pass.Info.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return
	}
	if types.IsInterface(to) && !types.IsInterface(from) {
		s.report(call.Pos(), "conversion of %s to interface %s boxes", typeLabel(from), typeLabel(to))
		return
	}
	toU, fromU := to.Underlying(), from.Underlying()
	if isString(toU) && (isByteOrRuneSlice(fromU) || isRune(fromU)) {
		s.report(call.Pos(), "%s→string conversion allocates", typeLabel(from))
	}
	if isByteOrRuneSlice(toU) && isString(fromU) {
		s.report(call.Pos(), "string→%s conversion allocates", typeLabel(to))
	}
}

// boxingCall flags non-interface arguments passed in interface-typed
// parameter slots (including variadic ...any, the fmt idiom).
func (s *scanner) boxingCall(call *ast.CallExpr) {
	sig, ok := s.pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
			if call.Ellipsis.IsValid() {
				pt = last // s… forwarding: no per-element boxing
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := s.pass.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(s.pass, arg) {
			continue
		}
		s.report(arg.Pos(), "argument %s boxes %s into interface %s", types.ExprString(arg), typeLabel(at), typeLabel(pt))
	}
}

// boxingAssign flags assignments of non-interface values to
// interface-typed destinations.
func (s *scanner) boxingAssign(assign *ast.AssignStmt) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i := range assign.Lhs {
		lt := s.pass.Info.TypeOf(assign.Lhs[i])
		rt := s.pass.Info.TypeOf(assign.Rhs[i])
		if lt == nil || rt == nil {
			continue
		}
		if assign.Tok == token.DEFINE {
			continue // := takes the RHS type; no conversion
		}
		if types.IsInterface(lt) && !types.IsInterface(rt) && !isUntypedNil(s.pass, assign.Rhs[i]) {
			s.report(assign.Rhs[i].Pos(), "assignment boxes %s into interface %s", typeLabel(rt), typeLabel(lt))
		}
	}
}

// boxingValueSpec is boxingAssign for `var x I = v` declarations.
func (s *scanner) boxingValueSpec(spec *ast.ValueSpec) {
	if spec.Type == nil {
		return
	}
	lt := s.pass.Info.TypeOf(spec.Type)
	if lt == nil || !types.IsInterface(lt) {
		return
	}
	for _, v := range spec.Values {
		rt := s.pass.Info.TypeOf(v)
		if rt == nil || types.IsInterface(rt) || isUntypedNil(s.pass, v) {
			continue
		}
		s.report(v.Pos(), "declaration boxes %s into interface %s", typeLabel(rt), typeLabel(lt))
	}
}

// boxingReturn flags returning non-interface values from interface-typed
// results. The governing signature is the nearest enclosing func literal
// on the walk stack, if any, else the scanned declaration's.
func (s *scanner) boxingReturn(ret *ast.ReturnStmt, stack []ast.Node, decl *ast.FuncDecl) {
	var sig *types.Signature
	for i := len(stack) - 2; i >= 0 && sig == nil; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			sig, _ = s.pass.Info.TypeOf(lit).(*types.Signature)
		}
	}
	if sig == nil {
		obj, ok := s.pass.Info.Defs[decl.Name].(*types.Func)
		if !ok {
			return
		}
		sig = obj.Type().(*types.Signature)
	}
	results := sig.Results()
	if results == nil || len(ret.Results) != results.Len() {
		return
	}
	for i, r := range ret.Results {
		lt := results.At(i).Type()
		rt := s.pass.Info.TypeOf(r)
		if rt == nil || !types.IsInterface(lt) || types.IsInterface(rt) || isUntypedNil(s.pass, r) {
			continue
		}
		s.report(r.Pos(), "return boxes %s into interface %s", typeLabel(rt), typeLabel(lt))
	}
}

func allowedExternal(f *types.Func) bool {
	if f.Pkg() != nil && allowExternalPkgs[f.Pkg().Path()] {
		return true
	}
	return allowExternalFuncs[f.FullName()]
}

func enclosingAssign(stack []ast.Node) *ast.AssignStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.AssignStmt:
			return n
		case *ast.BlockStmt, *ast.FuncDecl, *ast.FuncLit:
			return nil
		}
	}
	return nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isRune(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Rune || b.Kind() == types.Int32 || b.Kind() == types.UntypedRune)
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func isUntypedNil(pass *analysis.Pass, e ast.Expr) bool {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "nil" {
		return pass.Info.ObjectOf(id) == types.Universe.Lookup("nil")
	}
	return false
}

func typeLabel(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
