// Package baseline provides a deliberately simple pose classifier — a
// nearest-prototype lookup over the Figure 6 feature vectors — as a
// control for the DBN. The paper's probabilistic machinery (per-pose
// networks, previous-pose and stage parents, thresholds) is only
// justified if it beats exactly this kind of table lookup; experiment
// EXT10 makes the comparison.
//
// Training memorises every (feature-key → label) count. Classification
// returns the majority label of the exact key when seen, otherwise the
// label of the nearest stored key by per-part Hamming-like distance
// (area mismatches count 1, with absent-vs-present counting 1 too).
package baseline

import (
	"errors"
	"fmt"

	"repro/internal/keypoint"
	"repro/internal/pose"
)

// ErrNotTrained reports classification before any Observe call.
var ErrNotTrained = errors.New("baseline: no training observations")

// Classifier is the nearest-prototype lookup. Not safe for concurrent
// mutation; classification is read-only.
type Classifier struct {
	partitions int
	// exact maps a feature key to per-pose counts.
	exact map[string]map[pose.Pose]int
	// prototypes stores one representative encoding per seen key, for
	// the nearest-neighbour fallback.
	prototypes map[string]keypoint.Encoding
	trained    bool
}

// New builds an empty classifier for the given partition count.
func New(partitions int) (*Classifier, error) {
	if partitions < 4 || partitions%2 != 0 {
		return nil, fmt.Errorf("baseline: partitions = %d, want even and >= 4", partitions)
	}
	return &Classifier{
		partitions: partitions,
		exact:      make(map[string]map[pose.Pose]int),
		prototypes: make(map[string]keypoint.Encoding),
	}, nil
}

// Observe adds one labelled frame.
func (c *Classifier) Observe(label pose.Pose, enc keypoint.Encoding) error {
	if !label.Valid() {
		return fmt.Errorf("baseline: invalid label %v", label)
	}
	if enc.Partitions != c.partitions {
		return fmt.Errorf("baseline: encoding has %d partitions, configured %d",
			enc.Partitions, c.partitions)
	}
	k := enc.Key()
	m, ok := c.exact[k]
	if !ok {
		m = make(map[pose.Pose]int)
		c.exact[k] = m
		c.prototypes[k] = enc
	}
	m[label]++
	c.trained = true
	return nil
}

// TrainSequence observes a labelled clip.
func (c *Classifier) TrainSequence(labels []pose.Pose, encs []keypoint.Encoding) error {
	if len(labels) != len(encs) {
		return fmt.Errorf("baseline: %d labels for %d encodings", len(labels), len(encs))
	}
	for i := range labels {
		if err := c.Observe(labels[i], encs[i]); err != nil {
			return fmt.Errorf("baseline: frame %d: %w", i, err)
		}
	}
	return nil
}

// majority returns the most frequent label of a count map (ties broken
// by lowest pose id, for determinism).
func majority(m map[pose.Pose]int) pose.Pose {
	best, bestN := pose.PoseUnknown, -1
	for p := pose.Pose(1); int(p) <= pose.NumPoses; p++ {
		if n := m[p]; n > bestN {
			best, bestN = p, n
		}
	}
	return best
}

// distance is the per-part mismatch count between two encodings.
func distance(a, b keypoint.Encoding) int {
	d := 0
	for i := 0; i < keypoint.NumParts; i++ {
		if a.Area[i] != b.Area[i] {
			d++
		}
		if a.Rings > 0 || b.Rings > 0 {
			if a.Ring[i] != b.Ring[i] {
				d++
			}
		}
	}
	return d
}

// Classify returns the majority label of the nearest stored prototype.
func (c *Classifier) Classify(enc keypoint.Encoding) (pose.Pose, error) {
	if !c.trained {
		return pose.PoseUnknown, ErrNotTrained
	}
	if m, ok := c.exact[enc.Key()]; ok {
		return majority(m), nil
	}
	bestKey, bestD := "", 1<<30
	for k, proto := range c.prototypes {
		if d := distance(enc, proto); d < bestD || (d == bestD && k < bestKey) {
			bestKey, bestD = k, d
		}
	}
	if bestKey == "" {
		return pose.PoseUnknown, ErrNotTrained
	}
	return majority(c.exact[bestKey]), nil
}

// ClassifySequence decodes a clip frame by frame (no temporal model —
// that absence is the point of the baseline).
func (c *Classifier) ClassifySequence(encs []keypoint.Encoding) ([]pose.Pose, error) {
	out := make([]pose.Pose, len(encs))
	for i, enc := range encs {
		p, err := c.Classify(enc)
		if err != nil {
			return nil, fmt.Errorf("baseline: frame %d: %w", i, err)
		}
		out[i] = p
	}
	return out, nil
}

// Keys returns the number of distinct feature keys memorised.
func (c *Classifier) Keys() int { return len(c.exact) }
