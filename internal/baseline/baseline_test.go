package baseline

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/imaging"
	"repro/internal/keypoint"
	"repro/internal/pose"
)

func enc(t *testing.T, p pose.Pose, jitterSeed int64) keypoint.Encoding {
	t.Helper()
	r := rand.New(rand.NewSource(jitterSeed))
	a := pose.Angles(p)
	j := func(v float64) float64 { return v + (r.Float64()*2-1)*0.05 }
	aj := pose.JointAngles{
		TorsoLean: j(a.TorsoLean), Neck: j(a.Neck), Shoulder: j(a.Shoulder),
		Elbow: j(a.Elbow), Hip: j(a.Hip), Knee: j(a.Knee), Ankle: j(a.Ankle),
	}
	s := pose.Compute(imaging.Pointf{X: 100, Y: 100}, 100, aj, pose.DefaultProportions())
	e, err := keypoint.Encode(keypoint.FromSkeleton2D(s), 8)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(7); err == nil {
		t.Error("odd partitions accepted")
	}
	if _, err := New(8); err != nil {
		t.Fatal(err)
	}
}

func TestUntrained(t *testing.T) {
	c, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Classify(keypoint.Encoding{Partitions: 8}); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
}

func TestObserveValidation(t *testing.T) {
	c, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(pose.PoseUnknown, keypoint.Encoding{Partitions: 8}); err == nil {
		t.Error("invalid label accepted")
	}
	if err := c.Observe(pose.AirTuck, keypoint.Encoding{Partitions: 16}); err == nil {
		t.Error("partition mismatch accepted")
	}
	if err := c.TrainSequence([]pose.Pose{pose.AirTuck}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestExactLookup(t *testing.T) {
	c, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	e := enc(t, pose.AirTuck, 1)
	for i := 0; i < 3; i++ {
		if err := c.Observe(pose.AirTuck, e); err != nil {
			t.Fatal(err)
		}
	}
	// A single conflicting observation should not flip the majority.
	if err := c.Observe(pose.LandCrouch, e); err != nil {
		t.Fatal(err)
	}
	got, err := c.Classify(e)
	if err != nil {
		t.Fatal(err)
	}
	if got != pose.AirTuck {
		t.Errorf("majority = %v, want AirTuck", got)
	}
}

func TestNearestFallback(t *testing.T) {
	c, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	tuck := enc(t, pose.AirTuck, 2)
	stand := enc(t, pose.StandHandsForward, 3)
	if err := c.Observe(pose.AirTuck, tuck); err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(pose.StandHandsForward, stand); err != nil {
		t.Fatal(err)
	}
	// A perturbed tuck encoding (change one part's area) must still map
	// to AirTuck via the nearest prototype.
	probe := tuck
	probe.Area[0] = probe.Area[0]%8 + 1
	got, err := c.Classify(probe)
	if err != nil {
		t.Fatal(err)
	}
	if got != pose.AirTuck {
		t.Errorf("nearest = %v, want AirTuck", got)
	}
}

func TestGeneralisationAcrossJitter(t *testing.T) {
	// Train on jittered encodings of every pose, classify fresh jitters:
	// the baseline should get most right (its weakness is temporal
	// ambiguity, not clean single frames).
	c, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 12; seed++ {
		for _, p := range pose.AllPoses() {
			if err := c.Observe(p, enc(t, p, seed)); err != nil {
				t.Fatal(err)
			}
		}
	}
	correct, total := 0, 0
	for seed := int64(100); seed < 104; seed++ {
		for _, p := range pose.AllPoses() {
			got, err := c.Classify(enc(t, p, seed))
			if err != nil {
				t.Fatal(err)
			}
			total++
			if got == p {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.5 {
		t.Errorf("baseline accuracy on clean frames = %.2f, want >= 0.5", acc)
	}
	if c.Keys() == 0 {
		t.Error("no keys memorised")
	}
}

func TestClassifySequence(t *testing.T) {
	c, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(pose.AirTuck, enc(t, pose.AirTuck, 5)); err != nil {
		t.Fatal(err)
	}
	out, err := c.ClassifySequence([]keypoint.Encoding{
		enc(t, pose.AirTuck, 6), enc(t, pose.AirTuck, 7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("decoded %d frames", len(out))
	}
}

func TestTrainSequenceHappyPath(t *testing.T) {
	c, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	labels := []pose.Pose{pose.AirTuck, pose.LandCrouch}
	encs := []keypoint.Encoding{enc(t, pose.AirTuck, 8), enc(t, pose.LandCrouch, 9)}
	if err := c.TrainSequence(labels, encs); err != nil {
		t.Fatal(err)
	}
	if c.Keys() != 2 {
		t.Errorf("keys = %d, want 2", c.Keys())
	}
}
