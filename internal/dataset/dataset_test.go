package dataset

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pose"
)

// smallOpts keeps generation fast in tests.
func smallOpts(seed int64) GenOptions {
	return GenOptions{TrainClips: 3, TestClips: 2, Seed: seed, FaultEvery: 2, VaryBody: true}
}

func TestGenerateSplitSizes(t *testing.T) {
	ds, err := Generate(smallOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Train) != 3 || len(ds.Test) != 2 {
		t.Fatalf("split = %d/%d, want 3/2", len(ds.Train), len(ds.Test))
	}
	train, test := ds.TotalFrames()
	if train == 0 || test == 0 {
		t.Fatal("empty frame counts")
	}
	// Paper shape: roughly 43 frames per clip.
	if perClip := train / 3; perClip < 30 || perClip > 60 {
		t.Errorf("frames per clip = %d, want ~40", perClip)
	}
}

func TestGenerateDefaultsMatchPaperShape(t *testing.T) {
	opts := DefaultGenOptions(7)
	if opts.TrainClips != 12 || opts.TestClips != 3 {
		t.Fatalf("defaults = %d/%d, want 12/3 (the paper's split)", opts.TrainClips, opts.TestClips)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Train {
		af, bf := a.Train[i].Clip.Frames, b.Train[i].Clip.Frames
		if len(af) != len(bf) {
			t.Fatal("clip lengths differ")
		}
		for k := range af {
			if !af[k].Silhouette.Equal(bf[k].Silhouette) {
				t.Fatalf("clip %d frame %d differs across identical generations", i, k)
			}
		}
	}
}

func TestGenerateInjectsFaults(t *testing.T) {
	ds, err := Generate(GenOptions{TrainClips: 4, TestClips: 1, Seed: 2, FaultEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	faultClips := 0
	for _, lc := range ds.Train {
		for _, f := range lc.Clip.Frames {
			if f.Label.IsFault() {
				faultClips++
				break
			}
		}
	}
	if faultClips == 0 {
		t.Error("FaultEvery=2 produced no fault clips among 4")
	}
	// Test clips stay standard.
	for _, lc := range ds.Test {
		for _, f := range lc.Clip.Frames {
			if f.Label.IsFault() {
				t.Error("test clip contains an injected fault")
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenOptions{TrainClips: 0, TestClips: 1}); err == nil {
		t.Error("zero train clips accepted")
	}
	if _, err := Generate(GenOptions{TrainClips: 1, TestClips: 0}); err == nil {
		t.Error("zero test clips accepted")
	}
}

func TestSaveLoadClipRoundTrip(t *testing.T) {
	ds, err := Generate(GenOptions{TrainClips: 1, TestClips: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "clip")
	if err := SaveClip(dir, ds.Train[0]); err != nil {
		t.Fatal(err)
	}
	got, err := LoadClip(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := ds.Train[0]
	if len(got.Clip.Frames) != len(want.Clip.Frames) {
		t.Fatalf("frames = %d, want %d", len(got.Clip.Frames), len(want.Clip.Frames))
	}
	for i := range got.Clip.Frames {
		g, w := got.Clip.Frames[i], want.Clip.Frames[i]
		if g.Label != w.Label {
			t.Fatalf("frame %d label = %v, want %v", i, g.Label, w.Label)
		}
		if !g.Silhouette.Equal(w.Silhouette) {
			t.Fatalf("frame %d silhouette mismatch", i)
		}
		for k := range g.Image.Pix {
			if g.Image.Pix[k] != w.Image.Pix[k] {
				t.Fatalf("frame %d pixel mismatch", i)
			}
		}
	}
}

func TestSaveLoadDataset(t *testing.T) {
	ds, err := Generate(GenOptions{TrainClips: 2, TestClips: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	if err := Save(root, ds); err != nil {
		t.Fatal(err)
	}
	got, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Train) != 2 || len(got.Test) != 1 {
		t.Fatalf("loaded split = %d/%d", len(got.Train), len(got.Test))
	}
}

func TestLoadClipMissingDir(t *testing.T) {
	_, err := LoadClip(filepath.Join(t.TempDir(), "nope"))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestLoadClipCorruptLabels(t *testing.T) {
	ds, err := Generate(GenOptions{TrainClips: 1, TestClips: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "clip")
	if err := SaveClip(dir, ds.Train[0]); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "labels.txt"), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadClip(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestLoadEmptyRoot(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "train"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "test"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(root); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestLoadClipMissingSilhouetteTolerated(t *testing.T) {
	ds, err := Generate(GenOptions{TrainClips: 1, TestClips: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "clip")
	if err := SaveClip(dir, ds.Train[0]); err != nil {
		t.Fatal(err)
	}
	// Silhouettes are optional ground truth: an absent file is a clip
	// saved without them, not corruption.
	if err := os.Remove(filepath.Join(dir, "silhouette-000.pbm")); err != nil {
		t.Fatal(err)
	}
	got, err := LoadClip(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Clip.Frames[0].Silhouette != nil {
		t.Error("frame 0 silhouette decoded from a removed file")
	}
	if got.Clip.Frames[1].Silhouette == nil {
		t.Error("frame 1 silhouette lost")
	}
}

// TestLoadClipSilhouetteOpenErrorIsCorrupt is the regression test for
// the tolerated-error bug: only fs.ErrNotExist may downgrade a
// silhouette to nil. Any other open failure — here an unresolvable
// symlink loop standing in for a permission error or I/O fault — must
// surface as ErrCorrupt instead of silently dropping ground truth.
func TestLoadClipSilhouetteOpenErrorIsCorrupt(t *testing.T) {
	ds, err := Generate(GenOptions{TrainClips: 1, TestClips: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "clip")
	if err := SaveClip(dir, ds.Train[0]); err != nil {
		t.Fatal(err)
	}
	sil := filepath.Join(dir, "silhouette-000.pbm")
	if err := os.Remove(sil); err != nil {
		t.Fatal(err)
	}
	// A self-referencing symlink opens with ELOOP — an error that is
	// not fs.ErrNotExist — even when the test runs as root (where
	// permission bits would not bite).
	if err := os.Symlink(sil, sil); err != nil {
		t.Skipf("cannot create symlink: %v", err)
	}
	if _, err := LoadClip(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestLoadMissingSplitDirIsEmptySplit(t *testing.T) {
	ds, err := Generate(GenOptions{TrainClips: 1, TestClips: 1, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	// Save only the test split: no train/ directory exists at all.
	if err := SaveClip(filepath.Join(root, "test", ds.Test[0].Name), ds.Test[0]); err != nil {
		t.Fatal(err)
	}
	got, err := Load(root)
	if err != nil {
		t.Fatalf("evaluation-only corpus rejected: %v", err)
	}
	if len(got.Train) != 0 || len(got.Test) != 1 {
		t.Fatalf("loaded split = %d/%d, want 0/1", len(got.Train), len(got.Test))
	}
}

func TestLoadedLabelsParse(t *testing.T) {
	// Every pose name written must parse back (ParsePose round trip
	// through the file format).
	ds, err := Generate(GenOptions{TrainClips: 1, TestClips: 1, Seed: 6, FaultEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "clip")
	if err := SaveClip(dir, ds.Train[0]); err != nil {
		t.Fatal(err)
	}
	got, err := LoadClip(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range got.Clip.Frames {
		if !f.Label.Valid() {
			t.Fatalf("frame %d: invalid label after round trip", i)
		}
		if f.Stage != pose.StageOf(f.Label) {
			t.Fatalf("frame %d: stage not reconstructed", i)
		}
	}
}
