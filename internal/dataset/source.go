// Streaming corpus access: a ClipSource iterator over labelled clips,
// with a materialised implementation for in-memory slices and a lazy
// directory walker (DirSource + ClipReader) that decodes a clip's
// header when the clip is pulled and its frames only when they are
// read, so the peak decoded footprint is bounded by the consumers in
// flight rather than the corpus size.
package dataset

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"repro/internal/imaging"
	"repro/internal/obs"
	"repro/internal/synth"
)

// ClipSource yields labelled clips one at a time, in a stable order.
// Next returns io.EOF after the last clip. Sources are driven from one
// goroutine at a time (the parallel engine serialises its pulls); they
// are not safe for concurrent Next calls. Callers own Close.
type ClipSource interface {
	Next() (LabeledClip, error)
	io.Closer
}

// MaterializedSource adapts an in-memory []LabeledClip to ClipSource,
// so slice-based callers and streaming callers share one engine path.
type MaterializedSource struct {
	clips []LabeledClip
	pos   int
	scope *obs.Scope
}

// Materialized wraps already-loaded clips in a source. The slice is not
// copied; it must not be mutated while the source is in use.
func Materialized(clips []LabeledClip) *MaterializedSource {
	return &MaterializedSource{clips: clips}
}

// SetScope attaches instrumentation (dataset.clips_streamed); nil is
// valid and disables it.
func (s *MaterializedSource) SetScope(sc *obs.Scope) { s.scope = sc }

// Len returns the total number of clips the source yields.
func (s *MaterializedSource) Len() int { return len(s.clips) }

// Next returns the next clip, or io.EOF when the slice is exhausted.
func (s *MaterializedSource) Next() (LabeledClip, error) {
	if s.pos >= len(s.clips) {
		return LabeledClip{}, io.EOF
	}
	lc := s.clips[s.pos]
	s.pos++
	s.scope.ClipStreamed()
	return lc, nil
}

// Close implements io.Closer; a materialised source holds no resources.
func (s *MaterializedSource) Close() error { return nil }

// DirSource streams a split directory written by Save: every child
// directory is one clip, yielded in sorted name order (the order Load
// materialises them in). Each Next decodes only the clip header —
// labels.txt and background.ppm — and returns a LabeledClip whose
// frames decode lazily through its Reader, so corpora larger than RAM
// stream through a bounded number of in-flight clips.
type DirSource struct {
	dirs  []string
	pos   int
	scope *obs.Scope
}

// OpenDir opens a streaming source over one split directory. A missing
// directory yields an empty source (an evaluation-only corpus has no
// train split), matching Load's treatment of absent splits.
func OpenDir(dir string) (*DirSource, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return &DirSource{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	s := &DirSource{}
	for _, e := range entries {
		if e.IsDir() {
			s.dirs = append(s.dirs, filepath.Join(dir, e.Name()))
		}
	}
	return s, nil
}

// OpenSplits opens streaming sources over root/train and root/test (the
// layout Save writes). Missing split directories yield empty sources;
// like Load, a corpus with no clips in either split is an error.
func OpenSplits(root string) (train, test *DirSource, err error) {
	if train, err = OpenDir(filepath.Join(root, "train")); err != nil {
		return nil, nil, err
	}
	if test, err = OpenDir(filepath.Join(root, "test")); err != nil {
		return nil, nil, err
	}
	if train.Len() == 0 && test.Len() == 0 {
		return nil, nil, fmt.Errorf("%w: empty dataset at %s", ErrCorrupt, root)
	}
	return train, test, nil
}

// SetScope attaches instrumentation (dataset.clips_streamed,
// dataset.decode_ns); nil is valid and disables it.
func (s *DirSource) SetScope(sc *obs.Scope) { s.scope = sc }

// Len returns the total number of clips the source yields.
func (s *DirSource) Len() int { return len(s.dirs) }

// Next opens the next clip directory. The returned clip carries its
// background and per-frame labels; pixel data decodes on demand via the
// clip's Reader.
func (s *DirSource) Next() (LabeledClip, error) {
	if s.pos >= len(s.dirs) {
		return LabeledClip{}, io.EOF
	}
	dir := s.dirs[s.pos]
	s.pos++
	r, err := OpenClip(dir)
	if err != nil {
		return LabeledClip{}, err
	}
	r.SetScope(s.scope)
	s.scope.ClipStreamed()
	return r.Labeled(), nil
}

// Close releases the source; further Next calls return io.EOF.
func (s *DirSource) Close() error {
	s.pos = len(s.dirs)
	return nil
}

// SkipCorrupt wraps src so clips whose header fails to decode are
// classified (errors.decode), journaled with a trace ID, and skipped
// instead of aborting the run — the resilient-ingest mode for
// unattended sweeps over large corpora. Errors other than ErrCorrupt
// still propagate: a permission problem or a bug must not be silently
// eaten. The scope may be nil (recording is then disabled); the engine
// re-attaches its own scope through SetScope.
func SkipCorrupt(src ClipSource, sc *obs.Scope) ClipSource {
	return &resilientSource{src: src, scope: sc}
}

type resilientSource struct {
	src     ClipSource
	scope   *obs.Scope
	skipped int
}

// Next pulls from the wrapped source, skipping corrupt clips.
func (r *resilientSource) Next() (LabeledClip, error) {
	for {
		lc, err := r.src.Next()
		if err == nil || errors.Is(err, io.EOF) {
			return lc, err
		}
		if !errors.Is(err, ErrCorrupt) {
			return lc, err
		}
		r.scope.RecordError(obs.ErrClassDecode, err)
		r.skipped++
	}
}

// Skipped reports how many corrupt clips were dropped so far.
func (r *resilientSource) Skipped() int { return r.skipped }

// SetScope attaches instrumentation to the wrapper and the wrapped
// source (the engine calls this on whatever source it is handed).
func (r *resilientSource) SetScope(sc *obs.Scope) {
	r.scope = sc
	if s, ok := r.src.(interface{ SetScope(*obs.Scope) }); ok {
		s.SetScope(sc)
	}
}

// Close closes the wrapped source.
func (r *resilientSource) Close() error { return r.src.Close() }

// ClipReader provides lazy access to one clip saved by SaveClip: the
// header (labels.txt, background.ppm) is decoded by OpenClip, each
// frame's image and silhouette by ReadFrame. A reader holds no open
// file handles between calls, so any number may be in flight.
type ClipReader struct {
	dir    string
	name   string
	bg     *imaging.RGB
	labels []frameLabel
	scope  *obs.Scope
}

// OpenClip decodes a clip directory's header: the background frame and
// the label file, which also fixes the frame count. Frame pixel data is
// not touched.
func OpenClip(dir string) (*ClipReader, error) {
	r := &ClipReader{dir: dir, name: filepath.Base(dir)}
	t0 := time.Now() //slj:nondet-ok decode-latency metric, never encoded in artifacts
	bgf, err := os.Open(filepath.Join(dir, "background.ppm"))
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, r.name, err)
	}
	bg, err := imaging.DecodePPM(bgf)
	bgf.Close()
	if err != nil {
		return nil, fmt.Errorf("%w: %s: background: %v", ErrCorrupt, r.name, err)
	}
	r.bg = bg
	labels, err := readLabels(dir)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, r.name, err)
	}
	r.labels = labels
	r.scope.DecodeTime(time.Since(t0)) //slj:nondet-ok decode-latency metric, never encoded in artifacts
	return r, nil
}

// SetScope attaches instrumentation (dataset.decode_ns); nil disables.
func (r *ClipReader) SetScope(sc *obs.Scope) {
	if r != nil {
		r.scope = sc
	}
}

// Name returns the clip name (the directory base name).
func (r *ClipReader) Name() string { return r.name }

// NumFrames returns the clip length (from the label file).
func (r *ClipReader) NumFrames() int { return len(r.labels) }

// Background returns the decoded clean backdrop frame.
func (r *ClipReader) Background() *imaging.RGB { return r.bg }

// ReadFrame decodes frame i: its RGB image (required) and its ground-
// truth silhouette. A missing silhouette file is tolerated — silhouettes
// are optional ground truth — but any other open or decode failure is
// ErrCorrupt: a permission error or torn write must not silently
// downgrade a ground-truth clip.
func (r *ClipReader) ReadFrame(i int) (synth.Frame, error) {
	if i < 0 || i >= len(r.labels) {
		return synth.Frame{}, fmt.Errorf("%w: %s: frame %d out of range [0,%d)", ErrCorrupt, r.name, i, len(r.labels))
	}
	t0 := time.Now() //slj:nondet-ok decode-latency metric, never encoded in artifacts
	ff, err := os.Open(filepath.Join(r.dir, fmt.Sprintf("frame-%03d.ppm", i)))
	if err != nil {
		return synth.Frame{}, fmt.Errorf("%w: %s: %v", ErrCorrupt, r.name, err)
	}
	img, err := imaging.DecodePPM(ff)
	ff.Close()
	if err != nil {
		return synth.Frame{}, fmt.Errorf("%w: %s: frame %d: %v", ErrCorrupt, r.name, i, err)
	}
	var sil *imaging.Binary
	sf, err := os.Open(filepath.Join(r.dir, fmt.Sprintf("silhouette-%03d.pbm", i)))
	switch {
	case err == nil:
		sil, err = imaging.DecodePBM(sf)
		sf.Close()
		if err != nil {
			return synth.Frame{}, fmt.Errorf("%w: %s: silhouette %d: %v", ErrCorrupt, r.name, i, err)
		}
	case errors.Is(err, fs.ErrNotExist):
		// No silhouette saved for this frame; leave it nil.
	default:
		return synth.Frame{}, fmt.Errorf("%w: %s: silhouette %d: %v", ErrCorrupt, r.name, i, err)
	}
	label := r.labels[i]
	r.scope.DecodeTime(time.Since(t0)) //slj:nondet-ok decode-latency metric, never encoded in artifacts
	return synth.Frame{
		Image:      img,
		Silhouette: sil,
		Label:      label.Pose,
		Stage:      label.Stage,
	}, nil
}

// Labeled returns the clip in LabeledClip form with lazy frames: the
// Frames slice carries every label and stage (so Labels, TotalFrames
// and evaluation truth work unchanged) but no pixel data — consumers
// needing pixels go through Reader.ReadFrame.
func (r *ClipReader) Labeled() LabeledClip {
	frames := make([]synth.Frame, len(r.labels))
	for i, l := range r.labels {
		frames[i] = synth.Frame{Label: l.Pose, Stage: l.Stage}
	}
	return LabeledClip{
		Name:   r.name,
		Clip:   &synth.Clip{Background: r.bg, Frames: frames},
		Reader: r,
	}
}

// Materialize decodes every frame eagerly, producing the same clip
// LoadClip returns.
func (r *ClipReader) Materialize() (LabeledClip, error) {
	lc := LabeledClip{Name: r.name, Clip: &synth.Clip{Background: r.bg}}
	lc.Clip.Frames = make([]synth.Frame, len(r.labels))
	for i := range r.labels {
		fr, err := r.ReadFrame(i)
		if err != nil {
			return LabeledClip{}, err
		}
		lc.Clip.Frames[i] = fr
	}
	if len(lc.Clip.Frames) == 0 {
		return LabeledClip{}, fmt.Errorf("%w: no frames", ErrCorrupt)
	}
	return lc, nil
}
