package dataset

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// saveSmall writes a tiny generated dataset to a temp root.
func saveSmall(t *testing.T, seed int64) (*Dataset, string) {
	t.Helper()
	ds, err := Generate(GenOptions{TrainClips: 2, TestClips: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	if err := Save(root, ds); err != nil {
		t.Fatal(err)
	}
	return ds, root
}

// drain pulls a source to io.EOF, returning the clips.
func drain(t *testing.T, src ClipSource) []LabeledClip {
	t.Helper()
	var out []LabeledClip
	for {
		lc, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, lc)
	}
}

func TestMaterializedSource(t *testing.T) {
	ds, err := Generate(GenOptions{TrainClips: 3, TestClips: 1, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	src := Materialized(ds.Train)
	if src.Len() != 3 {
		t.Fatalf("Len = %d, want 3", src.Len())
	}
	got := drain(t, src)
	if len(got) != 3 {
		t.Fatalf("drained %d clips, want 3", len(got))
	}
	for i, lc := range got {
		if lc.Name != ds.Train[i].Name {
			t.Errorf("clip %d = %s, want %s (order must match the slice)", i, lc.Name, ds.Train[i].Name)
		}
	}
	// EOF is sticky.
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("Next after EOF = %v, want io.EOF", err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenDirMissingIsEmpty(t *testing.T) {
	src, err := OpenDir(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != 0 {
		t.Fatalf("Len = %d, want 0", src.Len())
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("Next = %v, want io.EOF", err)
	}
}

func TestOpenSplitsEmptyCorpus(t *testing.T) {
	if _, _, err := OpenSplits(t.TempDir()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestOpenSplitsEvaluationOnlyCorpus(t *testing.T) {
	ds, root := saveSmall(t, 11)
	// Strip the train split: an evaluation-only corpus must still open.
	if err := os.RemoveAll(filepath.Join(root, "train")); err != nil {
		t.Fatal(err)
	}
	train, test, err := OpenSplits(root)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 0 {
		t.Errorf("train Len = %d, want 0", train.Len())
	}
	if test.Len() != len(ds.Test) {
		t.Errorf("test Len = %d, want %d", test.Len(), len(ds.Test))
	}
}

// TestDirSourceMatchesLoadClip pins the lazy contract: a streamed clip
// carries every label and stage up front, no pixel data, and each
// ReadFrame reproduces exactly what the eager LoadClip decodes.
func TestDirSourceMatchesLoadClip(t *testing.T) {
	ds, root := saveSmall(t, 12)
	src, err := OpenDir(filepath.Join(root, "train"))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got := drain(t, src)
	if len(got) != len(ds.Train) {
		t.Fatalf("streamed %d clips, want %d", len(got), len(ds.Train))
	}
	for i, lc := range got {
		want, err := LoadClip(filepath.Join(root, "train", lc.Name))
		if err != nil {
			t.Fatal(err)
		}
		if lc.Name != ds.Train[i].Name {
			t.Fatalf("clip %d = %s, want %s (sorted directory order)", i, lc.Name, ds.Train[i].Name)
		}
		if lc.Reader == nil {
			t.Fatal("streamed clip has no Reader")
		}
		if len(lc.Clip.Frames) != len(want.Clip.Frames) {
			t.Fatalf("%s: %d frames, want %d", lc.Name, len(lc.Clip.Frames), len(want.Clip.Frames))
		}
		for k, fr := range lc.Clip.Frames {
			if fr.Image != nil || fr.Silhouette != nil {
				t.Fatalf("%s frame %d: pixel data decoded eagerly", lc.Name, k)
			}
			if fr.Label != want.Clip.Frames[k].Label || fr.Stage != want.Clip.Frames[k].Stage {
				t.Fatalf("%s frame %d: label/stage mismatch", lc.Name, k)
			}
			dec, err := lc.Reader.ReadFrame(k)
			if err != nil {
				t.Fatal(err)
			}
			if !dec.Silhouette.Equal(want.Clip.Frames[k].Silhouette) {
				t.Fatalf("%s frame %d: silhouette mismatch", lc.Name, k)
			}
			for p := range dec.Image.Pix {
				if dec.Image.Pix[p] != want.Clip.Frames[k].Image.Pix[p] {
					t.Fatalf("%s frame %d: pixel mismatch", lc.Name, k)
				}
			}
		}
		if _, err := lc.Reader.ReadFrame(len(lc.Clip.Frames)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("out-of-range ReadFrame err = %v, want ErrCorrupt", err)
		}
	}
}

func TestSourcesCountClipsStreamed(t *testing.T) {
	ds, root := saveSmall(t, 13)
	streamed := func(src ClipSource) int64 {
		scope := obs.NewScope(obs.NewRegistry())
		if s, ok := src.(interface{ SetScope(*obs.Scope) }); ok {
			s.SetScope(scope)
		}
		drain(t, src)
		for _, c := range scope.Registry().Snapshot().Counters {
			if c.Name == "dataset.clips_streamed" {
				return c.Value
			}
		}
		return 0
	}
	if got := streamed(Materialized(ds.Train)); got != int64(len(ds.Train)) {
		t.Errorf("materialized clips_streamed = %d, want %d", got, len(ds.Train))
	}
	src, err := OpenDir(filepath.Join(root, "train"))
	if err != nil {
		t.Fatal(err)
	}
	if got := streamed(src); got != int64(len(ds.Train)) {
		t.Errorf("dir clips_streamed = %d, want %d", got, len(ds.Train))
	}
}
