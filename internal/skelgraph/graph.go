// Package skelgraph converts a raw thinning result into the simplified
// skeleton graph of Section 3 of the paper:
//
//  1. the thinned pixel set becomes a graph (8-adjacency, with redundant
//     diagonal links suppressed),
//  2. "adjacent junction vertices" — vertices with more than one junction
//     vertex among their eight neighbours — are removed, capping every
//     degree at 4 and breaking lines around junction clusters,
//  3. a MAXIMUM spanning tree over the resulting segments (with short
//     bridge edges re-connecting the broken lines) cuts every loop, and
//  4. noisy branches shorter than a threshold are pruned, strictly one
//     branch at a time so a true branch next to a noisy one survives
//     (Figure 4).
//
// The graph is represented in contracted form: nodes are the distinguished
// pixels (endpoints, junctions, isolated pixels and cut points) and each
// segment carries the full pixel path between its two nodes, so the
// original geometry is never lost and the skeleton can be rasterised back
// into an image.
package skelgraph

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/imaging"
)

// DefaultPruneLen is the paper's noisy-branch threshold: "If the branch
// consists of less than 10 vertices, it might be a noisy (redundant)
// branch and needs to be deleted."
const DefaultPruneLen = 10

// DefaultBridgeRadius is the maximum Euclidean distance over which two
// broken-line endpoints may be re-joined after adjacent-junction-vertex
// removal. Removal deletes at most a 1-pixel rim around a junction
// cluster, so 3 pixels of slack is enough in practice.
const DefaultBridgeRadius = 3.0

// ErrEmptySkeleton reports that the input image had no foreground pixels.
var ErrEmptySkeleton = errors.New("skelgraph: empty skeleton")

// NodeKind classifies a node of the contracted skeleton graph.
type NodeKind int

// Node kinds. Kinds reflect the CURRENT degree of the node and are kept up
// to date by the mutating operations.
const (
	// KindEnd is a node with exactly one incident segment (a limb tip).
	KindEnd NodeKind = iota + 1
	// KindJunction has three or more incident segments (a body-part
	// intersection, e.g. "head and hand" per the paper).
	KindJunction
	// KindIsolated has no incident segments.
	KindIsolated
	// KindChain has exactly two incident segments; it appears where a
	// loop cut or a bridge left a degree-2 node that was once
	// distinguished.
	KindChain
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case KindEnd:
		return "end"
	case KindJunction:
		return "junction"
	case KindIsolated:
		return "isolated"
	case KindChain:
		return "chain"
	default:
		return "unknown-kind"
	}
}

// Node is a distinguished skeleton pixel.
type Node struct {
	// P is the pixel position.
	P imaging.Point
	// Segs lists indices into Graph.Segments of the incident live
	// segments.
	Segs []int
}

// Segment is a maximal pixel path between two nodes. Path[0] is node A's
// pixel and Path[len-1] is node B's pixel; interior pixels have degree 2.
type Segment struct {
	// A and B are node indices; A == B only transiently during
	// construction (self-loops are cut before Build returns).
	A, B int
	// Path is the full pixel path including both node pixels.
	Path []imaging.Point
	// Bridge marks a reconnection edge synthesised after
	// adjacent-junction-vertex removal rather than traced from pixels.
	Bridge bool
}

// Len returns the number of pixels of the segment, the "vertices" count
// the paper's pruning rule speaks of.
func (s *Segment) Len() int { return len(s.Path) }

// Graph is the contracted skeleton graph. After Build it is always a
// forest (loop-free); mutating operations preserve that invariant.
type Graph struct {
	// Nodes holds the distinguished pixels. Node indices are stable;
	// removed nodes keep their slot but have no incident segments.
	Nodes []Node
	// Segments holds the live segments. Removed segments are excised
	// from the slice by Compact; during mutation they are marked dead.
	Segments []Segment
	// W, H are the dimensions of the source image, kept so the graph
	// can be rasterised back.
	W, H int

	// Stats records the repairs Build applied; see BuildStats.
	Stats BuildStats

	dead []bool // parallel to Segments; true = removed
}

// BuildStats counts the Section 3 repairs Build performed on one
// skeleton. The pipeline's observability layer aggregates these into
// the pipeline.junctions_merged / pipeline.loops_cut health counters:
// persistent jumps mean the thinning stage is handing over much noisier
// skeletons than usual.
type BuildStats struct {
	// JunctionsRemoved is the number of adjacent junction vertices
	// deleted by the step-2 simplification.
	JunctionsRemoved int
	// Bridges is the number of reconnection edges synthesised after
	// junction removal.
	Bridges int
	// LoopsCut is the number of segments the spanning-tree step
	// rejected (each one closed a loop and was detached or removed).
	LoopsCut int
}

// Options configures Build.
type Options struct {
	// RemoveAdjacentJunctions applies step 2 (the paper's
	// simplification). On by default.
	RemoveAdjacentJunctions bool
	// MaxSpanning selects the maximum spanning tree of step 3; when
	// false a minimum spanning tree is used instead (ablation — the
	// paper argues max is required).
	MaxSpanning bool
	// BridgeRadius bounds reconnection distance; <= 0 disables bridges.
	BridgeRadius float64
}

// Option mutates Options.
type Option func(*Options)

// WithAdjacentJunctionRemoval toggles step 2.
func WithAdjacentJunctionRemoval(v bool) Option {
	return func(o *Options) { o.RemoveAdjacentJunctions = v }
}

// WithMaxSpanning toggles maximum (true) versus minimum (false) spanning
// tree loop cutting.
func WithMaxSpanning(v bool) Option { return func(o *Options) { o.MaxSpanning = v } }

// WithBridgeRadius overrides the reconnection radius.
func WithBridgeRadius(r float64) Option { return func(o *Options) { o.BridgeRadius = r } }

// pixelAdj is the raw pixel graph in fixed-stride adjacency form: pixel
// v's neighbours are nbr[8v : 8v+deg[v]], in the imaging.Neighbors8 scan
// order. The flat layout replaces the per-pixel []int32 slices that used
// to dominate the per-frame allocation count (one allocation per skeleton
// pixel); now the whole graph costs two allocations regardless of size.
type pixelAdj struct {
	nbr []int32
	deg []uint8
}

// neighbors returns pixel v's adjacency list.
func (a *pixelAdj) neighbors(v int32) []int32 {
	return a.nbr[8*int(v) : 8*int(v)+int(a.deg[v])]
}

// pixelAdjacency builds the raw pixel graph: for every foreground pixel its
// adjacent foreground pixels under 8-connectivity, with a diagonal link
// suppressed when the two pixels already share an orthogonal 2-path (the
// same reduction used by the thinning metrics; it prevents phantom
// triangle cycles at corners).
func pixelAdjacency(skel *imaging.Binary) (idx []int32, pts []imaging.Point, adj pixelAdj) {
	idx = make([]int32, len(skel.Pix))
	for i := range idx {
		idx[i] = -1
	}
	for y := 0; y < skel.H; y++ {
		for x := 0; x < skel.W; x++ {
			if skel.Pix[y*skel.W+x] != 0 {
				idx[y*skel.W+x] = int32(len(pts))
				pts = append(pts, imaging.Point{X: x, Y: y})
			}
		}
	}
	at := func(x, y int) bool {
		return x >= 0 && x < skel.W && y >= 0 && y < skel.H && skel.Pix[y*skel.W+x] != 0
	}
	adj = pixelAdj{nbr: make([]int32, 8*len(pts)), deg: make([]uint8, len(pts))}
	for vi, p := range pts {
		x, y := p.X, p.Y
		for _, d := range imaging.Neighbors8 {
			xx, yy := x+d.X, y+d.Y
			if !at(xx, yy) {
				continue
			}
			if d.X != 0 && d.Y != 0 {
				// Diagonal: suppress when an orthogonal 2-path exists.
				if at(x+d.X, y) || at(x, y+d.Y) {
					continue
				}
			}
			adj.nbr[8*vi+int(adj.deg[vi])] = idx[yy*skel.W+xx]
			adj.deg[vi]++
		}
	}
	return idx, pts, adj
}

// AdjacentJunctionVertices returns the pixels the paper's simplification
// removes: vertices with more than one junction vertex (degree >= 3) among
// their eight neighbours. Exposed for the Figure 3 experiment.
func AdjacentJunctionVertices(skel *imaging.Binary) []imaging.Point {
	idx, pts, adj := pixelAdjacency(skel)
	var out []imaging.Point
	for _, p := range pts {
		n := 0
		for _, d := range imaging.Neighbors8 {
			xx, yy := p.X+d.X, p.Y+d.Y
			if xx < 0 || xx >= skel.W || yy < 0 || yy >= skel.H {
				continue
			}
			if j := idx[yy*skel.W+xx]; j >= 0 && adj.deg[j] >= 3 {
				n++
			}
		}
		if n > 1 {
			out = append(out, p)
		}
	}
	return out
}

// Build converts a thinned binary image into a loop-free contracted
// skeleton graph, applying the Section 3 pipeline (simplify → maximum
// spanning tree loop cut). Pruning is left to the caller (Prune) because
// the paper treats it as a separate, iterative step.
func Build(skel *imaging.Binary, opts ...Option) (*Graph, error) {
	o := Options{
		RemoveAdjacentJunctions: true,
		MaxSpanning:             true,
		BridgeRadius:            DefaultBridgeRadius,
	}
	for _, fn := range opts {
		fn(&o)
	}

	work := skel
	pooled := false
	junctionsRemoved := 0
	if o.RemoveAdjacentJunctions {
		remove := AdjacentJunctionVertices(skel)
		junctionsRemoved = len(remove)
		if len(remove) > 0 {
			// The cleaned copy lives only until its adjacency is built;
			// recycle it through the imaging buffer pool.
			work = imaging.GetBinary(skel.W, skel.H)
			copy(work.Pix, skel.Pix)
			pooled = true
			for _, p := range remove {
				work.Set(p.X, p.Y, 0)
			}
		}
	}

	_, pts, adj := pixelAdjacency(work)
	if pooled {
		imaging.PutBinary(work)
	}
	if len(pts) == 0 {
		return nil, ErrEmptySkeleton
	}

	g := &Graph{W: skel.W, H: skel.H}
	g.Stats.JunctionsRemoved = junctionsRemoved
	g.traceSegments(pts, adj)
	if o.BridgeRadius > 0 {
		g.addBridges(o.BridgeRadius)
	}
	g.spanningCut(o.MaxSpanning)
	g.mergeChains()
	g.Compact()
	return g, nil
}

// traceSegments contracts the pixel graph into nodes and segments.
func (g *Graph) traceSegments(pts []imaging.Point, adj pixelAdj) {
	// Nodes: every pixel whose degree != 2.
	nodeOf := make([]int32, len(pts))
	for i := range nodeOf {
		nodeOf[i] = -1
	}
	for i := range pts {
		if adj.deg[i] != 2 {
			nodeOf[i] = int32(len(g.Nodes))
			g.Nodes = append(g.Nodes, Node{P: pts[i]})
		}
	}

	// visited[a] bit k set means the edge from a to its k-th neighbour
	// has been traced. Edges are marked in both directions, so one flat
	// byte per pixel replaces the map of pixel pairs the tracer used to
	// allocate per edge.
	visited := make([]uint8, len(pts))
	markDir := func(a, b int32) {
		for k, w := range adj.neighbors(a) {
			if w == b {
				visited[a] |= 1 << uint(k)
				return
			}
		}
	}
	mark := func(a, b int32) {
		markDir(a, b)
		markDir(b, a)
	}
	seen := func(a, b int32) bool {
		for k, w := range adj.neighbors(a) {
			if w == b {
				return visited[a]&(1<<uint(k)) != 0
			}
		}
		return false
	}

	// Walk each segment starting from every node pixel.
	for vi := range pts {
		if nodeOf[vi] < 0 {
			continue
		}
		for _, next := range adj.neighbors(int32(vi)) {
			if seen(int32(vi), next) {
				continue
			}
			path := []imaging.Point{pts[vi]}
			prev, cur := int32(vi), next
			mark(prev, cur)
			for nodeOf[cur] < 0 {
				path = append(path, pts[cur])
				// Degree-2 interior: step to the neighbour that is not prev.
				var nxt int32 = -1
				for _, w := range adj.neighbors(cur) {
					if w != prev {
						nxt = w
						break
					}
				}
				if nxt < 0 {
					break // dead end; degree data inconsistent, stop
				}
				mark(cur, nxt)
				prev, cur = cur, nxt
			}
			if nodeOf[cur] >= 0 {
				path = append(path, pts[cur])
				g.addSegment(int(nodeOf[vi]), int(nodeOf[cur]), path, false)
			}
		}
	}

	// Pure cycles: rings whose every pixel has degree 2 contain no node;
	// break each by promoting an arbitrary pixel to a node and tracing
	// the ring as a self-loop (cut later by spanningCut).
	for vi := range pts {
		if adj.deg[vi] != 2 || nodeOf[vi] >= 0 {
			continue
		}
		// Already traced as part of a segment?
		nb := adj.neighbors(int32(vi))
		if seen(int32(vi), nb[0]) && seen(int32(vi), nb[1]) {
			continue
		}
		nodeOf[vi] = int32(len(g.Nodes))
		g.Nodes = append(g.Nodes, Node{P: pts[vi]})
		path := []imaging.Point{pts[vi]}
		prev, cur := int32(vi), nb[0]
		mark(prev, cur)
		for cur != int32(vi) {
			path = append(path, pts[cur])
			var nxt int32 = -1
			for _, w := range adj.neighbors(cur) {
				if w != prev {
					nxt = w
					break
				}
			}
			if nxt < 0 {
				break
			}
			mark(cur, nxt)
			prev, cur = cur, nxt
		}
		path = append(path, pts[vi])
		g.addSegment(int(nodeOf[vi]), int(nodeOf[vi]), path, false)
	}
}

func (g *Graph) addSegment(a, b int, path []imaging.Point, bridge bool) int {
	si := len(g.Segments)
	g.Segments = append(g.Segments, Segment{A: a, B: b, Path: path, Bridge: bridge})
	g.dead = append(g.dead, false)
	// A self-loop contributes 2 to its node's degree, so it is listed
	// twice; unlink removes one occurrence at a time.
	g.Nodes[a].Segs = append(g.Nodes[a].Segs, si)
	g.Nodes[b].Segs = append(g.Nodes[b].Segs, si)
	return si
}

// addBridges synthesises candidate reconnection edges between every pair of
// nodes in *different* pixel-connected pieces that lie within radius of
// each other. The pixel path of a bridge is a straight Bresenham line.
func (g *Graph) addBridges(radius float64) {
	// Union-find over current segments to know existing pieces.
	uf := newUnionFind(len(g.Nodes))
	for _, s := range g.Segments {
		uf.union(s.A, s.B)
	}
	for i := 0; i < len(g.Nodes); i++ {
		for j := i + 1; j < len(g.Nodes); j++ {
			if uf.find(i) == uf.find(j) {
				continue
			}
			pi, pj := g.Nodes[i].P, g.Nodes[j].P
			dx, dy := float64(pi.X-pj.X), float64(pi.Y-pj.Y)
			if math.Sqrt(dx*dx+dy*dy) > radius {
				continue
			}
			line := bresenham(pi, pj)
			g.addSegment(i, j, line, true)
			g.Stats.Bridges++
		}
	}
}

// spanningCut keeps a spanning forest of the segment multigraph. With max
// true (the paper's choice) segments are considered longest-first, so every
// cycle is cut at its SHORTEST member; with max false the opposite
// (ablation). A rejected segment is not discarded: its far end is detached
// onto a fresh end node one pixel short of the old attachment — the "green
// dot" separation of Figure 3(b) — leaving a dangling branch for the
// pruning step to judge.
func (g *Graph) spanningCut(max bool) {
	order := make([]int, len(g.Segments))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := g.Segments[order[a]].Len(), g.Segments[order[b]].Len()
		if max {
			return la > lb
		}
		return la < lb
	})
	uf := newUnionFind(len(g.Nodes))
	for _, si := range order {
		s := &g.Segments[si]
		if uf.union(s.A, s.B) {
			continue // tree edge, kept intact
		}
		// Would close a loop: cut by detaching end B.
		g.Stats.LoopsCut++
		g.detach(si)
	}
}

// detach separates segment si from its B node, re-attaching it to a fresh
// end node at the pixel just before B on the path. Segments of length < 3
// (nothing between the nodes) are removed outright.
func (g *Graph) detach(si int) {
	s := &g.Segments[si]
	if s.Len() < 3 {
		g.removeSegment(si)
		return
	}
	// Unlink from B.
	g.unlink(s.B, si)
	s.Path = s.Path[:len(s.Path)-1]
	ni := len(g.Nodes)
	g.Nodes = append(g.Nodes, Node{P: s.Path[len(s.Path)-1], Segs: []int{si}})
	s.B = ni
}

func (g *Graph) unlink(node, seg int) {
	list := g.Nodes[node].Segs
	for i, v := range list {
		if v == seg {
			g.Nodes[node].Segs = append(list[:i], list[i+1:]...)
			return
		}
	}
}

func (g *Graph) removeSegment(si int) {
	s := g.Segments[si]
	g.unlink(s.A, si)
	g.unlink(s.B, si)
	g.dead[si] = true
}

// Degree returns the number of live segments incident to node i (a
// self-loop would count twice, but the build invariant forbids them).
func (g *Graph) Degree(i int) int { return len(g.Nodes[i].Segs) }

// Kind classifies node i by its current degree.
func (g *Graph) Kind(i int) NodeKind {
	switch g.Degree(i) {
	case 0:
		return KindIsolated
	case 1:
		return KindEnd
	case 2:
		return KindChain
	default:
		return KindJunction
	}
}

// Endpoints returns the indices of all end nodes (degree 1).
func (g *Graph) Endpoints() []int {
	var out []int
	for i := range g.Nodes {
		if g.Degree(i) == 1 {
			out = append(out, i)
		}
	}
	return out
}

// Junctions returns the indices of all junction nodes (degree >= 3).
func (g *Graph) Junctions() []int {
	var out []int
	for i := range g.Nodes {
		if g.Degree(i) >= 3 {
			out = append(out, i)
		}
	}
	return out
}

// LiveSegments returns the indices of all segments that have not been
// removed.
func (g *Graph) LiveSegments() []int {
	var out []int
	for i := range g.Segments {
		if !g.dead[i] {
			out = append(out, i)
		}
	}
	return out
}

// TotalLength returns the summed pixel count of all live segments
// (shared node pixels counted once per incident segment).
func (g *Graph) TotalLength() int {
	n := 0
	for i, s := range g.Segments {
		if !g.dead[i] {
			n += s.Len()
		}
	}
	return n
}

// Compact drops dead segments and renumbers; node slots are preserved.
func (g *Graph) Compact() {
	remap := make([]int, len(g.Segments))
	live := g.Segments[:0]
	liveDead := g.dead[:0]
	for i := range g.Segments {
		if g.dead[i] {
			remap[i] = -1
			continue
		}
		remap[i] = len(live)
		live = append(live, g.Segments[i])
		liveDead = append(liveDead, false)
	}
	g.Segments = live
	g.dead = liveDead
	for ni := range g.Nodes {
		segs := g.Nodes[ni].Segs[:0]
		for _, si := range g.Nodes[ni].Segs {
			if remap[si] >= 0 {
				segs = append(segs, remap[si])
			}
		}
		g.Nodes[ni].Segs = segs
	}
}

// ToBinary rasterises the live skeleton back into a binary image.
func (g *Graph) ToBinary() *imaging.Binary {
	out := imaging.NewBinary(g.W, g.H)
	for i, s := range g.Segments {
		if g.dead[i] {
			continue
		}
		for _, p := range s.Path {
			if p.In(g.W, g.H) {
				out.Set(p.X, p.Y, 1)
			}
		}
	}
	for i := range g.Nodes {
		if g.Degree(i) > 0 {
			p := g.Nodes[i].P
			if p.In(g.W, g.H) {
				out.Set(p.X, p.Y, 1)
			}
		}
	}
	return out
}

// IsForest verifies the loop-free invariant: the live segment set contains
// no cycle.
func (g *Graph) IsForest() bool {
	uf := newUnionFind(len(g.Nodes))
	for i, s := range g.Segments {
		if g.dead[i] {
			continue
		}
		if !uf.union(s.A, s.B) {
			return false
		}
	}
	return true
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("skelgraph{nodes=%d segments=%d endpoints=%d junctions=%d len=%d}",
		len(g.Nodes), len(g.LiveSegments()), len(g.Endpoints()), len(g.Junctions()), g.TotalLength())
}

// unionFind is a standard disjoint-set with path halving and union by size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// union merges the sets of a and b, reporting whether they were distinct.
func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	return true
}

// bresenham returns the pixel line from a to b inclusive.
func bresenham(a, b imaging.Point) []imaging.Point {
	var out []imaging.Point
	dx := abs(b.X - a.X)
	dy := -abs(b.Y - a.Y)
	sx, sy := 1, 1
	if a.X > b.X {
		sx = -1
	}
	if a.Y > b.Y {
		sy = -1
	}
	err := dx + dy
	x, y := a.X, a.Y
	for {
		out = append(out, imaging.Point{X: x, Y: y})
		if x == b.X && y == b.Y {
			return out
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x += sx
		}
		if e2 <= dx {
			err += dx
			y += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
