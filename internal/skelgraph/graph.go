// Package skelgraph converts a raw thinning result into the simplified
// skeleton graph of Section 3 of the paper:
//
//  1. the thinned pixel set becomes a graph (8-adjacency, with redundant
//     diagonal links suppressed),
//  2. "adjacent junction vertices" — vertices with more than one junction
//     vertex among their eight neighbours — are removed, capping every
//     degree at 4 and breaking lines around junction clusters,
//  3. a MAXIMUM spanning tree over the resulting segments (with short
//     bridge edges re-connecting the broken lines) cuts every loop, and
//  4. noisy branches shorter than a threshold are pruned, strictly one
//     branch at a time so a true branch next to a noisy one survives
//     (Figure 4).
//
// The graph is represented in contracted form: nodes are the distinguished
// pixels (endpoints, junctions, isolated pixels and cut points) and each
// segment carries the full pixel path between its two nodes, so the
// original geometry is never lost and the skeleton can be rasterised back
// into an image.
package skelgraph

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"repro/internal/imaging"
)

// DefaultPruneLen is the paper's noisy-branch threshold: "If the branch
// consists of less than 10 vertices, it might be a noisy (redundant)
// branch and needs to be deleted."
const DefaultPruneLen = 10

// DefaultBridgeRadius is the maximum Euclidean distance over which two
// broken-line endpoints may be re-joined after adjacent-junction-vertex
// removal. Removal deletes at most a 1-pixel rim around a junction
// cluster, so 3 pixels of slack is enough in practice.
const DefaultBridgeRadius = 3.0

// ErrEmptySkeleton reports that the input image had no foreground pixels.
var ErrEmptySkeleton = errors.New("skelgraph: empty skeleton")

// NodeKind classifies a node of the contracted skeleton graph.
type NodeKind int

// Node kinds. Kinds reflect the CURRENT degree of the node and are kept up
// to date by the mutating operations.
const (
	// KindEnd is a node with exactly one incident segment (a limb tip).
	KindEnd NodeKind = iota + 1
	// KindJunction has three or more incident segments (a body-part
	// intersection, e.g. "head and hand" per the paper).
	KindJunction
	// KindIsolated has no incident segments.
	KindIsolated
	// KindChain has exactly two incident segments; it appears where a
	// loop cut or a bridge left a degree-2 node that was once
	// distinguished.
	KindChain
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case KindEnd:
		return "end"
	case KindJunction:
		return "junction"
	case KindIsolated:
		return "isolated"
	case KindChain:
		return "chain"
	default:
		return "unknown-kind"
	}
}

// Node is a distinguished skeleton pixel.
type Node struct {
	// P is the pixel position.
	P imaging.Point
	// Segs lists indices into Graph.Segments of the incident live
	// segments.
	Segs []int
}

// Segment is a maximal pixel path between two nodes. Path[0] is node A's
// pixel and Path[len-1] is node B's pixel; interior pixels have degree 2.
type Segment struct {
	// A and B are node indices; A == B only transiently during
	// construction (self-loops are cut before Build returns).
	A, B int
	// Path is the full pixel path including both node pixels.
	Path []imaging.Point
	// Bridge marks a reconnection edge synthesised after
	// adjacent-junction-vertex removal rather than traced from pixels.
	Bridge bool
}

// Len returns the number of pixels of the segment, the "vertices" count
// the paper's pruning rule speaks of.
func (s *Segment) Len() int { return len(s.Path) }

// Graph is the contracted skeleton graph. After Build it is always a
// forest (loop-free); mutating operations preserve that invariant.
type Graph struct {
	// Nodes holds the distinguished pixels. Node indices are stable;
	// removed nodes keep their slot but have no incident segments.
	Nodes []Node
	// Segments holds the live segments. Removed segments are excised
	// from the slice by Compact; during mutation they are marked dead.
	Segments []Segment
	// W, H are the dimensions of the source image, kept so the graph
	// can be rasterised back.
	W, H int

	// Stats records the repairs Build applied; see BuildStats.
	Stats BuildStats

	dead []bool // parallel to Segments; true = removed

	// scr is the frame arena this graph was built from (nil when the
	// graph owns its memory). When set, every mutating operation and
	// path query draws its working buffers from the arena instead of
	// allocating, and the graph itself lives inside the arena.
	scr *Scratch
}

// BuildStats counts the Section 3 repairs Build performed on one
// skeleton. The pipeline's observability layer aggregates these into
// the pipeline.junctions_merged / pipeline.loops_cut health counters:
// persistent jumps mean the thinning stage is handing over much noisier
// skeletons than usual.
type BuildStats struct {
	// JunctionsRemoved is the number of adjacent junction vertices
	// deleted by the step-2 simplification.
	JunctionsRemoved int
	// Bridges is the number of reconnection edges synthesised after
	// junction removal.
	Bridges int
	// LoopsCut is the number of segments the spanning-tree step
	// rejected (each one closed a loop and was detached or removed).
	LoopsCut int
}

// Options configures Build.
type Options struct {
	// RemoveAdjacentJunctions applies step 2 (the paper's
	// simplification). On by default.
	RemoveAdjacentJunctions bool
	// MaxSpanning selects the maximum spanning tree of step 3; when
	// false a minimum spanning tree is used instead (ablation — the
	// paper argues max is required).
	MaxSpanning bool
	// BridgeRadius bounds reconnection distance; <= 0 disables bridges.
	BridgeRadius float64
}

// Option mutates Options.
type Option func(*Options)

// WithAdjacentJunctionRemoval toggles step 2.
func WithAdjacentJunctionRemoval(v bool) Option {
	return func(o *Options) { o.RemoveAdjacentJunctions = v }
}

// WithMaxSpanning toggles maximum (true) versus minimum (false) spanning
// tree loop cutting.
func WithMaxSpanning(v bool) Option { return func(o *Options) { o.MaxSpanning = v } }

// WithBridgeRadius overrides the reconnection radius.
func WithBridgeRadius(r float64) Option { return func(o *Options) { o.BridgeRadius = r } }

// pixelAdj is the raw pixel graph in fixed-stride adjacency form: pixel
// v's neighbours are nbr[8v : 8v+deg[v]], in the imaging.Neighbors8 scan
// order. The flat layout replaces the per-pixel []int32 slices that used
// to dominate the per-frame allocation count (one allocation per skeleton
// pixel); now the whole graph costs two allocations regardless of size.
type pixelAdj struct {
	nbr []int32
	deg []uint8
}

// neighbors returns pixel v's adjacency list.
func (a *pixelAdj) neighbors(v int32) []int32 {
	return a.nbr[8*int(v) : 8*int(v)+int(a.deg[v])]
}

// pixelAdjacency builds the raw pixel graph: for every foreground pixel its
// adjacent foreground pixels under 8-connectivity, with a diagonal link
// suppressed when the two pixels already share an orthogonal 2-path (the
// same reduction used by the thinning metrics; it prevents phantom
// triangle cycles at corners).
func pixelAdjacency(skel *imaging.Binary, sc *Scratch) (idx []int32, pts []imaging.Point, adj pixelAdj) {
	if sc != nil {
		idx = grabInt32(sc.idx, len(skel.Pix))
		sc.idx = idx
		pts = sc.pts[:0]
	} else {
		idx = make([]int32, len(skel.Pix)) //slj:alloc-ok nil-scratch fallback for one-shot callers; arena callers take grabInt32
	}
	for i := range idx {
		idx[i] = -1
	}
	for y := 0; y < skel.H; y++ {
		for x := 0; x < skel.W; x++ {
			if skel.Pix[y*skel.W+x] != 0 {
				idx[y*skel.W+x] = int32(len(pts))
				pts = append(pts, imaging.Point{X: x, Y: y})
			}
		}
	}
	at := func(x, y int) bool {
		return x >= 0 && x < skel.W && y >= 0 && y < skel.H && skel.Pix[y*skel.W+x] != 0
	}
	if sc != nil {
		sc.pts = pts
		adj = pixelAdj{nbr: grabInt32(sc.nbr, 8*len(pts)), deg: grabBytes(sc.deg, len(pts))}
		sc.nbr, sc.deg = adj.nbr, adj.deg
	} else {
		adj = pixelAdj{nbr: make([]int32, 8*len(pts)), deg: make([]uint8, len(pts))} //slj:alloc-ok nil-scratch fallback for one-shot callers; arena callers take the grab helpers
	}
	for vi, p := range pts {
		x, y := p.X, p.Y
		for _, d := range imaging.Neighbors8 {
			xx, yy := x+d.X, y+d.Y
			if !at(xx, yy) {
				continue
			}
			if d.X != 0 && d.Y != 0 {
				// Diagonal: suppress when an orthogonal 2-path exists.
				if at(x+d.X, y) || at(x, y+d.Y) {
					continue
				}
			}
			adj.nbr[8*vi+int(adj.deg[vi])] = idx[yy*skel.W+xx]
			adj.deg[vi]++
		}
	}
	return idx, pts, adj
}

// AdjacentJunctionVertices returns the pixels the paper's simplification
// removes: vertices with more than one junction vertex (degree >= 3) among
// their eight neighbours. Exposed for the Figure 3 experiment.
func AdjacentJunctionVertices(skel *imaging.Binary) []imaging.Point {
	return adjacentJunctionVertices(skel, nil)
}

// adjacentJunctionVertices is AdjacentJunctionVertices drawing its pixel
// graph and result from sc; with a scratch the returned slice aliases
// sc.remove and is valid only until the arena's next use.
func adjacentJunctionVertices(skel *imaging.Binary, sc *Scratch) []imaging.Point {
	idx, pts, adj := pixelAdjacency(skel, sc)
	var out []imaging.Point
	if sc != nil {
		out = sc.remove[:0]
	}
	for _, p := range pts {
		n := 0
		for _, d := range imaging.Neighbors8 {
			xx, yy := p.X+d.X, p.Y+d.Y
			if xx < 0 || xx >= skel.W || yy < 0 || yy >= skel.H {
				continue
			}
			if j := idx[yy*skel.W+xx]; j >= 0 && adj.deg[j] >= 3 {
				n++
			}
		}
		if n > 1 {
			out = append(out, p)
		}
	}
	if sc != nil {
		sc.remove = out
	}
	return out
}

// applyOptions runs the option closures against a copy of o. Passing
// &o to unknown closures forces o to the heap, so the escape is
// quarantined here, off the no-option fast path.
func applyOptions(o Options, opts []Option) Options {
	for _, fn := range opts {
		fn(&o) //slj:alloc-ok caller-supplied option closures; the hot path passes none, so the loop body never runs
	}
	return o
}

// Build converts a thinned binary image into a loop-free contracted
// skeleton graph, applying the Section 3 pipeline (simplify → maximum
// spanning tree loop cut). Pruning is left to the caller (Prune) because
// the paper treats it as a separate, iterative step.
func Build(skel *imaging.Binary, opts ...Option) (*Graph, error) {
	return BuildScratch(skel, nil, opts...)
}

// BuildScratch is Build backed by a per-worker frame arena. With a nil
// scratch it behaves exactly like Build (fresh allocations, caller owns
// the graph); with a scratch the returned graph and everything reachable
// from it live inside the arena and are valid only until the next
// BuildScratch call on the same arena.
//slj:hotpath
func BuildScratch(skel *imaging.Binary, sc *Scratch, opts ...Option) (*Graph, error) {
	o := Options{
		RemoveAdjacentJunctions: true,
		MaxSpanning:             true,
		BridgeRadius:            DefaultBridgeRadius,
	}
	if len(opts) > 0 {
		// Applied out of line so that on the common no-option hot path the
		// Options value never has its address taken and stays on the stack.
		o = applyOptions(o, opts)
	}

	work := skel
	pooled := false
	junctionsRemoved := 0
	if o.RemoveAdjacentJunctions {
		remove := adjacentJunctionVertices(skel, sc)
		junctionsRemoved = len(remove)
		if len(remove) > 0 {
			// The cleaned copy lives only until its adjacency is built;
			// recycle it through the imaging buffer pool.
			work = imaging.GetBinary(skel.W, skel.H)
			copy(work.Pix, skel.Pix)
			pooled = true
			for _, p := range remove {
				work.Set(p.X, p.Y, 0)
			}
		}
	}

	// Reuses the arena's adjacency slabs a second time; the junction scan
	// above is done with them by now.
	_, pts, adj := pixelAdjacency(work, sc)
	if pooled {
		imaging.PutBinary(work)
	}
	if len(pts) == 0 {
		return nil, ErrEmptySkeleton
	}

	g := sc.graph(skel.W, skel.H)
	g.Stats.JunctionsRemoved = junctionsRemoved
	g.traceSegments(pts, adj)
	if o.BridgeRadius > 0 {
		g.addBridges(o.BridgeRadius)
	}
	g.spanningCut(o.MaxSpanning)
	g.mergeChains()
	g.Compact()
	return g, nil
}

// traceSegments contracts the pixel graph into nodes and segments.
func (g *Graph) traceSegments(pts []imaging.Point, adj pixelAdj) {
	// Nodes: every pixel whose degree != 2.
	var nodeOf []int32
	if g.scr != nil {
		nodeOf = grabInt32(g.scr.nodeOf, len(pts))
		g.scr.nodeOf = nodeOf
	} else {
		nodeOf = make([]int32, len(pts)) //slj:alloc-ok nil-scratch fallback for one-shot callers
	}
	for i := range nodeOf {
		nodeOf[i] = -1
	}
	for i := range pts {
		if adj.deg[i] != 2 {
			nodeOf[i] = int32(g.newNode(pts[i]))
		}
	}

	// visited[a] bit k set means the edge from a to its k-th neighbour
	// has been traced. Edges are marked in both directions, so one flat
	// byte per pixel replaces the map of pixel pairs the tracer used to
	// allocate per edge.
	var visited []uint8
	if g.scr != nil {
		visited = grabBytes(g.scr.visited, len(pts))
		g.scr.visited = visited
	} else {
		visited = make([]uint8, len(pts)) //slj:alloc-ok nil-scratch fallback for one-shot callers
	}
	markDir := func(a, b int32) {
		for k, w := range adj.neighbors(a) {
			if w == b {
				visited[a] |= 1 << uint(k)
				return
			}
		}
	}
	mark := func(a, b int32) {
		markDir(a, b)
		markDir(b, a)
	}
	seen := func(a, b int32) bool {
		for k, w := range adj.neighbors(a) {
			if w == b {
				return visited[a]&(1<<uint(k)) != 0
			}
		}
		return false
	}

	// One path buffer serves every segment trace: the tracer builds a
	// path here and addSegment copies it into the segment's own (reused)
	// backing.
	var path []imaging.Point
	if g.scr != nil {
		path = g.scr.pathBuf[:0]
	}

	// Walk each segment starting from every node pixel.
	for vi := range pts {
		if nodeOf[vi] < 0 {
			continue
		}
		for _, next := range adj.neighbors(int32(vi)) {
			if seen(int32(vi), next) {
				continue
			}
			path = append(path[:0], pts[vi])
			prev, cur := int32(vi), next
			mark(prev, cur)
			for nodeOf[cur] < 0 {
				path = append(path, pts[cur])
				// Degree-2 interior: step to the neighbour that is not prev.
				var nxt int32 = -1
				for _, w := range adj.neighbors(cur) {
					if w != prev {
						nxt = w
						break
					}
				}
				if nxt < 0 {
					break // dead end; degree data inconsistent, stop
				}
				mark(cur, nxt)
				prev, cur = cur, nxt
			}
			if nodeOf[cur] >= 0 {
				path = append(path, pts[cur])
				g.addSegment(int(nodeOf[vi]), int(nodeOf[cur]), path, false)
			}
		}
	}

	// Pure cycles: rings whose every pixel has degree 2 contain no node;
	// break each by promoting an arbitrary pixel to a node and tracing
	// the ring as a self-loop (cut later by spanningCut).
	for vi := range pts {
		if adj.deg[vi] != 2 || nodeOf[vi] >= 0 {
			continue
		}
		// Already traced as part of a segment?
		nb := adj.neighbors(int32(vi))
		if seen(int32(vi), nb[0]) && seen(int32(vi), nb[1]) {
			continue
		}
		nodeOf[vi] = int32(g.newNode(pts[vi]))
		path = append(path[:0], pts[vi])
		prev, cur := int32(vi), nb[0]
		mark(prev, cur)
		for cur != int32(vi) {
			path = append(path, pts[cur])
			var nxt int32 = -1
			for _, w := range adj.neighbors(cur) {
				if w != prev {
					nxt = w
					break
				}
			}
			if nxt < 0 {
				break
			}
			mark(cur, nxt)
			prev, cur = cur, nxt
		}
		path = append(path, pts[vi])
		g.addSegment(int(nodeOf[vi]), int(nodeOf[vi]), path, false)
	}
	if g.scr != nil {
		g.scr.pathBuf = path
	}
}

// newNode appends a node for pixel p, reusing the slot's Segs backing
// when the arena still has the slot in capacity. Node slots are never
// copied between indices, so per-slot reuse is safe.
func (g *Graph) newNode(p imaging.Point) int {
	ni := len(g.Nodes)
	if cap(g.Nodes) > ni {
		g.Nodes = g.Nodes[:ni+1]
		n := &g.Nodes[ni]
		n.P = p
		n.Segs = n.Segs[:0]
	} else {
		g.Nodes = append(g.Nodes, Node{P: p})
	}
	return ni
}

// addSegment appends a segment whose path is COPIED from the caller's
// buffer into the slot's own backing array. Per-slot Path reuse demands
// an invariant: no two slots may ever share a backing array, which is why
// Compact swaps segments instead of copying them.
func (g *Graph) addSegment(a, b int, path []imaging.Point, bridge bool) int {
	si := len(g.Segments)
	if cap(g.Segments) > si {
		g.Segments = g.Segments[:si+1]
		s := &g.Segments[si]
		s.A, s.B, s.Bridge = a, b, bridge
		s.Path = append(s.Path[:0], path...)
	} else {
		g.Segments = append(g.Segments, Segment{
			A: a, B: b, Bridge: bridge,
			Path: append(make([]imaging.Point, 0, len(path)), path...), //slj:alloc-ok segment-slot growth while the arena warms; steady frames reuse each slot's Path
		})
	}
	g.dead = append(g.dead, false)
	// A self-loop contributes 2 to its node's degree, so it is listed
	// twice; unlink removes one occurrence at a time.
	g.Nodes[a].Segs = append(g.Nodes[a].Segs, si)
	g.Nodes[b].Segs = append(g.Nodes[b].Segs, si)
	return si
}

// addBridges synthesises candidate reconnection edges between every pair of
// nodes in *different* pixel-connected pieces that lie within radius of
// each other. The pixel path of a bridge is a straight Bresenham line.
func (g *Graph) addBridges(radius float64) {
	// Union-find over current segments to know existing pieces.
	uf := g.newUF(len(g.Nodes))
	for i := range g.Segments {
		uf.union(g.Segments[i].A, g.Segments[i].B)
	}
	var line []imaging.Point
	if g.scr != nil {
		line = g.scr.pathBuf[:0]
	}
	for i := 0; i < len(g.Nodes); i++ {
		for j := i + 1; j < len(g.Nodes); j++ {
			if uf.find(i) == uf.find(j) {
				continue
			}
			pi, pj := g.Nodes[i].P, g.Nodes[j].P
			dx, dy := float64(pi.X-pj.X), float64(pi.Y-pj.Y)
			if math.Sqrt(dx*dx+dy*dy) > radius {
				continue
			}
			line = appendBresenham(line[:0], pi, pj)
			g.addSegment(i, j, line, true)
			g.Stats.Bridges++
		}
	}
	if g.scr != nil {
		g.scr.pathBuf = line
	}
}

// spanningCut keeps a spanning forest of the segment multigraph. With max
// true (the paper's choice) segments are considered longest-first, so every
// cycle is cut at its SHORTEST member; with max false the opposite
// (ablation). A rejected segment is not discarded: its far end is detached
// onto a fresh end node one pixel short of the old attachment — the "green
// dot" separation of Figure 3(b) — leaving a dangling branch for the
// pruning step to judge.
func (g *Graph) spanningCut(max bool) {
	// Order segments by (length, original index) packed into one uint64
	// key: a single slices.Sort over integers replaces the old
	// sort.SliceStable closure (whose reflect-based swapper allocates) and
	// yields the exact same order — the unique low-word index reproduces
	// stability.
	var keys []uint64
	if g.scr != nil {
		keys = g.scr.order[:0]
	}
	for si := range g.Segments {
		l := uint64(uint32(g.Segments[si].Len()))
		if max {
			l = uint64(^uint32(0)) - l // descending by length
		}
		keys = append(keys, l<<32|uint64(uint32(si)))
	}
	slices.Sort(keys)
	if g.scr != nil {
		g.scr.order = keys
	}
	uf := g.newUF(len(g.Nodes))
	for _, k := range keys {
		si := int(uint32(k))
		s := &g.Segments[si]
		if uf.union(s.A, s.B) {
			continue // tree edge, kept intact
		}
		// Would close a loop: cut by detaching end B.
		g.Stats.LoopsCut++
		g.detach(si)
	}
}

// detach separates segment si from its B node, re-attaching it to a fresh
// end node at the pixel just before B on the path. Segments of length < 3
// (nothing between the nodes) are removed outright.
func (g *Graph) detach(si int) {
	s := &g.Segments[si]
	if s.Len() < 3 {
		g.removeSegment(si)
		return
	}
	// Unlink from B.
	g.unlink(s.B, si)
	s.Path = s.Path[:len(s.Path)-1]
	ni := g.newNode(s.Path[len(s.Path)-1])
	g.Nodes[ni].Segs = append(g.Nodes[ni].Segs, si)
	s.B = ni
}

func (g *Graph) unlink(node, seg int) {
	list := g.Nodes[node].Segs
	for i, v := range list {
		if v == seg {
			g.Nodes[node].Segs = append(list[:i], list[i+1:]...)
			return
		}
	}
}

func (g *Graph) removeSegment(si int) {
	s := g.Segments[si]
	g.unlink(s.A, si)
	g.unlink(s.B, si)
	g.dead[si] = true
}

// Degree returns the number of live segments incident to node i (a
// self-loop would count twice, but the build invariant forbids them).
func (g *Graph) Degree(i int) int { return len(g.Nodes[i].Segs) }

// Kind classifies node i by its current degree.
func (g *Graph) Kind(i int) NodeKind {
	switch g.Degree(i) {
	case 0:
		return KindIsolated
	case 1:
		return KindEnd
	case 2:
		return KindChain
	default:
		return KindJunction
	}
}

// Endpoints returns the indices of all end nodes (degree 1).
func (g *Graph) Endpoints() []int {
	var out []int
	for i := range g.Nodes {
		if g.Degree(i) == 1 {
			out = append(out, i)
		}
	}
	return out
}

// Junctions returns the indices of all junction nodes (degree >= 3).
func (g *Graph) Junctions() []int {
	var out []int
	for i := range g.Nodes {
		if g.Degree(i) >= 3 {
			out = append(out, i)
		}
	}
	return out
}

// LiveSegments returns the indices of all segments that have not been
// removed.
func (g *Graph) LiveSegments() []int {
	var out []int
	for i := range g.Segments {
		if !g.dead[i] {
			out = append(out, i)
		}
	}
	return out
}

// TotalLength returns the summed pixel count of all live segments
// (shared node pixels counted once per incident segment).
func (g *Graph) TotalLength() int {
	n := 0
	for i, s := range g.Segments {
		if !g.dead[i] {
			n += s.Len()
		}
	}
	return n
}

// Compact drops dead segments and renumbers; node slots are preserved.
// Live segments are SWAPPED down rather than copied: a copy would leave
// two slots pointing at one Path backing array, which the arena's
// per-slot reuse would then corrupt on a later frame.
func (g *Graph) Compact() {
	var remap []int
	if g.scr != nil {
		remap = grabInts(g.scr.remap, len(g.Segments))
		g.scr.remap = remap
	} else {
		remap = make([]int, len(g.Segments)) //slj:alloc-ok nil-scratch fallback for one-shot callers
	}
	n := 0
	for i := range g.Segments {
		if g.dead[i] {
			remap[i] = -1
			continue
		}
		remap[i] = n
		if n != i {
			g.Segments[n], g.Segments[i] = g.Segments[i], g.Segments[n]
		}
		n++
	}
	g.Segments = g.Segments[:n]
	g.dead = g.dead[:n]
	clear(g.dead)
	for ni := range g.Nodes {
		segs := g.Nodes[ni].Segs[:0]
		for _, si := range g.Nodes[ni].Segs {
			if remap[si] >= 0 {
				segs = append(segs, remap[si])
			}
		}
		g.Nodes[ni].Segs = segs
	}
}

// ToBinary rasterises the live skeleton back into a binary image.
func (g *Graph) ToBinary() *imaging.Binary {
	return g.ToBinaryInto(imaging.NewBinary(g.W, g.H))
}

// ToBinaryInto rasterises the live skeleton into out, which must be a
// zeroed g.W×g.H image (NewBinary, GetBinary, or Binary.Reset provide
// one), and returns out.
func (g *Graph) ToBinaryInto(out *imaging.Binary) *imaging.Binary {
	for i, s := range g.Segments {
		if g.dead[i] {
			continue
		}
		for _, p := range s.Path {
			if p.In(g.W, g.H) {
				out.Set(p.X, p.Y, 1)
			}
		}
	}
	for i := range g.Nodes {
		if g.Degree(i) > 0 {
			p := g.Nodes[i].P
			if p.In(g.W, g.H) {
				out.Set(p.X, p.Y, 1)
			}
		}
	}
	return out
}

// IsForest verifies the loop-free invariant: the live segment set contains
// no cycle.
func (g *Graph) IsForest() bool {
	uf := g.newUF(len(g.Nodes))
	for i, s := range g.Segments {
		if g.dead[i] {
			continue
		}
		if !uf.union(s.A, s.B) {
			return false
		}
	}
	return true
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("skelgraph{nodes=%d segments=%d endpoints=%d junctions=%d len=%d}",
		len(g.Nodes), len(g.LiveSegments()), len(g.Endpoints()), len(g.Junctions()), g.TotalLength())
}

// unionFind is a standard disjoint-set with path halving and union by size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	return (&unionFind{}).reset(n)
}

// reset re-initialises the structure for n elements, reusing its arrays
// when they are large enough.
func (u *unionFind) reset(n int) *unionFind {
	if cap(u.parent) < n {
		u.parent = make([]int, n) //slj:alloc-ok union-find regrow on first use or a larger graph, amortised across frames
		u.size = make([]int, n)
	}
	u.parent = u.parent[:n]
	u.size = u.size[:n]
	for i := range u.parent {
		u.parent[i] = i
		u.size[i] = 1
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// union merges the sets of a and b, reporting whether they were distinct.
func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	return true
}

// appendBresenham appends the pixel line from a to b inclusive onto out.
func appendBresenham(out []imaging.Point, a, b imaging.Point) []imaging.Point {
	dx := abs(b.X - a.X)
	dy := -abs(b.Y - a.Y)
	sx, sy := 1, 1
	if a.X > b.X {
		sx = -1
	}
	if a.Y > b.Y {
		sy = -1
	}
	err := dx + dy
	x, y := a.X, a.Y
	for {
		out = append(out, imaging.Point{X: x, Y: y}) //slj:alloc-ok appends into the caller's arena path buffer, capacity amortised across frames
		if x == b.X && y == b.Y {
			return out
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x += sx
		}
		if e2 <= dx {
			err += dx
			y += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
