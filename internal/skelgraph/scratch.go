// Frame-scratch arena. Building one skeleton graph used to cost ~80
// allocations: the pixel-adjacency slabs, the node/segment slices and
// their per-segment pixel paths, the BFS and union-find arrays, the
// spanning-cut sort order and the Compact remap. A Scratch owns all of
// that memory and is reused frame after frame by one worker, so the
// steady-state Build (and the Prune / key-point queries that follow it)
// allocates nothing.
//
// Contract: a Scratch serves ONE worker at a time — it is not safe for
// concurrent use, exactly like extract.Extractor's buffers. A *Graph
// returned by BuildScratch, and every slice derived from it (PixelPath,
// NodePath, MarkLargestComponent), is owned by the scratch and valid
// only until the next BuildScratch call on the same Scratch; callers
// that need a frame's graph to outlive the next frame must copy what
// they keep. GetScratch/PutScratch recycle whole arenas through a
// sync.Pool with the same pairing discipline as the imaging buffer pool
// (policed by the pooldiscipline analyzer): after PutScratch the arena —
// and any graph built from it — must not be touched again.
package skelgraph

import (
	"sync"

	"repro/internal/imaging"
)

// Scratch is a per-worker frame arena for graph construction. The zero
// value is ready to use; a nil *Scratch is accepted everywhere and means
// "allocate fresh", which is exactly the pre-arena behaviour.
type Scratch struct {
	g Graph // the reused graph; Nodes/Segments slots keep their backing

	// pixel adjacency (pixelAdjacency)
	idx []int32
	pts []imaging.Point
	nbr []int32
	deg []uint8

	// adjacent-junction removal
	remove []imaging.Point

	// segment tracing
	nodeOf  []int32
	visited []uint8
	pathBuf []imaging.Point // one segment's path under construction

	// spanning cut: packed (length, index) sort keys
	order []uint64

	// Compact
	remap []int

	// pruning candidates
	branches []int

	// union-find (loop cut, bridges, components, IsForest)
	uf unionFind

	// NodePath / PixelPath / MarkLargestComponent query buffers
	prevNode  []int
	prevSeg   []int
	queue     []int
	pathNodes []int
	pathSegs  []int
	pathOut   []imaging.Point
	compLen   []int
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch returns a frame arena from the pool. Pair with PutScratch
// when the worker that owns it shuts down; holding one for the lifetime
// of a long-lived worker (annotated //slj:pool-escapes) is also fine —
// an unreturned arena is never unsafe, merely unrecycled.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns an arena to the pool. The caller must not touch the
// arena — or any Graph built from it — afterwards. nil is ignored.
func PutScratch(sc *Scratch) {
	if sc == nil {
		return
	}
	scratchPool.Put(sc)
}

// graph re-aims the arena's graph at a new w×h frame. Node and segment
// slots are truncated, not cleared: newNode and addSegment reuse each
// slot's Segs / Path backing arrays, which is where most of the arena's
// win comes from.
//slj:hotpath
func (sc *Scratch) graph(w, h int) *Graph {
	if sc == nil {
		return &Graph{W: w, H: h} //slj:alloc-ok nil-scratch fallback for one-shot callers
	}
	g := &sc.g
	g.W, g.H = w, h
	g.Stats = BuildStats{}
	g.Nodes = g.Nodes[:0]
	g.Segments = g.Segments[:0]
	g.dead = g.dead[:0]
	g.scr = sc
	return g
}

// grabInt32 resizes buf to n elements, reallocating only on capacity
// growth. Contents are unspecified; callers initialise.
func grabInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n) //slj:alloc-ok arena regrow on first use or a larger frame, amortised across frames
	}
	return buf[:n]
}

// grabInts is grabInt32 for []int.
func grabInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n) //slj:alloc-ok arena regrow on first use or a larger frame, amortised across frames
	}
	return buf[:n]
}

// grabBytes resizes buf to n ZEROED bytes.
func grabBytes(buf []uint8, n int) []uint8 {
	if cap(buf) < n {
		return make([]uint8, n) //slj:alloc-ok arena regrow on first use or a larger frame, amortised across frames
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// grabBools resizes buf to n false entries.
func grabBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// newUF returns a union-find over n elements, reusing the arena's arrays
// when the graph carries one.
func (g *Graph) newUF(n int) *unionFind {
	if g.scr != nil {
		return g.scr.uf.reset(n)
	}
	return newUnionFind(n)
}
