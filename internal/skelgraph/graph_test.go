package skelgraph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/imaging"
	"repro/internal/thinning"
)

func build(t *testing.T, img *imaging.Binary, opts ...Option) *Graph {
	t.Helper()
	g, err := Build(img, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildEmptyImage(t *testing.T) {
	_, err := Build(imaging.NewBinary(8, 8))
	if !errors.Is(err, ErrEmptySkeleton) {
		t.Fatalf("err = %v, want ErrEmptySkeleton", err)
	}
}

func TestBuildLine(t *testing.T) {
	img := imaging.NewBinary(20, 5)
	for x := 2; x < 18; x++ {
		img.Set(x, 2, 1)
	}
	g := build(t, img)
	if got := len(g.LiveSegments()); got != 1 {
		t.Fatalf("segments = %d, want 1", got)
	}
	if got := len(g.Endpoints()); got != 2 {
		t.Fatalf("endpoints = %d, want 2", got)
	}
	if got := len(g.Junctions()); got != 0 {
		t.Fatalf("junctions = %d, want 0", got)
	}
	if g.Segments[g.LiveSegments()[0]].Len() != 16 {
		t.Errorf("segment length = %d, want 16", g.Segments[g.LiveSegments()[0]].Len())
	}
	if !g.IsForest() {
		t.Error("line graph must be a forest")
	}
}

func TestBuildCross(t *testing.T) {
	img := imaging.FromASCII(`
.....#.....
.....#.....
.....#.....
###########
.....#.....
.....#.....
.....#.....
`)
	g := build(t, img)
	if got := len(g.Endpoints()); got != 4 {
		t.Fatalf("endpoints = %d, want 4: %v", got, g)
	}
	if got := len(g.Junctions()); got != 1 {
		t.Fatalf("junctions = %d, want 1: %v", got, g)
	}
	if got := len(g.LiveSegments()); got != 4 {
		t.Fatalf("segments = %d, want 4", got)
	}
	j := g.Junctions()[0]
	if g.Nodes[j].P != (imaging.Point{X: 5, Y: 3}) {
		t.Errorf("junction at %v, want (5,3)", g.Nodes[j].P)
	}
	if g.Degree(j) != 4 {
		t.Errorf("junction degree = %d, want 4", g.Degree(j))
	}
}

func TestBuildRingIsCut(t *testing.T) {
	img := imaging.FromASCII(`
.######.
.#....#.
.#....#.
.######.
`)
	g := build(t, img)
	if !g.IsForest() {
		t.Fatal("ring was not cut into a forest")
	}
	// An open curve remains: exactly 2 endpoints, nearly all pixels kept.
	if got := len(g.Endpoints()); got != 2 {
		t.Fatalf("endpoints = %d, want 2 after loop cut", got)
	}
	kept := g.ToBinary().Count()
	if kept < img.Count()-2 {
		t.Errorf("loop cut destroyed pixels: %d of %d kept", kept, img.Count())
	}
}

func TestLoopWithTailCutKeepsTail(t *testing.T) {
	// A "P" shape: ring plus stem. The loop must be cut; the stem must
	// survive; the result must stay one connected piece.
	img := imaging.FromASCII(`
.#####.
.#...#.
.#...#.
.#####.
.#.....
.#.....
.#.....
`)
	g := build(t, img)
	if !g.IsForest() {
		t.Fatal("not a forest after cut")
	}
	bin := g.ToBinary()
	if bin.At(1, 6) != 1 {
		t.Error("stem tip lost")
	}
	_, comps := imaging.Components(bin, imaging.Connect8)
	if len(comps) != 1 {
		t.Errorf("components = %d, want 1", len(comps))
	}
}

func TestMaxVsMinSpanningCutLocation(t *testing.T) {
	// Theta shape: an outer ring with a chord. Segment lengths differ:
	// the two arcs are long, the chord is short. Max spanning keeps the
	// long arcs and cuts/detaches the short chord; min spanning does the
	// opposite (keeps the chord, cuts a long arc) — the paper's argument
	// for choosing max.
	img := imaging.FromASCII(`
#########
#.......#
#.......#
#########
#.......#
#.......#
#########
`)
	gMax := build(t, img, WithMaxSpanning(true))
	gMin := build(t, img, WithMaxSpanning(false))
	if !gMax.IsForest() || !gMin.IsForest() {
		t.Fatal("spanning cut left a cycle")
	}
	// In the max version the longest surviving intact (uncut) segment
	// set should have a larger total length than in the min version.
	if gMax.TotalLength() < gMin.TotalLength() {
		t.Errorf("max spanning kept less skeleton (%d) than min (%d)",
			gMax.TotalLength(), gMin.TotalLength())
	}
}

func TestAdjacentJunctionVertices(t *testing.T) {
	// A 2x2 block with four lines radiating: every block pixel is a
	// junction adjacent to other junctions.
	img := imaging.FromASCII(`
#....#
.#..#.
..##..
..##..
.#..#.
#....#
`)
	got := AdjacentJunctionVertices(img)
	if len(got) == 0 {
		t.Fatal("expected adjacent junction vertices in a junction cluster")
	}
	// A plain cross has a single junction with no junction neighbours.
	cross := imaging.FromASCII(`
..#..
..#..
#####
..#..
..#..
`)
	if got := AdjacentJunctionVertices(cross); len(got) != 0 {
		t.Fatalf("plain cross should have none, got %v", got)
	}
}

func TestJunctionClusterStaysConnectedViaBridges(t *testing.T) {
	// X with a thick centre: junction-vertex removal punches out the
	// centre; bridges must reconnect the four arms into one component.
	img := imaging.FromASCII(`
#....#
.#..#.
..##..
..##..
.#..#.
#....#
`)
	g := build(t, img)
	if !g.IsForest() {
		t.Fatal("not a forest")
	}
	comps := g.Components()
	if len(comps) != 1 {
		t.Fatalf("components = %d, want 1 (bridges should reconnect)", len(comps))
	}
}

func TestBridgeDisabled(t *testing.T) {
	img := imaging.FromASCII(`
#....#
.#..#.
..##..
..##..
.#..#.
#....#
`)
	g := build(t, img, WithBridgeRadius(0))
	if len(g.Components()) < 2 {
		t.Skip("junction removal did not disconnect this shape; bridge test not applicable")
	}
}

func TestPruneRemovesNoisyBranch(t *testing.T) {
	// Long horizontal line with a 4-pixel spur: the spur must go.
	img := imaging.FromASCII(`
....................
####################
..........#.........
..........#.........
..........#.........
`)
	g := build(t, img)
	if got := len(g.Endpoints()); got != 3 {
		t.Fatalf("pre-prune endpoints = %d, want 3", got)
	}
	n := g.Prune(DefaultPruneLen)
	if n != 1 {
		t.Fatalf("pruned %d branches, want 1", n)
	}
	if got := len(g.Endpoints()); got != 2 {
		t.Fatalf("post-prune endpoints = %d, want 2", got)
	}
	if g.ToBinary().At(10, 4) != 0 {
		t.Error("spur tip still present")
	}
	if g.ToBinary().At(0, 1) != 1 || g.ToBinary().At(19, 1) != 1 {
		t.Error("main line damaged by pruning")
	}
}

func TestPruneKeepsLongBranches(t *testing.T) {
	img := imaging.FromASCII(`
............#.......
############|#######
............#.......
`)
	// Build a Y with all branches >= threshold: nothing should be pruned.
	img = imaging.NewBinary(40, 30)
	for x := 0; x < 40; x++ {
		img.Set(x, 15, 1)
	}
	for y := 0; y < 15; y++ {
		img.Set(20, y, 1)
	}
	g := build(t, img)
	if n := g.Prune(DefaultPruneLen); n != 0 {
		t.Fatalf("pruned %d branches from an all-long skeleton", n)
	}
}

func TestPruneOneAtATimeVsNaive(t *testing.T) {
	// The Figure 4 scenario: a degree-3 junction carrying a 4-pixel noisy
	// spur and an 8-pixel true branch (both below the 10 threshold), on a
	// long trunk. One-at-a-time keeps the true branch (after the spur is
	// removed the junction merges away and the true branch becomes part
	// of a long segment); naive deletes both.
	mk := func() *imaging.Binary {
		img := imaging.NewBinary(40, 20)
		for x := 0; x < 30; x++ {
			img.Set(x, 10, 1) // trunk, 30 px
		}
		for i := 1; i <= 3; i++ {
			img.Set(29, 10-i, 1) // noisy spur: 4 vertices incl. junction
		}
		for i := 1; i <= 7; i++ {
			img.Set(29+i, 10+i, 1) // true branch: 8 vertices incl. junction
		}
		return img
	}

	gGood := build(t, mk())
	gGood.Prune(DefaultPruneLen)
	goodBin := gGood.ToBinary()
	if goodBin.At(36, 17) != 1 {
		t.Error("one-at-a-time pruning lost the true branch (Figure 4(c) violated)")
	}
	if goodBin.At(29, 7) != 0 {
		t.Error("one-at-a-time pruning kept the noisy spur")
	}

	gBad := build(t, mk())
	gBad.PruneNaive(DefaultPruneLen)
	badBin := gBad.ToBinary()
	if badBin.At(36, 17) != 0 {
		t.Error("naive pruning unexpectedly kept the true branch; ablation broken")
	}
}

func TestNodePathAndPixelPath(t *testing.T) {
	img := imaging.NewBinary(30, 30)
	for x := 0; x < 30; x++ {
		img.Set(x, 15, 1)
	}
	for y := 0; y < 15; y++ {
		img.Set(15, y, 1)
	}
	g := build(t, img)
	ends := g.Endpoints()
	if len(ends) != 3 {
		t.Fatalf("endpoints = %d, want 3", len(ends))
	}
	// Path between the two horizontal tips passes through the junction.
	var left, right int = -1, -1
	for _, e := range ends {
		switch g.Nodes[e].P {
		case imaging.Point{X: 0, Y: 15}:
			left = e
		case imaging.Point{X: 29, Y: 15}:
			right = e
		}
	}
	if left < 0 || right < 0 {
		t.Fatalf("tips not found among endpoints")
	}
	nodes, segs, ok := g.NodePath(left, right)
	if !ok {
		t.Fatal("no path between tips")
	}
	if len(nodes) != 3 || len(segs) != 2 {
		t.Fatalf("path nodes=%d segs=%d, want 3/2", len(nodes), len(segs))
	}
	px, ok := g.PixelPath(left, right)
	if !ok {
		t.Fatal("no pixel path")
	}
	if len(px) != 30 {
		t.Fatalf("pixel path length = %d, want 30", len(px))
	}
	if px[0] != (imaging.Point{X: 0, Y: 15}) || px[len(px)-1] != (imaging.Point{X: 29, Y: 15}) {
		t.Error("pixel path endpoints wrong")
	}
	// Consecutive pixels must be 8-adjacent.
	for i := 1; i < len(px); i++ {
		dx, dy := abs(px[i].X-px[i-1].X), abs(px[i].Y-px[i-1].Y)
		if dx > 1 || dy > 1 || (dx == 0 && dy == 0) {
			t.Fatalf("pixel path discontinuity at %d: %v -> %v", i, px[i-1], px[i])
		}
	}
}

func TestNodePathSameNode(t *testing.T) {
	img := imaging.NewBinary(10, 3)
	for x := 0; x < 10; x++ {
		img.Set(x, 1, 1)
	}
	g := build(t, img)
	e := g.Endpoints()[0]
	nodes, segs, ok := g.NodePath(e, e)
	if !ok || len(nodes) != 1 || len(segs) != 0 {
		t.Fatal("self path should be trivial")
	}
}

func TestNodePathDisconnected(t *testing.T) {
	img := imaging.NewBinary(30, 10)
	for x := 0; x < 8; x++ {
		img.Set(x, 2, 1)
		img.Set(x+20, 7, 1)
	}
	g := build(t, img, WithBridgeRadius(0))
	ends := g.Endpoints()
	if len(ends) != 4 {
		t.Fatalf("endpoints = %d, want 4", len(ends))
	}
	// Find two endpoints in different components.
	var a, b = -1, -1
	for _, e := range ends {
		if g.Nodes[e].P.Y == 2 {
			a = e
		} else {
			b = e
		}
	}
	if _, _, ok := g.NodePath(a, b); ok {
		t.Error("path reported across disconnected components")
	}
}

func TestLongestPath(t *testing.T) {
	// T-shape: longest path is the horizontal bar (20) not via the
	// short stem (5).
	img := imaging.NewBinary(20, 10)
	for x := 0; x < 20; x++ {
		img.Set(x, 0, 1)
	}
	for y := 1; y < 6; y++ {
		img.Set(10, y, 1)
	}
	g := build(t, img)
	path, from, to, ok := g.LongestPath()
	if !ok {
		t.Fatal("no longest path")
	}
	if len(path) != 20 {
		t.Fatalf("longest path length = %d, want 20", len(path))
	}
	ys := []int{g.Nodes[from].P.Y, g.Nodes[to].P.Y}
	if ys[0] != 0 || ys[1] != 0 {
		t.Errorf("longest path terminals at y=%v, want both 0", ys)
	}
}

func TestToBinaryRoundTripSimple(t *testing.T) {
	img := imaging.NewBinary(15, 15)
	for i := 0; i < 15; i++ {
		img.Set(i, 7, 1)
	}
	g := build(t, img)
	if !g.ToBinary().Equal(img) {
		t.Error("simple line did not round-trip through the graph")
	}
}

func TestGraphString(t *testing.T) {
	img := imaging.NewBinary(10, 3)
	for x := 0; x < 10; x++ {
		img.Set(x, 1, 1)
	}
	g := build(t, img)
	if s := g.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[NodeKind]string{
		KindEnd: "end", KindJunction: "junction", KindIsolated: "isolated",
		KindChain: "chain", NodeKind(0): "unknown-kind",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String = %q, want %q", k, k.String(), want)
		}
	}
}

func TestBuildForestProperty(t *testing.T) {
	// For random thinned blobs the result must always be a loop-free
	// graph whose rasterisation stays within image bounds.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		img := imaging.NewBinary(48, 48)
		for k := 0; k < 4; k++ {
			a := imaging.Pointf{X: 5 + r.Float64()*38, Y: 5 + r.Float64()*38}
			b := imaging.Pointf{X: 5 + r.Float64()*38, Y: 5 + r.Float64()*38}
			imaging.FillCapsule(img, a, b, 2+r.Float64()*3)
		}
		skel := thinning.Thin(img, thinning.ZhangSuen)
		if skel.Count() == 0 {
			return true
		}
		g, err := Build(skel)
		if err != nil {
			return errors.Is(err, ErrEmptySkeleton)
		}
		if !g.IsForest() {
			return false
		}
		g.Prune(DefaultPruneLen)
		if !g.IsForest() {
			return false
		}
		for _, si := range g.LiveSegments() {
			for _, p := range g.Segments[si].Path {
				if !p.In(g.W, g.H) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPruneTerminates(t *testing.T) {
	// Pruning on a star of short branches must terminate and leave at
	// most a path (prune never deletes the final segment pair since a
	// 2-branch star merges into one end-end segment).
	img := imaging.NewBinary(21, 21)
	for _, d := range []imaging.Point{{X: 1, Y: 0}, {X: 0, Y: 1}, {X: -1, Y: 0}, {X: 0, Y: -1}} {
		for i := 1; i <= 5; i++ {
			img.Set(10+d.X*i, 10+d.Y*i, 1)
		}
	}
	img.Set(10, 10, 1)
	g := build(t, img)
	g.Prune(DefaultPruneLen)
	if !g.IsForest() {
		t.Fatal("not a forest after pruning star")
	}
	// A 4-star of 5-px branches: prune removes one, merges two into a
	// line of 11, removes... final state must have >= 1 live segment.
	if len(g.LiveSegments()) == 0 {
		t.Error("pruning consumed the entire skeleton")
	}
}

func TestHumanSilhouettePipeline(t *testing.T) {
	// End-to-end Section 3: silhouette → thin → graph → prune. The
	// result must be a single-component forest with >= 5 endpoints
	// (head, two hands, two feet) for a spread-eagle figure.
	b := imaging.NewBinary(80, 120)
	imaging.FillDisc(b, imaging.Pointf{X: 40, Y: 15}, 9)
	imaging.FillCapsule(b, imaging.Pointf{X: 40, Y: 24}, imaging.Pointf{X: 40, Y: 70}, 7)
	imaging.FillCapsule(b, imaging.Pointf{X: 40, Y: 34}, imaging.Pointf{X: 12, Y: 55}, 4)
	imaging.FillCapsule(b, imaging.Pointf{X: 40, Y: 34}, imaging.Pointf{X: 68, Y: 55}, 4)
	imaging.FillCapsule(b, imaging.Pointf{X: 37, Y: 70}, imaging.Pointf{X: 25, Y: 112}, 5)
	imaging.FillCapsule(b, imaging.Pointf{X: 43, Y: 70}, imaging.Pointf{X: 55, Y: 112}, 5)
	skel := thinning.Thin(b, thinning.ZhangSuen)
	g := build(t, skel)
	g.Prune(DefaultPruneLen)
	if !g.IsForest() {
		t.Fatal("not a forest")
	}
	if comps := g.Components(); len(comps) != 1 {
		t.Fatalf("components = %d, want 1", len(comps))
	}
	ends := g.Endpoints()
	if len(ends) < 5 {
		t.Errorf("endpoints = %d, want >= 5 (head, hands, feet)", len(ends))
	}
	// The longest path should run roughly head-to-foot: vertical span
	// must cover most of the figure.
	path, _, _, ok := g.LongestPath()
	if !ok {
		t.Fatal("no longest path")
	}
	minY, maxY := 1000, -1
	for _, p := range path {
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	if maxY-minY < 70 {
		t.Errorf("longest path vertical span = %d, want >= 70", maxY-minY)
	}
}

func TestKindClassification(t *testing.T) {
	img := imaging.NewBinary(30, 30)
	for x := 0; x < 30; x++ {
		img.Set(x, 15, 1)
	}
	for y := 0; y < 15; y++ {
		img.Set(15, y, 1)
	}
	g := build(t, img)
	ends, juncs := g.Endpoints(), g.Junctions()
	if len(ends) == 0 || len(juncs) == 0 {
		t.Fatal("T-shape should have ends and a junction")
	}
	if g.Kind(ends[0]) != KindEnd {
		t.Errorf("endpoint kind = %v", g.Kind(ends[0]))
	}
	if g.Kind(juncs[0]) != KindJunction {
		t.Errorf("junction kind = %v", g.Kind(juncs[0]))
	}
}

func TestWithAdjacentJunctionRemovalOff(t *testing.T) {
	img := imaging.FromASCII(`
#....#
.#..#.
..##..
..##..
.#..#.
#....#
`)
	g, err := Build(img, WithAdjacentJunctionRemoval(false))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsForest() {
		t.Error("not a forest without junction removal")
	}
}

func TestCompactAfterPrune(t *testing.T) {
	img := imaging.NewBinary(30, 10)
	for x := 0; x < 30; x++ {
		img.Set(x, 5, 1)
	}
	for i := 1; i <= 3; i++ {
		img.Set(15, 5-i, 1) // short spur
	}
	g := build(t, img)
	before := len(g.Segments)
	g.Prune(DefaultPruneLen)
	if len(g.Segments) >= before {
		t.Errorf("Compact did not shrink segments: %d -> %d", before, len(g.Segments))
	}
	// Every node's incident segment indices must be valid post-compact.
	for ni := range g.Nodes {
		for _, si := range g.Nodes[ni].Segs {
			if si < 0 || si >= len(g.Segments) {
				t.Fatalf("node %d references dead segment %d", ni, si)
			}
			s := g.Segments[si]
			if s.A != ni && s.B != ni {
				t.Fatalf("node %d lists segment %d that does not touch it", ni, si)
			}
		}
	}
}
