package skelgraph

import "repro/internal/imaging"

// A branch, per the paper, is "a simple path from an end vertex to a
// junction vertex". These operations implement the Figure 4 pruning step.

// branch identifies a prunable segment: one end of kind End, the other of
// kind Junction, shorter than the threshold.
func (g *Graph) shortBranches(minLen int) []int {
	var out []int
	if g.scr != nil {
		out = g.scr.branches[:0]
	}
	for si := range g.Segments {
		if g.dead[si] {
			continue
		}
		s := &g.Segments[si]
		if s.Len() >= minLen {
			continue
		}
		da, db := g.Degree(s.A), g.Degree(s.B)
		if (da == 1 && db >= 3) || (db == 1 && da >= 3) {
			out = append(out, si)
		}
	}
	if g.scr != nil {
		g.scr.branches = out
	}
	return out
}

// PruneOnce deletes the single shortest noisy branch (length < minLen,
// running from an end vertex to a junction vertex), then re-merges any
// junction that dropped to degree 2 so the surviving branches join into
// longer segments. It reports whether a branch was deleted.
//
// Deleting one branch at a time is the paper's explicit rule: "Only one
// branch can be deleted at a time. Otherwise, both the noisy branch and
// the correct branch could be removed at the same time."
func (g *Graph) PruneOnce(minLen int) bool {
	cands := g.shortBranches(minLen)
	if len(cands) == 0 {
		return false
	}
	best := cands[0]
	for _, si := range cands[1:] {
		if g.Segments[si].Len() < g.Segments[best].Len() {
			best = si
		}
	}
	g.removeSegment(best)
	g.mergeChains()
	return true
}

// Prune repeatedly applies PruneOnce until no noisy branch remains and
// returns the number of branches deleted.
func (g *Graph) Prune(minLen int) int {
	n := 0
	for g.PruneOnce(minLen) {
		n++
	}
	g.Compact()
	return n
}

// PruneNaive deletes ALL branches shorter than minLen simultaneously — the
// Figure 4(b) failure mode kept for the ablation experiment. It returns
// the number of branches deleted.
func (g *Graph) PruneNaive(minLen int) int {
	cands := g.shortBranches(minLen)
	for _, si := range cands {
		g.removeSegment(si)
	}
	g.mergeChains()
	g.Compact()
	return len(cands)
}

// mergeChains joins the two segments of every degree-2 node into one,
// eliminating chain nodes introduced by pruning or loop cutting. The
// merged path is assembled in a side buffer (s1's own Path is one of the
// inputs) and then copied back into s1's slot, preserving the one-backing-
// array-per-slot invariant the arena relies on.
func (g *Graph) mergeChains() {
	var buf []imaging.Point
	if g.scr != nil {
		buf = g.scr.pathBuf[:0]
	}
	for ni := range g.Nodes {
		for g.Degree(ni) == 2 {
			s1i, s2i := g.Nodes[ni].Segs[0], g.Nodes[ni].Segs[1]
			if s1i == s2i {
				break // self-loop; forbidden by the forest invariant, but stay safe
			}
			buf = appendPathTo(buf[:0], &g.Segments[s1i], ni)   // ends at ni
			buf = appendPathFromSkip(buf, &g.Segments[s2i], ni) // continues from ni
			a := otherEnd(g.Segments[s1i], ni)
			b := otherEnd(g.Segments[s2i], ni)
			// Replace s1 with the merged segment, kill s2 and the node.
			g.unlink(a, s1i)
			g.unlink(ni, s1i)
			g.unlink(ni, s2i)
			g.unlink(b, s2i)
			g.dead[s2i] = true
			s1 := &g.Segments[s1i]
			s1.A, s1.B = a, b
			s1.Bridge = s1.Bridge && g.Segments[s2i].Bridge
			s1.Path = append(s1.Path[:0], buf...)
			g.Nodes[a].Segs = append(g.Nodes[a].Segs, s1i)
			g.Nodes[b].Segs = append(g.Nodes[b].Segs, s1i)
		}
	}
	if g.scr != nil {
		g.scr.pathBuf = buf
	}
}

func otherEnd(s Segment, n int) int {
	if s.A == n {
		return s.B
	}
	return s.A
}

// appendPathTo appends s's path onto dst oriented so it ENDS at node n.
func appendPathTo(dst []imaging.Point, s *Segment, n int) []imaging.Point {
	if s.B == n { //slj:alloc-ok appends into the caller's arena path buffer, amortised across frames
		return append(dst, s.Path...)
	}
	for i := len(s.Path) - 1; i >= 0; i-- {
		dst = append(dst, s.Path[i]) //slj:alloc-ok appends into the caller's arena path buffer, amortised across frames
	}
	return dst
}

// appendPathFromSkip appends s's path onto dst oriented so it STARTS at
// node n, omitting n's own pixel (the caller already emitted it).
func appendPathFromSkip(dst []imaging.Point, s *Segment, n int) []imaging.Point {
	if s.A == n { //slj:alloc-ok appends into the caller's arena path buffer, amortised across frames
		return append(dst, s.Path[1:]...)
	}
	for i := len(s.Path) - 2; i >= 0; i-- {
		dst = append(dst, s.Path[i]) //slj:alloc-ok appends into the caller's arena path buffer, amortised across frames
	}
	return dst
}

// NodePath returns the unique tree path between nodes a and b as a node
// sequence plus the segments traversed, or ok=false when they lie in
// different components. On a scratch-backed graph the returned slices
// alias the arena and are valid only until its next path query.
func (g *Graph) NodePath(a, b int) (nodes []int, segs []int, ok bool) {
	if a == b {
		return []int{a}, nil, true //slj:alloc-ok degenerate a == b query; per-frame path walks query distinct nodes
	}
	sc := g.scr
	var prevNode, prevSeg, queue []int
	if sc != nil {
		prevNode = grabInts(sc.prevNode, len(g.Nodes))
		sc.prevNode = prevNode
		prevSeg = grabInts(sc.prevSeg, len(g.Nodes))
		sc.prevSeg = prevSeg
		queue = sc.queue[:0]
	} else {
		prevNode = make([]int, len(g.Nodes)) //slj:alloc-ok nil-scratch fallback for one-shot callers
		prevSeg = make([]int, len(g.Nodes))
	}
	for i := range prevNode {
		prevNode[i] = -1
		prevSeg[i] = -1
	}
	prevNode[a] = a
	queue = append(queue, a)
bfs:
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, si := range g.Nodes[cur].Segs {
			if g.dead[si] {
				continue
			}
			nxt := otherEnd(g.Segments[si], cur)
			if prevNode[nxt] != -1 {
				continue
			}
			prevNode[nxt] = cur
			prevSeg[nxt] = si
			if nxt == b {
				break bfs
			}
			queue = append(queue, nxt)
		}
	}
	if sc != nil {
		sc.queue = queue
	}
	if prevNode[b] == -1 {
		return nil, nil, false
	}
	if sc != nil {
		nodes = sc.pathNodes[:0]
		segs = sc.pathSegs[:0]
	}
	for cur := b; cur != a; cur = prevNode[cur] {
		nodes = append(nodes, cur)
		segs = append(segs, prevSeg[cur])
	}
	nodes = append(nodes, a)
	reverseInts(nodes)
	reverseInts(segs)
	if sc != nil {
		sc.pathNodes = nodes
		sc.pathSegs = segs
	}
	return nodes, segs, true
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// PixelPath returns the full pixel path between nodes a and b, or ok=false
// when disconnected. The path starts at a's pixel and ends at b's pixel.
// On a scratch-backed graph the slice aliases the arena and is valid only
// until its next path query.
func (g *Graph) PixelPath(a, b int) ([]imaging.Point, bool) {
	nodes, segs, ok := g.NodePath(a, b)
	if !ok {
		return nil, false
	}
	var out []imaging.Point
	if g.scr != nil {
		out = g.scr.pathOut[:0]
	}
	out = append(out, g.Nodes[a].P)
	for i, si := range segs {
		out = appendPathFromSkip(out, &g.Segments[si], nodes[i])
	}
	if g.scr != nil {
		g.scr.pathOut = out
	}
	return out, true
}

// LongestPath returns the pixel path of the tree diameter (longest simple
// path by pixel count) of the largest component, plus its two terminal
// node indices. For a human skeleton this is typically the head-to-foot
// line. Returns ok=false on a graph with no live segments.
func (g *Graph) LongestPath() (path []imaging.Point, from, to int, ok bool) {
	live := g.LiveSegments()
	if len(live) == 0 {
		return nil, 0, 0, false
	}
	// Double sweep: farthest node from an arbitrary start, then farthest
	// from that. Weight = pixel length of segments. Correct on trees.
	start := g.Segments[live[0]].A
	u, _ := g.farthestFrom(start)
	v, _ := g.farthestFrom(u)
	p, pok := g.PixelPath(u, v)
	if !pok {
		return nil, 0, 0, false
	}
	return p, u, v, true
}

// farthestFrom returns the node at maximum pixel distance from start in
// start's component, measured along tree paths.
func (g *Graph) farthestFrom(start int) (node, dist int) {
	dists := make([]int, len(g.Nodes))
	for i := range dists {
		dists[i] = -1
	}
	dists[start] = 0
	queue := []int{start}
	best, bestD := start, 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, si := range g.Nodes[cur].Segs {
			if g.dead[si] {
				continue
			}
			nxt := otherEnd(g.Segments[si], cur)
			if dists[nxt] != -1 {
				continue
			}
			dists[nxt] = dists[cur] + g.Segments[si].Len() - 1
			if dists[nxt] > bestD {
				best, bestD = nxt, dists[nxt]
			}
			queue = append(queue, nxt)
		}
	}
	return best, bestD
}

// Components returns the node sets of each connected component that has at
// least one live segment or is an isolated node with degree > 0 (i.e.
// nodes stranded with no segments are skipped).
func (g *Graph) Components() [][]int {
	uf := g.newUF(len(g.Nodes))
	for i, s := range g.Segments {
		if !g.dead[i] {
			uf.union(s.A, s.B)
		}
	}
	groups := make(map[int][]int)
	// Collect components in order of their lowest node index so the
	// result (and every tie-break downstream, e.g. in
	// LargestComponentNodes) is deterministic.
	var roots []int
	for i := range g.Nodes {
		if g.Degree(i) == 0 {
			continue
		}
		r := uf.find(i)
		if _, seen := groups[r]; !seen {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// MarkLargestComponent writes membership of the largest component — the
// one with the greatest summed live-segment pixel length, ties broken by
// lowest node index, the same ordering LargestComponentNodes uses — into a
// node-indexed mask and returns it. The provided mask is reused when it
// has capacity (pass nil to allocate fresh); nodes with no live segment
// are never marked, and an all-false mask means the graph has no live
// segments.
func (g *Graph) MarkLargestComponent(mask []bool) []bool {
	n := len(g.Nodes)
	if cap(mask) < n {
		mask = make([]bool, n) //slj:alloc-ok mask regrow when the caller's mask is too small, amortised across frames
	} else {
		mask = mask[:n]
		clear(mask)
	}
	uf := g.newUF(n)
	for si := range g.Segments {
		if !g.dead[si] {
			uf.union(g.Segments[si].A, g.Segments[si].B)
		}
	}
	// Summed live pixel length per component root.
	var total []int
	if g.scr != nil {
		total = grabInts(g.scr.compLen, n)
		g.scr.compLen = total
		for i := range total {
			total[i] = 0
		}
	} else {
		total = make([]int, n) //slj:alloc-ok nil-scratch fallback for one-shot callers
	}
	for si := range g.Segments {
		if !g.dead[si] {
			total[uf.find(g.Segments[si].A)] += g.Segments[si].Len()
		}
	}
	// Scanning nodes in ascending order and replacing only on strictly
	// greater totals reproduces Components'/LargestComponentNodes'
	// lowest-node-index tie-break.
	best, bestLen := -1, -1
	for i := 0; i < n; i++ {
		if g.Degree(i) == 0 {
			continue
		}
		if r := uf.find(i); total[r] > bestLen {
			best, bestLen = r, total[r]
		}
	}
	if best < 0 {
		return mask
	}
	for i := 0; i < n; i++ {
		if g.Degree(i) > 0 && uf.find(i) == best {
			mask[i] = true
		}
	}
	return mask
}

// LargestComponentNodes returns the node indices of the component with the
// greatest total pixel length, or nil when the graph is empty.
func (g *Graph) LargestComponentNodes() []int {
	comps := g.Components()
	var best []int
	bestLen := -1
	for _, nodes := range comps {
		inComp := make(map[int]bool, len(nodes))
		for _, n := range nodes {
			inComp[n] = true
		}
		total := 0
		for si, s := range g.Segments {
			if !g.dead[si] && inComp[s.A] {
				total += s.Len()
			}
		}
		if total > bestLen {
			bestLen, best = total, nodes
		}
	}
	return best
}
