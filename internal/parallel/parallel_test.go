package parallel

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-5); got != runtime.NumCPU() {
		t.Fatalf("Workers(-5) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
}

func TestMapOrderedMatchesSequential(t *testing.T) {
	items := make([]int, 257)
	for i := range items {
		items[i] = i * 3
	}
	sq := func(i, v int) (int, error) { return v*v + i, nil }
	want, err := MapOrdered(1, items, sq)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8, 64, 1000} {
		got, err := MapOrdered(w, items, sq)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestMapOrderedEmpty(t *testing.T) {
	out, err := MapOrdered(8, nil, func(i int, v int) (int, error) { return v, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

func TestMapOrderedLowestError(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	// Items 7 and 40 both fail; the reported error must be item 7's
	// regardless of scheduling.
	for _, w := range []int{1, 2, 8} {
		_, err := MapOrdered(w, items, func(i, v int) (int, error) {
			if i == 7 || i == 40 {
				return 0, fmt.Errorf("item %d failed", i)
			}
			return v, nil
		})
		if err == nil || err.Error() != "item 7 failed" {
			t.Fatalf("workers=%d: err = %v, want item 7 failed", w, err)
		}
	}
}

func TestMapOrderedStopsEarly(t *testing.T) {
	var calls atomic.Int64
	items := make([]int, 10000)
	_, err := MapOrdered(4, items, func(i, v int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, errors.New("boom")
		}
		return v, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := calls.Load(); n >= int64(len(items)) {
		t.Fatalf("expected early stop, but all %d items ran", n)
	}
}

// sliceSource returns a next func yielding items then io.EOF, counting
// pulls in *pulls.
func sliceSource(items []int, pulls *atomic.Int64) func() (int, error) {
	var pos atomic.Int64
	return func() (int, error) {
		pulls.Add(1)
		i := int(pos.Add(1)) - 1
		if i >= len(items) {
			return 0, io.EOF
		}
		return items[i], nil
	}
}

func TestMapSourceMatchesSequential(t *testing.T) {
	items := make([]int, 257)
	for i := range items {
		items[i] = i * 3
	}
	sq := func(i, v int) (int, error) { return v*v + i, nil }
	var pulls atomic.Int64
	want, err := MapSource(1, sliceSource(items, &pulls), sq)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(items) {
		t.Fatalf("sequential yielded %d results, want %d", len(want), len(items))
	}
	for _, w := range []int{2, 4, 8, 64} {
		got, err := MapSource(w, sliceSource(items, &pulls), sq)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d (pull order must index results)", w, i, got[i], want[i])
			}
		}
	}
}

func TestMapSourceEmpty(t *testing.T) {
	for _, w := range []int{1, 8} {
		var pulls atomic.Int64
		out, err := MapSource(w, sliceSource(nil, &pulls), func(i, v int) (int, error) { return v, nil })
		if err != nil || len(out) != 0 {
			t.Fatalf("workers=%d: got %v, %v", w, out, err)
		}
	}
}

func TestMapSourceLowestError(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, w := range []int{1, 2, 8} {
		var pulls atomic.Int64
		_, err := MapSource(w, sliceSource(items, &pulls), func(i, v int) (int, error) {
			if i == 7 || i == 40 {
				return 0, fmt.Errorf("item %d failed", i)
			}
			return v, nil
		})
		if err == nil || err.Error() != "item 7 failed" {
			t.Fatalf("workers=%d: err = %v, want item 7 failed", w, err)
		}
	}
}

// TestMapSourceSourceErrorStopsPulling pins the single-pull-after-error
// contract: once next fails, the source is never pulled again and the
// source's own error wins over any later fn failure.
func TestMapSourceSourceErrorStopsPulling(t *testing.T) {
	for _, w := range []int{1, 8} {
		var pulls atomic.Int64
		next := func() (int, error) {
			n := pulls.Add(1)
			if n >= 4 {
				return 0, errors.New("source torn")
			}
			return int(n), nil
		}
		_, err := MapSource(w, next, func(i, v int) (int, error) { return v, nil })
		if err == nil || err.Error() != "source torn" {
			t.Fatalf("workers=%d: err = %v, want source torn", w, err)
		}
		if n := pulls.Load(); n != 4 {
			t.Fatalf("workers=%d: %d pulls, want exactly 4 (no pulls after the source error)", w, n)
		}
	}
}

// TestMapSourceBoundsCheckouts pins the memory bound: at most `workers`
// items are checked out — pulled but not yet mapped — at any moment.
func TestMapSourceBoundsCheckouts(t *testing.T) {
	const workers = 4
	items := make([]int, 64)
	var pulls, live, peak atomic.Int64
	_, err := MapSource(workers, sliceSource(items, &pulls), func(i, v int) (int, error) {
		n := live.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer live.Add(-1)
		runtime.Gosched()
		return v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p < 1 || p > workers {
		t.Fatalf("peak live items = %d, want in [1,%d]", p, workers)
	}
}

func TestForEach(t *testing.T) {
	items := []int{1, 2, 3, 4, 5, 6, 7, 8}
	var sum atomic.Int64
	if err := ForEach(4, items, func(_ int, v int) error {
		sum.Add(int64(v))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 36 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestPipelineOrderAndOverlap(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	out, err := Pipeline(4, items,
		func(_ int, v int) (int, error) { return v + 1, nil },
		func(_ int, v int) (int, error) { return v * 2, nil },
		func(_ int, v int) (int, error) { return v - 3, nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if want := (i+1)*2 - 3; v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestPipelineNoStages(t *testing.T) {
	out, err := Pipeline(2, []int{5, 6})
	if err != nil || len(out) != 2 || out[0] != 5 || out[1] != 6 {
		t.Fatalf("got %v, %v", out, err)
	}
}

func TestPipelineError(t *testing.T) {
	items := make([]int, 50)
	out, err := Pipeline(2, items,
		func(i int, v int) (int, error) {
			if i == 30 {
				return 0, errors.New("stage1 item 30")
			}
			return v, nil
		},
		func(i int, v int) (int, error) {
			if i == 12 {
				return 0, errors.New("stage2 item 12")
			}
			return v, nil
		},
	)
	// Item 12 is the lowest failing index: its stage-2 error is what a
	// sequential item-by-item run would have hit first.
	if err == nil || err.Error() != "stage2 item 12" {
		t.Fatalf("err = %v, want stage2 item 12", err)
	}
	// Partial results survive the error so callers can release resources
	// owned by completed items: the slice keeps full length, every slot at
	// or past the failing index is the zero value.
	if len(out) != len(items) {
		t.Fatalf("len(out) = %d, want %d", len(out), len(items))
	}
	for i := 12; i < len(out); i++ {
		if out[i] != 0 {
			t.Fatalf("out[%d] = %d, want zero at/after failing index", i, out[i])
		}
	}
}

func TestPipelineErrorPartialResults(t *testing.T) {
	// Items that fully traversed every stage before the failure keep
	// their slot — the caller can walk them to release owned resources.
	items := make([]int, 20)
	for i := range items {
		items[i] = i
	}
	out, err := Pipeline(2, items,
		func(i int, v int) (int, error) {
			if i == 10 {
				return 0, errors.New("boom")
			}
			return v + 100, nil
		},
	)
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(out) != len(items) {
		t.Fatalf("len(out) = %d, want %d", len(out), len(items))
	}
	// Stage 1 is a single in-order goroutine, so items 0..9 completed and
	// were emitted before the failure at index 10 was recorded.
	for i := 0; i < 10; i++ {
		if out[i] != i+100 {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], i+100)
		}
	}
	for i := 10; i < len(out); i++ {
		if out[i] != 0 {
			t.Fatalf("out[%d] = %d, want zero", i, out[i])
		}
	}
}

func TestPipelineStatefulStage(t *testing.T) {
	// A stage is a single goroutine, so per-stage state needs no locking
	// and observes items strictly in order.
	items := make([]int, 100)
	for i := range items {
		items[i] = 1
	}
	running := 0
	out, err := Pipeline(3, items, func(i int, v int) (int, error) {
		running += v // cumulative sum: depends on strict ordering
		return running, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i+1)
		}
	}
}
