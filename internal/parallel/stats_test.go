package parallel

import (
	"testing"
	"time"

	"repro/internal/obs"
)

func TestMapOrderedCountsItems(t *testing.T) {
	st := &obs.ParallelStats{}
	SetStats(st)
	defer SetStats(nil)

	items := make([]int, 23)
	for _, w := range []int{1, 4} {
		before := st.Items.Value()
		_, err := MapOrdered(w, items, func(i int, v int) (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if got := st.Items.Value() - before; got != int64(len(items)) {
			t.Errorf("workers=%d: claimed %d items, want %d", w, got, len(items))
		}
	}
	if st.Workers.Value() < 4 {
		t.Errorf("worker high-water = %d, want >= 4", st.Workers.Value())
	}
}

func TestPipelineStallAccounting(t *testing.T) {
	st := &obs.ParallelStats{}
	SetStats(st)
	defer SetStats(nil)

	// A slow first stage starves the second: the downstream stage must
	// accumulate stall time while item order stays intact.
	items := []int{0, 1, 2, 3}
	slow := func(i int, v int) (int, error) { time.Sleep(2 * time.Millisecond); return v * 10, nil }
	fast := func(i int, v int) (int, error) { return v + 1, nil }
	out, err := Pipeline(2, items, slow, fast)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*10+1 {
			t.Errorf("out[%d] = %d, want %d", i, v, i*10+1)
		}
	}
	if st.StallNS.Value() <= 0 {
		t.Errorf("stall_ns = %d, want > 0 (fast stage starved by slow stage)", st.StallNS.Value())
	}
}
