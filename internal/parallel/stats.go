package parallel

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// stats is the package-wide instrument block. MapOrdered/Pipeline are
// free generic functions, so there is no receiver to hang a scope on;
// instead the engine installs its scope's block once at construction.
// A nil pointer (the default) keeps every hot loop on the exact
// pre-instrumentation code path. This is the one sanctioned piece of
// package-level mutable state in the concurrency substrate (like the
// imaging pool counters): a single atomic pointer, last installer wins.
var stats atomic.Pointer[obs.ParallelStats]

// SetStats installs (or, with nil, removes) the worker instrument
// block. Not intended to be raced with in-flight MapOrdered/Pipeline
// calls — workers snapshot the pointer when they start.
func SetStats(st *obs.ParallelStats) { stats.Store(st) }

// recv receives from src, attributing blocked time to st.StallNS. Only
// time actually spent blocked counts: when a token is ready the fast
// select path returns without reading the clock.
func recv[T any](src <-chan token[T], st *obs.ParallelStats) (token[T], bool) {
	select {
	case t, ok := <-src:
		return t, ok
	default:
	}
	t0 := time.Now()
	t, ok := <-src
	st.StallNS.Add(time.Since(t0).Nanoseconds())
	return t, ok
}
