// Package parallel provides the small concurrency substrate the pipeline
// is parallelised with: a worker pool whose results come back in input
// order (MapOrdered), its streaming counterpart over a pull source of
// unknown length (MapSource) and a bounded-channel stage pipeline
// (Pipeline).
//
// Both primitives are deterministic by construction: MapOrdered returns
// results indexed exactly like its input and, on failure, reports the
// error of the LOWEST failing index (the error the sequential loop would
// have hit first); Pipeline runs every stage as a single goroutine over a
// FIFO channel, so items traverse stages strictly in order. Callers that
// pass workers <= 1 get a plain inline loop — byte-identical behaviour to
// the pre-parallel code path, with no goroutines spawned.
package parallel

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count request: values >= 1 are returned as
// given, anything else (0, negative) resolves to runtime.NumCPU().
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.NumCPU()
}

// MapOrdered applies fn to every item on a pool of `workers` goroutines
// (resolved via Workers) and returns the results in input order. When the
// resolved worker count is 1 — or there is at most one item — fn runs
// inline on the calling goroutine, one item at a time, preserving the
// exact sequential code path.
//
// On error the remaining items are abandoned as soon as possible and the
// error of the lowest failing index is returned, matching what a
// sequential loop over the same items would report.
func MapOrdered[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	w := Workers(workers)
	if w > len(items) {
		w = len(items)
	}
	st := stats.Load()
	if w <= 1 {
		for i, item := range items {
			if st != nil {
				st.Items.Inc()
			}
			r, err := fn(i, item)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	if st != nil {
		st.Workers.Max(int64(w))
	}

	var (
		next   atomic.Int64 // next item index to claim
		stop   atomic.Bool  // set once any worker fails
		mu     sync.Mutex
		errIdx = -1
		firstE error
		wg     sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, firstE = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) || stop.Load() {
					return
				}
				if st != nil {
					st.Items.Inc()
				}
				r, err := fn(i, items[i])
				if err != nil {
					fail(i, err)
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	if errIdx >= 0 {
		return nil, firstE
	}
	return out, nil
}

// MapSource is MapOrdered over a stream whose length is unknown up
// front: next is pulled serially (each call guarded by an internal
// lock, so sources need no locking of their own) and returns io.EOF
// after the last item; fn fans out over `workers` goroutines; results
// come back indexed in pull order. At most `workers` items are checked
// out — pulled but not yet mapped — at any moment, so a source that
// materialises state per item (e.g. a decoded video clip) is bounded to
// worker-count live items instead of the whole stream.
//
// Determinism matches MapOrdered: a resolved worker count of 1 runs the
// exact sequential pull-then-apply loop inline, and on failure the
// error of the lowest failing index is returned — whether it came from
// next or from fn — which is the error the sequential loop would have
// hit first. After next returns an error the source is not pulled
// again.
func MapSource[T, R any](workers int, next func() (T, error), fn func(i int, item T) (R, error)) ([]R, error) {
	w := Workers(workers)
	st := stats.Load()
	if w <= 1 {
		var out []R
		for i := 0; ; i++ {
			item, err := next()
			if err == io.EOF {
				return out, nil
			}
			if err != nil {
				return nil, err
			}
			if st != nil {
				st.Items.Inc()
			}
			r, err := fn(i, item)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	if st != nil {
		st.Workers.Max(int64(w))
	}

	var (
		mu     sync.Mutex // guards next, idx, out growth/stores and done
		idx    int
		out    []R
		done   bool        // source exhausted or errored; stop pulling
		stop   atomic.Bool // set once any worker fails
		errIdx = -1
		firstE error
		wg     sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, firstE = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				mu.Lock()
				if done {
					mu.Unlock()
					return
				}
				item, err := next()
				if err == io.EOF {
					done = true //slj:sync-ok guarded by mu
					mu.Unlock()
					return
				}
				i := idx
				if err != nil {
					done = true //slj:sync-ok guarded by mu
					mu.Unlock()
					fail(i, err)
					return
				}
				idx++ //slj:sync-ok guarded by mu
				var zero R
				out = append(out, zero) //slj:sync-ok guarded by mu; reserves slot i, len(out) == idx
				mu.Unlock()
				if st != nil {
					st.Items.Inc()
				}
				r, err := fn(i, item)
				if err != nil {
					fail(i, err)
					return
				}
				mu.Lock()
				out[i] = r
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if errIdx >= 0 {
		return nil, firstE
	}
	return out, nil
}

// ForEach is MapOrdered for side-effecting work without a result value.
func ForEach[T any](workers int, items []T, fn func(i int, item T) error) error {
	_, err := MapOrdered(workers, items, func(i int, item T) (struct{}, error) {
		return struct{}{}, fn(i, item)
	})
	return err
}

// token carries one item through a Pipeline together with its index.
type token[T any] struct {
	i int
	v T
}

// Pipeline streams items through a chain of stages connected by bounded
// channels of capacity `bound` (values < 1 are clamped to 1). Every stage
// runs as ONE goroutine applying its function in item order, so stage k
// can work on item i while stage k-1 is already on item i+1 — the stages
// overlap in time, memory in flight is bounded by bound*len(stages)
// items, and the output order (and therefore the result) is deterministic.
//
// On a stage error the pipeline drains and the error of the lowest item
// index that failed in the EARLIEST stage to touch it is returned — the
// error a sequential stage-by-stage loop would have hit first. The
// results slice is still returned alongside the error: items that
// traversed every stage before the failure keep their slot (items at or
// past the failing index, and the failing item itself, are zero values).
// Callers whose stage outputs own resources — pooled buffers, say —
// must walk the partial results and release them; callers that only
// want the values should ignore the slice when err != nil.
func Pipeline[T any](bound int, items []T, stages ...func(i int, v T) (T, error)) ([]T, error) {
	if len(stages) == 0 || len(items) == 0 {
		out := make([]T, len(items))
		copy(out, items)
		return out, nil
	}
	if bound < 1 {
		bound = 1
	}

	var (
		mu     sync.Mutex
		errIdx = -1
		pipErr error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, pipErr = i, err
		}
		mu.Unlock()
	}

	// Source feeds the first channel.
	source := make(chan token[T], bound)
	go func() {
		defer close(source)
		for i, v := range items {
			source <- token[T]{i, v}
		}
	}()
	in := source

	// One goroutine per stage. A stage that sees an item index at or
	// beyond a recorded error index skips the work (the result can no
	// longer matter) but keeps draining so upstream stages never block.
	// With stats installed the receive is routed through recv (stall
	// attribution) and the input backlog's high-water mark is kept;
	// neither changes item order or stage behaviour.
	st := stats.Load()
	if st != nil {
		st.Workers.Max(int64(len(stages)))
	}
	for _, stage := range stages {
		stage := stage
		src := in
		dst := make(chan token[T], bound)
		go func() {
			defer close(dst)
			for {
				var t token[T]
				var ok bool
				if st != nil {
					st.QueueDepth.Max(int64(len(src)))
					t, ok = recv(src, st)
				} else {
					t, ok = <-src
				}
				if !ok {
					return
				}
				mu.Lock()
				dead := errIdx >= 0 && t.i >= errIdx
				mu.Unlock()
				if dead {
					continue
				}
				v, err := stage(t.i, t.v)
				if err != nil {
					fail(t.i, err)
					continue
				}
				dst <- token[T]{t.i, v}
			}
		}()
		in = dst
	}

	out := make([]T, len(items))
	for t := range in {
		out[t.i] = t.v
	}
	if errIdx >= 0 {
		return out, pipErr
	}
	return out, nil
}
