// Package ga reimplements the baseline of the paper's previous work
// (Hsu et al., ICDCSW 2006): fitting a predefined stick model to the
// extracted silhouette with a genetic algorithm. The paper replaces it
// with thinning because "the size of each stick needs to be given by the
// user beforehand [and] the search process of the genetic algorithm is
// very time-consuming"; this package exists so both halves of that claim
// can be benchmarked (experiment GA-BASE).
//
// A chromosome is the full side-view body configuration: hip root
// position, body height, and the seven joint angles of pose.JointAngles.
// Fitness is the intersection-over-union between the rendered model
// silhouette and the observed silhouette.
package ga

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/imaging"
	"repro/internal/keypoint"
	"repro/internal/pose"
	"repro/internal/synth"
)

// Default GA parameters, sized so a fit takes a few hundred thousand
// pixel-overlap evaluations — amply demonstrating the paper's cost
// argument while still converging on clean silhouettes.
const (
	DefaultPopulation  = 60
	DefaultGenerations = 40
	DefaultElite       = 4
	DefaultTournament  = 3
	DefaultCrossover   = 0.9
	DefaultMutation    = 0.25
)

// Errors.
var (
	// ErrEmptyTarget reports a silhouette with no foreground to fit.
	ErrEmptyTarget = errors.New("ga: empty target silhouette")
	// ErrBadConfig reports invalid GA parameters.
	ErrBadConfig = errors.New("ga: invalid config")
)

// Config tunes the search. Zero-valued fields take the package defaults.
type Config struct {
	// Population is the number of chromosomes per generation.
	Population int
	// Generations is the number of evolution steps.
	Generations int
	// Elite is how many best chromosomes survive unchanged.
	Elite int
	// Tournament is the selection tournament size.
	Tournament int
	// CrossoverRate is the probability of blending two parents.
	CrossoverRate float64
	// MutationRate is the per-gene mutation probability.
	MutationRate float64
	// Seed drives the random search.
	Seed int64
	// Shape and Proportions define the rendered stick model; the paper's
	// complaint that "the size of each stick needs to be given by the
	// user beforehand" is embodied here — the GA cannot work without
	// them.
	Shape       synth.Shape
	Proportions pose.Proportions
}

func (c Config) withDefaults() Config {
	if c.Population == 0 {
		c.Population = DefaultPopulation
	}
	if c.Generations == 0 {
		c.Generations = DefaultGenerations
	}
	if c.Elite == 0 {
		c.Elite = DefaultElite
	}
	if c.Tournament == 0 {
		c.Tournament = DefaultTournament
	}
	if c.CrossoverRate == 0 {
		c.CrossoverRate = DefaultCrossover
	}
	if c.MutationRate == 0 {
		c.MutationRate = DefaultMutation
	}
	if c.Shape == (synth.Shape{}) {
		c.Shape = synth.DefaultShape()
	}
	if c.Proportions == (pose.Proportions{}) {
		c.Proportions = pose.DefaultProportions()
	}
	return c
}

func (c Config) validate() error {
	if c.Population < 2 {
		return fmt.Errorf("%w: population %d", ErrBadConfig, c.Population)
	}
	if c.Generations < 1 {
		return fmt.Errorf("%w: generations %d", ErrBadConfig, c.Generations)
	}
	if c.Elite < 0 || c.Elite >= c.Population {
		return fmt.Errorf("%w: elite %d of population %d", ErrBadConfig, c.Elite, c.Population)
	}
	if c.Tournament < 1 || c.Tournament > c.Population {
		return fmt.Errorf("%w: tournament %d", ErrBadConfig, c.Tournament)
	}
	if c.CrossoverRate < 0 || c.CrossoverRate > 1 || c.MutationRate < 0 || c.MutationRate > 1 {
		return fmt.Errorf("%w: rates out of [0,1]", ErrBadConfig)
	}
	return nil
}

// Chromosome is one candidate body configuration.
type Chromosome struct {
	// Root is the hip position.
	Root imaging.Pointf
	// Height is the body height in pixels.
	Height float64
	// Angles is the joint configuration.
	Angles pose.JointAngles
}

// genes flattens the chromosome for crossover/mutation.
func (c Chromosome) genes() [10]float64 {
	return [10]float64{
		c.Root.X, c.Root.Y, c.Height,
		c.Angles.TorsoLean, c.Angles.Neck, c.Angles.Shoulder, c.Angles.Elbow,
		c.Angles.Hip, c.Angles.Knee, c.Angles.Ankle,
	}
}

func fromGenes(g [10]float64) Chromosome {
	return Chromosome{
		Root:   imaging.Pointf{X: g[0], Y: g[1]},
		Height: g[2],
		Angles: pose.JointAngles{
			TorsoLean: g[3], Neck: g[4], Shoulder: g[5], Elbow: g[6],
			Hip: g[7], Knee: g[8], Ankle: g[9],
		},
	}
}

// geneScale gives each gene's mutation step (pixels for position/height,
// radians for angles).
var geneScale = [10]float64{8, 8, 6, 0.25, 0.2, 0.5, 0.4, 0.4, 0.5, 0.4}

// Skeleton returns the joint positions of the chromosome.
func (c Chromosome) Skeleton(p pose.Proportions) pose.Skeleton2D {
	return pose.Compute(c.Root, c.Height, c.Angles, p)
}

// Result reports a completed fit.
type Result struct {
	// Best is the fittest chromosome found.
	Best Chromosome
	// Fitness is its silhouette IoU in [0,1].
	Fitness float64
	// Evaluations counts fitness evaluations performed (the cost metric
	// for the GA-vs-thinning comparison).
	Evaluations int
	// History records the best fitness per generation.
	History []float64
}

// KeyPoints derives the five key points from the fitted stick model, so
// the GA baseline plugs into the same feature encoding as the thinning
// pipeline.
func (r Result) KeyPoints(p pose.Proportions) keypoint.KeyPoints {
	return keypoint.FromSkeleton2D(r.Best.Skeleton(p))
}

// Fit searches for the stick-model configuration that best explains the
// target silhouette.
func Fit(target *imaging.Binary, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	bounds := target.ForegroundBounds()
	if bounds.Empty() {
		return Result{}, ErrEmptyTarget
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	// Initial population seeded around the silhouette geometry: root
	// near the lower-middle of the bounding box, height near the box
	// diagonal, angles sampled around the 22 canonical poses (a strong
	// but fair prior — the original system also knew it was looking at
	// long-jump poses).
	cx := float64(bounds.Min.X+bounds.Max.X) / 2
	cy := float64(bounds.Min.Y) + 0.55*float64(bounds.Dy())
	hEst := float64(bounds.Dy()) * 1.15
	all := pose.AllPoses()

	pop := make([]Chromosome, cfg.Population)
	for i := range pop {
		base := pose.Angles(all[r.Intn(len(all))])
		pop[i] = mutate(Chromosome{
			Root:   imaging.Pointf{X: cx + r.NormFloat64()*6, Y: cy + r.NormFloat64()*6},
			Height: hEst * (0.9 + r.Float64()*0.3),
			Angles: base,
		}, r, 1.0)
	}

	evals := 0
	fitness := make([]float64, cfg.Population)
	evaluate := func() {
		for i := range pop {
			fitness[i] = iou(target, pop[i], cfg)
			evals++
		}
	}
	evaluate()

	res := Result{}
	order := make([]int, cfg.Population)
	for gen := 0; gen < cfg.Generations; gen++ {
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return fitness[order[a]] > fitness[order[b]] })
		best := order[0]
		res.History = append(res.History, fitness[best])
		if fitness[best] > res.Fitness {
			res.Fitness = fitness[best]
			res.Best = pop[best]
		}

		next := make([]Chromosome, 0, cfg.Population)
		for e := 0; e < cfg.Elite; e++ {
			next = append(next, pop[order[e]])
		}
		for len(next) < cfg.Population {
			a := tournament(fitness, r, cfg.Tournament)
			b := tournament(fitness, r, cfg.Tournament)
			child := pop[a]
			if r.Float64() < cfg.CrossoverRate {
				child = crossover(pop[a], pop[b], r)
			}
			child = mutate(child, r, cfg.MutationRate)
			next = append(next, child)
		}
		pop = next
		evaluate()
	}
	// Final sweep.
	for i := range pop {
		if fitness[i] > res.Fitness {
			res.Fitness = fitness[i]
			res.Best = pop[i]
		}
	}
	res.Evaluations = evals
	return res, nil
}

// iou renders the chromosome and scores intersection-over-union against
// the target.
func iou(target *imaging.Binary, c Chromosome, cfg Config) float64 {
	if c.Height < 15 || c.Height > 3*float64(target.H) {
		return 0
	}
	model := synth.RenderSilhouette(c.Skeleton(cfg.Proportions), cfg.Shape, c.Height, target.W, target.H)
	inter, union := 0, 0
	for i := range model.Pix {
		a, b := model.Pix[i] != 0, target.Pix[i] != 0
		if a && b {
			inter++
		}
		if a || b {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// tournament picks the fittest of k random indices.
func tournament(fitness []float64, r *rand.Rand, k int) int {
	best := r.Intn(len(fitness))
	for i := 1; i < k; i++ {
		c := r.Intn(len(fitness))
		if fitness[c] > fitness[best] {
			best = c
		}
	}
	return best
}

// crossover blends two parents gene-wise with random convex weights.
func crossover(a, b Chromosome, r *rand.Rand) Chromosome {
	ga, gb := a.genes(), b.genes()
	var out [10]float64
	for i := range out {
		w := r.Float64()
		out[i] = w*ga[i] + (1-w)*gb[i]
	}
	return fromGenes(out)
}

// mutate applies Gaussian perturbation to each gene with the given
// probability, scaled by geneScale.
func mutate(c Chromosome, r *rand.Rand, rate float64) Chromosome {
	g := c.genes()
	for i := range g {
		if r.Float64() < rate {
			g[i] += r.NormFloat64() * geneScale[i]
		}
	}
	out := fromGenes(g)
	// Clamp angles into anatomically plausible ranges.
	out.Angles.TorsoLean = clamp(out.Angles.TorsoLean, -math.Pi/2, math.Pi/2)
	out.Angles.Neck = clamp(out.Angles.Neck, -0.6, 0.8)
	out.Angles.Shoulder = clamp(out.Angles.Shoulder, -math.Pi*0.75, math.Pi)
	out.Angles.Elbow = clamp(out.Angles.Elbow, -0.4, 2.4)
	out.Angles.Hip = clamp(out.Angles.Hip, -1.0, 2.1)
	out.Angles.Knee = clamp(out.Angles.Knee, -0.2, 2.4)
	out.Angles.Ankle = clamp(out.Angles.Ankle, -1.5, 0.8)
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
