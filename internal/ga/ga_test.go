package ga

import (
	"errors"
	"math"
	"testing"

	"repro/internal/imaging"
	"repro/internal/keypoint"
	"repro/internal/pose"
	"repro/internal/synth"
)

// target renders a ground-truth silhouette for a pose.
func target(p pose.Pose) (*imaging.Binary, pose.Skeleton2D) {
	s := pose.Compute(imaging.Pointf{X: 120, Y: 100}, 90, pose.Angles(p), pose.DefaultProportions())
	return synth.RenderSilhouette(s, synth.DefaultShape(), 90, 240, 180), s
}

func TestFitEmptyTarget(t *testing.T) {
	_, err := Fit(imaging.NewBinary(32, 32), Config{Seed: 1})
	if !errors.Is(err, ErrEmptyTarget) {
		t.Fatalf("err = %v, want ErrEmptyTarget", err)
	}
}

func TestConfigValidation(t *testing.T) {
	tgt, _ := target(pose.StandHandsForward)
	tests := []struct {
		name string
		cfg  Config
	}{
		{"elite >= population", Config{Population: 4, Elite: 4}},
		{"tournament too big", Config{Population: 4, Tournament: 9}},
		{"bad crossover", Config{CrossoverRate: 1.5}},
		{"bad mutation", Config{MutationRate: -0.1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Fit(tgt, tt.cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestFitConvergesOnStandingPose(t *testing.T) {
	tgt, truth := target(pose.StandHandsForward)
	res, err := Fit(tgt, Config{Seed: 5, Population: 50, Generations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness < 0.6 {
		t.Fatalf("fitness = %.3f, want >= 0.6", res.Fitness)
	}
	// The fitted root should land near the true hip.
	if d := res.Best.Root.Dist(truth.Hip); d > 20 {
		t.Errorf("fitted root %v is %.1f px from true hip %v", res.Best.Root, d, truth.Hip)
	}
	// Height within 25%.
	if math.Abs(res.Best.Height-90)/90 > 0.25 {
		t.Errorf("fitted height = %.1f, want ≈ 90", res.Best.Height)
	}
}

func TestFitDeterministicPerSeed(t *testing.T) {
	tgt, _ := target(pose.CrouchHandsForward)
	cfg := Config{Seed: 9, Population: 20, Generations: 8}
	a, err := Fit(tgt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(tgt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fitness != b.Fitness || a.Best != b.Best {
		t.Error("equal seeds produced different results")
	}
}

func TestFitEvaluationCountAndHistory(t *testing.T) {
	tgt, _ := target(pose.StandHandsAtSides)
	cfg := Config{Seed: 2, Population: 10, Generations: 5}
	res, err := Fit(tgt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * (5 + 1) // initial + per-generation evaluations
	if res.Evaluations != want {
		t.Errorf("evaluations = %d, want %d", res.Evaluations, want)
	}
	if len(res.History) != 5 {
		t.Errorf("history = %d entries, want 5", len(res.History))
	}
	// Best-so-far fitness must be >= every history entry.
	for gen, h := range res.History {
		if h > res.Fitness+1e-12 {
			t.Errorf("generation %d best %.4f exceeds final fitness %.4f", gen, h, res.Fitness)
		}
	}
}

func TestFitnessMonotoneUnderElitism(t *testing.T) {
	tgt, _ := target(pose.AirTuck)
	res, err := Fit(tgt, Config{Seed: 3, Population: 24, Generations: 15})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1]-1e-12 {
			t.Fatalf("best fitness regressed at generation %d: %.4f -> %.4f (elitism broken)",
				i, res.History[i-1], res.History[i])
		}
	}
}

func TestKeyPointsFromFit(t *testing.T) {
	tgt, truth := target(pose.StandHandsForward)
	res, err := Fit(tgt, Config{Seed: 5, Population: 50, Generations: 30})
	if err != nil {
		t.Fatal(err)
	}
	kp := res.KeyPoints(pose.DefaultProportions())
	if kp.Count() != keypoint.NumParts {
		t.Fatalf("key points = %d, want %d", kp.Count(), keypoint.NumParts)
	}
	// Head must be up, foot down, mirroring the true skeleton.
	if kp.Loc(keypoint.PartHead).Y >= kp.Loc(keypoint.PartFoot).Y {
		t.Error("fitted head below fitted foot")
	}
	trueHead := truth.Head.Round()
	if d := float64(abs(kp.Loc(keypoint.PartHead).X-trueHead.X) + abs(kp.Loc(keypoint.PartHead).Y-trueHead.Y)); d > 40 {
		t.Errorf("fitted head %v far from truth %v", kp.Loc(keypoint.PartHead), trueHead)
	}
}

func TestChromosomeGenesRoundTrip(t *testing.T) {
	c := Chromosome{
		Root:   imaging.Pointf{X: 12, Y: 34},
		Height: 88,
		Angles: pose.JointAngles{TorsoLean: 0.1, Neck: 0.2, Shoulder: 0.3, Elbow: 0.4, Hip: 0.5, Knee: 0.6, Ankle: 0.7},
	}
	if got := fromGenes(c.genes()); got != c {
		t.Fatalf("genes round trip: %+v != %+v", got, c)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
