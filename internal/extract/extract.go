// Package extract implements the object-extraction stage of Section 2 of
// the paper: a background-subtraction algorithm adapted from
// Polmottawegedara et al. ("Tracking Moving Targets", SSST 2006), followed
// by median-filter smoothing of the silhouette.
//
// The algorithm, for an N×N input frame (steps i–viii of the paper):
//
//	 i. average the background frame B over an n×n moving window → B_ave
//	ii. average the frame with the moving object A the same way → A_ave
//	iii. C = A_ave − B_ave (per channel, signed)
//	iv. D(i,j) = |C(i,j,R)| + |C(i,j,G)| + |C(i,j,B)|
//	 v. find max(D)
//	vi. shift every pixel so that max becomes 255
//	vii. clamp negatives to zero → R
//	viii. Obj(i,j) = 1 if R(i,j) > Th_Object else 0
//
// with Th_Object = 20 in the paper.
package extract

import (
	"errors"
	"fmt"

	"repro/internal/imaging"
	"repro/internal/obs"
)

// DefaultThObject is the paper's foreground threshold (step viii).
const DefaultThObject = 20

// DefaultWindow is the moving-average window size n. The paper leaves n
// unspecified; 3 is the smallest odd window that still suppresses
// single-pixel sensor noise.
const DefaultWindow = 3

// DefaultMedianKernel is the kernel used to smooth the raw silhouette into
// Figure 1(c).
const DefaultMedianKernel = 3

// ErrNoBackground reports extraction attempted before a background model
// was installed.
var ErrNoBackground = errors.New("extract: no background frame set")

// Options configures an Extractor. The zero value is NOT ready to use;
// construct with NewExtractor which applies defaults.
type Options struct {
	// ThObject is the foreground threshold of step viii (paper: 20).
	ThObject int
	// Window is the odd moving-average window size n of steps i–ii.
	Window int
	// MedianKernel is the odd kernel size for silhouette smoothing;
	// 0 disables smoothing (yields Figure 1(b) instead of 1(c)).
	MedianKernel int
	// KeepLargestOnly retains only the largest connected foreground
	// region, isolating the jumper from residual speckle.
	KeepLargestOnly bool
	// FillHoles fills interior holes of the silhouette after smoothing.
	// The paper relies on the median filter alone; hole filling is an
	// optional robustness extension used by some experiments.
	FillHoles bool
}

// Option mutates Options; pass to NewExtractor.
type Option func(*Options)

// WithThObject overrides the foreground threshold.
func WithThObject(th int) Option { return func(o *Options) { o.ThObject = th } }

// WithWindow overrides the moving-average window size (odd, >= 1).
func WithWindow(n int) Option { return func(o *Options) { o.Window = n } }

// WithMedianKernel overrides the smoothing kernel (odd, >= 1; 0 disables).
func WithMedianKernel(k int) Option { return func(o *Options) { o.MedianKernel = k } }

// WithKeepLargestOnly toggles largest-component isolation.
func WithKeepLargestOnly(v bool) Option { return func(o *Options) { o.KeepLargestOnly = v } }

// WithFillHoles toggles interior hole filling.
func WithFillHoles(v bool) Option { return func(o *Options) { o.FillHoles = v } }

// Extractor segments the jumper's silhouette from frames against a fixed
// studio background. It is NOT safe for concurrent use: the hot path
// reuses per-extractor scratch buffers across frames (the moving-average
// image, its summed-area tables and the difference map), so concurrent
// workers must each own an Extractor — the slj.Engine worker pool does
// exactly that.
type Extractor struct {
	opts   Options
	bgRaw  *imaging.RGB // the background model itself (B)
	bgAve  *imaging.RGB // pre-averaged background (B_ave)
	width  int
	height int

	// Scratch reused across frames so steady-state extraction allocates
	// only its final silhouette.
	aAve *imaging.RGB            // step-ii moving average of the input frame
	sat  []int64                 // summed-area tables backing aAve
	crop *imaging.RGB            // ROI crop (ExtractInROI only)
	d    []int                   // steps iii–iv absolute-difference sums
	comp imaging.ComponentScratch // largest-component labelling state (Smooth)

	// sc times the detect/smooth stages; nil disables.
	sc *obs.Scope
}

// diffs returns the d scratch slice resized to n elements.
func (e *Extractor) diffs(n int) []int {
	if cap(e.d) < n {
		e.d = make([]int, n) //slj:alloc-ok scratch regrow on first use or a larger frame, amortised across frames
	}
	e.d = e.d[:n]
	return e.d
}

// check validates the background model and frame dimensions.
func (e *Extractor) check(frame *imaging.RGB) error {
	if e.bgAve == nil {
		return ErrNoBackground
	}
	if frame.W != e.width || frame.H != e.height {
		return fmt.Errorf("extract: frame %dx%d does not match background %dx%d: %w", //slj:alloc-ok cold error path, mismatched frame is rejected
			frame.W, frame.H, e.width, e.height, imaging.ErrDimensionMismatch)
	}
	return nil
}

// NewExtractor returns an extractor with the paper's defaults applied and
// any options layered on top.
func NewExtractor(opts ...Option) (*Extractor, error) {
	o := Options{
		ThObject:        DefaultThObject,
		Window:          DefaultWindow,
		MedianKernel:    DefaultMedianKernel,
		KeepLargestOnly: true,
	}
	for _, fn := range opts {
		fn(&o)
	}
	if o.Window < 1 || o.Window%2 == 0 {
		return nil, fmt.Errorf("extract: window %d must be odd and positive", o.Window)
	}
	if o.MedianKernel < 0 || (o.MedianKernel > 0 && o.MedianKernel%2 == 0) {
		return nil, fmt.Errorf("extract: median kernel %d must be odd or zero", o.MedianKernel)
	}
	if o.ThObject < 0 || o.ThObject > 255 {
		return nil, fmt.Errorf("extract: threshold %d out of [0,255]", o.ThObject)
	}
	return &Extractor{opts: o}, nil
}

// Options returns a copy of the effective configuration.
func (e *Extractor) Options() Options { return e.opts }

// SetScope attaches an observability scope: Extract/ExtractInROI time
// their background-subtraction and smoothing phases into the detect and
// smooth stage histograms. A nil scope (the default) disables timing.
// Extractors are per-worker, so no synchronisation is needed.
func (e *Extractor) SetScope(sc *obs.Scope) { e.sc = sc }

// SetBackground installs the clean background frame B and pre-computes its
// moving-window average B_ave (step i). It must be called before Extract.
func (e *Extractor) SetBackground(bg *imaging.RGB) {
	e.bgRaw = bg.Clone()
	e.bgAve = imaging.BoxAverageRGB(bg, e.opts.Window)
	e.width, e.height = bg.W, bg.H
}

// Background returns a copy of the current background model, or nil when
// none is set.
func (e *Extractor) Background() *imaging.RGB {
	if e.bgRaw == nil {
		return nil
	}
	return e.bgRaw.Clone()
}

// UpdateBackground adapts the background model toward the current frame
// with an exponential moving average, B = (1-rate)·B + rate·F, skipping
// pixels covered by objMask (pass nil to update everywhere). This is the
// running-average adaptation of the tracking method the paper borrows
// its extraction from; it absorbs slow lighting drift that a static
// model would misclassify as foreground. Not safe concurrently with
// Extract.
func (e *Extractor) UpdateBackground(frame *imaging.RGB, objMask *imaging.Binary, rate float64) error {
	if e.bgRaw == nil {
		return ErrNoBackground
	}
	if frame.W != e.width || frame.H != e.height {
		return fmt.Errorf("extract: frame %dx%d does not match background %dx%d: %w", //slj:alloc-ok cold error path, mismatched frame is rejected
			frame.W, frame.H, e.width, e.height, imaging.ErrDimensionMismatch)
	}
	if objMask != nil && (objMask.W != e.width || objMask.H != e.height) {
		return fmt.Errorf("extract: mask %dx%d does not match background %dx%d: %w",
			objMask.W, objMask.H, e.width, e.height, imaging.ErrDimensionMismatch)
	}
	if rate <= 0 || rate > 1 {
		return fmt.Errorf("extract: update rate %v out of (0,1]", rate)
	}
	for p := 0; p < e.width*e.height; p++ {
		if objMask != nil && objMask.Pix[p] != 0 {
			continue
		}
		for c := 0; c < 3; c++ {
			i := 3*p + c
			old := float64(e.bgRaw.Pix[i])
			nw := float64(frame.Pix[i])
			v := old + rate*(nw-old)
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			e.bgRaw.Pix[i] = uint8(v + 0.5)
		}
	}
	e.bgAve = imaging.BoxAverageRGB(e.bgRaw, e.opts.Window)
	return nil
}

// Extract segments the moving object in frame, returning the smoothed
// silhouette. The frame must match the background dimensions.
//slj:hotpath
func (e *Extractor) Extract(frame *imaging.RGB) (*imaging.Binary, error) {
	if err := e.check(frame); err != nil {
		return nil, err
	}
	// The raw mask is an intermediate consumed by Smooth; run it through
	// the buffer pool so per-frame extraction stops churning the
	// allocator. When Smooth is a no-op the pooled buffer escapes to the
	// caller, which simply removes it from pool custody.
	sp := e.sc.Start(obs.StageDetect)
	raw := imaging.GetBinary(e.width, e.height)
	e.extractRawInto(frame, raw)
	sp.End()
	sp = e.sc.Start(obs.StageSmooth)
	out := e.Smooth(raw)
	sp.End()
	if out != raw {
		imaging.PutBinary(raw)
	}
	return out, nil
}

// ExtractRaw runs steps i–viii only, returning the unsmoothed silhouette of
// Figure 1(b).
func (e *Extractor) ExtractRaw(frame *imaging.RGB) (*imaging.Binary, error) {
	if err := e.check(frame); err != nil {
		return nil, err
	}
	out := imaging.NewBinary(e.width, e.height)
	e.extractRawInto(frame, out)
	return out, nil
}

// extractRawInto runs steps i–viii of the Section 2 algorithm into a
// zeroed full-frame mask, reusing the extractor's scratch buffers. The
// caller has already validated the frame.
func (e *Extractor) extractRawInto(frame *imaging.RGB, out *imaging.Binary) {
	// Step ii: average the object frame.
	e.aAve, e.sat = imaging.BoxAverageRGBInto(e.aAve, frame, e.opts.Window, e.sat)
	aAve := e.aAve

	// Steps iii–iv: D = sum of per-channel absolute differences.
	n := e.width * e.height
	d := e.diffs(n)
	maxD := 0
	for p := 0; p < n; p++ {
		i := 3 * p
		sum := 0
		for c := 0; c < 3; c++ {
			diff := int(aAve.Pix[i+c]) - int(e.bgAve.Pix[i+c])
			if diff < 0 {
				diff = -diff
			}
			sum += diff
		}
		d[p] = sum
		if sum > maxD {
			maxD = sum
		}
	}

	// Steps v–vii: shift so max(D) = 255, clamp negatives to zero.
	// (When the frame equals the background, maxD is 0 and the shift
	// would brighten pure noise to 255; guard by emitting an empty mask.)
	if maxD == 0 {
		return
	}
	shift := maxD - 255
	th := e.opts.ThObject
	for p := 0; p < n; p++ {
		r := d[p] - shift
		if r < 0 {
			r = 0
		}
		// Step viii: threshold.
		if r > th {
			out.Pix[p] = 1
		}
	}
}

// ExtractInROI runs the Section 2 algorithm restricted to a region of
// interest (e.g. the tracker's predicted window): steps ii–viii are
// computed only inside roi, and everything outside is background. The
// max-normalisation (step v) uses the ROI's maximum, which matches the
// full-frame behaviour whenever the object lies inside the ROI. Pixels
// within half a window of the ROI border see a slightly different moving
// average than the full-frame computation; callers should pad the ROI by
// at least Window/2 (the tracker's margin does).
//
// The result is a full-size silhouette with the ROI contents smoothed by
// the configured post-processing.
//slj:hotpath
func (e *Extractor) ExtractInROI(frame *imaging.RGB, roi imaging.Rect) (*imaging.Binary, error) {
	if err := e.check(frame); err != nil {
		return nil, err
	}
	roi = roi.Intersect(frame.Bounds())
	if roi.Empty() {
		return imaging.NewBinary(e.width, e.height), nil
	}
	sp := e.sc.Start(obs.StageDetect)
	e.crop = frame.CropInto(e.crop, roi)
	e.aAve, e.sat = imaging.BoxAverageRGBInto(e.aAve, e.crop, e.opts.Window, e.sat)
	aAve := e.aAve

	w := roi.Dx()
	d := e.diffs(w * roi.Dy())
	maxD := 0
	for y := 0; y < roi.Dy(); y++ {
		for x := 0; x < w; x++ {
			ai := 3 * (y*w + x)
			bi := 3 * ((roi.Min.Y+y)*e.width + roi.Min.X + x)
			sum := 0
			for c := 0; c < 3; c++ {
				diff := int(aAve.Pix[ai+c]) - int(e.bgAve.Pix[bi+c])
				if diff < 0 {
					diff = -diff
				}
				sum += diff
			}
			d[y*w+x] = sum
			if sum > maxD {
				maxD = sum
			}
		}
	}
	out := imaging.GetBinary(e.width, e.height)
	if maxD == 0 {
		sp.End()
		return out, nil
	}
	shift := maxD - 255
	th := e.opts.ThObject
	for y := 0; y < roi.Dy(); y++ {
		for x := 0; x < w; x++ {
			r := d[y*w+x] - shift
			if r < 0 {
				r = 0
			}
			if r > th {
				out.Pix[(roi.Min.Y+y)*e.width+roi.Min.X+x] = 1
			}
		}
	}
	sp.End()
	sp = e.sc.Start(obs.StageSmooth)
	res := e.Smooth(out)
	sp.End()
	if res != out {
		imaging.PutBinary(out)
	}
	return res, nil
}

// Smooth applies the configured silhouette post-processing (median filter,
// optional hole fill, optional largest-component isolation) to a raw mask,
// producing Figure 1(c). The returned image is always freshly owned by the
// caller (or raw itself when every step is disabled); intermediates are
// recycled through the imaging buffer pool.
func (e *Extractor) Smooth(raw *imaging.Binary) *imaging.Binary {
	cur := raw
	// step installs the next intermediate and releases the previous one,
	// except raw itself, which the caller owns.
	step := func(next *imaging.Binary) {
		if cur != raw {
			imaging.PutBinary(cur)
		}
		cur = next
	}
	if e.opts.MedianKernel > 0 {
		//slj:pool-escapes MedianFilterBinaryInto returns dst; a later step (or the caller) Puts it
		step(imaging.MedianFilterBinaryInto(imaging.GetBinary(cur.W, cur.H), cur, e.opts.MedianKernel))
	}
	if e.opts.FillHoles {
		step(imaging.FillHoles(cur, imaging.Connect8)) //slj:alloc-ok hole filling is opt-in (off by default); its flood scratch sits outside the zero-alloc contract
	}
	if e.opts.KeepLargestOnly {
		//slj:pool-escapes LargestComponentInto returns its dst; a later step (or the caller) Puts it
		step(imaging.LargestComponentInto(imaging.GetBinary(cur.W, cur.H), cur, imaging.Connect8, &e.comp))
	}
	return cur
}

// Stats summarises one extraction for the Figure 1 experiment.
type Stats struct {
	// RawPixels and SmoothPixels are the foreground areas before and
	// after smoothing.
	RawPixels, SmoothPixels int
	// RawHoles and SmoothHoles count interior holes before and after.
	RawHoles, SmoothHoles int
	// RawComponents and SmoothComponents count connected regions.
	RawComponents, SmoothComponents int
}

// ExtractWithStats runs the full pipeline and reports quality metrics of
// the raw versus smoothed silhouettes.
func (e *Extractor) ExtractWithStats(frame *imaging.RGB) (*imaging.Binary, Stats, error) {
	raw, err := e.ExtractRaw(frame)
	if err != nil {
		return nil, Stats{}, err
	}
	smooth := e.Smooth(raw)
	var st Stats
	st.RawPixels = raw.Count()
	st.SmoothPixels = smooth.Count()
	st.RawHoles = imaging.CountHoles(raw, imaging.Connect8)
	st.SmoothHoles = imaging.CountHoles(smooth, imaging.Connect8)
	_, rc := imaging.Components(raw, imaging.Connect8)
	_, sc := imaging.Components(smooth, imaging.Connect8)
	st.RawComponents = len(rc)
	st.SmoothComponents = len(sc)
	return smooth, st, nil
}
