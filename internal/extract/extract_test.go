package extract

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/imaging"
)

// makeScene builds a dark noisy background and the same background with a
// bright rectangular "object" painted over [x0,x1)×[y0,y1).
func makeScene(w, h int, seed int64, x0, y0, x1, y1 int) (bg, frame *imaging.RGB) {
	r := rand.New(rand.NewSource(seed))
	bg = imaging.NewRGB(w, h)
	for i := range bg.Pix {
		bg.Pix[i] = uint8(10 + r.Intn(12)) // dark studio backdrop with noise
	}
	frame = bg.Clone()
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			frame.Set(x, y, 200, 170, 150)
		}
	}
	return bg, frame
}

func newTestExtractor(t *testing.T, opts ...Option) *Extractor {
	t.Helper()
	e, err := NewExtractor(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestExtractRecoversObject(t *testing.T) {
	bg, frame := makeScene(64, 64, 1, 20, 12, 44, 52)
	e := newTestExtractor(t)
	e.SetBackground(bg)
	mask, err := e.Extract(frame)
	if err != nil {
		t.Fatal(err)
	}
	// Interior of the object must be foreground.
	for y := 16; y < 48; y++ {
		for x := 24; x < 40; x++ {
			if mask.At(x, y) != 1 {
				t.Fatalf("object interior (%d,%d) not extracted", x, y)
			}
		}
	}
	// Far background must be clean.
	for _, p := range []imaging.Point{{X: 2, Y: 2}, {X: 60, Y: 2}, {X: 2, Y: 60}, {X: 60, Y: 60}} {
		if mask.At(p.X, p.Y) != 0 {
			t.Errorf("background pixel %v marked foreground", p)
		}
	}
}

func TestExtractBoundsRoughlyMatchObject(t *testing.T) {
	bg, frame := makeScene(80, 60, 2, 10, 10, 30, 50)
	e := newTestExtractor(t)
	e.SetBackground(bg)
	mask, err := e.Extract(frame)
	if err != nil {
		t.Fatal(err)
	}
	b := mask.ForegroundBounds()
	// The moving average blurs edges by ~window/2 pixels; allow slack 3.
	const slack = 3
	if b.Min.X < 10-slack || b.Min.Y < 10-slack || b.Max.X > 30+slack || b.Max.Y > 50+slack {
		t.Fatalf("mask bounds %v stray too far from object [10,10)-(30,50)", b)
	}
}

func TestExtractRequiresBackground(t *testing.T) {
	e := newTestExtractor(t)
	_, err := e.Extract(imaging.NewRGB(8, 8))
	if !errors.Is(err, ErrNoBackground) {
		t.Fatalf("err = %v, want ErrNoBackground", err)
	}
}

func TestExtractDimensionMismatch(t *testing.T) {
	e := newTestExtractor(t)
	e.SetBackground(imaging.NewRGB(16, 16))
	_, err := e.Extract(imaging.NewRGB(8, 8))
	if !errors.Is(err, imaging.ErrDimensionMismatch) {
		t.Fatalf("err = %v, want ErrDimensionMismatch", err)
	}
}

func TestExtractIdenticalFrameYieldsEmptyMask(t *testing.T) {
	bg, _ := makeScene(32, 32, 3, 0, 0, 0, 0)
	e := newTestExtractor(t)
	e.SetBackground(bg)
	mask, err := e.ExtractRaw(bg.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if mask.Count() != 0 {
		t.Fatalf("identical frame produced %d foreground pixels", mask.Count())
	}
}

func TestMaxNormalizationSuppressesUniformNoise(t *testing.T) {
	// With one very bright blob, the shift-to-255 step pushes small
	// background differences below threshold even if they exceed
	// Th_Object in absolute difference terms.
	w, h := 48, 48
	bg := imaging.NewRGB(w, h)
	frame := bg.Clone()
	// Uniform mild change everywhere (e.g. lighting drift of +15/channel = D 45).
	for i := range frame.Pix {
		frame.Pix[i] += 15
	}
	// One strong object.
	for y := 10; y < 20; y++ {
		for x := 10; x < 20; x++ {
			frame.Set(x, y, 255, 255, 255)
		}
	}
	e := newTestExtractor(t, WithKeepLargestOnly(false))
	e.SetBackground(bg)
	mask, err := e.ExtractRaw(frame)
	if err != nil {
		t.Fatal(err)
	}
	if mask.At(15, 15) != 1 {
		t.Error("strong object missed")
	}
	if mask.At(40, 40) != 0 {
		t.Error("lighting drift survived max-normalisation; step vi broken")
	}
}

func TestOptionValidation(t *testing.T) {
	tests := []struct {
		name string
		opts []Option
	}{
		{"even window", []Option{WithWindow(4)}},
		{"zero window", []Option{WithWindow(0)}},
		{"negative threshold", []Option{WithThObject(-1)}},
		{"huge threshold", []Option{WithThObject(300)}},
		{"even median", []Option{WithMedianKernel(2)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewExtractor(tt.opts...); err == nil {
				t.Error("expected constructor error")
			}
		})
	}
}

func TestDefaults(t *testing.T) {
	e := newTestExtractor(t)
	o := e.Options()
	if o.ThObject != DefaultThObject {
		t.Errorf("ThObject = %d, want %d", o.ThObject, DefaultThObject)
	}
	if o.Window != DefaultWindow {
		t.Errorf("Window = %d, want %d", o.Window, DefaultWindow)
	}
	if o.MedianKernel != DefaultMedianKernel {
		t.Errorf("MedianKernel = %d, want %d", o.MedianKernel, DefaultMedianKernel)
	}
	if !o.KeepLargestOnly {
		t.Error("KeepLargestOnly should default to true")
	}
}

func TestSmoothingReducesHoles(t *testing.T) {
	// Build a raw-ish mask with pinholes and speckle, then check the
	// smoothing path improves both metrics — the Figure 1(b)→1(c) claim.
	r := rand.New(rand.NewSource(9))
	raw := imaging.NewBinary(60, 60)
	for y := 10; y < 50; y++ {
		for x := 20; x < 40; x++ {
			raw.Set(x, y, 1)
		}
	}
	// Punch pinholes.
	for i := 0; i < 30; i++ {
		raw.Set(20+r.Intn(20), 10+r.Intn(40), 0)
	}
	// Sprinkle speckle.
	for i := 0; i < 15; i++ {
		raw.Set(r.Intn(15), r.Intn(60), 1)
	}
	e := newTestExtractor(t)
	smooth := e.Smooth(raw)
	if got, before := imaging.CountHoles(smooth, imaging.Connect8), imaging.CountHoles(raw, imaging.Connect8); got > before {
		t.Errorf("holes increased after smoothing: %d -> %d", before, got)
	}
	_, comps := imaging.Components(smooth, imaging.Connect8)
	if len(comps) != 1 {
		t.Errorf("smoothed mask has %d components, want 1 (largest-only)", len(comps))
	}
}

func TestExtractWithStats(t *testing.T) {
	bg, frame := makeScene(64, 64, 5, 16, 16, 48, 48)
	e := newTestExtractor(t)
	e.SetBackground(bg)
	mask, st, err := e.ExtractWithStats(frame)
	if err != nil {
		t.Fatal(err)
	}
	if mask.Count() != st.SmoothPixels {
		t.Errorf("SmoothPixels = %d, mask count = %d", st.SmoothPixels, mask.Count())
	}
	if st.RawPixels == 0 {
		t.Error("RawPixels should be nonzero for a visible object")
	}
	if st.SmoothComponents != 1 {
		t.Errorf("SmoothComponents = %d, want 1", st.SmoothComponents)
	}
}

func TestHoleFillOption(t *testing.T) {
	e := newTestExtractor(t, WithFillHoles(true), WithMedianKernel(0))
	raw := imaging.FromASCII(`
#####
#...#
#####
`)
	smooth := e.Smooth(raw)
	if imaging.CountHoles(smooth, imaging.Connect8) != 0 {
		t.Error("FillHoles option left interior holes")
	}
}

func TestThresholdSensitivity(t *testing.T) {
	bg, frame := makeScene(48, 48, 7, 12, 12, 36, 36)
	lo := newTestExtractor(t, WithThObject(5), WithKeepLargestOnly(false), WithMedianKernel(0))
	hi := newTestExtractor(t, WithThObject(200), WithKeepLargestOnly(false), WithMedianKernel(0))
	lo.SetBackground(bg)
	hi.SetBackground(bg)
	mLo, err := lo.ExtractRaw(frame)
	if err != nil {
		t.Fatal(err)
	}
	mHi, err := hi.ExtractRaw(frame)
	if err != nil {
		t.Fatal(err)
	}
	if mLo.Count() < mHi.Count() {
		t.Errorf("lower threshold yielded smaller mask: %d < %d", mLo.Count(), mHi.Count())
	}
}

// TestExtractConcurrent exercises the package's concurrency contract: an
// Extractor reuses scratch buffers across frames, so concurrent workers
// each own an extractor (sharing the read-only input frames) and must all
// produce the identical silhouette.
func TestExtractConcurrent(t *testing.T) {
	bg, frame := makeScene(48, 48, 8, 12, 12, 36, 36)
	ref := newTestExtractor(t)
	ref.SetBackground(bg)
	want, err := ref.Extract(frame)
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		sil *imaging.Binary
		err error
	}
	done := make(chan res)
	for i := 0; i < 8; i++ {
		e := newTestExtractor(t)
		e.SetBackground(bg)
		go func() {
			// Each worker extracts repeatedly to cycle its scratch
			// buffers and the shared imaging pool.
			var sil *imaging.Binary
			var err error
			for k := 0; k < 4 && err == nil; k++ {
				sil, err = e.Extract(frame)
			}
			done <- res{sil, err}
		}()
	}
	for i := 0; i < 8; i++ {
		r := <-done
		if r.err != nil {
			t.Fatal(r.err)
		}
		if !r.sil.Equal(want) {
			t.Fatal("concurrent extraction differs from sequential result")
		}
	}
}

// TestExtractNoCrossFrameBleed releases a silhouette's intermediates back
// to the buffer pool and mutates a later frame's buffers; the earlier
// result must be unaffected (no aliasing between pooled frames).
func TestExtractNoCrossFrameBleed(t *testing.T) {
	bg, frameA := makeScene(48, 48, 8, 12, 12, 36, 36)
	_, frameB := makeScene(48, 48, 8, 4, 4, 20, 44)
	e := newTestExtractor(t)
	e.SetBackground(bg)
	silA, err := e.Extract(frameA)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := silA.Clone()
	// Extract more frames: these recycle the pooled intermediates silA's
	// extraction used and scribble over them.
	for k := 0; k < 3; k++ {
		silB, err := e.Extract(frameB)
		if err != nil {
			t.Fatal(err)
		}
		for i := range silB.Pix {
			silB.Pix[i] = 1 // mutate the newest result as hard as possible
		}
	}
	if !silA.Equal(snapshot) {
		t.Fatal("earlier silhouette changed after later extractions: pooled buffer aliasing")
	}
}

func TestUpdateBackgroundAbsorbsDrift(t *testing.T) {
	// A scene with a bright object whose backdrop lighting drifts upward
	// heavily: the max-normalisation keys on the object, and once the
	// backdrop's accumulated difference comes within Th_Object of the
	// normalised range the static model grows ghost foreground. The
	// adaptive model keeps the backdrop difference near zero and stays
	// clean. (Note the extractor assumes an object is present — without
	// one, step vi normalises noise up to 255 by design.)
	w, h := 48, 48
	bg := imaging.NewRGB(w, h)
	for i := range bg.Pix {
		bg.Pix[i] = 20
	}
	paintObject := func(m *imaging.RGB) {
		for y := 10; y < 26; y++ {
			for x := 10; x < 26; x++ {
				m.Set(x, y, 230, 210, 200)
			}
		}
	}
	staticEx := newTestExtractor(t, WithKeepLargestOnly(false), WithMedianKernel(0))
	adaptEx := newTestExtractor(t, WithKeepLargestOnly(false), WithMedianKernel(0))
	staticEx.SetBackground(bg)
	adaptEx.SetBackground(bg)

	base := bg.Clone()
	var staticGhost, adaptGhost int
	for step := 0; step < 20; step++ {
		// Brighten the backdrop by 6 per channel per step.
		for i := range base.Pix {
			if int(base.Pix[i])+6 <= 255 {
				base.Pix[i] += 6
			}
		}
		frame := base.Clone()
		paintObject(frame)
		sMask, err := staticEx.ExtractRaw(frame)
		if err != nil {
			t.Fatal(err)
		}
		aMask, err := adaptEx.ExtractRaw(frame)
		if err != nil {
			t.Fatal(err)
		}
		// Ghost pixels: foreground outside the true object box.
		ghost := func(m *imaging.Binary) int {
			n := 0
			for _, p := range m.Points() {
				if p.X < 8 || p.X > 28 || p.Y < 8 || p.Y > 28 {
					n++
				}
			}
			return n
		}
		staticGhost += ghost(sMask)
		adaptGhost += ghost(aMask)
		if err := adaptEx.UpdateBackground(frame, aMask, 0.6); err != nil {
			t.Fatal(err)
		}
	}
	if staticGhost == 0 {
		t.Fatal("scenario too mild: static model grew no ghost at all")
	}
	if adaptGhost*5 >= staticGhost {
		t.Errorf("adaptive ghost pixels %d not clearly fewer than static %d", adaptGhost, staticGhost)
	}
}

func TestUpdateBackgroundSkipsMaskedObject(t *testing.T) {
	bg, frame := makeScene(48, 48, 11, 12, 12, 36, 36)
	e := newTestExtractor(t)
	e.SetBackground(bg)
	mask, err := e.Extract(frame)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Background()
	if err := e.UpdateBackground(frame, mask, 1.0); err != nil {
		t.Fatal(err)
	}
	after := e.Background()
	// Pixels under the object mask must be unchanged; a pixel well
	// inside the object is (24,24).
	i := 3 * (24*48 + 24)
	if mask.At(24, 24) == 1 && before.Pix[i] != after.Pix[i] {
		t.Error("masked object pixel was blended into the background")
	}
	// An unmasked far corner adopts the frame value at rate 1.
	j := 3 * (2*48 + 2)
	if after.Pix[j] != frame.Pix[j] {
		t.Errorf("unmasked pixel not updated: %d vs frame %d", after.Pix[j], frame.Pix[j])
	}
}

func TestUpdateBackgroundValidation(t *testing.T) {
	e := newTestExtractor(t)
	if err := e.UpdateBackground(imaging.NewRGB(8, 8), nil, 0.5); !errors.Is(err, ErrNoBackground) {
		t.Errorf("err = %v, want ErrNoBackground", err)
	}
	e.SetBackground(imaging.NewRGB(16, 16))
	if err := e.UpdateBackground(imaging.NewRGB(8, 8), nil, 0.5); !errors.Is(err, imaging.ErrDimensionMismatch) {
		t.Errorf("frame mismatch err = %v", err)
	}
	if err := e.UpdateBackground(imaging.NewRGB(16, 16), imaging.NewBinary(8, 8), 0.5); !errors.Is(err, imaging.ErrDimensionMismatch) {
		t.Errorf("mask mismatch err = %v", err)
	}
	if err := e.UpdateBackground(imaging.NewRGB(16, 16), nil, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if err := e.UpdateBackground(imaging.NewRGB(16, 16), nil, 1.5); err == nil {
		t.Error("rate > 1 accepted")
	}
}

func TestBackgroundAccessor(t *testing.T) {
	e := newTestExtractor(t)
	if e.Background() != nil {
		t.Error("Background before SetBackground should be nil")
	}
	bg := imaging.NewRGB(8, 8)
	bg.Set(3, 3, 9, 9, 9)
	e.SetBackground(bg)
	got := e.Background()
	r, _, _ := got.At(3, 3)
	if r != 9 {
		t.Error("Background copy mismatch")
	}
	got.Set(3, 3, 0, 0, 0) // mutating the copy must not affect the model
	again := e.Background()
	if r, _, _ := again.At(3, 3); r != 9 {
		t.Error("Background returned an aliased buffer")
	}
}

func TestExtractInROIMatchesFullFrame(t *testing.T) {
	bg, frame := makeScene(96, 96, 21, 30, 30, 66, 66)
	e := newTestExtractor(t)
	e.SetBackground(bg)
	full, err := e.Extract(frame)
	if err != nil {
		t.Fatal(err)
	}
	// ROI generously around the object (margin >> window/2).
	roi := imaging.NewRect(20, 20, 76, 76)
	inROI, err := e.ExtractInROI(frame, roi)
	if err != nil {
		t.Fatal(err)
	}
	// Inside the ROI interior the two must agree.
	for y := 26; y < 70; y++ {
		for x := 26; x < 70; x++ {
			if full.At(x, y) != inROI.At(x, y) {
				t.Fatalf("ROI extraction differs at (%d,%d)", x, y)
			}
		}
	}
	// Outside the ROI everything is background.
	if inROI.At(5, 5) != 0 || inROI.At(90, 90) != 0 {
		t.Error("ROI extraction leaked outside the region")
	}
}

func TestExtractInROIValidation(t *testing.T) {
	e := newTestExtractor(t)
	if _, err := e.ExtractInROI(imaging.NewRGB(8, 8), imaging.NewRect(0, 0, 4, 4)); !errors.Is(err, ErrNoBackground) {
		t.Errorf("err = %v, want ErrNoBackground", err)
	}
	e.SetBackground(imaging.NewRGB(16, 16))
	if _, err := e.ExtractInROI(imaging.NewRGB(8, 8), imaging.NewRect(0, 0, 4, 4)); !errors.Is(err, imaging.ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
	// Empty ROI: empty mask, no error.
	mask, err := e.ExtractInROI(imaging.NewRGB(16, 16), imaging.NewRect(20, 20, 24, 24))
	if err != nil {
		t.Fatal(err)
	}
	if mask.Count() != 0 {
		t.Error("out-of-frame ROI should yield an empty mask")
	}
}

func TestWindowOneSkipsAveraging(t *testing.T) {
	bg, frame := makeScene(32, 32, 31, 8, 8, 24, 24)
	e := newTestExtractor(t, WithWindow(1), WithMedianKernel(0), WithKeepLargestOnly(false))
	e.SetBackground(bg)
	mask, err := e.ExtractRaw(frame)
	if err != nil {
		t.Fatal(err)
	}
	if mask.At(16, 16) != 1 {
		t.Error("object missed with window 1")
	}
	// With no averaging, the mask edges are crisp: the exact object
	// boundary pixels are foreground, their outside neighbours are not.
	if mask.At(7, 16) == 1 {
		t.Error("window-1 mask bled outside the object")
	}
}
