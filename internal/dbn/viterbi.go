package dbn

import (
	"fmt"
	"math"

	"repro/internal/bayes"
	"repro/internal/keypoint"
	"repro/internal/pose"
)

// Sequence decoding. The paper's classifier is greedy — each frame's
// decision feeds the next frame's previous-pose input, so "a
// misclassified frame will still affect the classification of its
// subsequent frames" and errors arrive in consecutive runs. The
// conclusion asks for "some refinement on the DBN"; the natural one is
// joint decoding: Viterbi over the whole clip, combining per-frame
// emission scores from the BN bank with a pose-transition model learned
// from the training labels. Experiment EXT3 compares the two decoders.

// transitionSmoothing is the Laplace pseudo-count for the learned
// pose-bigram model.
const transitionSmoothing = 0.5

// noteTransition accumulates one labelled bigram (prev may be
// PoseUnknown at clip starts; it occupies row 0).
func (c *Classifier) noteTransition(prev, cur pose.Pose) {
	c.transitions[int(prev)][int(cur)]++
}

// transitionProb returns the smoothed P(cur | prev).
func (c *Classifier) transitionProb(prev, cur pose.Pose) float64 {
	row := c.transitions[int(prev)]
	total := 0.0
	for _, v := range row[1:] { // column 0 (Unknown) is never a decoding target
		total += v
	}
	den := total + transitionSmoothing*float64(pose.NumPoses)
	return (row[int(cur)] + transitionSmoothing) / den
}

// emissionScores returns, for one frame, P(pose present | features) for
// every pose, using feature evidence only (previous pose and stage are
// marginalised out, so the score is decoder-independent).
func (c *Classifier) emissionScores(enc keypoint.Encoding) ([]float64, error) {
	out := make([]float64, pose.NumPoses+1)
	for _, p := range pose.AllPoses() {
		ev := bayes.Evidence{}
		if c.cfg.UsePartEvidence {
			for i := 0; i < keypoint.NumParts; i++ {
				ev[nodePart0+i] = enc.Area[i]
			}
		}
		if c.cfg.UseAreaEvidence {
			for j, occ := range enc.OccupiedAreas() {
				v := 0
				if occ {
					v = 1
				}
				ev[c.nodeArea0()+j] = v
			}
		}
		if c.cfg.Rings > 0 {
			for i := 0; i < keypoint.NumParts; i++ {
				ev[c.nodeRing0()+i] = enc.Ring[i]
			}
		}
		dist, err := c.nets[p].PosteriorVE(nodePose, ev)
		if err != nil {
			return nil, fmt.Errorf("dbn: emission for %v: %w", p, err)
		}
		out[p] = dist[1]
	}
	return out, nil
}

// DecodeViterbi decodes a whole clip jointly: the most probable pose
// sequence under the learned transition model and the per-frame BN
// emissions. Stage legality is enforced by the transition model itself
// (illegal stage jumps never occur in training labels, so their smoothed
// probabilities are minimal). It never outputs Unknown.
func (c *Classifier) DecodeViterbi(encs []keypoint.Encoding) ([]pose.Pose, error) {
	if !c.trained {
		return nil, ErrNotTrained
	}
	if len(encs) == 0 {
		return nil, nil
	}
	for i, enc := range encs {
		if enc.Partitions != c.cfg.Partitions {
			return nil, fmt.Errorf("%w: frame %d has %d, configured %d",
				ErrBadEncoding, i, enc.Partitions, c.cfg.Partitions)
		}
	}
	nStates := pose.NumPoses
	logTrans := make([][]float64, nStates+1)
	for q := 0; q <= nStates; q++ {
		logTrans[q] = make([]float64, nStates+1)
		for p := 1; p <= nStates; p++ {
			logTrans[q][p] = math.Log(c.transitionProb(pose.Pose(q), pose.Pose(p)))
		}
	}

	const floor = 1e-12
	delta := make([][]float64, len(encs))
	back := make([][]int, len(encs))
	for t := range encs {
		emis, err := c.emissionScores(encs[t])
		if err != nil {
			return nil, err
		}
		delta[t] = make([]float64, nStates+1)
		back[t] = make([]int, nStates+1)
		for p := 1; p <= nStates; p++ {
			le := math.Log(math.Max(emis[p], floor))
			if t == 0 {
				// Clip start: the paper resets the previous pose to
				// "standing & hands overlap with body"; the bigram row
				// of that pose is the start distribution.
				delta[t][p] = logTrans[int(pose.StandHandsAtSides)][p] + le
				continue
			}
			bestQ, bestV := 1, math.Inf(-1)
			for q := 1; q <= nStates; q++ {
				if v := delta[t-1][q] + logTrans[q][p]; v > bestV {
					bestQ, bestV = q, v
				}
			}
			delta[t][p] = bestV + le
			back[t][p] = bestQ
		}
	}

	// Backtrack.
	last := len(encs) - 1
	bestP, bestV := 1, math.Inf(-1)
	for p := 1; p <= nStates; p++ {
		if delta[last][p] > bestV {
			bestP, bestV = p, delta[last][p]
		}
	}
	out := make([]pose.Pose, len(encs))
	out[last] = pose.Pose(bestP)
	for t := last; t > 0; t-- {
		bestP = back[t][bestP]
		out[t-1] = pose.Pose(bestP)
	}
	return out, nil
}

// TransitionMatrix exposes the learned smoothed bigram model (rows:
// previous pose, 0 = clip start/Unknown; columns: current pose 1..22).
// Intended for diagnostics and the EXT3 experiment report.
func (c *Classifier) TransitionMatrix() [][]float64 {
	out := make([][]float64, pose.NumPoses+1)
	for q := 0; q <= pose.NumPoses; q++ {
		out[q] = make([]float64, pose.NumPoses+1)
		for p := 1; p <= pose.NumPoses; p++ {
			out[q][p] = c.transitionProb(pose.Pose(q), pose.Pose(p))
		}
	}
	return out
}
