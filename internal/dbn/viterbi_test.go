package dbn

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/keypoint"
	"repro/internal/pose"
)

func TestDecodeViterbiUntrained(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecodeViterbi([]keypoint.Encoding{{Partitions: 8}}); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
}

func TestDecodeViterbiEmpty(t *testing.T) {
	c := trainedClassifier(t, DefaultConfig(), 2, 81)
	out, err := c.DecodeViterbi(nil)
	if err != nil || out != nil {
		t.Fatalf("empty decode = %v, %v", out, err)
	}
}

func TestDecodeViterbiPartitionMismatch(t *testing.T) {
	c := trainedClassifier(t, DefaultConfig(), 2, 82)
	if _, err := c.DecodeViterbi([]keypoint.Encoding{{Partitions: 16}}); !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("err = %v, want ErrBadEncoding", err)
	}
}

func TestDecodeViterbiAccuracy(t *testing.T) {
	cfg := DefaultConfig()
	c := trainedClassifier(t, cfg, 8, 83)
	r := rand.New(rand.NewSource(17))
	seq := canonicalSequence()
	encs := make([]keypoint.Encoding, len(seq))
	for i, p := range seq {
		encs[i] = encodePose(t, p, r, cfg.Partitions)
	}
	out, err := c.DecodeViterbi(encs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(seq) {
		t.Fatalf("decoded %d frames, want %d", len(out), len(seq))
	}
	correct := 0
	for i := range seq {
		if out[i] == seq[i] {
			correct++
		}
		if out[i] == pose.PoseUnknown {
			t.Fatalf("Viterbi emitted Unknown at frame %d", i)
		}
	}
	if acc := float64(correct) / float64(len(seq)); acc < 0.7 {
		t.Errorf("Viterbi accuracy = %.2f, want >= 0.7", acc)
	}
}

func TestViterbiRepairsIsolatedGarbageFrame(t *testing.T) {
	// A single all-zero (unrecognisable) frame inside a clean sequence:
	// greedy decoding yields Unknown there; Viterbi must bridge it with
	// a plausible pose.
	cfg := DefaultConfig()
	c := trainedClassifier(t, cfg, 8, 84)
	r := rand.New(rand.NewSource(19))
	seq := canonicalSequence()
	encs := make([]keypoint.Encoding, len(seq))
	for i, p := range seq {
		encs[i] = encodePose(t, p, r, cfg.Partitions)
	}
	mid := len(encs) / 2
	encs[mid] = keypoint.Encoding{Partitions: cfg.Partitions}

	out, err := c.DecodeViterbi(encs)
	if err != nil {
		t.Fatal(err)
	}
	if out[mid] == pose.PoseUnknown {
		t.Fatal("Viterbi left the garbage frame Unknown")
	}
	// The bridged pose must be stage-compatible with its neighbours.
	sBefore := pose.StageOf(out[mid-1])
	sAfter := pose.StageOf(out[mid+1])
	sMid := pose.StageOf(out[mid])
	if sMid < sBefore || sMid > sAfter {
		t.Errorf("bridged pose %v (stage %v) incompatible with neighbours (%v..%v)",
			out[mid], sMid, sBefore, sAfter)
	}
}

func TestTransitionModelLearned(t *testing.T) {
	c := trainedClassifier(t, DefaultConfig(), 4, 85)
	m := c.TransitionMatrix()
	// Self-transitions dominate (poses are held for several frames).
	self := m[int(pose.AirTuck)][int(pose.AirTuck)]
	jump := m[int(pose.AirTuck)][int(pose.StandHandsAtSides)]
	if self <= jump {
		t.Errorf("P(tuck|tuck)=%v should exceed P(stand|tuck)=%v", self, jump)
	}
	// Rows are distributions over the 22 poses.
	for q := 0; q <= pose.NumPoses; q++ {
		sum := 0.0
		for p := 1; p <= pose.NumPoses; p++ {
			sum += m[q][p]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", q, sum)
		}
	}
	// Illegal stage jumps are vanishingly unlikely but nonzero
	// (smoothed).
	illegal := m[int(pose.StandHandsAtSides)][int(pose.LandCrouch)]
	if illegal <= 0 {
		t.Error("smoothing missing: zero transition probability")
	}
	if illegal > 0.05 {
		t.Errorf("illegal stage jump probability %v too high", illegal)
	}
}

func TestViterbiSurvivesSaveLoad(t *testing.T) {
	cfg := DefaultConfig()
	c := trainedClassifier(t, cfg, 3, 86)
	r := rand.New(rand.NewSource(23))
	seq := canonicalSequence()[:12]
	encs := make([]keypoint.Encoding, len(seq))
	for i, p := range seq {
		encs[i] = encodePose(t, p, r, cfg.Partitions)
	}
	want, err := c.DecodeViterbi(encs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.DecodeViterbi(encs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("frame %d: %v != %v after reload", i, want[i], got[i])
		}
	}
}
