package dbn

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/pose"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	c := trainedClassifier(t, cfg, 3, 71)

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Trained() {
		t.Fatal("loaded classifier lost trained flag")
	}
	if loaded.Config().Partitions != cfg.Partitions {
		t.Fatal("config not preserved")
	}

	// Classification must be bit-identical between original and loaded.
	r := rand.New(rand.NewSource(5))
	seq := canonicalSequence()
	encs := make([]Score, 0) // placeholder to avoid unused imports
	_ = encs
	sessA := c.NewSession()
	sessB := loaded.NewSession()
	for _, p := range seq[:15] {
		enc := encodePose(t, p, r, cfg.Partitions)
		ra, err := sessA.Classify(enc)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := sessB.Classify(enc)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Pose != rb.Pose {
			t.Fatalf("pose diverged after reload: %v vs %v", ra.Pose, rb.Pose)
		}
		if ra.Prob != rb.Prob {
			t.Fatalf("probability diverged after reload: %v vs %v", ra.Prob, rb.Prob)
		}
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage model accepted")
	}
}

func TestSaveUntrainedLoads(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Trained() {
		t.Fatal("untrained model loaded as trained")
	}
	// Classification must still refuse.
	s := loaded.NewSession()
	r := rand.New(rand.NewSource(1))
	if _, err := s.Classify(encodePose(t, pose.StandHandsForward, r, 8)); err == nil {
		t.Fatal("untrained loaded classifier classified")
	}
}
