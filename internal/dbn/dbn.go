// Package dbn implements the paper's pose classifier: a bank of per-pose
// Bayesian networks (Figure 7(a)) extended dynamically with the previous
// pose and jump-stage variables (Figure 7(b)).
//
// Each of the 22 poses owns a small BN:
//
//	PrevPose ─┐
//	          ├─▶ PoseP (binary: this pose present?)
//	Stage ────┘        │
//	                   ├─▶ Head, Chest, Hand, Knee, Foot  (area of each part)
//	                   └─▶ Area I..Area N                 (area occupied?)
//
// The five part nodes are the paper's hidden nodes; their observed values
// are the Figure 6 feature vector (the area index of each key point
// around the waist). The N area nodes (N = partitions, paper: 8) are the
// paper's observed nodes; they mark which areas hold at least one key
// point, and serve as fallback evidence when part assignment fails on a
// degenerate skeleton.
//
// Decision rule (Section 4.2): every BN scores P(pose present | evidence);
// a per-pose threshold Th_Pose gates the rarer poses because "'Standing &
// hand swung forward' would dominate the decision making"; when no pose is
// accepted the classifier emits Unknown, and — following the paper's
// remedy — the previous-pose input for the next frame stays at the most
// recently recognised pose rather than Unknown.
package dbn

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bayes"
	"repro/internal/keypoint"
	"repro/internal/obs"
	"repro/internal/pose"
)

// Default decision thresholds. ThPose gates every pose other than the
// dominant one; ThDefault is the acceptance floor for the dominant pose
// (below it the frame is Unknown).
const (
	DefaultThPose    = 0.5
	DefaultThDefault = 0.2
)

// Errors.
var (
	// ErrNotTrained reports classification attempted on an untrained bank.
	ErrNotTrained = errors.New("dbn: classifier has no training observations")
	// ErrBadEncoding reports a feature vector whose partition count does
	// not match the classifier configuration.
	ErrBadEncoding = errors.New("dbn: encoding partitions mismatch")
	// ErrBadLabel reports a training label outside the pose taxonomy.
	ErrBadLabel = errors.New("dbn: invalid pose label")
)

// Config tunes the classifier bank. The zero value is NOT valid; use
// DefaultConfig and modify.
type Config struct {
	// Partitions is the number of feature areas (paper: 8).
	Partitions int
	// ThPose is the per-pose acceptance threshold for non-dominant poses.
	ThPose float64
	// ThDefault is the acceptance floor for the dominant pose.
	ThDefault float64
	// PerPoseTh overrides ThPose for specific poses.
	PerPoseTh map[pose.Pose]float64
	// Dominant is the pose exempted from ThPose — the paper's
	// "Standing & hand swung forward".
	Dominant pose.Pose
	// CarryLastRecognized keeps the previous-pose input at the most
	// recently recognised pose across Unknown frames (the paper's fix);
	// when false an Unknown frame resets the previous pose to the
	// unknown state (the ablation of experiment SEC5b).
	CarryLastRecognized bool
	// UsePartEvidence feeds the five part-area values as evidence.
	UsePartEvidence bool
	// UseAreaEvidence feeds the occupied-area bits as evidence.
	UseAreaEvidence bool
	// Rings enables radial features (the conclusion's "more
	// information" extension): each per-pose network gains five ring
	// nodes holding the quantised waist distance of each part.
	// 0 (the paper's configuration) disables them.
	Rings int
	// Laplace is the CPT smoothing pseudo-count.
	Laplace float64
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		Partitions:          keypoint.DefaultPartitions,
		ThPose:              DefaultThPose,
		ThDefault:           DefaultThDefault,
		Dominant:            pose.StandHandsForward,
		CarryLastRecognized: true,
		UsePartEvidence:     true,
		UseAreaEvidence:     true,
		Laplace:             bayes.DefaultLaplace,
	}
}

// node layout within each per-pose network.
const (
	nodePrev  = 0
	nodeStage = 1
	nodePose  = 2
	nodePart0 = 3 // 5 part nodes: 3..7
)

func (c *Classifier) nodeArea0() int { return nodePart0 + keypoint.NumParts }

// nodeRing0 is the index of the first ring node (only present when
// cfg.Rings > 0).
func (c *Classifier) nodeRing0() int { return c.nodeArea0() + c.cfg.Partitions }

// prevStates is the cardinality of the PrevPose variable: the 22 poses
// plus state 0 for "unknown / start of clip".
const prevStates = pose.NumPoses + 1

// Classifier is the trained bank of per-pose DBNs. It is immutable during
// classification and safe for concurrent read use; training must finish
// before sessions start.
type Classifier struct {
	cfg     Config
	nets    [pose.NumPoses + 1]*bayes.Network // indexed by Pose; [0] unused
	trained bool
	// transitions counts labelled pose bigrams (row: previous pose,
	// 0 = clip start; column: current pose) for the Viterbi decoder.
	transitions [pose.NumPoses + 1][pose.NumPoses + 1]float64
}

// New builds an untrained classifier bank.
func New(cfg Config) (*Classifier, error) {
	if cfg.Partitions < 4 || cfg.Partitions%2 != 0 {
		return nil, fmt.Errorf("dbn: partitions = %d, want even and >= 4", cfg.Partitions)
	}
	if !cfg.Dominant.Valid() {
		return nil, fmt.Errorf("dbn: dominant pose %v invalid", cfg.Dominant)
	}
	if cfg.ThPose < 0 || cfg.ThPose > 1 || cfg.ThDefault < 0 || cfg.ThDefault > 1 {
		return nil, fmt.Errorf("dbn: thresholds out of [0,1]")
	}
	if cfg.Rings < 0 {
		return nil, fmt.Errorf("dbn: rings = %d, want >= 0", cfg.Rings)
	}
	if !cfg.UsePartEvidence && !cfg.UseAreaEvidence {
		return nil, errors.New("dbn: at least one evidence channel must be enabled")
	}
	c := &Classifier{cfg: cfg}
	for _, p := range pose.AllPoses() {
		n := bayes.New()
		n.SetLaplace(cfg.Laplace)
		mustAdd := func(name string, states int, parents ...int) int {
			id, err := n.AddNode(name, states, parents...)
			if err != nil {
				panic(fmt.Sprintf("dbn: building %v network: %v", p, err))
			}
			return id
		}
		prev := mustAdd("prev_pose", prevStates)
		stage := mustAdd("stage", pose.NumStages)
		poseNode := mustAdd("pose:"+p.String(), 2, prev, stage)
		for _, part := range keypoint.Parts() {
			mustAdd(part.String(), cfg.Partitions+1, poseNode)
		}
		for j := 1; j <= cfg.Partitions; j++ {
			mustAdd(fmt.Sprintf("area%d", j), 2, poseNode)
		}
		for _, part := range keypoint.Parts() {
			if cfg.Rings > 0 {
				mustAdd(part.String()+"_ring", cfg.Rings+1, poseNode)
			}
		}
		c.nets[p] = n
	}
	return c, nil
}

// Config returns a copy of the effective configuration.
func (c *Classifier) Config() Config { return c.cfg }

// assignment builds the complete observation vector for one network.
func (c *Classifier) assignment(prev pose.Pose, stage pose.Stage, present bool, enc keypoint.Encoding) []int {
	n := nodePart0 + keypoint.NumParts + c.cfg.Partitions
	if c.cfg.Rings > 0 {
		n += keypoint.NumParts
	}
	out := make([]int, n)
	out[nodePrev] = int(prev) // PoseUnknown = 0 maps to the unknown state
	out[nodeStage] = int(stage) - 1
	if present {
		out[nodePose] = 1
	}
	for i := 0; i < keypoint.NumParts; i++ {
		out[nodePart0+i] = enc.Area[i]
	}
	for j, occ := range enc.OccupiedAreas() {
		if occ {
			out[c.nodeArea0()+j] = 1
		}
	}
	if c.cfg.Rings > 0 {
		for i := 0; i < keypoint.NumParts; i++ {
			out[c.nodeRing0()+i] = enc.Ring[i]
		}
	}
	return out
}

// Observe adds one labelled training frame: the ground-truth pose of the
// frame, the previous frame's ground-truth pose (PoseUnknown for the first
// frame), the jump stage, and the frame's feature encoding. Every network
// in the bank learns from the frame — positively for the true pose's
// network, negatively for all others.
func (c *Classifier) Observe(prev pose.Pose, stage pose.Stage, truth pose.Pose, enc keypoint.Encoding) error {
	if !truth.Valid() {
		return fmt.Errorf("%w: %v", ErrBadLabel, truth)
	}
	if !stage.Valid() {
		return fmt.Errorf("dbn: invalid stage %v", stage)
	}
	if enc.Partitions != c.cfg.Partitions {
		return fmt.Errorf("%w: got %d, configured %d", ErrBadEncoding, enc.Partitions, c.cfg.Partitions)
	}
	if enc.Rings != c.cfg.Rings {
		return fmt.Errorf("%w: got %d rings, configured %d", ErrBadEncoding, enc.Rings, c.cfg.Rings)
	}
	if prev != pose.PoseUnknown && !prev.Valid() {
		return fmt.Errorf("%w: previous pose %v", ErrBadLabel, prev)
	}
	for _, p := range pose.AllPoses() {
		if err := c.nets[p].Observe(c.assignment(prev, stage, p == truth, enc), 1); err != nil {
			return fmt.Errorf("dbn: observing into %v network: %w", p, err)
		}
	}
	c.noteTransition(prev, truth)
	c.trained = true
	return nil
}

// LabeledFrame is one training frame.
type LabeledFrame struct {
	// Label is the ground-truth pose.
	Label pose.Pose
	// Enc is the frame's feature encoding.
	Enc keypoint.Encoding
}

// TrainSequence observes a whole labelled clip, deriving the previous-pose
// chain and the stage flag exactly as the paper's training phase does:
// the first frame resets the stage to "before jumping" and the previous
// pose to "standing & hand overlap with body".
func (c *Classifier) TrainSequence(frames []LabeledFrame) error {
	prev := pose.StandHandsAtSides
	stage := pose.StageBeforeJump
	for i, f := range frames {
		if err := c.Observe(prev, stage, f.Label, f.Enc); err != nil {
			return fmt.Errorf("dbn: frame %d: %w", i, err)
		}
		stage = pose.NextStage(stage, f.Label)
		prev = f.Label
	}
	return nil
}

// Score holds one pose's posterior for a frame.
type Score struct {
	Pose pose.Pose
	Prob float64
}

// Result is the classification of one frame.
type Result struct {
	// Pose is the decision; PoseUnknown when nothing is accepted.
	Pose pose.Pose
	// Prob is the accepted pose's posterior (0 for Unknown).
	Prob float64
	// Stage is the jump-stage flag AFTER processing this frame.
	Stage pose.Stage
	// Scores lists every pose's posterior, descending.
	Scores []Score
}

// threshold returns the acceptance threshold for p.
func (c *Classifier) threshold(p pose.Pose) float64 {
	if th, ok := c.cfg.PerPoseTh[p]; ok {
		return th
	}
	if p == c.cfg.Dominant {
		return c.cfg.ThDefault
	}
	return c.cfg.ThPose
}

// Session carries the per-clip decoding state: the previous-pose input
// and the jump-stage flag. Sessions are not safe for concurrent use; make
// one per clip.
type Session struct {
	c *Classifier
	// prev is the previous-pose input for the next frame.
	prev pose.Pose
	// lastRecognized is the most recently accepted pose.
	lastRecognized pose.Pose
	// stage is the current jump-stage flag.
	stage pose.Stage
	// sc instruments decisions (latency, Unknown rate per jump stage);
	// nil disables.
	sc *obs.Scope
	// frame counts Classify calls, so Unknown decisions journal with
	// the frame index they were made on.
	frame int
}

// NewSession starts decoding a clip: "When the first frame enters, we
// reset the jumping stage to 'before jumping' and the current pose to
// 'standing & hand overlap with body'."
func (c *Classifier) NewSession() *Session {
	return &Session{
		c:              c,
		prev:           pose.StandHandsAtSides,
		lastRecognized: pose.StandHandsAtSides,
		stage:          pose.StageBeforeJump,
	}
}

// SetScope attaches an observability scope to the session: each
// Classify call is timed into the classify stage histogram and every
// decision is attributed to the jump stage it was made under (the
// pipeline.decided.* / pipeline.unknown.* counters). A nil scope (the
// default) disables instrumentation at zero cost.
func (s *Session) SetScope(sc *obs.Scope) { s.sc = sc }

// Stage returns the current jump-stage flag.
func (s *Session) Stage() pose.Stage { return s.stage }

// Prev returns the previous-pose input that the next frame will use.
func (s *Session) Prev() pose.Pose { return s.prev }

// Classify decodes one frame and advances the session state.
func (s *Session) Classify(enc keypoint.Encoding) (Result, error) {
	c := s.c
	if !c.trained {
		return Result{}, ErrNotTrained
	}
	sp := s.sc.Start(obs.StageClassify)
	defer sp.End()
	if enc.Partitions != c.cfg.Partitions || enc.Rings != c.cfg.Rings {
		return Result{}, fmt.Errorf("%w: got %d partitions/%d rings, configured %d/%d",
			ErrBadEncoding, enc.Partitions, enc.Rings, c.cfg.Partitions, c.cfg.Rings)
	}
	scores := make([]Score, 0, pose.NumPoses)
	for _, p := range pose.AllPoses() {
		ev := bayes.Evidence{
			nodePrev:  int(s.prev),
			nodeStage: int(s.stage) - 1,
		}
		if c.cfg.UsePartEvidence {
			for i := 0; i < keypoint.NumParts; i++ {
				ev[nodePart0+i] = enc.Area[i]
			}
		}
		if c.cfg.UseAreaEvidence {
			for j, occ := range enc.OccupiedAreas() {
				v := 0
				if occ {
					v = 1
				}
				ev[c.nodeArea0()+j] = v
			}
		}
		if c.cfg.Rings > 0 {
			for i := 0; i < keypoint.NumParts; i++ {
				ev[c.nodeRing0()+i] = enc.Ring[i]
			}
		}
		dist, err := c.nets[p].PosteriorVE(nodePose, ev)
		if err != nil {
			return Result{}, fmt.Errorf("dbn: scoring %v: %w", p, err)
		}
		scores = append(scores, Score{Pose: p, Prob: dist[1]})
	}
	sort.SliceStable(scores, func(i, j int) bool { return scores[i].Prob > scores[j].Prob })

	// Decision: best pose whose posterior clears its threshold; the
	// dominant pose uses the (lower) ThDefault floor.
	decided := pose.PoseUnknown
	prob := 0.0
	for _, sc := range scores {
		if sc.Prob > c.threshold(sc.Pose) {
			decided, prob = sc.Pose, sc.Prob
			break
		}
	}

	// The decision is attributed to the stage it was made UNDER (the
	// evidence fed to the networks), not the stage it advances to.
	s.sc.Decision(int(s.stage), s.frame, decided == pose.PoseUnknown)
	s.frame++

	// Advance the dynamic state.
	if decided != pose.PoseUnknown {
		s.stage = pose.NextStage(s.stage, decided)
		s.prev = decided
		s.lastRecognized = decided
	} else if c.cfg.CarryLastRecognized {
		s.prev = s.lastRecognized
	} else {
		s.prev = pose.PoseUnknown
	}
	return Result{Pose: decided, Prob: prob, Stage: s.stage, Scores: scores}, nil
}

// ClassifySequence decodes a whole clip with a fresh session, returning
// one result per frame.
func (c *Classifier) ClassifySequence(encs []keypoint.Encoding) ([]Result, error) {
	return c.ClassifySequenceScoped(encs, nil)
}

// ClassifySequenceScoped is ClassifySequence with an observability
// scope attached to the clip's session (nil behaves exactly like
// ClassifySequence).
func (c *Classifier) ClassifySequenceScoped(encs []keypoint.Encoding, sc *obs.Scope) ([]Result, error) {
	s := c.NewSession()
	s.SetScope(sc)
	out := make([]Result, 0, len(encs))
	for i, enc := range encs {
		r, err := s.Classify(enc)
		if err != nil {
			return nil, fmt.Errorf("dbn: frame %d: %w", i, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Network exposes the per-pose network for inspection (experiments print
// Figure 7 structures from it). The returned network is live; do not
// mutate it during classification.
func (c *Classifier) Network(p pose.Pose) (*bayes.Network, error) {
	if !p.Valid() {
		return nil, fmt.Errorf("%w: %v", ErrBadLabel, p)
	}
	return c.nets[p], nil
}

// Trained reports whether any observation has been made.
func (c *Classifier) Trained() bool { return c.trained }
