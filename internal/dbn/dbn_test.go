package dbn

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/imaging"
	"repro/internal/keypoint"
	"repro/internal/pose"
)

// jitteredAngles perturbs a pose's canonical configuration, simulating
// inter-frame and inter-subject variation.
func jitteredAngles(p pose.Pose, r *rand.Rand, amp float64) pose.JointAngles {
	a := pose.Angles(p)
	j := func(v float64) float64 { return v + (r.Float64()*2-1)*amp }
	return pose.JointAngles{
		TorsoLean: j(a.TorsoLean), Neck: j(a.Neck), Shoulder: j(a.Shoulder),
		Elbow: j(a.Elbow), Hip: j(a.Hip), Knee: j(a.Knee), Ankle: j(a.Ankle),
	}
}

// encodePose produces the ground-truth feature encoding of a pose with
// jitter.
func encodePose(t *testing.T, p pose.Pose, r *rand.Rand, partitions int) keypoint.Encoding {
	t.Helper()
	s := pose.Compute(imaging.Pointf{X: 120, Y: 110}, 100, jitteredAngles(p, r, 0.06), pose.DefaultProportions())
	enc, err := keypoint.Encode(keypoint.FromSkeleton2D(s), partitions)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// canonicalSequence is a correct jump as a pose-label sequence, a few
// frames per pose (roughly the paper's ~40-frame clips).
func canonicalSequence() []pose.Pose {
	plan := []struct {
		p pose.Pose
		n int
	}{
		{pose.StandHandsAtSides, 3},
		{pose.StandHandsForward, 3},
		{pose.StandHandsBackward, 2},
		{pose.CrouchHandsBackward, 3},
		{pose.CrouchHandsForward, 2},
		{pose.TakeoffExtension, 2},
		{pose.TakeoffLean, 2},
		{pose.TakeoffToeOff, 2},
		{pose.AirAscendArmsUp, 2},
		{pose.AirTuck, 3},
		{pose.AirExtendForward, 2},
		{pose.AirDescendLegsForward, 2},
		{pose.AirArmsDownLegsForward, 2},
		{pose.LandHeelStrike, 2},
		{pose.LandCrouch, 3},
		{pose.LandDeepCrouch, 2},
		{pose.LandStandUp, 2},
		{pose.LandStand, 3},
	}
	var seq []pose.Pose
	for _, pl := range plan {
		for i := 0; i < pl.n; i++ {
			seq = append(seq, pl.p)
		}
	}
	return seq
}

// trainedClassifier builds a classifier trained on several jittered clips.
func trainedClassifier(t *testing.T, cfg Config, clips int, seed int64) *Classifier {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	for k := 0; k < clips; k++ {
		var frames []LabeledFrame
		for _, p := range canonicalSequence() {
			frames = append(frames, LabeledFrame{Label: p, Enc: encodePose(t, p, r, cfg.Partitions)})
		}
		if err := c.TrainSequence(frames); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"odd partitions", func(c *Config) { c.Partitions = 7 }},
		{"tiny partitions", func(c *Config) { c.Partitions = 2 }},
		{"bad dominant", func(c *Config) { c.Dominant = pose.PoseUnknown }},
		{"bad threshold", func(c *Config) { c.ThPose = 1.5 }},
		{"no evidence", func(c *Config) { c.UsePartEvidence = false; c.UseAreaEvidence = false }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mut(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("expected config error")
			}
		})
	}
}

func TestUntrainedClassifierErrors(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := c.NewSession()
	r := rand.New(rand.NewSource(1))
	enc := encodePose(t, pose.StandHandsForward, r, 8)
	if _, err := s.Classify(enc); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
	if c.Trained() {
		t.Error("Trained() true before observations")
	}
}

func TestObserveValidation(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	enc := encodePose(t, pose.StandHandsForward, r, 8)
	if err := c.Observe(pose.StandHandsAtSides, pose.StageBeforeJump, pose.PoseUnknown, enc); !errors.Is(err, ErrBadLabel) {
		t.Errorf("unknown label err = %v", err)
	}
	if err := c.Observe(pose.StandHandsAtSides, pose.Stage(9), pose.StandHandsForward, enc); err == nil {
		t.Error("bad stage accepted")
	}
	bad := enc
	bad.Partitions = 16
	if err := c.Observe(pose.StandHandsAtSides, pose.StageBeforeJump, pose.StandHandsForward, bad); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("bad encoding err = %v", err)
	}
}

func TestClassifyRecoversTrainingPoses(t *testing.T) {
	cfg := DefaultConfig()
	c := trainedClassifier(t, cfg, 8, 42)
	r := rand.New(rand.NewSource(99))

	// Decode a fresh jittered clip and expect high frame accuracy.
	seq := canonicalSequence()
	encs := make([]keypoint.Encoding, len(seq))
	for i, p := range seq {
		encs[i] = encodePose(t, p, r, cfg.Partitions)
	}
	results, err := c.ClassifySequence(encs)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, res := range results {
		if res.Pose == seq[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(seq))
	if acc < 0.7 {
		t.Errorf("accuracy on in-distribution clip = %.2f, want >= 0.7", acc)
		for i, res := range results {
			t.Logf("frame %2d: truth=%v got=%v (p=%.3f stage=%v)", i, seq[i], res.Pose, res.Prob, res.Stage)
		}
	}
}

func TestStageAdvancesThroughJump(t *testing.T) {
	cfg := DefaultConfig()
	c := trainedClassifier(t, cfg, 8, 7)
	r := rand.New(rand.NewSource(3))
	seq := canonicalSequence()
	s := c.NewSession()
	if s.Stage() != pose.StageBeforeJump {
		t.Fatalf("initial stage = %v", s.Stage())
	}
	var last pose.Stage
	for _, p := range seq {
		res, err := s.Classify(encodePose(t, p, r, cfg.Partitions))
		if err != nil {
			t.Fatal(err)
		}
		if res.Stage < last {
			t.Fatalf("stage regressed from %v to %v", last, res.Stage)
		}
		last = res.Stage
	}
	if last != pose.StageLanding {
		t.Errorf("final stage = %v, want landing", last)
	}
}

func TestSessionResetBetweenClips(t *testing.T) {
	cfg := DefaultConfig()
	c := trainedClassifier(t, cfg, 4, 11)
	s1 := c.NewSession()
	if s1.Prev() != pose.StandHandsAtSides {
		t.Errorf("initial prev = %v, want StandHandsAtSides (the paper's reset)", s1.Prev())
	}
	if s1.Stage() != pose.StageBeforeJump {
		t.Errorf("initial stage = %v", s1.Stage())
	}
}

func TestUnknownCarryForward(t *testing.T) {
	// Feed garbage encodings (all parts absent) and verify that the
	// previous-pose input stays at the last recognised pose when
	// CarryLastRecognized is on, and resets to PoseUnknown when off.
	run := func(carry bool) pose.Pose {
		cfg := DefaultConfig()
		cfg.CarryLastRecognized = carry
		c := trainedClassifier(t, cfg, 4, 13)
		s := c.NewSession()
		r := rand.New(rand.NewSource(5))
		// First, a recognisable frame.
		if _, err := s.Classify(encodePose(t, pose.StandHandsForward, r, cfg.Partitions)); err != nil {
			t.Fatal(err)
		}
		recognised := s.Prev()
		if recognised == pose.PoseUnknown {
			t.Skip("first frame not recognised; threshold too strict for this seed")
		}
		// Then a garbage frame that should be Unknown.
		garbage := keypoint.Encoding{Partitions: cfg.Partitions}
		res, err := s.Classify(garbage)
		if err != nil {
			t.Fatal(err)
		}
		if res.Pose != pose.PoseUnknown {
			t.Skip("garbage frame was classified; cannot exercise carry-forward")
		}
		return s.Prev()
	}
	if got := run(true); got == pose.PoseUnknown {
		t.Error("carry-forward ON still reset the previous pose to Unknown")
	}
	if got := run(false); got != pose.PoseUnknown {
		t.Errorf("carry-forward OFF kept prev = %v, want Unknown", got)
	}
}

func TestScoresSortedAndComplete(t *testing.T) {
	cfg := DefaultConfig()
	c := trainedClassifier(t, cfg, 4, 17)
	r := rand.New(rand.NewSource(2))
	s := c.NewSession()
	res, err := s.Classify(encodePose(t, pose.AirTuck, r, cfg.Partitions))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != pose.NumPoses {
		t.Fatalf("scores = %d entries, want %d", len(res.Scores), pose.NumPoses)
	}
	for i := 1; i < len(res.Scores); i++ {
		if res.Scores[i].Prob > res.Scores[i-1].Prob {
			t.Fatal("scores not sorted descending")
		}
	}
	for _, sc := range res.Scores {
		if sc.Prob < 0 || sc.Prob > 1 {
			t.Fatalf("score %v out of [0,1]", sc.Prob)
		}
	}
}

func TestPerPoseThresholdOverride(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PerPoseTh = map[pose.Pose]float64{pose.AirTuck: 0.999999}
	c := trainedClassifier(t, cfg, 4, 19)
	r := rand.New(rand.NewSource(4))
	s := c.NewSession()
	// Walk the session into the air stage first so AirTuck is in context.
	for _, p := range []pose.Pose{
		pose.CrouchHandsForward, pose.TakeoffExtension, pose.AirAscendArmsUp,
	} {
		if _, err := s.Classify(encodePose(t, p, r, cfg.Partitions)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Classify(encodePose(t, pose.AirTuck, r, cfg.Partitions))
	if err != nil {
		t.Fatal(err)
	}
	if res.Pose == pose.AirTuck {
		t.Error("AirTuck accepted despite a ~1.0 threshold override")
	}
}

func TestNetworkAccessor(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.Network(pose.StandHandsForward)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 7 structure: prev + stage + pose + 5 parts + 8 areas = 16.
	if n.Len() != 16 {
		t.Errorf("network nodes = %d, want 16", n.Len())
	}
	if _, err := c.Network(pose.PoseUnknown); err == nil {
		t.Error("Network(PoseUnknown) should fail")
	}
}

func TestPrevPoseInfluencesDecision(t *testing.T) {
	// The dynamic part: an ambiguous encoding must be pulled toward the
	// pose consistent with the previous pose. Train normally, then
	// compare the posterior of TakeoffExtension with prev=CrouchHandsForward
	// versus prev=StandHandsAtSides.
	cfg := DefaultConfig()
	c := trainedClassifier(t, cfg, 8, 23)
	r := rand.New(rand.NewSource(6))
	enc := encodePose(t, pose.TakeoffExtension, r, cfg.Partitions)

	score := func(prev pose.Pose, stage pose.Stage) float64 {
		s := &Session{c: c, prev: prev, lastRecognized: prev, stage: stage}
		res, err := s.Classify(enc)
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range res.Scores {
			if sc.Pose == pose.TakeoffExtension {
				return sc.Prob
			}
		}
		return 0
	}
	after := score(pose.CrouchHandsForward, pose.StageBeforeJump)
	cold := score(pose.StandHandsAtSides, pose.StageBeforeJump)
	if after <= cold {
		t.Errorf("P(takeoff | prev=crouch) = %.4f should exceed P(takeoff | prev=stand) = %.4f", after, cold)
	}
}

func TestPartitionsSweepTrains(t *testing.T) {
	// The EXT1 experiment uses 12/16/24 partitions; the bank must build
	// and train for each.
	for _, parts := range []int{8, 12, 16} {
		cfg := DefaultConfig()
		cfg.Partitions = parts
		c, err := New(cfg)
		if err != nil {
			t.Fatalf("partitions=%d: %v", parts, err)
		}
		r := rand.New(rand.NewSource(int64(parts)))
		var frames []LabeledFrame
		for _, p := range canonicalSequence()[:10] {
			frames = append(frames, LabeledFrame{Label: p, Enc: encodePose(t, p, r, parts)})
		}
		if err := c.TrainSequence(frames); err != nil {
			t.Fatalf("partitions=%d: %v", parts, err)
		}
	}
}

func TestClassifySequenceLength(t *testing.T) {
	cfg := DefaultConfig()
	c := trainedClassifier(t, cfg, 2, 31)
	r := rand.New(rand.NewSource(8))
	encs := []keypoint.Encoding{
		encodePose(t, pose.StandHandsAtSides, r, cfg.Partitions),
		encodePose(t, pose.StandHandsForward, r, cfg.Partitions),
	}
	res, err := c.ClassifySequence(encs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
}

func TestConcurrentSessions(t *testing.T) {
	// The classifier is documented safe for concurrent read use; two
	// sessions decoding in parallel must not interfere (run under -race).
	cfg := DefaultConfig()
	c := trainedClassifier(t, cfg, 3, 91)
	r := rand.New(rand.NewSource(7))
	seq := canonicalSequence()[:10]
	encs := make([]keypoint.Encoding, len(seq))
	for i, p := range seq {
		encs[i] = encodePose(t, p, r, cfg.Partitions)
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func() {
			s := c.NewSession()
			for _, enc := range encs {
				if _, err := s.Classify(enc); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
