package dbn

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/bayes"
	"repro/internal/pose"
)

// modelFile is the on-disk representation of a trained classifier.
type modelFile struct {
	// Version guards the format.
	Version int
	Config  Config
	Trained bool
	// Networks maps pose (as int) to its network snapshot.
	Networks map[int]bayes.Snapshot
	// Transitions is the labelled pose-bigram count matrix for the
	// Viterbi decoder.
	Transitions [pose.NumPoses + 1][pose.NumPoses + 1]float64
}

const modelVersion = 1

// Save serialises the trained bank with encoding/gob.
func (c *Classifier) Save(w io.Writer) error {
	mf := modelFile{
		Version:     modelVersion,
		Config:      c.cfg,
		Trained:     c.trained,
		Networks:    make(map[int]bayes.Snapshot, pose.NumPoses),
		Transitions: c.transitions,
	}
	for _, p := range pose.AllPoses() {
		mf.Networks[int(p)] = c.nets[p].Snapshot()
	}
	if err := gob.NewEncoder(w).Encode(mf); err != nil {
		return fmt.Errorf("dbn: encoding model: %w", err)
	}
	return nil
}

// Load reconstructs a classifier saved with Save.
func Load(r io.Reader) (*Classifier, error) {
	var mf modelFile
	if err := gob.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("dbn: decoding model: %w", err)
	}
	if mf.Version != modelVersion {
		return nil, fmt.Errorf("dbn: model version %d, want %d", mf.Version, modelVersion)
	}
	c, err := New(mf.Config)
	if err != nil {
		return nil, fmt.Errorf("dbn: model config: %w", err)
	}
	for _, p := range pose.AllPoses() {
		snap, ok := mf.Networks[int(p)]
		if !ok {
			return nil, fmt.Errorf("dbn: model missing network for %v", p)
		}
		net, err := bayes.FromSnapshot(snap)
		if err != nil {
			return nil, fmt.Errorf("dbn: network for %v: %w", p, err)
		}
		// Structural check: the rebuilt network must match what New
		// would construct.
		if net.Len() != c.nets[p].Len() {
			return nil, fmt.Errorf("dbn: network for %v has %d nodes, want %d",
				p, net.Len(), c.nets[p].Len())
		}
		c.nets[p] = net
	}
	c.trained = mf.Trained
	c.transitions = mf.Transitions
	return c, nil
}
