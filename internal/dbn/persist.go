package dbn

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"repro/internal/bayes"
	"repro/internal/pose"
)

// poseNetwork pairs a pose with its network snapshot in the model file.
type poseNetwork struct {
	Pose    int
	Network bayes.Snapshot
}

// poseThreshold is one Config.PerPoseTh entry, flattened for stable
// serialisation.
type poseThreshold struct {
	Pose int
	Th   float64
}

// modelFile is the on-disk representation of a trained classifier. Maps
// are flattened into ordered slices so identical classifiers serialise
// to identical bytes (gob encodes map entries in random iteration
// order), which the parallel-vs-sequential golden tests rely on.
type modelFile struct {
	// Version guards the format.
	Version int
	// Config is the classifier configuration with PerPoseTh nilled out;
	// the overrides travel in Thresholds instead.
	Config Config
	// Thresholds holds Config.PerPoseTh sorted by pose.
	Thresholds []poseThreshold
	Trained    bool
	// Networks lists every pose's network snapshot in pose order.
	Networks []poseNetwork
	// Transitions is the labelled pose-bigram count matrix for the
	// Viterbi decoder.
	Transitions [pose.NumPoses + 1][pose.NumPoses + 1]float64
}

// modelVersion 2 replaced the pose→network map with an ordered slice,
// making Save deterministic.
const modelVersion = 2

// Save serialises the trained bank with encoding/gob. The output is
// deterministic: saving the same trained classifier twice yields
// identical bytes.
func (c *Classifier) Save(w io.Writer) error {
	cfg := c.cfg
	cfg.PerPoseTh = nil
	mf := modelFile{
		Version:     modelVersion,
		Config:      cfg,
		Trained:     c.trained,
		Networks:    make([]poseNetwork, 0, pose.NumPoses),
		Transitions: c.transitions,
	}
	for p, th := range c.cfg.PerPoseTh {
		mf.Thresholds = append(mf.Thresholds, poseThreshold{Pose: int(p), Th: th})
	}
	sort.Slice(mf.Thresholds, func(i, j int) bool { return mf.Thresholds[i].Pose < mf.Thresholds[j].Pose })
	for _, p := range pose.AllPoses() {
		mf.Networks = append(mf.Networks, poseNetwork{Pose: int(p), Network: c.nets[p].Snapshot()})
	}
	if err := gob.NewEncoder(w).Encode(mf); err != nil {
		return fmt.Errorf("dbn: encoding model: %w", err)
	}
	return nil
}

// Load reconstructs a classifier saved with Save.
func Load(r io.Reader) (*Classifier, error) {
	var mf modelFile
	if err := gob.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("dbn: decoding model: %w", err)
	}
	if mf.Version != modelVersion {
		return nil, fmt.Errorf("dbn: model version %d, want %d", mf.Version, modelVersion)
	}
	if len(mf.Thresholds) > 0 {
		mf.Config.PerPoseTh = make(map[pose.Pose]float64, len(mf.Thresholds))
		for _, pt := range mf.Thresholds {
			mf.Config.PerPoseTh[pose.Pose(pt.Pose)] = pt.Th
		}
	}
	c, err := New(mf.Config)
	if err != nil {
		return nil, fmt.Errorf("dbn: model config: %w", err)
	}
	nets := make(map[int]bayes.Snapshot, len(mf.Networks))
	for _, pn := range mf.Networks {
		nets[pn.Pose] = pn.Network
	}
	for _, p := range pose.AllPoses() {
		snap, ok := nets[int(p)]
		if !ok {
			return nil, fmt.Errorf("dbn: model missing network for %v", p)
		}
		net, err := bayes.FromSnapshot(snap)
		if err != nil {
			return nil, fmt.Errorf("dbn: network for %v: %w", p, err)
		}
		// Structural check: the rebuilt network must match what New
		// would construct.
		if net.Len() != c.nets[p].Len() {
			return nil, fmt.Errorf("dbn: network for %v has %d nodes, want %d",
				p, net.Len(), c.nets[p].Len())
		}
		c.nets[p] = net
	}
	c.trained = mf.Trained
	c.transitions = mf.Transitions
	return c, nil
}
