package synth

import (
	"errors"
	"testing"

	"repro/internal/extract"
	"repro/internal/imaging"
	"repro/internal/pose"
)

func TestScriptFrames(t *testing.T) {
	if n := ScriptFrames(DefaultScript()); n < 30 || n > 60 {
		t.Errorf("default script = %d frames, want ~40 like the paper's clips", n)
	}
	if ScriptFrames(nil) != 0 {
		t.Error("empty script should have 0 frames")
	}
}

func TestDefaultScriptCoversAllStages(t *testing.T) {
	seen := map[pose.Stage]bool{}
	stage := pose.StageBeforeJump
	for _, st := range DefaultScript() {
		stage = pose.NextStage(stage, st.Pose)
		seen[stage] = true
	}
	for s := pose.StageBeforeJump; s <= pose.StageLanding; s++ {
		if !seen[s] {
			t.Errorf("default script never reaches stage %v", s)
		}
	}
}

func TestDefaultScriptStagesAreOrdered(t *testing.T) {
	// Pose canonical stages in the script must be non-decreasing.
	last := pose.StageBeforeJump
	for _, st := range DefaultScript() {
		s := pose.StageOf(st.Pose)
		if s < last {
			t.Fatalf("script pose %v (stage %v) after stage %v", st.Pose, s, last)
		}
		last = s
	}
}

func TestFaultyScripts(t *testing.T) {
	for _, fault := range []pose.Pose{pose.AirArch, pose.LandFallBack, pose.LandStepForward} {
		script := FaultyScript(fault)
		found := false
		for _, st := range script {
			if st.Pose == fault {
				found = true
			}
		}
		if !found {
			t.Errorf("FaultyScript(%v) does not contain the fault", fault)
		}
		if ScriptFrames(script) != ScriptFrames(DefaultScript()) {
			t.Errorf("FaultyScript(%v) changed the frame count", fault)
		}
	}
	// Non-fault poses leave the script untouched.
	script := FaultyScript(pose.AirTuck)
	def := DefaultScript()
	for i := range script {
		if script[i] != def[i] {
			t.Fatal("FaultyScript with non-fault pose modified the script")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Spec)
	}{
		{"zero width", func(s *Spec) { s.Width = 0 }},
		{"negative height", func(s *Spec) { s.Height = -1 }},
		{"tiny body", func(s *Spec) { s.BodyPx = 5 }},
		{"bad pose", func(s *Spec) { s.Script = []Step{{Pose: pose.PoseUnknown, Frames: 2}} }},
		{"zero frames", func(s *Spec) { s.Script = []Step{{Pose: pose.AirTuck, Frames: 0}} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := DefaultSpec(1)
			tt.mut(&spec)
			if _, err := Generate(spec); !errors.Is(err, ErrBadSpec) {
				t.Errorf("err = %v, want ErrBadSpec", err)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Frames) != len(b.Frames) {
		t.Fatal("frame counts differ")
	}
	for i := range a.Frames {
		if !a.Frames[i].Silhouette.Equal(b.Frames[i].Silhouette) {
			t.Fatalf("frame %d silhouettes differ for equal seeds", i)
		}
		for k := range a.Frames[i].Image.Pix {
			if a.Frames[i].Image.Pix[k] != b.Frames[i].Image.Pix[k] {
				t.Fatalf("frame %d pixels differ for equal seeds", i)
			}
		}
	}
	c, err := Generate(DefaultSpec(43))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Frames {
		if !a.Frames[i].Silhouette.Equal(c.Frames[i].Silhouette) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical clips")
	}
}

func TestGenerateFrameCountAndLabels(t *testing.T) {
	clip, err := Generate(DefaultSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(clip.Frames) != ScriptFrames(DefaultScript()) {
		t.Fatalf("frames = %d, want %d", len(clip.Frames), ScriptFrames(DefaultScript()))
	}
	labels := clip.Labels()
	if len(labels) != len(clip.Frames) {
		t.Fatal("Labels length mismatch")
	}
	// First frame is the standing reset pose; last is standing after
	// landing.
	if labels[0] != pose.StandHandsAtSides {
		t.Errorf("first label = %v", labels[0])
	}
	if labels[len(labels)-1] != pose.LandStand {
		t.Errorf("last label = %v", labels[len(labels)-1])
	}
	// Stages must be monotonically non-decreasing.
	last := pose.StageBeforeJump
	for i, f := range clip.Frames {
		if f.Stage < last {
			t.Fatalf("frame %d stage %v regressed from %v", i, f.Stage, last)
		}
		last = f.Stage
	}
	if last != pose.StageLanding {
		t.Errorf("final stage = %v, want landing", last)
	}
}

func TestGenerateFigureOnScreenAndGrounded(t *testing.T) {
	spec := DefaultSpec(3)
	clip, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	groundY := float64(spec.Height) - 8
	for i, f := range clip.Frames {
		b := f.Silhouette.ForegroundBounds()
		if b.Empty() {
			t.Fatalf("frame %d: empty silhouette", i)
		}
		if b.Min.X < 0 || b.Max.X > spec.Width || b.Min.Y < 0 || b.Max.Y > spec.Height {
			t.Fatalf("frame %d: silhouette out of frame: %v", i, b)
		}
		low := f.Skeleton.Lowest().Y
		if f.Stage != pose.StageAir {
			// Grounded frames: lowest joint on the floor line (±2 px).
			if low < groundY-2 || low > groundY+2 {
				t.Errorf("frame %d (%v): lowest joint %v off the floor %v", i, f.Stage, low, groundY)
			}
		} else if low > groundY-1 {
			t.Errorf("air frame %d: lowest joint %v not airborne", i, low)
		}
	}
}

func TestGenerateMovesForward(t *testing.T) {
	clip, err := Generate(DefaultSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	firstX := clip.Frames[0].Skeleton.Hip.X
	lastX := clip.Frames[len(clip.Frames)-1].Skeleton.Hip.X
	if lastX-firstX < DefaultJumpSpan*0.8 {
		t.Errorf("hip moved %v px, want ≈ %v (the jump distance)", lastX-firstX, DefaultJumpSpan)
	}
}

func TestGeneratedFramesExtractable(t *testing.T) {
	// End-to-end with the Section 2 extractor: the silhouette recovered
	// from the noisy RGB frame must substantially overlap the ground
	// truth. This is the core substitution-validity check.
	spec := DefaultSpec(11)
	clip, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	e, err := extract.NewExtractor()
	if err != nil {
		t.Fatal(err)
	}
	e.SetBackground(clip.Background)
	for _, i := range []int{0, len(clip.Frames) / 2, len(clip.Frames) - 1} {
		f := clip.Frames[i]
		mask, err := e.Extract(f.Image)
		if err != nil {
			t.Fatal(err)
		}
		inter, union := 0, 0
		for k := range mask.Pix {
			a, b := mask.Pix[k] != 0, f.Silhouette.Pix[k] != 0
			if a && b {
				inter++
			}
			if a || b {
				union++
			}
		}
		if union == 0 {
			t.Fatalf("frame %d: nothing extracted", i)
		}
		iou := float64(inter) / float64(union)
		if iou < 0.75 {
			t.Errorf("frame %d: extraction IoU = %.2f, want >= 0.75", i, iou)
		}
	}
}

func TestHolesAppearWithHoleRate(t *testing.T) {
	spec := DefaultSpec(13)
	spec.HoleRate = 0.01
	clip, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Count figure pixels whose frame colour is backdrop-dark in the
	// middle frame: dropout holes must exist.
	f := clip.Frames[len(clip.Frames)/2]
	holes := 0
	for i, v := range f.Silhouette.Pix {
		if v == 0 {
			continue
		}
		r, g, b := f.Image.Pix[3*i], f.Image.Pix[3*i+1], f.Image.Pix[3*i+2]
		if int(r)+int(g)+int(b) < 90 {
			holes++
		}
	}
	if holes == 0 {
		t.Error("HoleRate produced no dropout holes")
	}
}

func TestRenderSilhouetteConnected(t *testing.T) {
	for _, p := range pose.AllPoses() {
		s := pose.Compute(imaging.Pointf{X: 160, Y: 110}, 95, pose.Angles(p), pose.DefaultProportions())
		sil := RenderSilhouette(s, DefaultShape(), 95, 320, 200)
		_, comps := imaging.Components(sil, imaging.Connect8)
		if len(comps) != 1 {
			t.Errorf("pose %v renders %d components, want 1 (body must be contiguous)", p, len(comps))
		}
	}
}

func TestBackgroundIsDark(t *testing.T) {
	clip, err := Generate(DefaultSpec(17))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, v := range clip.Background.Pix {
		sum += int(v)
	}
	mean := float64(sum) / float64(len(clip.Background.Pix))
	if mean > 30 {
		t.Errorf("backdrop mean intensity = %.1f, want dark (< 30)", mean)
	}
}

func TestMirroredClip(t *testing.T) {
	spec := DefaultSpec(71)
	spec.Mirror = true
	clip, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The hip must move in -X across the clip.
	firstX := clip.Frames[0].Skeleton.Hip.X
	lastX := clip.Frames[len(clip.Frames)-1].Skeleton.Hip.X
	if lastX >= firstX {
		t.Errorf("mirrored jump hip moved %v -> %v, want decreasing", firstX, lastX)
	}
	// The mirrored ground-truth skeleton must agree with the mirrored
	// silhouette: the head should sit inside foreground.
	fr := clip.Frames[len(clip.Frames)/2]
	h := fr.Skeleton.Head.Round()
	if !h.In(spec.Width, spec.Height) || fr.Silhouette.At(h.X, h.Y) != 1 {
		t.Errorf("mirrored skeleton head %v not on the mirrored silhouette", h)
	}
}

func TestDistractorVisibleButSeparate(t *testing.T) {
	spec := DefaultSpec(72)
	spec.Distractor = true
	clip, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The ball is in the image but NOT in the ground-truth silhouette.
	fr := clip.Frames[len(clip.Frames)/2]
	found := false
	for y := spec.Height - 16; y < spec.Height; y++ {
		for x := 0; x < spec.Width; x++ {
			r, g, b := fr.Image.At(x, y)
			if r > 180 && g > 170 && b < 140 && fr.Silhouette.At(x, y) == 0 {
				found = true
			}
		}
	}
	if !found {
		t.Error("distractor ball not visible in the frame")
	}
}

func TestSinglePoseScript(t *testing.T) {
	spec := DefaultSpec(73)
	spec.Script = []Step{{Pose: pose.StandHandsForward, Frames: 4}}
	clip, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(clip.Frames) != 4 {
		t.Fatalf("frames = %d", len(clip.Frames))
	}
	for _, f := range clip.Frames {
		if f.Label != pose.StandHandsForward {
			t.Fatal("wrong label")
		}
		if f.Stage != pose.StageBeforeJump {
			t.Fatal("wrong stage")
		}
	}
}
