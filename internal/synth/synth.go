// Package synth is the data substrate of the reproduction: the paper's
// video clips (children performing standing long jumps in a studio with a
// black background) are unobtainable, so this package generates the
// closest synthetic equivalent — an articulated 2-D body model
// choreographed through a complete jump, rendered as filled capsules over
// a noisy dark backdrop, with exact per-frame ground-truth labels.
//
// The generated frames drive the identical code path the paper describes
// (RGB frame → Section 2 background subtraction → Section 3 thinning and
// graph clean-up → Section 4 DBN), and the noise knobs reproduce the
// artefact classes the paper fights: silhouette holes and ridged edges
// (sensor noise), noisy skeleton branches (limb dropout speckle) and
// loops (limbs touching the body).
package synth

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/imaging"
	"repro/internal/pose"
)

// Default clip geometry: QVGA-ish frames, body about half the frame tall,
// clips of roughly the paper's "about 40 frames".
const (
	DefaultWidth    = 320
	DefaultHeight   = 200
	DefaultBodyPx   = 95.0
	DefaultNoise    = 6.0
	DefaultJitter   = 0.05
	DefaultJumpSpan = 110.0 // horizontal distance covered in flight, px
	DefaultAirRise  = 28.0  // apex height of the hip above standing, px
)

// ErrBadSpec reports an invalid clip specification.
var ErrBadSpec = errors.New("synth: invalid clip spec")

// Shape holds the capsule radii of the rendered body, as fractions of the
// body height.
type Shape struct {
	Head     float64
	Torso    float64
	UpperArm float64
	Forearm  float64
	Thigh    float64
	Shin     float64
	Foot     float64
}

// DefaultShape returns plausible limb thicknesses.
func DefaultShape() Shape {
	return Shape{
		Head:     0.068,
		Torso:    0.058,
		UpperArm: 0.026,
		Forearm:  0.022,
		Thigh:    0.042,
		Shin:     0.032,
		Foot:     0.020,
	}
}

// RenderSilhouette rasterises the body into a fresh w×h binary mask.
// It is shared by the clip generator, the GA baseline's fitness function
// and the figure experiments.
func RenderSilhouette(s pose.Skeleton2D, shape Shape, height float64, w, h int) *imaging.Binary {
	out := imaging.NewBinary(w, h)
	DrawSilhouette(out, s, shape, height)
	return out
}

// DrawSilhouette rasterises the body into an existing mask (adds
// foreground; does not clear).
func DrawSilhouette(dst *imaging.Binary, s pose.Skeleton2D, shape Shape, height float64) {
	imaging.FillCapsule(dst, s.Hip, s.Shoulder, shape.Torso*height)
	imaging.FillDisc(dst, s.Head, shape.Head*height)
	imaging.FillCapsule(dst, s.Shoulder, s.Elbow, shape.UpperArm*height)
	imaging.FillCapsule(dst, s.Elbow, s.Hand, shape.Forearm*height)
	imaging.FillCapsule(dst, s.Hip, s.Knee, shape.Thigh*height)
	imaging.FillCapsule(dst, s.Knee, s.Ankle, shape.Shin*height)
	imaging.FillCapsule(dst, s.Ankle, s.Toe, shape.Foot*height)
}

// Step is one segment of a jump script: hold a pose for N frames.
type Step struct {
	Pose   pose.Pose
	Frames int
}

// DefaultScript returns the standard (correct) jump choreography,
// ~40 frames like the paper's clips.
func DefaultScript() []Step {
	return []Step{
		{pose.StandHandsAtSides, 3},
		{pose.StandHandsForward, 3},
		{pose.StandHandsBackward, 2},
		{pose.CrouchHandsBackward, 3},
		{pose.CrouchHandsForward, 2},
		{pose.TakeoffExtension, 2},
		{pose.TakeoffLean, 2},
		{pose.TakeoffToeOff, 2},
		{pose.AirAscendArmsUp, 2},
		{pose.AirTuck, 3},
		{pose.AirExtendForward, 2},
		{pose.AirDescendLegsForward, 2},
		{pose.AirArmsDownLegsForward, 2},
		{pose.LandHeelStrike, 2},
		{pose.LandCrouch, 3},
		{pose.LandDeepCrouch, 2},
		{pose.LandStandUp, 2},
		{pose.LandStand, 3},
	}
}

// FaultyScript returns a jump containing the given fault. Supported
// faults: AirArch (replaces the tuck), LandFallBack (replaces the
// absorption crouch), LandStepForward (replaces the stand-up). Other
// poses return the default script unchanged.
func FaultyScript(fault pose.Pose) []Step {
	script := DefaultScript()
	switch fault {
	case pose.AirArch:
		for i := range script {
			if script[i].Pose == pose.AirTuck {
				script[i].Pose = pose.AirArch
			}
		}
	case pose.LandFallBack:
		for i := range script {
			if script[i].Pose == pose.LandCrouch || script[i].Pose == pose.LandDeepCrouch {
				script[i].Pose = pose.LandFallBack
			}
		}
	case pose.LandStepForward:
		for i := range script {
			if script[i].Pose == pose.LandStandUp {
				script[i].Pose = pose.LandStepForward
			}
		}
	}
	return script
}

// ScriptFrames returns the total frame count of a script.
func ScriptFrames(script []Step) int {
	n := 0
	for _, st := range script {
		n += st.Frames
	}
	return n
}

// Spec configures clip generation. Use DefaultSpec as the base.
type Spec struct {
	// Width, Height are the frame dimensions.
	Width, Height int
	// BodyPx is the body height in pixels.
	BodyPx float64
	// Script is the choreography; defaults to DefaultScript().
	Script []Step
	// Seed drives all stochastic choices; equal specs yield equal clips.
	Seed int64
	// NoiseSigma is the per-channel Gaussian sensor noise.
	NoiseSigma float64
	// JitterAmp is the per-frame joint-angle jitter (radians).
	JitterAmp float64
	// JumpSpan is the horizontal flight distance in pixels.
	JumpSpan float64
	// AirRise is the apex hip rise during flight in pixels.
	AirRise float64
	// HoleRate is the probability per figure pixel of a dropout hole in
	// the rendered frame (exercises the median filter).
	HoleRate float64
	// Mirror renders the jump right-to-left (the camera on the jumper's
	// other side); consumers must auto-orient or mis-encode every frame.
	Mirror bool
	// Distractor adds a moving ball rolling along the floor — a second
	// foreground object the extraction stage must reject.
	Distractor bool
	// Shape is the limb thickness profile.
	Shape Shape
	// Proportions is the segment length profile.
	Proportions pose.Proportions
}

// DefaultSpec returns the standard generation parameters with the given
// seed.
func DefaultSpec(seed int64) Spec {
	return Spec{
		Width:       DefaultWidth,
		Height:      DefaultHeight,
		BodyPx:      DefaultBodyPx,
		Script:      DefaultScript(),
		Seed:        seed,
		NoiseSigma:  DefaultNoise,
		JitterAmp:   DefaultJitter,
		JumpSpan:    DefaultJumpSpan,
		AirRise:     DefaultAirRise,
		HoleRate:    0.002,
		Shape:       DefaultShape(),
		Proportions: pose.DefaultProportions(),
	}
}

// Frame is one generated video frame with its ground truth.
type Frame struct {
	// Image is the rendered RGB frame (figure over backdrop, with noise).
	Image *imaging.RGB
	// Silhouette is the exact noise-free figure mask (ground truth for
	// extraction quality metrics).
	Silhouette *imaging.Binary
	// Label is the ground-truth pose.
	Label pose.Pose
	// Stage is the ground-truth jump stage.
	Stage pose.Stage
	// Skeleton is the ground-truth joint configuration.
	Skeleton pose.Skeleton2D
}

// Clip is a generated video clip.
type Clip struct {
	// Background is the clean backdrop frame (what the paper's system
	// captures before the jumper enters).
	Background *imaging.RGB
	// Frames are the clip frames in order.
	Frames []Frame
	// Spec records the generation parameters.
	Spec Spec
}

// Labels returns the per-frame ground-truth poses.
func (c *Clip) Labels() []pose.Pose {
	out := make([]pose.Pose, len(c.Frames))
	for i, f := range c.Frames {
		out[i] = f.Label
	}
	return out
}

// Generate renders a complete clip from the spec.
func Generate(spec Spec) (*Clip, error) {
	if spec.Width <= 0 || spec.Height <= 0 {
		return nil, fmt.Errorf("%w: dimensions %dx%d", ErrBadSpec, spec.Width, spec.Height)
	}
	if spec.BodyPx <= 10 {
		return nil, fmt.Errorf("%w: body height %v too small", ErrBadSpec, spec.BodyPx)
	}
	if len(spec.Script) == 0 {
		spec.Script = DefaultScript()
	}
	if spec.Shape == (Shape{}) {
		spec.Shape = DefaultShape()
	}
	if spec.Proportions == (pose.Proportions{}) {
		spec.Proportions = pose.DefaultProportions()
	}
	r := rand.New(rand.NewSource(spec.Seed))

	bg := renderBackground(spec, r)
	clip := &Clip{Background: bg, Spec: spec}

	// Flatten the script into per-frame poses and stages.
	type frameInfo struct {
		p     pose.Pose
		stage pose.Stage
		// next pose for transition blending, and position within hold
		next pose.Pose
		tIn  float64 // 0..1 progress within this pose's hold
	}
	var infos []frameInfo
	stage := pose.StageBeforeJump
	for si, st := range spec.Script {
		if !st.Pose.Valid() {
			return nil, fmt.Errorf("%w: step %d pose %v", ErrBadSpec, si, st.Pose)
		}
		if st.Frames <= 0 {
			return nil, fmt.Errorf("%w: step %d has %d frames", ErrBadSpec, si, st.Frames)
		}
		next := st.Pose
		if si+1 < len(spec.Script) {
			next = spec.Script[si+1].Pose
		}
		stage = pose.NextStage(stage, st.Pose)
		for k := 0; k < st.Frames; k++ {
			infos = append(infos, frameInfo{
				p: st.Pose, stage: stage, next: next,
				tIn: float64(k) / float64(st.Frames),
			})
		}
	}

	// Flight window for the ballistic trajectory.
	airStart, airEnd := -1, -1
	for i, fi := range infos {
		if fi.stage == pose.StageAir {
			if airStart < 0 {
				airStart = i
			}
			airEnd = i
		}
	}

	groundY := float64(spec.Height) - 8 // floor line
	startX := float64(spec.Width) * 0.22
	landX := startX + spec.JumpSpan

	for i, fi := range infos {
		// Joint angles: canonical + blend toward the next pose late in
		// the hold + jitter.
		a := pose.Angles(fi.p)
		if fi.tIn > 0.5 && fi.next != fi.p {
			a = pose.Lerp(a, pose.Angles(fi.next), (fi.tIn-0.5)*0.5)
		}
		a = jitter(a, r, spec.JitterAmp)

		// Horizontal root position.
		x := startX
		switch {
		case airStart >= 0 && i >= airStart && i <= airEnd:
			t := float64(i-airStart+1) / float64(airEnd-airStart+2)
			x = startX + t*spec.JumpSpan
		case airEnd >= 0 && i > airEnd:
			x = landX
		case fi.stage == pose.StageJump:
			x = startX + 4 // small forward shift at takeoff
		}

		// Vertical: place the root so the lowest joint touches the
		// floor, then lift ballistically while airborne.
		s := pose.Compute(imaging.Pointf{X: x, Y: 0}, spec.BodyPx, a, spec.Proportions)
		dy := groundY - s.Lowest().Y
		if airStart >= 0 && i >= airStart && i <= airEnd {
			t := float64(i-airStart+1) / float64(airEnd-airStart+2)
			dy -= spec.AirRise * 4 * t * (1 - t)
		}
		s = pose.Compute(imaging.Pointf{X: x, Y: dy}, spec.BodyPx, a, spec.Proportions)

		sil := RenderSilhouette(s, spec.Shape, spec.BodyPx, spec.Width, spec.Height)
		img := composite(bg, sil, s, spec, r)
		if spec.Distractor {
			addDistractor(img, i, len(infos), spec, r)
		}
		if spec.Mirror {
			sil = sil.FlipH()
			img = img.FlipH()
			s = mirrorSkeleton(s, spec.Width)
		}
		clip.Frames = append(clip.Frames, Frame{
			Image:      img,
			Silhouette: sil,
			Label:      fi.p,
			Stage:      fi.stage,
			Skeleton:   s,
		})
	}
	return clip, nil
}

// jitter perturbs every joint angle uniformly within ±amp.
func jitter(a pose.JointAngles, r *rand.Rand, amp float64) pose.JointAngles {
	j := func(v float64) float64 { return v + (r.Float64()*2-1)*amp }
	return pose.JointAngles{
		TorsoLean: j(a.TorsoLean), Neck: j(a.Neck), Shoulder: j(a.Shoulder),
		Elbow: j(a.Elbow), Hip: j(a.Hip), Knee: j(a.Knee), Ankle: j(a.Ankle),
	}
}

// renderBackground paints the dark studio backdrop: near-black with a mild
// vertical lighting gradient and per-pixel noise.
func renderBackground(spec Spec, r *rand.Rand) *imaging.RGB {
	bg := imaging.NewRGB(spec.Width, spec.Height)
	for y := 0; y < spec.Height; y++ {
		base := 8 + 10*float64(y)/float64(spec.Height) // floor slightly brighter
		for x := 0; x < spec.Width; x++ {
			v := base + r.NormFloat64()*2
			bg.Set(x, y, clamp8(v), clamp8(v), clamp8(v+2))
		}
	}
	return bg
}

// composite paints the clothed figure over the backdrop with sensor noise,
// lighting flicker and dropout holes.
func composite(bg *imaging.RGB, sil *imaging.Binary, s pose.Skeleton2D, spec Spec, r *rand.Rand) *imaging.RGB {
	img := bg.Clone()
	flick := 1 + r.NormFloat64()*0.02 // temporal lighting flicker

	// Region masks for clothing colours: repaint in depth order.
	h := spec.BodyPx
	paint := func(mask *imaging.Binary, cr, cg, cb float64) {
		for i, v := range mask.Pix {
			if v == 0 {
				continue
			}
			if spec.HoleRate > 0 && r.Float64() < spec.HoleRate {
				continue // dropout hole: backdrop shows through
			}
			n := r.NormFloat64() * spec.NoiseSigma
			img.Pix[3*i] = clamp8((cr + n) * flick)
			img.Pix[3*i+1] = clamp8((cg + n) * flick)
			img.Pix[3*i+2] = clamp8((cb + n) * flick)
		}
	}
	legs := imaging.NewBinary(sil.W, sil.H)
	imaging.FillCapsule(legs, s.Hip, s.Knee, spec.Shape.Thigh*h)
	imaging.FillCapsule(legs, s.Knee, s.Ankle, spec.Shape.Shin*h)
	imaging.FillCapsule(legs, s.Ankle, s.Toe, spec.Shape.Foot*h)
	// Trousers must contrast clearly with the dark backdrop, as the
	// paper's studio setup ensures ("the light sources can be controlled
	// and are more stable"); too-dark trousers would sit at the
	// extraction threshold and make the legs flicker in and out.
	paint(legs, 95, 115, 185) // blue trousers

	torso := imaging.NewBinary(sil.W, sil.H)
	imaging.FillCapsule(torso, s.Hip, s.Shoulder, spec.Shape.Torso*h)
	paint(torso, 190, 80, 70) // red shirt

	arms := imaging.NewBinary(sil.W, sil.H)
	imaging.FillCapsule(arms, s.Shoulder, s.Elbow, spec.Shape.UpperArm*h)
	imaging.FillCapsule(arms, s.Elbow, s.Hand, spec.Shape.Forearm*h)
	paint(arms, 200, 160, 135) // skin

	head := imaging.NewBinary(sil.W, sil.H)
	imaging.FillDisc(head, s.Head, spec.Shape.Head*h)
	paint(head, 205, 165, 140) // skin

	// Global sensor noise over the whole frame.
	if spec.NoiseSigma > 0 {
		for i := range img.Pix {
			img.Pix[i] = clamp8(float64(img.Pix[i]) + r.NormFloat64()*spec.NoiseSigma/2)
		}
	}
	return img
}

// mirrorSkeleton reflects every joint across the vertical centre line.
func mirrorSkeleton(s pose.Skeleton2D, width int) pose.Skeleton2D {
	m := func(p imaging.Pointf) imaging.Pointf {
		return imaging.Pointf{X: float64(width-1) - p.X, Y: p.Y}
	}
	return pose.Skeleton2D{
		Hip: m(s.Hip), Chest: m(s.Chest), Shoulder: m(s.Shoulder),
		Head: m(s.Head), Elbow: m(s.Elbow), Hand: m(s.Hand),
		Knee: m(s.Knee), Ankle: m(s.Ankle), Toe: m(s.Toe),
	}
}

// addDistractor paints a small bright ball rolling along the floor from
// right to left, out of the jumper's path.
func addDistractor(img *imaging.RGB, frame, total int, spec Spec, r *rand.Rand) {
	t := float64(frame) / float64(total)
	cx := float64(spec.Width) * (0.95 - 0.25*t)
	cy := float64(spec.Height) - 10
	rad := 4.0
	mask := imaging.NewBinary(img.W, img.H)
	imaging.FillDisc(mask, imaging.Pointf{X: cx, Y: cy}, rad)
	for i, v := range mask.Pix {
		if v == 0 {
			continue
		}
		n := r.NormFloat64() * spec.NoiseSigma / 2
		img.Pix[3*i] = clamp8(230 + n)
		img.Pix[3*i+1] = clamp8(220 + n)
		img.Pix[3*i+2] = clamp8(90 + n)
	}
}

func clamp8(v float64) uint8 {
	switch {
	case v <= 0:
		return 0
	case v >= 255:
		return 255
	default:
		return uint8(math.Round(v))
	}
}
