package slj_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIWorkflow exercises the real command-line tools end to end:
// generate a dataset, train a model, evaluate it, coach a clip and export
// a video — the workflow the README documents. It builds the binaries
// with the local toolchain, so it is skipped under -short.
func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI workflow test builds binaries; skipped in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	work := t.TempDir()
	bin := func(name string) string { return filepath.Join(work, name) }

	build := func(tool string) {
		t.Helper()
		cmd := exec.Command(goBin, "build", "-o", bin(tool), "./cmd/"+tool)
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	run := func(tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin(tool), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %s: %v\n%s", tool, strings.Join(args, " "), err, out)
		}
		return string(out)
	}

	for _, tool := range []string{"sljgen", "sljtrain", "sljeval", "sljcoach", "sljvideo"} {
		build(tool)
	}

	data := filepath.Join(work, "data")
	model := filepath.Join(work, "model.gob")

	// Generate a small corpus.
	out := run("sljgen", "-out", data, "-train", "3", "-test", "1", "-seed", "77")
	if !strings.Contains(out, "wrote 3 training clips") {
		t.Fatalf("sljgen output unexpected:\n%s", out)
	}

	// Train and persist.
	out = run("sljtrain", "-data", data, "-out", model)
	if !strings.Contains(out, "model written to") {
		t.Fatalf("sljtrain output unexpected:\n%s", out)
	}
	if st, err := os.Stat(model); err != nil || st.Size() == 0 {
		t.Fatalf("model file missing or empty: %v", err)
	}

	// Evaluate with the persisted model.
	out = run("sljeval", "-data", data, "-model", model)
	if !strings.Contains(out, "overall") || !strings.Contains(out, "%") {
		t.Fatalf("sljeval output unexpected:\n%s", out)
	}

	// Coach one clip.
	clip := filepath.Join(data, "test", "test-00")
	out = run("sljcoach", "-clip", clip, "-model", model)
	if !strings.Contains(out, "coaching report") {
		t.Fatalf("sljcoach output unexpected:\n%s", out)
	}
	if !strings.Contains(out, "jump distance") {
		t.Fatalf("sljcoach missing jump distance:\n%s", out)
	}

	// Export the clip as video.
	y4m := filepath.Join(work, "clip.y4m")
	out = run("sljvideo", "-clip", clip, "-out", y4m)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("sljvideo output unexpected:\n%s", out)
	}
	head := make([]byte, 9)
	f, err := os.Open(y4m)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Read(head); err != nil || string(head) != "YUV4MPEG2" {
		t.Fatalf("exported video missing YUV4MPEG2 signature: %q (%v)", head, err)
	}
}
