// Benchmarks, one per paper artifact (Figures 1-8, the Section 5
// evaluation and its ablation, the GA baseline and the extension sweeps)
// plus micro-benchmarks of each pipeline stage. Each experiment bench
// runs the corresponding internal/experiments runner in its Quick
// configuration; full-size numbers come from `go run ./cmd/sljexp`.
package slj_test

import (
	"fmt"
	"io"
	"log/slog"
	"path/filepath"
	"testing"

	slj "repro"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/extract"
	"repro/internal/imaging"
	"repro/internal/keypoint"
	"repro/internal/obs"
	"repro/internal/pose"
	"repro/internal/skelgraph"
	"repro/internal/synth"
	"repro/internal/thinning"
)

func benchCfg() experiments.Config { return experiments.Config{Seed: 2008, Quick: true} }

func runExperiment(b *testing.B, name string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(name, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1ObjectExtraction regenerates Figure 1 (background
// subtraction + median smoothing quality).
func BenchmarkFig1ObjectExtraction(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig2Thinning regenerates Figure 2 (raw thinning artefacts).
func BenchmarkFig2Thinning(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig3LoopCut regenerates Figure 3 (maximum-spanning-tree loop
// cutting, against the minimum-spanning ablation).
func BenchmarkFig3LoopCut(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4Pruning regenerates Figure 4 (one-at-a-time pruning
// against delete-all-at-once).
func BenchmarkFig4Pruning(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5Gallery regenerates Figure 5 (skeleton gallery).
func BenchmarkFig5Gallery(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6Encoding regenerates Figure 6 (area feature encoding).
func BenchmarkFig6Encoding(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7Inference regenerates Figure 7 (BN/DBN structure and the
// dynamic-edge probe).
func BenchmarkFig7Inference(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8FullPipeline regenerates Figure 8 (skeletons across a
// whole jump).
func BenchmarkFig8FullPipeline(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkSec5Evaluation regenerates the Section 5 headline numbers
// (per-clip accuracy, threshold ablation).
func BenchmarkSec5Evaluation(b *testing.B) { runExperiment(b, "sec5") }

// BenchmarkSec5bAblation regenerates the previous-pose policy ablation
// and the consecutive-error-run histogram.
func BenchmarkSec5bAblation(b *testing.B) { runExperiment(b, "sec5b") }

// BenchmarkGABaseline regenerates the GA-vs-thinning cost comparison.
func BenchmarkGABaseline(b *testing.B) { runExperiment(b, "ga") }

// BenchmarkExt1Partitions regenerates the partition-count sweep.
func BenchmarkExt1Partitions(b *testing.B) { runExperiment(b, "ext1") }

// BenchmarkExt2TrainingSize regenerates the training-set-size sweep.
func BenchmarkExt2TrainingSize(b *testing.B) { runExperiment(b, "ext2") }

// BenchmarkExt3ViterbiDecoding regenerates the greedy-vs-Viterbi
// decoding comparison.
func BenchmarkExt3ViterbiDecoding(b *testing.B) { runExperiment(b, "ext3") }

// BenchmarkExt4EvidenceChannels regenerates the hidden-parts vs
// observed-areas evidence ablation.
func BenchmarkExt4EvidenceChannels(b *testing.B) { runExperiment(b, "ext4") }

// BenchmarkExt5Skeletonizer regenerates the end-to-end skeletonizer
// ablation (Z-S vs Guo-Hall vs medial axis).
func BenchmarkExt5Skeletonizer(b *testing.B) { runExperiment(b, "ext5") }

// BenchmarkExt6RadialFeatures regenerates the radial-feature sweep.
func BenchmarkExt6RadialFeatures(b *testing.B) { runExperiment(b, "ext6") }

// BenchmarkExt7GAPipeline regenerates the complete-system comparison
// (thinning pipeline vs GA stick-model pipeline).
func BenchmarkExt7GAPipeline(b *testing.B) { runExperiment(b, "ext7") }

// BenchmarkExt8Orientation regenerates the mirrored-clip robustness
// comparison.
func BenchmarkExt8Orientation(b *testing.B) { runExperiment(b, "ext8") }

// BenchmarkExt9LabelNoise regenerates the label-noise sweep.
func BenchmarkExt9LabelNoise(b *testing.B) { runExperiment(b, "ext9") }

// BenchmarkExt10Baseline regenerates the DBN-vs-lookup comparison.
func BenchmarkExt10Baseline(b *testing.B) { runExperiment(b, "ext10") }

// BenchmarkJumpMeasurement regenerates the tracked jump-distance table.
func BenchmarkJumpMeasurement(b *testing.B) { runExperiment(b, "jump") }

// BenchmarkCV regenerates the k-fold cross-validation summary.
func BenchmarkCV(b *testing.B) { runExperiment(b, "cv") }

// --- parallel evaluation engine -------------------------------------------

// benchTrainedEngine builds a dataset and a trained engine with the given
// worker count, shared classifier, fresh extractor per worker.
func benchTrainedEngine(b *testing.B, workers int) (*slj.Engine, *dataset.Dataset) {
	b.Helper()
	ds, err := dataset.Generate(dataset.GenOptions{TrainClips: 2, TestClips: 2, Seed: 11, VaryBody: true})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := slj.NewEngine(workers)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Train(ds.Train); err != nil {
		b.Fatal(err)
	}
	return eng, ds
}

// BenchmarkEvaluateSequential measures the paper-faithful sequential
// System.Evaluate over the test split — the baseline the parallel engine
// is compared against.
func BenchmarkEvaluateSequential(b *testing.B) {
	eng, ds := benchTrainedEngine(b, 1)
	sys := eng.System()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.Evaluate(ds.Test); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateParallel measures Engine.Evaluate at several worker
// counts. Output is bit-identical to BenchmarkEvaluateSequential's at
// every setting; on a w-core machine the clip fan-out approaches a w-fold
// speedup until the serial DBN decode dominates.
func BenchmarkEvaluateParallel(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng, ds := benchTrainedEngine(b, w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.Evaluate(ds.Test); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClassifyClipPipelined measures the two-stage frame pipeline of
// Engine.ClassifyClip (extraction overlapping skeleton analysis) against
// the batch path.
func BenchmarkClassifyClipPipelined(b *testing.B) {
	for _, w := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng, ds := benchTrainedEngine(b, w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.ClassifyClip(ds.Test[0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamEvaluate measures the streaming evaluation path: each
// iteration opens a lazy DirSource over an on-disk corpus and evaluates
// it, decoding clips and frames on demand. Beyond the standard metrics
// it reports frames/s throughput and the peak decoded-clip residency
// (engine.clips_in_flight), which the streaming layer bounds to the
// worker count.
func BenchmarkStreamEvaluate(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			ds, err := dataset.Generate(dataset.GenOptions{TrainClips: 2, TestClips: 2, Seed: 11, VaryBody: true})
			if err != nil {
				b.Fatal(err)
			}
			root := b.TempDir()
			if err := dataset.Save(root, ds); err != nil {
				b.Fatal(err)
			}
			scope := obs.NewScope(obs.NewRegistry())
			eng, err := slj.NewEngine(w, slj.WithObservability(scope))
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Train(ds.Train); err != nil {
				b.Fatal(err)
			}
			_, testFrames := ds.TotalFrames()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src, err := dataset.OpenDir(filepath.Join(root, "test"))
				if err != nil {
					b.Fatal(err)
				}
				_, _, err = eng.EvaluateSource(src)
				src.Close()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(testFrames)*float64(b.N)/s, "frames/s")
			}
			for _, g := range scope.Registry().Snapshot().Gauges {
				if g.Name == "engine.clips_in_flight" {
					b.ReportMetric(float64(g.Value), "peak-clips")
				}
			}
		})
	}
}

// --- micro-benchmarks of the pipeline stages ------------------------------

func benchSilhouette() *imaging.Binary {
	s := pose.Compute(imaging.Pointf{X: 150, Y: 100}, 90,
		pose.Angles(pose.CrouchHandsBackward), pose.DefaultProportions())
	return synth.RenderSilhouette(s, synth.DefaultShape(), 90, 320, 200)
}

// BenchmarkStageThinning measures Zhang-Suen thinning of one silhouette.
func BenchmarkStageThinning(b *testing.B) {
	sil := benchSilhouette()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		thinning.Thin(sil, thinning.ZhangSuen)
	}
}

// BenchmarkStageGraphBuild measures skeleton-graph construction with loop
// cutting.
func BenchmarkStageGraphBuild(b *testing.B) {
	skel := thinning.Thin(benchSilhouette(), thinning.ZhangSuen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := skelgraph.Build(skel)
		if err != nil {
			b.Fatal(err)
		}
		g.Prune(skelgraph.DefaultPruneLen)
	}
}

// BenchmarkStageKeyPoints measures key-point extraction plus encoding.
func BenchmarkStageKeyPoints(b *testing.B) {
	skel := thinning.Thin(benchSilhouette(), thinning.ZhangSuen)
	g, err := skelgraph.Build(skel)
	if err != nil {
		b.Fatal(err)
	}
	g.Prune(skelgraph.DefaultPruneLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kp, err := keypoint.FromGraph(g)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := keypoint.Encode(kp, keypoint.DefaultPartitions); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageFrameAnalysis measures the whole vision front end on one
// RGB frame (extraction through encoding).
func BenchmarkStageFrameAnalysis(b *testing.B) {
	ds, err := dataset.Generate(dataset.GenOptions{TrainClips: 1, TestClips: 1, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := slj.NewSystem()
	if err != nil {
		b.Fatal(err)
	}
	lc := ds.Test[0]
	sys.SetBackground(lc.Clip.Background)
	frame := lc.Clip.Frames[len(lc.Clip.Frames)/2].Image
	// Warm the per-System arena and the imaging pool so the steady-state
	// per-frame cost is measured, not first-frame arena growth.
	for i := 0; i < 3; i++ {
		if _, err := sys.AnalyzeFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.AnalyzeFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageFrameAnalysisObserved measures the same front end with
// the full flight recorder attached — registry, error journal, info-
// level structured logger and span tracer on one shared sink — so the
// bench gate bounds the per-frame cost of instrumentation being ON.
// (The uninstrumented variant above pins the 0 allocs/op contract.)
func BenchmarkStageFrameAnalysisObserved(b *testing.B) {
	ds, err := dataset.Generate(dataset.GenOptions{TrainClips: 1, TestClips: 1, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.NewRegistry()
	scope := obs.NewScope(reg)
	scope.SetJournal(obs.NewJournal(reg, 256))
	sink := obs.NewLineSink(io.Discard)
	scope.SetLogger(obs.NewLogger(sink, slog.LevelInfo))
	tracer := obs.NewTracerSink(sink)
	scope.SetTracer(tracer)
	defer tracer.Close()
	sys, err := slj.NewSystem(slj.WithObservability(scope.WithClip("bench")))
	if err != nil {
		b.Fatal(err)
	}
	lc := ds.Test[0]
	sys.SetBackground(lc.Clip.Background)
	frame := lc.Clip.Frames[len(lc.Clip.Frames)/2].Image
	for i := 0; i < 3; i++ {
		if _, err := sys.AnalyzeFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.AnalyzeFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageClassifyFrame measures one DBN classification (22
// networks, variable elimination each).
func BenchmarkStageClassifyFrame(b *testing.B) {
	ds, err := dataset.Generate(dataset.GenOptions{TrainClips: 2, TestClips: 1, Seed: 10})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := slj.NewSystem(slj.WithGroundTruthSilhouettes(true))
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Train(ds.Train); err != nil {
		b.Fatal(err)
	}
	fa := sys.AnalyzeSilhouette(ds.Test[0].Clip.Frames[10].Silhouette)
	sess := sys.Classifier().NewSession()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Classify(fa.Encoding); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageSynthFrame measures synthetic frame generation.
func BenchmarkStageSynthFrame(b *testing.B) {
	spec := synth.DefaultSpec(3)
	spec.Script = []synth.Step{{Pose: pose.AirTuck, Frames: 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Generate(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageExtractROI measures ROI-restricted extraction against
// the full-frame scan of BenchmarkStageFrameAnalysis (the tracker path).
func BenchmarkStageExtractROI(b *testing.B) {
	ds, err := dataset.Generate(dataset.GenOptions{TrainClips: 1, TestClips: 1, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	ex, err := extract.NewExtractor()
	if err != nil {
		b.Fatal(err)
	}
	lc := ds.Test[0]
	ex.SetBackground(lc.Clip.Background)
	frame := lc.Clip.Frames[len(lc.Clip.Frames)/2].Image
	full, err := ex.Extract(frame)
	if err != nil {
		b.Fatal(err)
	}
	roi := full.ForegroundBounds()
	roi.Min.X -= 48
	roi.Min.Y -= 48
	roi.Max.X += 48
	roi.Max.Y += 48
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ex.ExtractInROI(frame, roi); err != nil {
			b.Fatal(err)
		}
	}
}
