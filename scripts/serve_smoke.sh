#!/bin/sh
# serve_smoke.sh — end-to-end smoke for the serving layer (make serve-smoke).
#
# Builds sljserve + sljload, generates a tiny corpus, starts the server
# on an ephemeral port, then asserts the serving contract from outside:
#
#   1. a clean low-QPS run succeeds completely (no shedding, no failures),
#      /debug/health answers ready, and the pool-leak gauges read zero —
#      the server returned every clip and silhouette buffer it borrowed;
#   2. an overload run (offered QPS far above the worker budget) is shed
#      with 503s rather than queued or failed;
#   3. SIGTERM drains and the process exits 0.
#
# Any assertion failure exits non-zero, so CI fails loudly.
set -eu

workdir=$(mktemp -d)
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT
server_pid=

echo "serve-smoke: building into $workdir"
go build -o "$workdir" ./cmd/sljserve ./cmd/sljload ./cmd/sljgen
"$workdir/sljgen" -out "$workdir/data" -train 2 -test 2 -seed 2008 > /dev/null

"$workdir/sljserve" -data "$workdir/data" -addr 127.0.0.1:0 \
    -addr-file "$workdir/addr.txt" -workers 2 \
    -sample-interval 100ms -log "$workdir/server.log" \
    > "$workdir/server.out" 2>&1 &
server_pid=$!

# Wait for the server to train and bind.
i=0
while [ ! -s "$workdir/addr.txt" ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "serve-smoke: server never wrote addr file" >&2
        cat "$workdir/server.out" >&2
        exit 1
    fi
    kill -0 "$server_pid" 2>/dev/null || {
        echo "serve-smoke: server exited during startup" >&2
        cat "$workdir/server.out" >&2
        exit 1
    }
    sleep 0.1
done
addr=$(cat "$workdir/addr.txt")
echo "serve-smoke: server up at $addr"

# 1. Clean run: every request admitted and answered.
"$workdir/sljload" -addr "$addr" -clips 6 -qps 3 -out "$workdir/clean.json"
grep -q '"succeeded": 6' "$workdir/clean.json"
grep -q '"shed": 0' "$workdir/clean.json"
grep -q '"failed": 0' "$workdir/clean.json"
grep -q '"health_ready": true' "$workdir/clean.json"
grep -q '"engine_clips_checked_out": 0' "$workdir/clean.json"
grep -q '"imaging_pool_balance": 0' "$workdir/clean.json"
grep -q '"server_inflight_workers": 0' "$workdir/clean.json"
echo "serve-smoke: clean run ok (6/6, pool gauges zero, health ready)"

# 2. Overload run: offered load far above the 2-worker budget must shed.
"$workdir/sljload" -addr "$addr" -clips 40 -qps 200 -out "$workdir/overload.json"
grep -q '"failed": 0' "$workdir/overload.json"
if grep -q '"shed": 0' "$workdir/overload.json"; then
    echo "serve-smoke: overload run shed nothing — admission control inert" >&2
    cat "$workdir/overload.json" >&2
    exit 1
fi
echo "serve-smoke: overload run shed load as designed"

# 3. Graceful shutdown: SIGTERM drains and exits 0.
kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
server_pid=
if [ "$rc" -ne 0 ]; then
    echo "serve-smoke: server exited $rc on SIGTERM" >&2
    cat "$workdir/server.out" >&2
    exit 1
fi
grep -q "shutdown complete" "$workdir/server.out"
echo "serve-smoke: graceful shutdown ok"
